# Developer entry points mirroring the CI jobs (ci.yml runs these same
# commands, so a green `make ci` locally means a green workflow).

# bash + pipefail so `go test | tee` recipes fail when go test fails,
# not when tee does.
SHELL         := /bin/bash
.SHELLFLAGS   := -o pipefail -ec

GO            ?= go
BENCH_COUNT   ?= 5
BENCH_TXT     ?= bench.txt
BENCH_OUT     ?= BENCH_CURRENT.json
BENCH_BASELINE?= BENCH_BASELINE.json
MAX_REGRESS   ?= 0.30
# Default persistent artifact-store directory of the CLIs' -store flag
# convention (gitignored; wiped by clean-store).
STORE_DIR     ?= .cnfet-store
# Total-coverage gate; CI fails below this (see ci.yml coverage job).
# Measured 75.6% when recorded — keep it at least here.
COVER_MIN     ?= 75.0

# Spice-dominated benchmarks profiled by bench-profile (the solver hot
# path: characterization, critical-line certification, cold sweeps, the
# full-adder flow).
PROFILE_BENCH ?= CharacterizationSequential|Fig4AOI31|SweepColdPoints|StoreDiskCold

.PHONY: all build test race vet fmt cover bench bench-check bench-baseline bench-profile clean-store ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { \
		if (t+0 < min+0) { printf "total coverage %.1f%% is below the %.1f%% gate\n", t, min; exit 1 } \
		printf "total coverage %.1f%% (gate %.1f%%)\n", t, min }'

# bench runs the suite and reduces it to medians (BENCH_CURRENT.json);
# bench-check additionally gates against the committed baseline —
# identical to the CI benchmark-regression job.
bench:
	$(GO) test -bench . -benchmem -count=$(BENCH_COUNT) -run '^$$' | tee $(BENCH_TXT)
	$(GO) run ./cmd/benchreg -in $(BENCH_TXT) -out $(BENCH_OUT)

bench-check:
	$(GO) test -bench . -benchmem -count=$(BENCH_COUNT) -run '^$$' | tee $(BENCH_TXT)
	$(GO) run ./cmd/benchreg -in $(BENCH_TXT) -out $(BENCH_OUT) \
		-baseline $(BENCH_BASELINE) -max-regress $(MAX_REGRESS)

# bench-baseline refreshes the committed baseline (run on a quiet
# machine, then commit BENCH_BASELINE.json).
bench-baseline:
	$(GO) test -bench . -benchmem -count=$(BENCH_COUNT) -run '^$$' | tee $(BENCH_TXT)
	$(GO) run ./cmd/benchreg -in $(BENCH_TXT) -out $(BENCH_BASELINE)

# bench-profile produces CPU and allocation pprof artifacts from the
# spice-dominated benchmarks (bench-cpu.pprof / bench-mem.pprof, plus
# the cnfetdk.test binary pprof needs to symbolize them). The CI bench
# job uploads all three; locally:
#   go tool pprof cnfetdk.test bench-cpu.pprof
bench-profile:
	$(GO) test -bench '$(PROFILE_BENCH)' -run '^$$' -count=1 \
		-cpuprofile bench-cpu.pprof -memprofile bench-mem.pprof -o cnfetdk.test

# clean-store wipes the local persistent artifact store (the default
# -store directory of cnfetd/cnfetsweep/fasynth). Safe: everything in it
# is a cache, recomputed on demand.
clean-store:
	rm -rf $(STORE_DIR)

ci: fmt build vet test race cover bench-check
