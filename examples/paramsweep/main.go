// Example paramsweep explores a slice of the paper's design space in one
// batch: every registry circuit under both placement schemes, with the
// imperfection statistics sampled at three Monte Carlo depths — the kind
// of processing-vs-circuit co-exploration sweep the batch engine exists
// for. All points share one kit, so each circuit's netlist synthesizes
// once and each (circuit, placement) pair places once no matter how many
// Monte Carlo points ride on it.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"cnfetdk/internal/flow"
	"cnfetdk/internal/sweep"
)

func main() {
	ctx := context.Background()
	kit, err := flow.New(ctx)
	if err != nil {
		log.Fatal(err)
	}

	var circuits []string
	for _, c := range flow.Circuits() {
		circuits = append(circuits, c.Name)
	}

	rep, err := sweep.For(kit).RunSweep(ctx, sweep.Spec{
		Name: "placement-vs-immunity",
		Base: flow.Request{
			Techs:    []string{"cnfet"},
			Analyses: []flow.Analysis{flow.AnalysisArea, flow.AnalysisImmunity},
		},
		Axes: sweep.Axes{
			Circuits:   circuits,
			Placements: []string{"rows", "shelves"},
			MCTubes:    []int{50, 100, 200},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d points (%d failed) in %.0fms — %d/%d stages served from the shared cache\n\n",
		len(rep.Points), rep.Failed, rep.Trace.WallMillis,
		rep.Trace.CacheHitStages, rep.Trace.TotalStages)

	fmt.Println("scheme-2 area advantage per circuit (rows / shelves):")
	area := map[string]map[string]float64{} // circuit -> placement -> area
	for _, pr := range rep.Points {
		if pr.Result == nil {
			continue
		}
		c := pr.Params["circuit"].(string)
		p := pr.Params["placement"].(string)
		if area[c] == nil {
			area[c] = map[string]float64{}
		}
		area[c][p] = pr.Result.Techs["cnfet"].AreaLam2
	}
	names := make([]string, 0, len(area))
	for c := range area {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		a := area[c]
		fmt.Printf("  %-10s rows %7.0f λ²   shelves %7.0f λ²   gain %.2fx\n",
			c, a["rows"], a["shelves"], a["rows"]/a["shelves"])
	}

	fmt.Println("\nimmunity yield vs Monte Carlo depth (all circuits, both schemes):")
	for _, y := range rep.YieldVsTubes {
		fmt.Printf("  %3d tubes/network: yield %.4f over %d points\n", y.MCTubes, y.Yield, y.Points)
	}

	fmt.Println("\nsummary statistics:")
	keys := make([]string, 0, len(rep.Summary))
	for k := range rep.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := rep.Summary[k]
		fmt.Printf("  %-20s n=%-3d min %-10.4g mean %-10.4g max %-10.4g\n", k, s.Count, s.Min, s.Mean, s.Max)
	}
}
