// Quickstart: run a design through the design-service API — synthesize,
// place in both technologies, certify misaligned-CNT immunity, and stream
// GDSII — in one Kit.Run call.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cnfetdk/internal/flow"
)

func main() {
	ctx := context.Background()

	// 1. One kit serves every job: both technology libraries built
	//    concurrently, one shared memo cache.
	kit, err := flow.New(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A job is a serializable request: here an inline Boolean
	//    equation (a 2:1 mux), both technologies, two analyses.
	res, err := kit.Run(ctx, flow.Request{
		Exprs:    map[string]string{"Y": "D0*!S + D1*S"},
		Name:     "mux",
		Analyses: []flow.Analysis{flow.AnalysisArea, flow.AnalysisImmunity},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The result carries one entry per technology.
	cm, cn := res.Techs["cmos"], res.Techs["cnfet"]
	fmt.Printf("%s: %d instances on %d nets\n", res.Circuit, res.Instances, res.Nets)
	fmt.Printf("CMOS rows:      %6.0f λ²\n", cm.AreaLam2)
	fmt.Printf("CNFET scheme 2: %6.0f λ²  (gain %.2fx)\n", cn.AreaLam2, res.Gains["area"])

	// 4. Every distinct CNFET cell is certified immune to mispositioned
	//    tubes (the paper's core property) by critical-line enumeration.
	fmt.Printf("immunity: %d cells, %d critical lines, immune=%v\n",
		cn.Immunity.CellsChecked, cn.Immunity.CriticalLines, cn.Immunity.Immune)

	// 5. A CNFET-only follow-up job renders the GDSII stream — its
	//    synthesis and placement stages come back from the kit's memo
	//    cache. Registry circuits (flow.Circuits()) run the same way.
	gds, err := kit.Run(ctx, flow.Request{
		Exprs:    map[string]string{"Y": "D0*!S + D1*S"},
		Name:     "mux",
		Techs:    []string{"cnfet"},
		Analyses: []flow.Analysis{flow.AnalysisGDS},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("mux.gds", gds.Techs["cnfet"].GDS, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote mux.gds")
}
