// Quickstart: generate a misaligned-CNT-immune CNFET NAND2, prove its
// immunity, compare its area against the etched-region baseline, and
// stream it to GDSII — the library's core loop in ~60 lines.
package main

import (
	"fmt"
	"log"
	"os"

	"cnfetdk/internal/gdsii"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/immunity"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
)

func main() {
	// 1. A cell is its pull-down function; the output is the complement.
	gate, err := network.NewGate("NAND2", logic.MustParse("AB"), 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Generate the paper's compact immune layout at 4λ transistors
	//    under the 65nm CNFET rule deck.
	rs := rules.Default65nm(rules.CNFET)
	cell, err := layout.Generate("NAND2", gate, layout.StyleCompact, geom.Lambda(4), rs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NAND2 compact layout: %.0f λ² (PUN %d contacts / %d gates)\n",
		cell.NetworksArea(), len(cell.PUN.Contacts()), len(cell.PUN.Gates()))

	// 3. Certify 100%% immunity to mispositioned CNTs (critical lines).
	pun, pdn := immunity.VerifyImmunity(cell)
	fmt.Printf("immunity certificate: PUN %v, PDN %v (checked %d critical lines)\n",
		pun.Immune(), pdn.Immune(), pun.TubesChecked+pdn.TubesChecked)

	// 4. Compare against the etched-region baseline of Patil et al. [6].
	old, err := layout.Generate("NAND2", gate, layout.StyleEtched, geom.Lambda(4), rs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("area saving vs etched-region layout: %.2f%% (paper: 14.52%%)\n",
		100*(1-cell.NetworksArea()/old.NetworksArea()))

	// 5. Stream to GDSII.
	lib := gdsii.NewLibrary("QUICKSTART")
	s := lib.Add("NAND2")
	scale := rs.LambdaNM / float64(geom.QuarterLambda)
	a := cell.Assemble(layout.Scheme1)
	for _, e := range a.Elements {
		layer := gdsii.LayerContact
		if e.Kind == layout.ElemGate {
			layer = gdsii.LayerGate
		}
		s.Rect(layer,
			int32(float64(e.Rect.Min.X)*scale), int32(float64(e.Rect.Min.Y)*scale),
			int32(float64(e.Rect.Max.X)*scale), int32(float64(e.Rect.Max.Y)*scale))
	}
	f, err := os.Create("nand2.gds")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := lib.Write(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote nand2.gds")
}
