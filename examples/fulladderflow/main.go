// Example fulladderflow drives the complete logic-to-GDSII flow on a
// 2-bit ripple-carry adder synthesized from Boolean equations — a design
// beyond the paper's single full adder, showing the kit composes: map,
// verify, place in both schemes, compare with CMOS, and export GDSII.
package main

import (
	"fmt"
	"log"
	"os"

	"cnfetdk/internal/flow"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/place"
	"cnfetdk/internal/synth"
)

func main() {
	// Two cascaded full adders: inputs A0 B0 A1 B1 C0; outputs S0 S1 C2.
	maj := func(a, b, c string) *logic.Expr {
		return logic.MustParse(fmt.Sprintf("%s*%s + %s*%s + %s*%s", a, b, a, c, b, c))
	}
	xor3 := func(a, b, c string) *logic.Expr {
		return logic.MustParse(fmt.Sprintf(
			"%[1]s*!%[2]s*!%[3]s + !%[1]s*%[2]s*!%[3]s + !%[1]s*!%[2]s*%[3]s + %[1]s*%[2]s*%[3]s",
			a, b, c))
	}
	// Carry out of bit 0 feeds bit 1: expand it symbolically so every
	// output is a function of the primary inputs only.
	// C1 = maj(A0,B0,C0); S1 = xor3(A1,B1,C1); C2 = maj(A1,B1,C1).
	// Substitution at the expression level keeps the mapper honest about
	// sharing the C1 cone.
	c1 := "(A0*B0 + A0*C0 + B0*C0)"
	outputs := map[string]*logic.Expr{
		"S0": xor3("A0", "B0", "C0"),
		"S1": logic.MustParse(fmt.Sprintf(
			"A1*!B1*!%[1]s + !A1*B1*!%[1]s + !A1*!B1*%[1]s + A1*B1*%[1]s", c1)),
		"C2": logic.MustParse(fmt.Sprintf("A1*B1 + A1*%[1]s + B1*%[1]s", c1)),
	}
	_ = maj

	nl, err := synth.Synthesize("adder2", outputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized adder2: %d NAND2/INV instances (verified against spec)\n",
		len(nl.Instances))

	kit, err := flow.NewKit()
	if err != nil {
		log.Fatal(err)
	}
	s1, err := place.Rows(kit.CNFET, nl, 0)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := place.Shelves(kit.CNFET, nl, 0)
	if err != nil {
		log.Fatal(err)
	}
	cm, err := place.Rows(kit.CMOS, nl, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CMOS rows:      %8.0f λ²  (util %.2f)\n", cm.Area(), cm.Utilization())
	fmt.Printf("CNFET scheme 1: %8.0f λ²  (util %.2f, gain %.2fx)\n",
		s1.Area(), s1.Utilization(), cm.Area()/s1.Area())
	fmt.Printf("CNFET scheme 2: %8.0f λ²  (util %.2f, gain %.2fx)\n",
		s2.Area(), s2.Utilization(), cm.Area()/s2.Area())

	f, err := os.Create("adder2.gds")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := flow.WritePlacementGDS(f, kit.CNFET, s2, "ADDER2"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote adder2.gds")
}
