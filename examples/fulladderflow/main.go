// Example fulladderflow drives the complete logic-to-GDSII flow on a
// 2-bit ripple-carry adder synthesized from Boolean equations — a design
// beyond the paper's single full adder — through the design-service API:
// one request per placement scheme, areas and GDSII from the results.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cnfetdk/internal/flow"
)

func main() {
	ctx := context.Background()

	// Two cascaded full adders: inputs A0 B0 A1 B1 C0; outputs S0 S1 C2.
	// The carry out of bit 0 is expanded symbolically so every output is
	// a function of the primary inputs only — substitution at the
	// expression level keeps the mapper honest about sharing the C1 cone.
	c1 := "(A0*B0 + A0*C0 + B0*C0)"
	exprs := map[string]string{
		"S0": "A0*!B0*!C0 + !A0*B0*!C0 + !A0*!B0*C0 + A0*B0*C0",
		"S1": fmt.Sprintf("A1*!B1*!%[1]s + !A1*B1*!%[1]s + !A1*!B1*%[1]s + A1*B1*%[1]s", c1),
		"C2": fmt.Sprintf("A1*B1 + A1*%[1]s + B1*%[1]s", c1),
	}

	kit, err := flow.New(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Scheme-2 shelves, then a scheme-1 rows rerun: the synthesis stage
	// comes back from the kit's memo cache.
	s2, err := kit.Run(ctx, flow.Request{
		Exprs: exprs, Name: "adder2",
		Analyses: []flow.Analysis{flow.AnalysisArea},
	})
	if err != nil {
		log.Fatal(err)
	}
	s1, err := kit.Run(ctx, flow.Request{
		Exprs: exprs, Name: "adder2", Placement: "rows",
		Techs:    []string{"cnfet"},
		Analyses: []flow.Analysis{flow.AnalysisArea},
	})
	if err != nil {
		log.Fatal(err)
	}

	cm, cn, cn1 := s2.Techs["cmos"], s2.Techs["cnfet"], s1.Techs["cnfet"]
	fmt.Printf("synthesized adder2: %d NAND2/INV instances (verified against spec)\n", s2.Instances)
	fmt.Printf("CMOS rows:      %8.0f λ²  (util %.2f)\n", cm.AreaLam2, cm.Utilization)
	fmt.Printf("CNFET scheme 1: %8.0f λ²  (util %.2f, gain %.2fx)\n",
		cn1.AreaLam2, cn1.Utilization, cm.AreaLam2/cn1.AreaLam2)
	fmt.Printf("CNFET scheme 2: %8.0f λ²  (util %.2f, gain %.2fx)\n",
		cn.AreaLam2, cn.Utilization, s2.Gains["area"])

	// The GDSII stream comes from a CNFET-only job; its placement is a
	// cache hit from the scheme-2 run above.
	gds, err := kit.Run(ctx, flow.Request{
		Exprs: exprs, Name: "adder2",
		Techs:    []string{"cnfet"},
		Analyses: []flow.Analysis{flow.AnalysisGDS},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("adder2.gds", gds.Techs["cnfet"].GDS, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote adder2.gds")
}
