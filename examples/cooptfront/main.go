// Example cooptfront runs the processing/circuit co-optimization end to
// end on one registry circuit and prints the resulting Pareto front as
// CSV: each row is a feasible, non-dominated combination of processing
// knobs (inter-tube pitch, CNT count CV, alignment probability) and
// circuit knobs (drive sizing) that meets the functional-yield target,
// trading processing cost against area/energy cost.
//
// The measured layer — a variation sweep with transistor-level delay
// ensembles and composed yields — runs on a local kit here; handing
// coopt.Search a *fabric.Client instead runs it on a worker fleet and
// produces the byte-identical front.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cnfetdk/internal/coopt"
	"cnfetdk/internal/flow"
	"cnfetdk/internal/sweep"
)

func main() {
	ctx := context.Background()
	kit, err := flow.New(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Small grids keep the example fast: 2 measured points (cv × align),
	// each rescaled analytically over 3 pitches × 2 drives.
	front, err := coopt.Search(ctx, coopt.KitRunner{Kit: sweep.For(kit)}, coopt.Spec{
		Circuit:     "mux2",
		YieldTarget: 0.99,
		CountCVs:    []float64{0.1, 0.3},
		AlignmentPs: []float64{0.05},
		PitchesNM:   []float64{5, 8, 13},
		Drives:      []float64{1, 2},
		VarSamples:  4,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("# %s: %d evaluated, %d feasible, front of %d\n",
		front.Spec.Circuit, front.Evaluated, front.Feasible, len(front.Candidates))
	if err := front.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
