// Example fo4sweep reproduces the Fig 7 experiment programmatically: sweep
// the CNT count of a fixed-width CNFET inverter, find the optimal pitch,
// and validate one point against the transistor-level simulator.
package main

import (
	"fmt"
	"log"

	"cnfetdk/internal/device"
	"cnfetdk/internal/spice"
)

func main() {
	p := device.DefaultFO4()

	fmt.Println("N tubes  pitch(nm)  delay gain  energy gain  EDP gain")
	for _, n := range []int{1, 2, 4, 8, 13, 20, 26, 29, 33, 40} {
		fmt.Printf("%7d  %9.2f  %10.2f  %11.2f  %8.2f\n",
			n, device.Pitch(n), p.DelayGain(n), p.EnergyGain(n), p.EDPGain(n))
	}
	opt := p.OptimalN(60)
	fmt.Printf("\noptimal: %d tubes (pitch %.2fnm) -> %.2fx delay, %.2fx energy (paper: 5nm, 4.2x, 2x)\n",
		opt, device.Pitch(opt), p.DelayGain(opt), p.EnergyGain(26))

	// Cross-check the optimum against a transient simulation of a
	// 5-stage FO4 chain.
	chain := func(mk func(name, in, out string, c *spice.Circuit)) float64 {
		c := spice.New()
		c.AddV("vdd", "vdd", "0", spice.DC(device.Vdd))
		c.AddV("vin", "n0", "0", spice.Pulse{
			V0: 0, V1: device.Vdd, Delay: 100e-12, Rise: 10e-12, Fall: 10e-12,
			W: 500e-12, Period: 1000e-12,
		})
		for st := 1; st <= 5; st++ {
			in, out := fmt.Sprintf("n%d", st-1), fmt.Sprintf("n%d", st)
			mk(fmt.Sprintf("s%d", st), in, out, c)
			if st < 5 {
				for k := 0; k < 3; k++ {
					mk(fmt.Sprintf("l%d_%d", st, k), out, fmt.Sprintf("%sd%d", out, k), c)
				}
			}
		}
		res, err := c.Transient(1000e-12, 4000, spice.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		d, err := res.PropDelay("n2", "n3", device.Vdd)
		if err != nil {
			log.Fatal(err)
		}
		return d
	}
	dCN := chain(func(name, in, out string, c *spice.Circuit) {
		c.AddFET(name+".p", out, in, "vdd",
			device.CNFET(name+".p", device.PType, opt, device.GateWidthNM, p))
		c.AddFET(name+".n", out, in, "0",
			device.CNFET(name+".n", device.NType, opt, device.GateWidthNM, p))
	})
	dCM := chain(func(name, in, out string, c *spice.Circuit) {
		c.AddFET(name+".p", out, in, "vdd", device.CMOSFET(name+".p", device.PType, 1.4))
		c.AddFET(name+".n", out, in, "0", device.CMOSFET(name+".n", device.NType, 1))
	})
	fmt.Printf("\ntransient cross-check at the optimum: CNFET %.2fps, CMOS %.2fps -> %.2fx\n",
		dCN*1e12, dCM*1e12, dCM/dCN)
}
