// Example nand3layout walks through the paper's Section III story on the
// NAND3 cell (Fig 3): the Euler-trail construction of the compact layout,
// the etched-region baseline it replaces, the 16.67% area delta, the
// vertical-gating cost, and the immunity verdicts for all three styles —
// including the functional-yield experiment of Fig 2 under a mispositioned
// tube population.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cnfetdk/internal/cnt"
	"cnfetdk/internal/euler"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/immunity"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
)

func main() {
	gate, err := network.NewGate("NAND3", logic.MustParse("ABC"), 1)
	if err != nil {
		log.Fatal(err)
	}

	// The Euler trail that generates Fig 3(b): contacts are nodes, gates
	// are edges; the PUN multigraph has three parallel A/B/C edges
	// between VDD and OUT, so the trail alternates VDD-OUT and inserts
	// redundant contacts instead of etched regions.
	g := euler.FromNetwork(gate.PUN)
	trail := g.Trails("VDD")[0]
	fmt.Print("PUN Euler trail: ")
	for i, n := range trail.Nodes {
		if i > 0 {
			fmt.Printf(" -%s- ", g.Edges[trail.Edges[i-1]].Label)
		}
		fmt.Print(n)
	}
	fmt.Println()

	rs := rules.Default65nm(rules.CNFET)
	build := func(style layout.Style) *layout.Cell {
		c, err := layout.Generate("NAND3", gate, style, geom.Lambda(4), rs)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	compact := build(layout.StyleCompact)
	etched := build(layout.StyleEtched)
	vulnerable := build(layout.StyleVulnerable)

	fmt.Printf("\nFig 3 comparison at 4λ devices:\n")
	fmt.Printf("  etched [6]: %5.0f λ², %d etch regions, %d vias-on-gate\n",
		etched.NetworksArea(), len(etched.PUN.Etches()), etched.ViasOnGate())
	fmt.Printf("  compact:    %5.0f λ², %d etch regions, %d vias-on-gate\n",
		compact.NetworksArea(), len(compact.PUN.Etches()), compact.ViasOnGate())
	fmt.Printf("  area saving %.2f%% (paper: 16.67%%)\n",
		100*(1-compact.NetworksArea()/etched.NetworksArea()))

	fmt.Printf("\nImmunity certificates (critical-line enumeration):\n")
	for _, c := range []*layout.Cell{vulnerable, etched, compact} {
		pun, pdn := immunity.VerifyImmunity(c)
		fmt.Printf("  %-11s PUN immune=%v PDN immune=%v\n",
			c.Style.String(), pun.Immune(), pdn.Immune())
		if !pun.Immune() {
			fmt.Printf("    e.g. %v\n", pun.Violations[0])
		}
	}

	// Fig 2 experiment: functional yield under 25% mispositioned tubes.
	params := cnt.DefaultParams()
	params.MisalignedFrac = 0.25
	params.MaxAngleDeg = 20
	params.PitchNM = 20
	fmt.Printf("\nFunctional yield under 25%% mispositioned tubes (±20°):\n")
	for _, c := range []*layout.Cell{vulnerable, compact} {
		cc := immunity.NewCellChecker(c)
		y := cc.FunctionalYield(100, params, rand.New(rand.NewSource(1)))
		fmt.Printf("  %-11s %.0f%%\n", c.Style.String(), 100*y)
	}
}
