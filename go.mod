module cnfetdk

go 1.24
