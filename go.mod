module cnfetdk

// 1.23 is the floor of the CI build matrix (1.23 + 1.24).
go 1.23
