// Command cnfetfab is the sweep-fabric coordinator: it registers a
// fleet of cnfetd workers and shards sweep.Spec batches across them,
// merging the shard results into the one canonical report a
// single-process run would produce.
//
// Usage:
//
//	cnfetfab                          # listen on :8066
//	cnfetfab -addr 127.0.0.1:0 -addr-file /tmp/fab.addr
//	cnfetfab -workers http://10.0.0.7:8065,http://10.0.0.8:8065
//	cnfetfab -lease-points 16 -max-attempts 5
//
// Routes:
//
//	POST /v1/fabric/workers — worker enrollment / heartbeat
//	GET  /v1/fabric/workers — registry listing
//	POST /v1/fabric/sweeps  — run a sweep across the fleet (NDJSON
//	                          stream: points, lease events, merged report)
//	GET  /metrics           — Prometheus-style coordinator metrics
//	GET  /livez             — liveness
//	GET  /readyz            — readiness (503 until ≥1 live worker)
//
// Workers normally enroll themselves (cnfetd -join http://this-host:8066)
// and heartbeat; -workers pre-seeds a static fleet that is exempt from
// the heartbeat TTL (a dispatch failure still sidelines a static worker
// until it re-joins). Point sweeps at the fabric with
// cnfetsweep -workers http://this-host:8066, or POST a spec directly:
//
//	curl -sN localhost:8066/v1/fabric/sweeps -d '{
//	  "base": {"techs":["cnfet"],"analyses":["area"]},
//	  "axes": {"circuits":["mux2","dec2"],"placements":["rows","shelves"]}}'
//
// Chaos soak mode (no listener; self-contained in-process fleet):
//
//	cnfetfab -chaos -chaos-schedules 8 -chaos-seed 1 -chaos-out verdicts.json
//
// runs the 24-point soak sweep under K seeded fault schedules, demands
// byte-identical-or-typed-error termination from every run, writes the
// verdict log as JSON, and exits non-zero if any schedule fails.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cnfetdk/internal/chaos"
	"cnfetdk/internal/fabric"
)

func main() {
	addr := flag.String("addr", ":8066", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	workers := flag.String("workers", "", "comma-separated worker base URLs to pre-seed (static fleet; workers may also enroll via cnfetd -join)")
	leasePoints := flag.Int("lease-points", fabric.DefaultLeasePoints, "points per lease")
	maxAttempts := flag.Int("max-attempts", fabric.DefaultMaxAttempts, "dispatch attempts per lease before the sweep fails")
	retryBackoff := flag.Duration("retry-backoff", fabric.DefaultRetryBackoff, "base lease retry backoff window (doubles per attempt, full jitter)")
	maxRetryBackoff := flag.Duration("max-retry-backoff", fabric.DefaultMaxRetryBackoff, "cap on the lease retry backoff window")
	backoffSeed := flag.Int64("backoff-seed", 0, "seed for the retry jitter RNG (0 seeds from the clock; fixed seeds replay retry schedules)")
	breakerThreshold := flag.Int("breaker-threshold", fabric.DefaultBreakerThreshold, "consecutive lease failures that open a worker's circuit breaker (negative disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", fabric.DefaultBreakerCooldown, "base hold-out once a worker's breaker opens (doubles per further failure, capped at 8x)")
	leaseTimeout := flag.Duration("lease-timeout", fabric.DefaultLeaseTimeout, "max silence on a lease stream before it is retried")
	heartbeatTTL := flag.Duration("heartbeat-ttl", fabric.DefaultHeartbeatTTL, "worker liveness window past its last heartbeat")
	stallTimeout := flag.Duration("stall-timeout", fabric.DefaultStallTimeout, "fail a sweep with zero live workers for this long")
	sweepPoints := flag.Int("sweep-points", fabric.DefaultMaxSweepPoints, "per-sweep point quota")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight sweeps")
	chaosMode := flag.Bool("chaos", false, "run the chaos soak (no listener) and exit non-zero on any failed schedule")
	chaosSchedules := flag.Int("chaos-schedules", 8, "seeded fault schedules to soak")
	chaosSeed := flag.Int64("chaos-seed", 1, "base schedule seed (schedule i uses seed+i)")
	chaosWorkers := flag.Int("chaos-workers", 2, "in-process workers per soak run")
	chaosRules := flag.Int("chaos-rules", 4, "fault rules per schedule")
	chaosOut := flag.String("chaos-out", "", "write the JSON verdict log to this file (default stdout)")
	flag.Parse()

	log.SetPrefix("cnfetfab: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	if *chaosMode {
		runChaos(*chaosSchedules, *chaosSeed, *chaosWorkers, *chaosRules, *chaosOut)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	coord := fabric.New(fabric.Options{
		LeasePoints:      *leasePoints,
		MaxAttempts:      *maxAttempts,
		RetryBackoff:     *retryBackoff,
		MaxRetryBackoff:  *maxRetryBackoff,
		BackoffSeed:      *backoffSeed,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		LeaseTimeout:     *leaseTimeout,
		HeartbeatTTL:     *heartbeatTTL,
		StallTimeout:     *stallTimeout,
		MaxSweepPoints:   *sweepPoints,
		Logf:             log.Printf,
	})
	for _, wu := range strings.Split(*workers, ",") {
		if wu = strings.TrimSpace(wu); wu == "" {
			continue
		}
		if _, err := coord.Join(wu, true); err != nil {
			log.Fatalf("-workers: %v", err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatalf("writing -addr-file: %v", err)
		}
	}

	// In-flight fabric sweeps get their own lifetime so SIGTERM drains
	// them within -grace instead of severing every lease mid-stream.
	sweepCtx, cancelSweeps := context.WithCancel(context.Background())
	defer cancelSweeps()

	srv := &http.Server{
		Handler:           fabric.NewServer(coord),
		BaseContext:       func(net.Listener) context.Context { return sweepCtx },
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan error, 1)
	go func() {
		log.Printf("coordinator listening on %s", bound)
		done <- srv.Serve(ln)
	}()

	select {
	case <-ctx.Done():
		log.Printf("signal received, draining for up to %s", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("grace expired, cancelling in-flight sweeps: %v", err)
		}
		cancelSweeps()
		srv.Close()
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
	log.Printf("bye")
}

// runChaos executes the soak and exits the process with its verdict.
func runChaos(schedules int, seed int64, workers, rules int, out string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := chaos.Soak(ctx, chaos.Config{
		Schedules: schedules,
		Seed:      seed,
		Workers:   workers,
		Rules:     rules,
		Logf:      log.Printf,
	})
	if err != nil {
		log.Fatalf("chaos: %v", err)
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatalf("chaos: encoding verdict log: %v", err)
	}
	blob = append(blob, '\n')
	if out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(out, blob, 0o644); err != nil {
		log.Fatalf("chaos: writing -chaos-out: %v", err)
	}
	if !res.OK() {
		log.Fatalf("chaos: SOAK FAILED: %d/%d schedules failed", res.Failed, res.Schedules)
	}
	log.Printf("chaos: soak passed: %d/%d schedules byte-identical or typed-error", res.Passed, res.Schedules)
}
