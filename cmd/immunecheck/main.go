// Command immunecheck verifies the misaligned-CNT immunity of CNFET cell
// layouts (the Fig 2 experiment): a deterministic critical-line
// certificate plus Monte Carlo sampling, and a functional-yield comparison
// of the vulnerable, etched [6], and compact (this paper) styles.
//
// Usage:
//
//	immunecheck                     # run the Fig 2 comparison on NAND2
//	immunecheck -cell "AB+C"        # any pull-down expression
//	immunecheck -tubes 20000 -angle 20
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"cnfetdk/internal/cnt"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/immunity"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/report"
	"cnfetdk/internal/rules"
)

func main() {
	cell := flag.String("cell", "AB", "pull-down function of the cell under test")
	tubes := flag.Int("tubes", 10000, "Monte Carlo tube count per network")
	angle := flag.Float64("angle", 15, "maximum misalignment angle (degrees)")
	trials := flag.Int("trials", 200, "functional-yield population trials")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g, err := network.NewGate(*cell, logic.MustParse(*cell), 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "immunecheck:", err)
		os.Exit(1)
	}
	rs := rules.Default65nm(rules.CNFET)

	tab := &report.Table{
		Title: fmt.Sprintf("Misaligned-CNT immunity of %q layouts (%d tubes, ±%.0f°)",
			*cell, *tubes, *angle),
		Headers: []string{"style", "critical-lines", "MC fail rate", "functional yield"},
	}
	params := cnt.DefaultParams()
	params.MisalignedFrac = 0.25
	params.MaxAngleDeg = *angle
	params.PitchNM = 20

	for _, style := range []layout.Style{layout.StyleVulnerable, layout.StyleEtched, layout.StyleCompact} {
		c, err := layout.Generate(*cell, g, style, geom.Lambda(4), rs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "immunecheck:", err)
			os.Exit(1)
		}
		punRep, pdnRep := immunity.VerifyImmunity(c)
		verdict := "IMMUNE"
		if !punRep.Immune() || !pdnRep.Immune() {
			verdict = fmt.Sprintf("%d violations", punRep.BadTubes+pdnRep.BadTubes)
		}
		cc := immunity.NewCellChecker(c)
		rng := rand.New(rand.NewSource(*seed))
		mc := cc.PUN().MonteCarlo(*tubes, *angle, rng)
		mcd := cc.PDN().MonteCarlo(*tubes, *angle, rng)
		failRate := (mc.FailureRate() + mcd.FailureRate()) / 2
		yield := cc.FunctionalYield(*trials, params, rand.New(rand.NewSource(*seed+1)))
		tab.AddRow(style.String(), verdict, report.Pct(failRate), report.Pct(yield))
	}
	tab.Format(os.Stdout)
	fmt.Println("\nThe compact layout (this paper) and the etched layout [6] certify as")
	fmt.Println("100% immune; the vulnerable layout (Fig 2b) shorts VDD to OUT under")
	fmt.Println("skewed tubes and loses functional yield.")
}
