// Command immunecheck verifies the misaligned-CNT immunity of CNFET cell
// layouts (the Fig 2 experiment): a deterministic critical-line
// certificate plus Monte Carlo sampling, and a functional-yield comparison
// of the vulnerable, etched [6], and compact (this paper) styles. With
// -circuit it instead certifies every distinct cell of a registry circuit
// through the design-service API.
//
// Usage:
//
//	immunecheck                     # run the Fig 2 comparison on NAND2
//	immunecheck -cell "AB+C"        # any pull-down expression
//	immunecheck -tubes 20000 -angle 20
//	immunecheck -circuit rca4       # whole-design certificate via Kit.Run
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"

	"cnfetdk/internal/cnt"
	"cnfetdk/internal/flow"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/immunity"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/report"
	"cnfetdk/internal/rules"
)

func main() {
	cell := flag.String("cell", "AB", "pull-down function of the cell under test")
	circuit := flag.String("circuit", "", "certify a registry circuit via the design service")
	tubes := flag.Int("tubes", 10000, "Monte Carlo tube count per network")
	angle := flag.Float64("angle", 15, "maximum misalignment angle (degrees)")
	trials := flag.Int("trials", 200, "functional-yield population trials")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if *circuit != "" {
		// -trials (functional-yield populations) only applies to the
		// per-cell style comparison, not the design-service certificate.
		if err := checkCircuit(*circuit, *tubes, *angle, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "immunecheck:", err)
			os.Exit(1)
		}
		return
	}

	g, err := network.NewGate(*cell, logic.MustParse(*cell), 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "immunecheck:", err)
		os.Exit(1)
	}
	rs := rules.Default65nm(rules.CNFET)

	tab := &report.Table{
		Title: fmt.Sprintf("Misaligned-CNT immunity of %q layouts (%d tubes, ±%.0f°)",
			*cell, *tubes, *angle),
		Headers: []string{"style", "critical-lines", "MC fail rate", "functional yield"},
	}
	params := cnt.DefaultParams()
	params.MisalignedFrac = 0.25
	params.MaxAngleDeg = *angle
	params.PitchNM = 20

	for _, style := range []layout.Style{layout.StyleVulnerable, layout.StyleEtched, layout.StyleCompact} {
		c, err := layout.Generate(*cell, g, style, geom.Lambda(4), rs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "immunecheck:", err)
			os.Exit(1)
		}
		punRep, pdnRep := immunity.VerifyImmunity(c)
		verdict := "IMMUNE"
		if !punRep.Immune() || !pdnRep.Immune() {
			verdict = fmt.Sprintf("%d violations", punRep.BadTubes+pdnRep.BadTubes)
		}
		cc := immunity.NewCellChecker(c)
		rng := rand.New(rand.NewSource(*seed))
		mc := cc.PUN().MonteCarlo(*tubes, *angle, rng)
		mcd := cc.PDN().MonteCarlo(*tubes, *angle, rng)
		failRate := (mc.FailureRate() + mcd.FailureRate()) / 2
		yield := cc.FunctionalYield(*trials, params, rand.New(rand.NewSource(*seed+1)))
		tab.AddRow(style.String(), verdict, report.Pct(failRate), report.Pct(yield))
	}
	tab.Format(os.Stdout)
	fmt.Println("\nThe compact layout (this paper) and the etched layout [6] certify as")
	fmt.Println("100% immune; the vulnerable layout (Fig 2b) shorts VDD to OUT under")
	fmt.Println("skewed tubes and loses functional yield.")
}

// checkCircuit certifies every distinct cell of a registry circuit
// through the design-service API.
func checkCircuit(name string, mcTubes int, angle float64, seed int64) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	kit, err := flow.New(ctx)
	if err != nil {
		return err
	}
	res, err := kit.Run(ctx, flow.Request{
		Circuit:    name,
		Techs:      []string{"cnfet"},
		Analyses:   []flow.Analysis{flow.AnalysisImmunity},
		MCTubes:    mcTubes,
		MCAngleDeg: angle,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	imm := res.Techs["cnfet"].Immunity
	fmt.Printf("%s: %d distinct cells, %d critical lines checked\n",
		res.Circuit, imm.CellsChecked, imm.CriticalLines)
	if imm.MCTubes > 0 {
		fmt.Printf("Monte Carlo: %d tubes (±%.0f°), fail rate %s\n",
			imm.MCTubes, angle, report.Pct(imm.MCFailRate))
	}
	if !imm.Immune {
		return fmt.Errorf("%d violations in cells %v", imm.Violations, imm.VulnerableCells)
	}
	fmt.Println("verdict: IMMUNE")
	return nil
}
