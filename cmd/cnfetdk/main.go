// Command cnfetdk is the end-to-end logic-to-GDSII flow driver (Fig 5),
// a thin CLI over the design-service API: it builds a flow.Request from
// Boolean output expressions (or a structural netlist, or a registry
// circuit name), runs it through Kit.Run, and reports areas, gains and
// GDSII output.
//
// Usage:
//
//	cnfetdk -expr "Sum=A*B'+A'*B" -expr "C=A*B" -gds out.gds
//	cnfetdk -in design.net -scheme 2 -gds out.gds
//	cnfetdk -circuit rca4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"cnfetdk/internal/flow"
)

type exprList []string

func (e *exprList) String() string     { return strings.Join(*e, ";") }
func (e *exprList) Set(s string) error { *e = append(*e, s); return nil }

func main() {
	var exprs exprList
	flag.Var(&exprs, "expr", "output expression NAME=f (repeatable)")
	in := flag.String("in", "", "structural netlist file (alternative to -expr)")
	circuit := flag.String("circuit", "", "registry circuit name (alternative to -expr/-in)")
	name := flag.String("name", "design", "design name")
	scheme := flag.Int("scheme", 2, "CNFET layout scheme (1 or 2)")
	gds := flag.String("gds", "", "output GDS path")
	workers := flag.Int("j", 0, "worker-pool width (0 = one per CPU, 1 = sequential)")
	analyses := flag.String("analyses", "area", "comma-separated analyses (area,delay,sta,energy,immunity)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	req, err := buildRequest(*circuit, exprs, *in, *name, *scheme, *analyses)
	if err != nil {
		fail(err)
	}
	kit, err := flow.New(ctx, flow.WithWorkers(*workers))
	if err != nil {
		fail(err)
	}
	res, err := kit.Run(ctx, req)
	if err != nil {
		fail(err)
	}
	fmt.Printf("netlist %s: %d instances, %d nets\n", res.Circuit, res.Instances, res.Nets)

	cn := res.Techs["cnfet"]
	if cn.AreaLam2 > 0 {
		fmt.Printf("placed (scheme %d): %.0fλ x %.0fλ = %.0f λ², utilization %.2f\n",
			*scheme, cn.WidthLam, cn.HeightLam, cn.AreaLam2, cn.Utilization)
		if cm := res.Techs["cmos"]; cm != nil {
			fmt.Printf("CMOS reference: %.0f λ² (CNFET gain %.2fx)\n",
				cm.AreaLam2, res.Gains["area"])
		}
	}
	if cn.DelayS > 0 {
		fmt.Printf("delay: %.1f ps\n", cn.DelayS*1e12)
	}
	if s := cn.STA; s != nil {
		fmt.Printf("sta: %.1f ps over %d levels (%d instances), worst net %s\n",
			s.DelayS*1e12, s.Levels, s.Instances, s.WorstNet)
		if len(s.CriticalPath) > 0 {
			fmt.Printf("critical path: %s\n", strings.Join(s.CriticalPath, " -> "))
		}
		if cm := res.Techs["cmos"]; cm != nil && cm.STA != nil {
			fmt.Printf("CMOS sta: %.1f ps (CNFET gain %.2fx)\n",
				cm.STA.DelayS*1e12, res.Gains["sta"])
		}
	}
	if cn.EnergyJ > 0 {
		fmt.Printf("energy: %.2f fJ/cycle\n", cn.EnergyJ*1e15)
	}

	if *gds != "" {
		// A CNFET-only follow-up job renders the stream; its netlist
		// and placement stages come straight from the memo cache.
		gdsReq := req
		gdsReq.Techs = []string{"cnfet"}
		gdsReq.Analyses = []flow.Analysis{flow.AnalysisGDS}
		gres, err := kit.Run(ctx, gdsReq)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*gds, gres.Techs["cnfet"].GDS, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *gds)
	}
}

// buildRequest assembles the service request from the CLI surface.
func buildRequest(circuit string, exprs exprList, inPath, name string, scheme int, analyses string) (flow.Request, error) {
	req := flow.Request{
		Techs: []string{"cnfet", "cmos"},
	}
	for _, a := range strings.Split(analyses, ",") {
		if a = strings.TrimSpace(a); a != "" {
			req.Analyses = append(req.Analyses, flow.Analysis(a))
		}
	}
	if scheme == 1 {
		req.Placement = "rows"
	}
	switch {
	case circuit != "":
		req.Circuit = circuit
	case inPath != "":
		blob, err := os.ReadFile(inPath)
		if err != nil {
			return req, err
		}
		req.Netlist = string(blob)
	case len(exprs) > 0:
		req.Name = name
		req.Exprs = map[string]string{}
		for _, s := range exprs {
			parts := strings.SplitN(s, "=", 2)
			if len(parts) != 2 {
				return req, fmt.Errorf("bad -expr %q, want NAME=function", s)
			}
			req.Exprs[strings.TrimSpace(parts[0])] = parts[1]
		}
	default:
		return req, fmt.Errorf("need -expr, -in or -circuit (try -expr \"Y=A*B+C\")")
	}
	return req, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cnfetdk:", err)
	os.Exit(1)
}
