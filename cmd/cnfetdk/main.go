// Command cnfetdk is the end-to-end logic-to-GDSII flow driver (Fig 5):
// it synthesizes Boolean output expressions (or reads a structural
// netlist), maps them onto the misaligned-CNT-immune CNFET standard-cell
// library, verifies the mapped logic, places the design, and streams
// GDSII.
//
// Usage:
//
//	cnfetdk -expr "Sum=A*B'+A'*B" -expr "C=A*B" -gds out.gds
//	cnfetdk -in design.net -scheme 2 -gds out.gds
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cnfetdk/internal/flow"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/place"
	"cnfetdk/internal/synth"
)

type exprList []string

func (e *exprList) String() string     { return strings.Join(*e, ";") }
func (e *exprList) Set(s string) error { *e = append(*e, s); return nil }

func main() {
	var exprs exprList
	flag.Var(&exprs, "expr", "output expression NAME=f (repeatable)")
	in := flag.String("in", "", "structural netlist file (alternative to -expr)")
	name := flag.String("name", "design", "design name")
	scheme := flag.Int("scheme", 2, "CNFET layout scheme (1 or 2)")
	gds := flag.String("gds", "", "output GDS path")
	flag.Parse()

	nl, err := buildNetlist(*name, exprs, *in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnfetdk:", err)
		os.Exit(1)
	}
	fmt.Printf("netlist %s: %d instances, %d nets\n", nl.Name, len(nl.Instances), len(nl.Nets()))

	kit, err := flow.NewKit()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnfetdk:", err)
		os.Exit(1)
	}
	var placement *place.Placement
	if *scheme == 1 {
		placement, err = place.Rows(kit.CNFET, nl, 0)
	} else {
		placement, err = place.Shelves(kit.CNFET, nl, 0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnfetdk:", err)
		os.Exit(1)
	}
	fmt.Printf("placed (scheme %d): %.0fλ x %.0fλ = %.0f λ², utilization %.2f\n",
		*scheme, placement.Width.Lambdas(), placement.Height.Lambdas(),
		placement.Area(), placement.Utilization())

	// CMOS reference for context.
	cmosPl, err := place.Rows(kit.CMOS, nl, 0)
	if err == nil {
		fmt.Printf("CMOS reference: %.0f λ² (CNFET gain %.2fx)\n",
			cmosPl.Area(), cmosPl.Area()/placement.Area())
	}

	if *gds != "" {
		f, err := os.Create(*gds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnfetdk:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := flow.WritePlacementGDS(f, kit.CNFET, placement, strings.ToUpper(nl.Name)); err != nil {
			fmt.Fprintln(os.Stderr, "cnfetdk:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *gds)
	}
}

func buildNetlist(name string, exprs exprList, inPath string) (*synth.Netlist, error) {
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		nl, err := synth.Parse(f)
		if err != nil {
			return nil, err
		}
		return nl, nil
	}
	if len(exprs) == 0 {
		return nil, fmt.Errorf("need -expr or -in (try -expr \"Y=A*B+C\")")
	}
	outputs := map[string]*logic.Expr{}
	for _, s := range exprs {
		parts := strings.SplitN(s, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -expr %q, want NAME=function", s)
		}
		e, err := logic.Parse(parts[1])
		if err != nil {
			return nil, fmt.Errorf("expr %q: %w", s, err)
		}
		outputs[strings.TrimSpace(parts[0])] = e
	}
	return synth.Synthesize(name, outputs)
}
