// Command cnfetopt runs the processing/circuit co-optimization: given a
// registry circuit and a functional-yield target, it searches the joint
// space of CNT processing knobs (inter-tube pitch, growth quality,
// alignment) and circuit knobs (drive sizing) and prints the Pareto
// front of processing cost versus circuit cost.
//
// Usage:
//
//	cnfetopt -circuit mux2 -yield 0.99
//	cnfetopt -circuit dec2 -yield 0.999 -pitches 5,8,13 -cvs 0.1,0.2 \
//	         -aligns 0.01,0.1 -drives 1,2 -csv front.csv
//	cnfetopt -spec coopt.json -o front.json
//	cnfetopt -circuit mux2 -coordinator http://fab:8066   # measured sweep on the fabric
//
// The measured layer (the variation sweep) runs locally by default; with
// -coordinator it runs on a sweep-fabric worker fleet instead, producing
// the byte-identical front. With -store, the measured stages persist so
// repeated searches warm-start.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"cnfetdk/internal/coopt"
	"cnfetdk/internal/fabric"
	"cnfetdk/internal/flow"
	"cnfetdk/internal/sweep"
)

func main() {
	specPath := flag.String("spec", "", "coopt.Spec JSON file (\"-\" for stdin); overrides the knob flags")
	circuit := flag.String("circuit", "", "registry circuit to co-optimize")
	placement := flag.String("placement", "", "CNFET placement scheme (rows, shelves)")
	yield := flag.Float64("yield", 0, "functional-yield target (0 = default 0.99)")
	pitches := flag.String("pitches", "", "comma-separated pitch grid in nm")
	cvs := flag.String("cvs", "", "comma-separated CNT count-CV grid")
	aligns := flag.String("aligns", "", "comma-separated alignment-probability grid")
	drives := flag.String("drives", "", "comma-separated drive-multiplier grid")
	diaSigma := flag.Float64("dia-sigma", 0, "per-tube diameter spread in nm (fixed, not searched)")
	mcTubes := flag.Int("tubes", 0, "immunity Monte Carlo tubes per network (0 = certificates only)")
	samples := flag.Int("samples", 0, "delay-ensemble size per measured point (0 = flow default)")
	seed := flag.Int64("seed", 0, "ensemble / Monte Carlo seed")
	workers := flag.Int("j", 0, "concurrent measured points (0 = one per CPU)")
	coordinator := flag.String("coordinator", "", "sweep-fabric coordinator URL; the measured sweep runs on its worker fleet")
	storeDir := flag.String("store", "", "persistent artifact-store directory for the measured stages")
	outPath := flag.String("o", "", "write the front's canonical JSON here (\"-\" for stdout)")
	csvPath := flag.String("csv", "", "write the front as CSV (\"-\" for stdout)")
	quiet := flag.Bool("q", false, "suppress the progress and summary output")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	spec, err := assembleSpec(*specPath, *circuit, *placement, *yield,
		*pitches, *cvs, *aligns, *drives, *diaSigma, *mcTubes, *samples, *seed, *workers)
	if err != nil {
		fatal(err)
	}

	var runner coopt.Runner
	if *coordinator != "" {
		client := &fabric.Client{URL: *coordinator}
		if !*quiet {
			client.OnLine = func(line fabric.StreamLine) {
				if line.Point != nil {
					fmt.Fprintf(os.Stderr, "cnfetopt: measured %s (%s)\n", line.Point.ID, line.Worker)
				}
			}
		}
		runner = client
	} else {
		kitOpts := []flow.Option{flow.WithWorkers(*workers)}
		if *storeDir != "" {
			kitOpts = append(kitOpts, flow.WithStore(*storeDir))
		}
		kit, err := flow.New(ctx, kitOpts...)
		if err != nil {
			fatal(err)
		}
		runner = coopt.KitRunner{Kit: sweep.For(kit)}
	}

	front, err := coopt.Search(ctx, runner, *spec)
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		fmt.Fprintf(os.Stderr, "cnfetopt: %s: %d candidates evaluated, %d feasible at yield >= %g, front of %d\n",
			front.Spec.Circuit, front.Evaluated, front.Feasible, front.Spec.YieldTarget, len(front.Candidates))
	}
	if *outPath != "" {
		if err := writeFront(*outPath, front); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, front); err != nil {
			fatal(err)
		}
	}
	if *outPath == "" && *csvPath == "" {
		if err := writeCSV("-", front); err != nil {
			fatal(err)
		}
	}
}

// assembleSpec builds the spec from a file or the knob flags.
func assembleSpec(specPath, circuit, placement string, yield float64,
	pitches, cvs, aligns, drives string, diaSigma float64,
	mcTubes, samples int, seed int64, workers int) (*coopt.Spec, error) {
	var spec coopt.Spec
	if specPath != "" {
		var r io.Reader
		if specPath == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(specPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r = f
		}
		dec := json.NewDecoder(r)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return nil, fmt.Errorf("decoding %s: %w", specPath, err)
		}
	} else {
		spec.Circuit = circuit
		spec.Placement = placement
		spec.YieldTarget = yield
		var err error
		if spec.PitchesNM, err = parseFloats(pitches); err != nil {
			return nil, fmt.Errorf("-pitches: %w", err)
		}
		if spec.CountCVs, err = parseFloats(cvs); err != nil {
			return nil, fmt.Errorf("-cvs: %w", err)
		}
		if spec.AlignmentPs, err = parseFloats(aligns); err != nil {
			return nil, fmt.Errorf("-aligns: %w", err)
		}
		if spec.Drives, err = parseFloats(drives); err != nil {
			return nil, fmt.Errorf("-drives: %w", err)
		}
		spec.DiameterSigmaNM = diaSigma
		spec.MCTubes = mcTubes
		spec.VarSamples = samples
		spec.Seed = seed
	}
	if workers != 0 {
		spec.Workers = workers
	}
	return &spec, spec.Validate()
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func writeFront(path string, front *coopt.Front) error {
	blob, err := front.CanonicalJSON()
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

func writeCSV(path string, front *coopt.Front) error {
	if path == "-" {
		return front.WriteCSV(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := front.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cnfetopt:", err)
	os.Exit(1)
}
