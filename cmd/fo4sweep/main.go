// Command fo4sweep reproduces Fig 7 and case study 1: the FO4 delay and
// energy gains of a CNFET inverter over the 65nm CMOS reference as a
// function of the number of CNTs per device (fixed gate width), locating
// the optimal pitch. With -spice it cross-checks selected points against
// the transistor-level transient simulator.
//
// Usage:
//
//	fo4sweep              # analytic sweep + ASCII figure
//	fo4sweep -csv out.csv # dump the series
//	fo4sweep -spice       # add transient-simulation cross-check
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"

	"cnfetdk/internal/device"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/report"
	"cnfetdk/internal/spice"
)

func main() {
	maxN := flag.Int("max", 40, "maximum number of CNTs per device")
	csvPath := flag.String("csv", "", "write the sweep as CSV")
	doSpice := flag.Bool("spice", false, "cross-check with transient simulation")
	flag.Parse()

	p := device.DefaultFO4()
	var series report.Series
	series.Name = "Fig 7 — FO4 delay gain vs number of CNTs (CNFET over CMOS 65nm)"
	var rows [][]string
	for n := 1; n <= *maxN; n++ {
		g := p.DelayGain(n)
		series.X = append(series.X, float64(n))
		series.Y = append(series.Y, g)
		rows = append(rows, []string{
			strconv.Itoa(n),
			fmt.Sprintf("%.3f", device.Pitch(n)),
			fmt.Sprintf("%.3f", g),
			fmt.Sprintf("%.3f", p.EnergyGain(n)),
			fmt.Sprintf("%.3f", p.EDPGain(n)),
		})
	}
	report.ASCIIPlot(os.Stdout, series, 72, 16)

	opt := p.OptimalN(*maxN)
	fmt.Printf("\nCase study 1 anchors:\n")
	fmt.Printf("  1 CNT:  delay gain %s, energy gain %s (paper: ~2.75x, ~6.3x)\n",
		report.Gain(p.DelayGain(1)), report.Gain(p.EnergyGain(1)))
	fmt.Printf("  optimum: N=%d (pitch %.2fnm): delay gain %s, energy gain %s (paper: 5nm, 4.2x, 2x)\n",
		opt, device.Pitch(opt), report.Gain(p.DelayGain(opt)), report.Gain(p.EnergyGain(26)))
	fmt.Printf("  CNFET FO4 at optimum: %.2fps (CMOS anchor %.0fps)\n",
		p.DelayPS(opt), device.CMOSFO4ps)
	band := p.DelayUnits(opt)
	worst := 0.0
	for _, n := range []int{24, 25, 26, 27, 28, 29} {
		if d := (p.DelayUnits(n) - band) / band; d > worst {
			worst = d
		}
	}
	fmt.Printf("  pitch band 4.5-5.5nm: worst delay penalty %.2f%% (paper: 1%%)\n", 100*worst)
	fmt.Printf("  max EDP gain over sweep: %s (paper: >10x)\n", report.Gain(maxEDP(p, *maxN)))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fo4sweep:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := report.CSV(f, []string{"n", "pitch_nm", "delay_gain", "energy_gain", "edp_gain"}, rows); err != nil {
			fmt.Fprintln(os.Stderr, "fo4sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}

	if *doSpice {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		fmt.Println("\nTransient cross-check (5-stage FO4 chain, 3rd stage):")
		// The CMOS reference chain is independent of N: simulate it once,
		// then fan the CNFET points out across the worker pool.
		cm, err := measureFO4(func(name, in, out string, c *spice.Circuit) {
			c.AddFET(name+".p", out, in, "vdd", device.CMOSFET(name+".p", device.PType, 1.4))
			c.AddFET(name+".n", out, in, "0", device.CMOSFET(name+".n", device.NType, 1))
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fo4sweep:", err)
			os.Exit(1)
		}
		points := []int{1, 8, opt}
		gains, err := pipeline.MapCtx(ctx, 0, points, func(_ int, n int) (float64, error) {
			cn, err := measureFO4(func(name, in, out string, c *spice.Circuit) {
				np := device.CNFET(name+".n", device.NType, n, device.GateWidthNM, p)
				pp := device.CNFET(name+".p", device.PType, n, device.GateWidthNM, p)
				c.AddFET(name+".p", out, in, "vdd", pp)
				c.AddFET(name+".n", out, in, "0", np)
			})
			if err != nil {
				return 0, err
			}
			return cm / cn, nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fo4sweep:", err)
			os.Exit(1)
		}
		for i, n := range points {
			fmt.Printf("  N=%-3d analytic %.2fx  spice %.2fx\n", n, p.DelayGain(n), gains[i])
		}
	}
}

func maxEDP(p device.FO4Params, maxN int) float64 {
	best := 0.0
	for n := 1; n <= maxN; n++ {
		if g := p.EDPGain(n); g > best {
			best = g
		}
	}
	return best
}

func measureFO4(addInv func(name, in, out string, c *spice.Circuit)) (float64, error) {
	c := spice.New()
	c.AddV("vdd", "vdd", "0", spice.DC(device.Vdd))
	c.AddV("vin", "n0", "0", spice.Pulse{
		V0: 0, V1: device.Vdd, Delay: 100e-12, Rise: 10e-12, Fall: 10e-12,
		W: 500e-12, Period: 1000e-12,
	})
	for st := 1; st <= 5; st++ {
		in := fmt.Sprintf("n%d", st-1)
		out := fmt.Sprintf("n%d", st)
		addInv(fmt.Sprintf("s%d", st), in, out, c)
		if st < 5 {
			for k := 0; k < 3; k++ {
				addInv(fmt.Sprintf("l%d_%d", st, k), out, fmt.Sprintf("%sd%d", out, k), c)
			}
		}
	}
	res, err := c.Transient(1000e-12, 4000, spice.DefaultOptions())
	if err != nil {
		return 0, err
	}
	return res.PropDelay("n2", "n3", device.Vdd)
}
