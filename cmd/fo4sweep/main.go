// Command fo4sweep reproduces Fig 7 and case study 1: the FO4 delay and
// energy gains of a CNFET inverter over the 65nm CMOS reference as a
// function of the number of CNTs per device (fixed gate width), locating
// the optimal pitch. With -spice it cross-checks selected points against
// the transistor-level transient simulator.
//
// The sweep itself rides on the batch engine's executor (sweep.Points):
// the CNT axis fans out across the worker pool with deterministic
// ordering, exactly like a circuit-level sweep.Spec — this axis just
// lives below the cell library, at the device level.
//
// Usage:
//
//	fo4sweep               # analytic sweep + ASCII figure
//	fo4sweep -csv out.csv  # dump the series
//	fo4sweep -json out.json# dump the series + summary statistics
//	fo4sweep -spice -j 4   # transient cross-check on 4 workers
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"

	"cnfetdk/internal/device"
	"cnfetdk/internal/report"
	"cnfetdk/internal/spice"
	"cnfetdk/internal/sweep"
)

// fo4Point is one row of the analytic sweep.
type fo4Point struct {
	N          int     `json:"n"`
	PitchNM    float64 `json:"pitch_nm"`
	DelayGain  float64 `json:"delay_gain"`
	EnergyGain float64 `json:"energy_gain"`
	EDPGain    float64 `json:"edp_gain"`
}

func main() {
	maxN := flag.Int("max", 40, "maximum number of CNTs per device")
	csvPath := flag.String("csv", "", "write the sweep as CSV")
	jsonPath := flag.String("json", "", "write the sweep + summary statistics as JSON")
	doSpice := flag.Bool("spice", false, "cross-check with transient simulation")
	workers := flag.Int("j", 0, "sweep workers (0 = one per CPU)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	p := device.DefaultFO4()

	// The analytic axis: N = 1..max, fanned out through the batch
	// engine's executor (results assemble in N order at any -j).
	ns := make([]int, *maxN)
	for i := range ns {
		ns[i] = i + 1
	}
	points, err := sweep.Points(ctx, *workers, nil, ns, func(_ int, n int) (fo4Point, error) {
		return fo4Point{
			N:          n,
			PitchNM:    device.Pitch(n),
			DelayGain:  p.DelayGain(n),
			EnergyGain: p.EnergyGain(n),
			EDPGain:    p.EDPGain(n),
		}, nil
	})
	if err != nil {
		fatal(err)
	}

	var series report.Series
	series.Name = "Fig 7 — FO4 delay gain vs number of CNTs (CNFET over CMOS 65nm)"
	var rows [][]string
	delayGains := make([]float64, 0, len(points))
	edpGains := make([]float64, 0, len(points))
	for _, pt := range points {
		series.X = append(series.X, float64(pt.N))
		series.Y = append(series.Y, pt.DelayGain)
		delayGains = append(delayGains, pt.DelayGain)
		edpGains = append(edpGains, pt.EDPGain)
		rows = append(rows, []string{
			strconv.Itoa(pt.N),
			fmt.Sprintf("%.3f", pt.PitchNM),
			fmt.Sprintf("%.3f", pt.DelayGain),
			fmt.Sprintf("%.3f", pt.EnergyGain),
			fmt.Sprintf("%.3f", pt.EDPGain),
		})
	}
	report.ASCIIPlot(os.Stdout, series, 72, 16)

	opt := p.OptimalN(*maxN)
	fmt.Printf("\nCase study 1 anchors:\n")
	fmt.Printf("  1 CNT:  delay gain %s, energy gain %s (paper: ~2.75x, ~6.3x)\n",
		report.Gain(p.DelayGain(1)), report.Gain(p.EnergyGain(1)))
	fmt.Printf("  optimum: N=%d (pitch %.2fnm): delay gain %s, energy gain %s (paper: 5nm, 4.2x, 2x)\n",
		opt, device.Pitch(opt), report.Gain(p.DelayGain(opt)), report.Gain(p.EnergyGain(26)))
	fmt.Printf("  CNFET FO4 at optimum: %.2fps (CMOS anchor %.0fps)\n",
		p.DelayPS(opt), device.CMOSFO4ps)
	band := p.DelayUnits(opt)
	worst := 0.0
	for _, n := range []int{24, 25, 26, 27, 28, 29} {
		if d := (p.DelayUnits(n) - band) / band; d > worst {
			worst = d
		}
	}
	fmt.Printf("  pitch band 4.5-5.5nm: worst delay penalty %.2f%% (paper: 1%%)\n", 100*worst)
	delayStats := sweep.Summarize(delayGains)
	edpStats := sweep.Summarize(edpGains)
	fmt.Printf("  delay gain over sweep: min %.2fx p50 %.2fx p90 %.2fx max %.2fx\n",
		delayStats.Min, delayStats.P50, delayStats.P90, delayStats.Max)
	fmt.Printf("  max EDP gain over sweep: %s (paper: >10x)\n", report.Gain(edpStats.Max))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := report.CSV(f, []string{"n", "pitch_nm", "delay_gain", "energy_gain", "edp_gain"}, rows); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"points":  points,
			"summary": map[string]sweep.Stats{"delay_gain": delayStats, "edp_gain": edpStats},
		}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if *doSpice {
		fmt.Println("\nTransient cross-check (5-stage FO4 chain, 3rd stage):")
		// The CMOS reference chain is independent of N: simulate it once,
		// then fan the CNFET points out through the sweep executor.
		cm, err := measureFO4(func(name, in, out string, c *spice.Circuit) {
			c.AddFET(name+".p", out, in, "vdd", device.CMOSFET(name+".p", device.PType, 1.4))
			c.AddFET(name+".n", out, in, "0", device.CMOSFET(name+".n", device.NType, 1))
		})
		if err != nil {
			fatal(err)
		}
		spicePoints := []int{1, 8, opt}
		gains, err := sweep.Points(ctx, *workers, nil, spicePoints, func(_ int, n int) (float64, error) {
			cn, err := measureFO4(func(name, in, out string, c *spice.Circuit) {
				np := device.CNFET(name+".n", device.NType, n, device.GateWidthNM, p)
				pp := device.CNFET(name+".p", device.PType, n, device.GateWidthNM, p)
				c.AddFET(name+".p", out, in, "vdd", pp)
				c.AddFET(name+".n", out, in, "0", np)
			})
			if err != nil {
				return 0, err
			}
			return cm / cn, nil
		})
		if err != nil {
			fatal(err)
		}
		for i, n := range spicePoints {
			fmt.Printf("  N=%-3d analytic %.2fx  spice %.2fx\n", n, p.DelayGain(n), gains[i])
		}
	}
}

func measureFO4(addInv func(name, in, out string, c *spice.Circuit)) (float64, error) {
	c := spice.New()
	c.AddV("vdd", "vdd", "0", spice.DC(device.Vdd))
	c.AddV("vin", "n0", "0", spice.Pulse{
		V0: 0, V1: device.Vdd, Delay: 100e-12, Rise: 10e-12, Fall: 10e-12,
		W: 500e-12, Period: 1000e-12,
	})
	for st := 1; st <= 5; st++ {
		in := fmt.Sprintf("n%d", st-1)
		out := fmt.Sprintf("n%d", st)
		addInv(fmt.Sprintf("s%d", st), in, out, c)
		if st < 5 {
			for k := 0; k < 3; k++ {
				addInv(fmt.Sprintf("l%d_%d", st, k), out, fmt.Sprintf("%sd%d", out, k), c)
			}
		}
	}
	res, err := c.Transient(1000e-12, 4000, spice.DefaultOptions())
	if err != nil {
		return 0, err
	}
	return res.PropDelay("n2", "n3", device.Vdd)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fo4sweep:", err)
	os.Exit(1)
}
