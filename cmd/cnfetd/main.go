// Command cnfetd serves the design kit over HTTP: one shared kit (both
// technology libraries, one singleflight memo cache) executes
// flow.Request jobs concurrently for many clients.
//
// Usage:
//
//	cnfetd                       # listen on :8065
//	cnfetd -addr 127.0.0.1:9000  # explicit listen address
//	cnfetd -j 4                  # bound the worker pool
//
// Routes:
//
//	POST /v1/jobs      — run a design job (flow.Request JSON body)
//	GET  /v1/circuits  — list the named-circuit registry
//	GET  /healthz      — liveness + cache statistics
//
// Example:
//
//	curl -s localhost:8065/v1/jobs -d '{"circuit":"fulladder","analyses":["area","delay"]}'
//
// SIGINT/SIGTERM drain in-flight jobs (bounded by -grace) before exit;
// a dropped client connection cancels its job mid-flow.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cnfetdk/internal/flow"
	"cnfetdk/internal/service"
)

func main() {
	addr := flag.String("addr", ":8065", "listen address")
	workers := flag.Int("j", 0, "worker-pool width (0 = one per CPU, 1 = sequential)")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight jobs")
	cacheLimit := flag.Int("cache-entries", 4096, "memo-cache entry bound (0 = unbounded)")
	flag.Parse()

	log.SetPrefix("cnfetd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	t0 := time.Now()
	kit, err := flow.New(ctx, flow.WithWorkers(*workers), flow.WithCacheLimit(*cacheLimit))
	if err != nil {
		log.Fatalf("building kit: %v", err)
	}
	log.Printf("kit ready in %s (%d CNFET + %d CMOS cells, %d registry circuits)",
		time.Since(t0).Round(time.Millisecond),
		len(kit.CNFET.Names()), len(kit.CMOS.Names()), len(flow.Circuits()))

	// Jobs get their own lifetime, detached from the signal context, so
	// a SIGTERM lets in-flight jobs finish within the grace period; only
	// when the grace expires are they cancelled mid-flow.
	jobCtx, cancelJobs := context.WithCancel(context.Background())
	defer cancelJobs()
	srv := &http.Server{
		Addr:        *addr,
		Handler:     service.NewServer(kit),
		BaseContext: func(net.Listener) context.Context { return jobCtx },
		// Slow-client bounds; no WriteTimeout because legitimate jobs
		// (liberty characterization) can run long before responding.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	done := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		done <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Printf("signal received, draining for up to %s", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("grace expired, cancelling in-flight jobs: %v", err)
			cancelJobs()
			srv.Close()
		}
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "cnfetd: bye")
}
