// Command cnfetd serves the design kit over HTTP: one shared kit (both
// technology libraries, one singleflight memo cache) executes
// flow.Request jobs and sweep.Spec batches concurrently for many clients.
//
// Usage:
//
//	cnfetd                       # listen on :8065
//	cnfetd -addr 127.0.0.1:9000  # explicit listen address
//	cnfetd -addr 127.0.0.1:0 -addr-file /tmp/cnfetd.addr  # free port, written to a file
//	cnfetd -j 4                  # bound the worker pool
//	cnfetd -store .cnfet-store   # persist stage results across restarts
//	cnfetd -store .cnfet-store -store-budget 268435456  # cap it at 256MiB
//	cnfetd -pprof                # expose /debug/pprof/ (trusted listeners only)
//	cnfetd -join http://coord:8066            # enroll as a sweep-fabric worker
//	cnfetd -coordinator                       # also run a fabric coordinator
//
// Routes:
//
//	POST   /v1/jobs        — run a design job (flow.Request JSON body)
//	POST   /v1/sweeps      — start a parameter sweep (sweep.Spec JSON
//	                         body; async by default, ?stream=ndjson
//	                         streams completed points)
//	GET    /v1/sweeps      — list tracked sweeps
//	GET    /v1/sweeps/{id} — poll progress / fetch the final report
//	DELETE /v1/sweeps/{id} — cancel a running sweep
//	GET    /v1/circuits    — list the named-circuit registry
//	GET    /v1/cache       — artifact-store statistics (per-tier
//	                         hits/misses/bytes/evictions)
//	POST   /v1/cache/purge — drop every cached stage result
//	GET    /healthz        — liveness + cache statistics (legacy combined)
//	GET    /livez          — liveness probe
//	GET    /readyz        — readiness probe (503 while enrolling with a
//	                         fabric coordinator or draining)
//	GET    /metrics        — Prometheus-style metrics (worker role; with
//	                         -coordinator the fabric metrics append here)
//
// With -join, the daemon enrolls as a sweep-fabric worker: it
// heartbeats the coordinator and reports unready until enrollment
// succeeds. With -coordinator, the daemon additionally mounts the
// fabric coordinator surface (POST /v1/fabric/sweeps, /v1/fabric/workers)
// and shards fabric sweeps across its registered workers.
//
// With -store, stage results are written through to a content-addressed
// on-disk artifact store and served back after a restart: a daemon
// bounced mid-traffic warm-starts instead of recomputing its working
// set, and several daemons (or the CLIs) may share one store directory.
//
// Example:
//
//	curl -s localhost:8065/v1/jobs -d '{"circuit":"fulladder","analyses":["area","delay"]}'
//	curl -s localhost:8065/v1/sweeps -d '{"base":{"techs":["cnfet"],"analyses":["area"]},
//	  "axes":{"circuits":["mux2","dec2"],"placements":["rows","shelves"]}}'
//
// SIGINT/SIGTERM drain in-flight jobs (bounded by -grace) before exit;
// a dropped client connection cancels its job mid-flow, and expiring the
// grace cancels background sweeps too.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cnfetdk/internal/fabric"
	"cnfetdk/internal/fault"
	"cnfetdk/internal/flow"
	"cnfetdk/internal/promtext"
	"cnfetdk/internal/service"
)

func main() {
	addr := flag.String("addr", ":8065", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	workers := flag.Int("j", 0, "worker-pool width (0 = one per CPU, 1 = sequential)")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight jobs")
	cacheLimit := flag.Int("cache-entries", 4096, "in-memory stage-cache entry bound, LRU (0 = unbounded)")
	storeDir := flag.String("store", "", "persistent artifact-store directory (empty = in-memory only; results there survive restarts)")
	storeBudget := flag.Int64("store-budget", 0, "artifact-store size budget in bytes, oldest entries evicted past it (0 = unbounded)")
	sweepPoints := flag.Int("sweep-points", 1024, "per-sweep expansion cap")
	sweepStore := flag.Int("sweep-store", 64, "how many sweeps the status store retains")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling aid only — do not enable on a daemon reachable by untrusted clients)")
	stageTimeout := flag.Duration("stage-timeout", 0, "per-stage watchdog: kill any flow stage running longer than this (0 = unbounded; requests may override via stage_timeout_ms)")
	faultsPath := flag.String("faults", "", "fault-injection plan JSON file (chaos-testing aid; see internal/fault)")
	joinURL := flag.String("join", "", "sweep-fabric coordinator URL to enroll with as a worker (heartbeats until shutdown)")
	advertise := flag.String("advertise", "", "base URL workers advertise to the coordinator (default: http://<bound address>, 127.0.0.1 for wildcard binds)")
	coordinator := flag.Bool("coordinator", false, "also run a sweep-fabric coordinator (mounts /v1/fabric/ and appends fabric metrics to /metrics)")
	leasePoints := flag.Int("lease-points", fabric.DefaultLeasePoints, "coordinator: points per lease")
	maxAttempts := flag.Int("max-attempts", fabric.DefaultMaxAttempts, "coordinator: dispatch attempts per lease before a sweep fails")
	heartbeatTTL := flag.Duration("heartbeat-ttl", fabric.DefaultHeartbeatTTL, "coordinator: worker liveness window past its last heartbeat")
	flag.Parse()

	log.SetPrefix("cnfetd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	t0 := time.Now()
	kitOpts := []flow.Option{flow.WithWorkers(*workers), flow.WithCacheLimit(*cacheLimit)}
	if *storeDir != "" {
		kitOpts = append(kitOpts, flow.WithStore(*storeDir), flow.WithStoreBudget(*storeBudget))
	}
	if *stageTimeout > 0 {
		kitOpts = append(kitOpts, flow.WithStageTimeout(*stageTimeout))
	}
	if *faultsPath != "" {
		blob, err := os.ReadFile(*faultsPath)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		plan, err := fault.ParsePlan(blob)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		inj, err := fault.New(plan)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		kitOpts = append(kitOpts, flow.WithFaults(inj))
		log.Printf("fault injection armed: plan %q, seed %d, %d rules", plan.Name, plan.Seed, len(plan.Rules))
	}
	kit, err := flow.New(ctx, kitOpts...)
	if err != nil {
		log.Fatalf("building kit: %v", err)
	}
	log.Printf("kit ready in %s (%d CNFET + %d CMOS cells, %d registry circuits)",
		time.Since(t0).Round(time.Millisecond),
		len(kit.CNFET.Names()), len(kit.CMOS.Names()), len(flow.Circuits()))
	if *storeDir != "" {
		if st := kit.CacheStats(); st.Disk != nil {
			log.Printf("artifact store %s: %d entries, %d bytes resident", *storeDir, st.Disk.Entries, st.Disk.Bytes)
		}
	}

	// Jobs and background sweeps get their own lifetime, detached from
	// the signal context, so a SIGTERM lets in-flight work finish within
	// the grace period; only when the grace expires is it cancelled
	// mid-flow.
	jobCtx, cancelJobs := context.WithCancel(context.Background())
	defer cancelJobs()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatalf("writing -addr-file: %v", err)
		}
	}

	svc := service.NewServer(kit,
		service.WithBaseContext(jobCtx),
		service.WithSweepLimits(*sweepPoints, *sweepStore),
		service.WithLogf(log.Printf))
	var handler http.Handler = svc

	if *coordinator {
		coord := fabric.New(fabric.Options{
			LeasePoints:    *leasePoints,
			MaxAttempts:    *maxAttempts,
			HeartbeatTTL:   *heartbeatTTL,
			MaxSweepPoints: *sweepPoints,
			Logf:           log.Printf,
		})
		fabSrv := fabric.NewServer(coord)
		inner := handler
		mux := http.NewServeMux()
		mux.Handle("/v1/fabric/", fabSrv)
		// One combined scrape: worker-role metrics first, then the
		// coordinator's fabric metrics.
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", promtext.ContentType)
			pw := promtext.New(w)
			svc.WriteMetrics(pw)
			coord.WriteMetrics(pw)
		})
		mux.Handle("/", inner)
		handler = mux
		log.Printf("fabric coordinator enabled at /v1/fabric/ (lease %d points, %d attempts)", *leasePoints, *maxAttempts)
	}

	if *joinURL != "" {
		self := *advertise
		if self == "" {
			host, port, err := net.SplitHostPort(bound)
			if err != nil {
				log.Fatalf("deriving advertise URL from %q: %v", bound, err)
			}
			if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
				host = "127.0.0.1"
			}
			self = "http://" + net.JoinHostPort(host, port)
		}
		// Unready until the first enrollment lands; heartbeat failures
		// flip it back so the coordinator-facing readiness is honest.
		svc.SetReady(false)
		go fabric.JoinLoop(jobCtx, nil, *joinURL, self, func(joined bool, err error) {
			svc.SetReady(joined)
			if joined {
				log.Printf("enrolled with coordinator %s as %s", *joinURL, self)
			} else {
				log.Printf("coordinator %s unreachable (will retry): %v", *joinURL, err)
			}
		})
	}

	if *pprofOn {
		// Opt-in profiling endpoints on the service mux (the import does
		// not expose them by itself — cnfetd never serves the default
		// mux). pprof leaks operational detail and can be driven hard;
		// enable it only where the listener is trusted.
		inner := handler
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		mux.Handle("/", inner)
		handler = mux
		log.Printf("pprof endpoints enabled at /debug/pprof/ — not for untrusted exposure")
	}
	srv := &http.Server{
		Handler:     handler,
		BaseContext: func(net.Listener) context.Context { return jobCtx },
		// Slow-client bounds; no WriteTimeout because legitimate jobs
		// (liberty characterization, streamed sweeps) can run long
		// before or while responding.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	done := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", bound)
		done <- srv.Serve(ln)
	}()

	select {
	case <-ctx.Done():
		log.Printf("signal received, draining for up to %s", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("grace expired, cancelling in-flight jobs: %v", err)
		}
		// Background (async) sweeps outlive their HTTP requests and
		// Shutdown does not wait for them — give them (and any streamed
		// sweeps or coopt searches Shutdown was cut short on) the rest
		// of the same grace window before cutting them off.
		if !svc.Drain(shutdownCtx) {
			log.Printf("grace expired, cancelling remaining sweeps and searches")
		}
		cancelJobs()
		srv.Close()
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "cnfetd: bye")
}
