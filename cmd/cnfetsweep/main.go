// Command cnfetsweep runs batched parameter-space explorations over the
// design kit: a sweep.Spec — from a JSON file or assembled from flags —
// expands into concrete design jobs that share one kit's memo cache, and
// the aggregated report (per-point metrics, summaries, yield-vs-tubes
// curves, Pareto fronts) lands as JSON and/or CSV.
//
// Usage:
//
//	cnfetsweep -spec sweep.json -o report.json
//	cnfetsweep -circuits mux2,dec2 -placements rows,shelves \
//	           -tubes 16,32,48 -seeds 1,2 -analyses area,immunity \
//	           -techs cnfet -csv points.csv
//	cnfetsweep -spec - < sweep.json        # spec from stdin
//	cnfetsweep -spec sweep.json -store .cnfet-store  # resumable sweep
//	cnfetsweep -spec sweep.json -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Axis flags are comma-separated; -techs sweeps technology *sets*
// separated by "/" ("cnfet/cnfet,cmos" is a two-element axis). -zip
// pairs the axes element-wise instead of crossing them. The sweep runs
// through the shared singleflight cache, so points with common prefix
// stages (same circuit + placement, different Monte Carlo parameters)
// compute the shared work once; -trace prints the sharing evidence.
//
// With -store, every stage result is also written through to a
// persistent artifact store: a killed sweep rerun in a new process
// resumes from its completed points instead of restarting, and separate
// sweeps (or a cnfetd daemon) sharing the directory reuse each other's
// work.
//
// With -workers, the sweep does not run locally at all: the spec is
// POSTed to a sweep-fabric coordinator (cnfetfab, or cnfetd
// -coordinator) at that URL, which shards it across its registered
// worker fleet and streams per-point progress back. The merged report
// is canonical-byte-identical to a local run of the same spec:
//
//	cnfetsweep -workers http://coordinator:8066 -spec sweep.json -canonical -o report.json
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"cnfetdk/internal/fabric"
	"cnfetdk/internal/fault"
	"cnfetdk/internal/flow"
	"cnfetdk/internal/prof"
	"cnfetdk/internal/sweep"
)

func main() {
	specPath := flag.String("spec", "", "sweep.Spec JSON file (\"-\" for stdin); overrides the axis flags")
	name := flag.String("name", "", "sweep name for the report")
	circuits := flag.String("circuits", "", "comma-separated registry circuits axis")
	techs := flag.String("techs", "", "technology-set axis, sets separated by \"/\" (e.g. cnfet/cnfet,cmos)")
	placements := flag.String("placements", "", "comma-separated placement axis (rows,shelves)")
	wirecaps := flag.String("wirecaps", "", "comma-separated wire-cap axis (F per nm)")
	tubes := flag.String("tubes", "", "comma-separated Monte Carlo tube-count axis")
	angles := flag.String("angles", "", "comma-separated misalignment-angle axis (degrees)")
	seeds := flag.String("seeds", "", "comma-separated seed axis")
	analyses := flag.String("analyses", "area", "comma-separated analyses for every point")
	zip := flag.Bool("zip", false, "pair the axes element-wise instead of crossing them")
	workers := flag.Int("j", 0, "concurrent points (0 = one per CPU); the kit pool is sized identically")
	fabricURL := flag.String("workers", "", "sweep-fabric coordinator URL; the sweep runs on its worker fleet instead of locally")
	storeDir := flag.String("store", "", "persistent artifact-store directory; a rerun resumes from the stages completed there")
	storeBudget := flag.Int64("store-budget", 0, "artifact-store size budget in bytes (0 = unbounded)")
	maxPoints := flag.Int("max-points", 0, "expansion cap (0 = engine default)")
	outPath := flag.String("o", "", "write the report JSON here (\"-\" for stdout)")
	csvPath := flag.String("csv", "", "write the per-point table as CSV")
	canonical := flag.Bool("canonical", false, "emit the canonical (trace-free, deterministic) report JSON")
	quiet := flag.Bool("q", false, "suppress the progress and summary output")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write an allocs profile to this file on exit")
	faultsPath := flag.String("faults", "", "fault-injection plan JSON file for local runs (chaos-testing aid; see internal/fault)")
	flag.Parse()

	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	stopProf = stop // flushed by fatal() too: error exits keep their profiles
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	spec, err := assembleSpec(specFlags{
		specPath: *specPath, name: *name, circuits: *circuits, techs: *techs,
		placements: *placements, wirecaps: *wirecaps, tubes: *tubes,
		angles: *angles, seeds: *seeds, analyses: *analyses,
		zip: *zip, workers: *workers, maxPoints: *maxPoints,
	})
	if err != nil {
		fatal(err)
	}
	n, err := spec.NumPoints()
	if err != nil {
		fatal(err)
	}
	if *fabricURL != "" {
		if err := runOnFabric(ctx, *fabricURL, spec, n, *quiet, *outPath, *csvPath, *canonical); err != nil {
			fatal(err)
		}
		return
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "cnfetsweep: %d points, building kit...\n", n)
	}

	kitOpts := []flow.Option{flow.WithWorkers(*workers)}
	if *storeDir != "" {
		kitOpts = append(kitOpts, flow.WithStore(*storeDir), flow.WithStoreBudget(*storeBudget))
	}
	if *faultsPath != "" {
		blob, err := os.ReadFile(*faultsPath)
		if err != nil {
			fatal(fmt.Errorf("-faults: %w", err))
		}
		plan, err := fault.ParsePlan(blob)
		if err != nil {
			fatal(fmt.Errorf("-faults: %w", err))
		}
		inj, err := fault.New(plan)
		if err != nil {
			fatal(fmt.Errorf("-faults: %w", err))
		}
		kitOpts = append(kitOpts, flow.WithFaults(inj))
	}
	kit, err := flow.New(ctx, kitOpts...)
	if err != nil {
		fatal(err)
	}

	var opts []sweep.Option
	if !*quiet {
		done := 0
		opts = append(opts, sweep.OnPoint(func(pr sweep.PointResult) {
			done++
			status := fmt.Sprintf("cached %d/%d", pr.CachedStages, pr.TotalStages)
			if pr.Error != "" {
				status = "ERROR: " + pr.Error
			}
			fmt.Fprintf(os.Stderr, "cnfetsweep: [%d/%d] %s (%.1fms, %s)\n", done, n, pr.ID, pr.Millis, status)
		}))
	}
	rep, err := sweep.For(kit).RunSweep(ctx, *spec, opts...)
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		printSummary(os.Stderr, rep)
		if st := kit.CacheStats(); st.Disk != nil {
			fmt.Fprintf(os.Stderr, "cnfetsweep: store %s: %d disk hits, %d writes, %d entries (%d bytes)\n",
				*storeDir, st.Disk.Hits, st.Disk.Puts, st.Disk.Entries, st.Disk.Bytes)
		}
	}
	if *outPath != "" {
		if err := writeReport(*outPath, rep, *canonical); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, rep); err != nil {
			fatal(err)
		}
	}
	if *outPath == "" && *csvPath == "" {
		if err := writeReport("-", rep, *canonical); err != nil {
			fatal(err)
		}
	}
	if rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "cnfetsweep: %d/%d points failed\n", rep.Failed, len(rep.Points))
		stopProf() // os.Exit bypasses the deferred stop
		os.Exit(2)
	}
}

// stopProf finishes any active profiles; every os.Exit path must call it
// (defers do not run), so fatal() routes through it.
var stopProf = func() {}

// runOnFabric ships the spec to a sweep-fabric coordinator via the
// shared fabric client, relays the streamed progress, and renders the
// merged report exactly like a local run (same output flags, same exit
// codes).
func runOnFabric(ctx context.Context, coordinator string, spec *sweep.Spec, n int, quiet bool, outPath, csvPath string, canonical bool) error {
	if !quiet {
		fmt.Fprintf(os.Stderr, "cnfetsweep: %d points via fabric coordinator %s\n", n, coordinator)
	}
	client := &fabric.Client{URL: coordinator}
	if !quiet {
		done := 0
		client.OnLine = func(line fabric.StreamLine) {
			if line.Point != nil {
				done++
				status := "ok"
				if line.Point.Error != "" {
					status = "ERROR: " + line.Point.Error
				}
				fmt.Fprintf(os.Stderr, "cnfetsweep: [%d/%d] %s (%s, %s)\n", done, n, line.Point.ID, line.Worker, status)
			}
			if line.Lease != nil && line.Lease.State != "dispatch" && line.Lease.State != "done" {
				fmt.Fprintf(os.Stderr, "cnfetsweep: lease [%d,%d) %s (attempt %d): %s\n",
					line.Lease.Offset, line.Lease.Offset+line.Lease.Count, line.Lease.State, line.Lease.Attempt, line.Lease.Error)
			}
		}
	}
	rep, err := client.RunSweep(ctx, *spec)
	if err != nil {
		return err
	}

	if !quiet {
		printSummary(os.Stderr, rep)
		if tr := rep.Trace; tr != nil && tr.FabricWorkers > 0 {
			fmt.Fprintf(os.Stderr, "cnfetsweep: fabric: %d workers, %d leases, %d retries\n",
				tr.FabricWorkers, tr.Leases, tr.LeaseRetries)
		}
	}
	if outPath != "" {
		if err := writeReport(outPath, rep, canonical); err != nil {
			return err
		}
	}
	if csvPath != "" {
		if err := writeCSV(csvPath, rep); err != nil {
			return err
		}
	}
	if outPath == "" && csvPath == "" {
		if err := writeReport("-", rep, canonical); err != nil {
			return err
		}
	}
	if rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "cnfetsweep: %d/%d points failed\n", rep.Failed, len(rep.Points))
		stopProf()
		os.Exit(2)
	}
	return nil
}

type specFlags struct {
	specPath, name, circuits, techs, placements, wirecaps string
	tubes, angles, seeds, analyses                        string
	zip                                                   bool
	workers, maxPoints                                    int
}

// assembleSpec builds the spec from a file or from the axis flags.
func assembleSpec(f specFlags) (*sweep.Spec, error) {
	var spec sweep.Spec
	if f.specPath != "" {
		var r io.Reader
		if f.specPath == "-" {
			r = os.Stdin
		} else {
			file, err := os.Open(f.specPath)
			if err != nil {
				return nil, err
			}
			defer file.Close()
			r = file
		}
		dec := json.NewDecoder(r)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return nil, fmt.Errorf("decoding %s: %w", f.specPath, err)
		}
	} else {
		spec.Axes.Circuits = splitList(f.circuits)
		if f.techs != "" {
			spec.Axes.TechSets = strings.Split(f.techs, "/")
		}
		spec.Axes.Placements = splitList(f.placements)
		var err error
		if spec.Axes.WireCaps, err = parseFloats(f.wirecaps); err != nil {
			return nil, fmt.Errorf("-wirecaps: %w", err)
		}
		if spec.Axes.MCTubes, err = parseInts(f.tubes); err != nil {
			return nil, fmt.Errorf("-tubes: %w", err)
		}
		if spec.Axes.MCAngles, err = parseFloats(f.angles); err != nil {
			return nil, fmt.Errorf("-angles: %w", err)
		}
		seeds, err := parseInts(f.seeds)
		if err != nil {
			return nil, fmt.Errorf("-seeds: %w", err)
		}
		for _, s := range seeds {
			spec.Axes.Seeds = append(spec.Axes.Seeds, int64(s))
		}
		for _, a := range splitList(f.analyses) {
			spec.Base.Analyses = append(spec.Base.Analyses, flow.Analysis(a))
		}
	}
	if f.name != "" {
		spec.Name = f.name
	}
	spec.Zip = spec.Zip || f.zip
	if f.workers != 0 {
		spec.Workers = f.workers
	}
	if f.maxPoints != 0 {
		spec.MaxPoints = f.maxPoints
	}
	return &spec, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func printSummary(w io.Writer, rep *sweep.Report) {
	tr := rep.Trace
	fmt.Fprintf(w, "cnfetsweep: %d points (%d failed) in %.1fms; %d/%d stages from cache (%d cache entries)\n",
		len(rep.Points), rep.Failed, tr.WallMillis, tr.CacheHitStages, tr.TotalStages, tr.CacheEntriesAfter)
	names := make([]string, 0, len(rep.Summary))
	for name := range rep.Summary {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := rep.Summary[name]
		fmt.Fprintf(w, "  %-22s n=%-3d min %-12.6g p50 %-12.6g p90 %-12.6g max %-12.6g\n",
			name, s.Count, s.Min, s.P50, s.P90, s.Max)
	}
	for _, y := range rep.YieldVsTubes {
		fmt.Fprintf(w, "  yield @%d tubes: %.4f (%d points)\n", y.MCTubes, y.Yield, y.Points)
	}
	if len(rep.Pareto) > 0 {
		fmt.Fprintf(w, "  pareto front: %d points\n", len(rep.Pareto))
	}
}

func writeReport(path string, rep *sweep.Report, canonical bool) error {
	var blob []byte
	var err error
	if canonical {
		blob, err = rep.CanonicalJSON()
	} else {
		blob, err = json.MarshalIndent(rep, "", "  ")
	}
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// writeCSV renders one row per point: identity, axis values, then the
// union of flattened metrics (sorted columns, empty cells where a point
// lacks a metric). encoding/csv quotes cells, so comma-carrying values
// (multi-tech sets, error messages) stay one column.
func writeCSV(path string, rep *sweep.Report) error {
	paramCols := map[string]bool{}
	metricCols := map[string]bool{}
	metrics := make([]map[string]float64, len(rep.Points))
	for i, pr := range rep.Points {
		for k := range pr.Params {
			paramCols[k] = true
		}
		metrics[i] = pr.Metrics()
		for k := range metrics[i] {
			metricCols[k] = true
		}
	}
	params := sortedKeys(paramCols)
	cols := sortedKeys(metricCols)

	headers := append([]string{"index", "id"}, params...)
	headers = append(headers, cols...)
	headers = append(headers, "error")
	var rows [][]string
	for i, pr := range rep.Points {
		row := []string{strconv.Itoa(pr.Index), pr.ID}
		for _, p := range params {
			if v, ok := pr.Params[p]; ok {
				row = append(row, fmt.Sprintf("%v", v))
			} else {
				row = append(row, "")
			}
		}
		for _, c := range cols {
			if v, ok := metrics[i][c]; ok {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		row = append(row, pr.Error)
		rows = append(rows, row)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(headers); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cnfetsweep:", err)
	stopProf()
	os.Exit(1)
}
