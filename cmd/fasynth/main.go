// Command fasynth runs case study 2: the full adder of Fig 8, placed as
// CMOS rows, CNFET scheme-1 rows and CNFET scheme-2 shelves, simulated at
// the transistor level, and optionally exported to GDSII (Fig 9).
//
// Usage:
//
//	fasynth                 # run the case study, print the comparison
//	fasynth -gds fa.gds     # also export the scheme-2 placement
//	fasynth -netlist        # dump the Fig 8a netlist
//	fasynth -timing         # print per-stage pipeline timing
//	fasynth -j 4            # bound the worker pool
package main

import (
	"flag"
	"fmt"
	"os"

	"cnfetdk/internal/flow"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/report"
	"cnfetdk/internal/synth"
)

func main() {
	gds := flag.String("gds", "", "write the scheme-2 full adder to this GDS file")
	dumpNetlist := flag.Bool("netlist", false, "print the Fig 8a netlist and exit")
	timing := flag.Bool("timing", false, "print per-stage pipeline timing on exit")
	workers := flag.Int("j", 0, "worker-pool width (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	if *dumpNetlist {
		if err := synth.FullAdder().Format(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "fasynth:", err)
			os.Exit(1)
		}
		return
	}

	trace := &pipeline.Trace{}
	kit, err := flow.NewKitOpts(flow.Options{Workers: *workers, Trace: trace})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fasynth:", err)
		os.Exit(1)
	}
	res, err := kit.RunFullAdder()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fasynth:", err)
		os.Exit(1)
	}

	tab := &report.Table{
		Title:   "Case study 2 — full adder (9x NAND2 2X + buffers), CNFET vs CMOS 65nm",
		Headers: []string{"metric", "CMOS", "CNFET", "gain", "paper"},
	}
	tab.AddRow("avg delay",
		fmt.Sprintf("%.1fps", res.DelayCMOS*1e12),
		fmt.Sprintf("%.1fps", res.DelayCNFET*1e12),
		report.Gain(res.DelayGain()), "~3.5x")
	tab.AddRow("energy/cycle",
		fmt.Sprintf("%.2ffJ", res.EnergyCMOS*1e15),
		fmt.Sprintf("%.2ffJ", res.EnergyCNFET*1e15),
		report.Gain(res.EnergyGain()), "~1.5x")
	tab.AddRow("area (scheme 1)",
		fmt.Sprintf("%.0fλ²", res.AreaCMOS),
		fmt.Sprintf("%.0fλ²", res.AreaS1),
		report.Gain(res.AreaGainS1()), "~1.4x")
	tab.AddRow("area (scheme 2)",
		fmt.Sprintf("%.0fλ²", res.AreaCMOS),
		fmt.Sprintf("%.0fλ²", res.AreaS2),
		report.Gain(res.AreaGainS2()), "~1.6x")
	tab.AddRow("utilization s1/s2", "",
		fmt.Sprintf("%.2f / %.2f", res.UtilS1, res.UtilS2), "", "")
	tab.Format(os.Stdout)

	if *gds != "" {
		stream, err := kit.FullAdderGDS()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fasynth:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*gds, stream, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fasynth:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (Fig 9: scheme-2 full adder)\n", *gds)
	}

	if *timing {
		fmt.Printf("\npipeline stages (slowest first):\n%s", trace.String())
	}
}
