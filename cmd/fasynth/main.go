// Command fasynth runs registry circuits through the design-service API:
// by default case study 2 (the Fig 8 full adder) placed as CMOS rows and
// CNFET scheme-1/scheme-2, simulated at the transistor level, and
// optionally exported to GDSII (Fig 9). Any registry circuit runs the
// same way.
//
// Usage:
//
//	fasynth                   # run the full-adder case study
//	fasynth -circuit rca4     # any registry circuit
//	fasynth -gds fa.gds       # also export the scheme-2 placement
//	fasynth -netlist          # dump the circuit netlist
//	fasynth -timing           # print per-stage pipeline timing
//	fasynth -j 4              # bound the worker pool
//	fasynth -store .cnfet-store  # reuse stage results across invocations
//	fasynth -cpuprofile cpu.pprof -memprofile mem.pprof  # profile the flow
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"cnfetdk/internal/flow"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/prof"
	"cnfetdk/internal/report"
)

func main() {
	circuit := flag.String("circuit", "fulladder", "registry circuit to run")
	gds := flag.String("gds", "", "write the scheme-2 placement to this GDS file")
	dumpNetlist := flag.Bool("netlist", false, "print the circuit netlist and exit")
	timing := flag.Bool("timing", false, "print per-stage pipeline timing on exit")
	workers := flag.Int("j", 0, "worker-pool width (0 = one per CPU, 1 = sequential)")
	storeDir := flag.String("store", "", "persistent artifact-store directory; repeated invocations skip completed stages")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the flow to this file")
	memprofile := flag.String("memprofile", "", "write an allocs profile to this file on exit")
	flag.Parse()

	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}
	stopProf = stop // flushed by fail() too: error exits keep their profiles
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *dumpNetlist {
		c, err := flow.LookupCircuit(*circuit)
		if err != nil {
			fail(err)
		}
		nl, err := c.Build()
		if err != nil {
			fail(err)
		}
		if err := nl.Format(os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	trace := &pipeline.Trace{}
	kitOpts := []flow.Option{flow.WithWorkers(*workers), flow.WithTrace(trace)}
	if *storeDir != "" {
		kitOpts = append(kitOpts, flow.WithStore(*storeDir))
	}
	kit, err := flow.New(ctx, kitOpts...)
	if err != nil {
		fail(err)
	}
	// The scheme-2 run carries the timing/energy comparison; a scheme-1
	// area run completes the paper's three-placement table.
	s2, err := kit.Run(ctx, flow.Request{
		Circuit:  *circuit,
		Analyses: []flow.Analysis{flow.AnalysisArea, flow.AnalysisDelay, flow.AnalysisEnergy},
	})
	if err != nil {
		fail(err)
	}
	s1, err := kit.Run(ctx, flow.Request{
		Circuit: *circuit, Techs: []string{"cnfet"}, Placement: "rows",
		Analyses: []flow.Analysis{flow.AnalysisArea},
	})
	if err != nil {
		fail(err)
	}
	cm, cn, cn1 := s2.Techs["cmos"], s2.Techs["cnfet"], s1.Techs["cnfet"]

	title := fmt.Sprintf("%s (%d instances), CNFET vs CMOS 65nm", s2.Circuit, s2.Instances)
	if *circuit == "fulladder" {
		title = "Case study 2 — full adder (9x NAND2 2X + buffers), CNFET vs CMOS 65nm"
	}
	tab := &report.Table{
		Title:   title,
		Headers: []string{"metric", "CMOS", "CNFET", "gain", "paper"},
	}
	paperRef := func(s string) string {
		if *circuit == "fulladder" {
			return s
		}
		return ""
	}
	tab.AddRow("avg delay",
		fmt.Sprintf("%.1fps", cm.DelayS*1e12),
		fmt.Sprintf("%.1fps", cn.DelayS*1e12),
		report.Gain(s2.Gains["delay"]), paperRef("~3.5x"))
	tab.AddRow("energy/cycle",
		fmt.Sprintf("%.2ffJ", cm.EnergyJ*1e15),
		fmt.Sprintf("%.2ffJ", cn.EnergyJ*1e15),
		report.Gain(s2.Gains["energy"]), paperRef("~1.5x"))
	tab.AddRow("area (scheme 1)",
		fmt.Sprintf("%.0fλ²", cm.AreaLam2),
		fmt.Sprintf("%.0fλ²", cn1.AreaLam2),
		report.Gain(cm.AreaLam2/cn1.AreaLam2), paperRef("~1.4x"))
	tab.AddRow("area (scheme 2)",
		fmt.Sprintf("%.0fλ²", cm.AreaLam2),
		fmt.Sprintf("%.0fλ²", cn.AreaLam2),
		report.Gain(s2.Gains["area"]), paperRef("~1.6x"))
	tab.AddRow("utilization s1/s2", "",
		fmt.Sprintf("%.2f / %.2f", cn1.Utilization, cn.Utilization), "", "")
	tab.Format(os.Stdout)

	if *gds != "" {
		// CNFET-only job; the scheme-2 placement is a cache hit.
		gres, err := kit.Run(ctx, flow.Request{
			Circuit: *circuit, Techs: []string{"cnfet"},
			Analyses: []flow.Analysis{flow.AnalysisGDS},
		})
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*gds, gres.Techs["cnfet"].GDS, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (scheme-2 %s)\n", *gds, s2.Circuit)
	}

	if *timing {
		fmt.Printf("\npipeline stages (slowest first):\n%s", trace.String())
	}
}

// stopProf finishes any active profiles; every os.Exit path must call it
// (defers do not run), so fail() routes through it.
var stopProf = func() {}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fasynth:", err)
	stopProf()
	os.Exit(1)
}
