// Command benchreg reduces `go test -bench` output to benchstat-style
// medians and gates performance regressions against a committed
// baseline. It backs the CI benchmark-regression job and runs
// identically locally:
//
//	go test -bench . -benchmem -count=5 -run '^$' | tee bench.txt
//	benchreg -in bench.txt -out BENCH_CURRENT.json \
//	         -baseline BENCH_BASELINE.json -max-regress 0.30
//
// Without -baseline it only writes the summary JSON. With -baseline it
// compares the gated set (benchmarks matching -filter — the
// pipeline/flow hot paths by default) and exits 1 when any median
// ns/op or allocs/op regressed by more than -max-regress (allocs get a
// small absolute slop so 2-alloc benchmarks cannot flake the gate) or a
// gated benchmark disappeared.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"cnfetdk/internal/benchreg"
)

// defaultFilter gates the staged-pipeline and flow hot paths: library
// build fan-out, characterization (including the arc batch-vs-loop
// pair), Monte Carlo sharding, the cached flow rerun, the sweep engine,
// the disk-backed artifact store, the dense/sparse transient solver
// ladder, the variation-ensemble batch-vs-loop pair (the batch side
// must hold its 0 allocs/op steady state), and the STA engine (build,
// zero-alloc reanalysis, incremental cone updates, and the
// transient-vs-incremental delay-sweep pair — DelaySweep* already
// matches Sweep).
const defaultFilter = `Library|Characterization|MonteCarlo|FlowCachedRerun|Sweep|StoreDisk|Transient|VariationEnsemble|STA`

func main() {
	in := flag.String("in", "-", "benchmark output to read (\"-\" = stdin)")
	out := flag.String("out", "", "write the reduced JSON summary here")
	baseline := flag.String("baseline", "", "baseline JSON to gate against (empty = no gating)")
	maxRegress := flag.Float64("max-regress", 0.30, "maximum tolerated ns/op and allocs/op regression (0.30 = +30%)")
	filter := flag.String("filter", defaultFilter, "regexp selecting the gated benchmarks")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	cur, _, err := benchreg.Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines in %s", *in))
	}
	fmt.Fprintf(os.Stderr, "benchreg: %d benchmarks reduced\n", len(cur.Benchmarks))

	if *out != "" {
		blob, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchreg: wrote %s\n", *out)
	}

	if *baseline == "" {
		return
	}
	blob, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	var base benchreg.File
	if err := json.Unmarshal(blob, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baseline, err))
	}
	re, err := regexp.Compile(*filter)
	if err != nil {
		fatal(fmt.Errorf("bad -filter: %w", err))
	}
	deltas, failed := benchreg.Compare(&base, cur, re, *maxRegress)
	benchreg.Format(os.Stdout, deltas)
	for _, d := range deltas {
		if d.Warning != "" {
			fmt.Fprintf(os.Stderr, "benchreg: warning: %s: %s\n", d.Name, d.Warning)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchreg: FAIL — gated benchmark regressed beyond %+.0f%% against %s\n",
			100**maxRegress, *baseline)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchreg: ok — no gated regression beyond %+.0f%%\n", 100**maxRegress)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreg:", err)
	os.Exit(1)
}
