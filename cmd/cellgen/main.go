// Command cellgen generates misaligned-CNT-immune CNFET cell layouts,
// reproduces the paper's Table 1 area comparison against the etched-region
// baseline of ref [6], and optionally streams cells to GDSII. With
// -circuit it reports the per-technology placed area of a registry
// circuit through the design-service API.
//
// Usage:
//
//	cellgen -table1                 # print the Table 1 reproduction
//	cellgen -cell NAND3 -size 4     # describe one cell's layouts
//	cellgen -cell NAND3 -gds out.gds
//	cellgen -circuit parity4        # placed-area report via Kit.Run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"cnfetdk/internal/drc"
	"cnfetdk/internal/flow"
	"cnfetdk/internal/gdsii"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/immunity"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/report"
	"cnfetdk/internal/rules"
)

// table1Cells lists the cells of Table 1 (plus the OAI duals).
var table1Cells = []struct{ Name, F string }{
	{"Inverter", "A"},
	{"NAND2", "AB"},
	{"NOR2", "A+B"},
	{"NAND3", "ABC"},
	{"NOR3", "A+B+C"},
	{"AOI22", "AB+CD"},
	{"OAI22", "(A+B)(C+D)"},
	{"AOI21", "AB+C"},
	{"OAI21", "(A+B)C"},
}

func main() {
	table1 := flag.Bool("table1", false, "print the Table 1 area comparison")
	cell := flag.String("cell", "", "describe one cell (name from Table 1 or a pull-down expression)")
	circuit := flag.String("circuit", "", "report the placed area of a registry circuit")
	size := flag.Int("size", 4, "unit transistor width in lambda")
	gds := flag.String("gds", "", "write the cell (scheme 1 and 2) to this GDS file")
	flag.Parse()

	switch {
	case *table1:
		printTable1()
	case *circuit != "":
		if *gds != "" {
			fmt.Fprintln(os.Stderr, "cellgen: -gds is ignored with -circuit (use cnfetdk -circuit ... -gds)")
		}
		if err := describeCircuit(*circuit); err != nil {
			fmt.Fprintln(os.Stderr, "cellgen:", err)
			os.Exit(1)
		}
	case *cell != "":
		if err := describeCell(*cell, *size, *gds); err != nil {
			fmt.Fprintln(os.Stderr, "cellgen:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// describeCircuit runs the area analysis of one registry circuit in both
// technologies and schemes through the design-service API.
func describeCircuit(name string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	kit, err := flow.New(ctx)
	if err != nil {
		return err
	}
	s2, err := kit.Run(ctx, flow.Request{Circuit: name})
	if err != nil {
		return err
	}
	s1, err := kit.Run(ctx, flow.Request{Circuit: name, Techs: []string{"cnfet"}, Placement: "rows"})
	if err != nil {
		return err
	}
	cm, cn, cn1 := s2.Techs["cmos"], s2.Techs["cnfet"], s1.Techs["cnfet"]
	tab := &report.Table{
		Title:   fmt.Sprintf("%s — %d instances, %d nets", s2.Circuit, s2.Instances, s2.Nets),
		Headers: []string{"placement", "area", "utilization", "gain vs CMOS"},
	}
	tab.AddRow("CMOS rows", fmt.Sprintf("%.0fλ²", cm.AreaLam2),
		fmt.Sprintf("%.2f", cm.Utilization), "")
	tab.AddRow("CNFET scheme 1", fmt.Sprintf("%.0fλ²", cn1.AreaLam2),
		fmt.Sprintf("%.2f", cn1.Utilization), report.Gain(cm.AreaLam2/cn1.AreaLam2))
	tab.AddRow("CNFET scheme 2", fmt.Sprintf("%.0fλ²", cn.AreaLam2),
		fmt.Sprintf("%.2f", cn.Utilization), report.Gain(cm.AreaLam2/cn.AreaLam2))
	tab.Format(os.Stdout)
	return nil
}

func pullDownFor(name string) string {
	for _, c := range table1Cells {
		if c.Name == name {
			return c.F
		}
	}
	return name // treat as an expression
}

func printTable1() {
	rs := rules.Default65nm(rules.CNFET)
	sizes := []int{3, 4, 6, 10}
	tab := &report.Table{
		Title:   "Table 1 — area saving of the compact layout vs the etched-region layout [6]",
		Headers: []string{"Cell"},
	}
	for _, w := range sizes {
		tab.Headers = append(tab.Headers, fmt.Sprintf("%dλ", w))
	}
	for _, c := range table1Cells {
		g, err := network.NewGate(c.Name, logic.MustParse(c.F), 1)
		if err != nil {
			panic(err)
		}
		row := []string{c.Name}
		for _, w := range sizes {
			oldC, err := layout.Generate(c.Name, g, layout.StyleEtched, geom.Lambda(w), rs)
			if err != nil {
				panic(err)
			}
			newC, err := layout.Generate(c.Name, g, layout.StyleCompact, geom.Lambda(w), rs)
			if err != nil {
				panic(err)
			}
			row = append(row, report.Pct(1-newC.NetworksArea()/oldC.NetworksArea()))
		}
		tab.AddRow(row...)
	}
	tab.Format(os.Stdout)
	fmt.Println("\nPaper values (DATE'09, Table 1): NAND2 17.18/14.52/11.67/9.25," +
		" NAND3 19.64/16.67/13.45/10.71, AOI22 32.2/27.7/22.5/14.9, AOI21 44.3/40.6/36.4/32.5.")
}

func describeCell(name string, size int, gdsPath string) error {
	f := pullDownFor(name)
	g, err := network.NewGate(name, logic.MustParse(f), 1)
	if err != nil {
		return err
	}
	rs := rules.Default65nm(rules.CNFET)
	fmt.Printf("cell %s: out = (%s)'\n", name, g.PullDown)
	for _, style := range []layout.Style{layout.StyleCompact, layout.StyleEtched, layout.StyleVulnerable} {
		c, err := layout.Generate(name, g, style, geom.Lambda(size), rs)
		if err != nil {
			return err
		}
		punRep, pdnRep := immunity.VerifyImmunity(c)
		verdict := "IMMUNE"
		if !punRep.Immune() || !pdnRep.Immune() {
			verdict = fmt.Sprintf("VULNERABLE (%d bad critical lines)",
				punRep.BadTubes+pdnRep.BadTubes)
		}
		drcViol := len(drc.CheckCell(c))
		fmt.Printf("  %-11s area %7.1f λ²  PUN %2d contacts %d gates  vias-on-gate %d  DRC %d  %s\n",
			style.String(), c.NetworksArea(),
			len(c.PUN.Contacts()), len(c.PUN.Gates()), c.ViasOnGate(), drcViol, verdict)
	}
	if gdsPath != "" {
		c, err := layout.Generate(name, g, layout.StyleCompact, geom.Lambda(size), rs)
		if err != nil {
			return err
		}
		lib := gdsii.NewLibrary("CNFETDK")
		writeCellGDS(lib, name, c, rs)
		out, err := os.Create(gdsPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := lib.Write(out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", gdsPath)
	}
	return nil
}

// writeCellGDS streams both schemes of a cell (local minimal exporter; the
// full flow exporter lives in internal/flow).
func writeCellGDS(lib *gdsii.Library, name string, c *layout.Cell, rs rules.Rules) {
	scale := rs.LambdaNM / float64(geom.QuarterLambda)
	for _, scheme := range []layout.Scheme{layout.Scheme1, layout.Scheme2} {
		s := lib.Add(fmt.Sprintf("%s_%s", name, scheme))
		a := c.Assemble(scheme)
		toDBU := func(v geom.Coord) int32 { return int32(float64(v)*scale + 0.5) }
		rect := func(layer int16, r geom.Rect) {
			s.Rect(layer, toDBU(r.Min.X), toDBU(r.Min.Y), toDBU(r.Max.X), toDBU(r.Max.Y))
		}
		for _, ng := range []*layout.NetGeom{c.PUN, c.PDN} {
			off := a.PUNOffset
			if ng == c.PDN {
				off = a.PDNOffset
			}
			for _, r := range ng.Active {
				rect(gdsii.LayerCNT, r.Translate(off.X, off.Y))
			}
		}
		for _, e := range a.Elements {
			var layer int16
			switch e.Kind {
			case layout.ElemContact:
				layer = gdsii.LayerContact
			case layout.ElemGate:
				layer = gdsii.LayerGate
			case layout.ElemEtch:
				layer = gdsii.LayerEtch
			case layout.ElemStrap:
				layer = gdsii.LayerMetal1
			case layout.ElemVia:
				layer = gdsii.LayerVia1
			case layout.ElemPin:
				layer = gdsii.LayerPin
			}
			rect(layer, e.Rect)
		}
		rect(gdsii.LayerBoundary, geom.R(0, 0, a.Width, a.Height))
	}
}
