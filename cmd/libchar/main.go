// Command libchar characterizes the standard-cell library through the
// transistor-level simulator and emits the design-kit hand-off artifacts:
// a Liberty timing library (.lib), a structural Verilog netlist of a
// benchmark design, and a SPICE netlist of its testbench — the pieces
// that plug the CNFET kit into a conventional synthesis flow (Section
// IV). With -circuit, the Liberty output comes from the design-service
// API and is scoped to the cells that registry circuit uses.
//
// Usage:
//
//	libchar -lib out.lib                  # characterize CNFET library
//	libchar -tech cmos -lib cmos.lib      # the CMOS twin
//	libchar -cells INV_1X,NAND2_2X        # subset
//	libchar -circuit fulladder -lib fa.lib  # circuit-scoped via Kit.Run
//	libchar -verilog fa.v -spice fa.sp    # benchmark artifacts
//	libchar -j 4                          # bound the worker pool
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"cnfetdk/internal/device"
	"cnfetdk/internal/flow"
	"cnfetdk/internal/liberty"
	"cnfetdk/internal/spice"
	"cnfetdk/internal/synth"
)

func main() {
	techName := flag.String("tech", "cnfet", "technology: cnfet or cmos")
	libPath := flag.String("lib", "", "write Liberty timing library here")
	cellList := flag.String("cells", "", "comma-separated cell subset (default: all)")
	circuit := flag.String("circuit", "", "scope the Liberty output to a registry circuit (via Kit.Run)")
	verilogPath := flag.String("verilog", "", "write the full-adder benchmark as Verilog")
	spicePath := flag.String("spice", "", "write the full-adder testbench as SPICE")
	workers := flag.Int("j", 0, "worker-pool width (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	tech, err := flow.ParseTech(*techName)
	if err != nil {
		fail(err)
	}
	kit, err := flow.New(ctx, flow.WithWorkers(*workers))
	if err != nil {
		fail(err)
	}
	lib, err := kit.LibFor(tech)
	if err != nil {
		fail(err)
	}

	if *libPath != "" {
		var text string
		if *circuit != "" {
			if *cellList != "" {
				fmt.Fprintln(os.Stderr, "libchar: -cells is ignored with -circuit (the circuit picks the cells)")
			}
			fmt.Printf("characterizing the %s cells of %q via the design service...\n", tech, *circuit)
			res, err := kit.Run(ctx, flow.Request{
				Circuit:  *circuit,
				Techs:    []string{strings.ToLower(tech.String())},
				Analyses: []flow.Analysis{flow.AnalysisLiberty},
			})
			if err != nil {
				fail(err)
			}
			text = res.Techs[strings.ToLower(tech.String())].Liberty
		} else {
			var filter func(string) bool
			if *cellList != "" {
				keep := map[string]bool{}
				for _, n := range strings.Split(*cellList, ",") {
					keep[strings.TrimSpace(n)] = true
				}
				filter = func(n string) bool { return keep[n] }
			}
			fmt.Printf("characterizing %s library (this sweeps every arc through the simulator)...\n", tech)
			m, err := liberty.CharacterizeCtx(ctx, lib, nil, filter, *workers)
			if err != nil {
				fail(err)
			}
			var b strings.Builder
			if err := m.Write(&b); err != nil {
				fail(err)
			}
			text = b.String()
		}
		if err := os.WriteFile(*libPath, []byte(text), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *libPath, len(text))
	}

	if *verilogPath != "" {
		f, err := os.Create(*verilogPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := synth.FullAdder().WriteVerilog(f); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *verilogPath)
	}

	if *spicePath != "" {
		nl := synth.FullAdder()
		ckt, _, err := kit.BuildCircuit(lib, nl, nil)
		if err != nil {
			fail(err)
		}
		ckt.AddV("va", "A", "0", spice.DC(device.Vdd))
		ckt.AddV("vb", "B", "0", spice.DC(0))
		ckt.AddV("vcin", "Cin", "0", spice.Pulse{
			V0: 0, V1: device.Vdd, Delay: 1e-9, Rise: 5e-12, Fall: 5e-12, W: 2e-9, Period: 4e-9,
		})
		f, err := os.Create(*spicePath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := ckt.Export(f, fmt.Sprintf("full adder testbench (%s)", tech)); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *spicePath)
	}

	if *libPath == "" && *verilogPath == "" && *spicePath == "" {
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "libchar:", err)
	os.Exit(1)
}
