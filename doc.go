// Package cnfetdk is an open reimplementation of "Design of Compact
// Imperfection-Immune CNFET Layouts for Standard-Cell-Based Logic
// Synthesis" (Bobba, Zhang, Pullini, Atienza, De Micheli — DATE 2009).
//
// The library generates carbon-nanotube-FET standard cells whose layouts
// are immune to mispositioned CNTs by construction (Euler-trail rows with
// redundant contacts), verifies that immunity geometrically, and ships the
// full design kit the paper describes: lambda design rules shared with a
// 65nm CMOS reference, calibrated CNFET/CMOS electrical models, a SPICE
// engine, a standard-cell library with characterization, logic synthesis,
// placement in the paper's two cell schemes, parasitic extraction, and a
// GDSII writer — a complete logic-to-GDSII flow.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure. The benchmark
// harness in bench_test.go regenerates each experiment:
//
//	go test -bench=. -benchmem .
package cnfetdk
