// Package cnfetdk is an open reimplementation of "Design of Compact
// Imperfection-Immune CNFET Layouts for Standard-Cell-Based Logic
// Synthesis" (Bobba, Zhang, Pullini, Atienza, De Micheli — DATE 2009).
//
// The library generates carbon-nanotube-FET standard cells whose layouts
// are immune to mispositioned CNTs by construction (Euler-trail rows with
// redundant contacts), verifies that immunity geometrically, and ships the
// full design kit the paper describes: lambda design rules shared with a
// 65nm CMOS reference, calibrated CNFET/CMOS electrical models, a SPICE
// engine, a standard-cell library with characterization, logic synthesis,
// placement in the paper's two cell schemes, parasitic extraction, and a
// GDSII writer — a complete logic-to-GDSII flow.
//
// The flow is exposed as a generic design service (internal/flow): a
// serializable flow.Request — circuit by registry name, inline Boolean
// equations or structural netlist; technologies; placement scheme;
// wire-cap model; analyses (area, delay, sta, energy, immunity,
// liberty, gds) — executed by Kit.Run(ctx, Request) with cooperative
// context cancellation, returning a JSON-stable flow.Result with
// per-stage traces. cmd/cnfetd serves the same requests over HTTP
// (POST /v1/jobs, GET /v1/circuits, GET /healthz) on one shared kit and
// memo cache.
//
// Where the delay analysis pays a transistor-level transient, the sta
// analysis answers from the library: internal/sta is a levelized,
// slew-aware static timing engine over the 2-D NLDM
// (input-slew × output-load) surfaces internal/liberty characterizes
// (one plan-sharing SPICE batch per arc grid). An sta.Engine compiles a
// netlist once — interned ids, CSR fan-out, Kahn levelization — then
// propagates (arrival, slew) allocation-free in steady state,
// deterministic at any worker count, and recomputes only the fan-out
// cone of a SetLoad/SetCell/Invalidate edit (byte-identical to a full
// rebuild). That turns a wire-cap or drive-strength sweep
// (sweep.Timing) into one build plus N microsecond cone updates, and
// makes thousand-gate registry circuits (rca16, mult8) timeable in
// milliseconds where their transients cost minutes; per-circuit
// STA-vs-SPICE tracking windows are pinned in the flow tests. See
// DESIGN.md ("Timing engine").
//
// Batched exploration rides on the sweep engine (internal/sweep): a
// declarative sweep.Spec crosses (or zips) axes — circuits, technology
// sets, placement schemes, wire-cap models, Monte Carlo tube counts,
// misalignment angles, variation distributions (tube-count CV, diameter
// sigma, misposition probability), seeds — into concrete requests executed through
// one shared kit, so common prefix stages compute once, and aggregates
// the outcomes (summary statistics, yield-vs-tubes curves, Pareto
// fronts) into a deterministic sweep.Report:
//
//	rep, err := sweep.For(kit).RunSweep(ctx, sweep.Spec{
//	    Base: flow.Request{Techs: []string{"cnfet"},
//	        Analyses: []flow.Analysis{flow.AnalysisArea, flow.AnalysisImmunity}},
//	    Axes: sweep.Axes{Circuits: []string{"mux2", "dec2"},
//	        Placements: []string{"rows", "shelves"}, MCTubes: []int{16, 32, 48}},
//	})
//
// The same batch runs from the command line (cmd/cnfetsweep):
//
//	cnfetsweep -circuits mux2,dec2 -placements rows,shelves \
//	           -tubes 16,32,48 -techs cnfet -analyses area,immunity -csv points.csv
//
// and over HTTP (cmd/cnfetd): POST /v1/sweeps starts a batch
// asynchronously (poll GET /v1/sweeps/{id} for progress and the final
// report; ?stream=ndjson streams completed points instead), DELETE
// cancels it.
//
// When one machine's cores are not enough, the sweep fabric
// (internal/fabric) shards a spec across a fleet: workers are plain
// cnfetd daemons enrolled with -join <coordinator>, the coordinator
// (cmd/cnfetfab, or cnfetd -coordinator) leases windows of the
// deterministic point-index space to them, retries leases lost to
// worker deaths, and merges the results into a report whose canonical
// bytes are identical to a single-process run. cnfetsweep -workers
// <coordinator> and fabric.Client are the clients; /livez, /readyz and
// Prometheus-text /metrics cover both roles.
//
// The whole serving stack is failure-hardened and provably so: a
// seeded, rule-based fault-injection framework (internal/fault)
// threads named injection points through the artifact store's I/O, the
// fabric transport, every flow stage and the SPICE solver — free when
// disabled, deterministic when armed (cnfetd -faults plan.json).
// What it found is fixed and pinned: panic recovery into typed errors
// in stages and HTTP handlers, per-stage watchdog deadlines
// (-stage-timeout, per-request stage_timeout_ms), full-jitter capped
// lease backoff with a per-worker circuit breaker and health scoring
// in the coordinator, fsync-then-rename crash safety in the store,
// compute-through degradation when the store is sick, partial-report
// salvage in a typed *fabric.SweepError when retries run out, client
// disconnects cancelling streamed sweeps, and a unified graceful drain
// (-grace) covering sweeps, streams and co-optimization searches. The
// chaos soak harness (internal/chaos, cnfetfab -chaos) replays seeded
// fault schedules over a 24-point fleet sweep and requires every run
// to end byte-identical to the fault-free reference or with a typed
// error — no hangs, no goroutine leaks, no misfiled store entries. See
// DESIGN.md ("Failure model & fault injection").
//
// CNT process variation is a first-class input (device.Variations): a
// flow.Request (or sweep axis) can carry a tube-count CV, a per-tube
// diameter sigma and a misposition probability, turning delay into a
// transistor-level sampled distribution (plan-shared, zero-alloc
// ensemble lanes in cells.Ensemble) and immunity into a functional
// yield that composes tube-count and mispositioned-CNT failures — the
// latter exactly 1 for the paper's immune layouts. Zero-variation
// requests reproduce the pre-variation results byte-identically.
//
// internal/coopt searches processing knobs (inter-CNT pitch, growth
// quality, alignment) against circuit knobs (drive strength) for the
// cheapest ways to hit a functional-yield target, anchored on one
// measured sweep and rescaled analytically across the knob grid:
//
//	front, err := coopt.Search(ctx, coopt.KitRunner{Kit: sweep.For(kit)},
//	    coopt.Spec{Circuit: "fulladder", YieldTarget: 0.99})
//	// front.Candidates: the Pareto-minimal (processing cost, circuit
//	// cost) corners meeting the target; front.CanonicalJSON() is
//	// byte-stable at any worker count, locally or across the fabric.
//
// cmd/cnfetopt runs the same search from the CLI (-coordinator shards
// the measured sweep across a fabric fleet), the daemon serves it at
// POST /v1/coopt, and examples/cooptfront is the smallest end-to-end
// run.
//
// Orchestration runs on the staged pipeline engine (internal/pipeline):
// library construction, characterization sweeps, Monte Carlo immunity
// batches and the flow itself execute as worker-pool stages with
// content-keyed memoization, deterministically — results are independent
// of the worker count.
//
// Stage results persist across processes through the artifact store
// (internal/store): flow.WithStore(dir) — the -store flag on cnfetd,
// cnfetsweep and fasynth — layers a content-addressed, disk-backed
// store under the in-memory LRU stage cache, so a daemon restart, a
// repeated CLI invocation or a killed-and-rerun sweep warm-starts from
// the stages an earlier process computed (byte-identically; a full-adder
// flow drops from ~420ms cold to ~1ms warm). -store-budget bounds the
// store's size with oldest-first eviction, GET /v1/cache serves per-tier
// hit/miss/bytes/eviction statistics, and POST /v1/cache/purge drops
// every cached result. See DESIGN.md ("Staged pipeline engine",
// "Design-service API", "Sweep engine", "Sweep fabric", "Variation
// model & co-optimization" and "Artifact store") for the architecture,
// caching keys, cancellation semantics and determinism rules.
//
// Underneath all of it, the SPICE solver core (internal/spice) is built
// for steady-state-zero allocation: Newton/LU scratch and waveform
// storage live in a reusable spice.Workspace
// (Circuit.TransientWith, cells.Library.CharacterizeWith), the static
// linear part of the MNA system is stamped once per timestep
// configuration and copy-restored each iteration, and the FET
// linearization uses exact analytic derivatives of the logistic×tanh
// model sharing one exp/tanh with the current evaluation (validated
// against central differences to 1e-9). Systems of 50+ unknowns
// factorize through a sparse LU whose symbolic plan — fill-reducing
// ordering, elimination structure, per-element stamp slots — is
// computed once per topology, reused across iterations/timesteps/whole
// solves, and shared across structure-identical circuits by spice.Batch
// (liberty load sweeps via cells.CharacterizeBatch, tube-count Monte
// Carlo via immunity.DelaySpreadCtx); measured 4.6x (rca4) to 11.6x
// (mult4) over dense at identical-to-1e-14 waveforms, still at 0
// allocs/op steady state. The immunity checker reuses per-fork tube
// scratch the same way. See DESIGN.md ("Solver core").
//
// The benchmark harness in bench_test.go regenerates each experiment of
// the paper plus sequential-vs-pipelined engine comparisons:
//
//	go test -bench=. -benchmem .
//
// CI gates performance with internal/benchreg: `make bench-check`
// reduces a count=5 run to medians (BENCH_CURRENT.json) and fails on
// >30% median ns/op or allocs/op regression against the committed
// BENCH_BASELINE.json, warning (not silently passing) when a gated
// memory field is missing on either side; `make bench-profile` emits
// cpu/mem pprof artifacts from the spice-dominated benchmarks, and the
// CLIs take -cpuprofile/-memprofile (cnfetsweep, fasynth) and -pprof
// (cnfetd, opt-in net/http/pprof for trusted listeners only).
package cnfetdk
