// Package cnfetdk is an open reimplementation of "Design of Compact
// Imperfection-Immune CNFET Layouts for Standard-Cell-Based Logic
// Synthesis" (Bobba, Zhang, Pullini, Atienza, De Micheli — DATE 2009).
//
// The library generates carbon-nanotube-FET standard cells whose layouts
// are immune to mispositioned CNTs by construction (Euler-trail rows with
// redundant contacts), verifies that immunity geometrically, and ships the
// full design kit the paper describes: lambda design rules shared with a
// 65nm CMOS reference, calibrated CNFET/CMOS electrical models, a SPICE
// engine, a standard-cell library with characterization, logic synthesis,
// placement in the paper's two cell schemes, parasitic extraction, and a
// GDSII writer — a complete logic-to-GDSII flow.
//
// The flow is exposed as a generic design service (internal/flow): a
// serializable flow.Request — circuit by registry name, inline Boolean
// equations or structural netlist; technologies; placement scheme;
// wire-cap model; analyses (area, delay, energy, immunity, liberty, gds)
// — executed by Kit.Run(ctx, Request) with cooperative context
// cancellation, returning a JSON-stable flow.Result with per-stage
// traces. cmd/cnfetd serves the same requests over HTTP (POST /v1/jobs,
// GET /v1/circuits, GET /healthz) on one shared kit and memo cache.
//
// Orchestration runs on the staged pipeline engine (internal/pipeline):
// library construction, characterization sweeps, Monte Carlo immunity
// batches and the flow itself execute as worker-pool stages with
// content-keyed memoization, deterministically — results are independent
// of the worker count. See DESIGN.md ("Staged pipeline engine" and
// "Design-service API") for the architecture, caching keys, cancellation
// semantics and determinism rules.
//
// The benchmark harness in bench_test.go regenerates each experiment of
// the paper plus sequential-vs-pipelined engine comparisons:
//
//	go test -bench=. -benchmem .
package cnfetdk
