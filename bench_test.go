package cnfetdk_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section III Table 1, Section V case studies 1-2, Figs 2-9).
// Each benchmark prints a paper-vs-measured comparison once (b.Logf, shown
// with -v) and exports its headline numbers as custom benchmark metrics so
// plain `go test -bench=.` output records them.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/cnt"
	"cnfetdk/internal/device"
	"cnfetdk/internal/flow"
	"cnfetdk/internal/gdsii"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/immunity"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/liberty"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/place"
	"cnfetdk/internal/report"
	"cnfetdk/internal/route"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/spice"
	"cnfetdk/internal/sta"
	"cnfetdk/internal/sweep"
	"cnfetdk/internal/synth"
)

var (
	kitOnce sync.Once
	kitVal  *flow.Kit
	kitErr  error
)

func kit(b *testing.B) *flow.Kit {
	b.Helper()
	kitOnce.Do(func() { kitVal, kitErr = flow.NewKit() })
	if kitErr != nil {
		b.Fatal(kitErr)
	}
	return kitVal
}

func mustGate(b *testing.B, f string) *network.Gate {
	b.Helper()
	g, err := network.NewGate(f, logic.MustParse(f), 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func genCell(b *testing.B, f string, style layout.Style, w int) *layout.Cell {
	b.Helper()
	c, err := layout.Generate(f, mustGate(b, f), style, geom.Lambda(w), rules.Default65nm(rules.CNFET))
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTable1AreaComparison regenerates Table 1: area saving of the
// compact layouts over the etched-region layouts of ref [6].
func BenchmarkTable1AreaComparison(b *testing.B) {
	b.ReportAllocs()
	cells := []struct {
		name, f string
		paper   [4]float64 // paper's percentages at 3/4/6/10λ
	}{
		{"Inverter", "A", [4]float64{0, 0, 0, 0}},
		{"NAND2", "AB", [4]float64{17.18, 14.52, 11.67, 9.25}},
		{"NAND3", "ABC", [4]float64{19.64, 16.67, 13.45, 10.71}},
		{"AOI22", "AB+CD", [4]float64{32.2, 27.7, 22.5, 14.9}},
		{"AOI21", "AB+C", [4]float64{44.3, 40.6, 36.4, 32.5}},
	}
	sizes := []int{3, 4, 6, 10}
	var nand3at4 float64
	for i := 0; i < b.N; i++ {
		tab := &report.Table{
			Title:   "Table 1 (measured% / paper%)",
			Headers: []string{"Cell", "3λ", "4λ", "6λ", "10λ"},
		}
		for _, c := range cells {
			row := []string{c.name}
			for k, w := range sizes {
				oldA := genCell(b, c.f, layout.StyleEtched, w).NetworksArea()
				newA := genCell(b, c.f, layout.StyleCompact, w).NetworksArea()
				saving := 100 * (1 - newA/oldA)
				if c.name == "NAND3" && w == 4 {
					nand3at4 = saving
				}
				row = append(row, fmt.Sprintf("%.1f/%.1f", saving, c.paper[k]))
			}
			tab.AddRow(row...)
		}
		if i == 0 {
			b.Logf("\n%s", tab.String())
		}
	}
	b.ReportMetric(nand3at4, "NAND3@4λ-%")
}

// BenchmarkFig2Immunity reproduces the vulnerable-vs-immune comparison:
// Monte Carlo failure rate of the conventional NAND2 layout against the
// certified-immune compact layout.
func BenchmarkFig2Immunity(b *testing.B) {
	b.ReportAllocs()
	vuln := genCell(b, "AB", layout.StyleVulnerable, 4)
	comp := genCell(b, "AB", layout.StyleCompact, 4)
	var failRate float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(42))
		vc := immunity.NewChecker(vuln.PUN, vuln.Gate.PUN, vuln.Gate.Inputs)
		cc := immunity.NewChecker(comp.PUN, comp.Gate.PUN, comp.Gate.Inputs)
		vr := vc.MonteCarlo(2000, 15, rng)
		cr := cc.MonteCarlo(2000, 15, rand.New(rand.NewSource(42)))
		failRate = vr.FailureRate()
		if i == 0 {
			b.Logf("vulnerable NAND2 PUN fail rate %.2f%%; compact %.2f%% (paper: immune = 0)",
				100*vr.FailureRate(), 100*cr.FailureRate())
		}
		if cr.BadTubes != 0 {
			b.Fatal("compact layout must be immune")
		}
	}
	b.ReportMetric(100*failRate, "vulnerable-fail-%")
}

// BenchmarkFig3NAND3 regenerates the Fig 3 comparison: NAND3 etched vs
// compact, both immune, 16.67% smaller at 4λ.
func BenchmarkFig3NAND3(b *testing.B) {
	b.ReportAllocs()
	var saving float64
	for i := 0; i < b.N; i++ {
		etched := genCell(b, "ABC", layout.StyleEtched, 4)
		compact := genCell(b, "ABC", layout.StyleCompact, 4)
		saving = 100 * (1 - compact.NetworksArea()/etched.NetworksArea())
		if i == 0 {
			p1, d1 := immunity.VerifyImmunity(etched)
			p2, d2 := immunity.VerifyImmunity(compact)
			b.Logf("etched %d etches %d vias, compact %d etches %d vias; both immune=%v; saving %.2f%% (paper 16.67%%)",
				len(etched.PUN.Etches()), etched.ViasOnGate(),
				len(compact.PUN.Etches()), compact.ViasOnGate(),
				p1.Immune() && d1.Immune() && p2.Immune() && d2.Immune(), saving)
		}
	}
	b.ReportMetric(saving, "saving-%")
}

// BenchmarkFig4AOI31 regenerates the generalized SOP/POS example: the
// AOI31 (ABC+D)' basic layout with its intermediate-contact PUN and the
// symmetric width assignment (PDN chain 3x, PUN 2x).
func BenchmarkFig4AOI31(b *testing.B) {
	b.ReportAllocs()
	var contacts float64
	for i := 0; i < b.N; i++ {
		c := genCell(b, "ABC+D", layout.StyleCompact, 4)
		pun, pdn := immunity.VerifyImmunity(c)
		if !pun.Immune() || !pdn.Immune() {
			b.Fatal("AOI31 compact layout must be immune")
		}
		contacts = float64(len(c.PUN.Contacts()))
		if i == 0 {
			widths := map[string]float64{}
			for _, d := range c.Gate.PDN.Devices {
				widths["PDN:"+d.Gate] = d.Width
			}
			for _, d := range c.Gate.PUN.Devices {
				widths["PUN:"+d.Gate] = d.Width
			}
			b.Logf("AOI31: PUN %d contacts (intermediate m contacts for the product-of-sums), widths %v (paper: chain 3x, PUN 2x)",
				len(c.PUN.Contacts()), widths)
		}
	}
	b.ReportMetric(contacts, "pun-contacts")
}

// BenchmarkFig6Schemes assembles the NAND2 standard cell both ways and
// reports the scheme heights (scheme 2 collapses the cell height).
func BenchmarkFig6Schemes(b *testing.B) {
	b.ReportAllocs()
	var h1, h2 float64
	for i := 0; i < b.N; i++ {
		c := genCell(b, "AB", layout.StyleCompact, 4)
		s1 := c.Assemble(layout.Scheme1)
		s2 := c.Assemble(layout.Scheme2)
		h1, h2 = s1.Height.Lambdas(), s2.Height.Lambdas()
		if i == 0 {
			b.Logf("NAND2 scheme1 %vλ x %vλ, scheme2 %vλ x %vλ",
				s1.Width.Lambdas(), h1, s2.Width.Lambdas(), h2)
		}
	}
	b.ReportMetric(h1/h2, "height-ratio")
}

// BenchmarkFig7FO4Sweep regenerates the Fig 7 series (delay gain vs CNT
// count) with the calibrated model and reports the optimum.
func BenchmarkFig7FO4Sweep(b *testing.B) {
	b.ReportAllocs()
	p := device.DefaultFO4()
	var peak float64
	var optPitch float64
	for i := 0; i < b.N; i++ {
		opt := p.OptimalN(60)
		peak = p.DelayGain(opt)
		optPitch = device.Pitch(opt)
		if i == 0 {
			var s report.Series
			for n := 1; n <= 40; n++ {
				s.X = append(s.X, float64(n))
				s.Y = append(s.Y, p.DelayGain(n))
			}
			var buf bytes.Buffer
			s.Name = "FO4 delay gain vs tubes"
			report.ASCIIPlot(&buf, s, 64, 12)
			b.Logf("\n%s\npeak %.2fx at pitch %.2fnm (paper: 4.2x at 5nm)", buf.String(), peak, optPitch)
		}
	}
	b.ReportMetric(peak, "peak-delay-gain")
	b.ReportMetric(optPitch, "optimal-pitch-nm")
}

// BenchmarkCase1Inverter regenerates the case study 1 numbers: single-tube
// gains, optimum gains, pitch band and inverter area gain vs width.
func BenchmarkCase1Inverter(b *testing.B) {
	b.ReportAllocs()
	p := device.DefaultFO4()
	k := kit(b)
	var d1, e1, dOpt, eOpt, area float64
	for i := 0; i < b.N; i++ {
		d1, e1 = p.DelayGain(1), p.EnergyGain(1)
		opt := p.OptimalN(60)
		dOpt, eOpt = p.DelayGain(opt), p.EnergyGain(26)
		var err error
		area, err = k.CellAreaGain(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("1 tube: %.2fx delay %.2fx energy (paper 2.75/6.3); optimum: %.2fx/%.2fx (paper 4.2/2.0); area gain %.2fx @4λ (paper 1.4)",
				d1, e1, dOpt, eOpt, area)
		}
	}
	b.ReportMetric(d1, "delay-gain-1tube")
	b.ReportMetric(e1, "energy-gain-1tube")
	b.ReportMetric(dOpt, "delay-gain-opt")
	b.ReportMetric(eOpt, "energy-gain-5nm")
	b.ReportMetric(area, "inv-area-gain")
}

// BenchmarkCase2FullAdder runs the full case study 2 (placement + spice).
func BenchmarkCase2FullAdder(b *testing.B) {
	b.ReportAllocs()
	k := kit(b)
	var res *flow.FullAdderResult
	for i := 0; i < b.N; i++ {
		r, err := k.RunFullAdder()
		if err != nil {
			b.Fatal(err)
		}
		res = r
		if i == 0 {
			b.Logf("delay %.2fx (paper ~3.5), energy %.2fx (paper ~1.5), area s1 %.2fx (paper ~1.4) s2 %.2fx (paper ~1.6)",
				r.DelayGain(), r.EnergyGain(), r.AreaGainS1(), r.AreaGainS2())
		}
	}
	b.ReportMetric(res.DelayGain(), "delay-gain")
	b.ReportMetric(res.EnergyGain(), "energy-gain")
	b.ReportMetric(res.AreaGainS1(), "area-gain-s1")
	b.ReportMetric(res.AreaGainS2(), "area-gain-s2")
}

// BenchmarkFig8Placement reports the utilization story behind Fig 8:
// normalized scheme-1 rows vs natural-height scheme-2 shelves.
func BenchmarkFig8Placement(b *testing.B) {
	b.ReportAllocs()
	k := kit(b)
	nl := synth.FullAdder()
	var u1, u2 float64
	for i := 0; i < b.N; i++ {
		p1, err := place.Rows(k.CNFET, nl, 2)
		if err != nil {
			b.Fatal(err)
		}
		p2, err := place.Shelves(k.CNFET, nl, 0)
		if err != nil {
			b.Fatal(err)
		}
		u1, u2 = p1.Utilization(), p2.Utilization()
		if i == 0 {
			b.Logf("scheme1 rows: %.0fλ² util %.2f; scheme2 shelves: %.0fλ² util %.2f",
				p1.Area(), u1, p2.Area(), u2)
		}
	}
	b.ReportMetric(u1, "util-s1")
	b.ReportMetric(u2, "util-s2")
}

// BenchmarkFig9GDS streams the scheme-2 full adder to GDSII and reads it
// back (the paper's Fig 9 layout snapshot as a byte stream).
func BenchmarkFig9GDS(b *testing.B) {
	b.ReportAllocs()
	k := kit(b)
	nl := synth.FullAdder()
	p2, err := place.Shelves(k.CNFET, nl, 0)
	if err != nil {
		b.Fatal(err)
	}
	var size int
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := flow.WritePlacementGDS(&buf, k.CNFET, p2, "FULLADDER_S2"); err != nil {
			b.Fatal(err)
		}
		size = buf.Len()
		lib, err := gdsii.Read(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if lib.Find("FULLADDER_S2") == nil {
			b.Fatal("round trip lost the top cell")
		}
	}
	b.ReportMetric(float64(size), "gds-bytes")
}

// BenchmarkHeadlineGains reports the abstract's headline numbers: EDP gain
// above 8 at the optimum (>10 across the sweep) and EDAP ~12x.
func BenchmarkHeadlineGains(b *testing.B) {
	b.ReportAllocs()
	p := device.DefaultFO4()
	k := kit(b)
	var edp, edap float64
	for i := 0; i < b.N; i++ {
		opt := p.OptimalN(60)
		areaGain, err := k.CellAreaGain(1)
		if err != nil {
			b.Fatal(err)
		}
		edp = p.EDPGain(opt)
		edap = edp * areaGain
		if i == 0 {
			b.Logf("inverter EDP gain %.1fx at optimum (paper >8-10x), EDAP %.1fx (paper ~12x)", edp, edap)
		}
	}
	b.ReportMetric(edp, "edp-gain")
	b.ReportMetric(edap, "edap-gain")
}

// BenchmarkAblationScreening shows the paper's claim that the optimal
// pitch is a technology parameter: sweeping the screening scale moves the
// optimum (their 65nm low-k/poly: 5nm; Deng's 32nm high-k: 4nm).
func BenchmarkAblationScreening(b *testing.B) {
	b.ReportAllocs()
	var spread float64
	for i := 0; i < b.N; i++ {
		base := device.DefaultFO4()
		pitches := []float64{}
		for _, scale := range []float64{0.6, 1.0, 1.6} {
			p := base
			p.Screen.PitchScaleNM = base.Screen.PitchScaleNM * scale
			pitches = append(pitches, p.OptimalPitchNM(60))
		}
		spread = pitches[2] - pitches[0]
		if i == 0 {
			b.Logf("optimal pitch vs screening scale {0.6,1.0,1.6}: %.2f / %.2f / %.2f nm", pitches[0], pitches[1], pitches[2])
		}
		if spread <= 0 {
			b.Fatal("stronger screening must move the optimum to sparser pitch")
		}
	}
	b.ReportMetric(spread, "pitch-spread-nm")
}

// BenchmarkAblationVerticalGating quantifies the manufacturability cost
// the compact layouts remove: vias-on-gate across the Table 1 cells.
func BenchmarkAblationVerticalGating(b *testing.B) {
	b.ReportAllocs()
	var viasOld, viasNew float64
	for i := 0; i < b.N; i++ {
		viasOld, viasNew = 0, 0
		for _, f := range []string{"AB", "ABC", "AB+C", "AB+CD", "ABC+D"} {
			viasOld += float64(genCell(b, f, layout.StyleEtched, 4).ViasOnGate())
			viasNew += float64(genCell(b, f, layout.StyleCompact, 4).ViasOnGate())
		}
		if i == 0 {
			b.Logf("vias-on-gate across 5 cells: etched %c%.0f, compact %.0f", '~', viasOld, viasNew)
		}
		if viasNew != 0 {
			b.Fatal("compact layouts must not need vertical gating")
		}
	}
	b.ReportMetric(viasOld, "etched-vias")
}

// BenchmarkLibraryBuildSequential is the reference path of the staged
// pipeline engine: the full CNFET library (gate synthesis, compact layout
// generation, DRC) on a single worker.
func BenchmarkLibraryBuildSequential(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cells.NewLibraryOpts(rules.CNFET, cells.BuildOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLibraryBuildPipelined is the same build fanned out across one
// worker per CPU; with GOMAXPROCS>1 it must beat the sequential path.
func BenchmarkLibraryBuildPipelined(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cells.NewLibraryOpts(rules.CNFET, cells.BuildOptions{Workers: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterizationSequential sweeps the full CNFET datasheet
// (one SPICE transient per cell) on a single worker.
func BenchmarkCharacterizationSequential(b *testing.B) {
	b.ReportAllocs()
	lib := kit(b).CNFET
	for i := 0; i < b.N; i++ {
		if _, err := lib.DatasheetWorkers(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterizationPipelined is the same datasheet sweep with the
// per-cell SPICE jobs fanned out across the worker pool.
func BenchmarkCharacterizationPipelined(b *testing.B) {
	b.ReportAllocs()
	lib := kit(b).CNFET
	for i := 0; i < b.N; i++ {
		if _, err := lib.DatasheetWorkers(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowCachedRerun measures a repeated full-adder flow run against
// a warm kit cache: every stage (placement, SPICE, energy) is served from
// the content-keyed memo cache.
func BenchmarkFlowCachedRerun(b *testing.B) {
	b.ReportAllocs()
	k, err := flow.NewKit()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := k.RunFullAdder(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.RunFullAdder(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(k.CacheLen()), "cached-stages")
}

// benchSweepSpec is the sweep benchmark workload: 2 circuits x 2
// placement schemes x 3 Monte Carlo tube counts = 12 points whose
// netlist and placement stages are shared across the tube-count axis.
func benchSweepSpec() sweep.Spec {
	return sweep.Spec{
		Name: "bench",
		Base: flow.Request{
			Techs:    []string{"cnfet"},
			Analyses: []flow.Analysis{flow.AnalysisArea, flow.AnalysisImmunity},
		},
		Axes: sweep.Axes{
			Circuits:   []string{"mux2", "dec2"},
			Placements: []string{"rows", "shelves"},
			MCTubes:    []int{16, 32, 48},
		},
	}
}

// BenchmarkSweepSharedCache measures the batch engine on one shared kit:
// after the first expansion warms the memo cache, every rerun of the
// 12-point sweep serves all stages from cache — the scenario-exploration
// hot path.
func BenchmarkSweepSharedCache(b *testing.B) {
	b.ReportAllocs()
	k := kit(b)
	spec := benchSweepSpec()
	var hits, total int
	for i := 0; i < b.N; i++ {
		rep, err := sweep.Run(context.Background(), k, spec)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed != 0 {
			b.Fatalf("%d points failed", rep.Failed)
		}
		hits, total = rep.Trace.CacheHitStages, rep.Trace.TotalStages
	}
	b.ReportMetric(float64(hits), "cached-stages")
	b.ReportMetric(float64(total), "total-stages")
}

// BenchmarkSweepColdPoints is the contrast case the sweep engine
// removes: the same 12 points issued as independent Kit.Run calls
// against a fresh (empty) cache each iteration, so no prefix stage is
// ever shared. The gap to BenchmarkSweepSharedCache is the batching win.
func BenchmarkSweepColdPoints(b *testing.B) {
	b.ReportAllocs()
	spec := benchSweepSpec()
	points, err := spec.Expand()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, pt := range points {
			// One fresh kit per point: an empty memo cache every time,
			// like separate processes issuing unrelated jobs.
			k, err := flow.NewKit()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := k.Run(context.Background(), pt.Request); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// storeBenchRequest is the disk-store benchmark workload: the full-adder
// flow with its expensive transistor-level stages, so the cold/warm gap
// measures real recomputation saved, not just bookkeeping.
func storeBenchRequest() flow.Request {
	return flow.Request{
		Circuit:  "fulladder",
		Analyses: []flow.Analysis{flow.AnalysisArea, flow.AnalysisDelay, flow.AnalysisEnergy},
	}
}

// BenchmarkStoreDiskCold measures the worst case of the persistent
// artifact store: a fresh kit over an empty store directory computes
// every stage and writes each result through to disk. The delta against
// BenchmarkCase2FullAdder-style warm in-memory reruns is the
// write-through overhead; the delta against BenchmarkStoreDiskWarm is
// the cross-process warm-start win.
func BenchmarkStoreDiskCold(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		k, err := flow.New(ctx, flow.WithStore(b.TempDir()))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := k.Run(ctx, storeBenchRequest()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreDiskWarm measures the cross-process warm start: every
// iteration builds a fresh kit (fresh memory tier — a new process,
// morally) over a store directory populated once, so every stage is
// decoded from the disk tier instead of recomputed.
func BenchmarkStoreDiskWarm(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	dir := b.TempDir()
	seed, err := flow.New(ctx, flow.WithStore(dir))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := seed.Run(ctx, storeBenchRequest()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var diskHits int64
	for i := 0; i < b.N; i++ {
		k, err := flow.New(ctx, flow.WithStore(dir))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := k.Run(ctx, storeBenchRequest()); err != nil {
			b.Fatal(err)
		}
		st := k.CacheStats()
		if st.Disk == nil || st.Disk.Hits == 0 {
			b.Fatal("warm run must serve from the disk tier")
		}
		diskHits = st.Disk.Hits
	}
	b.ReportMetric(float64(diskHits), "disk-hits")
}

// BenchmarkMonteCarloSequential checks 4000 tubes on the NAND3 compact
// cell on a single worker — the reference for the sharded path below.
func BenchmarkMonteCarloSequential(b *testing.B) {
	b.ReportAllocs()
	c := genCell(b, "ABC", layout.StyleCompact, 4)
	ch := immunity.NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := ch.MonteCarloWorkers(4000, 15, rng, 1)
		if !rep.Immune() {
			b.Fatal("NAND3 compact must be immune")
		}
	}
	b.ReportMetric(4000, "tubes/op")
}

// BenchmarkMonteCarloPipelined is the same batch sharded across one
// worker per CPU; the report is bit-identical to the sequential run.
func BenchmarkMonteCarloPipelined(b *testing.B) {
	b.ReportAllocs()
	c := genCell(b, "ABC", layout.StyleCompact, 4)
	ch := immunity.NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := ch.MonteCarloWorkers(4000, 15, rng, 0)
		if !rep.Immune() {
			b.Fatal("NAND3 compact must be immune")
		}
	}
	b.ReportMetric(4000, "tubes/op")
}

// BenchmarkMonteCarloThroughput measures the immunity checker itself —
// tubes verified per second on the NAND3 compact cell.
func BenchmarkMonteCarloThroughput(b *testing.B) {
	b.ReportAllocs()
	c := genCell(b, "ABC", layout.StyleCompact, 4)
	ch := immunity.NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := ch.MonteCarlo(1000, 15, rng)
		if !rep.Immune() {
			b.Fatal("NAND3 compact must be immune")
		}
	}
	b.ReportMetric(1000, "tubes/op")
}

// BenchmarkFunctionalYield measures the full-cell yield analysis used in
// the Fig 2 experiment.
func BenchmarkFunctionalYield(b *testing.B) {
	b.ReportAllocs()
	c := genCell(b, "AB", layout.StyleCompact, 6)
	cc := immunity.NewCellChecker(c)
	params := cnt.DefaultParams()
	params.MisalignedFrac = 0.25
	params.PitchNM = 20
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	var y float64
	for i := 0; i < b.N; i++ {
		y = cc.FunctionalYield(10, params, rng)
		if y != 1 {
			b.Fatal("compact NAND2 yield must be 1.0")
		}
	}
	b.ReportMetric(y, "yield")
}

// BenchmarkScalingRippleCarry extends case study 2 to multi-bit adders:
// the scheme-2 packing advantage persists (and grows slightly) as the
// design scales to many minimum-to-medium cells — the regime the paper
// says scheme 2 targets.
func BenchmarkScalingRippleCarry(b *testing.B) {
	b.ReportAllocs()
	k := kit(b)
	var gain2, gain4 float64
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{2, 4} {
			nl := synth.RippleCarryAdder(bits)
			cm, err := place.Rows(k.CMOS, nl, 0)
			if err != nil {
				b.Fatal(err)
			}
			s2, err := place.Shelves(k.CNFET, nl, 0)
			if err != nil {
				b.Fatal(err)
			}
			g := cm.Area() / s2.Area()
			if bits == 2 {
				gain2 = g
			} else {
				gain4 = g
			}
			if i == 0 {
				b.Logf("rca%d: %d cells, CMOS %.0fλ² vs scheme2 %.0fλ² -> %.2fx",
					bits, len(nl.Instances), cm.Area(), s2.Area(), g)
			}
		}
	}
	b.ReportMetric(gain2, "rca2-area-gain")
	b.ReportMetric(gain4, "rca4-area-gain")
}

// BenchmarkExtensionMetallicYield probes the assumption the paper defers
// to manufacturing (Section II): residual metallic tubes short gates
// regardless of layout style, so functional yield collapses as the
// metallic fraction grows — quantifying why removal must happen upstream.
func BenchmarkExtensionMetallicYield(b *testing.B) {
	b.ReportAllocs()
	c := genCell(b, "AB", layout.StyleCompact, 6)
	cc := immunity.NewCellChecker(c)
	var y0, y20 float64
	for i := 0; i < b.N; i++ {
		params := cnt.DefaultParams()
		params.PitchNM = 20
		params.MisalignedFrac = 0
		params.MetallicFrac = 0
		y0 = cc.FunctionalYield(40, params, rand.New(rand.NewSource(5)))
		params.MetallicFrac = 0.20
		y20 = cc.FunctionalYield(40, params, rand.New(rand.NewSource(5)))
		if i == 0 {
			b.Logf("functional yield: 0%% metallic %.0f%%, 20%% metallic %.0f%% (immune layouts cannot fix metallic shorts)",
				100*y0, 100*y20)
		}
	}
	if y0 != 1 {
		b.Fatal("clean population must yield 1.0")
	}
	if y20 >= y0 {
		b.Fatal("metallic tubes must hurt yield")
	}
	b.ReportMetric(100*y20, "yield-at-20%-metallic")
}

// BenchmarkSTAFullAdder times the static-timing path of the kit: NLDM
// characterization reuse + graph traversal, versus the full transient.
func BenchmarkSTAFullAdder(b *testing.B) {
	b.ReportAllocs()
	k := kit(b)
	nl := synth.FullAdder()
	used := map[string]bool{}
	for _, inst := range nl.Instances {
		used[inst.Cell] = true
	}
	m, err := liberty.Characterize(k.CNFET, nil, func(n string) bool { return used[n] })
	if err != nil {
		b.Fatal(err)
	}
	p2, err := place.Shelves(k.CNFET, nl, 0)
	if err != nil {
		b.Fatal(err)
	}
	wire := flow.WireCaps(p2, nl, k.CNFET.Rules.LambdaNM)
	b.ResetTimer()
	var arrival float64
	for i := 0; i < b.N; i++ {
		res, err := sta.Analyze(nl, m, wire)
		if err != nil {
			b.Fatal(err)
		}
		arrival = res.MaxArrival()
	}
	b.ReportMetric(arrival*1e12, "critical-path-ps")
}

// staBenchSetup builds the mult8 timing workload shared by the engine
// benchmarks: the netlist, an NLDM model over exactly its cells, and
// the placed wire loads. Characterization cost is setup, not measured.
func staBenchSetup(b *testing.B) (*synth.Netlist, *liberty.Model, map[string]float64) {
	b.Helper()
	k := kit(b)
	c, err := flow.LookupCircuit("mult8")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := c.Build()
	if err != nil {
		b.Fatal(err)
	}
	used := map[string]bool{}
	for _, inst := range nl.Instances {
		used[inst.Cell] = true
	}
	m, err := liberty.Characterize(k.CNFET, nil, func(n string) bool { return used[n] })
	if err != nil {
		b.Fatal(err)
	}
	p, err := place.Shelves(k.CNFET, nl, 0)
	if err != nil {
		b.Fatal(err)
	}
	return nl, m, flow.WireCaps(p, nl, k.CNFET.Rules.LambdaNM)
}

// BenchmarkSTABuild times cold engine construction on mult8: interning,
// CSR fan-out build, levelization and the first full propagation.
func BenchmarkSTABuild(b *testing.B) {
	b.ReportAllocs()
	nl, m, wire := staBenchSetup(b)
	b.ResetTimer()
	var eng *sta.Engine
	for i := 0; i < b.N; i++ {
		var err error
		eng, err = sta.NewEngine(nl, m, wire)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(eng.Instances()), "instances")
	b.ReportMetric(float64(eng.Levels()), "levels")
}

// BenchmarkSTAReanalyze times a full steady-state repropagation of the
// built mult8 engine — the allocation-free hot loop (0 allocs/op).
func BenchmarkSTAReanalyze(b *testing.B) {
	b.ReportAllocs()
	nl, m, wire := staBenchSetup(b)
	eng, err := sta.NewEngine(nl, m, wire)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Analyze()
	}
	b.ReportMetric(eng.Delay()*1e12, "critical-path-ps")
}

// BenchmarkSTAIncremental times one cone update on mult8: a SetLoad on
// a mid-design net plus the dirty-cone Reanalyze. The touched metric is
// the cone size — a small fraction of the instance count.
func BenchmarkSTAIncremental(b *testing.B) {
	b.ReportAllocs()
	nl, m, wire := staBenchSetup(b)
	eng, err := sta.NewEngine(nl, m, wire)
	if err != nil {
		b.Fatal(err)
	}
	net := nl.Instances[len(nl.Instances)/2].Conns["OUT"]
	base := wire[net]
	b.ResetTimer()
	var touched int
	for i := 0; i < b.N; i++ {
		capF := base
		if i%2 == 0 {
			capF = 2 * base
		}
		if err := eng.SetLoad(net, capF); err != nil {
			b.Fatal(err)
		}
		touched = eng.Reanalyze()
	}
	b.ReportMetric(float64(touched), "cone-instances")
	b.ReportMetric(float64(eng.Instances()), "instances")
}

// delaySweepCaps is the wire-cap axis of the sweep-comparison pair:
// three interconnect corners around the kit default.
var delaySweepCaps = []float64{0.03e-18, 0.06e-18, 0.12e-18}

// BenchmarkDelaySweepTransient prices the old way to sweep a wire
// model: one transistor-level transient per point through the flow's
// delay stage. Each iteration runs on a fresh kit so the memo cache
// never serves a point across iterations or -count repeats — within
// one iteration the three points still share their prefix stages
// (netlist, placement), matching what the STA sweep reuses.
func BenchmarkDelaySweepTransient(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		k, err := flow.NewKit()
		if err != nil {
			b.Fatal(err)
		}
		for _, capPerNM := range delaySweepCaps {
			req := flow.Request{
				Circuit:      "mult4",
				Techs:        []string{"cnfet"},
				Analyses:     []flow.Analysis{flow.AnalysisDelay},
				WireCapPerNM: capPerNM,
			}
			res, err := k.Run(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if res.Techs["cnfet"].DelayS <= 0 {
				b.Fatal("no delay")
			}
		}
	}
	b.ReportMetric(float64(len(delaySweepCaps)), "points")
}

// BenchmarkDelaySweepSTA prices the same three-point wire sweep through
// the incremental timing engine: one characterization + one engine
// build + three cone repropagations per iteration (sweep.Timing runs
// end to end, nothing cached between iterations). The per-point gap to
// BenchmarkDelaySweepTransient is the tentpole speedup.
func BenchmarkDelaySweepSTA(b *testing.B) {
	b.ReportAllocs()
	k := kit(b)
	ctx := context.Background()
	var rep *sweep.TimingReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = sweep.Timing(ctx, k, sweep.TimingSpec{
			Circuit:       "mult4",
			WireCapsPerNM: delaySweepCaps,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Points) != len(delaySweepCaps) {
			b.Fatalf("points = %d", len(rep.Points))
		}
	}
	b.ReportMetric(float64(len(rep.Points)), "points")
	b.ReportMetric(rep.Points[len(rep.Points)-1].DelayS*1e12, "critical-path-ps")
}

// BenchmarkRoutingSchemes quantifies the routing-complexity trade the
// paper flags for scheme 2 ("needs new placement tools taking into
// account IR drops and routing complexity"): the scheme-2 full adder is
// smaller but needs more wire and vias than the CMOS-like scheme 1.
func BenchmarkRoutingSchemes(b *testing.B) {
	b.ReportAllocs()
	k := kit(b)
	nl := synth.FullAdder()
	var wl1, wl2 float64
	var vias1, vias2 int
	for i := 0; i < b.N; i++ {
		p1, err := place.Rows(k.CNFET, nl, 2)
		if err != nil {
			b.Fatal(err)
		}
		p2, err := place.Shelves(k.CNFET, nl, 0)
		if err != nil {
			b.Fatal(err)
		}
		r1, err := route.Route(p1, nl, route.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		r2, err := route.Route(p2, nl, route.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		wl1, wl2 = r1.TotalWirelenLambda, r2.TotalWirelenLambda
		vias1, vias2 = r1.Vias, r2.Vias
		if i == 0 {
			b.Logf("scheme1: %.0fλ wire %d vias overflow %d; scheme2: %.0fλ wire %d vias overflow %d",
				wl1, vias1, r1.OverflowEdges, wl2, vias2, r2.OverflowEdges)
		}
	}
	b.ReportMetric(wl1, "s1-wirelen-λ")
	b.ReportMetric(wl2, "s2-wirelen-λ")
	b.ReportMetric(float64(vias2-vias1), "extra-vias-s2")
}

// BenchmarkMixedSchemePlacement evaluates the paper's concluding idea: a
// per-cell combination of scheme 1 and scheme 2.
func BenchmarkMixedSchemePlacement(b *testing.B) {
	b.ReportAllocs()
	k := kit(b)
	nl := synth.FullAdder()
	var aMixed, aS2 float64
	for i := 0; i < b.N; i++ {
		p2, err := place.Shelves(k.CNFET, nl, 0)
		if err != nil {
			b.Fatal(err)
		}
		pm, err := place.Mixed(k.CNFET, nl, 0)
		if err != nil {
			b.Fatal(err)
		}
		aMixed, aS2 = pm.Area(), p2.Area()
		if i == 0 {
			b.Logf("scheme2 %.0fλ² vs mixed %.0fλ² (%.1f%% delta)",
				aS2, aMixed, 100*(1-aMixed/aS2))
		}
	}
	b.ReportMetric(aS2/aMixed, "mixed-vs-s2")
}

// BenchmarkAngleSensitivity sweeps the misalignment-angle bound for the
// vulnerable NAND2. Counter-intuitively, *small* angle bounds are the most
// dangerous for this geometry: a nearly-horizontal tube that enters the
// doped inter-strip band rides inside it all the way from the VDD column
// to the OUT column, while steeper tubes tend to exit the band and hit a
// gate or leave the active region. The compact layout stays at zero for
// every bound — its immunity is unconditional, not a small-angle artifact.
func BenchmarkAngleSensitivity(b *testing.B) {
	b.ReportAllocs()
	vuln := genCell(b, "AB", layout.StyleVulnerable, 4)
	comp := genCell(b, "AB", layout.StyleCompact, 4)
	var at5, at25 float64
	for i := 0; i < b.N; i++ {
		vc := immunity.NewChecker(vuln.PUN, vuln.Gate.PUN, vuln.Gate.Inputs)
		cc := immunity.NewChecker(comp.PUN, comp.Gate.PUN, comp.Gate.Inputs)
		var line string
		for _, ang := range []float64{5, 10, 15, 25} {
			vr := vc.MonteCarlo(1500, ang, rand.New(rand.NewSource(17)))
			cr := cc.MonteCarlo(1500, ang, rand.New(rand.NewSource(17)))
			if cr.BadTubes != 0 {
				b.Fatal("compact layout must stay immune at every angle")
			}
			line += fmt.Sprintf(" ±%.0f°:%.1f%%", ang, 100*vr.FailureRate())
			switch ang {
			case 5:
				at5 = vr.FailureRate()
			case 25:
				at25 = vr.FailureRate()
			}
		}
		if i == 0 {
			b.Logf("vulnerable NAND2 failure rate vs angle bound:%s (compact: 0%% throughout)", line)
		}
		if at25 <= 0 || at5 <= 0 {
			b.Fatal("the vulnerable layout must fail at every angle bound")
		}
	}
	b.ReportMetric(100*at5, "fail-%-at-5deg")
	b.ReportMetric(100*at25, "fail-%-at-25deg")
}

// delayBench builds a registry circuit's delay testbench — the same
// construction the flow's delay analysis uses: the instantiated netlist
// plus sorted static DC sources and the stimulus pulse.
func delayBench(b *testing.B, k *flow.Kit, name string) *spice.Circuit {
	b.Helper()
	c, err := flow.LookupCircuit(name)
	if err != nil {
		b.Fatal(err)
	}
	nl, err := c.Build()
	if err != nil {
		b.Fatal(err)
	}
	ckt, _, err := k.BuildCircuit(k.CNFET, nl, nil)
	if err != nil {
		b.Fatal(err)
	}
	period := 4000e-12
	statics := make([]string, 0, len(c.Stimulus.Static))
	for in := range c.Stimulus.Static {
		statics = append(statics, in)
	}
	sort.Strings(statics)
	for _, in := range statics {
		level := 0.0
		if c.Stimulus.Static[in] {
			level = device.Vdd
		}
		ckt.AddV("vin."+in, in, "0", spice.DC(level))
	}
	ckt.AddV("vin."+c.Stimulus.Pulse, c.Stimulus.Pulse, "0", spice.Pulse{
		V0: 0, V1: device.Vdd, Delay: period / 4,
		Rise: 5e-12, Fall: 5e-12, W: period / 2, Period: period,
	})
	return ckt
}

// transientBenchCases is the solver-scaling ladder: the full adder sits
// below the sparse crossover (dim 32), the adders and multiplier above
// it (116/228/294 unknowns). Step counts shrink with size so every case
// stays in benchmark-friendly territory; per-step cost is what the
// dense-vs-sparse comparison measures.
var transientBenchCases = []struct {
	name  string
	steps int
}{
	{"fulladder", 400},
	{"rca4", 200},
	{"rca8", 100},
	{"mult4", 50},
}

func benchTransientSolver(b *testing.B, kind spice.SolverKind) {
	k := kit(b)
	for _, tc := range transientBenchCases {
		b.Run("n="+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			ckt := delayBench(b, k, tc.name)
			opt := spice.DefaultOptions()
			opt.Solver = kind
			period := 4000e-12 * float64(tc.steps) / 8000
			ws := &spice.Workspace{}
			if _, err := ckt.TransientWith(ws, period, tc.steps, opt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ckt.TransientWith(ws, period, tc.steps, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tc.steps), "steps")
		})
	}
}

// BenchmarkTransientDense forces the dense LU path across the registry
// size ladder — the pre-sparse baseline.
func BenchmarkTransientDense(b *testing.B) { benchTransientSolver(b, spice.SolverDense) }

// BenchmarkTransientSparse is the same ladder through the sparse
// symbolic/numeric solver; compare ns/op case by case against
// BenchmarkTransientDense.
func BenchmarkTransientSparse(b *testing.B) { benchTransientSolver(b, spice.SolverSparse) }

// BenchmarkCharacterizationArcLoop measures one cell arc's load sweep
// the pre-batch way: load-by-load CharacterizeWith through one reused
// workspace.
func BenchmarkCharacterizationArcLoop(b *testing.B) {
	b.ReportAllocs()
	lib := kit(b).CNFET
	c := lib.MustGet("NAND2_1X")
	loads := liberty.DefaultLoads(lib.ReferenceLoad())
	ws := &spice.Workspace{}
	for i := 0; i < b.N; i++ {
		for _, load := range loads {
			if _, err := lib.CharacterizeWith(ws, c, "A", load); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCharacterizationArcBatch is the same sweep through the
// plan-sharing batch API liberty now uses.
func BenchmarkCharacterizationArcBatch(b *testing.B) {
	b.ReportAllocs()
	lib := kit(b).CNFET
	c := lib.MustGet("NAND2_1X")
	loads := liberty.DefaultLoads(lib.ReferenceLoad())
	for i := 0; i < b.N; i++ {
		if _, err := lib.CharacterizeBatch(c, "A", loads, spice.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVariationEnsembleLoop measures an 8-sample variation
// ensemble the naive way: rebuild the whole ensemble (netlists, plans,
// workspaces) for every sample.
func BenchmarkVariationEnsembleLoop(b *testing.B) {
	b.ReportAllocs()
	lib := kit(b).CNFET
	c := lib.MustGet("NAND2_1X")
	v := device.Variations{CountCV: 0.2, DiameterSigmaNM: 0.05}
	for i := 0; i < b.N; i++ {
		for s := int64(0); s < 8; s++ {
			e, err := lib.NewEnsemble(c, "A", lib.ReferenceLoad(), v, 1, spice.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Run(7 + s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkVariationEnsembleBatch is the same 8 samples through one
// reused Ensemble: lanes share the factorization plan and every rerun
// redraws devices into warmed workspaces. Steady state allocates
// nothing (pinned by cells.TestEnsembleSteadyStateZeroAlloc).
func BenchmarkVariationEnsembleBatch(b *testing.B) {
	b.ReportAllocs()
	lib := kit(b).CNFET
	c := lib.MustGet("NAND2_1X")
	v := device.Variations{CountCV: 0.2, DiameterSigmaNM: 0.05}
	e, err := lib.NewEnsemble(c, "A", lib.ReferenceLoad(), v, 8, spice.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Run(7); err != nil { // warm lane workspaces once
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(7); err != nil {
			b.Fatal(err)
		}
	}
}
