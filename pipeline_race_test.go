package cnfetdk_test

// Race-focused determinism tests for the staged pipeline engine: run with
// `go test -race` to exercise the concurrent library build, the parallel
// characterization sweep and the sharded Monte Carlo immunity checker,
// and assert that every result is bit-identical regardless of the worker
// count driving it.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/cnt"
	"cnfetdk/internal/flow"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/immunity"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/liberty"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
)

var workerSweep = []int{1, 2, 3, 8}

// libFingerprint renders a library into a stable byte string: every cell
// name with its layout geometry and area.
func libFingerprint(t *testing.T, lib *cells.Library) string {
	t.Helper()
	out := ""
	for _, name := range lib.Names() {
		c := lib.MustGet(name)
		out += fmt.Sprintf("%s pun=%v pdn=%v area=%.6f\n",
			name, c.Layout.PUN.BBox, c.Layout.PDN.BBox, lib.Area(c, layout.Scheme1))
	}
	return out
}

func TestLibraryBuildDeterministicAcrossWorkers(t *testing.T) {
	for _, tech := range []rules.Tech{rules.CNFET, rules.CMOS} {
		var want string
		for _, w := range workerSweep {
			lib, err := cells.NewLibraryOpts(tech, cells.BuildOptions{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tech, w, err)
			}
			got := libFingerprint(t, lib)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("%s: library built with %d workers differs from 1 worker", tech, w)
			}
		}
	}
}

func TestDatasheetDeterministicAcrossWorkers(t *testing.T) {
	lib, err := cells.NewLibrary(rules.CNFET)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := lib.DatasheetWorkers(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerSweep[1:] {
		par, err := lib.DatasheetWorkers(w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("datasheet with %d workers differs from sequential", w)
		}
	}
}

func TestLibertyCharacterizeDeterministicAcrossWorkers(t *testing.T) {
	lib, err := cells.NewLibrary(rules.CNFET)
	if err != nil {
		t.Fatal(err)
	}
	// A subset keeps the sweep fast while still spanning multiple cells
	// and multi-input arcs.
	keep := map[string]bool{"INV_1X": true, "NAND2_1X": true, "AOI21_1X": true}
	filter := func(n string) bool { return keep[n] }
	seq, err := liberty.CharacterizeWorkers(lib, nil, filter, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := liberty.CharacterizeWorkers(lib, nil, filter, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("liberty model with 8 workers differs from sequential")
	}
}

// reportBytes renders a Report byte-for-byte, including violation order.
func reportBytes(r immunity.Report) string { return fmt.Sprintf("%#v", r) }

func TestMonteCarloBitIdenticalAcrossWorkers(t *testing.T) {
	for _, f := range []struct {
		name  string
		style layout.Style
	}{{"compact", layout.StyleCompact}, {"vulnerable", layout.StyleVulnerable}} {
		g, err := network.NewGate("AB", logic.MustParse("AB"), 1)
		if err != nil {
			t.Fatal(err)
		}
		c, err := layout.Generate("AB", g, f.style, geom.Lambda(4), rules.Default65nm(rules.CNFET))
		if err != nil {
			t.Fatal(err)
		}
		ch := immunity.NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
		var want string
		for _, w := range workerSweep {
			rep := ch.MonteCarloWorkers(2000, 15, rand.New(rand.NewSource(42)), w)
			got := reportBytes(rep)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("%s: Monte Carlo report with %d workers differs from 1 worker", f.name, w)
			}
		}
	}
}

func TestCheckPopulationBitIdenticalAcrossWorkers(t *testing.T) {
	g, err := network.NewGate("AB", logic.MustParse("AB"), 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := layout.Generate("AB", g, layout.StyleVulnerable, geom.Lambda(4), rules.Default65nm(rules.CNFET))
	if err != nil {
		t.Fatal(err)
	}
	ch := immunity.NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
	params := cnt.DefaultParams()
	params.MisalignedFrac = 0.3
	params.PitchNM = 15
	tubes := cnt.Generate(c.PUN.BBox, params, rand.New(rand.NewSource(7)))
	if len(tubes) == 0 {
		t.Fatal("population generator returned no tubes")
	}
	want := reportBytes(ch.CheckPopulationWorkers(tubes, 1))
	for _, w := range workerSweep[1:] {
		if got := reportBytes(ch.CheckPopulationWorkers(tubes, w)); got != want {
			t.Fatalf("population report with %d workers differs from sequential", w)
		}
	}
}

// TestFlowGraphCachedRerun runs the full-adder flow twice through one kit
// and asserts the second run is served from the stage cache with an
// identical result.
func TestFlowGraphCachedRerun(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow in -short mode")
	}
	kit, err := flow.NewKit()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := kit.RunFullAdder()
	if err != nil {
		t.Fatal(err)
	}
	filled := kit.CacheLen()
	if filled == 0 {
		t.Fatal("flow run populated no cache entries")
	}
	r2, err := kit.RunFullAdder()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("cached rerun must return the memoized result")
	}
	if kit.CacheLen() != filled {
		t.Fatalf("rerun grew the cache: %d -> %d entries", filled, kit.CacheLen())
	}
}
