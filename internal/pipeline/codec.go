package pipeline

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Codec serializes one stage-result type for the persistent tier of the
// artifact store. A stage that declares a Codec promises that Encode ∘
// Decode is the identity on its result's observable value: a result
// decoded from disk must drive every downstream stage and every canonical
// output to bytes identical to the freshly computed one (the determinism
// contract of DESIGN.md "Artifact store").
//
// The Name is written into every disk entry; a loaded entry whose
// recorded codec differs from the stage's declared codec is treated as a
// miss, so renaming a codec (or bumping its @vN suffix) safely invalidates
// old entries instead of mis-decoding them.
type Codec interface {
	// Name identifies the codec (and implicitly the encoded format).
	// Convention: "pkg/type@v1"; bump the version when the byte format
	// changes.
	Name() string
	// Encode renders a stage result to bytes.
	Encode(v any) ([]byte, error)
	// Decode reconstructs a stage result from bytes.
	Decode(data []byte) (any, error)
}

// codecFuncs is the function-backed Codec used by NewCodec and the
// generic constructors.
type codecFuncs struct {
	name   string
	encode func(any) ([]byte, error)
	decode func([]byte) (any, error)
}

func (c codecFuncs) Name() string                 { return c.name }
func (c codecFuncs) Encode(v any) ([]byte, error) { return c.encode(v) }
func (c codecFuncs) Decode(d []byte) (any, error) { return c.decode(d) }

// NewCodec builds a Codec from an encode/decode function pair. Use it for
// codecs that need runtime context (the flow's placement codec resolves
// cell pointers against a library); for plain serializable types prefer
// JSONCodec or RawCodec.
func NewCodec(name string, encode func(any) ([]byte, error), decode func([]byte) (any, error)) Codec {
	if name == "" {
		panic("pipeline: codec with empty name")
	}
	return codecFuncs{name: name, encode: encode, decode: decode}
}

// JSONCodec builds a Codec for a type that round-trips exactly through
// encoding/json (float64 does: Go marshals the shortest representation
// that parses back to the same bit pattern). Decode returns a value of
// type T, so stage functions can keep their plain type assertions.
func JSONCodec[T any](name string) Codec {
	return NewCodec(name,
		func(v any) ([]byte, error) {
			t, ok := v.(T)
			if !ok {
				return nil, fmt.Errorf("pipeline: codec %s: encoding %T", name, v)
			}
			return json.Marshal(t)
		},
		func(data []byte) (any, error) {
			var t T
			if err := json.Unmarshal(data, &t); err != nil {
				return nil, err
			}
			return t, nil
		})
}

// RawCodec builds the identity Codec for []byte results (GDS streams).
func RawCodec(name string) Codec {
	return NewCodec(name,
		func(v any) ([]byte, error) {
			b, ok := v.([]byte)
			if !ok {
				return nil, fmt.Errorf("pipeline: codec %s: encoding %T, want []byte", name, v)
			}
			return b, nil
		},
		func(data []byte) (any, error) { return data, nil })
}

// codecRegistry is the process-wide codec table behind RegisterCodec.
var codecRegistry = struct {
	mu sync.Mutex
	m  map[string]Codec
}{m: map[string]Codec{}}

// RegisterCodec records a codec under its name and returns it, so
// packages can register at var-initialization time:
//
//	var codecDelay = pipeline.RegisterCodec(pipeline.JSONCodec[float64]("flow/delay@v1"))
//
// Registration makes the format a stable, discoverable contract: two
// codecs may not share a name, so every name maps to exactly one byte
// format for the life of the process. Context-bound codecs (closures
// over runtime state) are built with NewCodec and passed to stages
// directly without registration.
func RegisterCodec(c Codec) Codec {
	codecRegistry.mu.Lock()
	defer codecRegistry.mu.Unlock()
	if _, dup := codecRegistry.m[c.Name()]; dup {
		panic(fmt.Sprintf("pipeline: duplicate codec %q", c.Name()))
	}
	codecRegistry.m[c.Name()] = c
	return c
}

// LookupCodec returns the registered codec for a name.
func LookupCodec(name string) (Codec, bool) {
	codecRegistry.mu.Lock()
	defer codecRegistry.mu.Unlock()
	c, ok := codecRegistry.m[name]
	return c, ok
}

// CodecNames lists every registered codec name, sorted.
func CodecNames() []string {
	codecRegistry.mu.Lock()
	defer codecRegistry.mu.Unlock()
	names := make([]string, 0, len(codecRegistry.m))
	for name := range codecRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
