package pipeline

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Store is the pluggable artifact store behind Cache: completed stage
// values keyed by content key. The Cache owns singleflight (one
// computation per key at a time); the Store owns retention — how many
// tiers a value lives in, for how long, and whether it survives the
// process. Implementations must be safe for concurrent use.
type Store interface {
	// Probe is the fast, memory-only lookup the cache consults while
	// holding its own mutex: it must not block on I/O. Tiered stores
	// probe only their memory tier here.
	Probe(key string) (any, bool)
	// Load is the full lookup, called outside the cache mutex and under
	// singleflight protection after Probe missed, so slow tiers (disk)
	// run at most once per key per miss. A nil codec confines the lookup
	// to memory. Implementations need not re-check tiers Probe covered.
	Load(key string, c Codec) (any, bool)
	// Save persists a freshly computed value to every tier. A nil codec
	// keeps the value memory-only.
	Save(key string, c Codec, v any)
	// Len reports resident entries in the fastest (memory) tier.
	Len() int
	// Stats snapshots the per-tier counters.
	Stats() StoreStats
	// Purge drops every completed entry from every tier.
	Purge() error
}

// TierStats is one tier's cache-effectiveness counters.
type TierStats struct {
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes,omitempty"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts,omitempty"`
	Evictions int64 `json:"evictions"`
	Errors    int64 `json:"errors,omitempty"`
}

// StoreStats snapshots an artifact store: always a memory tier, plus the
// disk tier when the store is persistent (nil otherwise). This is the
// JSON shape the daemon serves on GET /v1/cache.
type StoreStats struct {
	Mem  TierStats  `json:"mem"`
	Disk *TierStats `json:"disk,omitempty"`
}

// Memory is the in-memory Store tier: a true LRU over decoded values.
// Probe and Load refresh recency, so a long-running server under an
// entry bound keeps its hot stage results and evicts the
// least-recently-used ones (the previous engine evicted FIFO, which
// could evict a hot library-build result merely because it was computed
// first). The zero value is not usable; construct with NewMemory.
type Memory struct {
	mu    sync.Mutex
	max   int        // max entries (0 = unbounded)
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions atomic.Int64
}

// memItem is one LRU entry.
type memItem struct {
	key   string
	value any
}

// NewMemory builds an LRU memory tier bounded to maxEntries completed
// values (maxEntries <= 0 is unbounded).
func NewMemory(maxEntries int) *Memory {
	return &Memory{max: maxEntries, ll: list.New(), items: map[string]*list.Element{}}
}

// Probe looks the key up and refreshes its recency.
func (m *Memory) Probe(key string) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		m.ll.MoveToFront(el)
		m.hits.Add(1)
		return el.Value.(*memItem).value, true
	}
	m.misses.Add(1)
	return nil, false
}

// Load reports a miss without recounting it: for a memory-only store the
// preceding Probe already answered authoritatively, and the cache only
// calls Load after Probe missed.
func (m *Memory) Load(string, Codec) (any, bool) { return nil, false }

// Save inserts (or refreshes) the value and enforces the entry bound.
func (m *Memory) Save(key string, _ Codec, v any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		el.Value.(*memItem).value = v
		m.ll.MoveToFront(el)
		return
	}
	m.items[key] = m.ll.PushFront(&memItem{key: key, value: v})
	for m.max > 0 && m.ll.Len() > m.max {
		oldest := m.ll.Back()
		m.ll.Remove(oldest)
		delete(m.items, oldest.Value.(*memItem).key)
		m.evictions.Add(1)
	}
}

// Len reports resident entries.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// Stats snapshots the tier counters.
func (m *Memory) Stats() StoreStats {
	return StoreStats{Mem: TierStats{
		Entries:   int64(m.Len()),
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Evictions: m.evictions.Load(),
	}}
}

// Purge drops every entry (counters are preserved).
func (m *Memory) Purge() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ll.Init()
	m.items = map[string]*list.Element{}
	return nil
}

// BlobStore is the byte-level persistence interface under a Tiered
// store's disk tier (implemented by internal/store.Disk). It stores
// encoded payloads with the codec name that produced them; all methods
// are best-effort — a failed Put or a corrupt entry surfaces as a miss
// plus an error counter, never as a pipeline failure.
type BlobStore interface {
	// Get returns the entry's recorded codec name and payload.
	Get(key string) (codec string, data []byte, ok bool)
	// Put persists a payload under key, atomically.
	Put(key, codec string, data []byte)
	// Len reports resident entries.
	Len() int
	// Stats snapshots the tier counters.
	Stats() TierStats
	// Purge removes every entry.
	Purge() error
}

// Tiered layers the LRU memory tier over a persistent blob tier: loads
// fall through memory to disk (decoding through the stage's codec and
// promoting hits back into memory), saves write through to both. Stages
// without a codec stay memory-only — correctness never depends on a type
// being serializable.
type Tiered struct {
	mem  *Memory
	disk BlobStore

	decodeErrs atomic.Int64 // undecodable or codec-mismatched disk hits
}

// NewTiered builds a layered store from a memory tier and a blob tier.
func NewTiered(mem *Memory, disk BlobStore) *Tiered {
	return &Tiered{mem: mem, disk: disk}
}

// Probe consults only the memory tier (no I/O).
func (t *Tiered) Probe(key string) (any, bool) { return t.mem.Probe(key) }

// Load consults the disk tier (the cache already probed memory) and
// promotes a decoded hit into the memory tier. An entry recorded under a
// different codec name, or one that fails to decode, counts as an error
// and a miss — the stage recomputes and overwrites it.
func (t *Tiered) Load(key string, c Codec) (any, bool) {
	if c == nil {
		return nil, false
	}
	codecName, data, ok := t.disk.Get(key)
	if !ok {
		return nil, false
	}
	if codecName != c.Name() {
		t.decodeErrs.Add(1)
		return nil, false
	}
	v, err := c.Decode(data)
	if err != nil {
		t.decodeErrs.Add(1)
		return nil, false
	}
	t.mem.Save(key, nil, v)
	return v, true
}

// Save writes through: memory always, disk when the stage has a codec.
func (t *Tiered) Save(key string, c Codec, v any) {
	t.mem.Save(key, c, v)
	if c == nil {
		return
	}
	data, err := c.Encode(v)
	if err != nil {
		t.decodeErrs.Add(1)
		return
	}
	t.disk.Put(key, c.Name(), data)
}

// Len reports memory-tier entries (mirroring the pre-store Cache.Len).
func (t *Tiered) Len() int { return t.mem.Len() }

// Stats merges both tiers; codec failures count into the disk tier's
// Errors alongside the blob-level corruption counter.
func (t *Tiered) Stats() StoreStats {
	s := t.mem.Stats()
	d := t.disk.Stats()
	d.Errors += t.decodeErrs.Load()
	s.Disk = &d
	return s
}

// Purge drops both tiers.
func (t *Tiered) Purge() error {
	if err := t.mem.Purge(); err != nil {
		return err
	}
	return t.disk.Purge()
}
