package pipeline

import (
	"sync"
	"testing"
)

func TestProgressChainAggregates(t *testing.T) {
	var root Progress
	a := new(Progress).Chain(&root)
	b := new(Progress).Chain(&root)

	a.SetTotal(3)
	b.SetTotal(2)
	a.ItemDone(false, 1, 2)
	a.ItemDone(true, 0, 2)
	b.ItemDone(false, 2, 2)

	if got := a.Snapshot(); got.Total != 3 || got.Done != 2 || got.Failed != 1 {
		t.Fatalf("a snapshot = %+v", got)
	}
	if got := b.Snapshot(); got.Total != 2 || got.Done != 1 || got.Failed != 0 {
		t.Fatalf("b snapshot = %+v", got)
	}
	got := root.Snapshot()
	if got.Total != 5 || got.Done != 3 || got.Failed != 1 || got.CachedStages != 3 || got.TotalStages != 6 {
		t.Fatalf("root snapshot = %+v, want the sum of both batches", got)
	}

	// A second SetTotal on one batch still only adds the new total to the
	// aggregate (batch totals sum; they never overwrite each other).
	a.SetTotal(7)
	if got := root.Snapshot(); got.Total != 12 {
		t.Fatalf("root total after re-SetTotal = %d, want 12", got.Total)
	}
}

func TestProgressChainTransitive(t *testing.T) {
	var root, mid Progress
	mid.Chain(&root)
	leaf := new(Progress).Chain(&mid)
	leaf.SetTotal(4)
	leaf.ItemDone(false, 0, 1)
	for name, p := range map[string]*Progress{"mid": &mid, "root": &root} {
		if got := p.Snapshot(); got.Total != 4 || got.Done != 1 {
			t.Fatalf("%s snapshot = %+v", name, got)
		}
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Chain(&Progress{})
	p.SetTotal(1)
	p.AddTotal(1)
	p.ItemDone(false, 0, 0)
	if got := p.Snapshot(); got != (ProgressSnapshot{}) {
		t.Fatalf("nil snapshot = %+v", got)
	}
	// An unchained Progress updates itself only.
	var solo Progress
	solo.SetTotal(2)
	solo.ItemDone(false, 0, 0)
	if got := solo.Snapshot(); got.Total != 2 || got.Done != 1 {
		t.Fatalf("solo snapshot = %+v", got)
	}
}

func TestProgressChainConcurrent(t *testing.T) {
	var root Progress
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		batch := new(Progress).Chain(&root)
		batch.SetTotal(100)
		wg.Add(1)
		go func(p *Progress) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.ItemDone(j%10 == 0, 1, 1)
			}
		}(batch)
	}
	wg.Wait()
	got := root.Snapshot()
	if got.Total != 800 || got.Done != 800 || got.Failed != 80 {
		t.Fatalf("root snapshot = %+v", got)
	}
}
