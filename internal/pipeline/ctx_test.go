package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	_, err := MapCtx(ctx, 4, make([]int, 100), func(i int, _ int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d items ran under a pre-cancelled context", n)
	}
}

func TestMapCtxMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	_, err := MapCtx(ctx, 1, make([]int, 100), func(i int, _ int) (int, error) {
		if i == 10 {
			cancel()
		}
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 11 {
		t.Fatalf("ran %d items, want 11 (cancel stops dispatch)", n)
	}
}

func TestMapCtxErrorBeatsCancellation(t *testing.T) {
	// A genuine failure at a lower index than the first cancelled item
	// must win error reporting.
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	_, err := MapCtx(ctx, 1, make([]int, 10), func(i int, _ int) (int, error) {
		if i == 2 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestCacheDoCtxPreCancelled(t *testing.T) {
	c := NewCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.DoCtx(ctx, "k", func() (any, error) { return 1, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after cancelled Do, want 0", c.Len())
	}
}

func TestCacheDoCtxWaiterAbandons(t *testing.T) {
	c := NewCache()
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Do("k", func() (any, error) {
			close(started)
			<-block
			return 42, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.DoCtx(ctx, "k", func() (any, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(block)
	// The computation still completes and is served to later callers.
	v, cached, err := c.Do("k", func() (any, error) { return 0, fmt.Errorf("must not run") })
	if err != nil || !cached || v.(int) != 42 {
		t.Fatalf("post-abandon Do = (%v, %v, %v), want (42, true, nil)", v, cached, err)
	}
}

func TestCacheDoCtxCancelledFnNotCached(t *testing.T) {
	c := NewCache()
	ctx, cancel := context.WithCancel(context.Background())
	_, _, err := c.DoCtx(ctx, "k", func() (any, error) {
		cancel()
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.Len() != 0 {
		t.Fatalf("cancelled computation left %d cache entries, want 0", c.Len())
	}
	// A retry with a live context computes fresh.
	v, cached, err := c.Do("k", func() (any, error) { return "fresh", nil })
	if err != nil || cached || v.(string) != "fresh" {
		t.Fatalf("retry = (%v, %v, %v), want (fresh, false, nil)", v, cached, err)
	}
}

func TestCacheBoundEvictsOldest(t *testing.T) {
	c := NewCacheBound(2)
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(k, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("bounded cache holds %d entries, want 2", n)
	}
	// The newest entries survive; the oldest were evicted.
	v, cached, err := c.Do("k4", func() (any, error) { return -1, nil })
	if err != nil || !cached || v.(int) != 4 {
		t.Fatalf("k4 = (%v, %v, %v), want cached 4", v, cached, err)
	}
	if _, cached, _ := c.Do("k0", func() (any, error) { return 100, nil }); cached {
		t.Fatal("k0 should have been evicted")
	}
}

func TestGraphRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cache := NewCache()
	g := NewGraph(cache, 2)
	var ran atomic.Int32
	g.AddFunc("a", "key/a", nil, func(map[string]any) (any, error) {
		ran.Add(1)
		return 1, nil
	})
	g.AddFunc("b", "key/b", []string{"a"}, func(map[string]any) (any, error) {
		ran.Add(1)
		return 2, nil
	})
	_, err := g.RunCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d stages ran under a pre-cancelled context", n)
	}
	if cache.Len() != 0 {
		t.Fatalf("cancelled graph left %d cache entries, want 0", cache.Len())
	}
}

func TestGraphRunCtxMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cache := NewCache()
	g := NewGraph(cache, 1)
	g.AddFunc("a", "key/a", nil, func(map[string]any) (any, error) {
		cancel() // cancel while the first stage is in flight
		return 1, nil
	})
	var bRan atomic.Bool
	g.AddFunc("b", "key/b", []string{"a"}, func(map[string]any) (any, error) {
		bRan.Store(true)
		return 2, nil
	})
	_, err := g.RunCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if bRan.Load() {
		t.Fatal("dependent stage ran after cancellation")
	}
	// The in-flight stage completed: its result is cached, the dependent
	// never produced a partial entry.
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1 (the completed stage)", cache.Len())
	}
	// A rerun with a live context resumes from the cached prefix.
	g2 := NewGraph(cache, 1)
	g2.AddFunc("a", "key/a", nil, func(map[string]any) (any, error) { return 0, fmt.Errorf("must be cached") })
	g2.AddFunc("b", "key/b", []string{"a"}, func(map[string]any) (any, error) { return 2, nil })
	res, err := g2.Run()
	if err != nil {
		t.Fatalf("rerun failed: %v", err)
	}
	if !res["a"].Cached || res["b"].Value.(int) != 2 {
		t.Fatalf("rerun: a cached=%v, b=%v; want cached prefix + fresh b", res["a"].Cached, res["b"].Value)
	}
}
