// Package pipeline is the staged execution engine behind the design kit's
// flow: a bounded worker pool, a content-keyed memo cache, deterministic
// parallel maps, and a small stage-graph runner with structured per-stage
// timing and error reporting.
//
// The kit's expensive steps — cell generation, SPICE characterization,
// Monte Carlo immunity checking, the logic-to-GDSII flow itself — are all
// embarrassingly parallel at some granularity, but their results must stay
// deterministic: a library built with 8 workers must equal a library built
// with 1, and a fixed-seed Monte Carlo report must be byte-identical at
// any worker count. The engine therefore separates *scheduling* (which
// goroutine computes an item) from *ordering* (results are always
// assembled in input-index order), and callers that need seeded
// randomness pre-draw their random inputs before fanning out.
//
// See DESIGN.md ("Staged pipeline engine") for the architecture.
package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// DefaultWorkers is the pool width used when a caller passes workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers normalizes a worker-count request against the item count.
func clampWorkers(workers, items int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Pool is a bounded worker pool: Go schedules a task, Wait drains them.
// The zero value is not usable; construct with NewPool.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup
}

// NewPool builds a pool running at most workers tasks concurrently
// (workers <= 0 selects DefaultWorkers).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Go schedules fn, blocking while the pool is saturated.
func (p *Pool) Go(fn func()) {
	p.sem <- struct{}{}
	p.wg.Add(1)
	go func() {
		defer func() {
			<-p.sem
			p.wg.Done()
		}()
		fn()
	}()
}

// Wait blocks until every scheduled task has finished.
func (p *Pool) Wait() { p.wg.Wait() }

// Map runs fn over items on up to workers goroutines and returns the
// outputs in input order. The first error (by input index, not by wall
// clock) aborts the result; remaining in-flight items still run to
// completion, so fn must not assume early cancellation.
func Map[I, O any](workers int, items []I, fn func(i int, item I) (O, error)) ([]O, error) {
	return MapCtx(context.Background(), workers, items, fn)
}

// MapCtx is Map with cooperative cancellation: once ctx is cancelled no
// further items are dispatched, items already in flight run to completion,
// and undispatched items report ctx.Err(). As in Map, the reported error
// is the first by input index — for a cancelled run with no earlier
// genuine failure that is the context error, so errors.Is(err,
// context.Canceled) holds.
func MapCtx[I, O any](ctx context.Context, workers int, items []I, fn func(i int, item I) (O, error)) ([]O, error) {
	out := make([]O, len(items))
	errs := make([]error, len(items))
	if len(items) == 0 {
		return out, nil
	}
	workers = clampWorkers(workers, len(items))
	// A panicking item converts to a typed *PanicError instead of
	// killing the worker goroutine: the map fails, the process (a
	// daemon serving other requests) survives.
	runItem := func(i int) (any, error) {
		return recovering("", func() (any, error) { return fn(i, items[i]) })
	}
	if workers == 1 {
		// Run inline: same code path semantics, no goroutine overhead,
		// and errors still reported by lowest index.
		for i := range items {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			var v any
			if v, errs[i] = runItem(i); errs[i] == nil && v != nil {
				out[i] = v.(O)
			}
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					var v any
					if v, errs[i] = runItem(i); errs[i] == nil && v != nil {
						out[i] = v.(O)
					}
				}
			}()
		}
		for i := range items {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			if err == ctx.Err() {
				return nil, err
			}
			return nil, fmt.Errorf("pipeline: item %d: %w", i, err)
		}
	}
	return out, nil
}

// Key renders parts into a stable content key. Values are formatted with
// %#v, which covers the kit's inputs (strings, numbers, rule structs) and
// keeps keys readable when debugging cache behaviour; the final key is a
// short hash so arbitrary-size inputs stay cheap to store and compare.
func Key(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%T=%#v\x00", p, p)
	}
	return hex.EncodeToString(h.Sum(nil))[:24]
}

// cacheEntry is one in-flight computation; done guards value/err.
type cacheEntry struct {
	done  chan struct{}
	value any
	err   error
}

// Cache is a content-keyed memo cache with singleflight semantics:
// concurrent Do calls for one key run the function once and share the
// result. Errors are not cached, so a failed stage re-runs on retry.
// Completed values live in a pluggable Store — an unbounded or LRU
// memory tier by default, optionally layered over a persistent disk tier
// (NewTiered) so a fresh process warm-starts from results an earlier one
// computed. The Cache itself owns only the in-flight bookkeeping.
type Cache struct {
	mu       sync.Mutex
	inflight map[string]*cacheEntry
	store    Store
}

// NewCache builds an empty cache over an unbounded memory store.
func NewCache() *Cache { return NewCacheStore(NewMemory(0)) }

// NewCacheStore builds a cache over an explicit artifact store.
func NewCacheStore(s Store) *Cache {
	return &Cache{inflight: map[string]*cacheEntry{}, store: s}
}

// NewCacheBound builds a cache holding at most maxEntries completed
// values in memory, evicted least-recently-used.
//
// Deprecated: use NewCacheStore(NewMemory(maxEntries)), which names the
// memory tier explicitly; this alias survives for callers of the old
// FIFO-bounded constructor.
func NewCacheBound(maxEntries int) *Cache { return NewCacheStore(NewMemory(maxEntries)) }

// Do returns the memoized value for key, computing it with fn on first
// use. The second result reports whether the value was served from cache.
func (c *Cache) Do(key string, fn func() (any, error)) (any, bool, error) {
	return c.DoCodecCtx(context.Background(), key, nil, fn)
}

// DoCtx is Do with cancellation: an already-cancelled context returns
// ctx.Err() without touching the cache, and a waiter abandoning an
// in-flight computation returns ctx.Err() while the computation itself
// runs to completion (its result stays cached for later callers). A
// computation that returns an error — including a context error from a
// cancelled fn — is evicted, never cached, so the cache holds only
// complete successful values.
func (c *Cache) DoCtx(ctx context.Context, key string, fn func() (any, error)) (any, bool, error) {
	return c.DoCodecCtx(ctx, key, nil, fn)
}

// DoCodecCtx is DoCtx for a stage whose result type has a Codec: the
// store's persistent tier is consulted before fn runs (a disk hit counts
// as cached) and the computed value is written through to it after. The
// slow-tier lookup runs under the same singleflight protection as fn
// itself, so concurrent misses of one key cost one disk read.
func (c *Cache) DoCodecCtx(ctx context.Context, key string, codec Codec, fn func() (any, error)) (any, bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		c.mu.Lock()
		if e, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if e.err == nil {
				return e.value, true, nil
			}
			// The in-flight computation failed. Evict the dead entry
			// (whichever of the owner and the waiters gets there first)
			// and retry with a fresh computation.
			c.mu.Lock()
			if c.inflight[key] == e {
				delete(c.inflight, key)
			}
			c.mu.Unlock()
			continue
		}
		if v, ok := c.store.Probe(key); ok {
			c.mu.Unlock()
			return v, true, nil
		}
		e := &cacheEntry{done: make(chan struct{})}
		c.inflight[key] = e
		c.mu.Unlock()

		fromStore := false
		if codec != nil {
			e.value, fromStore = c.store.Load(key, codec)
		}
		if !fromStore {
			e.value, e.err = fn()
		}
		close(e.done)
		if e.err == nil && !fromStore {
			// Write through before releasing the key: later callers keep
			// hitting the settled in-flight entry until the store holds
			// the value, so there is no window where a completed result
			// is invisible.
			c.store.Save(key, codec, e.value)
		}
		c.mu.Lock()
		if c.inflight[key] == e {
			delete(c.inflight, key)
		}
		c.mu.Unlock()
		if e.err != nil {
			return nil, false, e.err
		}
		return e.value, fromStore, nil
	}
}

// Len reports how many entries the cache holds: completed values resident
// in the store's memory tier plus computations still in flight.
func (c *Cache) Len() int {
	c.mu.Lock()
	n := len(c.inflight)
	c.mu.Unlock()
	return n + c.store.Len()
}

// Stats snapshots the underlying store's per-tier counters.
func (c *Cache) Stats() StoreStats { return c.store.Stats() }

// Purge drops every completed entry from every store tier; in-flight
// computations finish and re-populate normally.
func (c *Cache) Purge() error { return c.store.Purge() }

// StageReport is the timing/error record of one executed stage.
type StageReport struct {
	Stage  string
	Dur    time.Duration
	Items  int // parallel items processed (0 for scalar stages)
	Cached bool
	Err    error
}

// String renders one report line.
func (r StageReport) String() string {
	s := fmt.Sprintf("%-14s %10s", r.Stage, r.Dur.Round(time.Microsecond))
	if r.Items > 0 {
		s += fmt.Sprintf("  %d items", r.Items)
	}
	if r.Cached {
		s += "  (cached)"
	}
	if r.Err != nil {
		s += "  ERROR: " + r.Err.Error()
	}
	return s
}

// Trace accumulates stage reports across a run; safe for concurrent use.
type Trace struct {
	mu      sync.Mutex
	reports []StageReport
}

// Add records one stage report.
func (t *Trace) Add(r StageReport) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.reports = append(t.reports, r)
	t.mu.Unlock()
}

// Reports returns a copy of the recorded reports in completion order.
func (t *Trace) Reports() []StageReport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]StageReport(nil), t.reports...)
}

// String renders the trace as one line per stage, slowest first.
func (t *Trace) String() string {
	rs := t.Reports()
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Dur > rs[j].Dur })
	s := ""
	for _, r := range rs {
		s += r.String() + "\n"
	}
	return s
}
