package pipeline

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// ErrPanic is the sentinel wrapped by every panic a pipeline worker
// recovers; match with errors.Is. Panics are infrastructure failures,
// not data: layers that fold point errors into reports (the sweep
// executor) treat them as fatal instead.
var ErrPanic = errors.New("pipeline: panic")

// PanicError carries a recovered stage or map-item panic as a typed
// error, so a panicking computation fails its run instead of killing
// the worker goroutine (and with it the whole process).
type PanicError struct {
	// Stage names the panicking stage ("" for map items).
	Stage string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack capture.
	Stack []byte
}

func (e *PanicError) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("pipeline: panic in stage %q: %v", e.Stage, e.Value)
	}
	return fmt.Sprintf("pipeline: panic: %v", e.Value)
}

// Unwrap exposes ErrPanic to errors.Is.
func (e *PanicError) Unwrap() error { return ErrPanic }

// ErrStageTimeout is the sentinel wrapped by stage-watchdog
// expirations; match with errors.Is. Deliberately distinct from
// context.DeadlineExceeded: a stage that outlives its watchdog is an
// infrastructure failure of that stage, not an expiry of the caller's
// own deadline.
var ErrStageTimeout = errors.New("pipeline: stage timeout")

// StageTimeoutError reports a stage cancelled by the per-stage
// watchdog while the surrounding run was still live.
type StageTimeoutError struct {
	// Stage names the stage the watchdog killed.
	Stage string
	// Timeout is the watchdog deadline it exceeded.
	Timeout time.Duration
	// Cause is the error the stage returned when cancelled.
	Cause error
}

func (e *StageTimeoutError) Error() string {
	return fmt.Sprintf("pipeline: stage %q exceeded its %v watchdog: %v", e.Stage, e.Timeout, e.Cause)
}

// Unwrap exposes ErrStageTimeout to errors.Is. The cause is carried
// for the message only — exposing its context error would make a
// watchdog kill indistinguishable from the caller's own deadline.
func (e *StageTimeoutError) Unwrap() error { return ErrStageTimeout }

// recovering runs fn converting a panic into a *PanicError, so pool
// workers always hand back a result.
func recovering(stage string, fn func() (any, error)) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Stage: stage, Value: p, Stack: debug.Stack()}
		}
	}()
	return fn()
}
