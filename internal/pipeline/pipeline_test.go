package pipeline

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderAndParallelism(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 32} {
		out, err := Map(workers, items, func(i, v int) (int, error) { return v * v, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapErrorLowestIndex(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := Map(4, items, func(i, v int) (int, error) {
		if v%2 == 1 {
			return 0, fmt.Errorf("odd %d", v)
		}
		return v, nil
	})
	if err == nil || !strings.Contains(err.Error(), "item 1") {
		t.Fatalf("want error from item 1, got %v", err)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(8, nil, func(i, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v %v", out, err)
	}
}

func TestPoolBounds(t *testing.T) {
	p := NewPool(3)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		p.Go(func() {
			n := cur.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	p.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("pool ran %d tasks concurrently, bound is 3", got)
	}
}

func TestCacheMemoizesAndSingleflights(t *testing.T) {
	c := NewCache()
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do("k", func() (any, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond)
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Do: %v %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("function ran %d times, want 1 (singleflight)", n)
	}
	_, cached, _ := c.Do("k", func() (any, error) { return 0, nil })
	if !cached {
		t.Fatal("second Do must be served from cache")
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := NewCache()
	calls := 0
	fail := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, cached, err := c.Do("k", func() (any, error) { calls++; return nil, fail })
		if !errors.Is(err, fail) || cached {
			t.Fatalf("attempt %d: cached=%v err=%v", i, cached, err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed computation ran %d times, want 2 (errors not cached)", calls)
	}
}

// TestCacheConcurrentFailureRetry covers the waiter-of-a-failed-entry
// path: goroutines that wait on an in-flight computation that errors must
// retry cleanly (no unlock-of-unlocked-mutex, no lost error).
func TestCacheConcurrentFailureRetry(t *testing.T) {
	c := NewCache()
	fail := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.Do("k", func() (any, error) {
			close(started)
			<-release
			return nil, fail
		})
	}()
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Waiters observe the owner's failure, evict the dead
			// entry and recompute (also failing, here).
			_, cached, err := c.Do("k", func() (any, error) { return nil, fail })
			if err == nil || cached {
				t.Errorf("waiter got cached=%v err=%v, want fresh failure", cached, err)
			}
		}()
	}
	close(release)
	wg.Wait()
	// The key must be computable again once the failures drain.
	v, cached, err := c.Do("k", func() (any, error) { return 7, nil })
	if err != nil || cached || v.(int) != 7 {
		t.Fatalf("post-failure Do: v=%v cached=%v err=%v", v, cached, err)
	}
}

func TestKeyStableAndDistinct(t *testing.T) {
	if Key("a", 1, 2.5) != Key("a", 1, 2.5) {
		t.Fatal("Key must be deterministic")
	}
	if Key("a", "b") == Key("ab") {
		t.Fatal("Key must separate parts")
	}
	if Key(1) == Key(int64(1)) {
		t.Fatal("Key must distinguish types")
	}
}

func TestGraphTopologyAndCaching(t *testing.T) {
	cache := NewCache()
	var order []string
	var mu sync.Mutex
	mark := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	build := func() *Graph {
		g := NewGraph(cache, 4)
		g.AddFunc("synth", Key("synth"), nil, func(map[string]any) (any, error) {
			mark("synth")
			return 10, nil
		})
		g.AddFunc("place", Key("place"), []string{"synth"}, func(d map[string]any) (any, error) {
			mark("place")
			return d["synth"].(int) * 2, nil
		})
		g.AddFunc("sim", Key("sim"), []string{"synth"}, func(d map[string]any) (any, error) {
			mark("sim")
			return d["synth"].(int) + 5, nil
		})
		g.AddFunc("gds", Key("gds"), []string{"place", "sim"}, func(d map[string]any) (any, error) {
			mark("gds")
			return d["place"].(int) + d["sim"].(int), nil
		})
		return g
	}
	res, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := res["gds"].Value.(int); v != 35 {
		t.Fatalf("gds = %d, want 35", v)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["synth"] > pos["place"] || pos["synth"] > pos["sim"] || pos["gds"] < pos["place"] || pos["gds"] < pos["sim"] {
		t.Fatalf("topological order violated: %v", order)
	}

	// Second run against the same cache: nothing recomputes.
	order = nil
	res2, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 0 {
		t.Fatalf("cached rerun recomputed stages: %v", order)
	}
	for _, name := range []string{"synth", "place", "sim", "gds"} {
		if !res2[name].Cached {
			t.Fatalf("stage %s not served from cache", name)
		}
	}
}

func TestGraphFailurePropagation(t *testing.T) {
	g := NewGraph(nil, 2)
	ran := map[string]bool{}
	var mu sync.Mutex
	mark := func(n string) {
		mu.Lock()
		ran[n] = true
		mu.Unlock()
	}
	g.AddFunc("a", "", nil, func(map[string]any) (any, error) { mark("a"); return 1, nil })
	g.AddFunc("b", "", []string{"a"}, func(map[string]any) (any, error) {
		mark("b")
		return nil, errors.New("b exploded")
	})
	g.AddFunc("c", "", []string{"b"}, func(map[string]any) (any, error) { mark("c"); return 2, nil })
	g.AddFunc("d", "", []string{"c"}, func(map[string]any) (any, error) { mark("d"); return 3, nil })
	g.AddFunc("e", "", []string{"a"}, func(map[string]any) (any, error) { mark("e"); return 4, nil })
	res, err := g.Run()
	if err == nil || !strings.Contains(err.Error(), `stage "b"`) {
		t.Fatalf("want error attributed to stage b, got %v", err)
	}
	if ran["c"] || ran["d"] {
		t.Fatal("dependents of a failed stage must not run")
	}
	if !ran["e"] {
		t.Fatal("independent branch must still run")
	}
	if res["d"].Err == nil {
		t.Fatal("transitive dependent must carry a skip error")
	}
}

func TestTraceRecords(t *testing.T) {
	tr := &Trace{}
	g := NewGraph(nil, 2).Trace(tr)
	g.AddFunc("one", "", nil, func(map[string]any) (any, error) { return 1, nil })
	g.AddFunc("two", "", []string{"one"}, func(map[string]any) (any, error) { return 2, nil })
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Reports()); got != 2 {
		t.Fatalf("trace has %d reports, want 2", got)
	}
	if s := tr.String(); !strings.Contains(s, "one") || !strings.Contains(s, "two") {
		t.Fatalf("trace render missing stages:\n%s", s)
	}
}

// TestGraphManyStagesNoDeadlock covers the scheduler-blocked-on-full-pool
// case: far more ready stages than workers.
func TestGraphManyStagesNoDeadlock(t *testing.T) {
	g := NewGraph(nil, 2)
	for i := 0; i < 64; i++ {
		g.AddFunc(fmt.Sprintf("s%d", i), "", nil, func(map[string]any) (any, error) {
			time.Sleep(time.Millisecond)
			return nil, nil
		})
	}
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
}
