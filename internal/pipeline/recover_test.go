package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestGraphRecoversStagePanic(t *testing.T) {
	g := NewGraph(nil, 2)
	g.AddFunc("boom", "", nil, func(map[string]any) (any, error) { panic("kaboom") })
	g.AddFunc("after", "", []string{"boom"}, func(map[string]any) (any, error) { return 1, nil })
	results, err := g.Run()
	if err == nil || !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Stage != "boom" || pe.Value != "kaboom" {
		t.Fatalf("panic error = %+v", pe)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatal("panic error carries no stack")
	}
	if results["after"].Err == nil {
		t.Fatal("dependent of a panicking stage ran")
	}
}

func TestCachedStagePanicSettlesWaiters(t *testing.T) {
	cache := NewCache()
	release := make(chan struct{})
	g := NewGraph(cache, 1)
	g.AddFunc("boom", "shared-key", nil, func(map[string]any) (any, error) {
		<-release
		panic("cached kaboom")
	})

	// A concurrent waiter on the same key must settle with the panic
	// error, not hang on an orphaned in-flight entry.
	waiter := make(chan error, 1)
	go func() {
		_, _, err := cache.DoCtx(context.Background(), "shared-key", func() (any, error) {
			return nil, errors.New("waiter recomputed") // retry path after the panic
		})
		waiter <- err
	}()
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	if _, err := g.Run(); !errors.Is(err, ErrPanic) {
		t.Fatalf("graph err = %v", err)
	}
	select {
	case err := <-waiter:
		// Either outcome is sound: the waiter observed the settled
		// panic and retried (its own fn error) or arrived after
		// eviction and computed fresh.
		if err == nil {
			t.Fatal("waiter cached a panicked computation")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter hung on a panicked in-flight entry")
	}
}

func TestMapRecoversItemPanic(t *testing.T) {
	_, err := Map(4, []int{0, 1, 2, 3}, func(i int, v int) (int, error) {
		if v == 2 {
			panic(v)
		}
		return v, nil
	})
	if err == nil || !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	// Inline single-worker path too.
	_, err = Map(1, []int{0}, func(int, int) (int, error) { panic("inline") })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("inline err = %v", err)
	}
}

func TestStageWatchdog(t *testing.T) {
	g := NewGraph(nil, 2).StageTimeout(30 * time.Millisecond)
	g.Add(Stage{Name: "hang", RunCtx: func(ctx context.Context, _ map[string]any) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	g.AddFunc("fast", "", nil, func(map[string]any) (any, error) { return "ok", nil })
	results, err := g.Run()
	if err == nil || !errors.Is(err, ErrStageTimeout) {
		t.Fatalf("err = %v, want ErrStageTimeout", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("watchdog kill leaked context.DeadlineExceeded")
	}
	var ste *StageTimeoutError
	if !errors.As(err, &ste) || ste.Stage != "hang" {
		t.Fatalf("timeout error = %+v", ste)
	}
	if results["fast"].Err != nil || results["fast"].Value != "ok" {
		t.Fatalf("unrelated stage affected: %+v", results["fast"])
	}
}

func TestRunCancellationIsNotAWatchdogKill(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGraph(nil, 1).StageTimeout(time.Minute)
	g.Add(Stage{Name: "hang", RunCtx: func(sctx context.Context, _ map[string]any) (any, error) {
		<-sctx.Done()
		return nil, sctx.Err()
	}})
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := g.RunCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if errors.Is(err, ErrStageTimeout) {
		t.Fatal("run cancellation misreported as a watchdog kill")
	}
}

func TestStageWithoutTimeoutGetsRunContext(t *testing.T) {
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	g := NewGraph(nil, 1)
	g.Add(Stage{Name: "probe", RunCtx: func(sctx context.Context, _ map[string]any) (any, error) {
		return sctx.Value(key{}), nil
	}})
	results, err := g.RunCtx(ctx)
	if err != nil || results["probe"].Value != "v" {
		t.Fatalf("RunCtx stage did not see the run context: %v %v", results["probe"].Value, err)
	}
}
