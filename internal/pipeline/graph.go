package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Stage is one node of a flow graph: a named computation with declared
// dependencies. Its function receives the dependency results (keyed by
// stage name) and returns the stage value. A stage with a non-empty Key
// is memoized in the graph's cache under that key, so repeated runs of
// graphs that share a cache skip the work entirely.
type Stage struct {
	Name string
	Deps []string
	Key  string // content key for memoization; "" disables caching
	// Codec, when set on a memoized stage, declares the result
	// serializable: the graph consults the cache store's persistent tier
	// before running the stage and writes the computed result through to
	// it. Stages without a codec memoize in memory only.
	Codec Codec
	Run   func(deps map[string]any) (any, error)
	// RunCtx, when set, replaces Run and receives the stage context —
	// the run context bounded by the graph's per-stage watchdog (see
	// StageTimeout). Stages that can block (solvers, I/O, injected
	// hangs) should use this form so the watchdog can actually reclaim
	// them.
	RunCtx func(ctx context.Context, deps map[string]any) (any, error)
}

// Result is the outcome of one stage of a graph run.
type Result struct {
	Stage  string
	Value  any
	Err    error
	Dur    time.Duration
	Cached bool
}

// Graph is a DAG of stages executed with bounded parallelism: every stage
// starts as soon as its dependencies are done and a worker is free.
type Graph struct {
	stages       []*Stage
	byName       map[string]*Stage
	cache        *Cache
	trace        *Trace
	workers      int
	stageTimeout time.Duration
}

// NewGraph builds an empty graph. cache may be nil (no memoization across
// runs); workers <= 0 selects DefaultWorkers.
func NewGraph(cache *Cache, workers int) *Graph {
	return &Graph{byName: map[string]*Stage{}, cache: cache, workers: workers}
}

// Trace attaches a trace that receives one StageReport per executed stage.
func (g *Graph) Trace(t *Trace) *Graph { g.trace = t; return g }

// StageTimeout arms a per-stage watchdog: each stage runs under a
// context that expires d after the stage starts. A stage killed by its
// watchdog (rather than by the run's own context) fails with a
// *StageTimeoutError, which skips its dependents like any stage
// failure. 0 (the default) disables the watchdog.
func (g *Graph) StageTimeout(d time.Duration) *Graph { g.stageTimeout = d; return g }

// Add appends a stage; name must be unique and every dependency must have
// been added first (any topological construction satisfies this, and it
// makes cycles impossible by construction).
func (g *Graph) Add(s Stage) *Graph {
	if _, dup := g.byName[s.Name]; dup {
		panic(fmt.Sprintf("pipeline: duplicate stage %q", s.Name))
	}
	for _, d := range s.Deps {
		if _, ok := g.byName[d]; !ok {
			panic(fmt.Sprintf("pipeline: stage %q depends on unknown stage %q", s.Name, d))
		}
	}
	st := s
	g.stages = append(g.stages, &st)
	g.byName[st.Name] = &st
	return g
}

// AddFunc is sugar for Add with positional arguments.
func (g *Graph) AddFunc(name, key string, deps []string, run func(deps map[string]any) (any, error)) *Graph {
	return g.Add(Stage{Name: name, Deps: deps, Key: key, Run: run})
}

// Run executes the graph and returns every stage's result keyed by name.
// A failed stage marks its transitive dependents as skipped (they never
// run); the returned error is from the earliest failing stage in
// insertion order, which is always a genuine failure rather than a skip.
func (g *Graph) Run() (map[string]Result, error) {
	return g.RunCtx(context.Background())
}

// RunCtx is Run with cooperative cancellation: a stage whose dependencies
// settle after ctx is cancelled never starts (it fails with ctx.Err() and
// skips its dependents), and memoized stages consult the cache through
// DoCtx so waiters do not outlive the context. Stages already in flight
// run to completion — their successful results stay cached, so a rerun
// after cancellation resumes where the cancelled run left off. When
// cancellation is the earliest failure, errors.Is(err, ctx.Err()) holds
// on the returned error.
func (g *Graph) RunCtx(ctx context.Context) (map[string]Result, error) {
	n := len(g.stages)
	results := make(map[string]Result, n)
	if n == 0 {
		return results, nil
	}

	indeg := make(map[string]int, n)
	dependents := make(map[string][]string, n)
	for _, s := range g.stages {
		indeg[s.Name] = len(s.Deps)
		for _, d := range s.Deps {
			dependents[d] = append(dependents[d], s.Name)
		}
	}

	pool := NewPool(g.workers)
	// Buffered to the stage count so finished workers never block handing
	// back a result while the scheduler itself is blocked on a full pool.
	done := make(chan Result, n)
	running := 0
	failed := map[string]bool{}

	start := func(s *Stage) {
		running++
		deps := make(map[string]any, len(s.Deps))
		for _, d := range s.Deps {
			deps[d] = results[d].Value
		}
		pool.Go(func() {
			t0 := time.Now()
			var value any
			var err error
			cached := false
			stageCtx := ctx
			cancelStage := context.CancelFunc(func() {})
			if g.stageTimeout > 0 {
				stageCtx, cancelStage = context.WithTimeout(ctx, g.stageTimeout)
			}
			// Panic recovery lives inside the function handed to the
			// cache, so a panicking stage settles its singleflight entry
			// with an error instead of stranding every waiter.
			run := func() (any, error) {
				return recovering(s.Name, func() (any, error) {
					if s.RunCtx != nil {
						return s.RunCtx(stageCtx, deps)
					}
					return s.Run(deps)
				})
			}
			if err = ctx.Err(); err != nil {
				// Cancelled before the worker picked the stage up: fail
				// it without running (or touching the cache).
			} else if g.cache != nil && s.Key != "" {
				value, cached, err = g.cache.DoCodecCtx(stageCtx, s.Key, s.Codec, run)
			} else {
				value, err = run()
			}
			cancelStage()
			if err != nil && stageCtx != ctx &&
				errors.Is(stageCtx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
				// The stage watchdog fired while the run itself was still
				// live: report it as a typed stage failure, not as the
				// caller's deadline.
				err = &StageTimeoutError{Stage: s.Name, Timeout: g.stageTimeout, Cause: err}
			}
			r := Result{Stage: s.Name, Value: value, Err: err, Dur: time.Since(t0), Cached: cached}
			g.trace.Add(StageReport{Stage: s.Name, Dur: r.Dur, Cached: r.Cached, Err: r.Err})
			done <- r
		})
	}

	// resolve marks `name` settled and starts (or skips) any dependent
	// whose dependencies are now all settled.
	var resolve func(name string)
	resolve = func(name string) {
		for _, depName := range dependents[name] {
			indeg[depName]--
			if indeg[depName] != 0 {
				continue
			}
			s := g.byName[depName]
			blocked := ""
			for _, d := range s.Deps {
				if failed[d] {
					blocked = d
					break
				}
			}
			if blocked == "" {
				start(s)
				continue
			}
			failed[depName] = true
			results[depName] = Result{
				Stage: depName,
				Err:   fmt.Errorf("skipped: dependency %q failed", blocked),
			}
			resolve(depName)
		}
	}

	for _, s := range g.stages {
		if indeg[s.Name] == 0 {
			start(s)
		}
	}
	for running > 0 {
		r := <-done
		running--
		results[r.Stage] = r
		if r.Err != nil {
			failed[r.Stage] = true
		}
		resolve(r.Stage)
	}
	pool.Wait()

	var errNames []string
	for name, r := range results {
		if r.Err != nil {
			errNames = append(errNames, name)
		}
	}
	if len(errNames) > 0 {
		sort.Slice(errNames, func(i, j int) bool {
			return g.order(errNames[i]) < g.order(errNames[j])
		})
		first := errNames[0]
		return results, fmt.Errorf("pipeline: stage %q: %w", first, results[first].Err)
	}
	return results, nil
}

// order returns the insertion index of a stage name.
func (g *Graph) order(name string) int {
	for i, s := range g.stages {
		if s.Name == name {
			return i
		}
	}
	return len(g.stages)
}
