package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoryLRUEvictsLeastRecentlyUsed(t *testing.T) {
	m := NewMemory(2)
	m.Save("a", nil, 1)
	m.Save("b", nil, 2)
	// Touch a so b becomes the least recently used entry; a FIFO bound
	// (the old engine) would evict a here instead.
	if _, ok := m.Probe("a"); !ok {
		t.Fatal("a must be resident")
	}
	m.Save("c", nil, 3)
	if _, ok := m.Probe("b"); ok {
		t.Fatal("b was recently-unused and must be evicted")
	}
	if _, ok := m.Probe("a"); !ok {
		t.Fatal("recently-used a must survive")
	}
	if _, ok := m.Probe("c"); !ok {
		t.Fatal("newest c must survive")
	}
	st := m.Stats().Mem
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction over 2 resident entries", st)
	}
}

func TestMemoryCounters(t *testing.T) {
	m := NewMemory(0)
	m.Probe("missing")
	m.Save("k", nil, 7)
	m.Probe("k")
	st := m.Stats().Mem
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if err := m.Purge(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatal("purge must empty the tier")
	}
}

func TestJSONCodecRoundTrip(t *testing.T) {
	c := JSONCodec[map[string]float64]("test/map@v1")
	in := map[string]float64{"n1": 1.25e-18, "n2": 0.1 + 0.2}
	blob, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(map[string]float64)
	for k, v := range in {
		if got[k] != v {
			t.Fatalf("%s: %v != %v (floats must round-trip exactly)", k, got[k], v)
		}
	}
	if _, err := c.Encode("wrong type"); err == nil {
		t.Fatal("encoding a mistyped value must fail")
	}
}

func TestRawCodecAndRegistry(t *testing.T) {
	c := RegisterCodec(RawCodec("test/raw@v1"))
	blob, err := c.Encode([]byte{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Decode(blob)
	if err != nil || len(v.([]byte)) != 3 {
		t.Fatalf("raw round trip = (%v, %v)", v, err)
	}
	if got, ok := LookupCodec("test/raw@v1"); !ok || got.Name() != "test/raw@v1" {
		t.Fatal("registered codec must be discoverable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	RegisterCodec(RawCodec("test/raw@v1"))
}

// memBlob is an in-memory BlobStore double standing in for the disk tier.
type memBlob struct {
	mu      sync.Mutex
	entries map[string]memBlobEntry
	hits    atomic.Int64
	misses  atomic.Int64
	puts    atomic.Int64
}

type memBlobEntry struct {
	codec string
	data  []byte
}

func newMemBlob() *memBlob { return &memBlob{entries: map[string]memBlobEntry{}} }

func (b *memBlob) Get(key string) (string, []byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[key]
	if !ok {
		b.misses.Add(1)
		return "", nil, false
	}
	b.hits.Add(1)
	return e.codec, e.data, true
}

func (b *memBlob) Put(key, codec string, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries[key] = memBlobEntry{codec: codec, data: data}
	b.puts.Add(1)
}

func (b *memBlob) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

func (b *memBlob) Stats() TierStats {
	return TierStats{Entries: int64(b.Len()), Hits: b.hits.Load(), Misses: b.misses.Load(), Puts: b.puts.Load()}
}

func (b *memBlob) Purge() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries = map[string]memBlobEntry{}
	return nil
}

func TestTieredWriteThroughAndWarmStart(t *testing.T) {
	disk := newMemBlob()
	codec := JSONCodec[int]("test/int-tiered@v1")
	cacheA := NewCacheStore(NewTiered(NewMemory(0), disk))

	calls := 0
	v, cached, err := cacheA.DoCodecCtx(t.Context(), "k", codec, func() (any, error) { calls++; return 41, nil })
	if err != nil || cached || v.(int) != 41 {
		t.Fatalf("cold = (%v, %v, %v)", v, cached, err)
	}
	if disk.Len() != 1 {
		t.Fatal("computed value must write through to the blob tier")
	}

	// Same store, fresh memory tier and cache: a new process. The value
	// must come from the blob tier without running fn.
	cacheB := NewCacheStore(NewTiered(NewMemory(0), disk))
	v, cached, err = cacheB.DoCodecCtx(t.Context(), "k", codec, func() (any, error) { calls++; return -1, nil })
	if err != nil || !cached || v.(int) != 41 {
		t.Fatalf("warm start = (%v, %v, %v), want cached 41", v, cached, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	// The disk hit was promoted into B's memory tier.
	if cacheB.Len() != 1 {
		t.Fatalf("promotion left %d memory entries, want 1", cacheB.Len())
	}
	st := cacheB.Stats()
	if st.Disk == nil || st.Disk.Hits != 1 {
		t.Fatalf("stats = %+v, want one disk hit", st)
	}
}

func TestTieredCodecMismatchRecomputes(t *testing.T) {
	disk := newMemBlob()
	disk.Put("k", "other/format@v9", []byte(`"whatever"`))
	cache := NewCacheStore(NewTiered(NewMemory(0), disk))
	codec := JSONCodec[int]("test/int-mismatch@v1")
	v, cached, err := cache.DoCodecCtx(t.Context(), "k", codec, func() (any, error) { return 7, nil })
	if err != nil || cached || v.(int) != 7 {
		t.Fatalf("mismatched entry must recompute: (%v, %v, %v)", v, cached, err)
	}
	if st := cache.Stats(); st.Disk == nil || st.Disk.Errors != 1 {
		t.Fatalf("codec mismatch must count an error: %+v", st.Disk)
	}
	// The recompute overwrote the foreign entry with this codec's bytes.
	if codecName, _, ok := disk.Get("k"); !ok || codecName != codec.Name() {
		t.Fatalf("entry after recompute = (%q, %v)", codecName, ok)
	}
}

func TestTieredUndecodableEntryRecomputes(t *testing.T) {
	disk := newMemBlob()
	codec := JSONCodec[int]("test/int-undecodable@v1")
	disk.Put("k", codec.Name(), []byte(`not json`))
	cache := NewCacheStore(NewTiered(NewMemory(0), disk))
	v, cached, err := cache.DoCodecCtx(t.Context(), "k", codec, func() (any, error) { return 9, nil })
	if err != nil || cached || v.(int) != 9 {
		t.Fatalf("undecodable entry must recompute: (%v, %v, %v)", v, cached, err)
	}
}

func TestTieredNilCodecStaysMemoryOnly(t *testing.T) {
	disk := newMemBlob()
	cache := NewCacheStore(NewTiered(NewMemory(0), disk))
	if _, _, err := cache.Do("k", func() (any, error) { return struct{ X chan int }{}, nil }); err != nil {
		t.Fatal(err)
	}
	if disk.Len() != 0 {
		t.Fatal("codec-less results must not reach the blob tier")
	}
	if _, cached, _ := cache.Do("k", func() (any, error) { return nil, errors.New("must not run") }); !cached {
		t.Fatal("codec-less result must still memoize in memory")
	}
}

// TestTieredSingleflightOverDisk: concurrent misses of one key cost one
// blob-tier read and zero recomputations.
func TestTieredSingleflightOverDisk(t *testing.T) {
	disk := newMemBlob()
	codec := JSONCodec[int]("test/int-singleflight@v1")
	blob, _ := codec.Encode(123)
	disk.Put("k", codec.Name(), blob)
	cache := NewCacheStore(NewTiered(NewMemory(0), disk))

	var wg sync.WaitGroup
	var calls atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, cached, err := cache.DoCodecCtx(t.Context(), "k", codec, func() (any, error) {
				calls.Add(1)
				return -1, nil
			})
			if err != nil || !cached || v.(int) != 123 {
				t.Errorf("warm read = (%v, %v, %v)", v, cached, err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 0 {
		t.Fatalf("fn ran %d times against a warm disk entry", calls.Load())
	}
	if disk.hits.Load() != 1 {
		t.Fatalf("disk served %d reads, want 1 (singleflight)", disk.hits.Load())
	}
}

func TestCachePurgeDropsAllTiers(t *testing.T) {
	disk := newMemBlob()
	codec := JSONCodec[int]("test/int-purge@v1")
	cache := NewCacheStore(NewTiered(NewMemory(0), disk))
	if _, _, err := cache.DoCodecCtx(t.Context(), "k", codec, func() (any, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	if err := cache.Purge(); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 || disk.Len() != 0 {
		t.Fatalf("purge left %d mem / %d disk entries", cache.Len(), disk.Len())
	}
	calls := 0
	if _, cached, _ := cache.DoCodecCtx(t.Context(), "k", codec, func() (any, error) { calls++; return 5, nil }); cached || calls != 1 {
		t.Fatal("purged key must recompute")
	}
}

// TestGraphStageCodecPersists: a graph whose stages declare codecs
// round-trips through the blob tier across cache instances, marking the
// warm run's stages cached.
func TestGraphStageCodecPersists(t *testing.T) {
	disk := newMemBlob()
	codec := JSONCodec[int]("test/int-graph@v1")
	runs := 0
	build := func(cache *Cache) *Graph {
		g := NewGraph(cache, 2)
		g.Add(Stage{Name: "a", Key: Key("graph-codec", "a"), Codec: codec, Run: func(map[string]any) (any, error) {
			runs++
			return 10, nil
		}})
		g.Add(Stage{Name: "b", Key: Key("graph-codec", "b"), Codec: codec, Deps: []string{"a"}, Run: func(d map[string]any) (any, error) {
			runs++
			return d["a"].(int) * 3, nil
		}})
		return g
	}
	cold, err := build(NewCacheStore(NewTiered(NewMemory(0), disk))).Run()
	if err != nil {
		t.Fatal(err)
	}
	if cold["b"].Value.(int) != 30 || runs != 2 {
		t.Fatalf("cold run: value %v, %d runs", cold["b"].Value, runs)
	}
	warm, err := build(NewCacheStore(NewTiered(NewMemory(0), disk))).Run()
	if err != nil {
		t.Fatal(err)
	}
	if warm["b"].Value.(int) != 30 || runs != 2 {
		t.Fatalf("warm run recomputed: value %v, %d runs", warm["b"].Value, runs)
	}
	for _, name := range []string{"a", "b"} {
		if !warm[name].Cached {
			t.Fatalf("warm stage %s not marked cached", name)
		}
	}
}

func TestCacheLenCountsInFlight(t *testing.T) {
	cache := NewCache()
	release := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cache.Do("k", func() (any, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	if cache.Len() != 1 {
		t.Fatalf("in-flight Len = %d, want 1", cache.Len())
	}
	close(release)
	<-done
	if cache.Len() != 1 {
		t.Fatalf("settled Len = %d, want 1", cache.Len())
	}
}

func TestKeyFansOutDeterministically(t *testing.T) {
	// Guard the disk layout assumption: keys are hex and stable.
	k := Key("part", 1, 2.5)
	if k != Key("part", 1, 2.5) || len(k) != 24 {
		t.Fatalf("Key shape changed: %q", k)
	}
	if fmt.Sprintf("%x", k) == "" {
		t.Fatal("unreachable")
	}
}
