package pipeline

import "sync/atomic"

// Progress is a set of monotonic counters a long-running batch updates as
// it executes, readable concurrently by pollers (the sweep daemon surface
// reports them while a sweep is in flight). All methods are safe for
// concurrent use and nil-safe, mirroring Trace: a nil *Progress records
// nothing.
type Progress struct {
	total  atomic.Int64
	done   atomic.Int64
	failed atomic.Int64
	cached atomic.Int64 // cached sub-stages observed so far
	stages atomic.Int64 // total sub-stages observed so far

	// parent, when set, receives every update too: a server chains each
	// batch's Progress to one process-wide aggregate (its /metrics
	// counters) without the batches knowing. Set once via Chain before
	// any updates; aggregation composes transitively.
	parent *Progress
}

// Chain makes parent receive every update recorded on p (totals
// accumulate via AddTotal; items forward one-to-one) and returns p.
// Call before handing p to a batch; not safe to call concurrently with
// updates.
func (p *Progress) Chain(parent *Progress) *Progress {
	if p != nil {
		p.parent = parent
	}
	return p
}

// AddTotal grows the expected-item counter: aggregate counters sum many
// batches' totals instead of overwriting each other's SetTotal.
func (p *Progress) AddTotal(n int) {
	if p == nil {
		return
	}
	p.total.Add(int64(n))
	p.parent.AddTotal(n)
}

// ProgressSnapshot is one consistent-enough read of the counters (each
// counter is individually atomic; the set is read without a global lock).
type ProgressSnapshot struct {
	Total        int64 `json:"total"`
	Done         int64 `json:"done"`
	Failed       int64 `json:"failed,omitempty"`
	CachedStages int64 `json:"cached_stages,omitempty"`
	TotalStages  int64 `json:"total_stages,omitempty"`
}

// SetTotal records how many items the batch will process. A chained
// parent sees the total as an increment, so per-batch SetTotals sum
// into the aggregate.
func (p *Progress) SetTotal(n int) {
	if p == nil {
		return
	}
	p.total.Store(int64(n))
	p.parent.AddTotal(n)
}

// ItemDone records one completed item (failed marks it as an error) plus
// the cached/total sub-stage counts it observed.
func (p *Progress) ItemDone(failed bool, cachedStages, totalStages int) {
	if p == nil {
		return
	}
	p.done.Add(1)
	if failed {
		p.failed.Add(1)
	}
	p.cached.Add(int64(cachedStages))
	p.stages.Add(int64(totalStages))
	p.parent.ItemDone(failed, cachedStages, totalStages)
}

// Snapshot reads the counters.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		Total:        p.total.Load(),
		Done:         p.done.Load(),
		Failed:       p.failed.Load(),
		CachedStages: p.cached.Load(),
		TotalStages:  p.stages.Load(),
	}
}
