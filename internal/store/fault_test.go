package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cnfetdk/internal/fault"
)

// TestTornWriteUnreadable injects a torn write mid-Put and proves the
// truncated entry is detected, read as a miss, and replaced by the
// recompute's clean Put.
func TestTornWriteUnreadable(t *testing.T) {
	for _, after := range []int64{0, 3, 18, 40} {
		t.Run(fmt.Sprintf("after=%d", after), func(t *testing.T) {
			inj := fault.MustNew(fault.Plan{Rules: []fault.Rule{
				{Point: "store.put.write", Action: fault.ActionTorn, After: after, Nth: 1},
			}})
			d, err := Open(t.TempDir(), WithInjector(inj))
			if err != nil {
				t.Fatal(err)
			}
			d.Put("k", "codec", []byte("payload-bytes"))
			res := d.Verify()
			if res.Entries != 1 || res.Corrupt != 1 || res.Misfiled != 0 {
				t.Fatalf("after torn put: %+v", res)
			}
			if _, _, ok := d.Get("k"); ok {
				t.Fatal("torn entry was readable")
			}
			// The recompute overwrites it cleanly (rule consumed).
			d.Put("k", "codec", []byte("payload-bytes"))
			if codec, payload, ok := d.Get("k"); !ok || codec != "codec" || string(payload) != "payload-bytes" {
				t.Fatalf("recovery Put not readable: %q %q %v", codec, payload, ok)
			}
			if res := d.Verify(); res.Corrupt != 0 || res.Misfiled != 0 {
				t.Fatalf("after recovery: %+v", res)
			}
		})
	}
}

// TestCrashBeforeRename injects a writer death between fsync and
// rename: no entry appears, a temporary is left behind, and the stale
// temp reaper collects it.
func TestCrashBeforeRename(t *testing.T) {
	inj := fault.MustNew(fault.Plan{Rules: []fault.Rule{
		{Point: "store.put.rename", Action: fault.ActionCrash, Nth: 1},
	}})
	dir := t.TempDir()
	d, err := Open(dir, WithInjector(inj))
	if err != nil {
		t.Fatal(err)
	}
	d.Put("k", "codec", []byte("payload"))
	res := d.Verify()
	if res.Entries != 0 || res.Temps != 1 {
		t.Fatalf("after crash-before-rename: %+v", res)
	}
	if _, _, ok := d.Get("k"); ok {
		t.Fatal("entry visible despite crash before rename")
	}
	// Age the temp past tmpMaxAge and reopen: the reaper removes it.
	filepath.WalkDir(d.Dir(), func(path string, de os.DirEntry, err error) error {
		if err == nil && !de.IsDir() && strings.HasPrefix(de.Name(), tmpPrefix) {
			old := time.Now().Add(-2 * tmpMaxAge)
			os.Chtimes(path, old, old)
		}
		return nil
	})
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res := d2.Verify(); res.Temps != 0 {
		t.Fatalf("stale temp survived reopen: %+v", res)
	}
}

// TestInjectedIOErrorsAreMisses covers the error-action points: every
// injected failure surfaces as a miss/no-op, never a wrong answer.
func TestInjectedIOErrorsAreMisses(t *testing.T) {
	for _, point := range []string{"store.get.read", "store.put.tempfile", "store.put.write", "store.put.sync", "store.put.rename"} {
		t.Run(point, func(t *testing.T) {
			inj := fault.MustNew(fault.Plan{Rules: []fault.Rule{{Point: point, Nth: 1}}})
			d, err := Open(t.TempDir(), WithInjector(inj))
			if err != nil {
				t.Fatal(err)
			}
			d.Put("k", "codec", []byte("payload"))
			_, _, _ = d.Get("k")
			// Second round passes (rule consumed): the store recovers.
			d.Put("k", "codec", []byte("payload"))
			if _, _, ok := d.Get("k"); !ok {
				t.Fatalf("store did not recover after injected %s", point)
			}
			if errs := d.Stats().Errors; errs == 0 {
				t.Fatalf("injected %s did not count an error", point)
			}
			if res := d.Verify(); res.Misfiled != 0 || res.Corrupt != 0 {
				t.Fatalf("after %s: %+v", point, res)
			}
		})
	}
}

// TestDegradeBreaker trips the compute-through breaker with a burst of
// injected read failures and checks the store bypasses the disk during
// the cooldown, then recovers after it.
func TestDegradeBreaker(t *testing.T) {
	inj := fault.MustNew(fault.Plan{Rules: []fault.Rule{
		{Point: "store.get.read", Count: 6},
	}})
	d, err := Open(t.TempDir(), WithInjector(inj), WithDegrade(6, 80*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	d.Put("k", "codec", []byte("payload"))
	for i := 0; i < 6; i++ {
		if _, _, ok := d.Get("k"); ok {
			t.Fatalf("get %d succeeded through injected failure", i)
		}
	}
	if !d.Degraded() || d.Degradations() != 1 {
		t.Fatalf("breaker not tripped: degraded=%v trips=%d", d.Degraded(), d.Degradations())
	}
	// While degraded: gets miss and puts no-op without touching disk —
	// the injector sees no further calls.
	before := len(inj.Events())
	if _, _, ok := d.Get("k"); ok {
		t.Fatal("degraded get hit")
	}
	d.Put("k2", "codec", []byte("x"))
	if len(inj.Events()) != before {
		t.Fatal("degraded operations still reached the disk path")
	}
	time.Sleep(100 * time.Millisecond)
	if d.Degraded() {
		t.Fatal("breaker did not close after cooldown")
	}
	if _, _, ok := d.Get("k"); !ok {
		t.Fatal("store did not serve after breaker closed")
	}
}

// TestBreakerDisabled pins WithDegrade(0, ...) semantics: errors never
// bypass the disk.
func TestBreakerDisabled(t *testing.T) {
	inj := fault.MustNew(fault.Plan{Rules: []fault.Rule{{Point: "store.get.read", Count: 100}}})
	d, err := Open(t.TempDir(), WithInjector(inj), WithDegrade(0, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d.Get("k")
	}
	if d.Degraded() || d.Degradations() != 0 {
		t.Fatal("disabled breaker tripped")
	}
}

// TestConcurrentEvictionUnderFaults runs concurrent writers over a
// tiny budget while injected flock contention forces the
// counter-resync path and occasional torn writes and crashed renames
// land mid-traffic. Invariants: no misfiled entries ever, every
// surviving entry decodes or is detected-corrupt, and the resident
// counters converge to the directory truth.
func TestConcurrentEvictionUnderFaults(t *testing.T) {
	inj := fault.MustNew(fault.Plan{Seed: 11, Rules: []fault.Rule{
		{Point: "store.lock", P: 0.4, Count: 20},
		{Point: "store.put.write", Action: fault.ActionTorn, After: 10, Every: 17, Count: 4},
		{Point: "store.put.rename", Action: fault.ActionCrash, Every: 23, Count: 4},
	}})
	d, err := Open(t.TempDir(), WithInjector(inj), WithBudget(4<<10), WithDegrade(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := make([]byte, 256)
			for i := 0; i < 60; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				d.Put(key, "codec", payload)
				d.Get(key)
				d.Get(fmt.Sprintf("w%d-k%d", (w+1)%4, i/2))
			}
		}(w)
	}
	wg.Wait()
	res := d.Verify()
	if res.Misfiled != 0 {
		t.Fatalf("misfiled entries after fault soak: %+v", res)
	}
	// Force a final locked eviction pass (injected contention consumed)
	// and check the counters resynced to directory truth.
	d.Put("final", "codec", make([]byte, 8<<10))
	entries, bytes := d.scanResident()
	if d.entries.Load() != entries || d.bytes.Load() != bytes {
		t.Fatalf("counters diverged: have (%d,%d) wanted (%d,%d)",
			d.entries.Load(), d.bytes.Load(), entries, bytes)
	}
	if d.bytes.Load() > 16<<10 {
		t.Fatalf("budget runaway: %d resident bytes", d.bytes.Load())
	}
}
