//go:build unix

package store

import (
	"os"
	"syscall"
)

// lockDir takes a non-blocking advisory exclusive lock on path, creating
// the lock file if needed. It returns a release function and whether the
// lock was acquired; contention (another process holds it) reports ok =
// false rather than blocking, because every caller treats the lock as
// "may I run this maintenance scan" rather than "I must".
func lockDir(path string) (release func(), ok bool) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return func() {}, false
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return func() {}, false
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, true
}
