// Package store is the persistent tier of the pipeline's artifact store:
// a content-addressed, disk-backed blob store for encoded stage results.
// Entries are sha256-addressed files written atomically (tempfile +
// rename), self-describing (magic, format version, codec name, full
// content key, payload checksum), and loaded defensively — any mismatch
// makes the entry a miss that the pipeline recomputes and overwrites, so
// a truncated write, a bit flip or a format change can never corrupt a
// result, only cost a recompute.
//
// One store directory may be shared by concurrent processes: writes are
// atomic renames, readers tolerate entries vanishing mid-scan, and the
// size-budget eviction scan is serialized across processes with an
// advisory file lock (flock). The on-disk layout is namespaced by format
// version (store.Namespace), so a process running an older or newer
// format sees an independent keyspace instead of undecodable entries.
//
// See DESIGN.md ("Artifact store") for how this tier composes with the
// in-memory LRU under pipeline.Tiered.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cnfetdk/internal/fault"
	"cnfetdk/internal/pipeline"
)

// Namespace is the on-disk format version: entries live under
// <root>/<Namespace>/, so bumping it (with entryVersion) retires every
// old entry without ever parsing one with the wrong reader.
const Namespace = "v1"

// entryMagic and entryVersion head every entry file.
var entryMagic = [4]byte{'C', 'N', 'F', 'S'}

const entryVersion = 1

// entrySuffix names completed entries; temporaries use tmpPattern and are
// ignored by scans.
const (
	entrySuffix = ".art"
	tmpPattern  = ".tmp-*"
	tmpPrefix   = ".tmp-"
	lockName    = ".lock"
)

// tmpMaxAge is how old a temporary must be before Open/evict treat it as
// abandoned by a crashed writer and delete it. A live Put holds its
// temporary for milliseconds, so an hour leaves enormous margin against
// clipping another process's in-flight write.
const tmpMaxAge = time.Hour

// Disk is the persistent blob tier. All operations are best-effort by
// design: Put failures and corrupt entries increment the Errors counter
// and otherwise surface as misses, because losing a cache write must
// never fail the computation that produced it. Safe for concurrent use
// within a process and, via atomic renames + flock-serialized eviction,
// across processes sharing one directory.
type Disk struct {
	dir    string // <root>/<Namespace>
	budget int64  // entry-file byte budget (0 = unbounded)
	inj    *fault.Injector

	// Degradation breaker: degradeThreshold consecutive I/O errors put
	// the store in compute-through mode (every Get a miss, every Put a
	// no-op) for degradeCooldown, so a dead disk costs one cheap check
	// per operation instead of a syscall storm. 0 threshold disables.
	degradeThreshold int64
	degradeCooldown  time.Duration
	consecErrs       atomic.Int64
	degradedUntil    atomic.Int64 // UnixNano; 0 = healthy
	degradations     atomic.Int64

	// entries/bytes track this process's view of the resident set; they
	// are re-synced from a directory walk whenever eviction runs.
	entries atomic.Int64
	bytes   atomic.Int64

	hits, misses, puts, evictions, errors atomic.Int64

	evictMu sync.Mutex // one eviction scan at a time within the process
}

// Option tunes Open.
type Option func(*Disk)

// WithBudget bounds the store's total on-disk bytes, measured over whole
// entry files (header, codec name, key and checksum included, not just
// payloads): a Put that pushes the resident size beyond the budget
// triggers an oldest-first eviction scan back under it (0 = unbounded).
func WithBudget(maxBytes int64) Option {
	return func(d *Disk) { d.budget = maxBytes }
}

// WithInjector arms the store's fault-injection points (see package
// fault). A nil injector — the default — is free.
func WithInjector(inj *fault.Injector) Option {
	return func(d *Disk) { d.inj = inj }
}

// Default degradation-breaker tuning: how many consecutive I/O errors
// trip compute-through mode, and for how long.
const (
	DefaultDegradeThreshold = 16
	DefaultDegradeCooldown  = 2 * time.Second
)

// WithDegrade tunes the compute-through breaker: threshold consecutive
// I/O errors disable the disk tier for cooldown. threshold 0 disables
// the breaker (every operation keeps hitting the disk).
func WithDegrade(threshold int, cooldown time.Duration) Option {
	return func(d *Disk) {
		d.degradeThreshold = int64(threshold)
		d.degradeCooldown = cooldown
	}
}

// Open creates (or reopens) the store rooted at dir, placing entries in
// the current format namespace underneath it. The directory is created
// if missing; an unusable path (an existing regular file, an unwritable
// parent) is an error — after a successful Open, a directory that later
// turns read-only degrades to a read-only cache instead of failing jobs.
func Open(dir string, opts ...Option) (*Disk, error) {
	d := &Disk{
		dir:              filepath.Join(dir, Namespace),
		degradeThreshold: DefaultDegradeThreshold,
		degradeCooldown:  DefaultDegradeCooldown,
	}
	for _, opt := range opts {
		opt(d)
	}
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	d.removeStaleTemps()
	entries, bytes := d.scanResident()
	d.entries.Store(entries)
	d.bytes.Store(bytes)
	return d, nil
}

// Dir returns the namespaced directory entries live in.
func (d *Disk) Dir() string { return d.dir }

// entryPath maps a content key to its file: two-level fan-out on the
// sha256 of the key so one directory never accumulates every entry.
func (d *Disk) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(d.dir, name[:2], name[2:]+entrySuffix)
}

// encodeEntry renders the self-describing entry file:
//
//	magic[4] version[1] codecLen[u16] keyLen[u32] payloadLen[u64]
//	codec... key... payloadSHA256[32] payload...
func encodeEntry(key, codec string, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Write(entryMagic[:])
	buf.WriteByte(entryVersion)
	var hdr [14]byte
	binary.LittleEndian.PutUint16(hdr[0:2], uint16(len(codec)))
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(key)))
	binary.LittleEndian.PutUint64(hdr[6:14], uint64(len(payload)))
	buf.Write(hdr[:])
	buf.WriteString(codec)
	buf.WriteString(key)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	buf.Write(payload)
	return buf.Bytes()
}

// decodeEntry parses and verifies an entry file against the key it was
// looked up under; any structural or checksum mismatch returns an
// error (the caller treats it as corrupt).
func decodeEntry(blob []byte, wantKey string) (codec string, payload []byte, err error) {
	codec, key, payload, err := decodeEntryAny(blob)
	if err != nil {
		return "", nil, err
	}
	if key != wantKey {
		return "", nil, fmt.Errorf("store: key mismatch (hash collision or misfiled entry)")
	}
	return codec, payload, nil
}

// decodeEntryAny parses and checksums an entry file without knowing the
// key in advance, returning the key it declares — the integrity scan's
// entry point.
func decodeEntryAny(blob []byte) (codec, key string, payload []byte, err error) {
	if len(blob) < 4+1+14 || !bytes.Equal(blob[:4], entryMagic[:]) {
		return "", "", nil, fmt.Errorf("store: bad entry header")
	}
	if blob[4] != entryVersion {
		return "", "", nil, fmt.Errorf("store: entry version %d, want %d", blob[4], entryVersion)
	}
	codecLen := int(binary.LittleEndian.Uint16(blob[5:7]))
	keyLen := binary.LittleEndian.Uint32(blob[7:11])
	payloadLen := binary.LittleEndian.Uint64(blob[11:19])
	rest := blob[19:]
	// Bound the variable-length fields against the blob before any
	// slicing or int conversion: summing all three declared lengths and
	// comparing the total to len(rest) would let a crafted header wrap
	// the uint64 sum back into range and pass with out-of-bounds parts.
	// codecLen+keyLen+32 cannot wrap (< 2^33), and once it fits in
	// len(rest) every field converts to int safely on 32-bit too.
	if uint64(codecLen)+uint64(keyLen)+32 > uint64(len(rest)) {
		return "", "", nil, fmt.Errorf("store: truncated entry")
	}
	metaLen := codecLen + int(keyLen) + 32
	if uint64(len(rest)-metaLen) != payloadLen {
		return "", "", nil, fmt.Errorf("store: truncated entry")
	}
	codec = string(rest[:codecLen])
	key = string(rest[codecLen : codecLen+int(keyLen)])
	var sum [32]byte
	copy(sum[:], rest[metaLen-32:metaLen])
	payload = rest[metaLen:]
	if sha256.Sum256(payload) != sum {
		return "", "", nil, fmt.Errorf("store: payload checksum mismatch")
	}
	return codec, key, payload, nil
}

// ioError records one I/O failure and advances the degradation
// breaker.
func (d *Disk) ioError() {
	d.errors.Add(1)
	if d.degradeThreshold <= 0 {
		return
	}
	if d.consecErrs.Add(1) >= d.degradeThreshold {
		d.consecErrs.Store(0)
		d.degradedUntil.Store(time.Now().Add(d.degradeCooldown).UnixNano())
		d.degradations.Add(1)
	}
}

// ioOK resets the breaker after any successful disk operation.
func (d *Disk) ioOK() { d.consecErrs.Store(0) }

// Degraded reports whether the breaker currently bypasses the disk.
func (d *Disk) Degraded() bool {
	until := d.degradedUntil.Load()
	return until != 0 && time.Now().UnixNano() < until
}

// Degradations counts how many times the breaker has tripped.
func (d *Disk) Degradations() int64 { return d.degradations.Load() }

// Get implements pipeline.BlobStore: it loads, verifies and returns the
// entry for key. A missing file is a plain miss; an unreadable or corrupt
// one counts an error, is deleted best-effort, and reads as a miss so the
// pipeline recomputes it.
func (d *Disk) Get(key string) (string, []byte, bool) {
	if d.Degraded() {
		d.misses.Add(1)
		return "", nil, false
	}
	if d.inj.Decide("store.get.read").Fired() {
		d.ioError()
		d.misses.Add(1)
		return "", nil, false
	}
	path := d.entryPath(key)
	blob, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			d.ioError()
		} else {
			d.ioOK()
		}
		d.misses.Add(1)
		return "", nil, false
	}
	codec, payload, err := decodeEntry(blob, key)
	if err != nil {
		// Corrupt: drop the entry so the recompute's Put replaces it
		// cleanly, and fall back to a miss. Corruption is a data
		// problem, not a disk-health signal, so it counts an error
		// without advancing the degradation breaker.
		d.errors.Add(1)
		d.misses.Add(1)
		if os.Remove(path) == nil {
			d.entries.Add(-1)
			d.bytes.Add(-int64(len(blob)))
		}
		return "", nil, false
	}
	d.ioOK()
	d.hits.Add(1)
	return codec, payload, true
}

// Put implements pipeline.BlobStore: an atomic tempfile+fsync+rename
// write of the entry, followed by budget eviction if the store grew
// past it. The fsync orders the payload ahead of the rename, so after
// a crash either the complete entry is visible or only a temporary is
// — never a renamed-but-unwritten file (and the checksum catches any
// torn write the filesystem lets through anyway). Failures (read-only
// directory, full disk) count as errors and are otherwise swallowed —
// the value stays served from memory.
func (d *Disk) Put(key, codec string, payload []byte) {
	if d.Degraded() {
		return
	}
	path := d.entryPath(key)
	blob := encodeEntry(key, codec, payload)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		d.ioError()
		return
	}
	if d.inj.Decide("store.put.tempfile").Fired() {
		d.ioError()
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), tmpPattern)
	if err != nil {
		d.ioError()
		return
	}
	wblob := blob
	if fd := d.inj.Decide("store.put.write"); fd.Fired() && fd.Action == fault.ActionTorn {
		// Torn write: only a prefix of the entry reaches the disk. The
		// write path proceeds — publishing the truncated entry is the
		// point, so tests can prove decode rejects it.
		if fd.After < int64(len(wblob)) {
			wblob = wblob[:fd.After]
		}
	} else if fd.Fired() {
		tmp.Close()
		os.Remove(tmp.Name())
		d.ioError()
		return
	}
	_, werr := tmp.Write(wblob)
	serr := tmp.Sync()
	if d.inj.Decide("store.put.sync").Fired() && serr == nil {
		serr = fmt.Errorf("store: injected sync failure")
	}
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		d.ioError()
		return
	}
	if rd := d.inj.Decide("store.put.rename"); rd.Fired() {
		if rd.Action == fault.ActionCrash {
			// Crash-before-rename: the writer "dies" here, leaving the
			// temporary behind for removeStaleTemps to reap. No error
			// counted — a dead process can't count anything.
			return
		}
		os.Remove(tmp.Name())
		d.ioError()
		return
	}
	// Renaming over an existing entry (same key, concurrent writer) is
	// fine: content-addressed keys make both bytes equivalent.
	prev, _ := os.Stat(path)
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		d.ioError()
		return
	}
	d.ioOK()
	d.puts.Add(1)
	if prev == nil {
		d.entries.Add(1)
		d.bytes.Add(int64(len(blob)))
	} else {
		d.bytes.Add(int64(len(blob)) - prev.Size())
	}
	if d.budget > 0 && d.bytes.Load() > d.budget {
		d.evict()
	}
}

// residentEntry is one completed entry seen by a directory scan.
type residentEntry struct {
	path  string
	size  int64
	mtime int64
}

// walkEntries lists completed entries (ignoring temporaries and the lock
// file), tolerating files vanishing mid-scan.
func (d *Disk) walkEntries() []residentEntry {
	var out []residentEntry
	filepath.WalkDir(d.dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || filepath.Ext(path) != entrySuffix {
			return nil
		}
		info, err := de.Info()
		if err != nil {
			return nil // vanished under us (concurrent eviction)
		}
		out = append(out, residentEntry{path: path, size: info.Size(), mtime: info.ModTime().UnixNano()})
		return nil
	})
	return out
}

// removeStaleTemps deletes temporaries abandoned by writers that died
// between CreateTemp and Rename — otherwise they escape both resident
// accounting and budget eviction (neither looks past entrySuffix) and
// accumulate forever. Only clearly stale files (older than tmpMaxAge)
// go, so a concurrent process's in-flight Put is never clipped.
func (d *Disk) removeStaleTemps() {
	cutoff := time.Now().Add(-tmpMaxAge)
	filepath.WalkDir(d.dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasPrefix(de.Name(), tmpPrefix) {
			return nil
		}
		if info, ierr := de.Info(); ierr == nil && info.ModTime().Before(cutoff) {
			os.Remove(path)
		}
		return nil
	})
}

// scanResident totals the current entry population.
func (d *Disk) scanResident() (entries, bytes int64) {
	for _, e := range d.walkEntries() {
		entries++
		bytes += e.size
	}
	return entries, bytes
}

// evict walks the store and removes oldest-first (by mtime) until the
// resident bytes fit the budget again. The scan re-measures the
// directory rather than trusting in-process counters, so concurrent
// processes sharing the store converge instead of double-counting; the
// advisory flock keeps two processes from evicting the same tail at
// once (a second process skips its scan — the first one's suffices).
func (d *Disk) evict() {
	d.evictMu.Lock()
	defer d.evictMu.Unlock()
	unlock, ok := func() (func(), bool) {
		if d.inj.Decide("store.lock").Fired() {
			// Injected flock contention: behave exactly as if another
			// process held the eviction lock.
			return nil, false
		}
		return lockDir(filepath.Join(d.dir, lockName))
	}()
	if !ok {
		// Another process is already evicting; its scan suffices. Still
		// resync our counters from a (read-only, lock-free) walk so d.bytes
		// reflects that eviction's progress — otherwise a stale over-budget
		// figure would re-trigger this scan on every subsequent Put.
		entries, bytes := d.scanResident()
		d.entries.Store(entries)
		d.bytes.Store(bytes)
		return
	}
	defer unlock()

	d.removeStaleTemps()
	entries := d.walkEntries()
	var total int64
	for _, e := range entries {
		total += e.size
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime < entries[j].mtime })
	n := int64(len(entries))
	for _, e := range entries {
		if total <= d.budget {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			n--
			d.evictions.Add(1)
		}
	}
	d.entries.Store(n)
	d.bytes.Store(total)
}

// Len implements pipeline.BlobStore. See Stats for the accuracy caveat
// on shared directories.
func (d *Disk) Len() int { return int(d.entries.Load()) }

// Stats implements pipeline.BlobStore. Hits, Misses, Puts, Evictions and
// Errors are exact per-process operation counts. Entries and Bytes are
// this process's view of the shared resident set: when several processes
// write one directory, concurrent renames in the stat-then-rename window
// can skew them, and they resync only when an eviction scan runs (never,
// on an unbounded store) — treat them as approximate there.
func (d *Disk) Stats() pipeline.TierStats {
	return pipeline.TierStats{
		Entries:   d.entries.Load(),
		Bytes:     d.bytes.Load(),
		Hits:      d.hits.Load(),
		Misses:    d.misses.Load(),
		Puts:      d.puts.Load(),
		Evictions: d.evictions.Load(),
		Errors:    d.errors.Load(),
	}
}

// VerifyResult is the outcome of an integrity scan.
type VerifyResult struct {
	// Entries counts completed entry files scanned.
	Entries int `json:"entries"`
	// Corrupt counts entries decode rejects (truncated, bad checksum)
	// — these read as misses and cost only a recompute, so their
	// presence after a fault schedule is expected, not dangerous.
	Corrupt int `json:"corrupt"`
	// Misfiled counts entries that decode cleanly but live at a path
	// that doesn't match their declared key — the only way a scan can
	// observe a *readable* wrong answer, and therefore the number that
	// must always be zero.
	Misfiled int `json:"misfiled"`
	// Temps counts leftover temporaries (crashed writers).
	Temps int `json:"temps"`
}

// Verify walks every entry in the store and checks it decodes to the
// key it is filed under. It never modifies the store.
func (d *Disk) Verify() VerifyResult {
	var res VerifyResult
	filepath.WalkDir(d.dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return nil
		}
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			res.Temps++
			return nil
		}
		if filepath.Ext(path) != entrySuffix {
			return nil
		}
		res.Entries++
		blob, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil // vanished mid-scan
		}
		_, key, _, derr := decodeEntryAny(blob)
		if derr != nil {
			res.Corrupt++
			return nil
		}
		if d.entryPath(key) != path {
			res.Misfiled++
		}
		return nil
	})
	return res
}

// Purge removes every entry (and stale temporaries) in the namespace,
// keeping the directory itself usable.
func (d *Disk) Purge() error {
	var firstErr error
	filepath.WalkDir(d.dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || filepath.Base(path) == lockName {
			return nil
		}
		if rerr := os.Remove(path); rerr != nil && !os.IsNotExist(rerr) && firstErr == nil {
			firstErr = rerr
		}
		return nil
	})
	if firstErr == nil {
		d.entries.Store(0)
		d.bytes.Store(0)
	}
	return firstErr
}
