package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// findEntry returns the single entry file for key, failing if absent.
func findEntry(t *testing.T, d *Disk, key string) string {
	t.Helper()
	path := d.entryPath(key)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry for %q: %v", key, err)
	}
	return path
}

func TestPutGetRoundTrip(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"delay": 1.25e-12}`)
	d.Put("stage/delay", "flow/scalar@v1", payload)
	codec, got, ok := d.Get("stage/delay")
	if !ok || codec != "flow/scalar@v1" || string(got) != string(payload) {
		t.Fatalf("Get = (%q, %q, %v), want the stored entry", codec, got, ok)
	}
	if st := d.Stats(); st.Hits != 1 || st.Puts != 1 || st.Entries != 1 || st.Errors != 0 {
		t.Fatalf("stats after round trip: %+v", st)
	}
}

func TestGetMissAndReopenWarm(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d.Get("absent"); ok {
		t.Fatal("empty store must miss")
	}
	d.Put("k", "c@v1", []byte("payload"))

	// A second handle on the same directory — a fresh process — sees the
	// entry and the resident totals.
	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d2.Get("k"); !ok {
		t.Fatal("reopened store must serve the persisted entry")
	}
	if d2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", d2.Len())
	}
}

// TestCorruptEntriesFallBackToMiss covers the corruption-tolerance
// contract: truncated files, flipped payload bytes, wrong magic and
// wrong-format-version entries all read as misses (plus an error count
// and best-effort removal), never as wrong data.
func TestCorruptEntriesFallBackToMiss(t *testing.T) {
	corruptions := []struct {
		name string
		mod  func(blob []byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"wrapped-lengths", func(b []byte) []byte {
			// keyLen = 0xFFFFFFFF with a payloadLen chosen so the uint64
			// sum of all declared lengths wraps back to exactly len(rest).
			// A validation that only compares that sum would pass and then
			// panic slicing 4 GiB out of a 100-byte blob; decodeEntry must
			// bound each length individually and reject this.
			rest := uint64(len(b) - 19)
			codecLen := uint64(binary.LittleEndian.Uint16(b[5:7]))
			binary.LittleEndian.PutUint32(b[7:11], 0xFFFFFFFF)
			binary.LittleEndian.PutUint64(b[11:19], rest-codecLen-0xFFFFFFFF-32)
			return b
		}},
		{"payload-flip", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }},
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"future-version", func(b []byte) []byte { b[4] = entryVersion + 1; return b }},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			d, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			d.Put("k", "c@v1", []byte("genuine payload bytes"))
			path := findEntry(t, d, "k")
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.mod(blob), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, ok := d.Get("k"); ok {
				t.Fatal("corrupt entry must read as a miss")
			}
			if st := d.Stats(); st.Errors == 0 {
				t.Fatal("corrupt load must count an error")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry should be removed, stat err = %v", err)
			}
			// The slot is clean again: a recompute's Put round-trips.
			d.Put("k", "c@v1", []byte("recomputed"))
			if _, got, ok := d.Get("k"); !ok || string(got) != "recomputed" {
				t.Fatalf("post-corruption Put/Get = (%q, %v)", got, ok)
			}
		})
	}
}

// TestKeyMismatchEntryRejected: an entry misfiled under another key's
// path (or a sha256 collision, theatrically) must not decode.
func TestKeyMismatchEntryRejected(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d.Put("key-a", "c@v1", []byte("a's payload"))
	src := findEntry(t, d, "key-a")
	dst := d.entryPath("key-b")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d.Get("key-b"); ok {
		t.Fatal("entry recorded for key-a must not serve key-b")
	}
}

func TestOpenOnRegularFileFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "occupied")
	if err := os.WriteFile(path, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open over a regular file must fail")
	}
}

// TestUnwritableStoreServesReads: a store directory that turns read-only
// after Open degrades to a read-only cache — Puts are swallowed (counted
// as errors), Gets keep hitting.
func TestUnwritableStoreServesReads(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("file permissions do not bind root")
	}
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("warm", "c@v1", []byte("persisted before lockdown"))
	if err := filepath.WalkDir(d.Dir(), func(path string, de os.DirEntry, err error) error {
		if err == nil && de.IsDir() {
			return os.Chmod(path, 0o555)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		filepath.WalkDir(d.Dir(), func(path string, de os.DirEntry, err error) error {
			if err == nil && de.IsDir() {
				os.Chmod(path, 0o755)
			}
			return nil
		})
	})

	d.Put("cold", "c@v1", []byte("must not land"))
	if st := d.Stats(); st.Errors == 0 {
		t.Fatal("Put into a read-only store must count an error")
	}
	if _, _, ok := d.Get("cold"); ok {
		t.Fatal("failed Put must not be readable")
	}
	if _, got, ok := d.Get("warm"); !ok || string(got) != "persisted before lockdown" {
		t.Fatalf("read-only store must keep serving: (%q, %v)", got, ok)
	}
}

func TestBudgetEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	payload := make([]byte, 1024)
	// Entry overhead is small; a 4KiB budget holds ~3 entries.
	d, err := Open(dir, WithBudget(4096))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%d", i)
		d.Put(key, "c@v1", payload)
		bumpMtimes(t, d) // age existing entries so mtime order is strict
	}
	st := d.Stats()
	if st.Evictions == 0 {
		t.Fatalf("budgeted store never evicted: %+v", st)
	}
	if st.Bytes > 4096 {
		t.Fatalf("resident %d bytes exceeds the 4096 budget", st.Bytes)
	}
	if _, _, ok := d.Get("k0"); ok {
		t.Fatal("oldest entry must be evicted first")
	}
	if _, _, ok := d.Get("k7"); !ok {
		t.Fatal("newest entry must survive eviction")
	}
}

// bumpMtimes rewinds every resident entry's mtime by one second so
// subsequently written entries sort strictly newer even on filesystems
// with coarse timestamps.
func bumpMtimes(t *testing.T, d *Disk) {
	t.Helper()
	for _, e := range d.walkEntries() {
		info, err := os.Stat(e.path)
		if err != nil {
			continue
		}
		mt := info.ModTime().Add(-1e9)
		if err := os.Chtimes(e.path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOpenRemovesStaleTemps: temporaries left by a writer that died
// mid-Put are swept on Open once clearly abandoned, while a fresh
// temporary (another process's in-flight write) is left alone.
func TestOpenRemovesStaleTemps(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fan := filepath.Join(d.Dir(), "ab")
	if err := os.MkdirAll(fan, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(fan, ".tmp-dead-writer")
	fresh := filepath.Join(fan, ".tmp-in-flight")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial entry bytes"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temporary survived Open, stat err = %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temporary must survive Open: %v", err)
	}
}

func TestPurge(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d.Put(fmt.Sprintf("k%d", i), "c@v1", []byte("x"))
	}
	if err := d.Purge(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("purged store holds %d entries", d.Len())
	}
	if _, _, ok := d.Get("k0"); ok {
		t.Fatal("purged entry still readable")
	}
	// The store stays usable after a purge.
	d.Put("k0", "c@v1", []byte("fresh"))
	if _, _, ok := d.Get("k0"); !ok {
		t.Fatal("post-purge Put/Get failed")
	}
}

// TestConcurrentHandlesSharedDir hammers one directory through two Disk
// handles (two processes, morally) from many goroutines, with a budget
// so eviction scans interleave with reads and writes. Run under -race;
// correctness bar: no panic, and every successful Get returns exactly
// the payload its key was written with.
func TestConcurrentHandlesSharedDir(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, WithBudget(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, WithBudget(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	payloadFor := func(key string) []byte {
		return []byte(strings.Repeat(key+"|", 50))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := a
			if w%2 == 1 {
				h = b
			}
			for i := 0; i < 60; i++ {
				key := fmt.Sprintf("k%d", (w*13+i)%24)
				if i%3 == 0 {
					h.Put(key, "c@v1", payloadFor(key))
					continue
				}
				if _, got, ok := h.Get(key); ok && string(got) != string(payloadFor(key)) {
					t.Errorf("%s served foreign payload %q", key, got[:20])
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := a.Stats(); st.Errors != 0 {
		t.Fatalf("handle A counted %d errors under clean concurrency", st.Errors)
	}
	if st := b.Stats(); st.Errors != 0 {
		t.Fatalf("handle B counted %d errors under clean concurrency", st.Errors)
	}
}

// TestNamespaceIsolation: a root directory shared by two format
// namespaces keeps their keyspaces disjoint (the upgrade story: a new
// format never reads old bytes).
func TestNamespaceIsolation(t *testing.T) {
	root := t.TempDir()
	d, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("k", "c@v1", []byte("current format"))
	foreign := filepath.Join(root, "v0", "aa")
	if err := os.MkdirAll(foreign, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(foreign, "junk"+entrySuffix), []byte("old format junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 {
		t.Fatalf("namespace scan counted %d entries, want 1 (foreign namespace ignored)", d2.Len())
	}
	if _, _, ok := d2.Get("k"); !ok {
		t.Fatal("current-namespace entry must survive alongside a foreign namespace")
	}
}

func TestFlockSerializesAcquisition(t *testing.T) {
	path := filepath.Join(t.TempDir(), ".lock")
	rel1, ok := lockDir(path)
	if !ok {
		t.Fatal("first lock must succeed")
	}
	if _, ok := lockDir(path); ok {
		t.Fatal("second lock must be refused while held")
	}
	rel1()
	rel2, ok := lockDir(path)
	if !ok {
		t.Fatal("lock must be reacquirable after release")
	}
	rel2()
}
