//go:build !unix

package store

// lockDir on platforms without flock degrades to an uncontended grant:
// the in-process evictMu still serializes scans within one process, and
// cross-process eviction races only cost duplicate Remove calls, which
// both sides tolerate.
func lockDir(string) (release func(), ok bool) { return func() {}, true }
