// Package extract is the design kit's post-layout analysis kit (Fig 5):
// it recovers the electrical view of a generated cell layout from its
// geometry plus a concrete tube population (device extraction), verifies
// it against the intended transistor network (LVS), and estimates lumped
// interconnect parasitics from the drawn metal.
package extract

import (
	"fmt"
	"sort"

	"cnfetdk/internal/cnt"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/immunity"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
)

// Device is one extracted conduction element: a tube span between two
// contacts controlled by a set of gates (series chain along the tube).
type Device struct {
	NetA, NetB string
	Cube       logic.Cube
	Tubes      int // parallel tubes realizing this span
}

// Extraction is the electrical view recovered from one network's layout.
type Extraction struct {
	Type    network.DeviceType
	Devices []Device
}

// Network extracts the conduction elements of one pull network from its
// geometry under the given tube population. Parallel tubes with identical
// span signatures merge with a tube count (the drive strength the span
// realizes).
func Network(g *layout.NetGeom, nw *network.Network, inputs []string, tubes []cnt.Tube) *Extraction {
	ch := immunity.NewChecker(g, nw, inputs)
	merged := map[string]*Device{}
	for _, t := range tubes {
		for _, sp := range ch.CondSpans(t.Line, t.Metallic) {
			a, b := sp.NetA, sp.NetB
			if b < a {
				a, b = b, a
			}
			key := a + "|" + b + "|" + sp.Cube.String()
			if d, ok := merged[key]; ok {
				d.Tubes++
				continue
			}
			merged[key] = &Device{NetA: a, NetB: b, Cube: sp.Cube, Tubes: 1}
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ex := &Extraction{Type: nw.Type}
	for _, k := range keys {
		ex.Devices = append(ex.Devices, *merged[k])
	}
	return ex
}

// Conduct computes the extracted conduction function between two nets:
// per input vector, union-find over spans whose cubes are satisfied.
func (e *Extraction) Conduct(u, v string, inputs []string) *logic.Table {
	t := logic.NewTable(inputs)
	// Collect net universe.
	netSet := map[string]bool{u: true, v: true}
	for _, d := range e.Devices {
		netSet[d.NetA] = true
		netSet[d.NetB] = true
	}
	nets := make([]string, 0, len(netSet))
	for n := range netSet {
		nets = append(nets, n)
	}
	sort.Strings(nets)
	id := map[string]int{}
	for i, n := range nets {
		id[n] = i
	}
	cubeTabs := make([]*logic.Table, len(e.Devices))
	for i, d := range e.Devices {
		cubeTabs[i] = logic.TableOfCube(d.Cube, inputs)
	}
	parent := make([]int, len(nets))
	for vec := 0; vec < t.Rows(); vec++ {
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for i, d := range e.Devices {
			if cubeTabs[i].Get(vec) {
				a, b := find(id[d.NetA]), find(id[d.NetB])
				if a != b {
					parent[a] = b
				}
			}
		}
		t.Set(vec, find(id[u]) == find(id[v]))
	}
	return t
}

// LVSReport is the outcome of comparing an extracted network against the
// intended one.
type LVSReport struct {
	Match    bool
	Mismatch []string
}

// LVS verifies that the extracted conduction between the network terminals
// equals the intended conduction for every input vector.
func LVS(ex *Extraction, nw *network.Network, inputs []string) LVSReport {
	rep := LVSReport{Match: true}
	pairs := [][2]string{{nw.Top, nw.Bottom}}
	for _, p := range pairs {
		want := nw.Conduct(p[0], p[1], inputs)
		got := ex.Conduct(p[0], p[1], inputs)
		if !got.Equal(want) {
			rep.Match = false
			rep.Mismatch = append(rep.Mismatch,
				fmt.Sprintf("%s-%s conduction differs", p[0], p[1]))
		}
	}
	return rep
}

// Parasitics are lumped per-net interconnect estimates from drawn layout.
type Parasitics struct {
	// CapF is the net's metal capacitance (contacts + straps) in farads.
	CapF map[string]float64
	// ResOhm is a series resistance estimate per net in ohms.
	ResOhm map[string]float64
}

// Parasitic extraction unit constants for the 65nm back-end: plate
// capacitance of contact/strap metal over the substrate and sheet
// resistance of level-1 metal.
const (
	// CapPerNM2 is metal capacitance per nm² (0.04 fF/µm² for M1 over
	// field at 65nm-class dielectrics).
	CapPerNM2 = 4e-23
	// SheetOhm is the metal sheet resistance (Ω/sq).
	SheetOhm = 0.1
	// ContactOhm is the via/contact resistance.
	ContactOhm = 10.0
)

// CellParasitics extracts lumped parasitics of a cell's nets from its
// contact and strap geometry (λ converted through the technology pitch).
func CellParasitics(c *layout.Cell) Parasitics {
	p := Parasitics{CapF: map[string]float64{}, ResOhm: map[string]float64{}}
	nm := c.Rules.LambdaNM
	addRect := func(net string, r geom.Rect) {
		areaNM2 := r.AreaLambda2() * nm * nm
		p.CapF[net] += areaNM2 * CapPerNM2
		// Series resistance: length/width squares along the long axis.
		w, h := r.W().Lambdas(), r.H().Lambdas()
		if w > 0 && h > 0 {
			sq := w / h
			if h > w {
				sq = h / w
			}
			p.ResOhm[net] += sq * SheetOhm
		}
	}
	for _, ng := range []*layout.NetGeom{c.PUN, c.PDN} {
		for _, e := range ng.Elements {
			switch e.Kind {
			case layout.ElemContact:
				addRect(e.Net, e.Rect)
				p.ResOhm[e.Net] += ContactOhm
			case layout.ElemStrap:
				addRect(e.Net, e.Rect)
			}
		}
	}
	return p
}
