package extract

import (
	"math/rand"
	"testing"

	"cnfetdk/internal/cnt"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
)

func buildCell(t *testing.T, f string, style layout.Style) *layout.Cell {
	t.Helper()
	g, err := network.NewGate(f, logic.MustParse(f), 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := layout.Generate(f, g, style, geom.Lambda(4), rules.Default65nm(rules.CNFET))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func alignedTubes(g *layout.NetGeom) []cnt.Tube {
	params := cnt.DefaultParams()
	params.MisalignedFrac = 0
	return cnt.Generate(g.BBox, params, rand.New(rand.NewSource(3)))
}

func TestExtractInverter(t *testing.T) {
	c := buildCell(t, "A", layout.StyleCompact)
	ex := Network(c.PUN, c.Gate.PUN, c.Gate.Inputs, alignedTubes(c.PUN))
	if len(ex.Devices) != 1 {
		t.Fatalf("devices = %d, want 1 merged span", len(ex.Devices))
	}
	d := ex.Devices[0]
	if d.Tubes < 10 {
		t.Fatalf("tube count = %d, want a dense array at 5nm pitch", d.Tubes)
	}
	if len(d.Cube.Lits) != 1 || d.Cube.Lits[0].Input != "A" {
		t.Fatalf("cube = %v", d.Cube)
	}
}

// LVS must pass for every library cell in both immune styles under an
// aligned population — the generated layouts implement their networks.
func TestLVSCleanOnGeneratedLayouts(t *testing.T) {
	for _, f := range []string{"A", "AB", "A+B", "ABC", "AB+C", "AB+CD", "ABC+D", "(A+B)C"} {
		for _, style := range []layout.Style{layout.StyleCompact, layout.StyleEtched} {
			c := buildCell(t, f, style)
			for _, side := range []struct {
				g  *layout.NetGeom
				nw *network.Network
			}{{c.PUN, c.Gate.PUN}, {c.PDN, c.Gate.PDN}} {
				ex := Network(side.g, side.nw, c.Gate.Inputs, alignedTubes(side.g))
				rep := LVS(ex, side.nw, c.Gate.Inputs)
				if !rep.Match {
					t.Errorf("%s %v: LVS mismatch: %v", f, style, rep.Mismatch)
				}
			}
		}
	}
}

// A sparse population that misses a series gate entirely must fail LVS —
// extraction is sensitive to missing drive.
func TestLVSDetectsMissingTubes(t *testing.T) {
	c := buildCell(t, "AB", layout.StyleCompact)
	ex := Network(c.PDN, c.Gate.PDN, c.Gate.Inputs, nil)
	rep := LVS(ex, c.Gate.PDN, c.Gate.Inputs)
	if rep.Match {
		t.Fatal("LVS should fail with no tubes")
	}
}

// A metallic tube in the population creates a short: extracted conduction
// becomes constant-true and LVS flags it.
func TestLVSDetectsMetallicShort(t *testing.T) {
	c := buildCell(t, "A", layout.StyleCompact)
	tubes := alignedTubes(c.PUN)
	tubes[len(tubes)/2].Metallic = true
	ex := Network(c.PUN, c.Gate.PUN, c.Gate.Inputs, tubes)
	rep := LVS(ex, c.Gate.PUN, c.Gate.Inputs)
	if rep.Match {
		t.Fatal("metallic short must fail LVS")
	}
}

func TestExtractedConductMatchesNetworkProperty(t *testing.T) {
	// For a handful of cells, the extracted conduction table from an
	// aligned population equals the network's between the terminals.
	for _, f := range []string{"AB+C", "(A+B)(C+D)"} {
		c := buildCell(t, f, layout.StyleCompact)
		ex := Network(c.PDN, c.Gate.PDN, c.Gate.Inputs, alignedTubes(c.PDN))
		got := ex.Conduct("OUT", "GND", c.Gate.Inputs)
		want := c.Gate.PDN.Conduct("OUT", "GND", c.Gate.Inputs)
		if !got.Equal(want) {
			t.Errorf("%s: extracted conduction differs", f)
		}
	}
}

func TestCellParasitics(t *testing.T) {
	c := buildCell(t, "ABC", layout.StyleCompact)
	p := CellParasitics(c)
	if p.CapF["OUT"] <= 0 {
		t.Fatal("OUT net must have metal capacitance")
	}
	if p.CapF["VDD"] <= 0 || p.CapF["GND"] <= 0 {
		t.Fatal("rail contacts must have capacitance")
	}
	if p.ResOhm["OUT"] <= 0 {
		t.Fatal("OUT net must have resistance")
	}
	// Sanity: single-digit to hundreds of aF, not pF.
	if p.CapF["OUT"] > 1e-15 {
		t.Fatalf("OUT cap = %v F, implausibly large", p.CapF["OUT"])
	}
}
