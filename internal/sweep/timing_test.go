package sweep

import (
	"context"
	"math"
	"testing"

	"cnfetdk/internal/flow"
)

// TestTimingSweepSharedEngine drives a wire-cap × drive grid through one
// shared STA engine and cross-checks each point against an independent
// full flow run of the same request — the incremental cone updates must
// land on the same answers a from-scratch analysis computes.
func TestTimingSweepSharedEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization-backed timing sweep")
	}
	k := testKit(t)
	ctx := context.Background()
	caps := []float64{0.03e-18, 0.06e-18, 0.12e-18}
	rep, err := Timing(ctx, k, TimingSpec{
		Circuit:       "fulladder",
		WireCapsPerNM: caps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tech != "cnfet" || rep.Instances == 0 || rep.Levels == 0 {
		t.Fatalf("report header malformed: %+v", rep)
	}
	if len(rep.Points) != len(caps) {
		t.Fatalf("points = %d, want %d", len(rep.Points), len(caps))
	}
	prev := 0.0
	for i, pt := range rep.Points {
		if pt.WireCapPerNM != caps[i] {
			t.Fatalf("point %d wirecap %g, want %g", i, pt.WireCapPerNM, caps[i])
		}
		if pt.DelayS <= prev {
			t.Fatalf("delay not monotone in wire cap: %+v", rep.Points)
		}
		prev = pt.DelayS
		if pt.Touched == 0 {
			t.Fatalf("point %d touched no instances", i)
		}
		// Cross-check against the flow's own sta stage at this wire model
		// (a full engine rebuild on independently recomputed wire loads).
		res, err := k.Run(ctx, flow.Request{
			Circuit:      "fulladder",
			Techs:        []string{"cnfet"},
			Analyses:     []flow.Analysis{flow.AnalysisSTA},
			WireCapPerNM: pt.WireCapPerNM,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := res.Techs["cnfet"].STA.DelayS
		if math.Abs(pt.DelayS-want) > 1e-18 {
			t.Fatalf("point %d: incremental delay %v, full flow %v", i, pt.DelayS, want)
		}
	}
}

// TestTimingSweepDriveAxis remaps every instance to its 2X variant and
// back: upsized cells must speed the design up, and the walk must return
// to the original answer when the drive returns to the netlist's own.
func TestTimingSweepDriveAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization-backed timing sweep")
	}
	k := testKit(t)
	rep, err := Timing(context.Background(), k, TimingSpec{
		Circuit: "mux2",
		Drives:  []float64{0, 2, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(rep.Points))
	}
	base, up, back := rep.Points[0], rep.Points[1], rep.Points[2]
	if up.DelayS >= base.DelayS {
		t.Fatalf("2X remap did not speed up: base %v, 2X %v", base.DelayS, up.DelayS)
	}
	if back.DelayS != base.DelayS {
		t.Fatalf("drive round-trip diverged: %v vs %v", back.DelayS, base.DelayS)
	}
}

func TestDriveVariant(t *testing.T) {
	cases := []struct {
		cell  string
		drive float64
		want  string
	}{
		{"NAND2_1X", 2, "NAND2_2X"},
		{"INV_4X", 1, "INV_1X"},
		{"NAND2_1X", 0, "NAND2_1X"},
		{"PLAIN", 2, "PLAIN"},
	}
	for _, c := range cases {
		if got := driveVariant(c.cell, c.drive); got != c.want {
			t.Errorf("driveVariant(%q, %g) = %q, want %q", c.cell, c.drive, got, c.want)
		}
	}
}
