package sweep

import (
	"context"
	"fmt"
	"strings"

	"cnfetdk/internal/flow"
	"cnfetdk/internal/liberty"
	"cnfetdk/internal/place"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/sta"
)

// TimingSpec declares an incremental STA sweep over one circuit: a
// wire-capacitance axis and an optional drive-strength axis, driven
// through a single shared sta.Engine. Where a flow-level sweep pays a
// transistor-level transient per point, this sweep pays one netlist
// build, one characterization and one engine construction, then each
// point is a cone repropagation — SetLoad/SetCell plus Reanalyze.
type TimingSpec struct {
	// Circuit names a registry circuit.
	Circuit string `json:"circuit"`
	// Tech selects the technology ("cnfet" default, or "cmos").
	Tech string `json:"tech,omitempty"`
	// Placement selects the CNFET scheme ("rows", "shelves" default);
	// CMOS always places as rows.
	Placement string `json:"placement,omitempty"`
	// WireCapsPerNM sweeps the interconnect model (F per nm of HPWL);
	// empty selects the single kit default.
	WireCapsPerNM []float64 `json:"wire_caps_per_nm,omitempty"`
	// Drives sweeps a uniform drive-strength remap: every instance's
	// cell is retargeted to its same-function variant at that strength
	// (NAND2_1X -> NAND2_2X at drive 2). Instances without a
	// characterized variant keep their original cell. Empty sweeps only
	// the netlist's own strengths (one drive point).
	Drives []float64 `json:"drives,omitempty"`
}

// TimingPoint is one evaluated point of a timing sweep.
type TimingPoint struct {
	WireCapPerNM float64 `json:"wire_cap_per_nm"`
	Drive        float64 `json:"drive,omitempty"`
	DelayS       float64 `json:"delay_s"`
	WorstNet     string  `json:"worst_net"`
	// Touched counts the instances the engine re-evaluated for this
	// point — the incremental cone size (the full instance count on the
	// first point of each drive).
	Touched int `json:"touched"`
}

// TimingReport is the outcome of a Timing sweep: points in axis order
// (drives slowest, wire caps fastest), deterministic at any worker count
// because the shared-engine walk is sequential by construction.
type TimingReport struct {
	Circuit   string        `json:"circuit"`
	Tech      string        `json:"tech"`
	Instances int           `json:"instances"`
	Levels    int           `json:"levels"`
	Points    []TimingPoint `json:"points"`
}

// Timing runs an incremental STA sweep: build the circuit once,
// characterize the cells it (or any swept drive variant) uses once,
// place it once, build one sta.Engine — then walk the (drive × wire-cap)
// grid with SetCell/SetLoad cone updates. The whole N-point sweep costs
// one engine build plus N repropagations instead of N transients.
func Timing(ctx context.Context, kit *flow.Kit, spec TimingSpec) (*TimingReport, error) {
	c, err := flow.LookupCircuit(spec.Circuit)
	if err != nil {
		return nil, err
	}
	techName := spec.Tech
	if techName == "" {
		techName = "cnfet"
	}
	tech, err := flow.ParseTech(techName)
	if err != nil {
		return nil, err
	}
	lib, err := kit.LibFor(tech)
	if err != nil {
		return nil, err
	}
	nl, err := c.Build()
	if err != nil {
		return nil, err
	}

	// Characterize every cell the sweep can touch: the netlist's own
	// cells plus each swept drive variant the library actually has.
	used := map[string]bool{}
	for _, inst := range nl.Instances {
		used[inst.Cell] = true
		for _, d := range spec.Drives {
			if v := driveVariant(inst.Cell, d); v != inst.Cell {
				if _, err := lib.Get(v); err == nil {
					used[v] = true
				}
			}
		}
	}
	model, err := liberty.CharacterizeCtx(ctx, lib, nil, func(n string) bool { return used[n] }, 0)
	if err != nil {
		return nil, err
	}

	scheme := spec.Placement
	if scheme == "" {
		scheme = "shelves"
	}
	if tech == rules.CMOS {
		scheme = "rows"
	}
	var p *place.Placement
	if scheme == "rows" {
		p, err = place.Rows(lib, nl, c.Rows)
	} else {
		p, err = place.Shelves(lib, nl, 0)
	}
	if err != nil {
		return nil, err
	}
	hpwl := p.HPWL(nl)

	wireCaps := spec.WireCapsPerNM
	if len(wireCaps) == 0 {
		wireCaps = []float64{flow.WireCapPerNM}
	}
	drives := spec.Drives
	if len(drives) == 0 {
		drives = []float64{0} // 0 = keep the netlist's own strengths
	}

	eng, err := sta.NewEngine(nl, model, nil)
	if err != nil {
		return nil, err
	}
	rep := &TimingReport{
		Circuit:   spec.Circuit,
		Tech:      strings.ToLower(tech.String()),
		Instances: eng.Instances(),
		Levels:    eng.Levels(),
	}
	for _, d := range drives {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, inst := range nl.Instances {
			target := inst.Cell
			if d > 0 {
				if v := driveVariant(inst.Cell, d); v != inst.Cell {
					if _, ok := model.Cells[v]; ok {
						target = v
					}
				}
			}
			if err := eng.SetCell(inst.Name, target); err != nil {
				return nil, fmt.Errorf("sweep: timing %s: %w", inst.Name, err)
			}
		}
		for _, capPerNM := range wireCaps {
			for net, l := range hpwl {
				if err := eng.SetLoad(net, l*lib.Rules.LambdaNM*capPerNM); err != nil {
					return nil, fmt.Errorf("sweep: timing %s: %w", net, err)
				}
			}
			touched := eng.Reanalyze()
			rep.Points = append(rep.Points, TimingPoint{
				WireCapPerNM: capPerNM,
				Drive:        d,
				DelayS:       eng.Delay(),
				WorstNet:     eng.WorstNet(),
				Touched:      touched,
			})
		}
	}
	return rep, nil
}

// driveVariant retargets a cell name's strength suffix ("NAND2_1X" at
// drive 2 -> "NAND2_2X"); names without a suffix return unchanged.
func driveVariant(cell string, drive float64) string {
	i := strings.LastIndex(cell, "_")
	if i < 0 || drive <= 0 {
		return cell
	}
	var d float64
	if _, err := fmt.Sscanf(cell[i+1:], "%fX", &d); err != nil || d <= 0 {
		return cell
	}
	return fmt.Sprintf("%s_%gX", cell[:i], drive)
}
