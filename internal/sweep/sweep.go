// Package sweep is the batch engine over the design-service API: a
// declarative Spec names axes of the parameter space (circuits,
// technology sets, placement schemes, wire-cap models, Monte Carlo tube
// counts, misalignment angles, CNT variation knobs, seeds) and the
// engine expands it — full cross-product or zipped — into concrete
// flow.Requests, executes them through one shared flow.Kit so the
// singleflight memo cache deduplicates common prefix stages across
// points, and aggregates the outcomes into a Report: per-point metrics,
// min/max/mean/percentile summaries, yield-vs-tube-count curves and
// delay/area/immunity Pareto fronts.
//
// The variation axes (cnt_count_cv, diameter_sigma_nm, alignment_p)
// make whole variation ensembles shard across the fabric like any
// other sweep: each point's delay ensemble runs through one
// plan-sharing spice.Batch inside the flow, so the per-point cost is
// Newton refactorizations, not symbolic replanning.
//
// Results are deterministic at any worker count: points carry their
// expansion index, the report assembles in index order, and
// Report.Canonical strips the execution trace (wall times, cache-hit
// counts — the only fields that legitimately vary run to run), so the
// same Spec produces byte-identical canonical JSON at Workers:1 and
// Workers:8. See DESIGN.md ("Sweep engine").
package sweep

import (
	"fmt"
	"strings"

	"cnfetdk/internal/flow"
)

// DefaultMaxPoints bounds the expansion of a Spec that does not set its
// own MaxPoints: a mistyped axis must not turn into a million-job batch.
const DefaultMaxPoints = 4096

// Axes declares the swept dimensions. Every non-empty axis contributes
// its values; empty axes inherit the Spec's base request. The canonical
// axis order (circuit, techs, placement, wire_cap_per_nm, mc_tubes,
// mc_angle_deg, cnt_count_cv, diameter_sigma_nm, alignment_p, seed)
// fixes the expansion index of every point, so reports are ordered
// identically at any worker count. Each field's comment states its
// canonical position; expansion is row-major over active axes, first
// position varying slowest.
type Axes struct {
	// Circuits sweeps the registry circuit name (canonical position 1).
	// A spec whose base request carries inline Exprs/Netlist must leave
	// this empty.
	Circuits []string `json:"circuits,omitempty"`
	// TechSets sweeps the technology selection (canonical position 2);
	// each element is a comma-separated set, e.g. "cnfet" or
	// "cnfet,cmos".
	TechSets []string `json:"tech_sets,omitempty"`
	// Placements sweeps the CNFET placement scheme ("rows", "shelves")
	// (canonical position 3).
	Placements []string `json:"placements,omitempty"`
	// WireCaps sweeps the interconnect capacitance model (F per nm)
	// (canonical position 4).
	WireCaps []float64 `json:"wire_caps_per_nm,omitempty"`
	// MCTubes sweeps the Monte Carlo sample size of the immunity
	// analysis (tubes per network per cell) (canonical position 5).
	MCTubes []int `json:"mc_tubes,omitempty"`
	// MCAngles sweeps the misalignment angle bound in degrees
	// (canonical position 6).
	MCAngles []float64 `json:"mc_angles_deg,omitempty"`
	// CountCVs sweeps the CNT count coefficient of variation — the
	// growth-quality processing knob of the variation model
	// (canonical position 7). See device.Variations.
	CountCVs []float64 `json:"cnt_count_cv,omitempty"`
	// DiameterSigmas sweeps the per-tube diameter spread in nm
	// (canonical position 8).
	DiameterSigmas []float64 `json:"diameter_sigma_nm,omitempty"`
	// AlignmentPs sweeps the tube misplacement probability — the
	// alignment-yield processing knob (canonical position 9).
	AlignmentPs []float64 `json:"alignment_p,omitempty"`
	// Seeds sweeps the Monte Carlo seed (statistical replication) —
	// last (canonical position 10) so replications of one parameter
	// point are adjacent in the report.
	Seeds []int64 `json:"seeds,omitempty"`
}

// Window selects a contiguous slice of a spec's deterministic
// point-index space: the sweep fabric shards one spec across workers by
// sending each a copy whose window covers its lease. Points keep their
// global expansion index, so shard reports merge back by index.
type Window struct {
	// Offset is the global index of the window's first point.
	Offset int `json:"offset"`
	// Count is how many consecutive points the window covers.
	Count int `json:"count"`
}

// Spec is one serializable batch job: a base request plus the axes to
// sweep over it.
type Spec struct {
	// Name labels the sweep in reports and traces.
	Name string `json:"name,omitempty"`
	// Base is the request template every point starts from; axis values
	// override its fields.
	Base flow.Request `json:"base"`
	// Axes declares the swept dimensions.
	Axes Axes `json:"axes"`
	// Zip pairs the axes element-wise instead of crossing them: all
	// non-empty axes must have equal length L, yielding L points.
	Zip bool `json:"zip,omitempty"`
	// Workers bounds how many points run concurrently (<= 0 selects one
	// per CPU). Each point's own stage graph additionally runs on the
	// kit's worker pool, so total parallelism is the product of the two
	// bounds.
	Workers int `json:"workers,omitempty"`
	// MaxPoints caps the expansion (0 selects DefaultMaxPoints). With a
	// window it caps the window, not the full space: a sharded spec is
	// admitted by its shard size.
	MaxPoints int `json:"max_points,omitempty"`
	// Window restricts expansion to a contiguous index slice (nil = the
	// whole space). Shard specs built by Slice round-trip through JSON
	// with the window intact.
	Window *Window `json:"window,omitempty"`
}

// Slice returns a copy of the spec windowed to count points starting at
// global index offset. Slicing composes from the full space, not the
// receiver's window: s.Slice always addresses s's unwindowed index
// space, so a coordinator shards the client's spec directly.
func (s Spec) Slice(offset, count int) Spec {
	s.Window = &Window{Offset: offset, Count: count}
	return s
}

// Point is one expanded job of a sweep: its deterministic expansion
// index, a stable identity string, the axis values that produced it, and
// the concrete request to run.
type Point struct {
	Index   int
	ID      string
	Params  map[string]any
	Request flow.Request
}

// axis is one active dimension of the expansion: a length and an
// application function that overrides the request and records the value.
type axis struct {
	name  string
	size  int
	apply func(i int, req *flow.Request, params map[string]any) string // returns the ID fragment
}

// axes lists the spec's active dimensions in canonical order.
func (s *Spec) axes() []axis {
	var out []axis
	if n := len(s.Axes.Circuits); n > 0 {
		out = append(out, axis{"circuit", n, func(i int, req *flow.Request, p map[string]any) string {
			v := s.Axes.Circuits[i]
			req.Circuit = v
			p["circuit"] = v
			return "circuit=" + v
		}})
	}
	if n := len(s.Axes.TechSets); n > 0 {
		out = append(out, axis{"techs", n, func(i int, req *flow.Request, p map[string]any) string {
			v := s.Axes.TechSets[i]
			req.Techs = splitTechSet(v)
			p["techs"] = strings.Join(req.Techs, ",")
			return "techs=" + strings.Join(req.Techs, "+")
		}})
	}
	if n := len(s.Axes.Placements); n > 0 {
		out = append(out, axis{"placement", n, func(i int, req *flow.Request, p map[string]any) string {
			v := s.Axes.Placements[i]
			req.Placement = v
			p["placement"] = v
			return "placement=" + v
		}})
	}
	if n := len(s.Axes.WireCaps); n > 0 {
		out = append(out, axis{"wire_cap_per_nm", n, func(i int, req *flow.Request, p map[string]any) string {
			v := s.Axes.WireCaps[i]
			req.WireCapPerNM = v
			p["wire_cap_per_nm"] = v
			return fmt.Sprintf("wirecap=%g", v)
		}})
	}
	if n := len(s.Axes.MCTubes); n > 0 {
		out = append(out, axis{"mc_tubes", n, func(i int, req *flow.Request, p map[string]any) string {
			v := s.Axes.MCTubes[i]
			req.MCTubes = v
			p["mc_tubes"] = v
			return fmt.Sprintf("tubes=%d", v)
		}})
	}
	if n := len(s.Axes.MCAngles); n > 0 {
		out = append(out, axis{"mc_angle_deg", n, func(i int, req *flow.Request, p map[string]any) string {
			v := s.Axes.MCAngles[i]
			req.MCAngleDeg = v
			p["mc_angle_deg"] = v
			return fmt.Sprintf("angle=%g", v)
		}})
	}
	if n := len(s.Axes.CountCVs); n > 0 {
		out = append(out, axis{"cnt_count_cv", n, func(i int, req *flow.Request, p map[string]any) string {
			v := s.Axes.CountCVs[i]
			req.CNTCountCV = v
			p["cnt_count_cv"] = v
			return fmt.Sprintf("countcv=%g", v)
		}})
	}
	if n := len(s.Axes.DiameterSigmas); n > 0 {
		out = append(out, axis{"diameter_sigma_nm", n, func(i int, req *flow.Request, p map[string]any) string {
			v := s.Axes.DiameterSigmas[i]
			req.DiameterSigmaNM = v
			p["diameter_sigma_nm"] = v
			return fmt.Sprintf("diasigma=%g", v)
		}})
	}
	if n := len(s.Axes.AlignmentPs); n > 0 {
		out = append(out, axis{"alignment_p", n, func(i int, req *flow.Request, p map[string]any) string {
			v := s.Axes.AlignmentPs[i]
			req.AlignmentP = v
			p["alignment_p"] = v
			return fmt.Sprintf("alignp=%g", v)
		}})
	}
	if n := len(s.Axes.Seeds); n > 0 {
		out = append(out, axis{"seed", n, func(i int, req *flow.Request, p map[string]any) string {
			v := s.Axes.Seeds[i]
			req.Seed = v
			p["seed"] = v
			return fmt.Sprintf("seed=%d", v)
		}})
	}
	return out
}

// splitTechSet parses one TechSets element ("cnfet,cmos") into the
// request's technology list.
func splitTechSet(v string) []string {
	parts := strings.Split(v, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// FullPoints reports the size of the spec's whole index space, ignoring
// any window (0 alongside the error for invalid zip lengths).
func (s *Spec) FullPoints() (int, error) {
	axes := s.axes()
	if len(axes) == 0 {
		return 1, nil
	}
	if s.Zip {
		n := axes[0].size
		for _, a := range axes[1:] {
			if a.size != n {
				return 0, fmt.Errorf("sweep: zipped axes need equal lengths: %s has %d, %s has %d",
					axes[0].name, n, a.name, a.size)
			}
		}
		return n, nil
	}
	n := 1
	for _, a := range axes {
		n *= a.size
	}
	return n, nil
}

// NumPoints reports how many points the spec expands to without
// materializing them: the window's size when one is set, the whole
// space otherwise (0 alongside the error for invalid zip lengths or a
// window outside the space).
func (s *Spec) NumPoints() (int, error) {
	n, err := s.FullPoints()
	if err != nil {
		return 0, err
	}
	if w := s.Window; w != nil {
		if w.Offset < 0 || w.Count < 0 || w.Offset+w.Count > n {
			return 0, fmt.Errorf("sweep: window [%d,%d) outside the %d-point space", w.Offset, w.Offset+w.Count, n)
		}
		return w.Count, nil
	}
	return n, nil
}

// Expand materializes and validates the spec's points in canonical
// order. Every point's request passes flow validation (unknown circuit,
// tech, placement or analysis names fail fast here, before anything
// runs), and the expansion is capped at MaxPoints. A windowed spec
// expands only its slice — points keep their global index, so
// concatenating the expansions of a partition of windows reproduces the
// unwindowed expansion exactly.
func (s *Spec) Expand() ([]Point, error) {
	n, err := s.NumPoints()
	if err != nil {
		return nil, err
	}
	max := s.MaxPoints
	if max <= 0 {
		max = DefaultMaxPoints
	}
	if n > max {
		return nil, fmt.Errorf("sweep: spec expands to %d points, over the %d-point cap", n, max)
	}
	lo := 0
	if s.Window != nil {
		lo = s.Window.Offset
	}
	axes := s.axes()
	points := make([]Point, 0, n)
	for idx := lo; idx < lo+n; idx++ {
		req := s.Base
		params := map[string]any{}
		var idParts []string
		if s.Zip {
			for _, a := range axes {
				idParts = append(idParts, a.apply(idx, &req, params))
			}
		} else {
			// Row-major mixed radix: the first (canonical) axis varies
			// slowest, so the report reads like nested loops.
			rem := idx
			for k := len(axes) - 1; k >= 0; k-- {
				i := rem % axes[k].size
				rem /= axes[k].size
				frag := axes[k].apply(i, &req, params)
				idParts = append([]string{frag}, idParts...)
			}
		}
		// Space-joined so IDs stay CSV-safe (report.CSV does not quote).
		id := strings.Join(idParts, " ")
		if id == "" {
			id = "point0"
		}
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: point %q: %w", id, err)
		}
		points = append(points, Point{Index: idx, ID: id, Params: params, Request: req})
	}
	return points, nil
}

// Validate reports whether the spec is well-formed without running it.
func (s *Spec) Validate() error {
	_, err := s.Expand()
	return err
}
