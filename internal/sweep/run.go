package sweep

import (
	"context"
	"errors"
	"sync"
	"time"

	"cnfetdk/internal/fault"
	"cnfetdk/internal/flow"
	"cnfetdk/internal/pipeline"
)

// Options tunes one sweep run.
type Options struct {
	// OnPoint, when set, receives every point result as it completes
	// (completion order, not index order — the daemon streams these as
	// NDJSON). Calls are serialized; the callback needs no locking.
	OnPoint func(PointResult)
	// Progress, when set, is updated as points complete so a concurrent
	// poller (the daemon's GET /v1/sweeps/{id}) can report liveness.
	Progress *pipeline.Progress
}

// Option is a functional sweep-run option.
type Option func(*Options)

// OnPoint streams completed points to fn (serialized calls, completion
// order).
func OnPoint(fn func(PointResult)) Option { return func(o *Options) { o.OnPoint = fn } }

// WithProgress attaches live progress counters to the run.
func WithProgress(p *pipeline.Progress) Option { return func(o *Options) { o.Progress = p } }

// Kit wraps a flow.Kit with the batch surface, mirroring the single-job
// flow API: sweep.For(kit).RunSweep(ctx, spec) is the batch analogue of
// kit.Run(ctx, request). (The method lives here rather than on flow.Kit
// itself because flow cannot import sweep without a cycle.)
type Kit struct {
	Flow *flow.Kit
}

// For wraps a flow kit for sweeping.
func For(k *flow.Kit) Kit { return Kit{Flow: k} }

// RunSweep expands the spec and executes it on the wrapped kit.
func (k Kit) RunSweep(ctx context.Context, spec Spec, opts ...Option) (*Report, error) {
	return Run(ctx, k.Flow, spec, opts...)
}

// Run expands spec into concrete requests and executes them through kit
// with bounded point-level fan-out (spec.Workers; each point's stage
// graph additionally fans out on the kit's own pool). All points share
// the kit's singleflight memo cache, so points with a common prefix
// (same circuit and placement, different Monte Carlo parameters, say)
// compute the shared stages once; the report's Trace counts the stage
// cache hits this sharing produced.
//
// A point that fails with a request-shaped error is recorded in its
// PointResult and the sweep continues; ctx cancellation aborts the whole
// sweep with the context error. In-flight points run to completion and
// their stage results stay cached, so rerunning the same spec resumes
// from the cached points rather than restarting.
func Run(ctx context.Context, kit *flow.Kit, spec Spec, opts ...Option) (*Report, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	points, err := spec.Expand()
	if err != nil {
		return nil, err
	}

	var mu sync.Mutex // serializes OnPoint
	t0 := time.Now()
	entriesBefore := kit.CacheLen()
	o.Progress.SetTotal(len(points))
	results, err := pipeline.MapCtx(ctx, spec.Workers, points, func(i int, pt Point) (PointResult, error) {
		p0 := time.Now()
		pr := PointResult{Index: pt.Index, ID: pt.ID, Params: pt.Params}
		res, rerr := kit.Run(ctx, pt.Request)
		switch {
		case rerr == nil:
			for _, st := range res.Stages {
				pr.TotalStages++
				if st.Cached {
					pr.CachedStages++
				}
			}
			// Per-stage wall times and cache flags are execution trace,
			// not sweep outcome; the counts above keep the sharing
			// evidence without breaking report determinism.
			res.Stages = nil
			pr.Result = res
		case errors.Is(rerr, context.Canceled) || errors.Is(rerr, context.DeadlineExceeded):
			// Abort the sweep: completed points stay cached for a rerun.
			return pr, rerr
		case errors.Is(rerr, fault.ErrInjected) || errors.Is(rerr, pipeline.ErrPanic) || errors.Is(rerr, pipeline.ErrStageTimeout):
			// Infrastructure failure (injected fault, stage panic,
			// watchdog kill), not a property of the point: fail the run
			// loudly so the fabric retries the shard elsewhere instead of
			// folding a transient machine problem into report data.
			return pr, rerr
		default:
			pr.Error = rerr.Error()
		}
		pr.Millis = float64(time.Since(p0).Microseconds()) / 1000
		o.Progress.ItemDone(pr.Error != "", pr.CachedStages, pr.TotalStages)
		if o.OnPoint != nil {
			mu.Lock()
			o.OnPoint(pr)
			mu.Unlock()
		}
		return pr, nil
	})
	if err != nil {
		return nil, err
	}

	rep := buildReport(spec, results)
	trace := &RunTrace{
		WallMillis:         float64(time.Since(t0).Microseconds()) / 1000,
		Workers:            spec.Workers,
		CacheEntriesBefore: entriesBefore,
		CacheEntriesAfter:  kit.CacheLen(),
	}
	for _, pr := range results {
		trace.CacheHitStages += pr.CachedStages
		trace.TotalStages += pr.TotalStages
	}
	rep.Trace = trace
	return rep, nil
}

// Points is the engine core under Run, exported for sweeps whose points
// are not flow.Requests (the fo4sweep CLI drives its device-level CNT
// axis through it): a bounded deterministic fan-out — results assemble
// in input-index order at any worker count — with cooperative
// cancellation and live progress counting. A point that counts its own
// cached stages should update prog itself; here each completion is
// recorded as one opaque item.
func Points[P, R any](ctx context.Context, workers int, prog *pipeline.Progress, pts []P, fn func(int, P) (R, error)) ([]R, error) {
	prog.SetTotal(len(pts))
	return pipeline.MapCtx(ctx, workers, pts, func(i int, p P) (R, error) {
		r, err := fn(i, p)
		prog.ItemDone(err != nil, 0, 0)
		return r, err
	})
}
