package sweep

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"cnfetdk/internal/flow"
	"cnfetdk/internal/pipeline"
)

var (
	kitOnce sync.Once
	kitVal  *flow.Kit
	kitErr  error
)

func testKit(t testing.TB) *flow.Kit {
	t.Helper()
	kitOnce.Do(func() { kitVal, kitErr = flow.New(context.Background()) })
	if kitErr != nil {
		t.Fatal(kitErr)
	}
	return kitVal
}

func TestExpandCrossProduct(t *testing.T) {
	spec := Spec{
		Base: flow.Request{Analyses: []flow.Analysis{flow.AnalysisArea}},
		Axes: Axes{
			Circuits:   []string{"mux2", "dec2"},
			TechSets:   []string{"cnfet", "cnfet,cmos"},
			Placements: []string{"rows", "shelves"},
		},
	}
	pts, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("expanded %d points, want 8", len(pts))
	}
	// Canonical order: circuit varies slowest, placement fastest.
	want0 := "circuit=mux2 techs=cnfet placement=rows"
	if pts[0].ID != want0 {
		t.Errorf("point 0 id = %q, want %q", pts[0].ID, want0)
	}
	if pts[1].ID != "circuit=mux2 techs=cnfet placement=shelves" {
		t.Errorf("point 1 id = %q", pts[1].ID)
	}
	last := pts[7]
	if last.Request.Circuit != "dec2" || last.Request.Placement != "shelves" || len(last.Request.Techs) != 2 {
		t.Errorf("last point request = %+v", last.Request)
	}
	if last.Params["circuit"] != "dec2" || last.Params["techs"] != "cnfet,cmos" {
		t.Errorf("last point params = %v", last.Params)
	}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d carries index %d", i, p.Index)
		}
	}
}

func TestExpandZip(t *testing.T) {
	spec := Spec{
		Base: flow.Request{Circuit: "mux2", Techs: []string{"cnfet"}},
		Axes: Axes{
			MCTubes: []int{16, 32, 64},
			Seeds:   []int64{1, 2, 3},
		},
		Zip: true,
	}
	pts, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("zipped to %d points, want 3", len(pts))
	}
	if pts[1].Request.MCTubes != 32 || pts[1].Request.Seed != 2 {
		t.Errorf("zip pairing broken: %+v", pts[1].Request)
	}

	spec.Axes.Seeds = []int64{1, 2}
	if _, err := spec.Expand(); err == nil {
		t.Fatal("mismatched zip lengths must fail")
	}
}

func TestExpandValidatesAndCaps(t *testing.T) {
	bad := Spec{Base: flow.Request{}, Axes: Axes{Circuits: []string{"nonesuch"}}}
	if _, err := bad.Expand(); !errors.Is(err, flow.ErrUnknownCircuit) {
		t.Fatalf("unknown circuit error = %v, want ErrUnknownCircuit", err)
	}
	huge := Spec{
		Base:      flow.Request{Circuit: "mux2"},
		Axes:      Axes{Seeds: []int64{1, 2, 3, 4}},
		MaxPoints: 3,
	}
	if _, err := huge.Expand(); err == nil {
		t.Fatal("over-cap expansion must fail")
	}
	empty := Spec{Base: flow.Request{Circuit: "mux2"}}
	pts, err := empty.Expand()
	if err != nil || len(pts) != 1 {
		t.Fatalf("axis-free spec = %d points (%v), want exactly the base request", len(pts), err)
	}
}

// acceptanceSpec is the 3-axis sweep of the acceptance criteria: 2
// circuits x 3 tube counts x 2 placement schemes x 2 seeds = 24 points.
func acceptanceSpec(workers int) Spec {
	return Spec{
		Name: "acceptance",
		Base: flow.Request{
			Techs:    []string{"cnfet"},
			Analyses: []flow.Analysis{flow.AnalysisArea, flow.AnalysisImmunity},
		},
		Axes: Axes{
			Circuits:   []string{"mux2", "dec2"},
			MCTubes:    []int{16, 32, 48},
			Placements: []string{"rows", "shelves"},
			Seeds:      []int64{1, 2},
		},
		Workers: workers,
	}
}

func TestRunSweepAggregates(t *testing.T) {
	kit := testKit(t)
	rep, err := For(kit).RunSweep(context.Background(), acceptanceSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 24 {
		t.Fatalf("%d points, want 24", len(rep.Points))
	}
	if rep.Failed != 0 {
		t.Fatalf("%d failed points: %+v", rep.Failed, rep.Points)
	}
	for i, pr := range rep.Points {
		if pr.Index != i {
			t.Fatalf("point %d reported index %d (ordering broken)", i, pr.Index)
		}
		if pr.Result == nil || pr.Result.Techs["cnfet"] == nil {
			t.Fatalf("point %s lost its result", pr.ID)
		}
		if pr.Result.Stages != nil {
			t.Fatalf("point %s leaked volatile stage traces", pr.ID)
		}
		if pr.Result.Techs["cnfet"].Immunity == nil {
			t.Fatalf("point %s lost its immunity analysis", pr.ID)
		}
	}
	if len(rep.YieldVsTubes) != 3 {
		t.Fatalf("yield curve has %d entries, want one per tube count: %+v", len(rep.YieldVsTubes), rep.YieldVsTubes)
	}
	for i, y := range rep.YieldVsTubes {
		if y.Points != 8 {
			t.Errorf("yield point %d covers %d points, want 8", i, y.Points)
		}
		if y.Yield != 1-y.MeanFailRate {
			t.Errorf("yield point %d inconsistent: %+v", i, y)
		}
	}
	if _, ok := rep.Summary["cnfet/area_lam2"]; !ok {
		t.Fatalf("summary misses cnfet/area_lam2: %v", rep.Summary)
	}
	if s := rep.Summary["cnfet/area_lam2"]; s.Count != 24 || s.Min <= 0 || s.Min > s.P50 || s.P50 > s.P90 || s.P90 > s.Max {
		t.Fatalf("area summary malformed: %+v", s)
	}
	// The shared kit cache must deduplicate common prefix stages: each
	// circuit's netlist builds once (not 12x) and each (circuit,
	// placement) places once (not 6x), so well over half the stage
	// executions are cache hits — the speedup over issuing the same
	// points as independent cold runs.
	tr := rep.Trace
	if tr == nil || tr.TotalStages == 0 {
		t.Fatal("missing run trace")
	}
	if tr.CacheHitStages*2 < tr.TotalStages {
		t.Fatalf("cache sharing too weak: %d/%d stages cached", tr.CacheHitStages, tr.TotalStages)
	}

	// A rerun of the same spec resumes entirely from cache.
	rep2, err := Run(context.Background(), kit, acceptanceSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep2.Points {
		if pr.CachedStages != pr.TotalStages || pr.TotalStages == 0 {
			t.Fatalf("rerun point %s not fully cached: %d/%d", pr.ID, pr.CachedStages, pr.TotalStages)
		}
	}
}

// TestRunSweepDeterministic is the -race determinism contract: the same
// spec at Workers:1 and Workers:8 yields byte-identical canonical JSON.
func TestRunSweepDeterministic(t *testing.T) {
	kit := testKit(t)
	rep1, err := Run(context.Background(), kit, acceptanceSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	rep8, err := Run(context.Background(), kit, acceptanceSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	j1, err := rep1.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	j8, err := rep8.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// The two specs differ only in Workers, which Canonical strips as
	// execution configuration — the bytes must match with no patching.
	if !bytes.Equal(j1, j8) {
		t.Fatalf("reports diverge across worker counts:\n%s\nvs\n%s", j1, j8)
	}
}

func TestRunSweepRecordsPointErrors(t *testing.T) {
	kit := testKit(t)
	// The immunity analysis demands the cnfet technology: the cmos-only
	// point fails while its sibling completes.
	spec := Spec{
		Base: flow.Request{
			Circuit:  "mux2",
			Analyses: []flow.Analysis{flow.AnalysisArea, flow.AnalysisImmunity},
		},
		Axes: Axes{TechSets: []string{"cnfet", "cmos"}},
	}
	rep, err := Run(context.Background(), kit, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Fatalf("failed = %d, want 1: %+v", rep.Failed, rep.Points)
	}
	if rep.Points[0].Error != "" || rep.Points[1].Error == "" {
		t.Fatalf("wrong point failed: %+v", rep.Points)
	}
}

func TestRunSweepCancellationResumes(t *testing.T) {
	kit := testKit(t)
	spec := Spec{
		Base: flow.Request{Techs: []string{"cnfet"}, Analyses: []flow.Analysis{flow.AnalysisArea}},
		Axes: Axes{
			Circuits: []string{"parity4", "aoichain4"},
			MCAngles: []float64{5, 10, 15}, // no-op for area, but fans the axis out
		},
		Workers: 1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	var completed int
	_, err := Run(ctx, kit, spec, OnPoint(func(pr PointResult) {
		completed++
		cancel() // first completion cancels the sweep
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep error = %v, want context.Canceled", err)
	}
	if completed == 0 {
		t.Fatal("cancellation fired before any point completed")
	}

	// The kit cache holds only complete successful stages, so the rerun
	// resumes: the previously completed points are fully cached.
	rep, err := Run(context.Background(), kit, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || len(rep.Points) != 6 {
		t.Fatalf("rerun failed=%d points=%d", rep.Failed, len(rep.Points))
	}
	if rep.Trace.CacheHitStages == 0 {
		t.Fatal("rerun saw no cached stages — cancelled run's completed work was lost")
	}
}

func TestRunSweepProgressAndStreaming(t *testing.T) {
	kit := testKit(t)
	var prog pipeline.Progress
	var streamed []PointResult
	spec := Spec{
		Base: flow.Request{Techs: []string{"cnfet"}, Analyses: []flow.Analysis{flow.AnalysisArea}},
		Axes: Axes{Circuits: []string{"mux2", "mux4", "dec2"}},
	}
	rep, err := Run(context.Background(), kit, spec, WithProgress(&prog),
		OnPoint(func(pr PointResult) { streamed = append(streamed, pr) }))
	if err != nil {
		t.Fatal(err)
	}
	snap := prog.Snapshot()
	if snap.Total != 3 || snap.Done != 3 || snap.Failed != 0 {
		t.Fatalf("progress = %+v", snap)
	}
	if snap.TotalStages == 0 {
		t.Fatal("progress lost stage counters")
	}
	if len(streamed) != len(rep.Points) {
		t.Fatalf("streamed %d points, report has %d", len(streamed), len(rep.Points))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.P50 != 2.5 {
		t.Errorf("p50 = %v, want 2.5", s.P50)
	}
	if math.Abs(s.P90-3.7) > 1e-9 {
		t.Errorf("p90 = %v, want 3.7", s.P90)
	}
	if z := Summarize(nil); z.Count != 0 || z.Min != 0 {
		t.Errorf("empty stats = %+v", z)
	}
}

func TestParetoFront(t *testing.T) {
	mk := func(idx int, area, delay, fail float64) PointResult {
		tr := &flow.TechResult{Tech: "cnfet", AreaLam2: area, DelayS: delay}
		if fail > 0 {
			tr.Immunity = &flow.ImmunityResult{MCTubes: 100, MCFailRate: fail}
		}
		return PointResult{
			Index:  idx,
			Result: &flow.Result{Techs: map[string]*flow.TechResult{"cnfet": tr}},
		}
	}
	points := []PointResult{
		mk(0, 100, 5, 0),   // on the front (best delay)
		mk(1, 80, 7, 0),    // on the front (best area)
		mk(2, 120, 6, 0),   // dominated by 0
		mk(3, 100, 5, 0.1), // dominated by 0 (same area/delay, worse fail rate)
	}
	front := paretoFront(points)
	if len(front) != 2 {
		t.Fatalf("front = %+v, want points 1 and 0", front)
	}
	if front[0].Index != 1 || front[1].Index != 0 {
		t.Fatalf("front order = %+v, want area-ascending [1, 0]", front)
	}
}
