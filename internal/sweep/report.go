package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"cnfetdk/internal/flow"
)

// PointResult is the outcome of one expanded point: its deterministic
// identity, the flow result (stage traces stripped — their cached/timing
// flags are execution detail, summarized into the counters below), or
// the error that failed it. Millis/CachedStages/TotalStages are
// execution trace: legitimately different run to run, and zeroed by
// Report.Canonical.
type PointResult struct {
	Index  int            `json:"index"`
	ID     string         `json:"id"`
	Params map[string]any `json:"params,omitempty"`

	Result *flow.Result `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`

	Millis       float64 `json:"ms,omitempty"`
	CachedStages int     `json:"cached_stages,omitempty"`
	TotalStages  int     `json:"total_stages,omitempty"`
}

// Stats summarizes one metric over the sweep's points.
type Stats struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
}

// Summarize computes Stats over a series (empty input yields zero Stats).
func Summarize(values []float64) Stats {
	if len(values) == 0 {
		return Stats{}
	}
	s := Stats{Count: len(values), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for _, v := range sorted {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(sorted))
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	return s
}

// quantile linearly interpolates the q-quantile of a sorted series.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// YieldPoint is one point of the yield-vs-tube-count curve: the Monte
// Carlo failure rate of the immunity analysis averaged over every sweep
// point that sampled with that tube count.
type YieldPoint struct {
	MCTubes      int     `json:"mc_tubes"`
	Points       int     `json:"points"`
	MeanFailRate float64 `json:"mean_fail_rate"`
	Yield        float64 `json:"yield"`
}

// ParetoPoint is one non-dominated point of the delay/area/immunity
// front (minimizing all three; fail rate is 0 when the point ran no
// Monte Carlo sample).
type ParetoPoint struct {
	Index    int     `json:"index"`
	ID       string  `json:"id"`
	Tech     string  `json:"tech"`
	AreaLam2 float64 `json:"area_lam2"`
	DelayS   float64 `json:"delay_s"`
	FailRate float64 `json:"fail_rate,omitempty"`
}

// RunTrace is the execution record of one sweep run — wall time and the
// cache-sharing evidence. It is the volatile part of a Report: two runs
// of the same spec legitimately differ here (and only here), so
// Canonical strips it.
type RunTrace struct {
	WallMillis         float64 `json:"wall_ms"`
	Workers            int     `json:"workers,omitempty"`
	CacheHitStages     int     `json:"cache_hit_stages"`
	TotalStages        int     `json:"total_stages"`
	CacheEntriesBefore int     `json:"cache_entries_before"`
	CacheEntriesAfter  int     `json:"cache_entries_after"`

	// Fabric execution detail, set when a coordinator merged the report
	// from shards (internal/fabric).
	Leases        int `json:"leases,omitempty"`
	LeaseRetries  int `json:"lease_retries,omitempty"`
	FabricWorkers int `json:"fabric_workers,omitempty"`
}

// Report is the aggregated outcome of one sweep: every point in
// expansion-index order plus derived summaries, curves and fronts.
type Report struct {
	Name   string        `json:"name,omitempty"`
	Spec   Spec          `json:"spec"`
	Points []PointResult `json:"points"`
	Failed int           `json:"failed,omitempty"`
	// Partial marks a salvaged report assembled from an incomplete point
	// set (AssemblePartial): summaries and fronts cover only the points
	// present, and the report must never be byte-compared against a full
	// run. The flag survives Canonical() so such a comparison fails loudly.
	Partial bool `json:"partial,omitempty"`

	// Summary maps "<tech>/<metric>" (and "gain/<metric>") to its
	// statistics over the points that produced it.
	Summary map[string]Stats `json:"summary,omitempty"`
	// YieldVsTubes is the yield curve over the mc_tubes axis.
	YieldVsTubes []YieldPoint `json:"yield_vs_tubes,omitempty"`
	// Pareto is the delay/area/immunity front over the points that
	// measured both area and delay.
	Pareto []ParetoPoint `json:"pareto,omitempty"`

	Trace *RunTrace `json:"trace,omitempty"`
}

// Canonical returns a copy with the execution trace stripped — including
// the echoed Spec.Workers, which is execution configuration, not
// outcome: the remaining fields are deterministic for a given spec at
// any worker count, so canonical reports are byte-comparable.
func (r *Report) Canonical() *Report {
	c := *r
	c.Trace = nil
	c.Spec.Workers = 0
	c.Points = make([]PointResult, len(r.Points))
	for i, p := range r.Points {
		p.Millis, p.CachedStages, p.TotalStages = 0, 0, 0
		c.Points[i] = p
	}
	return &c
}

// CanonicalJSON marshals the canonical report with stable indentation.
func (r *Report) CanonicalJSON() ([]byte, error) {
	return json.MarshalIndent(r.Canonical(), "", "  ")
}

// Assemble builds the Report for spec from externally-executed point
// results — the sweep fabric's merge step: shard reports contribute
// their points (global indices intact), Assemble checks the set covers
// spec's whole index space exactly once, orders it, and derives the
// same summaries, curves and fronts Run would have. Because every
// derived field is a pure function of (spec, ordered points), the
// assembled report's Canonical bytes are identical to a single-process
// Run of the same spec, regardless of how the points were partitioned
// or which worker computed each one. The caller's spec must be the
// unsharded original (no window). Trace is left nil.
func Assemble(spec Spec, points []PointResult) (*Report, error) {
	if spec.Window != nil {
		return nil, fmt.Errorf("sweep: assemble wants the unsharded spec, got a window at offset %d", spec.Window.Offset)
	}
	n, err := spec.NumPoints()
	if err != nil {
		return nil, err
	}
	if len(points) != n {
		return nil, fmt.Errorf("sweep: assemble got %d points for a %d-point spec", len(points), n)
	}
	ordered := make([]PointResult, n)
	seen := make([]bool, n)
	for _, pr := range points {
		if pr.Index < 0 || pr.Index >= n {
			return nil, fmt.Errorf("sweep: assemble point index %d outside the %d-point space", pr.Index, n)
		}
		if seen[pr.Index] {
			return nil, fmt.Errorf("sweep: assemble got point index %d twice", pr.Index)
		}
		seen[pr.Index] = true
		ordered[pr.Index] = pr
	}
	return buildReport(spec, ordered), nil
}

// AssemblePartial is Assemble's salvage variant: it builds a best-effort
// Report from however many points completed before a sweep failed —
// bounds- and duplicate-checked against the spec's index space, ordered
// by global index, with summaries, curves and fronts derived from just
// the points present. The result carries Partial=true and is for
// triage, not comparison: a salvaged report is not canonical.
func AssemblePartial(spec Spec, points []PointResult) (*Report, error) {
	if spec.Window != nil {
		return nil, fmt.Errorf("sweep: assemble wants the unsharded spec, got a window at offset %d", spec.Window.Offset)
	}
	n, err := spec.NumPoints()
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool, len(points))
	ordered := make([]PointResult, 0, len(points))
	for _, pr := range points {
		if pr.Index < 0 || pr.Index >= n {
			return nil, fmt.Errorf("sweep: assemble point index %d outside the %d-point space", pr.Index, n)
		}
		if seen[pr.Index] {
			return nil, fmt.Errorf("sweep: assemble got point index %d twice", pr.Index)
		}
		seen[pr.Index] = true
		ordered = append(ordered, pr)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Index < ordered[j].Index })
	rep := buildReport(spec, ordered)
	rep.Partial = true
	return rep, nil
}

// Metrics flattens the point's scalar outcomes into "<tech>/<metric>"
// (and "gain/<metric>") keys — the view the summary statistics, the CSV
// export and downstream tooling share. Zero-valued analyses that did not
// run are absent; a failed or empty point yields nil.
func (p *PointResult) Metrics() map[string]float64 {
	if p.Result == nil {
		return nil
	}
	m := map[string]float64{}
	for tn, tr := range p.Result.Techs {
		add := func(metric string, v float64) {
			if v != 0 {
				m[tn+"/"+metric] = v
			}
		}
		add("area_lam2", tr.AreaLam2)
		add("utilization", tr.Utilization)
		add("delay_s", tr.DelayS)
		add("energy_j", tr.EnergyJ)
		if vd := tr.VarDelay; vd != nil {
			add("var_delay_mean_s", vd.MeanS)
			add("var_delay_sigma_s", vd.SigmaS)
		}
		if im := tr.Immunity; im != nil {
			m[tn+"/violations"] = float64(im.Violations)
			if im.MCTubes > 0 {
				m[tn+"/mc_fail_rate"] = im.MCFailRate
			}
			if vy := im.Variation; vy != nil {
				m[tn+"/functional_yield"] = vy.FunctionalYield
				m[tn+"/count_yield"] = vy.CountYield
				m[tn+"/align_yield"] = vy.AlignYield
			}
		}
	}
	for g, v := range p.Result.Gains {
		m["gain/"+g] = v
	}
	return m
}

// buildReport aggregates completed points into a Report (Trace is the
// caller's concern).
func buildReport(spec Spec, points []PointResult) *Report {
	rep := &Report{Name: spec.Name, Spec: spec, Points: points}
	metrics := map[string][]float64{}
	type yieldAcc struct {
		points int
		sum    float64
	}
	yields := map[int]*yieldAcc{}

	for _, pr := range points {
		if pr.Error != "" {
			rep.Failed++
			continue
		}
		pm := pr.Metrics()
		names := make([]string, 0, len(pm))
		for name := range pm {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			metrics[name] = append(metrics[name], pm[name])
		}
		if pr.Result == nil {
			continue
		}
		// The curve's x axis is the *requested* per-network sample size
		// (the swept mc_tubes value) — ImmunityResult.MCTubes reports the
		// total checked, which scales with the design's cell count.
		reqTubes := spec.Base.MCTubes
		switch v := pr.Params["mc_tubes"].(type) {
		case int:
			reqTubes = v
		case int64:
			reqTubes = int(v)
		case float64:
			reqTubes = int(v)
		}
		if reqTubes <= 0 {
			continue
		}
		for _, tr := range pr.Result.Techs {
			if im := tr.Immunity; im != nil && im.MCTubes > 0 {
				y := yields[reqTubes]
				if y == nil {
					y = &yieldAcc{}
					yields[reqTubes] = y
				}
				y.points++
				y.sum += im.MCFailRate
			}
		}
	}

	if len(metrics) > 0 {
		rep.Summary = make(map[string]Stats, len(metrics))
		for name, vals := range metrics {
			rep.Summary[name] = Summarize(vals)
		}
	}

	if len(yields) > 0 {
		tubes := make([]int, 0, len(yields))
		for t := range yields {
			tubes = append(tubes, t)
		}
		sort.Ints(tubes)
		for _, t := range tubes {
			y := yields[t]
			mean := y.sum / float64(y.points)
			rep.YieldVsTubes = append(rep.YieldVsTubes, YieldPoint{
				MCTubes: t, Points: y.points, MeanFailRate: mean, Yield: 1 - mean,
			})
		}
	}

	rep.Pareto = paretoFront(points)
	return rep
}

// paretoFront extracts the non-dominated (area, delay, fail-rate) points.
// Each sweep point contributes its CNFET result when present (the paper's
// subject technology), otherwise its single measured technology.
func paretoFront(points []PointResult) []ParetoPoint {
	var cands []ParetoPoint
	for _, pr := range points {
		if pr.Result == nil {
			continue
		}
		tn := "cnfet"
		tr := pr.Result.Techs[tn]
		if tr == nil || tr.AreaLam2 == 0 || tr.DelayS == 0 {
			tn, tr = "", nil
			names := make([]string, 0, len(pr.Result.Techs))
			for n := range pr.Result.Techs {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				if t := pr.Result.Techs[n]; t.AreaLam2 > 0 && t.DelayS > 0 {
					tn, tr = n, t
					break
				}
			}
		}
		if tr == nil {
			continue
		}
		pp := ParetoPoint{Index: pr.Index, ID: pr.ID, Tech: tn, AreaLam2: tr.AreaLam2, DelayS: tr.DelayS}
		if tr.Immunity != nil && tr.Immunity.MCTubes > 0 {
			pp.FailRate = tr.Immunity.MCFailRate
		}
		cands = append(cands, pp)
	}
	var front []ParetoPoint
	for i, p := range cands {
		dominated := false
		for j, q := range cands {
			if i == j {
				continue
			}
			if dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].AreaLam2 != front[j].AreaLam2 {
			return front[i].AreaLam2 < front[j].AreaLam2
		}
		if front[i].DelayS != front[j].DelayS {
			return front[i].DelayS < front[j].DelayS
		}
		return front[i].Index < front[j].Index
	})
	return front
}

// dominates reports whether q is at least as good as p on every
// objective and strictly better on one.
func dominates(q, p ParetoPoint) bool {
	if q.AreaLam2 > p.AreaLam2 || q.DelayS > p.DelayS || q.FailRate > p.FailRate {
		return false
	}
	return q.AreaLam2 < p.AreaLam2 || q.DelayS < p.DelayS || q.FailRate < p.FailRate
}
