package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"cnfetdk/internal/flow"
)

// shardSpec is a 12-point cross product exercising three axes.
func shardSpec() Spec {
	return Spec{
		Name: "shards",
		Base: flow.Request{
			Techs:    []string{"cnfet"},
			Analyses: []flow.Analysis{flow.AnalysisArea, flow.AnalysisImmunity},
			MCTubes:  8,
		},
		Axes: Axes{
			Circuits:   []string{"mux2", "dec2"},
			Placements: []string{"rows", "shelves"},
			Seeds:      []int64{1, 2, 3},
		},
	}
}

// TestSlicePartitionReproducesExpand asserts the fabric's core sharding
// invariant: concatenating the expansions of any partition of windows
// reproduces the unwindowed expansion exactly, global indices included.
func TestSlicePartitionReproducesExpand(t *testing.T) {
	specs := map[string]Spec{
		"cross": shardSpec(),
		"zip": {
			Base: flow.Request{Techs: []string{"cnfet"}, Analyses: []flow.Analysis{flow.AnalysisArea}},
			Axes: Axes{
				Circuits:   []string{"mux2", "dec2", "fulladder"},
				Placements: []string{"rows", "shelves", "rows"},
			},
			Zip: true,
		},
		"single-point": {
			Base: flow.Request{Circuit: "mux2", Techs: []string{"cnfet"}, Analyses: []flow.Analysis{flow.AnalysisArea}},
		},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			full, err := spec.Expand()
			if err != nil {
				t.Fatal(err)
			}
			for _, chunk := range []int{1, 2, 3, 5, len(full)} {
				var got []Point
				for off := 0; off < len(full); off += chunk {
					count := min(chunk, len(full)-off)
					shard := spec.Slice(off, count)
					if n, err := shard.NumPoints(); err != nil || n != count {
						t.Fatalf("chunk %d: shard [%d,%d) NumPoints = %d, %v", chunk, off, off+count, n, err)
					}
					pts, err := shard.Expand()
					if err != nil {
						t.Fatalf("chunk %d: expanding shard at %d: %v", chunk, off, err)
					}
					got = append(got, pts...)
				}
				if !reflect.DeepEqual(got, full) {
					t.Fatalf("chunk %d: concatenated shard expansions differ from the full expansion", chunk)
				}
			}
		})
	}
}

// TestSliceDoesNotMutateReceiver: Slice windows a copy; the original spec
// (and a shard sliced from an already-sliced value) always address the
// full index space.
func TestSliceDoesNotMutateReceiver(t *testing.T) {
	spec := shardSpec()
	shard := spec.Slice(4, 3)
	if spec.Window != nil {
		t.Fatal("Slice mutated the receiver's window")
	}
	if shard.Window == nil || shard.Window.Offset != 4 || shard.Window.Count != 3 {
		t.Fatalf("shard window = %+v", shard.Window)
	}
	// Re-slicing composes from the full space, not the shard's window.
	again := shard.Slice(0, 2)
	pts, err := again.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Index != 0 {
		t.Fatalf("re-sliced shard starts at global index %d, want 0", pts[0].Index)
	}
}

// TestWindowJSONRoundTrip: shard specs serialize with the window intact
// and re-marshal to identical bytes (the fabric ships them over HTTP).
func TestWindowJSONRoundTrip(t *testing.T) {
	shard := shardSpec().Slice(6, 4)
	b1, err := json.Marshal(shard)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b1), `"window":{"offset":6,"count":4}`) {
		t.Fatalf("marshaled shard lacks the window: %s", b1)
	}
	var back Spec
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, shard) {
		t.Fatalf("round-tripped shard differs:\n got %+v\nwant %+v", back, shard)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-marshaled shard bytes differ:\n%s\n%s", b1, b2)
	}
}

func TestWindowBoundsValidation(t *testing.T) {
	spec := shardSpec() // 12 points
	for _, w := range []Window{
		{Offset: -1, Count: 2},
		{Offset: 0, Count: -1},
		{Offset: 10, Count: 3},
		{Offset: 13, Count: 0},
	} {
		s := spec
		s.Window = &w
		if _, err := s.NumPoints(); err == nil {
			t.Errorf("window %+v: NumPoints accepted an out-of-space window", w)
		}
		if _, err := s.Expand(); err == nil {
			t.Errorf("window %+v: Expand accepted an out-of-space window", w)
		}
	}
	// An empty window at the end of the space is legal (a zero-point shard).
	s := spec
	s.Window = &Window{Offset: 12, Count: 0}
	if n, err := s.NumPoints(); err != nil || n != 0 {
		t.Fatalf("empty trailing window: n=%d err=%v", n, err)
	}
}

// TestWindowCapsByShardSize: MaxPoints admits a sharded spec by its
// window size, so small leases of a big sweep pass worker admission.
func TestWindowCapsByShardSize(t *testing.T) {
	spec := shardSpec()
	spec.MaxPoints = 4
	if err := spec.Validate(); err == nil {
		t.Fatal("12-point spec with MaxPoints=4 validated")
	}
	shard := spec.Slice(8, 4)
	if err := shard.Validate(); err != nil {
		t.Fatalf("4-point shard of a capped spec rejected: %v", err)
	}
}

// TestAssembleMatchesRun: merging externally-partitioned point results
// reproduces the single-process report byte for byte, whatever order the
// points arrive in.
func TestAssembleMatchesRun(t *testing.T) {
	kit := testKit(t)
	spec := shardSpec()
	rep, err := Run(context.Background(), kit, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}

	// Deliver the points in a scrambled order, as lease completions would.
	shuffled := make([]PointResult, 0, len(rep.Points))
	for i := len(rep.Points) - 1; i >= 0; i -= 2 {
		shuffled = append(shuffled, rep.Points[i])
	}
	for i := len(rep.Points) - 2; i >= 0; i -= 2 {
		shuffled = append(shuffled, rep.Points[i])
	}
	merged, err := Assemble(spec, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("assembled canonical report differs from Run's:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if merged.Trace != nil {
		t.Fatal("Assemble set a trace; that is the caller's concern")
	}
}

func TestAssembleRejectsBadPointSets(t *testing.T) {
	spec := shardSpec()
	pts, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	results := make([]PointResult, len(pts))
	for i, p := range pts {
		results[i] = PointResult{Index: p.Index, ID: p.ID, Params: p.Params}
	}

	if _, err := Assemble(spec.Slice(0, 4), results[:4]); err == nil {
		t.Error("Assemble accepted a windowed spec")
	}
	if _, err := Assemble(spec, results[:len(results)-1]); err == nil {
		t.Error("Assemble accepted a short point set")
	}
	dup := append([]PointResult(nil), results...)
	dup[3].Index = 5
	if _, err := Assemble(spec, dup); err == nil {
		t.Error("Assemble accepted a duplicate index")
	}
	out := append([]PointResult(nil), results...)
	out[0].Index = len(results)
	if _, err := Assemble(spec, out); err == nil {
		t.Error("Assemble accepted an out-of-space index")
	}
}
