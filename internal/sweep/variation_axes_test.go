package sweep

import (
	"testing"

	"cnfetdk/internal/flow"
)

// TestExpandVariationAxes pins the three variation axes: their place in
// the canonical ordering (after mc_angle_deg, before seed), the request
// fields they drive, the params keys they record, and their ID
// fragments.
func TestExpandVariationAxes(t *testing.T) {
	spec := Spec{
		Base: flow.Request{Circuit: "mux2", Techs: []string{"cnfet"}},
		Axes: Axes{
			CountCVs:       []float64{0.1, 0.3},
			DiameterSigmas: []float64{0.05},
			AlignmentPs:    []float64{0.01, 0.1},
			Seeds:          []int64{1, 2},
		},
	}
	pts, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("expanded %d points, want 2*1*2*2 = 8", len(pts))
	}
	// Canonical order: cnt_count_cv varies slowest of the variation
	// axes, seed fastest overall.
	want0 := "countcv=0.1 diasigma=0.05 alignp=0.01 seed=1"
	if pts[0].ID != want0 {
		t.Errorf("point 0 id = %q, want %q", pts[0].ID, want0)
	}
	if pts[1].ID != "countcv=0.1 diasigma=0.05 alignp=0.01 seed=2" {
		t.Errorf("point 1 id = %q, want seed to vary fastest", pts[1].ID)
	}
	last := pts[7]
	if last.ID != "countcv=0.3 diasigma=0.05 alignp=0.1 seed=2" {
		t.Errorf("last point id = %q", last.ID)
	}
	if r := last.Request; r.CNTCountCV != 0.3 || r.DiameterSigmaNM != 0.05 || r.AlignmentP != 0.1 {
		t.Errorf("last point request variation knobs = %+v", r)
	}
	if p := last.Params; p["cnt_count_cv"] != 0.3 || p["diameter_sigma_nm"] != 0.05 || p["alignment_p"] != 0.1 {
		t.Errorf("last point params = %v", p)
	}
}

// TestExpandVariationAxesValidate ensures invalid variation values are
// rejected at expansion time, before any flow work is spent.
func TestExpandVariationAxesValidate(t *testing.T) {
	for _, axes := range []Axes{
		{CountCVs: []float64{-0.1}},
		{DiameterSigmas: []float64{-1}},
		{AlignmentPs: []float64{2}},
	} {
		spec := Spec{Base: flow.Request{Circuit: "mux2"}, Axes: axes}
		if _, err := spec.Expand(); err == nil {
			t.Errorf("axes %+v expanded without error", axes)
		}
	}
}
