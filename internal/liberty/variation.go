package liberty

import (
	"context"
	"fmt"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/device"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/spice"
)

// AddVariation augments a characterized model with per-arc delay
// statistics under a CNT variation model: every timing arc gets a
// reference-load delay sigma measured by a plan-sharing variation
// ensemble (cells.Ensemble — samples structure-identical transients
// per arc). Write renders the sigmas as Liberty comments next to each
// arc, so downstream tools that do not parse them still read the file,
// while variation-aware flows get the spread alongside the nominal
// table. The arc ensembles fan out across workers (<= 0 selects one
// per CPU); the result is deterministic at any worker count.
func (m *Model) AddVariation(ctx context.Context, lib *cells.Library, v device.Variations, samples int, seed int64, workers int) error {
	if err := v.Validate(); err != nil {
		return fmt.Errorf("liberty: %w", err)
	}
	if v.Zero() {
		return fmt.Errorf("liberty: variation model is zero; nothing to add")
	}

	// One job per arc, in the model's deterministic (sorted cell, arc)
	// order; each job's seed mixes its index so arcs draw decorrelated
	// ensembles while the whole model stays a pure function of seed.
	type arcJob struct {
		cell string
		arc  int
	}
	var jobs []arcJob
	for _, name := range m.cellNames() {
		for i := range m.Cells[name].Arcs {
			jobs = append(jobs, arcJob{cell: name, arc: i})
		}
	}
	sigmas, err := pipeline.MapCtx(ctx, workers, jobs, func(idx int, j arcJob) (float64, error) {
		c, err := lib.Get(j.cell)
		if err != nil {
			return 0, fmt.Errorf("liberty: variation: %w", err)
		}
		arc := &m.Cells[j.cell].Arcs[j.arc]
		delay, _, err := lib.CharacterizeEnsemble(c, arc.Input, m.RefLoadF, v, samples,
			seed+int64(idx)*0x9E3779B9, spice.DefaultOptions())
		if err != nil {
			return 0, fmt.Errorf("liberty: variation %s/%s: %w", j.cell, arc.Input, err)
		}
		return delay.SigmaS, nil
	})
	if err != nil {
		return err
	}
	for i, j := range jobs {
		m.Cells[j.cell].Arcs[j.arc].SigmaRefS = sigmas[i]
	}
	m.Variation = &v
	m.VarSamples = samples
	return nil
}
