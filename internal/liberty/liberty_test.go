package liberty

import (
	"bytes"
	"strings"
	"testing"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/rules"
)

func TestLUTInterp(t *testing.T) {
	l := LUT{LoadsF: []float64{1, 2, 4}, DelaysS: []float64{10, 14, 22}}
	cases := []struct{ load, want float64 }{
		{0.5, 10}, // clamp low
		{1, 10},
		{1.5, 12},
		{3, 18},
		{4, 22},
		{6, 30}, // linear extrapolation: slope 4 per unit
	}
	for _, c := range cases {
		if got := l.Interp(c.load); got != c.want {
			t.Errorf("Interp(%v) = %v, want %v", c.load, got, c.want)
		}
	}
	var empty LUT
	if empty.Interp(5) != 0 {
		t.Fatal("empty LUT should return 0")
	}
}

func TestLibertyFunction(t *testing.T) {
	cases := map[string]string{
		"AB":         "!(A&B)",
		"A+B":        "!(A|B)",
		"AB+C":       "!(A&B|C)",
		"(A+B)C":     "!((A|B)&C)",
		"A'B":        "!(!A&B)",
		"(A+B)(C+D)": "!((A|B)&(C|D))",
	}
	for in, want := range cases {
		if got := libertyFunction(logic.MustParse(in)); got != want {
			t.Errorf("libertyFunction(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestCharacterizeSubsetAndWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("spice characterization")
	}
	lib, err := cells.NewLibrary(rules.CNFET)
	if err != nil {
		t.Fatal(err)
	}
	keep := map[string]bool{"INV_1X": true, "NAND2_1X": true, "AOI21_1X": true}
	m, err := Characterize(lib, nil, func(n string) bool { return keep[n] })
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(m.Cells))
	}
	inv := m.Cells["INV_1X"]
	if inv == nil || len(inv.Arcs) != 1 {
		t.Fatalf("INV model malformed: %+v", inv)
	}
	// Delay must grow monotonically with load.
	tab := inv.Arcs[0].Table
	for i := 1; i < len(tab.DelaysS); i++ {
		if tab.DelaysS[i] <= tab.DelaysS[i-1] {
			t.Fatalf("delay not monotone in load: %v", tab.DelaysS)
		}
	}
	// AOI21 has three arcs (A, B, C).
	if got := len(m.Cells["AOI21_1X"].Arcs); got != 3 {
		t.Fatalf("AOI21 arcs = %d, want 3", got)
	}
	if m.Cells["AOI21_1X"].Function != "!(A&B|C)" {
		t.Fatalf("AOI21 function = %s", m.Cells["AOI21_1X"].Function)
	}

	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"library(cnfetdk_cnfet_65nm)",
		"lu_table_template(delay_vs_load)",
		"lu_table_template(delay_slew_load)",
		"variable_1 : input_net_transition",
		"cell(NAND2_1X)",
		`function : "!(A&B)"`,
		`related_pin : "A"`,
		"cell_rise(delay_slew_load)",
		"rise_transition(delay_slew_load)",
		"capacitance :",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("liberty output missing %q", want)
		}
	}
	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Fatal("unbalanced braces in liberty output")
	}
}

func TestArcLookup(t *testing.T) {
	c := &CellModel{Arcs: []Arc{{Input: "A"}, {Input: "B"}}}
	if c.Arc("B") == nil || c.Arc("Z") != nil {
		t.Fatal("Arc lookup broken")
	}
}
