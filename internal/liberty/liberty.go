// Package liberty characterizes the standard-cell library into NLDM-style
// lookup tables and writes industry-standard Liberty (.lib) files — the
// artifact that lets the CNFET library drop into the conventional
// synthesis flow, which is the point of the paper's Section IV
// ("incorporate minimal changes to the conventional design flow").
package liberty

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/device"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/spice"
)

// LUT is a one-dimensional NLDM table: delay (s) vs output load (F).
type LUT struct {
	LoadsF  []float64
	DelaysS []float64
}

// Interp evaluates the table at a load with linear interpolation and flat
// extrapolation.
func (l LUT) Interp(loadF float64) float64 {
	if len(l.LoadsF) == 0 {
		return 0
	}
	if loadF <= l.LoadsF[0] {
		return l.DelaysS[0]
	}
	for i := 1; i < len(l.LoadsF); i++ {
		if loadF <= l.LoadsF[i] {
			f := (loadF - l.LoadsF[i-1]) / (l.LoadsF[i] - l.LoadsF[i-1])
			return l.DelaysS[i-1] + f*(l.DelaysS[i]-l.DelaysS[i-1])
		}
	}
	// Linear extrapolation from the last segment (loads beyond the
	// characterized range are common at high fanout).
	n := len(l.LoadsF)
	slope := (l.DelaysS[n-1] - l.DelaysS[n-2]) / (l.LoadsF[n-1] - l.LoadsF[n-2])
	return l.DelaysS[n-1] + slope*(loadF-l.LoadsF[n-1])
}

// Surface is a two-dimensional NLDM table over (input slew, output
// load): the arc's delay and output transition time at each grid point.
// Lookups interpolate bilinearly with the LUT's edge policy on both axes
// (flat below the first point, linear extrapolation beyond the last).
type Surface struct {
	SlewsS   []float64
	LoadsF   []float64
	DelayS   [][]float64 // [slew][load]
	OutSlewS [][]float64 // [slew][load]
}

// Delay evaluates the arc delay at an input slew and output load.
func (s *Surface) Delay(slewS, loadF float64) float64 {
	return interp2(s.SlewsS, s.LoadsF, s.DelayS, slewS, loadF)
}

// OutSlew evaluates the output transition time at an input slew and
// output load — the value STA propagates as the next stage's input slew.
func (s *Surface) OutSlew(slewS, loadF float64) float64 {
	return interp2(s.SlewsS, s.LoadsF, s.OutSlewS, slewS, loadF)
}

// bracket locates x on the axis: the segment index and the fractional
// position within it (0 below the first point — flat extrapolation;
// > 1 beyond the last — linear extrapolation from the final segment).
func bracket(xs []float64, x float64) (int, float64) {
	if len(xs) < 2 || x <= xs[0] {
		return 0, 0
	}
	for i := 1; i < len(xs); i++ {
		if x <= xs[i] {
			return i - 1, (x - xs[i-1]) / (xs[i] - xs[i-1])
		}
	}
	n := len(xs)
	return n - 2, (x - xs[n-2]) / (xs[n-1] - xs[n-2])
}

func interp2(xs, ys []float64, z [][]float64, x, y float64) float64 {
	if len(z) == 0 {
		return 0
	}
	i, fx := bracket(xs, x)
	j, fy := bracket(ys, y)
	row := func(r []float64) float64 {
		if len(r) == 0 {
			return 0
		}
		if len(r) < 2 {
			return r[0]
		}
		return r[j] + fy*(r[j+1]-r[j])
	}
	v0 := row(z[i])
	if len(z) < 2 {
		return v0
	}
	return v0 + fx*(row(z[i+1])-v0)
}

// Arc is one characterized timing arc (input pin -> OUT).
type Arc struct {
	Input string
	Table LUT
	// Surface is the full slew-aware NLDM grid (nil on models built
	// without slew characterization — lookups then fall back to Table).
	Surface *Surface
	// SigmaRefS is the delay standard deviation at the reference load
	// under the model's variation ensemble (0 until AddVariation runs);
	// Write emits it as a Liberty comment on the arc.
	SigmaRefS float64
}

// CellModel is one library cell's characterization.
type CellModel struct {
	Name      string
	AreaLam2  float64
	Function  string // Liberty boolean function of OUT
	InputCapF map[string]float64
	Arcs      []Arc
	EnergyJ   float64 // per-cycle switching energy at the reference load
}

// Model is the characterized library.
type Model struct {
	Name     string
	Tech     string
	Cells    map[string]*CellModel
	LoadsF   []float64
	SlewsS   []float64
	RefLoadF float64
	// Variation and VarSamples record the CNT variation model the
	// per-arc sigmas were measured under (nil/0 for a nominal model);
	// set by AddVariation.
	Variation  *device.Variations
	VarSamples int
}

// cellNames returns the model's cell names in sorted order — the
// deterministic iteration order Write and AddVariation share.
func (m *Model) cellNames() []string {
	names := make([]string, 0, len(m.Cells))
	for n := range m.Cells {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultLoads returns the characterization load sweep: multiples of the
// library's reference (FO4-equivalent) load.
func DefaultLoads(ref float64) []float64 {
	return []float64{ref * 0.25, ref * 0.5, ref, ref * 2, ref * 4}
}

// DefaultSlews returns the characterization input-slew sweep. The first
// point is the classic 5 ps testbench edge, so the legacy 1-D table (and
// the energy row) is exactly the grid's first slew row; the later points
// cover the degraded edges deep logic cones actually see.
func DefaultSlews() []float64 {
	return []float64{cells.DefaultSlewS, 20e-12, 60e-12}
}

// Characterize sweeps every cell and timing arc of the library across the
// load points using the transistor-level simulator. cellFilter restricts
// which cells to characterize (nil = all). The per-arc load sweeps — the
// expensive transient simulations — fan out across one worker per CPU;
// the assembled model is deterministic regardless of worker count.
func Characterize(lib *cells.Library, loads []float64, cellFilter func(string) bool) (*Model, error) {
	return CharacterizeWorkers(lib, loads, cellFilter, 0)
}

// CharacterizeWorkers is Characterize with an explicit worker-pool width
// (<= 0 selects one worker per CPU; 1 is the sequential reference path).
func CharacterizeWorkers(lib *cells.Library, loads []float64, cellFilter func(string) bool, workers int) (*Model, error) {
	return CharacterizeCtx(context.Background(), lib, loads, cellFilter, workers)
}

// CharacterizeCtx is CharacterizeWorkers with cooperative cancellation:
// once ctx is cancelled no further arc sweeps are dispatched and the
// characterization returns ctx.Err().
func CharacterizeCtx(ctx context.Context, lib *cells.Library, loads []float64, cellFilter func(string) bool, workers int) (*Model, error) {
	ref := lib.ReferenceLoad()
	if loads == nil {
		loads = DefaultLoads(ref)
	}
	slews := DefaultSlews()
	m := &Model{
		Name:     "cnfetdk_" + strings.ToLower(lib.Tech.String()) + "_65nm",
		Tech:     lib.Tech.String(),
		Cells:    map[string]*CellModel{},
		LoadsF:   loads,
		SlewsS:   slews,
		RefLoadF: ref,
	}

	// One job per timing arc, in deterministic (cell, input) order.
	type arcJob struct {
		cell  string
		input string
		first bool // first input of the cell carries the energy row
	}
	var jobs []arcJob
	for _, name := range lib.Names() {
		if cellFilter != nil && !cellFilter(name) {
			continue
		}
		c := lib.MustGet(name)
		cm := &CellModel{
			Name:      name,
			AreaLam2:  lib.Area(c, layout.Scheme1),
			Function:  libertyFunction(c.Gate.PullDown),
			InputCapF: map[string]float64{},
		}
		for k, in := range c.Inputs() {
			cm.InputCapF[in] = lib.InputCap(c, in)
			jobs = append(jobs, arcJob{cell: name, input: in, first: k == 0})
		}
		m.Cells[name] = cm
	}

	type arcOut struct {
		arc     Arc
		energyJ float64
		hasE    bool
	}
	outs, err := pipeline.MapCtx(ctx, workers, jobs, func(_ int, j arcJob) (arcOut, error) {
		c := lib.MustGet(j.cell)
		out := arcOut{arc: Arc{Input: j.input}}
		// The whole (slew × load) grid runs as one plan-sharing batch:
		// the grid's testbenches are structure-identical, so the symbolic
		// solver work is paid once per arc and each point refactorizes
		// numerically in its own lane.
		grid, err := lib.CharacterizeNLDM(c, j.input, slews, loads, spice.DefaultOptions())
		if err != nil {
			return out, fmt.Errorf("liberty: %s/%s: %w", j.cell, j.input, err)
		}
		sf := &Surface{
			SlewsS:   append([]float64(nil), slews...),
			LoadsF:   append([]float64(nil), loads...),
			DelayS:   make([][]float64, len(slews)),
			OutSlewS: make([][]float64, len(slews)),
		}
		for si, row := range grid {
			sf.DelayS[si] = make([]float64, len(loads))
			sf.OutSlewS[si] = make([]float64, len(loads))
			for li, t := range row {
				sf.DelayS[si][li] = t.DelayS
				sf.OutSlewS[si][li] = t.SlewOutS
			}
		}
		out.arc.Surface = sf
		// The legacy 1-D table is the grid's first slew row (the classic
		// 5 ps testbench edge), keeping single-slew consumers and the
		// energy row byte-identical to the pre-slew characterization.
		out.arc.Table.LoadsF = append([]float64(nil), loads...)
		out.arc.Table.DelaysS = append([]float64(nil), sf.DelayS[0]...)
		for i, t := range grid[0] {
			if loads[i] == ref && j.first {
				out.energyJ = t.EnergyJ
				out.hasE = true
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	// Assemble in job order: arcs land in the same sequence the
	// sequential implementation produced.
	for i, j := range jobs {
		cm := m.Cells[j.cell]
		cm.Arcs = append(cm.Arcs, outs[i].arc)
		if outs[i].hasE {
			cm.EnergyJ = outs[i].energyJ
		}
	}
	return m, nil
}

// libertyFunction renders the cell output function (the complement of the
// pull-down expression) in Liberty syntax: out = !(f) with & | !.
func libertyFunction(f *logic.Expr) string {
	return "!(" + libertyExpr(f) + ")"
}

func libertyExpr(e *logic.Expr) string {
	switch e.Op {
	case logic.OpVar:
		return e.Name
	case logic.OpNot:
		return "!" + libertyExpr(e.Kids[0])
	case logic.OpAnd:
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			s := libertyExpr(k)
			if k.Op == logic.OpOr {
				s = "(" + s + ")"
			}
			parts[i] = s
		}
		return strings.Join(parts, "&")
	case logic.OpOr:
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = libertyExpr(k)
		}
		return strings.Join(parts, "|")
	}
	return "?"
}

// Arc returns the timing arc for an input pin (nil if absent).
func (c *CellModel) Arc(input string) *Arc {
	for i := range c.Arcs {
		if c.Arcs[i].Input == input {
			return &c.Arcs[i]
		}
	}
	return nil
}

// Write emits the model as a Liberty file. Units: 1ps time, 1fF load.
func (m *Model) Write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "library(%s) {\n", m.Name)
	fmt.Fprintf(&b, "  comment : \"CNFET design kit, %s at the 65nm node\";\n", m.Tech)
	fmt.Fprintf(&b, "  time_unit : \"1ps\";\n")
	fmt.Fprintf(&b, "  capacitive_load_unit (1, ff);\n")
	fmt.Fprintf(&b, "  voltage_unit : \"1V\";\n")
	fmt.Fprintf(&b, "  nom_voltage : 1.0;\n")
	fmt.Fprintf(&b, "  lu_table_template(delay_vs_load) {\n")
	fmt.Fprintf(&b, "    variable_1 : total_output_net_capacitance;\n")
	fmt.Fprintf(&b, "    index_1 (\"%s\");\n", joinF(m.LoadsF, 1e15))
	fmt.Fprintf(&b, "  }\n")
	if len(m.SlewsS) > 0 {
		fmt.Fprintf(&b, "  lu_table_template(delay_slew_load) {\n")
		fmt.Fprintf(&b, "    variable_1 : input_net_transition;\n")
		fmt.Fprintf(&b, "    variable_2 : total_output_net_capacitance;\n")
		fmt.Fprintf(&b, "    index_1 (\"%s\");\n", joinF(m.SlewsS, 1e12))
		fmt.Fprintf(&b, "    index_2 (\"%s\");\n", joinF(m.LoadsF, 1e15))
		fmt.Fprintf(&b, "  }\n")
	}
	if v := m.Variation; v != nil {
		fmt.Fprintf(&b, "  /* variation model: cnt_count_cv=%g diameter_sigma_nm=%g alignment_p=%g"+
			" (%d-sample ensembles; per-arc delay sigma at the reference load in the timing comments) */\n",
			v.CountCV, v.DiameterSigmaNM, v.AlignmentP, m.VarSamples)
	}

	for _, n := range m.cellNames() {
		c := m.Cells[n]
		fmt.Fprintf(&b, "  cell(%s) {\n", c.Name)
		fmt.Fprintf(&b, "    area : %.2f;\n", c.AreaLam2)
		ins := make([]string, 0, len(c.InputCapF))
		for in := range c.InputCapF {
			ins = append(ins, in)
		}
		sort.Strings(ins)
		for _, in := range ins {
			fmt.Fprintf(&b, "    pin(%s) {\n", in)
			fmt.Fprintf(&b, "      direction : input;\n")
			fmt.Fprintf(&b, "      capacitance : %.5f;\n", c.InputCapF[in]*1e15)
			fmt.Fprintf(&b, "    }\n")
		}
		fmt.Fprintf(&b, "    pin(OUT) {\n")
		fmt.Fprintf(&b, "      direction : output;\n")
		fmt.Fprintf(&b, "      function : \"%s\";\n", c.Function)
		for _, arc := range c.Arcs {
			fmt.Fprintf(&b, "      timing() {\n")
			fmt.Fprintf(&b, "        related_pin : \"%s\";\n", arc.Input)
			if arc.SigmaRefS > 0 {
				fmt.Fprintf(&b, "        /* delay sigma at reference load: %.4f ps */\n", arc.SigmaRefS*1e12)
			}
			fmt.Fprintf(&b, "        timing_sense : negative_unate;\n")
			if sf := arc.Surface; sf != nil {
				for _, kind := range []string{"cell_rise", "cell_fall"} {
					fmt.Fprintf(&b, "        %s(delay_slew_load) {\n", kind)
					fmt.Fprintf(&b, "          values (%s);\n", joinRows(sf.DelayS, 1e12))
					fmt.Fprintf(&b, "        }\n")
				}
				for _, kind := range []string{"rise_transition", "fall_transition"} {
					fmt.Fprintf(&b, "        %s(delay_slew_load) {\n", kind)
					fmt.Fprintf(&b, "          values (%s);\n", joinRows(sf.OutSlewS, 1e12))
					fmt.Fprintf(&b, "        }\n")
				}
			} else {
				for _, kind := range []string{"cell_rise", "cell_fall"} {
					fmt.Fprintf(&b, "        %s(delay_vs_load) {\n", kind)
					fmt.Fprintf(&b, "          values (\"%s\");\n", joinF(arc.Table.DelaysS, 1e12))
					fmt.Fprintf(&b, "        }\n")
				}
			}
			fmt.Fprintf(&b, "      }\n")
		}
		fmt.Fprintf(&b, "    }\n")
		fmt.Fprintf(&b, "  }\n")
	}
	fmt.Fprintf(&b, "}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func joinF(vs []float64, scale float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%.4f", v*scale)
	}
	return strings.Join(parts, ", ")
}

// joinRows renders a 2-D table body: one quoted row per slew point, the
// Liberty multi-row values() syntax.
func joinRows(rows [][]float64, scale float64) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = "\"" + joinF(r, scale) + "\""
	}
	return strings.Join(parts, ", ")
}
