package layout

import (
	"fmt"

	"cnfetdk/internal/geom"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
)

// Cell is a generated standard cell: the complementary network pair plus
// realized geometry for both networks (in their own local coordinates until
// assembled).
type Cell struct {
	Name  string
	Gate  *network.Gate
	Style Style
	Rules rules.Rules
	// Unit is the unit transistor width (the "transistor size" axis of
	// Table 1); device strips are width-multiple × Unit tall.
	Unit geom.Coord
	PUN  *NetGeom
	PDN  *NetGeom
}

// Generate lays out a gate in the given style. The PUN device widths are
// scaled by the technology's p/n ratio (1.4 for CMOS, 1.0 for CNFET).
func Generate(name string, g *network.Gate, style Style, unit geom.Coord, rs rules.Rules) (*Cell, error) {
	punTree := cloneSP(g.PUNTree)
	scaleWidths(punTree, rs.PToNRatio)
	// Re-elaboration of the scaled tree is deterministic, so net names
	// match g.PUN and the immunity checker can relate geometry to the
	// gate's intended conduction functions.
	punNW := network.Elaborate(punTree, network.PFET, "VDD", "OUT")
	pun, err := GenerateNetwork(style, punTree, punNW, unit, rs)
	if err != nil {
		return nil, fmt.Errorf("cell %s PUN: %w", name, err)
	}
	pdnTree := cloneSP(g.PDNTree)
	pdn, err := GenerateNetwork(style, pdnTree, g.PDN, unit, rs)
	if err != nil {
		return nil, fmt.Errorf("cell %s PDN: %w", name, err)
	}
	return &Cell{Name: name, Gate: g, Style: style, Rules: rs, Unit: unit, PUN: pun, PDN: pdn}, nil
}

func cloneSP(n *network.SPNode) *network.SPNode {
	c := &network.SPNode{Kind: n.Kind, Input: n.Input, Neg: n.Neg, Width: n.Width}
	for _, k := range n.Kids {
		c.Kids = append(c.Kids, cloneSP(k))
	}
	return c
}

func scaleWidths(n *network.SPNode, f float64) {
	if n.Kind == network.SPLeaf {
		n.Width *= f
		return
	}
	for _, k := range n.Kids {
		scaleWidths(k, f)
	}
}

// NetworksArea returns the summed bounding-box area of the two pull
// networks in λ² — the Table 1 metric (intra-cell routing is assumed to
// have similar complexity in both styles and is excluded).
func (c *Cell) NetworksArea() float64 {
	return c.PUN.BBoxArea() + c.PDN.BBoxArea()
}

// ViasOnGate returns the total vertical-gating vias needed by the cell
// (always zero for compact layouts).
func (c *Cell) ViasOnGate() int {
	return c.PUN.ViasOnGate + c.PDN.ViasOnGate
}

// Scheme selects a standard-cell assembly arrangement (Section IV.A).
type Scheme int

// Assembly schemes.
const (
	// Scheme1 stacks the PUN above the PDN with the pin/routing gap
	// between — CMOS-like, drops into a conventional P&R flow.
	Scheme1 Scheme = iota
	// Scheme2 places the PUN beside the PDN, shrinking cell height to the
	// strip height; cells are not normalized to a common height.
	Scheme2
)

// String names the scheme.
func (s Scheme) String() string {
	if s == Scheme1 {
		return "scheme1"
	}
	return "scheme2"
}

// Assembled is a placed standard cell: rails, both networks and pins in a
// single coordinate frame with the origin at the cell's lower-left corner.
type Assembled struct {
	Cell     *Cell
	Scheme   Scheme
	Width    geom.Coord
	Height   geom.Coord
	Elements []Element
	// PUNOffset/PDNOffset record where the network geometries landed, for
	// extraction and immunity analysis in cell coordinates.
	PUNOffset geom.Point
	PDNOffset geom.Point
}

// Assemble arranges the cell at its natural height.
func (c *Cell) Assemble(s Scheme) *Assembled {
	return c.assemble(s, 0)
}

// AssembleToHeight arranges the cell stretched to a standardized total
// height (scheme 1 row placement): the extra space widens the mid routing
// gap. Heights smaller than the natural height fall back to natural.
func (c *Cell) AssembleToHeight(s Scheme, total geom.Coord) *Assembled {
	return c.assemble(s, total)
}

func (c *Cell) assemble(s Scheme, total geom.Coord) *Assembled {
	rs := c.Rules
	a := &Assembled{Cell: c, Scheme: s}
	pun := copyGeom(c.PUN)
	pdn := copyGeom(c.PDN)
	switch s {
	case Scheme1:
		w := pun.BBox.W()
		if pdn.BBox.W() > w {
			w = pdn.BBox.W()
		}
		gap := rs.NetworkGap
		natural := rs.RailH + pdn.BBox.H() + gap + pun.BBox.H() + rs.RailH
		if total > natural {
			gap += total - natural
		}
		y := geom.Coord(0)
		a.Elements = append(a.Elements, Element{
			Kind: ElemContact, Net: "GND",
			Rect: geom.R(0, y, w, y+rs.RailH),
		})
		y += rs.RailH
		pdn.Translate(0, y)
		a.PDNOffset = geom.Pt(0, y)
		y += pdn.BBox.H()
		// Input pins sit in the routing gap at the PDN gate columns.
		pinY := y + (gap-rs.GateLen)/2
		for _, e := range pdn.Elements {
			if e.Kind == ElemGate {
				a.Elements = append(a.Elements, Element{
					Kind:  ElemPin,
					Rect:  geom.R(e.Rect.Min.X, pinY, e.Rect.Max.X+rs.GateLen, pinY+rs.GateLen),
					Input: e.Input,
					Net:   e.Input,
				})
			}
		}
		y += gap
		pun.Translate(0, y)
		a.PUNOffset = geom.Pt(0, y)
		y += pun.BBox.H()
		a.Elements = append(a.Elements, Element{
			Kind: ElemContact, Net: "VDD",
			Rect: geom.R(0, y, w, y+rs.RailH),
		})
		y += rs.RailH
		a.Width, a.Height = w, y
	case Scheme2:
		h := pun.BBox.H()
		if pdn.BBox.H() > h {
			h = pdn.BBox.H()
		}
		pun.Translate(0, 0)
		a.PUNOffset = geom.Pt(0, 0)
		x := pun.BBox.W() + rs.NetworkGap
		pdn.Translate(x, 0)
		a.PDNOffset = geom.Pt(x, 0)
		w := x + pdn.BBox.W()
		// Pins go above (or below) the strip pair — the flexibility the
		// paper highlights for scheme 2 routing.
		pinY := h + rs.GateContactGap
		for _, e := range pdn.Elements {
			if e.Kind == ElemGate {
				a.Elements = append(a.Elements, Element{
					Kind:  ElemPin,
					Rect:  geom.R(e.Rect.Min.X, pinY, e.Rect.Max.X+rs.GateLen, pinY+rs.GateLen),
					Input: e.Input,
					Net:   e.Input,
				})
			}
		}
		a.Width, a.Height = w, h+rs.GateLen+2*rs.GateContactGap
	}
	a.Elements = append(a.Elements, pun.Elements...)
	a.Elements = append(a.Elements, pdn.Elements...)
	// Output pin on the first PDN OUT contact.
	for _, e := range pdn.Elements {
		if e.Kind == ElemContact && e.Net == "OUT" {
			a.Elements = append(a.Elements, Element{Kind: ElemPin, Rect: e.Rect, Net: "OUT"})
			break
		}
	}
	return a
}

// Area returns the assembled cell area in λ².
func (a *Assembled) Area() float64 {
	return geom.R(0, 0, a.Width, a.Height).AreaLambda2()
}

func copyGeom(n *NetGeom) *NetGeom {
	c := &NetGeom{Type: n.Type, BBox: n.BBox, ViasOnGate: n.ViasOnGate}
	c.Elements = append([]Element(nil), n.Elements...)
	c.Active = append([]geom.Rect(nil), n.Active...)
	return c
}
