package layout

import (
	"fmt"

	"cnfetdk/internal/euler"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
)

// compactNetwork builds the paper's misaligned-CNT-immune row layout for
// one pull network: contacts and gates alternate along an Euler trail of
// the transistor multigraph. Redundant contacts appear wherever the trail
// visits a net that is a terminal or has degree != 2; a degree-2 internal
// net visited between two consecutive gates becomes a shared-diffusion gap
// instead. Multiple trails (networks whose multigraph has >2 odd nodes)
// are placed in the same row separated by an etched cut.
func compactNetwork(nw *network.Network, unit geom.Coord, rs rules.Rules) (*NetGeom, error) {
	g := euler.FromNetwork(nw)
	trails := g.Trails(nw.Top)
	if err := euler.Validate(g, trails); err != nil {
		return nil, fmt.Errorf("layout: euler decomposition: %w", err)
	}
	out := &NetGeom{Type: nw.Type}
	x := geom.Coord(0)
	// Track contact positions per net for strap insertion.
	netContacts := map[string][]geom.Rect{}
	rowMaxH := geom.Coord(0)
	for _, e := range g.Edges {
		if h := quantize(e.Width, unit); h > rowMaxH {
			rowMaxH = h
		}
	}
	terminal := map[string]bool{nw.Top: true, nw.Bottom: true}

	emitContact := func(net string) {
		r := geom.R(x, 0, x+rs.ContactW, rowMaxH)
		out.Elements = append(out.Elements, Element{Kind: ElemContact, Rect: r, Net: net})
		out.Active = append(out.Active, r)
		netContacts[net] = append(netContacts[net], r)
		x += rs.ContactW
	}
	emitGap := func(w, h geom.Coord) {
		out.Active = append(out.Active, geom.R(x, 0, x+w, h))
		x += w
	}
	emitGate := func(e euler.Edge) {
		h := quantize(e.Width, unit)
		r := geom.R(x, 0, x+rs.GateLen, h)
		out.Elements = append(out.Elements, Element{Kind: ElemGate, Rect: r, Input: e.Label, Neg: e.Neg})
		out.Active = append(out.Active, r)
		x += rs.GateLen
	}
	emitEtch := func() {
		r := geom.R(x, 0, x+rs.EtchW, rowMaxH)
		out.Elements = append(out.Elements, Element{Kind: ElemEtch, Rect: r})
		// Etched regions carry no CNTs: not part of Active.
		x += rs.EtchW
	}

	for ti, tr := range trails {
		if ti > 0 {
			emitEtch()
		}
		emitContact(tr.Nodes[0])
		afterPass := false
		for i, eid := range tr.Edges {
			e := g.Edges[eid]
			h := quantize(e.Width, unit)
			if !afterPass {
				emitGap(rs.GateContactGap, h)
			}
			afterPass = false
			emitGate(e)
			node := tr.Nodes[i+1]
			last := i == len(tr.Edges)-1
			// A contact is required at the trail end, at every terminal
			// visit, and at any internal net the walk revisits (degree
			// != 2): two pass-throughs of one net would leave its
			// diffusion segments electrically disconnected.
			if last || terminal[node] || g.Degree(node) != 2 {
				emitGap(rs.GateContactGap, h)
				emitContact(node)
			} else {
				// Shared diffusion between consecutive series gates.
				next := g.Edges[tr.Edges[i+1]]
				nh := quantize(next.Width, unit)
				if nh != h {
					return nil, fmt.Errorf("layout: unequal series widths %v/%v at net %s", h, nh, node)
				}
				emitGap(rs.GateGateGap, h)
				afterPass = true
			}
		}
	}

	// Metal straps join repeated contacts of one net (the paper's
	// redundant contacts). A strap spans from the first to the last
	// contact of the net, drawn above the row; it is routing metal, not
	// active, so it does not affect immunity.
	strapY := rowMaxH + rs.GateContactGap
	for net, cs := range netContacts {
		if len(cs) < 2 {
			continue
		}
		minX, maxX := cs[0].Min.X, cs[0].Max.X
		for _, c := range cs[1:] {
			if c.Min.X < minX {
				minX = c.Min.X
			}
			if c.Max.X > maxX {
				maxX = c.Max.X
			}
		}
		out.Elements = append(out.Elements, Element{
			Kind: ElemStrap,
			Rect: geom.R(minX, strapY, maxX, strapY+rs.GateContactGap),
			Net:  net,
		})
	}

	out.BBox = geom.R(0, 0, x, rowMaxH)
	return out, nil
}
