// Package layout generates CNFET standard-cell layouts.
//
// Three generator families reproduce the paper's Section III comparison:
//
//   - Compact (this paper's contribution): each network is flattened into a
//     single active row by walking an Euler trail over the transistor
//     multigraph, inserting redundant metal contacts where the trail
//     revisits a tapped net. Gates span the full local active height, so
//     every path between contacts of different nets crosses the intended
//     gate series — misaligned-CNT-immune with no etched regions.
//   - Stacked (ref [6], Patil DAC'07 baseline): parallel branches are
//     stacked vertically between shared contact columns; etched regions
//     separate vertically adjacent strips. Without the etch separators this
//     degenerates into the misaligned-CNT-*vulnerable* layout of Fig 2(b).
//     Interior gates need vertical gating (a via on top of the gate).
//   - CMOS: the compact generator under CMOS rules (Euler-path diffusion
//     rows are standard CMOS practice), with the pMOS/nMOS width ratio and
//     the 10λ diffusion separation of the 65nm node.
//
// All geometry is expressed in quarter-lambda Coords on layers suitable for
// the immunity checker, the extractor and the GDSII writer.
package layout

import (
	"fmt"
	"math"
	"sort"

	"cnfetdk/internal/geom"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
)

// ElemKind classifies a layout element.
type ElemKind int

// Layout element kinds.
const (
	ElemContact ElemKind = iota // metal source/drain contact column
	ElemGate                    // gate stripe
	ElemEtch                    // etched (CNT cut) region
	ElemVia                     // vertical-gating via (on top of a gate)
	ElemStrap                   // intra-cell metal strap connecting contacts
	ElemPin                     // input/output pin marker
)

// String names the element kind.
func (k ElemKind) String() string {
	switch k {
	case ElemContact:
		return "contact"
	case ElemGate:
		return "gate"
	case ElemEtch:
		return "etch"
	case ElemVia:
		return "via"
	case ElemStrap:
		return "strap"
	case ElemPin:
		return "pin"
	}
	return "?"
}

// Element is one placed layout shape.
type Element struct {
	Kind  ElemKind
	Rect  geom.Rect
	Net   string // contact/strap/pin: net name
	Input string // gate/via/pin: controlling input name
	Neg   bool   // gate: complemented input
}

// NetGeom is the realized geometry of one pull network.
type NetGeom struct {
	Type network.DeviceType
	// Elements holds contacts, gates, etches, vias and straps.
	Elements []Element
	// Active is the union of CNT-bearing regions (non-overlapping rects).
	// Anything outside Active within the bounding box has been removed by
	// the cell-boundary etch; tubes there are cut.
	Active []geom.Rect
	// BBox is the bounding box of the network.
	BBox geom.Rect
	// ViasOnGate counts vertical-gating vias (zero for compact layouts —
	// a key manufacturability advantage the paper claims).
	ViasOnGate int
}

// ActiveArea returns the total CNT-bearing area in λ², computed as the
// union of the active rects (generators may emit overlapping rects, e.g.
// shared contact columns overlapping strip actives).
func (n *NetGeom) ActiveArea() float64 {
	return UnionArea(n.Active)
}

// UnionArea computes the area of a union of rectangles in λ² by coordinate
// compression.
func UnionArea(rects []geom.Rect) float64 {
	if len(rects) == 0 {
		return 0
	}
	var xs, ys []geom.Coord
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		xs = append(xs, r.Min.X, r.Max.X)
		ys = append(ys, r.Min.Y, r.Max.Y)
	}
	uniq := func(v []geom.Coord) []geom.Coord {
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		out := v[:0]
		for i, x := range v {
			if i == 0 || x != out[len(out)-1] {
				out = append(out, x)
			}
		}
		return out
	}
	xs, ys = uniq(xs), uniq(ys)
	total := int64(0)
	for i := 0; i+1 < len(xs); i++ {
		for j := 0; j+1 < len(ys); j++ {
			cx, cy := xs[i], ys[j]
			for _, r := range rects {
				if cx >= r.Min.X && xs[i+1] <= r.Max.X && cy >= r.Min.Y && ys[j+1] <= r.Max.Y {
					total += int64(xs[i+1]-cx) * int64(ys[j+1]-cy)
					break
				}
			}
		}
	}
	return float64(total) / float64(geom.QuarterLambda*geom.QuarterLambda)
}

// BBoxArea returns the bounding-box area in λ².
func (n *NetGeom) BBoxArea() float64 { return n.BBox.AreaLambda2() }

// Translate shifts all geometry by (dx, dy).
func (n *NetGeom) Translate(dx, dy geom.Coord) {
	for i := range n.Elements {
		n.Elements[i].Rect = n.Elements[i].Rect.Translate(dx, dy)
	}
	for i := range n.Active {
		n.Active[i] = n.Active[i].Translate(dx, dy)
	}
	n.BBox = n.BBox.Translate(dx, dy)
}

// Contacts returns the contact elements.
func (n *NetGeom) Contacts() []Element {
	var out []Element
	for _, e := range n.Elements {
		if e.Kind == ElemContact {
			out = append(out, e)
		}
	}
	return out
}

// Gates returns the gate elements.
func (n *NetGeom) Gates() []Element {
	var out []Element
	for _, e := range n.Elements {
		if e.Kind == ElemGate {
			out = append(out, e)
		}
	}
	return out
}

// Etches returns the etch elements.
func (n *NetGeom) Etches() []geom.Rect {
	var out []geom.Rect
	for _, e := range n.Elements {
		if e.Kind == ElemEtch {
			out = append(out, e.Rect)
		}
	}
	return out
}

// InputOrder returns gate input names in left-to-right order of first
// appearance, for pin planning.
func (n *NetGeom) InputOrder() []string {
	type occ struct {
		name string
		x    geom.Coord
	}
	var occs []occ
	seen := map[string]bool{}
	for _, e := range n.Elements {
		if e.Kind == ElemGate && !seen[e.Input] {
			seen[e.Input] = true
			occs = append(occs, occ{e.Input, e.Rect.Min.X})
		}
	}
	sort.Slice(occs, func(i, j int) bool { return occs[i].x < occs[j].x })
	out := make([]string, len(occs))
	for i, o := range occs {
		out[i] = o.name
	}
	return out
}

// Style selects a layout generator family.
type Style int

// Layout styles.
const (
	StyleCompact    Style = iota // this paper: Euler-trail rows
	StyleEtched                  // ref [6]: stacked strips with etched separators
	StyleVulnerable              // stacked strips without etch (Fig 2b)
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleCompact:
		return "compact"
	case StyleEtched:
		return "etched"
	case StyleVulnerable:
		return "vulnerable"
	}
	return "?"
}

// quantize converts a width multiple into a Coord height given the unit
// transistor width.
func quantize(mult float64, unit geom.Coord) geom.Coord {
	h := geom.Coord(math.Round(mult * float64(unit)))
	if h < 1 {
		h = 1
	}
	return h
}

// GenerateNetwork lays out one pull network in the given style.
// unit is the unit transistor width; device heights are width-multiple ×
// unit. For StyleEtched/StyleVulnerable the SP tree drives the recursive
// stacked construction; for StyleCompact the flattened network drives the
// Euler walk. Both share net names with nw so the immunity checker can
// relate geometry to intended conduction.
func GenerateNetwork(style Style, sp *network.SPNode, nw *network.Network, unit geom.Coord, rs rules.Rules) (*NetGeom, error) {
	switch style {
	case StyleCompact:
		return compactNetwork(nw, unit, rs)
	case StyleEtched:
		return stackedNetwork(sp, nw, unit, rs, true)
	case StyleVulnerable:
		return stackedNetwork(sp, nw, unit, rs, false)
	}
	return nil, fmt.Errorf("layout: unknown style %d", style)
}
