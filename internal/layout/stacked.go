package layout

import (
	"fmt"

	"cnfetdk/internal/geom"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
)

// stackedNetwork builds the etched-region layout style of ref [6] (Patil,
// DAC'07): series compositions concatenate horizontally as separate
// contact-bounded islands, parallel compositions stack vertically between
// shared full-height contact columns. Strips of a stack are separated by
// ≥2λ etched regions; passing withEtch=false omits them, yielding the
// misaligned-CNT-vulnerable geometry of Fig 2(b) in which the doped
// inter-strip region lets a skewed tube short the shared contacts.
//
// Gates buried inside a stack (every strip except the topmost) cannot
// escape sideways past the shared contact columns and are marked with
// vertical-gating vias — the manufacturability cost the paper's compact
// layouts avoid.
func stackedNetwork(sp *network.SPNode, nw *network.Network, unit geom.Coord, rs rules.Rules, withEtch bool) (*NetGeom, error) {
	counter := 0
	blk, err := buildBlock(sp, nw.Top, nw.Bottom, &counter, unit, rs, withEtch)
	if err != nil {
		return nil, err
	}
	out := &NetGeom{Type: nw.Type, Elements: blk.elems, Active: blk.active}
	out.BBox = geom.R(0, 0, blk.w, blk.h)
	for _, e := range blk.elems {
		if e.Kind == ElemVia {
			out.ViasOnGate++
		}
	}
	return out, nil
}

// block is an intermediate rectangular layout region whose left and right
// edges are contact columns.
type block struct {
	w, h   geom.Coord
	rightH geom.Coord // active height at the right boundary contact
	elems  []Element
	active []geom.Rect
}

func (b *block) translate(dx, dy geom.Coord) {
	for i := range b.elems {
		b.elems[i].Rect = b.elems[i].Rect.Translate(dx, dy)
	}
	for i := range b.active {
		b.active[i] = b.active[i].Translate(dx, dy)
	}
}

// buildBlock recurses over the SP tree. Internal series junction nets are
// named x1, x2, ... in the same emission order as network.Elaborate so the
// geometry and the electrical network agree on net names.
func buildBlock(n *network.SPNode, a, b string, counter *int, unit geom.Coord, rs rules.Rules, withEtch bool) (*block, error) {
	switch n.Kind {
	case network.SPLeaf:
		return leafBlock(n, a, b, unit, rs), nil
	case network.SPSeries:
		return seriesBlock(n, a, b, counter, unit, rs, withEtch)
	case network.SPParallel:
		return parallelBlock(n, a, b, counter, unit, rs, withEtch)
	}
	return nil, fmt.Errorf("layout: bad SP node kind %d", n.Kind)
}

func leafBlock(n *network.SPNode, a, b string, unit geom.Coord, rs rules.Rules) *block {
	h := quantize(n.Width, unit)
	c, g, s := rs.ContactW, rs.GateLen, rs.GateContactGap
	w := 2*c + g + 2*s
	blk := &block{w: w, h: h, rightH: h}
	blk.elems = append(blk.elems,
		Element{Kind: ElemContact, Rect: geom.R(0, 0, c, h), Net: a},
		Element{Kind: ElemGate, Rect: geom.R(c+s, 0, c+s+g, h), Input: n.Input, Neg: n.Neg},
		Element{Kind: ElemContact, Rect: geom.R(w-c, 0, w, h), Net: b},
	)
	blk.active = append(blk.active, geom.R(0, 0, w, h))
	return blk
}

func seriesBlock(n *network.SPNode, a, b string, counter *int, unit geom.Coord, rs rules.Rules, withEtch bool) (*block, error) {
	// Maximal runs of consecutive leaves share diffusion in a single
	// contact-bounded island (the conventional series row [6] also uses);
	// parallel sub-blocks become their own islands.
	prev := a
	var kids []*block
	i := 0
	for i < len(n.Kids) {
		last := i == len(n.Kids)-1
		if n.Kids[i].Kind == network.SPLeaf {
			j := i
			for j+1 < len(n.Kids) && n.Kids[j+1].Kind == network.SPLeaf {
				j++
			}
			// Junction nets inside the run are consumed silently (shared
			// diffusion); the run's right boundary net comes after it.
			runLeaves := n.Kids[i : j+1]
			for k := i; k < j; k++ {
				*counter++
			}
			next := b
			if j < len(n.Kids)-1 {
				*counter++
				next = fmt.Sprintf("x%d", *counter)
			}
			kids = append(kids, leafChainBlock(runLeaves, prev, next, unit, rs))
			prev = next
			i = j + 1
			continue
		}
		next := b
		if !last {
			*counter++
			next = fmt.Sprintf("x%d", *counter)
		}
		kb, err := buildBlock(n.Kids[i], prev, next, counter, unit, rs, withEtch)
		if err != nil {
			return nil, err
		}
		kids = append(kids, kb)
		prev = next
		i++
	}
	out := &block{}
	x := geom.Coord(0)
	for i, kb := range kids {
		if i > 0 {
			// Inter-island spacing; the junction net is carried by the
			// abutting contacts of both islands, joined with a strap.
			strapH := kb.h
			if kids[i-1].h < strapH {
				strapH = kids[i-1].h
			}
			out.elems = append(out.elems, Element{
				Kind: ElemStrap,
				Rect: geom.R(x-rs.ContactW, 0, x+rs.GateGateGap+rs.ContactW, strapH),
				Net:  prevNetAt(kb),
			})
			x += rs.GateGateGap
		}
		kb.translate(x, 0)
		out.elems = append(out.elems, kb.elems...)
		out.active = append(out.active, kb.active...)
		x += kb.w
		if kb.h > out.h {
			out.h = kb.h
		}
	}
	out.w = x
	out.rightH = kids[len(kids)-1].rightH
	return out, nil
}

// leafChainBlock lays out a run of series leaves as one shared-diffusion
// island: contact | gate gate ... gate | contact.
func leafChainBlock(leaves []*network.SPNode, a, b string, unit geom.Coord, rs rules.Rules) *block {
	h := quantize(leaves[0].Width, unit)
	for _, l := range leaves {
		if lh := quantize(l.Width, unit); lh > h {
			h = lh
		}
	}
	c, g, s, gg := rs.ContactW, rs.GateLen, rs.GateContactGap, rs.GateGateGap
	blk := &block{h: h, rightH: h}
	x := geom.Coord(0)
	blk.elems = append(blk.elems, Element{Kind: ElemContact, Rect: geom.R(0, 0, c, h), Net: a})
	x += c + s
	for i, l := range leaves {
		if i > 0 {
			x += gg
		}
		blk.elems = append(blk.elems, Element{
			Kind: ElemGate, Rect: geom.R(x, 0, x+g, h), Input: l.Input, Neg: l.Neg,
		})
		x += g
	}
	x += s
	blk.elems = append(blk.elems, Element{Kind: ElemContact, Rect: geom.R(x, 0, x+c, h), Net: b})
	x += c
	blk.w = x
	blk.active = append(blk.active, geom.R(0, 0, x, h))
	return blk
}

// prevNetAt returns the net of the block's leftmost contact, used to label
// the strap joining two series islands.
func prevNetAt(b *block) string {
	for _, e := range b.elems {
		if e.Kind == ElemContact && e.Rect.Min.X == 0 {
			return e.Net
		}
	}
	return ""
}

func parallelBlock(n *network.SPNode, a, b string, counter *int, unit geom.Coord, rs rules.Rules, withEtch bool) (*block, error) {
	kids := make([]*block, len(n.Kids))
	maxW := geom.Coord(0)
	for i, k := range n.Kids {
		kb, err := buildBlock(k, a, b, counter, unit, rs, withEtch)
		if err != nil {
			return nil, err
		}
		kids[i] = kb
		if kb.w > maxW {
			maxW = kb.w
		}
	}
	c := rs.ContactW
	out := &block{w: maxW}
	totalH := geom.Coord(0)
	for i, kb := range kids {
		if i > 0 {
			totalH += rs.EtchW
		}
		totalH += kb.h
	}
	out.h = totalH
	y := geom.Coord(0)
	for i, kb := range kids {
		if i > 0 {
			// Separator region between strips, spanning the interior
			// between the shared contact columns.
			sep := geom.R(c, y, maxW-c, y+rs.EtchW)
			if withEtch {
				out.elems = append(out.elems, Element{Kind: ElemEtch, Rect: sep})
			} else {
				// Vulnerable variant: the region keeps its doped CNTs.
				out.active = append(out.active, sep)
			}
			y += rs.EtchW
		}
		stretchBlock(kb, maxW, rs)
		stripBoundaryContacts(kb)
		kb.translate(0, y)
		// Gates buried under an upper strip need vertical gating.
		if i < len(kids)-1 {
			buryGates(kb, rs)
		}
		out.elems = append(out.elems, kb.elems...)
		out.active = append(out.active, kb.active...)
		y += kb.h
	}
	// Shared full-height contact columns.
	out.elems = append(out.elems,
		Element{Kind: ElemContact, Rect: geom.R(0, 0, c, totalH), Net: a},
		Element{Kind: ElemContact, Rect: geom.R(maxW-c, 0, maxW, totalH), Net: b},
	)
	out.active = append(out.active,
		geom.R(0, 0, c, totalH),
		geom.R(maxW-c, 0, maxW, totalH),
	)
	out.rightH = totalH
	return out, nil
}

// stretchBlock widens a block to width w by moving its right boundary
// contact column outward and filling the inserted span with doped active at
// the boundary strip height, so a narrow strip lines up with the shared
// contact columns of a wider stack.
func stretchBlock(b *block, w geom.Coord, rs rules.Rules) {
	if b.w >= w {
		return
	}
	dx := w - b.w
	edge := b.w - rs.ContactW // start of the right boundary contact
	for i := range b.elems {
		if b.elems[i].Rect.Min.X >= edge {
			b.elems[i].Rect = b.elems[i].Rect.Translate(dx, 0)
		}
	}
	grown := false
	for i := range b.active {
		r := b.active[i]
		switch {
		case r.Min.X >= edge:
			// The boundary contact's own active rect moves with it.
			b.active[i] = r.Translate(dx, 0)
		case r.Max.X > edge:
			// A rect spanning the boundary (e.g. a leaf's full-strip
			// active) simply grows across the inserted span.
			b.active[i] = geom.Rect{Min: r.Min, Max: geom.Pt(r.Max.X+dx, r.Max.Y)}
			grown = true
		}
	}
	if !grown {
		// Doped filler joining the interior to the displaced contact.
		b.active = append(b.active, geom.R(edge, 0, edge+dx, b.rightH))
	}
	b.w = w
}

// stripBoundaryContacts removes the block's left and right contact columns
// (both elements and their active rects) so a parallel stack can replace
// them with shared full-height columns.
func stripBoundaryContacts(b *block) {
	keepE := b.elems[:0]
	var left, right geom.Rect
	for _, e := range b.elems {
		if e.Kind == ElemContact && e.Rect.Min.X == 0 {
			left = e.Rect
			continue
		}
		if e.Kind == ElemContact && e.Rect.Max.X == b.w {
			right = e.Rect
			continue
		}
		keepE = append(keepE, e)
	}
	b.elems = keepE
	keepA := b.active[:0]
	for _, r := range b.active {
		if r == left || r == right {
			continue
		}
		keepA = append(keepA, r)
	}
	b.active = keepA
}

// buryGates marks every gate in the block as needing a vertical-gating via
// (a ~3λ via on top of the 2λ gate, which conventional lithography rules
// disallow — the cost the paper's Section III calls out).
func buryGates(b *block, rs rules.Rules) {
	var vias []Element
	for _, e := range b.elems {
		if e.Kind != ElemGate {
			continue
		}
		cx := (e.Rect.Min.X + e.Rect.Max.X) / 2
		top := e.Rect.Max.Y
		vias = append(vias, Element{
			Kind:  ElemVia,
			Rect:  geom.R(cx-rs.ViaW/2, top-rs.ViaW, cx+rs.ViaW/2, top),
			Input: e.Input,
		})
	}
	b.elems = append(b.elems, vias...)
}
