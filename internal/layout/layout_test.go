package layout

import (
	"math"
	"testing"

	"cnfetdk/internal/geom"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
)

func cnfet() rules.Rules { return rules.Default65nm(rules.CNFET) }
func cmos() rules.Rules  { return rules.Default65nm(rules.CMOS) }

func gate(t *testing.T, name, f string) *network.Gate {
	t.Helper()
	g, err := network.NewGate(name, logic.MustParse(f), 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func gen(t *testing.T, f string, style Style, unitLambda int) *Cell {
	t.Helper()
	g := gate(t, f, f)
	c, err := Generate(f, g, style, geom.Lambda(unitLambda), cnfet())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInverterCompactRow(t *testing.T) {
	c := gen(t, "A", StyleCompact, 4)
	// PUN row: contact VDD | gate A | contact OUT = 3+1+2+1+3 = 10λ wide,
	// 4λ tall.
	if got := c.PUN.BBox.W(); got != geom.Lambda(10) {
		t.Fatalf("INV PUN width = %vλ, want 10", got.Lambdas())
	}
	if got := c.PUN.BBox.H(); got != geom.Lambda(4) {
		t.Fatalf("INV PUN height = %vλ, want 4", got.Lambdas())
	}
	cs := c.PUN.Contacts()
	if len(cs) != 2 {
		t.Fatalf("INV PUN contacts = %d", len(cs))
	}
	if cs[0].Net != "VDD" || cs[1].Net != "OUT" {
		t.Fatalf("contact nets = %s,%s", cs[0].Net, cs[1].Net)
	}
	if len(c.PUN.Gates()) != 1 {
		t.Fatal("INV PUN should have one gate")
	}
	if c.ViasOnGate() != 0 {
		t.Fatal("compact layouts need no vertical gating")
	}
}

func TestInverterStyleEquivalence(t *testing.T) {
	// Table 1 row 1: the inverter has no parallel branches, so the etched
	// and compact styles coincide in area for every size.
	for _, w := range []int{3, 4, 6, 10} {
		a := gen(t, "A", StyleCompact, w)
		b := gen(t, "A", StyleEtched, w)
		if a.NetworksArea() != b.NetworksArea() {
			t.Fatalf("w=%dλ: compact %v vs etched %v", w, a.NetworksArea(), b.NetworksArea())
		}
	}
}

func TestNAND3CompactPUNRow(t *testing.T) {
	c := gen(t, "ABC", StyleCompact, 4)
	// Fig 3(b): Vdd A Out B Vdd C Out — 4 contacts, 3 gates, all p-devices
	// 1x (4λ). Width = 4*3 + 3*2 + 6*1 = 24λ.
	if got := c.PUN.BBox.W(); got != geom.Lambda(24) {
		t.Fatalf("NAND3 PUN width = %vλ, want 24", got.Lambdas())
	}
	if got := c.PUN.BBox.H(); got != geom.Lambda(4) {
		t.Fatalf("NAND3 PUN height = %vλ, want 4", got.Lambdas())
	}
	cs := c.PUN.Contacts()
	if len(cs) != 4 {
		t.Fatalf("NAND3 PUN contacts = %d, want 4", len(cs))
	}
	// Contacts must alternate VDD/OUT.
	for i, e := range cs {
		want := "VDD"
		if i%2 == 1 {
			want = "OUT"
		}
		if e.Net != want {
			t.Fatalf("contact %d net = %s, want %s", i, e.Net, want)
		}
	}
	// No etched regions in the compact layout.
	if len(c.PUN.Etches()) != 0 {
		t.Fatal("compact NAND3 PUN must not contain etched regions")
	}
}

func TestNAND3CompactPDNSharedDiffusion(t *testing.T) {
	c := gen(t, "ABC", StyleCompact, 4)
	// PDN chain: OUT | A B C | GND with shared diffusion (2 contacts) and
	// 3x devices (12λ strips). Width = 2*3 + 3*2 + 2*1 + 2*2 = 18λ.
	if got := c.PDN.BBox.W(); got != geom.Lambda(18) {
		t.Fatalf("NAND3 PDN width = %vλ, want 18", got.Lambdas())
	}
	if got := c.PDN.BBox.H(); got != geom.Lambda(12) {
		t.Fatalf("NAND3 PDN height = %vλ, want 12 (3x sizing)", got.Lambdas())
	}
	if got := len(c.PDN.Contacts()); got != 2 {
		t.Fatalf("NAND3 PDN contacts = %d, want 2", got)
	}
}

func TestNAND3EtchedPUNStack(t *testing.T) {
	c := gen(t, "ABC", StyleEtched, 4)
	// Fig 3(a): three stacked 4λ strips with two 2λ etched separators:
	// height = 16λ, width = 10λ.
	if got := c.PUN.BBox.W(); got != geom.Lambda(10) {
		t.Fatalf("etched NAND3 PUN width = %vλ, want 10", got.Lambdas())
	}
	if got := c.PUN.BBox.H(); got != geom.Lambda(16) {
		t.Fatalf("etched NAND3 PUN height = %vλ, want 16", got.Lambdas())
	}
	if got := len(c.PUN.Etches()); got != 2 {
		t.Fatalf("etched NAND3 PUN etch count = %d, want 2", got)
	}
	// Buried gates (two lower strips) need vertical gating.
	if got := c.PUN.ViasOnGate; got != 2 {
		t.Fatalf("etched NAND3 PUN vias = %d, want 2", got)
	}
	// The PDN is a plain series chain: identical to the compact one.
	cc := gen(t, "ABC", StyleCompact, 4)
	if c.PDN.BBoxArea() != cc.PDN.BBoxArea() {
		t.Fatal("etched and compact NAND3 PDNs should match")
	}
}

func TestFig3NAND3AreaDelta(t *testing.T) {
	// The paper quotes 16.67% for NAND3 at 4λ; our reconstruction of the
	// ref [6] style lands near that (the exact conventions of [6] are not
	// published — see DESIGN.md §4). Assert the compact layout wins by
	// 13-20%.
	oldC := gen(t, "ABC", StyleEtched, 4)
	newC := gen(t, "ABC", StyleCompact, 4)
	saving := 1 - newC.NetworksArea()/oldC.NetworksArea()
	if saving < 0.13 || saving > 0.20 {
		t.Fatalf("NAND3 4λ area saving = %.2f%%, want ~16.67%%", saving*100)
	}
}

func TestTable1Shape(t *testing.T) {
	// Qualitative invariants of Table 1: savings are zero for INV,
	// positive for multi-input cells, larger for higher fan-in at equal
	// size (AOI21 > NAND3 > NAND2), and shrink as transistor size grows.
	cellsByFanin := []string{"AB", "ABC", "AB+C"} // NAND2, NAND3, AOI21
	sizes := []int{3, 4, 6, 10}
	savings := map[string][]float64{}
	for _, f := range cellsByFanin {
		for _, w := range sizes {
			oldA := gen(t, f, StyleEtched, w).NetworksArea()
			newA := gen(t, f, StyleCompact, w).NetworksArea()
			savings[f] = append(savings[f], 1-newA/oldA)
		}
	}
	for f, s := range savings {
		for i := range s {
			if s[i] <= 0 {
				t.Errorf("%s size %dλ: saving %.3f not positive", f, sizes[i], s[i])
			}
			if i > 0 && s[i] >= s[i-1] {
				t.Errorf("%s: saving should decrease with size: %v", f, s)
			}
		}
	}
	for i := range sizes {
		if !(savings["AB+C"][i] > savings["ABC"][i] && savings["ABC"][i] > savings["AB"][i]) {
			t.Errorf("size %dλ: fan-in ordering violated: AOI21 %.3f NAND3 %.3f NAND2 %.3f",
				sizes[i], savings["AB+C"][i], savings["ABC"][i], savings["AB"][i])
		}
	}
}

func TestVulnerableKeepsDopedSeparator(t *testing.T) {
	e := gen(t, "AB", StyleEtched, 4)
	v := gen(t, "AB", StyleVulnerable, 4)
	if len(e.PUN.Etches()) == 0 {
		t.Fatal("etched NAND2 PUN should have an etch separator")
	}
	if len(v.PUN.Etches()) != 0 {
		t.Fatal("vulnerable NAND2 PUN must have no etch")
	}
	// The vulnerable active area strictly exceeds the etched one (the
	// separator region keeps its tubes).
	if v.PUN.ActiveArea() <= e.PUN.ActiveArea() {
		t.Fatalf("vulnerable active %.1f <= etched %.1f", v.PUN.ActiveArea(), e.PUN.ActiveArea())
	}
	// Same bounding box either way.
	if v.PUN.BBoxArea() != e.PUN.BBoxArea() {
		t.Fatal("etch removal must not change the bounding box")
	}
}

func TestAOI22CompactRedundantContacts(t *testing.T) {
	c := gen(t, "AB+CD", StyleCompact, 4)
	// PUN (A+B)(C+D): Euler circuit revisits the internal node m, which
	// needs redundant contacts: 5 contacts total.
	if got := len(c.PUN.Contacts()); got != 5 {
		t.Fatalf("AOI22 PUN contacts = %d, want 5", got)
	}
	// A strap must join the two internal-node contacts.
	strap := false
	for _, e := range c.PUN.Elements {
		if e.Kind == ElemStrap && e.Net == "x1" {
			strap = true
		}
	}
	if !strap {
		t.Fatal("internal net contacts must be strapped")
	}
}

func TestAOI21CompactPassThrough(t *testing.T) {
	c := gen(t, "AB+C", StyleCompact, 4)
	// PDN AB+C: circuit OUT-A-x-B-GND-C-OUT (or a relabeling): the
	// degree-2 internal node is a shared-diffusion pass-through, so only
	// 3 contacts appear.
	if got := len(c.PDN.Contacts()); got != 3 {
		t.Fatalf("AOI21 PDN contacts = %d, want 3", got)
	}
	if got := len(c.PDN.Gates()); got != 3 {
		t.Fatalf("AOI21 PDN gates = %d, want 3", got)
	}
}

func TestCMOSInverterAreaGain(t *testing.T) {
	// Case study 1: CNFET inverter area gain ~1.4x at w=4λ, declining
	// with width (fixed network separation amortizes).
	gains := []float64{}
	for _, w := range []int{4, 6, 10} {
		g := gate(t, "A", "A")
		cn, err := Generate("A", g, StyleCompact, geom.Lambda(w), cnfet())
		if err != nil {
			t.Fatal(err)
		}
		cm, err := Generate("A", g, StyleCompact, geom.Lambda(w), cmos())
		if err != nil {
			t.Fatal(err)
		}
		// Height comparison per the paper's formula: CNFET p=n width w
		// with 6λ separation vs CMOS p=1.4n with 10λ separation; the row
		// widths are identical so the height ratio is the area gain.
		hCN := cn.PUN.BBox.H() + cn.PDN.BBox.H() + cnfet().NetworkGap
		hCM := cm.PUN.BBox.H() + cm.PDN.BBox.H() + cmos().NetworkGap
		gains = append(gains, float64(hCM)/float64(hCN))
	}
	if math.Abs(gains[0]-1.4) > 0.02 {
		t.Fatalf("area gain at 4λ = %.3f, want ~1.4", gains[0])
	}
	if !(gains[0] > gains[1] && gains[1] > gains[2]) {
		t.Fatalf("area gain should decline with width: %v", gains)
	}
}

func TestCMOSPUNUsesRatio(t *testing.T) {
	g := gate(t, "A", "A")
	cm, err := Generate("A", g, StyleCompact, geom.Lambda(10), cmos())
	if err != nil {
		t.Fatal(err)
	}
	// pMOS = 1.4 × 10λ = 14λ.
	if got := cm.PUN.BBox.H(); got != geom.Lambda(14) {
		t.Fatalf("CMOS PUN height = %vλ, want 14", got.Lambdas())
	}
	if got := cm.PDN.BBox.H(); got != geom.Lambda(10) {
		t.Fatalf("CMOS PDN height = %vλ, want 10", got.Lambdas())
	}
}

func TestAssembleScheme1(t *testing.T) {
	c := gen(t, "AB", StyleCompact, 4)
	a := c.Assemble(Scheme1)
	rs := cnfet()
	wantH := rs.RailH + c.PDN.BBox.H() + rs.NetworkGap + c.PUN.BBox.H() + rs.RailH
	if a.Height != wantH {
		t.Fatalf("scheme1 height = %vλ, want %vλ", a.Height.Lambdas(), wantH.Lambdas())
	}
	if a.Width < c.PUN.BBox.W() || a.Width < c.PDN.BBox.W() {
		t.Fatal("cell too narrow")
	}
	// Pins: 2 inputs + 1 output.
	pins := 0
	for _, e := range a.Elements {
		if e.Kind == ElemPin {
			pins++
		}
	}
	if pins != 3 {
		t.Fatalf("pins = %d, want 3", pins)
	}
}

func TestAssembleScheme2Shorter(t *testing.T) {
	// Scheme 2's cell height collapses to the strip height — the area win
	// the paper reports comes at placement time (no height normalization
	// waste), so here we assert only the height relation.
	c := gen(t, "AB", StyleCompact, 4)
	s1 := c.Assemble(Scheme1)
	s2 := c.Assemble(Scheme2)
	if s2.Height >= s1.Height {
		t.Fatalf("scheme2 height %vλ should be below scheme1 %vλ",
			s2.Height.Lambdas(), s1.Height.Lambdas())
	}
}

func TestAssembleToHeightStretches(t *testing.T) {
	c := gen(t, "A", StyleCompact, 4)
	target := geom.Lambda(60)
	a := c.AssembleToHeight(Scheme1, target)
	if a.Height != target {
		t.Fatalf("standardized height = %vλ, want %vλ", a.Height.Lambdas(), target.Lambdas())
	}
}

func TestUnionArea(t *testing.T) {
	rects := []geom.Rect{
		geom.R(0, 0, geom.Lambda(4), geom.Lambda(4)),
		geom.R(geom.Lambda(2), 0, geom.Lambda(6), geom.Lambda(4)), // overlaps by 2λ×4λ
	}
	if got := UnionArea(rects); got != 24 {
		t.Fatalf("UnionArea = %v, want 24", got)
	}
	if got := UnionArea(nil); got != 0 {
		t.Fatalf("UnionArea(nil) = %v", got)
	}
}

func TestActiveCoversElements(t *testing.T) {
	// Every contact and gate must lie inside the active region (the
	// immunity checker depends on this invariant).
	for _, f := range []string{"A", "AB", "ABC", "AB+C", "AB+CD", "ABC+D", "(A+B)C"} {
		for _, style := range []Style{StyleCompact, StyleEtched, StyleVulnerable} {
			c := gen(t, f, style, 4)
			for _, ng := range []*NetGeom{c.PUN, c.PDN} {
				for _, e := range ng.Elements {
					if e.Kind != ElemContact && e.Kind != ElemGate {
						continue
					}
					covered := UnionArea(append(append([]geom.Rect{}, ng.Active...), e.Rect)) ==
						UnionArea(ng.Active)
					if !covered {
						t.Fatalf("%s %s: %s %v not covered by active", f, style, e.Kind, e.Rect)
					}
				}
			}
		}
	}
}

func TestInputOrder(t *testing.T) {
	c := gen(t, "ABC", StyleCompact, 4)
	order := c.PDN.InputOrder()
	if len(order) != 3 {
		t.Fatalf("InputOrder = %v", order)
	}
}
