package layout

import (
	"testing"

	"cnfetdk/internal/geom"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
)

// Series-parallel pull networks always have at most two odd-degree nets,
// so they lower to a single Euler row. The generator also supports
// arbitrary (non-SP) networks — e.g. bridge-style structures — by
// decomposing into multiple trails separated by etched cuts. This test
// builds a K4-like network with four odd nets and checks the row
// structure.
func TestMultiTrailNonSPNetwork(t *testing.T) {
	nw := &network.Network{
		Type: network.NFET,
		Top:  "OUT", Bottom: "GND",
		Devices: []network.Device{
			{Gate: "A", Type: network.NFET, From: "OUT", To: "a", Width: 1},
			{Gate: "B", Type: network.NFET, From: "OUT", To: "b", Width: 1},
			{Gate: "C", Type: network.NFET, From: "a", To: "b", Width: 1},
			{Gate: "D", Type: network.NFET, From: "a", To: "GND", Width: 1},
			{Gate: "E", Type: network.NFET, From: "b", To: "GND", Width: 1},
			{Gate: "F", Type: network.NFET, From: "OUT", To: "GND", Width: 1},
		},
	}
	g, err := compactNetwork(nw, geom.Lambda(4), rules.Default65nm(rules.CNFET))
	if err != nil {
		t.Fatal(err)
	}
	// Four odd nets (OUT, GND, a, b all have odd degree 3) -> two trails
	// -> exactly one etched separator in the row.
	if got := len(g.Etches()); got != 1 {
		t.Fatalf("etch separators = %d, want 1", got)
	}
	// All six gates present.
	if got := len(g.Gates()); got != 6 {
		t.Fatalf("gates = %d, want 6", got)
	}
	// Odd-degree internal nets a and b must always be contacted (no
	// pass-through for degree != 2).
	seen := map[string]int{}
	for _, c := range g.Contacts() {
		seen[c.Net]++
	}
	if seen["a"] == 0 || seen["b"] == 0 {
		t.Fatalf("internal nets not contacted: %v", seen)
	}
	// The etch must sit between two contacts (not adjacent to a gate), so
	// the two row segments stay electrically well-formed.
	etch := g.Etches()[0]
	leftContact, rightContact := false, false
	for _, e := range g.Elements {
		if e.Kind != ElemContact {
			continue
		}
		if e.Rect.Max.X == etch.Min.X {
			leftContact = true
		}
		if e.Rect.Min.X == etch.Max.X {
			rightContact = true
		}
	}
	if !leftContact || !rightContact {
		t.Fatal("etch separator must abut contacts on both sides")
	}
}

func TestMultiTrailActiveExcludesEtch(t *testing.T) {
	nw := &network.Network{
		Type: network.NFET,
		Top:  "OUT", Bottom: "GND",
		Devices: []network.Device{
			{Gate: "A", Type: network.NFET, From: "OUT", To: "a", Width: 1},
			{Gate: "B", Type: network.NFET, From: "OUT", To: "b", Width: 1},
			{Gate: "C", Type: network.NFET, From: "a", To: "b", Width: 1},
			{Gate: "D", Type: network.NFET, From: "a", To: "GND", Width: 1},
			{Gate: "E", Type: network.NFET, From: "b", To: "GND", Width: 1},
			{Gate: "F", Type: network.NFET, From: "OUT", To: "GND", Width: 1},
		},
	}
	g, err := compactNetwork(nw, geom.Lambda(4), rules.Default65nm(rules.CNFET))
	if err != nil {
		t.Fatal(err)
	}
	etch := g.Etches()[0]
	for _, a := range g.Active {
		if a.Overlaps(etch) {
			t.Fatalf("active %v overlaps etch %v", a, etch)
		}
	}
}
