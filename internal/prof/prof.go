// Package prof wires the runtime/pprof profilers into the CLIs: the
// -cpuprofile/-memprofile flags on cnfetsweep and fasynth produce the
// same artifact formats as `go test`'s flags, so `go tool pprof` reads
// them directly against the command binary.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins CPU profiling to cpuPath (skipped when empty) and returns
// a stop function that finishes the CPU profile and writes an allocs
// (heap) profile to memPath (skipped when empty). The stop function is
// idempotent; call it before exiting — explicitly on os.Exit paths,
// since those bypass defers.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuF *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpuF = f
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				if err := cpuF.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "prof: closing cpu profile:", err)
				}
			}
			if memPath == "" {
				return
			}
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "prof: writing heap profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof: closing heap profile:", err)
			}
		})
	}
	return stop, nil
}
