package immunity

import (
	"context"
	"math"
	"testing"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/spice"
)

func cnfetLib(t *testing.T) *cells.Library {
	t.Helper()
	l, err := cells.NewLibrary(rules.CNFET)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestDelaySpreadDeterministicAcrossWorkers pins the reproducibility
// contract: the per-lane seed derives from (seed, lane), so the sample
// set is identical at any worker-pool width. The solver is forced sparse
// so the run exercises the plan-sharing batch path end to end.
func TestDelaySpreadDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("transient-heavy")
	}
	lib := cnfetLib(t)
	opt := spice.DefaultOptions()
	opt.Solver = spice.SolverSparse
	const samples = 6
	s1, err := DelaySpreadCtx(context.Background(), lib, "NAND2_1X", "A", samples, 0.7, 42, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := DelaySpreadCtx(context.Background(), lib, "NAND2_1X", "A", samples, 0.7, 42, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.DelaysS) != samples || len(s4.DelaysS) != samples {
		t.Fatalf("sample counts: %d and %d, want %d", len(s1.DelaysS), len(s4.DelaysS), samples)
	}
	for i := range s1.DelaysS {
		if s1.DelaysS[i] != s4.DelaysS[i] {
			t.Fatalf("sample %d differs across worker counts: %v vs %v", i, s1.DelaysS[i], s4.DelaysS[i])
		}
	}
	if !(s1.MinS <= s1.MeanS && s1.MeanS <= s1.MaxS) {
		t.Fatalf("stats out of order: min %v mean %v max %v", s1.MinS, s1.MeanS, s1.MaxS)
	}
	if s1.SigmaS < 0 {
		t.Fatalf("negative sigma %v", s1.SigmaS)
	}
	// Reduced drive only slows the cell: spread must sit at or above the
	// nominal (yield = 1) delay.
	nom, err := lib.Characterize(lib.MustGet("NAND2_1X"), "A", lib.ReferenceLoad())
	if err != nil {
		t.Fatal(err)
	}
	if s1.MinS < nom.DelayS*(1-1e-9) {
		t.Fatalf("min delay %v below nominal %v — yield scaling sped the cell up", s1.MinS, nom.DelayS)
	}
}

// TestDelaySpreadUnitYieldMatchesNominal: with yieldMin = 1 every draw
// is exactly 1, so every lane simulates the unmodified testbench and the
// spread collapses onto the nominal characterization delay.
func TestDelaySpreadUnitYieldMatchesNominal(t *testing.T) {
	if testing.Short() {
		t.Skip("transient-heavy")
	}
	lib := cnfetLib(t)
	s, err := DelaySpreadCtx(context.Background(), lib, "INV_1X", "A", 3, 1.0, 7, 2, spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nom, err := lib.Characterize(lib.MustGet("INV_1X"), "A", lib.ReferenceLoad())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range s.DelaysS {
		if math.Abs(d-nom.DelayS) > 1e-15 {
			t.Fatalf("sample %d delay %v != nominal %v at unit yield", i, d, nom.DelayS)
		}
	}
	if s.SigmaS != 0 {
		t.Fatalf("sigma %v at unit yield, want 0", s.SigmaS)
	}
}

// TestDelaySpreadValidation covers the argument checks.
func TestDelaySpreadValidation(t *testing.T) {
	lib := cnfetLib(t)
	ctx := context.Background()
	opt := spice.DefaultOptions()
	if _, err := DelaySpreadCtx(ctx, lib, "INV_1X", "A", 0, 0.8, 1, 1, opt); err == nil {
		t.Fatal("samples = 0 accepted")
	}
	if _, err := DelaySpreadCtx(ctx, lib, "INV_1X", "A", 2, 0, 1, 1, opt); err == nil {
		t.Fatal("yieldMin = 0 accepted")
	}
	if _, err := DelaySpreadCtx(ctx, lib, "INV_1X", "A", 2, 1.5, 1, 1, opt); err == nil {
		t.Fatal("yieldMin > 1 accepted")
	}
	if _, err := DelaySpreadCtx(ctx, lib, "NOPE_1X", "A", 2, 0.8, 1, 1, opt); err == nil {
		t.Fatal("unknown cell accepted")
	}
}
