package immunity

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/device"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/spice"
)

// DelaySpread is the tube-count variation companion to the geometric
// immunity checks: while VerifyImmunity asks whether mispositioned
// tubes can break a cell's logic function, DelaySpread asks how much
// count variation — some of a device's tubes missing or non-conducting,
// the central imperfection of Hills et al.'s co-optimization study —
// spreads the cell's timing.
type DelaySpread struct {
	Cell    string
	Input   string
	Samples int
	// DelaysS holds the per-sample arc delays in lane order (the order
	// is deterministic for a fixed seed regardless of worker count).
	DelaysS []float64
	MeanS   float64
	MinS    float64
	MaxS    float64
	SigmaS  float64
}

// DelaySpreadCtx Monte Carlo samples the tube-count yield of one cell
// arc: each lane rebuilds the arc's characterization testbench with
// every FET's drive scaled by an independent yield draw from
// [yieldMin, 1] (first-order: drive current is proportional to the
// number of conducting tubes), then simulates the arc transient and
// measures the propagation delay. All lanes are structure-identical, so
// they run through one plan-sharing spice.Batch — the symbolic solver
// work is paid once, each lane refactorizes numerically — fanned across
// the pipeline worker pool. The per-lane seed derives from seed and the
// lane index, so the sample is reproducible at any worker count.
func DelaySpreadCtx(ctx context.Context, lib *cells.Library, cellName, input string, samples int, yieldMin float64, seed int64, workers int, opt spice.Options) (*DelaySpread, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("immunity: delay spread needs samples > 0")
	}
	if yieldMin <= 0 || yieldMin > 1 {
		return nil, fmt.Errorf("immunity: yieldMin %g outside (0, 1]", yieldMin)
	}
	c, err := lib.Get(cellName)
	if err != nil {
		return nil, err
	}
	load := lib.ReferenceLoad()
	proto, _, err := lib.ArcCircuit(c, input, load)
	if err != nil {
		return nil, err
	}
	batch, err := spice.NewBatch(samples, proto, opt)
	if err != nil {
		return nil, fmt.Errorf("immunity: %s/%s batch plan: %w", cellName, input, err)
	}
	lanes := make([]int, samples)
	for i := range lanes {
		lanes[i] = i
	}
	delays, err := pipeline.MapCtx(ctx, workers, lanes, func(i int, _ int) (float64, error) {
		ckt, _, err := lib.ArcCircuit(c, input, load)
		if err != nil {
			return 0, err
		}
		rng := rand.New(rand.NewSource(seed + int64(i)*0x9E3779B9))
		for j := range ckt.FETs {
			y := yieldMin + (1-yieldMin)*rng.Float64()
			ckt.FETs[j].P.ISat *= y
		}
		res, err := ckt.TransientWith(batch.Lane(i), cells.ArcPeriod, cells.ArcSteps, opt)
		if err != nil {
			return 0, fmt.Errorf("immunity: %s/%s sample %d: %w", cellName, input, i, err)
		}
		d, err := res.PropDelay("in", "out", device.Vdd)
		if err != nil {
			return 0, fmt.Errorf("immunity: %s/%s sample %d: %w", cellName, input, i, err)
		}
		return d, nil
	})
	if err != nil {
		return nil, err
	}
	out := &DelaySpread{Cell: cellName, Input: input, Samples: samples, DelaysS: delays}
	out.MinS, out.MaxS = delays[0], delays[0]
	sum := 0.0
	for _, d := range delays {
		sum += d
		out.MinS = math.Min(out.MinS, d)
		out.MaxS = math.Max(out.MaxS, d)
	}
	out.MeanS = sum / float64(samples)
	ss := 0.0
	for _, d := range delays {
		ss += (d - out.MeanS) * (d - out.MeanS)
	}
	out.SigmaS = math.Sqrt(ss / float64(samples))
	return out, nil
}
