package immunity

import (
	"fmt"
	"math/rand"

	"cnfetdk/internal/cnt"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
)

// CellChecker verifies full-cell functionality under concrete tube
// populations: both that no mispositioned tube corrupts the logic (the
// immunity property) and that the surviving aligned tubes still realize
// every intended transition (drive exists).
type CellChecker struct {
	Cell *layout.Cell
	pun  *Checker
	pdn  *Checker
}

// NewCellChecker builds checkers for both networks of a cell.
func NewCellChecker(c *layout.Cell) *CellChecker {
	inputs := c.Gate.Inputs
	return &CellChecker{
		Cell: c,
		pun:  NewChecker(c.PUN, c.Gate.PUN, inputs),
		pdn:  NewChecker(c.PDN, c.Gate.PDN, inputs),
	}
}

// PUN returns the pull-up network checker.
func (cc *CellChecker) PUN() *Checker { return cc.pun }

// PDN returns the pull-down network checker.
func (cc *CellChecker) PDN() *Checker { return cc.pdn }

// OutputState is the electrical state of the cell output for one vector.
type OutputState int

// Output states.
const (
	OutFloat OutputState = iota
	OutLow
	OutHigh
	OutShort
)

// String names the output state.
func (s OutputState) String() string {
	switch s {
	case OutFloat:
		return "float"
	case OutLow:
		return "0"
	case OutHigh:
		return "1"
	case OutShort:
		return "short"
	}
	return "?"
}

// FunctionalReport is the outcome of simulating a cell with a concrete
// tube population.
type FunctionalReport struct {
	Functional bool
	// Failures lists, per failing input vector, what the output did.
	Failures []VectorFailure
}

// VectorFailure describes one failing input vector.
type VectorFailure struct {
	Vector   int
	Expected bool
	Got      OutputState
}

// String renders the failure.
func (f VectorFailure) String() string {
	return fmt.Sprintf("vector %b: expected %v, output %s", f.Vector, f.Expected, f.Got)
}

// Functional simulates the cell's truth table under separate tube
// populations for the PUN and PDN regions (tube coordinates are local to
// each network's geometry). For every input vector the output must be
// strongly driven to the intended level: no float, no VDD-GND fight.
func (cc *CellChecker) Functional(punTubes, pdnTubes []cnt.Tube) FunctionalReport {
	inputs := cc.Cell.Gate.Inputs
	want := cc.Cell.Gate.OutputTable()

	punSpans := collectSpans(cc.pun, punTubes)
	pdnSpans := collectSpans(cc.pdn, pdnTubes)

	rep := FunctionalReport{Functional: true}
	rows := 1 << len(inputs)
	for v := 0; v < rows; v++ {
		up := netsConnected(punSpans, "VDD", "OUT", inputs, v, cc.pun)
		down := netsConnected(pdnSpans, "OUT", "GND", inputs, v, cc.pdn)
		var got OutputState
		switch {
		case up && down:
			got = OutShort
		case up:
			got = OutHigh
		case down:
			got = OutLow
		default:
			got = OutFloat
		}
		expected := want.Get(v)
		ok := (expected && got == OutHigh) || (!expected && got == OutLow)
		if !ok {
			rep.Functional = false
			rep.Failures = append(rep.Failures, VectorFailure{Vector: v, Expected: expected, Got: got})
		}
	}
	return rep
}

func collectSpans(c *Checker, tubes []cnt.Tube) []CondSpan {
	var out []CondSpan
	for _, t := range tubes {
		out = append(out, c.CondSpans(t.Line, t.Metallic)...)
	}
	return out
}

// netsConnected evaluates whether nets a and b connect through any chain of
// conducting tube spans under input vector v. Contacts of the same net are
// implicitly connected (metal).
func netsConnected(spans []CondSpan, a, b string, inputs []string, v int, c *Checker) bool {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" || parent[x] == x {
			parent[x] = x
			return x
		}
		r := find(parent[x])
		parent[x] = r
		return r
	}
	union := func(x, y string) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	for _, sp := range spans {
		if c.cubeTable(sp.Cube).Get(v) {
			union(sp.NetA, sp.NetB)
		}
	}
	return find(a) == find(b)
}

// FunctionalYield runs trials independent population draws over both
// network regions and returns the fraction of functional cells — the
// experiment behind Fig 2's vulnerable-vs-immune comparison.
func (cc *CellChecker) FunctionalYield(trials int, params cnt.Params, rng *rand.Rand) float64 {
	good := 0
	for i := 0; i < trials; i++ {
		punTubes := cnt.Generate(grow(cc.Cell.PUN.BBox), params, rng)
		pdnTubes := cnt.Generate(grow(cc.Cell.PDN.BBox), params, rng)
		if cc.Functional(punTubes, pdnTubes).Functional {
			good++
		}
	}
	return float64(good) / float64(trials)
}

// grow pads a region slightly so tubes can enter at an angle.
func grow(r geom.Rect) geom.Rect {
	return geom.R(r.Min.X-r.W()/4, r.Min.Y-r.H()/4, r.Max.X+r.W()/4, r.Max.Y+r.H()/4)
}

// VerifyImmunity is the one-call verdict used by tests and the CLI: a
// deterministic critical-line certificate for both networks of a cell.
func VerifyImmunity(c *layout.Cell) (Report, Report) {
	cc := NewCellChecker(c)
	return cc.pun.CriticalLines(), cc.pdn.CriticalLines()
}
