package immunity

import (
	"context"
	"math/rand"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/device"
)

// CellYield composes the two functional failure modes of CNT variation
// for one standard cell:
//
//   - Count: a device whose Gaussian conducting-tube draw comes up
//     empty is stuck open (device.Variations.CountYield).
//   - Alignment: a mispositioned tube breaks the cell's logic with the
//     geometric probability BreakP — exactly what this package's
//     critical-line certificates and Monte Carlo measure. Immune
//     layouts have BreakP = 0, which is the paper's point: their
//     alignment yield is 1 at any misplacement probability.
//
// Yield is the product over the cell's devices of
// device.Variations.DeviceYield(tubes, BreakP); a design's yield is
// the product over its instances (flow composes that).
type CellYield struct {
	Cell string `json:"cell"`
	// Devices is the cell's transistor count; Tubes the nominal
	// conducting-tube total across them.
	Devices int `json:"devices"`
	Tubes   int `json:"tubes"`
	// BreakP is the probability that one mispositioned tube breaks the
	// cell's logic: the Monte Carlo estimate when mcTubes > 0, else the
	// deterministic critical-line bad fraction (both are 0 for immune
	// layouts).
	BreakP float64 `json:"break_p"`
	// CountYield, AlignYield and Yield are per-cell-instance: the
	// probability every device functions.
	CountYield float64 `json:"count_yield"`
	AlignYield float64 `json:"align_yield"`
	Yield      float64 `json:"yield"`
}

// CellYieldCtx evaluates one cell's composed functional yield under
// the variation model. mcTubes > 0 estimates BreakP with a Monte Carlo
// sample of that many tubes per network (seeded deterministically);
// mcTubes == 0 falls back to the exhaustive critical-line fraction.
// The per-device tube counts come from the library's device sizing, so
// bigger drives expose proportionally more tubes.
func CellYieldCtx(ctx context.Context, lib *cells.Library, cellName string, v device.Variations, mcTubes int, maxAngleDeg float64, seed int64, workers int) (*CellYield, error) {
	c, err := lib.Get(cellName)
	if err != nil {
		return nil, err
	}
	var checked, bad int
	if mcTubes > 0 {
		cc := NewCellChecker(c.Layout)
		rng := rand.New(rand.NewSource(seed))
		pun, err := cc.PUN().MonteCarloCtx(ctx, mcTubes, maxAngleDeg, rng, workers)
		if err != nil {
			return nil, err
		}
		pdn, err := cc.PDN().MonteCarloCtx(ctx, mcTubes, maxAngleDeg, rng, workers)
		if err != nil {
			return nil, err
		}
		checked = pun.TubesChecked + pdn.TubesChecked
		bad = pun.BadTubes + pdn.BadTubes
	} else {
		pun, pdn := VerifyImmunity(c.Layout)
		checked = pun.TubesChecked + pdn.TubesChecked
		bad = pun.BadTubes + pdn.BadTubes
	}
	cy := &CellYield{Cell: cellName, CountYield: 1, AlignYield: 1, Yield: 1}
	if checked > 0 {
		cy.BreakP = float64(bad) / float64(checked)
	}
	for _, tubes := range lib.DeviceTubes(c) {
		cy.Devices++
		cy.Tubes += tubes
		cy.CountYield *= v.CountYield(tubes)
		cy.AlignYield *= v.AlignYield(tubes, cy.BreakP)
	}
	cy.Yield = cy.CountYield * cy.AlignYield
	return cy, nil
}
