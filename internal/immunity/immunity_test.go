package immunity

import (
	"math/rand"
	"testing"

	"cnfetdk/internal/cnt"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
)

func buildCell(t *testing.T, f string, style layout.Style, unitLambda int) *layout.Cell {
	t.Helper()
	g, err := network.NewGate(f, logic.MustParse(f), 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := layout.Generate(f, g, style, geom.Lambda(unitLambda), rules.Default65nm(rules.CNFET))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInverterAnyMispositionIsBenign(t *testing.T) {
	// Fig 2(a): the inverter tolerates arbitrary misposition — both its
	// contacts flank a single full-height gate.
	c := buildCell(t, "A", layout.StyleCompact, 4)
	cc := NewCellChecker(c)
	pun, pdn := cc.PUN().CriticalLines(), cc.PDN().CriticalLines()
	if !pun.Immune() || !pdn.Immune() {
		t.Fatalf("inverter should be immune: PUN %d, PDN %d violations",
			pun.BadTubes, pdn.BadTubes)
	}
}

func TestCondSpansInverterTube(t *testing.T) {
	c := buildCell(t, "A", layout.StyleCompact, 4)
	ch := NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
	// A horizontal tube through the middle of the PUN row crosses
	// VDD | gate A | OUT: one span with cube A' (p-FET conducts on 0).
	y := float64(c.PUN.BBox.H()) / 2
	spans := ch.CondSpans(geom.Ln(-10, y, float64(c.PUN.BBox.W())+10, y), false)
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.NetA != "VDD" || sp.NetB != "OUT" {
		t.Fatalf("span nets = %s-%s", sp.NetA, sp.NetB)
	}
	if len(sp.Cube.Lits) != 1 || sp.Cube.Lits[0].Input != "A" || !sp.Cube.Lits[0].Neg {
		t.Fatalf("cube = %s, want A'", sp.Cube)
	}
}

func TestCondSpansPDNPolarity(t *testing.T) {
	c := buildCell(t, "A", layout.StyleCompact, 4)
	ch := NewChecker(c.PDN, c.Gate.PDN, c.Gate.Inputs)
	y := float64(c.PDN.BBox.H()) / 2
	spans := ch.CondSpans(geom.Ln(-10, y, float64(c.PDN.BBox.W())+10, y), false)
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Cube.Lits[0].Neg {
		t.Fatalf("n-FET cube should be positive, got %s", spans[0].Cube)
	}
}

func TestTubeMissingActiveIsCut(t *testing.T) {
	c := buildCell(t, "A", layout.StyleCompact, 4)
	ch := NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
	// A tube far above the strip touches nothing.
	y := float64(c.PUN.BBox.H()) * 3
	if got := ch.CondSpans(geom.Ln(-10, y, 200, y), false); len(got) != 0 {
		t.Fatalf("high tube spans = %d, want 0", len(got))
	}
}

func TestMetallicTubeShortsInverter(t *testing.T) {
	c := buildCell(t, "A", layout.StyleCompact, 4)
	ch := NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
	y := float64(c.PUN.BBox.H()) / 2
	vs := ch.CheckTube(geom.Ln(-10, y, float64(c.PUN.BBox.W())+10, y), true)
	if len(vs) == 0 {
		t.Fatal("metallic tube should violate (gate cannot cut it off)")
	}
	if vs[0].Reason != "metallic tube short" {
		t.Fatalf("reason = %q", vs[0].Reason)
	}
}

// The paper's headline: compact layouts are 100% immune for every cell in
// the library, certified by critical-line enumeration.
func TestCompactLayoutsImmune(t *testing.T) {
	cells := []string{"A", "AB", "A+B", "ABC", "A+B+C", "AB+C", "(A+B)C", "AB+CD", "(A+B)(C+D)", "ABC+D"}
	for _, f := range cells {
		c := buildCell(t, f, layout.StyleCompact, 4)
		pun, pdn := VerifyImmunity(c)
		if !pun.Immune() {
			t.Errorf("%s PUN not immune: %v", f, pun.Violations[0])
		}
		if !pdn.Immune() {
			t.Errorf("%s PDN not immune: %v", f, pdn.Violations[0])
		}
	}
}

// Ref [6]'s etched layouts are also immune — the etch separators cut every
// stray path. (Their cost is area and vertical gating, not function.)
func TestEtchedLayoutsImmune(t *testing.T) {
	cells := []string{"AB", "ABC", "AB+C", "AB+CD"}
	for _, f := range cells {
		c := buildCell(t, f, layout.StyleEtched, 4)
		pun, pdn := VerifyImmunity(c)
		if !pun.Immune() || !pdn.Immune() {
			t.Errorf("%s etched layout not immune (PUN %d, PDN %d bad)",
				f, pun.BadTubes, pdn.BadTubes)
		}
	}
}

// Fig 2(b): removing the etch separators leaves the doped inter-strip
// region in place and skewed tubes short VDD to OUT.
func TestVulnerableNAND2Fails(t *testing.T) {
	c := buildCell(t, "AB", layout.StyleVulnerable, 4)
	ch := NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
	rep := ch.CriticalLines()
	if rep.Immune() {
		t.Fatal("vulnerable NAND2 PUN must have violations")
	}
	// At least one violation must be an unconditional short.
	short := false
	for _, v := range rep.Violations {
		if len(v.Cube.Lits) == 0 {
			short = true
			break
		}
	}
	if !short {
		t.Fatalf("expected an unconditional VDD-OUT short, got %v", rep.Violations)
	}
}

func TestVulnerableMonteCarloFailureRate(t *testing.T) {
	c := buildCell(t, "AB", layout.StyleVulnerable, 4)
	ch := NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
	rng := rand.New(rand.NewSource(42))
	rep := ch.MonteCarlo(4000, 15, rng)
	if rep.Immune() {
		t.Fatal("Monte Carlo should find failures in the vulnerable layout")
	}
	if rep.FailureRate() < 0.005 {
		t.Fatalf("failure rate = %.4f, suspiciously low", rep.FailureRate())
	}
	// The compact layout under the same tube distribution is clean.
	cc := buildCell(t, "AB", layout.StyleCompact, 4)
	chc := NewChecker(cc.PUN, cc.Gate.PUN, cc.Gate.Inputs)
	repc := chc.MonteCarlo(4000, 15, rand.New(rand.NewSource(42)))
	if !repc.Immune() {
		t.Fatalf("compact layout failed Monte Carlo: %v", repc.Violations[0])
	}
}

func TestFunctionalYieldVulnerableVsCompact(t *testing.T) {
	params := cnt.DefaultParams()
	params.MisalignedFrac = 0.25 // exaggerate to make failures common
	params.MaxAngleDeg = 20
	params.PitchNM = 20

	vuln := NewCellChecker(buildCell(t, "AB", layout.StyleVulnerable, 6))
	comp := NewCellChecker(buildCell(t, "AB", layout.StyleCompact, 6))

	yv := vuln.FunctionalYield(60, params, rand.New(rand.NewSource(7)))
	yc := comp.FunctionalYield(60, params, rand.New(rand.NewSource(7)))
	if yc != 1.0 {
		t.Fatalf("compact functional yield = %.2f, want 1.0", yc)
	}
	if yv >= 1.0 {
		t.Fatalf("vulnerable functional yield = %.2f, expected failures", yv)
	}
}

func TestFunctionalAllAlignedWorks(t *testing.T) {
	// A fully aligned population must realize the cell's truth table in
	// every style.
	params := cnt.DefaultParams()
	params.MisalignedFrac = 0
	for _, style := range []layout.Style{layout.StyleCompact, layout.StyleEtched} {
		cc := NewCellChecker(buildCell(t, "AB+C", style, 4))
		punTubes := cnt.Generate(cc.Cell.PUN.BBox, params, rand.New(rand.NewSource(1)))
		pdnTubes := cnt.Generate(cc.Cell.PDN.BBox, params, rand.New(rand.NewSource(2)))
		rep := cc.Functional(punTubes, pdnTubes)
		if !rep.Functional {
			t.Fatalf("%v aligned population not functional: %v", style, rep.Failures)
		}
	}
}

func TestFunctionalNoTubesFloats(t *testing.T) {
	cc := NewCellChecker(buildCell(t, "AB", layout.StyleCompact, 4))
	rep := cc.Functional(nil, nil)
	if rep.Functional {
		t.Fatal("cell with no tubes cannot be functional")
	}
	if len(rep.Failures) != 4 {
		t.Fatalf("failures = %d, want all 4 vectors", len(rep.Failures))
	}
	for _, f := range rep.Failures {
		if f.Got != OutFloat {
			t.Fatalf("expected floating output, got %v", f.Got)
		}
	}
}

func TestBenignConditionalPathAccepted(t *testing.T) {
	// In the NAND3 PUN (parallel A,B,C), a skewed tube crossing TWO gates
	// between VDD and OUT conducts only when both are low — a strict
	// subset of intended conduction, hence benign. Construct such a tube
	// across the compact row: it passes from the VDD contact (col 0)
	// through gates A and B to the second VDD contact... between VDD and
	// OUT contacts crossing both A and B is geometrically possible only
	// with large angles; instead verify via the cube machinery directly.
	c := buildCell(t, "ABC", layout.StyleCompact, 4)
	ch := NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
	cube := logic.Cube{Lits: []logic.Literal{
		{Input: "A", Neg: true}, {Input: "B", Neg: true},
	}}
	cubeT := logic.TableOfCube(cube, c.Gate.Inputs)
	want := ch.conductTable("VDD", "OUT")
	if !cubeT.Implies(want) {
		t.Fatal("A'B' between VDD and OUT must be benign in NAND3 PUN")
	}
	// Whereas in the PDN (series ABC), conducting OUT-GND under only A·B
	// (skipping C) is a violation.
	chd := NewChecker(c.PDN, c.Gate.PDN, c.Gate.Inputs)
	cube2 := logic.Cube{Lits: []logic.Literal{{Input: "A"}, {Input: "B"}}}
	cube2T := logic.TableOfCube(cube2, c.Gate.Inputs)
	want2 := chd.conductTable("OUT", "GND")
	if cube2T.Implies(want2) {
		t.Fatal("A·B between OUT and GND must NOT be benign in NAND3 PDN")
	}
}

// Property: every generated compact cell from random SP functions passes
// the Monte Carlo immunity check.
func TestRandomCompactCellsImmuneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	vars := []string{"A", "B", "C", "D"}
	var build func(depth int) *logic.Expr
	build = func(depth int) *logic.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			return logic.Var(vars[rng.Intn(len(vars))])
		}
		k := 2 + rng.Intn(2)
		kids := make([]*logic.Expr, k)
		for i := range kids {
			kids[i] = build(depth - 1)
		}
		if rng.Intn(2) == 0 {
			return logic.And(kids...)
		}
		return logic.Or(kids...)
	}
	for i := 0; i < 25; i++ {
		e := build(2)
		g, err := network.NewGate("rand", e, 1)
		if err != nil {
			t.Fatal(err)
		}
		c, err := layout.Generate("rand", g, layout.StyleCompact, geom.Lambda(4),
			rules.Default65nm(rules.CNFET))
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		cc := NewCellChecker(c)
		pr := cc.PUN().MonteCarlo(300, 25, rng)
		dr := cc.PDN().MonteCarlo(300, 25, rng)
		if !pr.Immune() || !dr.Immune() {
			t.Fatalf("random cell %s not immune: %v %v", e, pr.Violations, dr.Violations)
		}
	}
}
