package immunity

import (
	"testing"

	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
)

// Fault-injection suite: deliberately corrupt certified-immune layouts and
// require the checkers to notice. This validates the *checker* — a silent
// pass on broken geometry would invalidate every immunity claim in the
// repository.

// shortenGate truncates a gate stripe so it no longer spans its active
// column: tubes can now sneak over the gate through doped material.
func TestInjectShortenedGateDetected(t *testing.T) {
	c := buildCell(t, "AB", layout.StyleCompact, 4)
	// Halve the first PDN gate's height.
	mutated := false
	for i, e := range c.PDN.Elements {
		if e.Kind == layout.ElemGate {
			r := e.Rect
			c.PDN.Elements[i].Rect = geom.R(r.Min.X, r.Min.Y, r.Max.X, r.Min.Y+r.H()/2)
			mutated = true
			break
		}
	}
	if !mutated {
		t.Fatal("no gate to mutate")
	}
	ch := NewChecker(c.PDN, c.Gate.PDN, c.Gate.Inputs)
	rep := ch.CriticalLines()
	if rep.Immune() {
		t.Fatal("shortened gate must break immunity (tube bypasses the gate through doped active)")
	}
}

// dropEtch removes the etched separator from an etched-style layout,
// which is exactly the vulnerable geometry.
func TestInjectRemovedEtchDetected(t *testing.T) {
	c := buildCell(t, "AB", layout.StyleEtched, 4)
	kept := c.PUN.Elements[:0]
	removed := 0
	for _, e := range c.PUN.Elements {
		if e.Kind == layout.ElemEtch {
			// Removing the etch leaves the area outside Active, which is
			// still a cut; to model the vulnerable case the region must
			// become doped active again.
			c.PUN.Active = append(c.PUN.Active, e.Rect)
			removed++
			continue
		}
		kept = append(kept, e)
	}
	c.PUN.Elements = kept
	if removed == 0 {
		t.Fatal("etched NAND2 PUN should have had an etch")
	}
	ch := NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
	if ch.CriticalLines().Immune() {
		t.Fatal("removing the etch separator must break immunity")
	}
}

// relabelContact rewires a contact to the wrong net: even aligned tubes
// now create an illegal conduction term.
func TestInjectWrongContactNetDetected(t *testing.T) {
	c := buildCell(t, "ABC", layout.StyleCompact, 4)
	// NAND3 PUN row: VDD A OUT B VDD C OUT. Relabel the second contact
	// (OUT) as VDD: the A-device now "conducts" VDD-to-VDD benignly, but
	// the B device connects VDD to VDD too... instead relabel a VDD
	// contact as OUT, creating OUT -A- OUT (benign) and VDD -B- ... the
	// third contact flips B's span to OUT-OUT and C's span to OUT-OUT;
	// choose the first contact (VDD -> OUT) so span A becomes OUT..OUT
	// (benign) — the interesting case is relabelling contact 2 (OUT ->
	// GND), which introduces a foreign net with unconditional paths.
	n := 0
	for i, e := range c.PUN.Elements {
		if e.Kind == layout.ElemContact {
			n++
			if n == 2 {
				c.PUN.Elements[i].Net = "GND"
				break
			}
		}
	}
	ch := NewChecker(c.PUN, c.Gate.PUN, c.Gate.Inputs)
	rep := ch.CriticalLines()
	if rep.Immune() {
		t.Fatal("foreign-net contact must break the conduction check")
	}
}

// wideGap stretches a shared-diffusion gap so the active region extends
// beyond the gate stripes vertically — simulating a generator bug where
// the doped region is taller than the gates guarding it.
func TestInjectOversizedActiveDetected(t *testing.T) {
	c := buildCell(t, "ABC", layout.StyleCompact, 4)
	// Extend the whole PDN active above the gates: the region between
	// contacts is now reachable without crossing full-height gates.
	bb := c.PDN.BBox
	c.PDN.Active = append(c.PDN.Active, geom.R(bb.Min.X, bb.Max.Y, bb.Max.X, bb.Max.Y+geom.Lambda(2)))
	// Contacts must span the taller region for the fault to be
	// electrically meaningful.
	for i, e := range c.PDN.Elements {
		if e.Kind == layout.ElemContact {
			r := e.Rect
			c.PDN.Elements[i].Rect = geom.R(r.Min.X, r.Min.Y, r.Max.X, bb.Max.Y+geom.Lambda(2))
		}
	}
	ch := NewChecker(c.PDN, c.Gate.PDN, c.Gate.Inputs)
	if ch.CriticalLines().Immune() {
		t.Fatal("active region above the gates must break immunity (OUT-GND short over the gates)")
	}
}

// A sanity inverse: re-running the unmutated layouts stays immune, so the
// injections above are the cause of the failures.
func TestInjectControlGroup(t *testing.T) {
	for _, f := range []string{"AB", "ABC"} {
		c := buildCell(t, f, layout.StyleCompact, 4)
		pun, pdn := VerifyImmunity(c)
		if !pun.Immune() || !pdn.Immune() {
			t.Fatalf("%s control group not immune", f)
		}
	}
}
