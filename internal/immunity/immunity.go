// Package immunity verifies that CNFET layouts stay functional under
// mispositioned carbon nanotubes — the property the paper's compact layout
// technique guarantees by construction (Section III).
//
// Model: a tube is a straight line. Walking it left to right within the
// layout's active region yields an ordered crossing sequence of metal
// contacts (net-labelled), gate stripes (input-labelled) and cuts (etched
// regions or leaving the active region). Between two consecutively touched
// contacts with no intervening cut, the tube conducts exactly when every
// crossed gate is ON — a product term (cube). The span is benign iff that
// cube implies the network's intended conduction function between the two
// nets (same-net spans are trivially benign). A layout is immune iff every
// realizable tube yields only benign spans.
//
// Two verdict engines are provided: Monte Carlo sampling, and a
// deterministic critical-line enumeration over pairs of geometry corners
// (if any violating line exists, a violating line exists arbitrarily close
// to one through two corners of the arrangement, so perturbed corner pairs
// are a complete certificate for open violation sets).
package immunity

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"cnfetdk/internal/cnt"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/pipeline"
)

// Checker verifies one pull network's geometry against its intended
// conduction behaviour. A Checker is not safe for concurrent use (the
// memo caches and tube scratch below are unsynchronized); parallel runs
// fork one checker per shard instead.
type Checker struct {
	Geom   *layout.NetGeom
	Net    *network.Network
	Inputs []string

	conduct map[[2]string]*logic.Table
	cubeTab map[string]*logic.Table

	// Per-tube scratch, reused across CheckTube calls so batch runs
	// (Monte Carlo shards, critical-line enumeration) stop allocating in
	// steady state.
	seqBuf  []crossing
	clipBuf []geom.Span
	gateBuf []crossing
	condBuf []CondSpan
	litsBuf []logic.Literal
	keyBuf  []byte
}

// NewChecker builds a checker for one network. inputs orders the truth
// tables and must cover every gate input.
func NewChecker(g *layout.NetGeom, nw *network.Network, inputs []string) *Checker {
	return &Checker{
		Geom:    g,
		Net:     nw,
		Inputs:  inputs,
		conduct: map[[2]string]*logic.Table{},
		cubeTab: map[string]*logic.Table{},
	}
}

// Violation describes a tube span that conducts when the network must not.
type Violation struct {
	Tube   geom.Line
	NetA   string
	NetB   string
	Cube   logic.Cube
	Reason string
}

// String renders a violation.
func (v Violation) String() string {
	return fmt.Sprintf("tube %.1f° %s-%s conducts under %s: %s",
		v.Tube.AngleDeg(), v.NetA, v.NetB, v.Cube, v.Reason)
}

// crossing is one geometry crossing along a tube.
type crossing struct {
	t    float64 // parameter midpoint along the tube
	t0   float64 // span start
	t1   float64 // span end
	kind layout.ElemKind
	net  string
	in   string
	neg  bool
}

// trace computes the ordered crossing sequence of a tube, plus the maximal
// intervals of the tube covered by active material. Both returned slices
// are checker-owned scratch, valid until the next trace.
func (c *Checker) trace(line geom.Line) (seq []crossing, covered []geom.Span) {
	seq = c.seqBuf[:0]
	for _, e := range c.Geom.Elements {
		switch e.Kind {
		case layout.ElemContact, layout.ElemGate, layout.ElemEtch:
		default:
			continue
		}
		sp, ok := line.ClipToRect(e.Rect)
		if !ok {
			continue
		}
		seq = append(seq, crossing{
			t: sp.Mid(), t0: sp.T0, t1: sp.T1,
			kind: e.Kind, net: e.Net, in: e.Input, neg: e.Neg,
		})
	}
	c.seqBuf = seq
	slices.SortFunc(seq, func(a, b crossing) int {
		switch {
		case a.t < b.t:
			return -1
		case a.t > b.t:
			return 1
		}
		return 0
	})

	spans := c.clipBuf[:0]
	for _, r := range c.Geom.Active {
		if sp, ok := line.ClipToRect(r); ok {
			spans = append(spans, sp)
		}
	}
	c.clipBuf = spans
	covered = mergeSpans(spans)
	return seq, covered
}

// mergeSpans merges overlapping/abutting parameter intervals in place and
// returns the merged prefix.
func mergeSpans(spans []geom.Span) []geom.Span {
	if len(spans) == 0 {
		return nil
	}
	slices.SortFunc(spans, func(a, b geom.Span) int {
		switch {
		case a.T0 < b.T0:
			return -1
		case a.T0 > b.T0:
			return 1
		}
		return 0
	})
	const eps = 1e-9
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.T0 <= last.T1+eps {
			if s.T1 > last.T1 {
				last.T1 = s.T1
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

// inCovered reports whether [a,b] lies inside one covered interval.
func inCovered(covered []geom.Span, a, b float64) bool {
	const eps = 1e-9
	for _, s := range covered {
		if a >= s.T0-eps && b <= s.T1+eps {
			return true
		}
	}
	return false
}

// conductTable returns (caching) the intended conduction function between
// two nets of the network. A net the network does not know (e.g. a
// mislabelled contact) can never legitimately conduct to anything, so the
// intended function is constant false.
func (c *Checker) conductTable(u, v string) *logic.Table {
	key := [2]string{u, v}
	if u > v {
		key = [2]string{v, u}
	}
	if t, ok := c.conduct[key]; ok {
		return t
	}
	known := map[string]bool{}
	for _, n := range c.Net.Nets() {
		known[n] = true
	}
	var t *logic.Table
	if known[u] && known[v] {
		t = c.Net.Conduct(key[0], key[1], c.Inputs)
	} else {
		t = logic.NewTable(c.Inputs)
	}
	c.conduct[key] = t
	return t
}

// cubeTable returns (caching) the truth table of a conduction cube. The
// cache key is built in checker-owned scratch, so a hit costs no
// allocation (the map lookup through string(keyBuf) does not copy).
func (c *Checker) cubeTable(cu logic.Cube) *logic.Table {
	key := c.keyBuf[:0]
	for _, l := range cu.Lits {
		key = append(key, l.Input...)
		if l.Neg {
			key = append(key, '\'')
		}
		key = append(key, '&')
	}
	c.keyBuf = key
	if t, ok := c.cubeTab[string(key)]; ok {
		return t
	}
	t := logic.TableOfCube(cu, c.Inputs)
	c.cubeTab[string(key)] = t
	return t
}

// CondSpan is one conductive tube span between two touched contacts: it
// conducts exactly when its cube is satisfied (always, for metallic tubes
// or bare doped spans — the empty cube).
type CondSpan struct {
	NetA, NetB string
	Cube       logic.Cube
	Metallic   bool
}

// CondSpans extracts every conductive span of a tube: consecutive contact
// touches with continuous active coverage and no etch crossing in between.
// The cube collects the crossed gates with device polarity applied
// (p-FETs conduct on 0, n-FETs on 1, complemented inputs flipped);
// metallic tubes ignore gates entirely. The returned spans and their
// cubes are freshly allocated and safe to retain.
func (c *Checker) CondSpans(line geom.Line, metallic bool) []CondSpan {
	spans := c.condSpans(line, metallic)
	if len(spans) == 0 {
		return nil
	}
	out := make([]CondSpan, len(spans))
	for i, sp := range spans {
		sp.Cube = copyCube(sp.Cube)
		out[i] = sp
	}
	return out
}

// condSpans is CondSpans into checker-owned scratch: the returned slice
// and the cubes inside it are valid until the next tube is traced.
func (c *Checker) condSpans(line geom.Line, metallic bool) []CondSpan {
	seq, covered := c.trace(line)
	out := c.condBuf[:0]
	c.litsBuf = c.litsBuf[:0]
	lastContact := -1
	gates := c.gateBuf[:0]
	for i, cr := range seq {
		switch cr.kind {
		case layout.ElemEtch:
			lastContact = -1
			gates = gates[:0]
		case layout.ElemGate:
			gates = append(gates, cr)
		case layout.ElemContact:
			if lastContact >= 0 {
				prev := seq[lastContact]
				// The span counts only if fully on active material.
				if inCovered(covered, prev.t1, cr.t0) {
					out = append(out, CondSpan{
						NetA:     prev.net,
						NetB:     cr.net,
						Cube:     c.buildCube(gates, metallic),
						Metallic: metallic,
					})
				}
			}
			lastContact = i
			gates = gates[:0]
		}
	}
	c.gateBuf = gates
	c.condBuf = out
	return out
}

// buildCube folds the crossed gates into a conduction cube whose literals
// live in the checker's scratch arena (copyCube before retaining). The
// gate count per span is tiny, so duplicate literals are dropped by
// linear scan instead of a map.
func (c *Checker) buildCube(gates []crossing, metallic bool) logic.Cube {
	if metallic || len(gates) == 0 {
		return logic.Cube{}
	}
	start := len(c.litsBuf)
	for _, g := range gates {
		neg := c.Net.Type == network.PFET
		if g.neg {
			neg = !neg
		}
		dup := false
		for _, l := range c.litsBuf[start:] {
			if l.Input == g.in && l.Neg == neg {
				dup = true
				break
			}
		}
		if !dup {
			c.litsBuf = append(c.litsBuf, logic.Literal{Input: g.in, Neg: neg})
		}
	}
	return logic.Cube{Lits: c.litsBuf[start:]}
}

// copyCube deep-copies a scratch-arena cube so it can outlive the tube.
func copyCube(cu logic.Cube) logic.Cube {
	if len(cu.Lits) == 0 {
		return logic.Cube{}
	}
	return logic.Cube{Lits: append([]logic.Literal(nil), cu.Lits...)}
}

// CheckTube analyses one tube (semiconducting unless metallic) and returns
// any violating spans. The verdict path is allocation-free for a clean
// tube; violations (the rare case) are copied out of the scratch arena.
func (c *Checker) CheckTube(line geom.Line, metallic bool) []Violation {
	var out []Violation
	for _, sp := range c.condSpans(line, metallic) {
		if sp.NetA == sp.NetB {
			continue
		}
		cubeT := c.cubeTable(sp.Cube)
		want := c.conductTable(sp.NetA, sp.NetB)
		if cubeT.Implies(want) {
			continue
		}
		reason := "conduction not implied by intended network function"
		if len(sp.Cube.Lits) == 0 {
			reason = "unconditional doped path (short)"
			if sp.Metallic {
				reason = "metallic tube short"
			}
		}
		out = append(out, Violation{Tube: line, NetA: sp.NetA, NetB: sp.NetB, Cube: copyCube(sp.Cube), Reason: reason})
	}
	return out
}

// Report summarizes a verification run.
type Report struct {
	TubesChecked int
	BadTubes     int
	Violations   []Violation
}

// Immune reports whether no violations were found.
func (r Report) Immune() bool { return r.BadTubes == 0 }

// FailureRate returns the fraction of checked tubes that violate.
func (r Report) FailureRate() float64 {
	if r.TubesChecked == 0 {
		return 0
	}
	return float64(r.BadTubes) / float64(r.TubesChecked)
}

// fork clones the checker with fresh memo caches. Geometry, network and
// input ordering are shared read-only; the caches are the only mutable
// state, so each shard of a parallel run works on its own fork.
func (c *Checker) fork() *Checker { return NewChecker(c.Geom, c.Net, c.Inputs) }

// shard is one contiguous tube-index range of a batched run.
type shard struct{ lo, hi int }

// shardRanges splits n items into count near-equal contiguous ranges.
// The split depends only on n, never on the worker count, so batched
// results are reproducible on any machine.
func shardRanges(n, count int) []shard {
	if count > n {
		count = n
	}
	if count < 1 {
		count = 1
	}
	out := make([]shard, 0, count)
	for i := 0; i < count; i++ {
		lo := i * n / count
		hi := (i + 1) * n / count
		if lo < hi {
			out = append(out, shard{lo, hi})
		}
	}
	return out
}

// defaultShards picks the shard count for an n-tube batch: ~64 tubes per
// shard (enough work to amortize the fork), capped at 64 shards.
func defaultShards(n int) int {
	count := (n + 63) / 64
	if count > 64 {
		count = 64
	}
	return count
}

// shardVerdict is one shard's folded result: full counters plus only the
// prefix of per-tube violation groups a merge could ever retain. The
// local retention rule (keep groups while fewer than 32 violations are
// held) mirrors the global one, so memory stays bounded per shard while
// the merged report is byte-identical to a sequential scan: the global
// rule stops retaining no later than the local rule does.
type shardVerdict struct {
	checked int
	bad     int
	groups  [][]Violation
	held    int // violations across groups
}

// add folds one tube's violation list into the verdict.
func (s *shardVerdict) add(vs []Violation) {
	s.checked++
	if len(vs) == 0 {
		return
	}
	s.bad++
	if s.held < 32 {
		s.groups = append(s.groups, vs)
		s.held += len(vs)
	}
}

// mergeShardVerdicts combines shard verdicts in shard (= tube index)
// order, replaying the sequential loop's retention rule over the
// retained groups.
func mergeShardVerdicts(shards []shardVerdict) Report {
	rep := Report{}
	for _, s := range shards {
		rep.TubesChecked += s.checked
		rep.BadTubes += s.bad
		for _, g := range s.groups {
			if len(rep.Violations) < 32 {
				rep.Violations = append(rep.Violations, g...)
			}
		}
	}
	return rep
}

// sampleLine draws one random tube crossing the bounding box with angle
// up to maxAngleDeg (uniform) and uniform vertical offset.
func sampleLine(bb geom.Rect, maxAngleDeg float64, rng *rand.Rand) geom.Line {
	w, h := float64(bb.W()), float64(bb.H())
	y := float64(bb.Min.Y) - h*0.25 + rng.Float64()*h*1.5
	ang := (2*rng.Float64() - 1) * maxAngleDeg * math.Pi / 180
	dx := w * 1.5
	dy := math.Tan(ang) * dx
	return geom.Ln(float64(bb.Min.X)-w*0.25, y, float64(bb.Min.X)-w*0.25+dx, y+dy)
}

// MonteCarlo samples n random tubes crossing the layout with angles up to
// maxAngleDeg (uniform) and uniform vertical offsets, and checks each.
// The batch is sharded across one worker per CPU; rng seeds the run (one
// draw) and each shard derives its own deterministic RNG, so the report
// depends only on n, the angle bound and the seed — never on the worker
// count.
func (c *Checker) MonteCarlo(n int, maxAngleDeg float64, rng *rand.Rand) Report {
	return c.MonteCarloWorkers(n, maxAngleDeg, rng, 0)
}

// MonteCarloWorkers is MonteCarlo with an explicit worker-pool width
// (<= 0 selects one worker per CPU; 1 is the sequential reference path).
func (c *Checker) MonteCarloWorkers(n int, maxAngleDeg float64, rng *rand.Rand, workers int) Report {
	rep, _ := c.MonteCarloCtx(context.Background(), n, maxAngleDeg, rng, workers)
	return rep
}

// MonteCarloCtx is MonteCarloWorkers with cooperative cancellation: once
// ctx is cancelled no further shards are dispatched and the run returns
// ctx.Err() (a partial report is never returned — the seeded-shard
// determinism guarantee only holds for complete batches).
func (c *Checker) MonteCarloCtx(ctx context.Context, n int, maxAngleDeg float64, rng *rand.Rand, workers int) (Report, error) {
	if n <= 0 {
		return Report{}, nil
	}
	base := rng.Int63()
	shards := shardRanges(n, defaultShards(n))
	verdicts, err := pipeline.MapCtx(ctx, workers, shards, func(si int, sh shard) (shardVerdict, error) {
		srng := rand.New(rand.NewSource(base + int64(si)*0x9E3779B9))
		ck := c.fork()
		var out shardVerdict
		bb := ck.Geom.BBox
		for i := sh.lo; i < sh.hi; i++ {
			line := sampleLine(bb, maxAngleDeg, srng)
			out.add(ck.CheckTube(line, false))
		}
		return out, nil
	})
	if err != nil {
		return Report{}, err
	}
	return mergeShardVerdicts(verdicts), nil
}

// CheckPopulation verifies a synthesized tube population, sharded across
// one worker per CPU. The report is identical to a sequential scan of the
// slice for any worker count.
func (c *Checker) CheckPopulation(tubes []cnt.Tube) Report {
	return c.CheckPopulationWorkers(tubes, 0)
}

// CheckPopulationWorkers is CheckPopulation with an explicit worker-pool
// width (<= 0 selects one worker per CPU; 1 is the sequential reference
// path).
func (c *Checker) CheckPopulationWorkers(tubes []cnt.Tube, workers int) Report {
	rep, _ := c.CheckPopulationCtx(context.Background(), tubes, workers)
	return rep
}

// CheckPopulationCtx is CheckPopulationWorkers with cooperative
// cancellation: once ctx is cancelled no further shards are dispatched and
// the check returns ctx.Err() without a partial report.
func (c *Checker) CheckPopulationCtx(ctx context.Context, tubes []cnt.Tube, workers int) (Report, error) {
	if len(tubes) == 0 {
		return Report{}, nil
	}
	shards := shardRanges(len(tubes), defaultShards(len(tubes)))
	verdicts, err := pipeline.MapCtx(ctx, workers, shards, func(_ int, sh shard) (shardVerdict, error) {
		ck := c.fork()
		var out shardVerdict
		for i := sh.lo; i < sh.hi; i++ {
			out.add(ck.CheckTube(tubes[i].Line, tubes[i].Metallic))
		}
		return out, nil
	})
	if err != nil {
		return Report{}, err
	}
	return mergeShardVerdicts(verdicts), nil
}

// CriticalLines deterministically enumerates candidate violating lines:
// all lines through pairs of element/active corners, each perturbed by ±ε
// in both endpoints' y (violating line sets are open, so a violation
// implies a violating line near a corner-pair line). Returns the combined
// report; an Immune() result is a strong certificate for straight tubes of
// any angle.
func (c *Checker) CriticalLines() Report {
	var pts []geom.FPoint
	add := func(r geom.Rect) {
		for _, p := range r.Corners() {
			pts = append(pts, p.ToF())
		}
	}
	for _, e := range c.Geom.Elements {
		switch e.Kind {
		case layout.ElemContact, layout.ElemGate, layout.ElemEtch:
			add(e.Rect)
		}
	}
	for _, r := range c.Geom.Active {
		add(r)
	}
	rep := Report{}
	const eps = 1e-4
	offs := []float64{-eps, eps}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			a, b := pts[i], pts[j]
			if math.Abs(a.X-b.X) < 1e-12 {
				continue // vertical line cannot cross contact columns in sequence
			}
			for _, da := range offs {
				for _, db := range offs {
					line := extendLine(geom.Ln(a.X, a.Y+da, b.X, b.Y+db), c.Geom.BBox)
					vs := c.CheckTube(line, false)
					rep.TubesChecked++
					if len(vs) > 0 {
						rep.BadTubes++
						if len(rep.Violations) < 32 {
							rep.Violations = append(rep.Violations, vs...)
						}
					}
				}
			}
		}
	}
	return rep
}

// extendLine stretches a segment so it spans well beyond the bounding box.
func extendLine(l geom.Line, bb geom.Rect) geom.Line {
	dx := l.B.X - l.A.X
	dy := l.B.Y - l.A.Y
	n := math.Hypot(dx, dy)
	if n == 0 {
		return l
	}
	reach := (float64(bb.W()) + float64(bb.H())) * 2
	ux, uy := dx/n, dy/n
	return geom.Ln(l.A.X-ux*reach, l.A.Y-uy*reach, l.B.X+ux*reach, l.B.Y+uy*reach)
}
