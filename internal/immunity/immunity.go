// Package immunity verifies that CNFET layouts stay functional under
// mispositioned carbon nanotubes — the property the paper's compact layout
// technique guarantees by construction (Section III).
//
// Model: a tube is a straight line. Walking it left to right within the
// layout's active region yields an ordered crossing sequence of metal
// contacts (net-labelled), gate stripes (input-labelled) and cuts (etched
// regions or leaving the active region). Between two consecutively touched
// contacts with no intervening cut, the tube conducts exactly when every
// crossed gate is ON — a product term (cube). The span is benign iff that
// cube implies the network's intended conduction function between the two
// nets (same-net spans are trivially benign). A layout is immune iff every
// realizable tube yields only benign spans.
//
// Two verdict engines are provided: Monte Carlo sampling, and a
// deterministic critical-line enumeration over pairs of geometry corners
// (if any violating line exists, a violating line exists arbitrarily close
// to one through two corners of the arrangement, so perturbed corner pairs
// are a complete certificate for open violation sets).
package immunity

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cnfetdk/internal/cnt"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
)

// Checker verifies one pull network's geometry against its intended
// conduction behaviour.
type Checker struct {
	Geom   *layout.NetGeom
	Net    *network.Network
	Inputs []string

	conduct map[[2]string]*logic.Table
	cubeTab map[string]*logic.Table
}

// NewChecker builds a checker for one network. inputs orders the truth
// tables and must cover every gate input.
func NewChecker(g *layout.NetGeom, nw *network.Network, inputs []string) *Checker {
	return &Checker{
		Geom:    g,
		Net:     nw,
		Inputs:  inputs,
		conduct: map[[2]string]*logic.Table{},
		cubeTab: map[string]*logic.Table{},
	}
}

// Violation describes a tube span that conducts when the network must not.
type Violation struct {
	Tube   geom.Line
	NetA   string
	NetB   string
	Cube   logic.Cube
	Reason string
}

// String renders a violation.
func (v Violation) String() string {
	return fmt.Sprintf("tube %.1f° %s-%s conducts under %s: %s",
		v.Tube.AngleDeg(), v.NetA, v.NetB, v.Cube, v.Reason)
}

// crossing is one geometry crossing along a tube.
type crossing struct {
	t    float64 // parameter midpoint along the tube
	t0   float64 // span start
	t1   float64 // span end
	kind layout.ElemKind
	net  string
	in   string
	neg  bool
}

// trace computes the ordered crossing sequence of a tube, plus the maximal
// intervals of the tube covered by active material.
func (c *Checker) trace(line geom.Line) (seq []crossing, covered []geom.Span) {
	for _, e := range c.Geom.Elements {
		switch e.Kind {
		case layout.ElemContact, layout.ElemGate, layout.ElemEtch:
		default:
			continue
		}
		sp, ok := line.ClipToRect(e.Rect)
		if !ok {
			continue
		}
		seq = append(seq, crossing{
			t: sp.Mid(), t0: sp.T0, t1: sp.T1,
			kind: e.Kind, net: e.Net, in: e.Input, neg: e.Neg,
		})
	}
	sort.Slice(seq, func(i, j int) bool { return seq[i].t < seq[j].t })

	var spans []geom.Span
	for _, r := range c.Geom.Active {
		if sp, ok := line.ClipToRect(r); ok {
			spans = append(spans, sp)
		}
	}
	covered = mergeSpans(spans)
	return seq, covered
}

// mergeSpans merges overlapping/abutting parameter intervals.
func mergeSpans(spans []geom.Span) []geom.Span {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].T0 < spans[j].T0 })
	const eps = 1e-9
	out := []geom.Span{spans[0]}
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.T0 <= last.T1+eps {
			if s.T1 > last.T1 {
				last.T1 = s.T1
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

// inCovered reports whether [a,b] lies inside one covered interval.
func inCovered(covered []geom.Span, a, b float64) bool {
	const eps = 1e-9
	for _, s := range covered {
		if a >= s.T0-eps && b <= s.T1+eps {
			return true
		}
	}
	return false
}

// conductTable returns (caching) the intended conduction function between
// two nets of the network. A net the network does not know (e.g. a
// mislabelled contact) can never legitimately conduct to anything, so the
// intended function is constant false.
func (c *Checker) conductTable(u, v string) *logic.Table {
	key := [2]string{u, v}
	if u > v {
		key = [2]string{v, u}
	}
	if t, ok := c.conduct[key]; ok {
		return t
	}
	known := map[string]bool{}
	for _, n := range c.Net.Nets() {
		known[n] = true
	}
	var t *logic.Table
	if known[u] && known[v] {
		t = c.Net.Conduct(key[0], key[1], c.Inputs)
	} else {
		t = logic.NewTable(c.Inputs)
	}
	c.conduct[key] = t
	return t
}

// cubeTable returns (caching) the truth table of a conduction cube.
func (c *Checker) cubeTable(cu logic.Cube) *logic.Table {
	key := cu.String()
	if t, ok := c.cubeTab[key]; ok {
		return t
	}
	t := logic.TableOfCube(cu, c.Inputs)
	c.cubeTab[key] = t
	return t
}

// CondSpan is one conductive tube span between two touched contacts: it
// conducts exactly when its cube is satisfied (always, for metallic tubes
// or bare doped spans — the empty cube).
type CondSpan struct {
	NetA, NetB string
	Cube       logic.Cube
	Metallic   bool
}

// CondSpans extracts every conductive span of a tube: consecutive contact
// touches with continuous active coverage and no etch crossing in between.
// The cube collects the crossed gates with device polarity applied
// (p-FETs conduct on 0, n-FETs on 1, complemented inputs flipped);
// metallic tubes ignore gates entirely.
func (c *Checker) CondSpans(line geom.Line, metallic bool) []CondSpan {
	seq, covered := c.trace(line)
	var out []CondSpan
	lastContact := -1
	var gates []crossing
	for i, cr := range seq {
		switch cr.kind {
		case layout.ElemEtch:
			lastContact = -1
			gates = gates[:0]
		case layout.ElemGate:
			gates = append(gates, cr)
		case layout.ElemContact:
			if lastContact >= 0 {
				prev := seq[lastContact]
				// The span counts only if fully on active material.
				if inCovered(covered, prev.t1, cr.t0) {
					out = append(out, CondSpan{
						NetA:     prev.net,
						NetB:     cr.net,
						Cube:     c.buildCube(gates, metallic),
						Metallic: metallic,
					})
				}
			}
			lastContact = i
			gates = gates[:0]
		}
	}
	return out
}

func (c *Checker) buildCube(gates []crossing, metallic bool) logic.Cube {
	var cube logic.Cube
	if metallic {
		return cube
	}
	seen := map[string]bool{}
	for _, g := range gates {
		neg := c.Net.Type == network.PFET
		if g.neg {
			neg = !neg
		}
		key := fmt.Sprintf("%s/%v", g.in, neg)
		if !seen[key] {
			seen[key] = true
			cube.Lits = append(cube.Lits, logic.Literal{Input: g.in, Neg: neg})
		}
	}
	return cube
}

// CheckTube analyses one tube (semiconducting unless metallic) and returns
// any violating spans.
func (c *Checker) CheckTube(line geom.Line, metallic bool) []Violation {
	var out []Violation
	for _, sp := range c.CondSpans(line, metallic) {
		if sp.NetA == sp.NetB {
			continue
		}
		cubeT := c.cubeTable(sp.Cube)
		want := c.conductTable(sp.NetA, sp.NetB)
		if cubeT.Implies(want) {
			continue
		}
		reason := "conduction not implied by intended network function"
		if len(sp.Cube.Lits) == 0 {
			reason = "unconditional doped path (short)"
			if sp.Metallic {
				reason = "metallic tube short"
			}
		}
		out = append(out, Violation{Tube: line, NetA: sp.NetA, NetB: sp.NetB, Cube: sp.Cube, Reason: reason})
	}
	return out
}

// Report summarizes a verification run.
type Report struct {
	TubesChecked int
	BadTubes     int
	Violations   []Violation
}

// Immune reports whether no violations were found.
func (r Report) Immune() bool { return r.BadTubes == 0 }

// FailureRate returns the fraction of checked tubes that violate.
func (r Report) FailureRate() float64 {
	if r.TubesChecked == 0 {
		return 0
	}
	return float64(r.BadTubes) / float64(r.TubesChecked)
}

// MonteCarlo samples n random tubes crossing the layout with angles up to
// maxAngleDeg (uniform) and uniform vertical offsets, and checks each.
func (c *Checker) MonteCarlo(n int, maxAngleDeg float64, rng *rand.Rand) Report {
	rep := Report{}
	bb := c.Geom.BBox
	w, h := float64(bb.W()), float64(bb.H())
	for i := 0; i < n; i++ {
		y := float64(bb.Min.Y) - h*0.25 + rng.Float64()*h*1.5
		ang := (2*rng.Float64() - 1) * maxAngleDeg * math.Pi / 180
		dx := w * 1.5
		dy := math.Tan(ang) * dx
		line := geom.Ln(float64(bb.Min.X)-w*0.25, y, float64(bb.Min.X)-w*0.25+dx, y+dy)
		vs := c.CheckTube(line, false)
		rep.TubesChecked++
		if len(vs) > 0 {
			rep.BadTubes++
			if len(rep.Violations) < 32 {
				rep.Violations = append(rep.Violations, vs...)
			}
		}
	}
	return rep
}

// CheckPopulation verifies a synthesized tube population.
func (c *Checker) CheckPopulation(tubes []cnt.Tube) Report {
	rep := Report{}
	for _, t := range tubes {
		vs := c.CheckTube(t.Line, t.Metallic)
		rep.TubesChecked++
		if len(vs) > 0 {
			rep.BadTubes++
			if len(rep.Violations) < 32 {
				rep.Violations = append(rep.Violations, vs...)
			}
		}
	}
	return rep
}

// CriticalLines deterministically enumerates candidate violating lines:
// all lines through pairs of element/active corners, each perturbed by ±ε
// in both endpoints' y (violating line sets are open, so a violation
// implies a violating line near a corner-pair line). Returns the combined
// report; an Immune() result is a strong certificate for straight tubes of
// any angle.
func (c *Checker) CriticalLines() Report {
	var pts []geom.FPoint
	add := func(r geom.Rect) {
		for _, p := range r.Corners() {
			pts = append(pts, p.ToF())
		}
	}
	for _, e := range c.Geom.Elements {
		switch e.Kind {
		case layout.ElemContact, layout.ElemGate, layout.ElemEtch:
			add(e.Rect)
		}
	}
	for _, r := range c.Geom.Active {
		add(r)
	}
	rep := Report{}
	const eps = 1e-4
	offs := []float64{-eps, eps}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			a, b := pts[i], pts[j]
			if math.Abs(a.X-b.X) < 1e-12 {
				continue // vertical line cannot cross contact columns in sequence
			}
			for _, da := range offs {
				for _, db := range offs {
					line := extendLine(geom.Ln(a.X, a.Y+da, b.X, b.Y+db), c.Geom.BBox)
					vs := c.CheckTube(line, false)
					rep.TubesChecked++
					if len(vs) > 0 {
						rep.BadTubes++
						if len(rep.Violations) < 32 {
							rep.Violations = append(rep.Violations, vs...)
						}
					}
				}
			}
		}
	}
	return rep
}

// extendLine stretches a segment so it spans well beyond the bounding box.
func extendLine(l geom.Line, bb geom.Rect) geom.Line {
	dx := l.B.X - l.A.X
	dy := l.B.Y - l.A.Y
	n := math.Hypot(dx, dy)
	if n == 0 {
		return l
	}
	reach := (float64(bb.W()) + float64(bb.H())) * 2
	ux, uy := dx/n, dy/n
	return geom.Ln(l.A.X-ux*reach, l.A.Y-uy*reach, l.B.X+ux*reach, l.B.Y+uy*reach)
}
