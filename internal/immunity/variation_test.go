package immunity

import (
	"context"
	"math"
	"testing"

	"cnfetdk/internal/device"
)

func TestCellYieldImmuneLayout(t *testing.T) {
	lib := cnfetLib(t)
	v := device.Variations{CountCV: 0.2, AlignmentP: 0.1}
	cy, err := CellYieldCtx(context.Background(), lib, "NAND2_1X", v, 0, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's layouts are immune: no critical-line tube breaks
	// logic, so BreakP is 0 and alignment contributes nothing.
	if cy.BreakP != 0 {
		t.Fatalf("immune cell BreakP = %g, want 0", cy.BreakP)
	}
	if cy.AlignYield != 1 {
		t.Fatalf("immune cell align yield = %g, want exactly 1", cy.AlignYield)
	}
	if cy.Devices == 0 || cy.Tubes < cy.Devices {
		t.Fatalf("device accounting %d devices / %d tubes", cy.Devices, cy.Tubes)
	}
	// Count yield composes per device.
	want := 1.0
	for _, tubes := range lib.DeviceTubes(lib.MustGet("NAND2_1X")) {
		want *= v.CountYield(tubes)
	}
	if math.Abs(cy.CountYield-want) > 1e-15 {
		t.Fatalf("count yield = %g, want per-device product %g", cy.CountYield, want)
	}
	if cy.Yield != cy.CountYield*cy.AlignYield {
		t.Fatalf("yield = %g, want factor product", cy.Yield)
	}
}

func TestCellYieldDeterministicMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("monte carlo")
	}
	lib := cnfetLib(t)
	v := device.Variations{CountCV: 0.1, AlignmentP: 0.05}
	run := func(workers int) *CellYield {
		cy, err := CellYieldCtx(context.Background(), lib, "AOI21_1X", v, 200, 0, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		return cy
	}
	a, b := run(1), run(4)
	if *a != *b {
		t.Fatalf("Monte Carlo cell yield differs across worker counts:\n%+v\n%+v", a, b)
	}
	if a.Yield <= 0 || a.Yield > 1 {
		t.Fatalf("yield = %g outside (0, 1]", a.Yield)
	}
}

func TestCellYieldZeroVariations(t *testing.T) {
	lib := cnfetLib(t)
	cy, err := CellYieldCtx(context.Background(), lib, "INV_1X", device.Variations{}, 0, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cy.Yield != 1 || cy.CountYield != 1 || cy.AlignYield != 1 {
		t.Fatalf("zero-variation yields %+v, want all exactly 1", cy)
	}
}

func TestCellYieldUnknownCell(t *testing.T) {
	lib := cnfetLib(t)
	if _, err := CellYieldCtx(context.Background(), lib, "NANDX_9X", device.Variations{}, 0, 0, 1, 1); err == nil {
		t.Fatal("unknown cell must fail")
	}
}
