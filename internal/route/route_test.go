package route

import (
	"testing"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/place"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/synth"
)

// fakePlacement builds a placement directly for router unit tests.
func fakePlacement(cellsAt [][2]geom.Coord, nets [][]int) (*place.Placement, *synth.Netlist) {
	p := &place.Placement{Name: "t"}
	nl := &synth.Netlist{Name: "t"}
	for i, at := range cellsAt {
		inst := synth.Instance{
			Name:  string(rune('a' + i)),
			Cell:  "INV_1X",
			Conns: map[string]string{},
		}
		p.Cells = append(p.Cells, place.PlacedCell{
			Inst: inst,
			X:    at[0], Y: at[1],
			W: geom.Lambda(8), H: geom.Lambda(8),
		})
		if at[0]+geom.Lambda(8) > p.Width {
			p.Width = at[0] + geom.Lambda(8)
		}
		if at[1]+geom.Lambda(8) > p.Height {
			p.Height = at[1] + geom.Lambda(8)
		}
	}
	for ni, members := range nets {
		name := "net" + string(rune('0'+ni))
		for _, ci := range members {
			p.Cells[ci].Inst.Conns["P"+name] = name
		}
	}
	return p, nl
}

func TestTwoPinNetManhattanLength(t *testing.T) {
	p, nl := fakePlacement([][2]geom.Coord{
		{0, 0}, {geom.Lambda(40), 0},
	}, [][]int{{0, 1}})
	res, err := Route(p, nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nets) != 1 {
		t.Fatalf("nets routed = %d", len(res.Nets))
	}
	// Cell centers 40λ apart horizontally: routed length must equal the
	// snapped Manhattan distance (40λ, same row).
	if got := res.Nets[0].WirelenLambda; got != 40 {
		t.Fatalf("wirelength = %vλ, want 40", got)
	}
	if res.OverflowEdges != 0 {
		t.Fatal("single net cannot overflow")
	}
}

func TestLShapedRouteHasVia(t *testing.T) {
	p, nl := fakePlacement([][2]geom.Coord{
		{0, 0}, {geom.Lambda(40), geom.Lambda(40)},
	}, [][]int{{0, 1}})
	res, err := Route(p, nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := res.Nets[0]
	if n.WirelenLambda != 80 {
		t.Fatalf("wirelength = %vλ, want 80 (Manhattan)", n.WirelenLambda)
	}
	if len(n.Segments) < 2 {
		t.Fatalf("L route needs >= 2 segments, got %d", len(n.Segments))
	}
	if res.Vias == 0 {
		t.Fatal("layer change must count a via")
	}
}

func TestMultiPinChain(t *testing.T) {
	p, nl := fakePlacement([][2]geom.Coord{
		{0, 0}, {geom.Lambda(24), 0}, {geom.Lambda(48), 0},
	}, [][]int{{0, 1, 2}})
	res, err := Route(p, nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Nets[0].WirelenLambda; got != 48 {
		t.Fatalf("3-pin chain wirelength = %vλ, want 48", got)
	}
}

func TestCongestionDetours(t *testing.T) {
	// Many parallel nets across the same cut must either share edges
	// (overflow) or detour (longer wirelength); with capacity 1 and heavy
	// penalty the router detours.
	var cellsAt [][2]geom.Coord
	var nets [][]int
	for i := 0; i < 6; i++ {
		y := geom.Coord(i) * geom.Lambda(4)
		cellsAt = append(cellsAt, [2]geom.Coord{0, y}, [2]geom.Coord{geom.Lambda(40), y})
		nets = append(nets, []int{2 * i, 2*i + 1})
	}
	p, nl := fakePlacement(cellsAt, nets)
	opt := DefaultOptions()
	opt.Capacity = 1
	res, err := Route(p, nl, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxEdgeLoad > 2 {
		t.Fatalf("max edge load %d despite congestion costs", res.MaxEdgeLoad)
	}
	total := 0.0
	for _, n := range res.Nets {
		total += n.WirelenLambda
	}
	if total < 6*40 {
		t.Fatalf("total wirelength %vλ below the 6-net minimum", total)
	}
}

func TestSegmentsContinuous(t *testing.T) {
	p, nl := fakePlacement([][2]geom.Coord{
		{0, 0}, {geom.Lambda(32), geom.Lambda(24)},
	}, [][]int{{0, 1}})
	res, err := Route(p, nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	segs := res.Nets[0].Segments
	for i := 1; i < len(segs); i++ {
		if segs[i].From != segs[i-1].To {
			t.Fatalf("segment %d discontinuous: %v -> %v", i, segs[i-1].To, segs[i].From)
		}
	}
}

func TestRouteFullAdderPlacements(t *testing.T) {
	cn, err := cells.NewLibrary(rules.CNFET)
	if err != nil {
		t.Fatal(err)
	}
	nl := synth.FullAdder()
	for _, placer := range []struct {
		name string
		fn   func() (*place.Placement, error)
	}{
		{"scheme1", func() (*place.Placement, error) { return place.Rows(cn, nl, 2) }},
		{"scheme2", func() (*place.Placement, error) { return place.Shelves(cn, nl, 0) }},
	} {
		p, err := placer.fn()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Route(p, nl, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", placer.name, err)
		}
		if len(res.Nets) == 0 || res.TotalWirelenLambda <= 0 {
			t.Fatalf("%s: nothing routed", placer.name)
		}
		// Routed length must be at least the HPWL lower bound per net.
		hpwl := p.HPWL(nl)
		for _, n := range res.Nets {
			lb := hpwl[n.Name]
			if n.WirelenLambda+8 < lb { // one grid step of snap slack
				t.Fatalf("%s: net %s routed %vλ below HPWL %vλ",
					placer.name, n.Name, n.WirelenLambda, lb)
			}
		}
		t.Logf("%s: %d nets, %.0fλ wire, %d vias, overflow %d, max load %d",
			placer.name, len(res.Nets), res.TotalWirelenLambda,
			res.Vias, res.OverflowEdges, res.MaxEdgeLoad)
	}
}
