// Package route is a two-layer Manhattan global router for placed designs:
// nets are decomposed into pin chains and each segment is routed with BFS
// over a capacitated λ-grid (horizontal tracks on one metal layer,
// vertical on the next, vias at bends). It completes the kit's P&R story
// and quantifies the routing-complexity question the paper raises for
// scheme-2 layouts ("needs new placement tools taking into account IR
// drops and routing complexity").
package route

import (
	"container/heap"
	"fmt"
	"sort"

	"cnfetdk/internal/geom"
	"cnfetdk/internal/place"
	"cnfetdk/internal/synth"
)

// Options configures the router.
type Options struct {
	// StepLambda is the routing-grid pitch in λ (track pitch).
	StepLambda int
	// Capacity is the number of nets one grid edge can carry.
	Capacity int
	// CongestionCost penalizes edges at or beyond capacity instead of
	// forbidding them (keeps hard cases routable while counting
	// overflows).
	CongestionCost int
}

// DefaultOptions returns a 4λ-pitch grid with single-track edges.
func DefaultOptions() Options {
	return Options{StepLambda: 4, Capacity: 2, CongestionCost: 16}
}

// Segment is one routed Manhattan segment on a layer (0 = horizontal
// metal, 1 = vertical metal).
type Segment struct {
	Layer    int
	From, To geom.Point
}

// Net is one routed net.
type Net struct {
	Name     string
	Pins     []geom.Point
	Segments []Segment
	// WirelenLambda is the total routed length in λ.
	WirelenLambda float64
}

// Result is a routed design.
type Result struct {
	Nets []Net
	// TotalWirelenLambda sums all net lengths.
	TotalWirelenLambda float64
	// OverflowEdges counts grid edges loaded beyond capacity.
	OverflowEdges int
	// MaxEdgeLoad is the worst single-edge utilization.
	MaxEdgeLoad int
	// Vias counts layer changes.
	Vias int
}

// grid tracks per-edge usage. Edges are identified by their lower/left
// node and direction.
type grid struct {
	w, h  int
	useH  []int // (w-1)*h horizontal edges
	useV  []int // w*(h-1) vertical edges
	opt   Options
	stepQ geom.Coord // grid pitch in Coord units
}

func (g *grid) hIdx(x, y int) int { return y*(g.w-1) + x }
func (g *grid) vIdx(x, y int) int { return y*g.w + x }

// cost returns the traversal cost of an edge given its current load.
func (g *grid) cost(use int) int {
	if use >= g.opt.Capacity {
		return 1 + g.opt.CongestionCost*(use-g.opt.Capacity+1)
	}
	return 1
}

// Route routes every multi-pin net of the netlist over the placement.
// Pin positions are the placed cells' pin markers (cell centers when a
// pin marker is missing). Primary I/O pins are not routed to the
// boundary; nets with fewer than two pins are skipped.
func Route(p *place.Placement, nl *synth.Netlist, opt Options) (*Result, error) {
	if opt.StepLambda <= 0 {
		opt = DefaultOptions()
	}
	stepQ := geom.Lambda(opt.StepLambda)
	// Grid covers the placement bounding box with one cell of margin.
	w := int(p.Width/stepQ) + 3
	h := int(p.Height/stepQ) + 3
	g := &grid{w: w, h: h, opt: opt, stepQ: stepQ,
		useH: make([]int, (w-1)*h), useV: make([]int, w*(h-1))}

	pins := collectPins(p)
	res := &Result{}
	// Deterministic net order: by name.
	names := make([]string, 0, len(pins))
	for n := range pins {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		pts := pins[name]
		if len(pts) < 2 {
			continue
		}
		net, err := g.routeNet(name, pts)
		if err != nil {
			return nil, fmt.Errorf("route: net %s: %w", name, err)
		}
		res.Nets = append(res.Nets, net)
		res.TotalWirelenLambda += net.WirelenLambda
	}
	// Congestion accounting.
	for _, u := range g.useH {
		if u > res.MaxEdgeLoad {
			res.MaxEdgeLoad = u
		}
		if u > opt.Capacity {
			res.OverflowEdges++
		}
	}
	for _, u := range g.useV {
		if u > res.MaxEdgeLoad {
			res.MaxEdgeLoad = u
		}
		if u > opt.Capacity {
			res.OverflowEdges++
		}
	}
	for _, n := range res.Nets {
		for i := 1; i < len(n.Segments); i++ {
			if n.Segments[i].Layer != n.Segments[i-1].Layer {
				res.Vias++
			}
		}
	}
	return res, nil
}

// collectPins gathers per-net pin locations from the placement: each
// instance contributes its cell center for every connected net (a robust
// proxy; exact pin offsets shift results by under a grid step).
func collectPins(p *place.Placement) map[string][]geom.Point {
	pins := map[string][]geom.Point{}
	for _, pc := range p.Cells {
		for _, net := range pc.Inst.Conns {
			pins[net] = append(pins[net], pc.Center())
		}
	}
	return pins
}

// routeNet chains the pins in x order and BFS-routes each consecutive
// pair, accumulating segments and reserving grid capacity.
func (g *grid) routeNet(name string, pts []geom.Point) (Net, error) {
	net := Net{Name: name, Pins: pts}
	nodes := make([][2]int, len(pts))
	for i, pt := range pts {
		nodes[i] = g.snap(pt)
	}
	sort.Slice(nodes, func(a, b int) bool {
		if nodes[a][0] != nodes[b][0] {
			return nodes[a][0] < nodes[b][0]
		}
		return nodes[a][1] < nodes[b][1]
	})
	for i := 1; i < len(nodes); i++ {
		segs, err := g.path(nodes[i-1], nodes[i])
		if err != nil {
			return net, err
		}
		net.Segments = append(net.Segments, segs...)
	}
	for _, s := range net.Segments {
		dx := s.To.X - s.From.X
		if dx < 0 {
			dx = -dx
		}
		dy := s.To.Y - s.From.Y
		if dy < 0 {
			dy = -dy
		}
		net.WirelenLambda += (dx + dy).Lambdas()
	}
	return net, nil
}

func (g *grid) snap(pt geom.Point) [2]int {
	x := int((pt.X + g.stepQ/2) / g.stepQ)
	y := int((pt.Y + g.stepQ/2) / g.stepQ)
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= g.w {
		x = g.w - 1
	}
	if y >= g.h {
		y = g.h - 1
	}
	return [2]int{x, y}
}

// path runs Dijkstra (uniform costs + congestion penalties) from a to b
// and reserves the edges of the found path.
func (g *grid) path(a, b [2]int) ([]Segment, error) {
	if a == b {
		return nil, nil
	}
	n := g.w * g.h
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)
	prev := make([]int, n)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	id := func(x, y int) int { return y*g.w + x }
	start, goal := id(a[0], a[1]), id(b[0], b[1])
	dist[start] = 0
	pq := &nodeHeap{{start, 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(heapNode)
		if cur.dist > dist[cur.id] {
			continue
		}
		if cur.id == goal {
			break
		}
		x, y := cur.id%g.w, cur.id/g.w
		try := func(nx, ny, edgeCost int) {
			ni := id(nx, ny)
			if d := cur.dist + edgeCost; d < dist[ni] {
				dist[ni] = d
				prev[ni] = cur.id
				heap.Push(pq, heapNode{ni, d})
			}
		}
		if x > 0 {
			try(x-1, y, g.cost(g.useH[g.hIdx(x-1, y)]))
		}
		if x < g.w-1 {
			try(x+1, y, g.cost(g.useH[g.hIdx(x, y)]))
		}
		if y > 0 {
			try(x, y-1, g.cost(g.useV[g.vIdx(x, y-1)]))
		}
		if y < g.h-1 {
			try(x, y+1, g.cost(g.useV[g.vIdx(x, y)]))
		}
	}
	if prev[goal] == -1 && goal != start {
		return nil, fmt.Errorf("unroutable (grid %dx%d)", g.w, g.h)
	}
	// Walk back, reserve edges, and merge runs into segments.
	var cells [][2]int
	for i := goal; i != -1; i = prev[i] {
		cells = append(cells, [2]int{i % g.w, i / g.w})
		if i == start {
			break
		}
	}
	// Reverse to a->b.
	for i, j := 0, len(cells)-1; i < j; i, j = i+1, j-1 {
		cells[i], cells[j] = cells[j], cells[i]
	}
	for i := 1; i < len(cells); i++ {
		x0, y0 := cells[i-1][0], cells[i-1][1]
		x1, y1 := cells[i][0], cells[i][1]
		if y0 == y1 {
			if x1 < x0 {
				x0, x1 = x1, x0
			}
			g.useH[g.hIdx(x0, y0)]++
		} else {
			if y1 < y0 {
				y0, y1 = y1, y0
			}
			g.useV[g.vIdx(x0, y0)]++
		}
	}
	return mergeSegments(cells, g.stepQ), nil
}

// mergeSegments converts a grid-cell path into maximal straight segments,
// horizontal runs on layer 0 and vertical runs on layer 1.
func mergeSegments(cells [][2]int, step geom.Coord) []Segment {
	if len(cells) < 2 {
		return nil
	}
	toPt := func(c [2]int) geom.Point {
		return geom.Pt(geom.Coord(c[0])*step, geom.Coord(c[1])*step)
	}
	var out []Segment
	runStart := 0
	dirOf := func(i int) int { // 0 horizontal, 1 vertical
		if cells[i][1] == cells[i+1][1] {
			return 0
		}
		return 1
	}
	cur := dirOf(0)
	for i := 1; i < len(cells); i++ {
		if i == len(cells)-1 || dirOf(i) != cur {
			out = append(out, Segment{
				Layer: cur,
				From:  toPt(cells[runStart]),
				To:    toPt(cells[i]),
			})
			runStart = i
			if i < len(cells)-1 {
				cur = dirOf(i)
			}
		}
	}
	return out
}

// --- priority queue ---

type heapNode struct {
	id   int
	dist int
}

type nodeHeap []heapNode

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(heapNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
