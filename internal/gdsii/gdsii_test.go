package gdsii

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReal8RoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 1e-9, 1e-3, 0.5, 2, 1024, -3.14159, 6.25e-10} {
		got := fromReal8(toReal8(v))
		if v == 0 {
			if got != 0 {
				t.Fatalf("real8(0) = %v", got)
			}
			continue
		}
		if math.Abs(got-v)/math.Abs(v) > 1e-12 {
			t.Fatalf("real8 round trip %v -> %v", v, got)
		}
	}
}

func TestReal8RandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		v := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(20)-10))
		got := fromReal8(toReal8(v))
		if v == 0 {
			return got == 0
		}
		return math.Abs(got-v) <= math.Abs(v)*1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestKnownReal8Encoding(t *testing.T) {
	// The canonical GDSII example: 1.0 encodes as 0x4110000000000000.
	if got := toReal8(1.0); got != 0x4110000000000000 {
		t.Fatalf("toReal8(1.0) = %#x", got)
	}
	// And the standard unit 1e-9.
	if got := fromReal8(toReal8(1e-9)); math.Abs(got-1e-9) > 1e-21 {
		t.Fatalf("1e-9 round trip = %v", got)
	}
}

func TestLibraryRoundTrip(t *testing.T) {
	lib := NewLibrary("CNFETDK")
	inv := lib.Add("INV1X")
	inv.Rect(LayerCNT, 0, 0, 130, 520)
	inv.Rect(LayerGate, 52, 0, 78, 520)
	inv.Label(LayerPin, 65, 260, "A")
	top := lib.Add("TOP")
	top.Ref("INV1X", 100, 200)
	top.SRefs = append(top.SRefs, SRef{Name: "INV1X", At: Point{500, 0}, AngleDeg: 90, Mag: 2, Reflect: true})

	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "CNFETDK" {
		t.Fatalf("lib name = %q", got.Name)
	}
	if math.Abs(got.MeterUnit-1e-9) > 1e-21 {
		t.Fatalf("meter unit = %v", got.MeterUnit)
	}
	if len(got.Structures) != 2 {
		t.Fatalf("structures = %d", len(got.Structures))
	}
	gi := got.Find("INV1X")
	if gi == nil {
		t.Fatal("INV1X missing")
	}
	if len(gi.Boundaries) != 2 {
		t.Fatalf("boundaries = %d", len(gi.Boundaries))
	}
	b := gi.Boundaries[0]
	if b.Layer != LayerCNT || len(b.XY) != 5 {
		t.Fatalf("boundary = %+v", b)
	}
	if b.XY[2] != (Point{130, 520}) {
		t.Fatalf("vertex = %+v", b.XY[2])
	}
	if len(gi.Texts) != 1 || gi.Texts[0].S != "A" {
		t.Fatalf("texts = %+v", gi.Texts)
	}
	gt := got.Find("TOP")
	if len(gt.SRefs) != 2 {
		t.Fatalf("srefs = %d", len(gt.SRefs))
	}
	if gt.SRefs[0].At != (Point{100, 200}) {
		t.Fatalf("sref at = %+v", gt.SRefs[0].At)
	}
	r := gt.SRefs[1]
	if !r.Reflect || math.Abs(r.AngleDeg-90) > 1e-9 || math.Abs(r.Mag-2) > 1e-12 {
		t.Fatalf("sref transform = %+v", r)
	}
}

func TestPolygonClosing(t *testing.T) {
	lib := NewLibrary("L")
	s := lib.Add("S")
	s.Boundaries = append(s.Boundaries, Boundary{
		Layer: 1,
		XY:    []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}, // not closed
	})
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	xy := got.Structures[0].Boundaries[0].XY
	if len(xy) != 5 || xy[0] != xy[4] {
		t.Fatalf("polygon not closed on write: %+v", xy)
	}
}

func TestOddLengthStringPadding(t *testing.T) {
	lib := NewLibrary("ODD") // 3 chars: needs padding
	lib.Add("ABC")
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len()%2 != 0 {
		t.Fatal("stream length must be even")
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "ODD" || got.Structures[0].Name != "ABC" {
		t.Fatalf("padded strings corrupted: %q %q", got.Name, got.Structures[0].Name)
	}
}

func TestEmptyLibrary(t *testing.T) {
	lib := NewLibrary("EMPTY")
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "EMPTY" || len(got.Structures) != 0 {
		t.Fatalf("empty library round trip failed: %+v", got)
	}
}

func TestNegativeCoordinates(t *testing.T) {
	lib := NewLibrary("NEG")
	s := lib.Add("S")
	s.Rect(1, -100, -200, 50, 75)
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	xy := got.Structures[0].Boundaries[0].XY
	if xy[0] != (Point{-100, -200}) {
		t.Fatalf("negative coords corrupted: %+v", xy[0])
	}
}
