// Package gdsii implements the GDSII stream format (the "GDSII" half of
// the paper's logic-to-GDSII flow): a typed in-memory model of libraries,
// structures, boundaries, structure references and text labels, with a
// binary writer and reader sufficient for round-tripping the design kit's
// cell layouts and placements into industry-standard streams.
package gdsii

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Record types used by this implementation.
const (
	recHeader   = 0x00
	recBgnLib   = 0x01
	recLibName  = 0x02
	recUnits    = 0x03
	recEndLib   = 0x04
	recBgnStr   = 0x05
	recStrName  = 0x06
	recEndStr   = 0x07
	recBoundary = 0x08
	recSRef     = 0x0A
	recText     = 0x0C
	recLayer    = 0x0D
	recDatatype = 0x0E
	recXY       = 0x10
	recEndEl    = 0x11
	recSName    = 0x12
	recTextType = 0x16
	recString   = 0x19
	recStrans   = 0x1A
	recMag      = 0x1B
	recAngle    = 0x1C
)

// Data type codes.
const (
	dtNone   = 0x00
	dtBit    = 0x01
	dtInt16  = 0x02
	dtInt32  = 0x03
	dtReal8  = 0x05
	dtString = 0x06
)

// Point is a database-unit coordinate.
type Point struct {
	X, Y int32
}

// Boundary is a closed polygon on a layer.
type Boundary struct {
	Layer    int16
	Datatype int16
	// XY are the vertices; the closing vertex (repeat of the first) is
	// added on write if missing.
	XY []Point
}

// SRef is a structure reference (cell instance).
type SRef struct {
	Name string
	At   Point
	// Mag is the magnification (0 or 1 = none).
	Mag float64
	// AngleDeg is the CCW rotation (degrees).
	AngleDeg float64
	// Reflect mirrors about the X axis before rotation.
	Reflect bool
}

// Text is a label.
type Text struct {
	Layer    int16
	TextType int16
	At       Point
	S        string
}

// Structure is a named cell.
type Structure struct {
	Name       string
	Boundaries []Boundary
	SRefs      []SRef
	Texts      []Text
}

// Library is a GDSII library.
type Library struct {
	Name string
	// UserUnit is the size of a database unit in user units (e.g. 1e-3
	// for 1 dbu = 1/1000 µm).
	UserUnit float64
	// MeterUnit is the size of a database unit in metres.
	MeterUnit  float64
	Structures []*Structure
}

// NewLibrary returns a library with 1 dbu = 1nm units.
func NewLibrary(name string) *Library {
	return &Library{Name: name, UserUnit: 1e-3, MeterUnit: 1e-9}
}

// Add appends a structure and returns it.
func (l *Library) Add(name string) *Structure {
	s := &Structure{Name: name}
	l.Structures = append(l.Structures, s)
	return s
}

// Find returns the named structure or nil.
func (l *Library) Find(name string) *Structure {
	for _, s := range l.Structures {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Rect adds a rectangle boundary to the structure.
func (s *Structure) Rect(layer int16, x0, y0, x1, y1 int32) {
	s.Boundaries = append(s.Boundaries, Boundary{
		Layer: layer,
		XY: []Point{
			{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}, {x0, y0},
		},
	})
}

// Label adds a text label.
func (s *Structure) Label(layer int16, x, y int32, text string) {
	s.Texts = append(s.Texts, Text{Layer: layer, At: Point{x, y}, S: text})
}

// Ref adds a cell reference.
func (s *Structure) Ref(name string, x, y int32) {
	s.SRefs = append(s.SRefs, SRef{Name: name, At: Point{x, y}})
}

// --- writer ---

type writer struct {
	w   io.Writer
	err error
}

func (w *writer) record(rt, dt byte, payload []byte) {
	if w.err != nil {
		return
	}
	n := len(payload) + 4
	hdr := []byte{byte(n >> 8), byte(n), rt, dt}
	if _, err := w.w.Write(hdr); err != nil {
		w.err = err
		return
	}
	if len(payload) > 0 {
		_, w.err = w.w.Write(payload)
	}
}

func (w *writer) int16s(rt byte, vs ...int16) {
	buf := make([]byte, 2*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint16(buf[2*i:], uint16(v))
	}
	w.record(rt, dtInt16, buf)
}

func (w *writer) int32s(rt byte, vs ...int32) {
	buf := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
	}
	w.record(rt, dtInt32, buf)
}

func (w *writer) str(rt byte, s string) {
	b := []byte(s)
	if len(b)%2 == 1 {
		b = append(b, 0) // pad to even length
	}
	w.record(rt, dtString, b)
}

func (w *writer) real8s(rt byte, vs ...float64) {
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint64(buf[8*i:], toReal8(v))
	}
	w.record(rt, dtReal8, buf)
}

// toReal8 converts a float64 to GDSII excess-64 base-16 REAL8.
func toReal8(v float64) uint64 {
	if v == 0 {
		return 0
	}
	var sign uint64
	if v < 0 {
		sign = 1 << 63
		v = -v
	}
	// v = mantissa * 16^(exp-64), mantissa in [1/16, 1).
	exp := 64
	for v >= 1 {
		v /= 16
		exp++
	}
	for v < 1.0/16 {
		v *= 16
		exp--
	}
	mant := uint64(v * math.Pow(2, 56))
	return sign | uint64(exp)<<56 | (mant & ((1 << 56) - 1))
}

// fromReal8 converts a GDSII REAL8 to float64.
func fromReal8(bits uint64) float64 {
	if bits == 0 {
		return 0
	}
	sign := 1.0
	if bits>>63 == 1 {
		sign = -1
	}
	exp := int((bits >> 56) & 0x7F)
	mant := float64(bits&((1<<56)-1)) / math.Pow(2, 56)
	return sign * mant * math.Pow(16, float64(exp-64))
}

// dummy timestamp fields (year, month, day, hour, minute, second ×2).
var timestamp = []int16{1970, 1, 1, 0, 0, 0, 1970, 1, 1, 0, 0, 0}

// Write streams the library in GDSII binary format.
func (l *Library) Write(out io.Writer) error {
	w := &writer{w: out}
	w.int16s(recHeader, 600) // stream version 6
	w.int16s(recBgnLib, timestamp...)
	w.str(recLibName, l.Name)
	w.real8s(recUnits, l.UserUnit, l.MeterUnit)
	for _, s := range l.Structures {
		w.int16s(recBgnStr, timestamp...)
		w.str(recStrName, s.Name)
		for _, b := range s.Boundaries {
			w.record(recBoundary, dtNone, nil)
			w.int16s(recLayer, b.Layer)
			w.int16s(recDatatype, b.Datatype)
			xy := closePolygon(b.XY)
			coords := make([]int32, 0, 2*len(xy))
			for _, p := range xy {
				coords = append(coords, p.X, p.Y)
			}
			w.int32s(recXY, coords...)
			w.record(recEndEl, dtNone, nil)
		}
		for _, r := range s.SRefs {
			w.record(recSRef, dtNone, nil)
			w.str(recSName, r.Name)
			if r.Reflect || (r.Mag != 0 && r.Mag != 1) || r.AngleDeg != 0 {
				var bits uint16
				if r.Reflect {
					bits |= 0x8000
				}
				w.record(recStrans, dtBit, []byte{byte(bits >> 8), byte(bits)})
				if r.Mag != 0 && r.Mag != 1 {
					w.real8s(recMag, r.Mag)
				}
				if r.AngleDeg != 0 {
					w.real8s(recAngle, r.AngleDeg)
				}
			}
			w.int32s(recXY, r.At.X, r.At.Y)
			w.record(recEndEl, dtNone, nil)
		}
		for _, t := range s.Texts {
			w.record(recText, dtNone, nil)
			w.int16s(recLayer, t.Layer)
			w.int16s(recTextType, t.TextType)
			w.int32s(recXY, t.At.X, t.At.Y)
			w.str(recString, t.S)
			w.record(recEndEl, dtNone, nil)
		}
		w.record(recEndStr, dtNone, nil)
	}
	w.record(recEndLib, dtNone, nil)
	return w.err
}

func closePolygon(xy []Point) []Point {
	if len(xy) == 0 || xy[0] == xy[len(xy)-1] {
		return xy
	}
	return append(append([]Point(nil), xy...), xy[0])
}

// --- reader ---

// Read parses a GDSII stream into a Library. It understands the records
// this package writes; unknown records are skipped.
func Read(in io.Reader) (*Library, error) {
	lib := &Library{}
	var cur *Structure
	var elem *elemState
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(in, hdr[:]); err != nil {
			if err == io.EOF {
				return lib, nil
			}
			return nil, err
		}
		n := int(binary.BigEndian.Uint16(hdr[:2]))
		if n < 4 {
			return nil, fmt.Errorf("gdsii: bad record length %d", n)
		}
		payload := make([]byte, n-4)
		if _, err := io.ReadFull(in, payload); err != nil {
			return nil, err
		}
		rt := hdr[2]
		switch rt {
		case recLibName:
			lib.Name = cstr(payload)
		case recUnits:
			if len(payload) >= 16 {
				lib.UserUnit = fromReal8(binary.BigEndian.Uint64(payload[:8]))
				lib.MeterUnit = fromReal8(binary.BigEndian.Uint64(payload[8:16]))
			}
		case recBgnStr:
			cur = &Structure{}
			lib.Structures = append(lib.Structures, cur)
		case recStrName:
			if cur != nil {
				cur.Name = cstr(payload)
			}
		case recEndStr:
			cur = nil
		case recBoundary:
			elem = &elemState{kind: recBoundary}
		case recSRef:
			elem = &elemState{kind: recSRef, mag: 1}
		case recText:
			elem = &elemState{kind: recText}
		case recLayer:
			if elem != nil {
				elem.layer = int16(binary.BigEndian.Uint16(payload))
			}
		case recDatatype:
			if elem != nil {
				elem.datatype = int16(binary.BigEndian.Uint16(payload))
			}
		case recTextType:
			if elem != nil {
				elem.texttype = int16(binary.BigEndian.Uint16(payload))
			}
		case recSName:
			if elem != nil {
				elem.sname = cstr(payload)
			}
		case recString:
			if elem != nil {
				elem.text = cstr(payload)
			}
		case recStrans:
			if elem != nil && len(payload) >= 2 {
				elem.reflect = payload[0]&0x80 != 0
			}
		case recMag:
			if elem != nil && len(payload) >= 8 {
				elem.mag = fromReal8(binary.BigEndian.Uint64(payload))
			}
		case recAngle:
			if elem != nil && len(payload) >= 8 {
				elem.angle = fromReal8(binary.BigEndian.Uint64(payload))
			}
		case recXY:
			if elem != nil {
				for i := 0; i+8 <= len(payload); i += 8 {
					elem.xy = append(elem.xy, Point{
						X: int32(binary.BigEndian.Uint32(payload[i:])),
						Y: int32(binary.BigEndian.Uint32(payload[i+4:])),
					})
				}
			}
		case recEndEl:
			if elem != nil && cur != nil {
				elem.commit(cur)
			}
			elem = nil
		case recEndLib:
			return lib, nil
		}
	}
}

type elemState struct {
	kind     byte
	layer    int16
	datatype int16
	texttype int16
	sname    string
	text     string
	mag      float64
	angle    float64
	reflect  bool
	xy       []Point
}

func (e *elemState) commit(s *Structure) {
	switch e.kind {
	case recBoundary:
		s.Boundaries = append(s.Boundaries, Boundary{
			Layer: e.layer, Datatype: e.datatype, XY: e.xy,
		})
	case recSRef:
		r := SRef{Name: e.sname, Mag: e.mag, AngleDeg: e.angle, Reflect: e.reflect}
		if len(e.xy) > 0 {
			r.At = e.xy[0]
		}
		s.SRefs = append(s.SRefs, r)
	case recText:
		t := Text{Layer: e.layer, TextType: e.texttype, S: e.text}
		if len(e.xy) > 0 {
			t.At = e.xy[0]
		}
		s.Texts = append(s.Texts, t)
	}
}

func cstr(b []byte) string {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}

// Design-kit layer assignments (GDS layer numbers).
const (
	LayerBoundary int16 = 0
	LayerCNT      int16 = 1
	LayerGate     int16 = 10
	LayerContact  int16 = 11
	LayerMetal1   int16 = 12
	LayerVia1     int16 = 13
	LayerEtch     int16 = 20
	LayerPin      int16 = 30
	LayerPDope    int16 = 40
	LayerNDope    int16 = 41
)
