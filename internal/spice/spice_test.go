package spice

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cnfetdk/internal/device"
)

func opts() Options { return DefaultOptions() }

func TestVoltageDividerOP(t *testing.T) {
	c := New()
	c.AddV("vin", "in", "0", DC(2.0))
	c.AddR("r1", "in", "mid", 1e3)
	c.AddR("r2", "mid", "0", 3e3)
	x, err := c.OP(opts())
	if err != nil {
		t.Fatal(err)
	}
	vmid := x[c.Node("mid")-1]
	if math.Abs(vmid-1.5) > 1e-9 {
		t.Fatalf("divider mid = %v, want 1.5", vmid)
	}
}

func TestSeriesVSources(t *testing.T) {
	c := New()
	c.AddV("v1", "a", "0", DC(1))
	c.AddV("v2", "b", "a", DC(2))
	c.AddR("r", "b", "0", 1e3)
	x, err := c.OP(opts())
	if err != nil {
		t.Fatal(err)
	}
	if vb := x[c.Node("b")-1]; math.Abs(vb-3) > 1e-9 {
		t.Fatalf("vb = %v, want 3", vb)
	}
	// Branch current through r = 3mA; the MNA branch variable is the
	// current flowing P->N inside the source, so a delivering source
	// reads negative.
	if i := x[c.NodeCount()-1+1]; math.Abs(i-(-3e-3)) > 1e-9 {
		t.Fatalf("v2 branch current = %v, want -3mA", i)
	}
}

func TestCurrentSource(t *testing.T) {
	c := New()
	c.AddI("i1", "0", "n", DC(1e-3))
	c.AddR("r", "n", "0", 2e3)
	x, err := c.OP(opts())
	if err != nil {
		t.Fatal(err)
	}
	if vn := x[c.Node("n")-1]; math.Abs(vn-2.0) > 1e-9 {
		t.Fatalf("vn = %v, want 2.0", vn)
	}
}

func TestRCChargeCurve(t *testing.T) {
	// Step into an RC: v(t) = 1 - exp(-t/RC), RC = 1µs.
	c := New()
	c.AddV("vs", "in", "0", Pulse{V0: 0, V1: 1, Delay: 0, Rise: 1e-12, Fall: 1e-12, W: 1, Period: 2})
	c.AddR("r", "in", "out", 1e3)
	c.AddC("c", "out", "0", 1e-9)
	res, err := c.Transient(5e-6, 5000, opts())
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Wave("out")
	if err != nil {
		t.Fatal(err)
	}
	for _, chk := range []struct{ t, want float64 }{
		{1e-6, 1 - math.Exp(-1)},
		{2e-6, 1 - math.Exp(-2)},
		{4e-6, 1 - math.Exp(-4)},
	} {
		k := int(chk.t / 5e-6 * 5000)
		if math.Abs(w[k]-chk.want) > 0.01 {
			t.Fatalf("v(%.0gs) = %.4f, want %.4f", chk.t, w[k], chk.want)
		}
	}
}

func TestRCEnergyConservation(t *testing.T) {
	// Charging C through R from a step: the source delivers CV² total;
	// half is stored, half dissipated.
	c := New()
	vs := c.AddV("vs", "in", "0", Pulse{V0: 0, V1: 1, Rise: 1e-12, Fall: 1e-12, W: 1, Period: 2})
	c.AddR("r", "in", "out", 1e3)
	c.AddC("c", "out", "0", 1e-9)
	res, err := c.Transient(20e-6, 4000, opts())
	if err != nil {
		t.Fatal(err)
	}
	e := res.SupplyEnergy(vs, 0, 20e-6)
	want := 1e-9 * 1 * 1 // CV²
	if math.Abs(e-want)/want > 0.02 {
		t.Fatalf("source energy = %v, want %v", e, want)
	}
}

func TestCrossTimeInterpolation(t *testing.T) {
	c := New()
	c.AddV("vs", "in", "0", PWL{T: []float64{0, 1e-9}, V: []float64{0, 1}})
	c.AddR("r", "in", "0", 1e3)
	res, err := c.Transient(1e-9, 100, opts())
	if err != nil {
		t.Fatal(err)
	}
	tc, err := res.CrossTime("in", 0.5, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tc-0.5e-9) > 1e-11 {
		t.Fatalf("cross time = %v, want 0.5ns", tc)
	}
	if _, err := res.CrossTime("in", 0.5, false, 0); err == nil {
		t.Fatal("no falling crossing should exist")
	}
}

func nfet(t *testing.T) device.FETParams {
	t.Helper()
	return device.CMOSFET("mn", device.NType, 1)
}

func pfet(t *testing.T) device.FETParams {
	t.Helper()
	return device.CMOSFET("mp", device.PType, 1.4)
}

// addInverter wires a CMOS inverter between in and out.
func addInverter(c *Circuit, name, in, out string, n, p device.FETParams) {
	c.AddFET(name+".p", out, in, "vdd", p)
	c.AddFET(name+".n", out, in, "0", n)
}

func TestInverterDCTransfer(t *testing.T) {
	for _, vin := range []float64{0, 0.2, 0.8, 1.0} {
		c := New()
		c.AddV("vdd", "vdd", "0", DC(device.Vdd))
		c.AddV("vin", "in", "0", DC(vin))
		addInverter(c, "inv", "in", "out", nfet(t), pfet(t))
		x, err := c.OP(opts())
		if err != nil {
			t.Fatalf("vin=%v: %v", vin, err)
		}
		vout := x[c.Node("out")-1]
		if vin < 0.3 && vout < 0.9 {
			t.Fatalf("vin=%v: vout=%v, want high", vin, vout)
		}
		if vin > 0.7 && vout > 0.1 {
			t.Fatalf("vin=%v: vout=%v, want low", vin, vout)
		}
	}
}

func TestFETCurrentSymmetry(t *testing.T) {
	p := nfet(t)
	// Swapping drain and source negates the current.
	i1 := fetCurrent(p, 1.0, 0.7, 0.2)
	i2 := fetCurrent(p, 1.0, 0.2, 0.7)
	if math.Abs(i1+i2) > 1e-12 {
		t.Fatalf("S/D symmetry violated: %v vs %v", i1, i2)
	}
	if i1 <= 0 {
		t.Fatal("on-state NFET with vds>0 must conduct positive current")
	}
	// Off state.
	if i := fetCurrent(p, 0, 1, 0); math.Abs(i) > p.ISat*1e-3 {
		t.Fatalf("off NFET leaks %v", i)
	}
	// PFET mirror.
	pp := pfet(t)
	if i := fetCurrent(pp, 0, 0.2, 1.0); i >= 0 {
		t.Fatalf("on PFET should source current into drain, got %v", i)
	}
}

func TestFETNumericDerivativesFinite(t *testing.T) {
	p := nfet(t)
	for _, v := range []struct{ g, d, s float64 }{
		{0.5, 0.5, 0}, {1, 0.01, 0}, {1, 1, 0}, {0.2, -0.3, 0.1},
	} {
		id, dg, dd, ds := fetEvalNumeric(p, v.g, v.d, v.s)
		for _, x := range []float64{id, dg, dd, ds} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("non-finite eval at %+v", v)
			}
		}
	}
}

func TestInverterChainTransient(t *testing.T) {
	// A 3-stage chain inverts and settles rail to rail.
	c := New()
	c.AddV("vdd", "vdd", "0", DC(device.Vdd))
	c.AddV("vin", "n0", "0", Pulse{V0: 0, V1: 1, Delay: 20e-12, Rise: 5e-12, Fall: 5e-12, W: 1, Period: 2})
	addInverter(c, "i1", "n0", "n1", nfet(t), pfet(t))
	addInverter(c, "i2", "n1", "n2", nfet(t), pfet(t))
	addInverter(c, "i3", "n2", "n3", nfet(t), pfet(t))
	res, err := c.Transient(600e-12, 3000, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Settles("n3", 0, 0.05) {
		v, _ := res.Final("n3")
		t.Fatalf("n3 settled at %v, want 0 (odd inversion of high input)", v)
	}
	if !res.Settles("n2", 1, 0.05) {
		t.Fatal("n2 should settle high")
	}
}

func TestCMOSFO4DelayMatchesAnchor(t *testing.T) {
	// Five-stage FO4 chain (each stage drives 4 copies); the 3rd stage
	// delay should be near the 25ps anchor. This validates that the
	// smooth I-V model + driveFitFactor reproduce the analytic RC model.
	d := measureFO4(t, func(name, in, out string, c *Circuit) {
		addInverter(c, name, in, out, nfet(t), pfet(t))
	})
	if d < 20e-12 || d > 30e-12 {
		t.Fatalf("CMOS FO4 = %.2fps, want 25ps ±20%%", d*1e12)
	}
}

// measureFO4 builds a 5-stage chain with fan-out-4 loading and measures
// the 3rd stage propagation delay.
func measureFO4(t *testing.T, addInv func(name, in, out string, c *Circuit)) float64 {
	t.Helper()
	c := New()
	c.AddV("vdd", "vdd", "0", DC(device.Vdd))
	c.AddV("vin", "n0", "0", Pulse{
		V0: 0, V1: 1, Delay: 100e-12, Rise: 10e-12, Fall: 10e-12, W: 500e-12, Period: 1000e-12,
	})
	for st := 1; st <= 5; st++ {
		in := nodeN(st - 1)
		out := nodeN(st)
		addInv("s"+string(rune('0'+st)), in, out, c)
		// FO4: three extra dummy inverters loading each internal node.
		if st < 5 {
			for k := 0; k < 3; k++ {
				dummy := out + "d" + string(rune('a'+k))
				addInv("l"+string(rune('0'+st))+string(rune('a'+k)), out, dummy, c)
			}
		}
	}
	res, err := c.Transient(1000e-12, 4000, opts())
	if err != nil {
		t.Fatal(err)
	}
	d, err := res.PropDelay(nodeN(2), nodeN(3), device.Vdd)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func nodeN(i int) string { return "n" + string(rune('0'+i)) }

func TestCNFETFasterThanCMOS(t *testing.T) {
	p := device.DefaultFO4()
	nOpt := p.OptimalN(60)
	cn := func(name, in, out string, c *Circuit) {
		np := device.CNFET(name+".n", device.NType, nOpt, device.GateWidthNM, p)
		pp := device.CNFET(name+".p", device.PType, nOpt, device.GateWidthNM, p)
		c.AddFET(name+".p", out, in, "vdd", pp)
		c.AddFET(name+".n", out, in, "0", np)
	}
	dCN := measureFO4(t, cn)
	dCM := measureFO4(t, func(name, in, out string, c *Circuit) {
		addInverter(c, name, in, out, nfet(t), pfet(t))
	})
	gain := dCM / dCN
	// The transient-level gain should track the analytic 4.2× within 25%
	// (the smooth I-V shape vs pure RC introduces bounded deviation).
	if gain < 3.1 || gain > 5.3 {
		t.Fatalf("spice FO4 gain = %.2f, analytic anchor 4.2", gain)
	}
}

func TestSingularCircuitError(t *testing.T) {
	c := New()
	c.AddC("c", "a", "b", 1e-12) // floating caps only: singular in DC
	if _, err := c.OP(opts()); err == nil {
		t.Fatal("floating circuit should fail")
	}
}

func TestWriteVCD(t *testing.T) {
	c := New()
	c.AddV("vs", "in", "0", Pulse{V0: 0, V1: 1, Rise: 1e-10, Fall: 1e-10, W: 1e-9, Period: 2e-9})
	c.AddR("r", "in", "out", 1e3)
	c.AddC("c", "out", "0", 1e-13)
	res, err := c.Transient(1e-9, 200, opts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteVCD(&buf, "rc", []string{"in", "out"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1fs $end",
		"$scope module rc $end",
		"$var real 64 ! in $end",
		"$var real 64 \" out $end",
		"$enddefinitions $end",
		"#0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// Values change over time: more than one timestamp emitted.
	if strings.Count(out, "\n#") < 10 {
		t.Fatalf("VCD has too few time points:\n%s", out[:300])
	}
	// Unknown node errors.
	if err := res.WriteVCD(&buf, "rc", []string{"nope"}); err == nil {
		t.Fatal("unknown node should fail")
	}
}
