// Package spice is a compact circuit simulator: modified nodal analysis
// with Newton-Raphson for the nonlinear FET models, DC operating point
// with gmin stepping, and fixed-step trapezoidal transient analysis with
// delay/energy measurement helpers. Small systems factorize with dense
// partial-pivot LU; above a crossover the solver switches to a sparse LU
// whose symbolic work (fill-reducing ordering, elimination structure,
// stamp slots) is planned once per topology and reused across Newton
// iterations, timesteps and whole solves — and shared across
// structure-identical circuits through Batch (Options.Solver overrides
// the choice).
//
// It plays the role of the paper's HSPICE + post-layout analysis kit
// (Fig 5): cell characterization, FO4 chain simulation and the full-adder
// case study all run on this engine.
package spice

import (
	"fmt"
	"math"

	"cnfetdk/internal/device"
)

// Waveform is a time-dependent source value.
type Waveform interface {
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At returns the constant value.
func (d DC) At(float64) float64 { return float64(d) }

// Pulse is a SPICE-style periodic pulse.
type Pulse struct {
	V0, V1                       float64
	Delay, Rise, Fall, W, Period float64
}

// At evaluates the pulse at time t.
func (p Pulse) At(t float64) float64 {
	if t < p.Delay {
		return p.V0
	}
	tt := t - p.Delay
	if p.Period > 0 {
		tt = math.Mod(tt, p.Period)
	}
	switch {
	case tt < p.Rise:
		return p.V0 + (p.V1-p.V0)*tt/p.Rise
	case tt < p.Rise+p.W:
		return p.V1
	case tt < p.Rise+p.W+p.Fall:
		return p.V1 - (p.V1-p.V0)*(tt-p.Rise-p.W)/p.Fall
	default:
		return p.V0
	}
}

// PWL is a piecewise-linear waveform.
type PWL struct {
	T, V []float64
}

// At evaluates the PWL at time t with flat extrapolation.
func (p PWL) At(t float64) float64 {
	if len(p.T) == 0 {
		return 0
	}
	if t <= p.T[0] {
		return p.V[0]
	}
	for i := 1; i < len(p.T); i++ {
		if t <= p.T[i] {
			f := (t - p.T[i-1]) / (p.T[i] - p.T[i-1])
			return p.V[i-1] + f*(p.V[i]-p.V[i-1])
		}
	}
	return p.V[len(p.V)-1]
}

// Circuit is a flat netlist. Node "0" (alias "GND") is ground.
type Circuit struct {
	nodeIndex map[string]int
	nodeNames []string

	Resistors  []Resistor
	Capacitors []Capacitor
	VSources   []VSource
	ISources   []ISource
	FETs       []FET
}

// Resistor is a two-terminal linear resistor.
type Resistor struct {
	Name string
	A, B int
	R    float64
}

// Capacitor is a two-terminal linear capacitor.
type Capacitor struct {
	Name string
	A, B int
	C    float64
}

// VSource is an independent voltage source; its branch current is a
// solution variable.
type VSource struct {
	Name string
	P, N int
	W    Waveform
}

// ISource is an independent current source (flows P -> N through source).
type ISource struct {
	Name string
	P, N int
	W    Waveform
}

// FET is a three-terminal transistor using a device.FETParams model. Gate
// capacitance stamps gate-to-ground; drain capacitance drain-to-ground.
type FET struct {
	Name    string
	D, G, S int
	P       device.FETParams
}

// New creates an empty circuit.
func New() *Circuit {
	c := &Circuit{nodeIndex: map[string]int{}}
	c.nodeIndex["0"] = 0
	c.nodeIndex["GND"] = 0
	c.nodeNames = []string{"0"}
	return c
}

// Node interns a node name and returns its index.
func (c *Circuit) Node(name string) int {
	if i, ok := c.nodeIndex[name]; ok {
		return i
	}
	i := len(c.nodeNames)
	c.nodeIndex[name] = i
	c.nodeNames = append(c.nodeNames, name)
	return i
}

// NodeCount returns the number of nodes including ground.
func (c *Circuit) NodeCount() int { return len(c.nodeNames) }

// NodeName returns the interned name of node i.
func (c *Circuit) NodeName(i int) string { return c.nodeNames[i] }

// HasNode reports whether the node name exists.
func (c *Circuit) HasNode(name string) bool {
	_, ok := c.nodeIndex[name]
	return ok
}

// AddR adds a resistor.
func (c *Circuit) AddR(name, a, b string, r float64) {
	c.Resistors = append(c.Resistors, Resistor{Name: name, A: c.Node(a), B: c.Node(b), R: r})
}

// AddC adds a capacitor.
func (c *Circuit) AddC(name, a, b string, f float64) {
	c.Capacitors = append(c.Capacitors, Capacitor{Name: name, A: c.Node(a), B: c.Node(b), C: f})
}

// AddV adds a voltage source and returns its index (for current probing).
func (c *Circuit) AddV(name, p, n string, w Waveform) int {
	c.VSources = append(c.VSources, VSource{Name: name, P: c.Node(p), N: c.Node(n), W: w})
	return len(c.VSources) - 1
}

// AddI adds a current source.
func (c *Circuit) AddI(name, p, n string, w Waveform) {
	c.ISources = append(c.ISources, ISource{Name: name, P: c.Node(p), N: c.Node(n), W: w})
}

// AddFET adds a transistor and its model capacitances.
func (c *Circuit) AddFET(name, d, g, s string, p device.FETParams) {
	c.FETs = append(c.FETs, FET{Name: name, D: c.Node(d), G: c.Node(g), S: c.Node(s), P: p})
	if p.CGate > 0 {
		c.AddC(name+".cg", g, "0", p.CGate)
	}
	if p.CDrain > 0 {
		c.AddC(name+".cd", d, "0", p.CDrain)
	}
}

// Clone returns a variant copy for per-lane FET perturbation: the node
// tables and the linear elements (resistors, capacitors, sources) are
// shared read-only with the receiver, and only the FETs slice — the
// mutation surface of variation ensembles, which perturb the I-V law
// but never the stamped capacitances — is copied. A clone therefore
// has the receiver's exact topology, so it runs on a plan-sharing
// Batch lane without replanning, and restoring its FETs from the
// prototype (RestoreFETs) resets it completely.
func (c *Circuit) Clone() *Circuit {
	out := *c
	out.FETs = append([]FET(nil), c.FETs...)
	return &out
}

// RestoreFETs copies the prototype's FET models back into the circuit,
// undoing per-lane perturbations without reallocating. The two
// circuits must have the same device count (clones of one prototype
// always do).
func (c *Circuit) RestoreFETs(proto *Circuit) {
	copy(c.FETs, proto.FETs)
}

// String summarizes the circuit.
func (c *Circuit) String() string {
	return fmt.Sprintf("circuit{%d nodes, %dR %dC %dV %dI %dFET}",
		c.NodeCount(), len(c.Resistors), len(c.Capacitors),
		len(c.VSources), len(c.ISources), len(c.FETs))
}
