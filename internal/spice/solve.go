package spice

import (
	"fmt"
	"math"
)

// singularError identifies which unknown's pivot vanished: col is the
// matrix column (node voltage for col < n, branch current otherwise),
// so the solver can name the offending node or source instead of
// failing with a bare "singular matrix" on a thousand-node netlist.
type singularError struct {
	col int
}

func (e *singularError) Error() string {
	return fmt.Sprintf("spice: singular matrix (no usable pivot in column %d)", e.col)
}

// lu performs in-place dense LU factorization with partial pivoting and
// solves A·x = b. A is row-major n×n and is destroyed; b is overwritten
// with the solution. perm is caller-owned pivot scratch (len >= n) so the
// solve itself never allocates; on return perm[k] records the row chosen
// as the pivot at elimination step k (perm[k] == k when no swap happened),
// which the pivoting tests use as evidence.
func lu(a []float64, b []float64, perm []int, n int) error {
	perm = perm[:n]
	for k := 0; k < n; k++ {
		// Pivot.
		p, best := k, math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > best {
				p, best = i, v
			}
		}
		if best == 0 || math.IsNaN(best) {
			// Partial pivoting only swaps rows, so column k still
			// corresponds to the k-th unknown of the original system.
			return &singularError{col: k}
		}
		perm[k] = p
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
			b[k], b[p] = b[p], b[k]
		}
		inv := 1 / a[k*n+k]
		for i := k + 1; i < n; i++ {
			f := a[i*n+k] * inv
			if f == 0 {
				continue
			}
			a[i*n+k] = f
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= f * a[k*n+j]
			}
			b[i] -= f * b[k]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * b[j]
		}
		b[i] = s / a[i*n+i]
	}
	return nil
}
