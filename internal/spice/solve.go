package spice

import (
	"errors"
	"math"
)

// lu performs in-place dense LU factorization with partial pivoting and
// solves A·x = b. A is row-major n×n and is destroyed; b is overwritten
// with the solution.
func lu(a []float64, b []float64, n int) error {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot.
		p, best := k, math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > best {
				p, best = i, v
			}
		}
		if best == 0 || math.IsNaN(best) {
			return errors.New("spice: singular matrix")
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
			b[k], b[p] = b[p], b[k]
		}
		inv := 1 / a[k*n+k]
		for i := k + 1; i < n; i++ {
			f := a[i*n+k] * inv
			if f == 0 {
				continue
			}
			a[i*n+k] = f
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= f * a[k*n+j]
			}
			b[i] -= f * b[k]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * b[j]
		}
		b[i] = s / a[i*n+i]
	}
	return nil
}
