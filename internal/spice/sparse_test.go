package spice

import (
	"math"
	"strings"
	"sync"
	"testing"

	"cnfetdk/internal/device"
)

// testChain builds the standard two-inverter characterization-style
// chain used across the sparse tests, with a configurable load value so
// callers can produce structure-identical, value-distinct circuits.
func testChain(t *testing.T, loadF float64) *Circuit {
	t.Helper()
	c := New()
	c.AddV("vdd", "vdd", "0", DC(device.Vdd))
	c.AddV("vin", "n0", "0", Pulse{V0: 0, V1: device.Vdd, Delay: 20e-12, Rise: 5e-12, Fall: 5e-12, W: 100e-12, Period: 200e-12})
	addInverter(c, "i1", "n0", "n1", nfet(t), pfet(t))
	addInverter(c, "i2", "n1", "n2", nfet(t), pfet(t))
	c.AddC("cl", "n2", "0", loadF)
	return c
}

// maxWaveDiff returns the largest absolute per-sample difference across
// every node waveform of two results from the same circuit.
func maxWaveDiff(t *testing.T, a, b *Result) float64 {
	t.Helper()
	if len(a.V) != len(b.V) {
		t.Fatalf("waveform count mismatch: %d vs %d", len(a.V), len(b.V))
	}
	worst := 0.0
	for i := range a.V {
		if len(a.V[i]) != len(b.V[i]) {
			t.Fatalf("node %d sample count mismatch: %d vs %d", i, len(a.V[i]), len(b.V[i]))
		}
		for k := range a.V[i] {
			if d := math.Abs(a.V[i][k] - b.V[i][k]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestSparseOPMatchesDense forces both solver paths over the same
// operating point and requires agreement far below engineering
// tolerance: the sparse factorization must be a reordering of the same
// arithmetic, not a different answer.
func TestSparseOPMatchesDense(t *testing.T) {
	c := testChain(t, 1e-15)
	dOpt := opts()
	dOpt.Solver = SolverDense
	sOpt := opts()
	sOpt.Solver = SolverSparse
	xd, err := c.OP(dOpt)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := c.OP(sOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(xd) != len(xs) {
		t.Fatalf("solution lengths differ: %d vs %d", len(xd), len(xs))
	}
	for i := range xd {
		if d := math.Abs(xd[i] - xs[i]); d > 1e-12 {
			t.Fatalf("unknown %d: dense %v sparse %v (diff %.3e)", i, xd[i], xs[i], d)
		}
	}
}

// TestSparseTransientMatchesDense is the waveform-level parity check on
// a nonlinear transient: every node, every timestep, both solver paths.
func TestSparseTransientMatchesDense(t *testing.T) {
	dOpt := opts()
	dOpt.Solver = SolverDense
	sOpt := opts()
	sOpt.Solver = SolverSparse
	rd, err := testChain(t, 1e-15).Transient(200e-12, 400, dOpt)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := testChain(t, 1e-15).Transient(200e-12, 400, sOpt)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxWaveDiff(t, rd, rs); d > 1e-9 {
		t.Fatalf("sparse/dense transient diverge: max |dV| = %.3e, want <= 1e-9", d)
	}
}

// TestBatchPlanSharedByteIdentical is the batch contract: a lane running
// with the shared symbolic plan must produce results byte-identical with
// an independent workspace that planned for itself. The plan depends
// only on topology, so sharing it cannot change a single bit.
func TestBatchPlanSharedByteIdentical(t *testing.T) {
	opt := opts()
	opt.Solver = SolverSparse
	proto := testChain(t, 1e-15)
	const lanes = 4
	b, err := NewBatch(lanes, proto, opt)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lanes() != lanes {
		t.Fatalf("Lanes() = %d, want %d", b.Lanes(), lanes)
	}
	for i := 0; i < lanes; i++ {
		loadF := 1e-15 * float64(i+1)
		rb, err := testChain(t, loadF).TransientWith(b.Lane(i), 200e-12, 400, opt)
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
		ri, err := testChain(t, loadF).TransientWith(&Workspace{}, 200e-12, 400, opt)
		if err != nil {
			t.Fatalf("independent %d: %v", i, err)
		}
		for ni := range rb.V {
			for k := range rb.V[ni] {
				if rb.V[ni][k] != ri.V[ni][k] {
					t.Fatalf("lane %d node %d sample %d: batch %v independent %v — plan sharing changed bits",
						i, ni, k, rb.V[ni][k], ri.V[ni][k])
				}
			}
		}
	}
}

// TestBatchLanesConcurrent drives every lane from its own goroutine —
// the shared plan is read-only after NewBatch, so under the race
// detector this pins the immutability claim in the Batch docs.
func TestBatchLanesConcurrent(t *testing.T) {
	opt := opts()
	opt.Solver = SolverSparse
	proto := testChain(t, 1e-15)
	const lanes = 4
	b, err := NewBatch(lanes, proto, opt)
	if err != nil {
		t.Fatal(err)
	}
	finals := make([]float64, lanes)
	errs := make([]error, lanes)
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := testChain(t, 1e-15).TransientWith(b.Lane(i), 200e-12, 400, opt)
			if err != nil {
				errs[i] = err
				return
			}
			finals[i], errs[i] = r.Final("n2")
		}(i)
	}
	wg.Wait()
	for i := 0; i < lanes; i++ {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if finals[i] != finals[0] {
			t.Fatalf("lane %d final %v != lane 0 final %v on identical circuits", i, finals[i], finals[0])
		}
	}
}

// TestPlanReuseAcrossRuns pins the symbolic-reuse policy: repeated
// solves of the same topology keep the plan (even when element values
// change), and a topology change replans.
func TestPlanReuseAcrossRuns(t *testing.T) {
	opt := opts()
	opt.Solver = SolverSparse
	ws := &Workspace{}
	if _, err := testChain(t, 1e-15).TransientWith(ws, 200e-12, 100, opt); err != nil {
		t.Fatal(err)
	}
	p1 := ws.st.pl
	if p1 == nil {
		t.Fatal("sparse run left no plan on the workspace")
	}
	// Same structure, different load value: the plan must survive.
	if _, err := testChain(t, 4e-15).TransientWith(ws, 200e-12, 100, opt); err != nil {
		t.Fatal(err)
	}
	if ws.st.pl != p1 {
		t.Fatal("value-only change replanned; the symbolic plan should be reused")
	}
	// Different topology: extra element changes the pattern — replan.
	c := testChain(t, 1e-15)
	c.AddR("rx", "n1", "0", 1e6)
	if _, err := c.TransientWith(ws, 200e-12, 100, opt); err != nil {
		t.Fatal(err)
	}
	if ws.st.pl == p1 {
		t.Fatal("topology change kept the stale plan")
	}
}

// TestSparseStructurallySingularNamesUnknown: a system with no perfect
// structural matching (two voltage sources in parallel) must fail at
// plan time with an error naming the unpivotable unknown.
func TestSparseStructurallySingularNamesUnknown(t *testing.T) {
	c := New()
	c.AddV("v1", "a", "0", DC(1))
	c.AddV("v2", "a", "0", DC(1))
	opt := opts()
	opt.Solver = SolverSparse
	_, err := c.OP(opt)
	if err == nil {
		t.Fatal("parallel voltage sources solved; want structurally singular error")
	}
	if !strings.Contains(err.Error(), "structurally singular") {
		t.Fatalf("error %q does not identify the structural singularity", err)
	}
	if !strings.Contains(err.Error(), "source") && !strings.Contains(err.Error(), "node") {
		t.Fatalf("error %q does not name the unpivotable unknown", err)
	}
}

// TestSparseNumericSingularNamesUnknown: a floating resistor pair is
// structurally fine (full 2x2 diagonal block) but numerically singular;
// the factorization must report which unknown's pivot vanished. The test
// drives state.newton directly — OP's gmin fallback would regularize
// the float and mask the error.
func TestSparseNumericSingularNamesUnknown(t *testing.T) {
	c := New()
	c.AddV("v1", "in", "0", DC(1))
	c.AddR("r1", "in", "0", 1e3)
	c.AddR("rf", "a", "b", 1e3) // floating: no DC path to the rest
	opt := opts()
	opt.Solver = SolverSparse
	opt.Gmin = 0
	var ws Workspace
	s := &ws.st
	if err := s.init(c, opt); err != nil {
		t.Fatal(err)
	}
	err := s.newton()
	if err == nil {
		t.Fatal("floating node pair solved; want singular matrix error")
	}
	if !strings.Contains(err.Error(), "singular matrix at node") {
		t.Fatalf("error %q does not name the singular node", err)
	}
}

// TestDenseSingularNamesUnknown pins the same diagnostic on the dense
// path: the enriched lu error must surface which column failed.
func TestDenseSingularNamesUnknown(t *testing.T) {
	c := New()
	c.AddV("v1", "in", "0", DC(1))
	c.AddR("r1", "in", "0", 1e3)
	c.AddR("rf", "a", "b", 1e3)
	opt := opts()
	opt.Solver = SolverDense
	opt.Gmin = 0
	var ws Workspace
	s := &ws.st
	if err := s.init(c, opt); err != nil {
		t.Fatal(err)
	}
	err := s.newton()
	if err == nil {
		t.Fatal("floating node pair solved; want singular matrix error")
	}
	if !strings.Contains(err.Error(), "singular matrix at") {
		t.Fatalf("error %q does not name the singular unknown", err)
	}
}

// TestWantSparseCrossover pins the auto-selection policy.
func TestWantSparseCrossover(t *testing.T) {
	if wantSparse(SolverAuto, sparseCrossover-1) {
		t.Fatal("auto picked sparse below the crossover")
	}
	if !wantSparse(SolverAuto, sparseCrossover) {
		t.Fatal("auto picked dense at the crossover")
	}
	if wantSparse(SolverDense, 10000) {
		t.Fatal("SolverDense overridden")
	}
	if !wantSparse(SolverSparse, 2) {
		t.Fatal("SolverSparse overridden")
	}
}
