package spice

// Batch is a set of solver lanes sharing one symbolic factorization
// plan. Workloads like liberty load sweeps and Monte Carlo tube
// sampling solve many transients whose circuits are structure-identical
// — only element values differ — so the symbolic work (row matching,
// fill-reducing ordering, fill pattern, stamp slots) is paid once on a
// prototype here, and every lane only refactorizes numerically.
//
// Each lane is an independent Workspace with its own numeric storage;
// the shared plan is immutable after NewBatch, so different goroutines
// may drive different lanes concurrently (one goroutine per lane — a
// single lane is still not safe for concurrent use). Results from a
// plan-shared lane are byte-identical with an independent solve of the
// same circuit: the plan depends only on the topology, so a lane and a
// standalone workspace factor in exactly the same arithmetic order.
type Batch struct {
	ws []Workspace
}

// NewBatch prepares lanes workspaces for solves of circuits shaped like
// proto under opt. When proto's dimension takes the sparse path, the
// symbolic plan is computed here and pre-seeded into every lane; on the
// dense path there is no symbolic state to share and the lanes are
// plain independent workspaces. A lane handed a circuit whose topology
// differs from the prototype's is still correct — the solver verifies
// the structural signature and plans that lane independently.
func NewBatch(lanes int, proto *Circuit, opt Options) (*Batch, error) {
	b := &Batch{ws: make([]Workspace, lanes)}
	n := proto.NodeCount() - 1
	m := len(proto.VSources)
	if wantSparse(opt.Solver, n+m) {
		pl, err := newPlan(proto, n, m)
		if err != nil {
			return nil, err
		}
		for i := range b.ws {
			b.ws[i].st.pl = pl
		}
	}
	return b, nil
}

// Lanes returns the number of lanes.
func (b *Batch) Lanes() int { return len(b.ws) }

// Lane returns lane i's workspace, for use with Circuit.TransientWith
// and friends.
func (b *Batch) Lane(i int) *Workspace { return &b.ws[i] }
