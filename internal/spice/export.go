package spice

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cnfetdk/internal/device"
)

// Export writes the circuit as a SPICE-compatible text netlist (.sp), so
// designs built with the kit can be cross-checked in external simulators.
// FETs are emitted as behavioural G-elements' closest portable equivalent:
// a .model'd MOSFET reference with the compact model parameters recorded
// as comments, plus explicit gate/drain capacitors (already part of the
// circuit), which keeps the topology exact even where the I-V law is
// simulator-specific.
func (c *Circuit) Export(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "* %s\n", title)
	fmt.Fprintf(&b, "* exported by cnfetdk (%s)\n", c.String())
	for i, r := range c.Resistors {
		fmt.Fprintf(&b, "R%d %s %s %.6g\n", i, c.exportNode(r.A), c.exportNode(r.B), r.R)
	}
	for i, cp := range c.Capacitors {
		fmt.Fprintf(&b, "C%d %s %s %.6g\n", i, c.exportNode(cp.A), c.exportNode(cp.B), cp.C)
	}
	for i, v := range c.VSources {
		fmt.Fprintf(&b, "V%d %s %s %s\n", i, c.exportNode(v.P), c.exportNode(v.N), waveformSpec(v.W))
	}
	for i, is := range c.ISources {
		fmt.Fprintf(&b, "I%d %s %s %s\n", i, c.exportNode(is.P), c.exportNode(is.N), waveformSpec(is.W))
	}
	models := map[string]device.FETParams{}
	for i, f := range c.FETs {
		mname := modelName(f.P)
		models[mname] = f.P
		fmt.Fprintf(&b, "M%d %s %s %s %s %s\n", i,
			c.exportNode(f.D), c.exportNode(f.G), c.exportNode(f.S),
			c.exportNode(f.S), mname)
	}
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := models[n]
		kind := "NMOS"
		if p.Polarity == device.PType {
			kind = "PMOS"
		}
		fmt.Fprintf(&b, ".model %s %s (level=1 vto=%.3g)\n", n, kind, vto(p))
		fmt.Fprintf(&b, "* %s: isat=%.4g A vsat=%.3g V ss=%.3g V cgate=%.4g F cdrain=%.4g F\n",
			n, p.ISat, p.VSat, p.SS, p.CGate, p.CDrain)
	}
	fmt.Fprintln(&b, ".end")
	_, err := io.WriteString(w, b.String())
	return err
}

func vto(p device.FETParams) float64 {
	if p.Polarity == device.PType {
		return -p.Vt
	}
	return p.Vt
}

func (c *Circuit) exportNode(i int) string {
	n := c.NodeName(i)
	// SPICE node names cannot contain spaces; ours never do, but dots are
	// fine in modern simulators.
	return n
}

func modelName(p device.FETParams) string {
	kind := "n"
	if p.Polarity == device.PType {
		kind = "p"
	}
	return fmt.Sprintf("m%s_%d", kind, int(p.ISat*1e9))
}

func waveformSpec(w Waveform) string {
	switch s := w.(type) {
	case DC:
		return fmt.Sprintf("DC %.6g", float64(s))
	case Pulse:
		return fmt.Sprintf("PULSE(%.6g %.6g %.4g %.4g %.4g %.4g %.4g)",
			s.V0, s.V1, s.Delay, s.Rise, s.Fall, s.W, s.Period)
	case PWL:
		parts := make([]string, 0, 2*len(s.T))
		for i := range s.T {
			parts = append(parts, fmt.Sprintf("%.4g", s.T[i]), fmt.Sprintf("%.6g", s.V[i]))
		}
		return "PWL(" + strings.Join(parts, " ") + ")"
	default:
		return "DC 0"
	}
}
