package spice

import (
	"fmt"
	"sort"
)

// The sparse solver path. Dense LU is O(dim³) time and O(dim²) memory
// per Newton iteration; MNA matrices of gate-level circuits hold a few
// nonzeros per row, so everything the repo solves above a few dozen
// unknowns — the rca8 carry chain, the mult4 array, every circuit the
// registry grows into — wants a sparse factorization. The split mirrors
// direct solvers like KLU:
//
//   - a plan (the symbolic half) is computed once per circuit topology:
//     a row permutation that makes the diagonal structurally nonzero, a
//     fill-reducing minimum-degree column ordering, the fill-in pattern
//     of the LU factors, and the value-array slot of every stamp;
//   - the numeric half refactorizes into preallocated factor storage
//     with a fixed pattern every Newton iteration, allocation-free.
//
// The plan is deliberately structure-only — no value-dependent pivoting
// — so every circuit with the same topology factors in exactly the same
// arithmetic order. That is what makes plan-sharing batches (Batch)
// byte-identical with independent solves, and plans safely shareable
// across goroutines (a plan is immutable once built). The cost is the
// loss of partial pivoting; the row matching plus the diagonal weight
// that conductance stamps and trapezoidal companions give MNA matrices
// keeps the elimination stable in practice (the registry-wide parity
// test pins sparse against pivoted dense to 1e-9), and a zero or NaN
// pivot still fails loudly with the offending node's name.

// SolverKind selects the linear solver inside the Newton loop.
type SolverKind int

const (
	// SolverAuto picks dense below sparseCrossover unknowns and sparse
	// at or above it.
	SolverAuto SolverKind = iota
	// SolverDense forces the dense partial-pivoting LU path.
	SolverDense
	// SolverSparse forces the sparse fixed-pattern LU path.
	SolverSparse
)

// sparseCrossover is the MNA dimension at which SolverAuto switches
// from dense to sparse. Benchmarks put the break-even near a few dozen
// unknowns; 50 keeps every single-cell characterization circuit and the
// paper's full-adder case study (dim ≈ 30) on the byte-stable dense
// path while rca4 and everything larger goes sparse.
const sparseCrossover = 50

// plan is the symbolic factorization of one circuit topology: the
// permutations, the factor sparsity pattern, and the stamp slot map.
// A plan is immutable after newPlan and safe to share across lanes.
type plan struct {
	dim int // matrix dimension (n node unknowns + m branch currents)
	n   int // node unknowns

	// The factored matrix is C[p,q] = A[rowOf[p], colOf[q]]: rowOf
	// pairs each elimination position with the original equation whose
	// entry lands on the diagonal, colOf is the fill-reducing ordering.
	rowOf  []int32
	colOf  []int32
	invRow []int32 // original row -> elimination position
	invCol []int32 // original column -> elimination position

	// CSC pattern of the assembled matrix in elimination coordinates.
	// Stamps write into a value array parallel to ai.
	ap []int32
	ai []int32

	// CSC patterns of the factors: li holds the strictly-lower rows of
	// each L column (ascending), ui the strictly-upper rows of each U
	// column (ascending — the left-looking update order).
	lp, li []int32
	up, ui []int32

	// fetSlot holds six value-array indices per FET — the Norton stamp
	// positions (D,G) (D,D) (D,S) (S,G) (S,D) (S,S) — with -1 for
	// ground-collapsed entries, so the per-iteration stamp is six
	// indexed adds with no searching.
	fetSlot []int32

	// sig is the structural signature the plan was built from; matches
	// compares a circuit against it without allocating.
	sig []int32
}

// wantSparse reports whether a solve of the given dimension should take
// the sparse path.
func wantSparse(k SolverKind, dim int) bool {
	return k == SolverSparse || (k == SolverAuto && dim >= sparseCrossover)
}

// structSig appends the topology signature of c: every count and every
// element terminal that shapes the matrix pattern (values excluded).
func structSig(sig []int32, c *Circuit, n, m int) []int32 {
	sig = append(sig, int32(n), int32(m),
		int32(len(c.Resistors)), int32(len(c.Capacitors)),
		int32(len(c.VSources)), int32(len(c.ISources)), int32(len(c.FETs)))
	for _, r := range c.Resistors {
		sig = append(sig, int32(r.A), int32(r.B))
	}
	for _, cp := range c.Capacitors {
		sig = append(sig, int32(cp.A), int32(cp.B))
	}
	for _, vs := range c.VSources {
		sig = append(sig, int32(vs.P), int32(vs.N))
	}
	for _, is := range c.ISources {
		sig = append(sig, int32(is.P), int32(is.N))
	}
	for i := range c.FETs {
		f := &c.FETs[i]
		sig = append(sig, int32(f.D), int32(f.G), int32(f.S))
	}
	return sig
}

// matches reports whether c has exactly the topology the plan was built
// from. It walks the circuit in signature order comparing element by
// element, so reusing a plan across structure-identical circuits (load
// sweeps, Monte Carlo lanes) costs no allocation.
func (pl *plan) matches(c *Circuit, n, m int) bool {
	sig := pl.sig
	i := 0
	eat := func(v int) bool {
		if i >= len(sig) || sig[i] != int32(v) {
			return false
		}
		i++
		return true
	}
	if !eat(n) || !eat(m) ||
		!eat(len(c.Resistors)) || !eat(len(c.Capacitors)) ||
		!eat(len(c.VSources)) || !eat(len(c.ISources)) || !eat(len(c.FETs)) {
		return false
	}
	for _, r := range c.Resistors {
		if !eat(r.A) || !eat(r.B) {
			return false
		}
	}
	for _, cp := range c.Capacitors {
		if !eat(cp.A) || !eat(cp.B) {
			return false
		}
	}
	for _, vs := range c.VSources {
		if !eat(vs.P) || !eat(vs.N) {
			return false
		}
	}
	for _, is := range c.ISources {
		if !eat(is.P) || !eat(is.N) {
			return false
		}
	}
	for i := range c.FETs {
		f := &c.FETs[i]
		if !eat(f.D) || !eat(f.G) || !eat(f.S) {
			return false
		}
	}
	return i == len(sig)
}

// newPlan computes the symbolic factorization of c's MNA structure.
func newPlan(c *Circuit, n, m int) (*plan, error) {
	dim := n + m
	pl := &plan{dim: dim, n: n}
	pl.sig = structSig(nil, c, n, m)

	// Structural pattern of the MNA matrix, rows per column. Capacitor
	// entries are included even though DC stamps them as zero: one plan
	// then serves both the operating point and the transient.
	cols := make([][]int32, dim)
	addE := func(r, cc int) {
		if r >= 0 && cc >= 0 {
			cols[cc] = append(cols[cc], int32(r))
		}
	}
	pair := func(a, b int) {
		ia, ib := a-1, b-1
		addE(ia, ia)
		addE(ib, ib)
		if ia >= 0 && ib >= 0 {
			addE(ia, ib)
			addE(ib, ia)
		}
	}
	for _, r := range c.Resistors {
		pair(r.A, r.B)
	}
	for _, cp := range c.Capacitors {
		pair(cp.A, cp.B)
	}
	for vi, vs := range c.VSources {
		row := n + vi
		if ip := vs.P - 1; ip >= 0 {
			addE(ip, row)
			addE(row, ip)
		}
		if in := vs.N - 1; in >= 0 {
			addE(in, row)
			addE(row, in)
		}
	}
	for i := range c.FETs {
		f := &c.FETs[i]
		pair(f.D, 0) // Gmin ties (diagonal only; the other end is ground)
		pair(f.S, 0)
		for _, r := range [2]int{f.D - 1, f.S - 1} {
			for _, cc := range [3]int{f.G - 1, f.D - 1, f.S - 1} {
				addE(r, cc)
			}
		}
	}
	for j := range cols {
		cols[j] = sortDedup32(cols[j])
	}

	// Row matching: pick a distinct equation row for every column so
	// the permuted matrix has a structurally nonzero diagonal. MNA
	// needs this because voltage-source branch equations (and nodes
	// held only by voltage sources) have structurally zero diagonals.
	// Kuhn's augmenting-path matching, seeded with the self-matched
	// diagonal, visits candidates in ascending order — deterministic.
	rowFor := make([]int32, dim) // column -> matched original row
	colFor := make([]int32, dim) // original row -> matched column
	for j := range rowFor {
		rowFor[j], colFor[j] = -1, -1
	}
	for j := 0; j < dim; j++ {
		for _, r := range cols[j] {
			if int(r) == j {
				rowFor[j], colFor[j] = int32(j), int32(j)
				break
			}
		}
	}
	visited := make([]int32, dim)
	epoch := int32(0)
	var augment func(j int) bool
	augment = func(j int) bool {
		for _, r := range cols[j] {
			if visited[r] == epoch {
				continue
			}
			visited[r] = epoch
			if colFor[r] < 0 || augment(int(colFor[r])) {
				rowFor[j], colFor[r] = r, int32(j)
				return true
			}
		}
		return false
	}
	for j := 0; j < dim; j++ {
		if rowFor[j] >= 0 {
			continue
		}
		epoch++
		if !augment(j) {
			return nil, fmt.Errorf("spice: structurally singular system: no equation can pivot for %s", c.unknownName(j))
		}
	}

	// Fill-reducing ordering: greedy minimum degree on the symmetrized
	// pattern of the row-matched matrix, ties broken by lowest index.
	// The elimination-graph update forms the pivot's neighbor clique
	// explicitly; circuit graphs fill modestly, so this stays cheap at
	// the dimensions the repo solves.
	adj := make([]map[int32]struct{}, dim)
	for v := range adj {
		adj[v] = make(map[int32]struct{})
	}
	for j := 0; j < dim; j++ {
		for _, r := range cols[j] {
			i := colFor[r] // row of the matched matrix holding original row r
			if int(i) != j {
				adj[i][int32(j)] = struct{}{}
				adj[int32(j)][i] = struct{}{}
			}
		}
	}
	order := make([]int32, 0, dim)
	eliminated := make([]bool, dim)
	var nbrs []int32
	for len(order) < dim {
		best, bestDeg := -1, dim+1
		for v := 0; v < dim; v++ {
			if !eliminated[v] && len(adj[v]) < bestDeg {
				best, bestDeg = v, len(adj[v])
			}
		}
		v := int32(best)
		eliminated[best] = true
		order = append(order, v)
		nbrs = nbrs[:0]
		for u := range adj[best] {
			nbrs = append(nbrs, u)
		}
		for _, u := range nbrs {
			delete(adj[u], v)
		}
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				adj[nbrs[x]][nbrs[y]] = struct{}{}
				adj[nbrs[y]][nbrs[x]] = struct{}{}
			}
		}
	}

	pl.colOf = order
	pl.rowOf = make([]int32, dim)
	pl.invCol = make([]int32, dim)
	pl.invRow = make([]int32, dim)
	for p, v := range order {
		pl.rowOf[p] = rowFor[v]
		pl.invCol[v] = int32(p)
		pl.invRow[rowFor[v]] = int32(p)
	}

	// Base symmetric adjacency in elimination coordinates (the
	// min-degree pass above destroyed its working copy).
	posAdj := make([][]int32, dim)
	for j := 0; j < dim; j++ {
		q := pl.invCol[j]
		for _, r := range cols[j] {
			p := pl.invCol[colFor[r]]
			if p != q {
				posAdj[p] = append(posAdj[p], q)
				posAdj[q] = append(posAdj[q], p)
			}
		}
	}
	for p := range posAdj {
		posAdj[p] = sortDedup32(posAdj[p])
	}

	// Symbolic factorization via elimination-tree column merge: the
	// pattern of L's column j is its base neighbors below j plus every
	// child column's pattern (minus j itself); the parent of j is the
	// smallest row of its pattern. This is the standard symbolic
	// Cholesky on the symmetrized pattern — a superset of the true
	// unsymmetric LU fill (George/Ng), so the fixed-pattern numeric
	// phase can never need a slot the plan did not reserve.
	lpat := make([][]int32, dim)
	children := make([][]int32, dim)
	mark := make([]int32, dim)
	for p := range mark {
		mark[p] = -1
	}
	for j := 0; j < dim; j++ {
		var pat []int32
		for _, i := range posAdj[j] {
			if i > int32(j) && mark[i] != int32(j) {
				mark[i] = int32(j)
				pat = append(pat, i)
			}
		}
		for _, ch := range children[j] {
			for _, i := range lpat[ch] {
				if i != int32(j) && mark[i] != int32(j) {
					mark[i] = int32(j)
					pat = append(pat, i)
				}
			}
		}
		sort.Slice(pat, func(a, b int) bool { return pat[a] < pat[b] })
		lpat[j] = pat
		if len(pat) > 0 {
			children[pat[0]] = append(children[pat[0]], int32(j))
		}
	}

	pl.lp = make([]int32, dim+1)
	for j := 0; j < dim; j++ {
		pl.lp[j+1] = pl.lp[j] + int32(len(lpat[j]))
	}
	pl.li = make([]int32, 0, pl.lp[dim])
	for j := 0; j < dim; j++ {
		pl.li = append(pl.li, lpat[j]...)
	}
	// U's pattern is L's transpose (the base pattern is symmetric):
	// scanning k ascending appends each k to its columns in order, so
	// every U column comes out ascending — the update order the
	// left-looking factorization needs.
	ucols := make([][]int32, dim)
	for k := 0; k < dim; k++ {
		for _, i := range lpat[k] {
			ucols[i] = append(ucols[i], int32(k))
		}
	}
	pl.up = make([]int32, dim+1)
	for j := 0; j < dim; j++ {
		pl.up[j+1] = pl.up[j] + int32(len(ucols[j]))
	}
	pl.ui = make([]int32, 0, pl.up[dim])
	for j := 0; j < dim; j++ {
		pl.ui = append(pl.ui, ucols[j]...)
	}

	// Assembled-matrix pattern in elimination coordinates.
	pcols := make([][]int32, dim)
	for j := 0; j < dim; j++ {
		q := pl.invCol[j]
		for _, r := range cols[j] {
			pcols[q] = append(pcols[q], pl.invRow[r])
		}
	}
	pl.ap = make([]int32, dim+1)
	for q := 0; q < dim; q++ {
		pcols[q] = sortDedup32(pcols[q])
		pl.ap[q+1] = pl.ap[q] + int32(len(pcols[q]))
	}
	pl.ai = make([]int32, 0, pl.ap[dim])
	for q := 0; q < dim; q++ {
		pl.ai = append(pl.ai, pcols[q]...)
	}

	// Per-FET Norton stamp slots, in stampFETSparse's add order.
	pl.fetSlot = make([]int32, 0, 6*len(c.FETs))
	for i := range c.FETs {
		f := &c.FETs[i]
		for _, r := range [2]int{f.D - 1, f.S - 1} {
			for _, cc := range [3]int{f.G - 1, f.D - 1, f.S - 1} {
				if r < 0 || cc < 0 {
					pl.fetSlot = append(pl.fetSlot, -1)
				} else {
					pl.fetSlot = append(pl.fetSlot, int32(pl.slotOf(r, cc)))
				}
			}
		}
	}
	return pl, nil
}

// sortDedup32 sorts s ascending and removes duplicates in place.
func sortDedup32(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// slotOf maps an original (row, column) matrix entry to its index in
// the assembled value array. Stamping a position outside the planned
// pattern is an internal invariant violation and panics.
func (pl *plan) slotOf(r, cc int) int {
	q := pl.invCol[cc]
	p := pl.invRow[r]
	lo, hi := int(pl.ap[q]), int(pl.ap[q+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pl.ai[mid] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(pl.ap[q+1]) && pl.ai[lo] == p {
		return lo
	}
	panic(fmt.Sprintf("spice: stamp at (%d,%d) outside the planned sparsity pattern", r, cc))
}

// factor runs the fixed-pattern left-looking numeric LU: a holds the
// assembled values over the plan's A-pattern; the unit-lower factor
// lands in lx (over li), the strict upper in ux (over ui), and the
// pivots in d. w is caller-owned dim-sized scratch. Everything is
// preallocated, so refactorization allocates nothing. The return is -1
// on success or the elimination position of a zero/NaN pivot.
func (pl *plan) factor(a, lx, ux, d, w []float64) int {
	dim := pl.dim
	for j := 0; j < dim; j++ {
		// Clear exactly the factor pattern of column j, then scatter
		// the assembled column into it (the A-pattern is a subset).
		for t := pl.up[j]; t < pl.up[j+1]; t++ {
			w[pl.ui[t]] = 0
		}
		w[j] = 0
		for t := pl.lp[j]; t < pl.lp[j+1]; t++ {
			w[pl.li[t]] = 0
		}
		for t := pl.ap[j]; t < pl.ap[j+1]; t++ {
			w[pl.ai[t]] += a[t]
		}
		// Left-looking updates in ascending pivot order.
		for t := pl.up[j]; t < pl.up[j+1]; t++ {
			k := pl.ui[t]
			ukj := w[k]
			ux[t] = ukj
			if ukj != 0 {
				for s := pl.lp[k]; s < pl.lp[k+1]; s++ {
					w[pl.li[s]] -= lx[s] * ukj
				}
			}
		}
		piv := w[j]
		if piv == 0 || piv != piv { // zero or NaN
			return j
		}
		d[j] = piv
		inv := 1 / piv
		for t := pl.lp[j]; t < pl.lp[j+1]; t++ {
			lx[t] = w[pl.li[t]] * inv
		}
	}
	return -1
}

// solve overwrites b with the solution of the planned system using the
// factors from the latest factor call: it gathers b through the row
// permutation, runs the column-oriented unit-lower and upper triangular
// solves, and scatters the result back through the column ordering. w
// is the same dim-sized scratch factor uses.
func (pl *plan) solve(b []float64, lx, ux, d, w []float64) {
	dim := pl.dim
	for p := 0; p < dim; p++ {
		w[p] = b[pl.rowOf[p]]
	}
	for j := 0; j < dim; j++ {
		zj := w[j]
		if zj != 0 {
			for t := pl.lp[j]; t < pl.lp[j+1]; t++ {
				w[pl.li[t]] -= lx[t] * zj
			}
		}
	}
	for j := dim - 1; j >= 0; j-- {
		xj := w[j] / d[j]
		b[pl.colOf[j]] = xj
		for t := pl.up[j]; t < pl.up[j+1]; t++ {
			w[pl.ui[t]] -= ux[t] * xj
		}
	}
}

// unknownName names the unknown of matrix column col: a node name for
// the node-voltage block, the source name for branch currents.
func (c *Circuit) unknownName(col int) string {
	n := c.NodeCount() - 1
	if col < n {
		return "node " + c.NodeName(col+1)
	}
	return "source " + c.VSources[col-n].Name
}
