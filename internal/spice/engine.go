package spice

import (
	"fmt"
	"math"

	"cnfetdk/internal/device"
)

// Options tunes the analyses.
type Options struct {
	// MaxNewton is the Newton-Raphson iteration cap per solve.
	MaxNewton int
	// VTol is the voltage convergence tolerance.
	VTol float64
	// Gmin is the minimum conductance tied from every FET terminal to
	// ground for convergence robustness.
	Gmin float64
	// MaxStep clamps Newton voltage updates (damping).
	MaxStep float64
}

// DefaultOptions returns robust defaults.
func DefaultOptions() Options {
	return Options{MaxNewton: 100, VTol: 1e-6, Gmin: 1e-12, MaxStep: 0.5}
}

// state is a scratch MNA system.
type state struct {
	c      *Circuit
	opt    Options
	n      int // node unknowns excluding ground
	m      int // voltage-source branch currents
	dim    int
	a      []float64
	b      []float64
	x      []float64 // current solution estimate (node voltages + branch currents)
	deltaT float64   // 0 for DC
	xPrev  []float64 // previous timestep solution
	iPrev  []float64 // previous capacitor currents (trapezoidal)
	t      float64
}

func newState(c *Circuit, opt Options) *state {
	n := c.NodeCount() - 1
	m := len(c.VSources)
	s := &state{
		c: c, opt: opt, n: n, m: m, dim: n + m,
		a:     make([]float64, (n+m)*(n+m)),
		b:     make([]float64, n+m),
		x:     make([]float64, n+m),
		xPrev: make([]float64, n+m),
		iPrev: make([]float64, len(c.Capacitors)),
	}
	return s
}

// idx maps a node index to a matrix row (-1 for ground).
func (s *state) idx(node int) int { return node - 1 }

// v returns the node voltage of the current estimate.
func (s *state) v(node int) float64 {
	if node == 0 {
		return 0
	}
	return s.x[node-1]
}

func (s *state) stampG(a, b int, g float64) {
	ia, ib := s.idx(a), s.idx(b)
	if ia >= 0 {
		s.a[ia*s.dim+ia] += g
	}
	if ib >= 0 {
		s.a[ib*s.dim+ib] += g
	}
	if ia >= 0 && ib >= 0 {
		s.a[ia*s.dim+ib] -= g
		s.a[ib*s.dim+ia] -= g
	}
}

func (s *state) stampI(a, b int, i float64) {
	// Current i flows from a to b externally (injected into b).
	if ia := s.idx(a); ia >= 0 {
		s.b[ia] -= i
	}
	if ib := s.idx(b); ib >= 0 {
		s.b[ib] += i
	}
}

// assemble builds the linearized MNA system around the current estimate.
func (s *state) assemble() {
	for i := range s.a {
		s.a[i] = 0
	}
	for i := range s.b {
		s.b[i] = 0
	}
	c := s.c
	for _, r := range c.Resistors {
		s.stampG(r.A, r.B, 1/r.R)
	}
	for ci, cap := range c.Capacitors {
		if s.deltaT > 0 {
			// Trapezoidal companion: geq = 2C/dt, Ieq accounts history.
			geq := 2 * cap.C / s.deltaT
			vPrev := s.prevV(cap.A) - s.prevV(cap.B)
			ieq := geq*vPrev + s.iPrev[ci]
			s.stampG(cap.A, cap.B, geq)
			s.stampI(cap.B, cap.A, ieq) // inject ieq from B to A
		}
		// DC: open circuit.
	}
	for vi, vs := range c.VSources {
		row := s.n + vi
		ip, in := s.idx(vs.P), s.idx(vs.N)
		if ip >= 0 {
			s.a[ip*s.dim+row] += 1
			s.a[row*s.dim+ip] += 1
		}
		if in >= 0 {
			s.a[in*s.dim+row] -= 1
			s.a[row*s.dim+in] -= 1
		}
		s.b[row] += vs.W.At(s.t)
	}
	for _, is := range c.ISources {
		s.stampI(is.P, is.N, is.W.At(s.t))
	}
	for _, f := range c.FETs {
		s.stampFET(f)
	}
}

func (s *state) prevV(node int) float64 {
	if node == 0 {
		return 0
	}
	return s.xPrev[node-1]
}

// stampFET linearizes the FET around the present estimate:
// I(v) ≈ I0 + gG·(vg-vg0) + gD·(vd-vd0) + gS·(vs-vs0).
func (s *state) stampFET(f FET) {
	vg, vd, vs := s.v(f.G), s.v(f.D), s.v(f.S)
	id, dIg, dId, dIs := fetEvalNumeric(f.P, vg, vd, vs)
	// Norton equivalent: current source + conductances.
	ieq := id - dIg*vg - dId*vd - dIs*vs
	// Current id flows D -> S (leaves D node).
	addA := func(r, c int, v float64) {
		ri, ci := s.idx(r), s.idx(c)
		if ri >= 0 && ci >= 0 {
			s.a[ri*s.dim+ci] += v
		}
	}
	// KCL at D: +id; at S: -id.
	if di := s.idx(f.D); di >= 0 {
		s.b[di] -= ieq
	}
	if si := s.idx(f.S); si >= 0 {
		s.b[si] += ieq
	}
	addA(f.D, f.G, dIg)
	addA(f.D, f.D, dId)
	addA(f.D, f.S, dIs)
	addA(f.S, f.G, -dIg)
	addA(f.S, f.D, -dId)
	addA(f.S, f.S, -dIs)
	// Gmin for robustness.
	s.stampG(f.D, 0, s.opt.Gmin)
	s.stampG(f.S, 0, s.opt.Gmin)
}

// fetEvalNumeric computes the drain current and numerically differentiated
// terminal derivatives. The analytic derivation with source/drain swap and
// polarity mirroring is error-prone; central differences on the smooth
// model are exact enough for Newton and unconditionally consistent with
// the current evaluation.
func fetEvalNumeric(p device.FETParams, vg, vd, vs float64) (id, dIg, dId, dIs float64) {
	id = fetCurrent(p, vg, vd, vs)
	const h = 1e-6
	dIg = (fetCurrent(p, vg+h, vd, vs) - fetCurrent(p, vg-h, vd, vs)) / (2 * h)
	dId = (fetCurrent(p, vg, vd+h, vs) - fetCurrent(p, vg, vd-h, vs)) / (2 * h)
	dIs = (fetCurrent(p, vg, vd, vs+h) - fetCurrent(p, vg, vd, vs-h)) / (2 * h)
	return id, dIg, dId, dIs
}

// fetCurrent returns the drain-to-source current of the smooth FET model.
func fetCurrent(p device.FETParams, vg, vd, vs float64) float64 {
	vgs := vg - vs
	vds := vd - vs
	if p.Polarity == device.PType {
		vgs = vs - vg
		vds = vs - vd
	}
	sign := 1.0
	if vds < 0 {
		// Symmetric device: treat the lower terminal as the source. The
		// effective gate drive is measured from the new source (the old
		// drain): vgs' = vg - vd = vgs - vds.
		vgs -= vds
		vds = -vds
		sign = -1
	}
	u := (vgs - p.Vt) / p.SS
	var g float64
	switch {
	case u > 40:
		g = 1
	case u < -40:
		g = 0
	default:
		g = 1 / (1 + math.Exp(-u))
	}
	i := sign * p.ISat * g * math.Tanh(vds/p.VSat)
	if p.Polarity == device.PType {
		i = -i
	}
	return i
}

// newton iterates the nonlinear solve at the present time point.
func (s *state) newton() error {
	for it := 0; it < s.opt.MaxNewton; it++ {
		s.assemble()
		// Solve A dx = b with x embedded: we assemble full equations in
		// terms of absolute unknowns, so solve directly for x_new.
		a := append([]float64(nil), s.a...)
		b := append([]float64(nil), s.b...)
		if err := lu(a, b, s.dim); err != nil {
			return err
		}
		// Damped update and convergence check on node voltages.
		conv := true
		for i := 0; i < s.dim; i++ {
			d := b[i] - s.x[i]
			if i < s.n {
				if math.Abs(d) > s.opt.VTol {
					conv = false
				}
				if d > s.opt.MaxStep {
					d = s.opt.MaxStep
				} else if d < -s.opt.MaxStep {
					d = -s.opt.MaxStep
				}
			}
			s.x[i] += d
		}
		if conv {
			return nil
		}
	}
	return fmt.Errorf("spice: Newton did not converge at t=%.3e", s.t)
}

// OP computes the DC operating point. It first tries a direct solve, then
// falls back to gmin stepping.
func (c *Circuit) OP(opt Options) ([]float64, error) {
	s := newState(c, opt)
	s.deltaT = 0
	if err := s.newton(); err == nil {
		return s.x, nil
	}
	// Gmin stepping: start heavily damped and relax.
	for _, g := range []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, opt.Gmin} {
		s.opt.Gmin = g
		if err := s.newton(); err != nil {
			return nil, fmt.Errorf("gmin step %g: %w", g, err)
		}
	}
	return s.x, nil
}

// Result holds a transient waveform set.
type Result struct {
	Circuit *Circuit
	Times   []float64
	// V[node][k] is the voltage of node at Times[k] (node 0 omitted).
	V [][]float64
	// IV[src][k] is the branch current of voltage source src at Times[k];
	// positive current flows from P to N inside the source.
	IV [][]float64
}

// Transient runs a fixed-step trapezoidal transient from 0 to tstop with
// the given number of steps. The DC operating point at t=0 initializes
// state.
func (c *Circuit) Transient(tstop float64, steps int, opt Options) (*Result, error) {
	s := newState(c, opt)
	s.t = 0
	s.deltaT = 0
	if err := s.newton(); err != nil {
		// Retry via gmin ramp.
		for _, g := range []float64{1e-3, 1e-5, 1e-7, 1e-9, opt.Gmin} {
			s.opt.Gmin = g
			if err2 := s.newton(); err2 != nil {
				return nil, fmt.Errorf("spice: OP for transient: %w", err2)
			}
		}
		s.opt.Gmin = opt.Gmin
	}
	dt := tstop / float64(steps)
	res := &Result{Circuit: c}
	nNodes := c.NodeCount() - 1
	res.V = make([][]float64, nNodes)
	res.IV = make([][]float64, len(c.VSources))
	record := func() {
		res.Times = append(res.Times, s.t)
		for i := 0; i < nNodes; i++ {
			res.V[i] = append(res.V[i], s.x[i])
		}
		for i := range c.VSources {
			res.IV[i] = append(res.IV[i], s.x[s.n+i])
		}
	}
	record()
	copy(s.xPrev, s.x)
	// Initialize capacitor currents at 0 (consistent DC).
	for i := range s.iPrev {
		s.iPrev[i] = 0
	}
	s.deltaT = dt
	for k := 1; k <= steps; k++ {
		s.t = float64(k) * dt
		if err := s.newton(); err != nil {
			return nil, err
		}
		// Update capacitor branch currents for the trapezoidal history:
		// i_new = geq*(v_new - v_prev) - i_prev.
		for ci, cap := range c.Capacitors {
			geq := 2 * cap.C / dt
			vNew := s.v(cap.A) - s.v(cap.B)
			vPrev := s.prevV(cap.A) - s.prevV(cap.B)
			s.iPrev[ci] = geq*(vNew-vPrev) - s.iPrev[ci]
		}
		copy(s.xPrev, s.x)
		record()
	}
	return res, nil
}
