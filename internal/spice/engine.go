package spice

import (
	"errors"
	"fmt"
	"math"

	"cnfetdk/internal/device"
	"cnfetdk/internal/fault"
)

// ErrNoConvergence is the sentinel every Newton non-convergence wraps;
// match with errors.Is. Non-convergence is a property of the circuit
// and options, not of the caller's request shape, so callers decide
// whether to retry with different options or fail typed.
var ErrNoConvergence = errors.New("spice: no convergence")

// ConvergenceError reports a Newton solve that exhausted MaxNewton
// iterations (or an injected equivalent) at simulation time T.
type ConvergenceError struct {
	// T is the transient time point that failed to converge.
	T float64
	// Cause is the injected fault when the failure was injected, nil
	// for a genuine solver failure.
	Cause error
}

func (e *ConvergenceError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("spice: Newton did not converge at t=%.3e: %v", e.T, e.Cause)
	}
	return fmt.Sprintf("spice: Newton did not converge at t=%.3e", e.T)
}

// Unwrap exposes ErrNoConvergence (and the injected cause, when
// present) to errors.Is.
func (e *ConvergenceError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrNoConvergence, e.Cause}
	}
	return []error{ErrNoConvergence}
}

// Options tunes the analyses.
type Options struct {
	// MaxNewton is the Newton-Raphson iteration cap per solve.
	MaxNewton int
	// VTol is the voltage convergence tolerance.
	VTol float64
	// Gmin is the minimum conductance tied from every FET terminal to
	// ground for convergence robustness.
	Gmin float64
	// MaxStep clamps Newton voltage updates (damping).
	MaxStep float64
	// Solver picks the linear solver: SolverAuto (the zero value)
	// switches from dense to sparse at sparseCrossover unknowns;
	// SolverDense and SolverSparse force a path (tests, benchmarks).
	Solver SolverKind
	// Inject arms the solver's fault-injection points ("spice.newton"
	// forces a typed non-convergence); nil — the default — is free.
	Inject *fault.Injector
}

// DefaultOptions returns robust defaults.
func DefaultOptions() Options {
	return Options{MaxNewton: 100, VTol: 1e-6, Gmin: 1e-12, MaxStep: 0.5}
}

// state is a scratch MNA system. The linear part of the system (resistor
// conductances, capacitor trapezoidal companions, voltage-source
// incidence, Gmin ties) is stamped once per (deltaT, Gmin) configuration
// into aStatic; each Newton iteration copy-restores it and re-applies only
// the FET Norton linearizations. The per-time-point RHS (source waveform
// values, capacitor history currents) is likewise stamped once per time
// point into bStep. Every slice lives for the life of the state and is
// reused across iterations and timesteps, so a solve in steady state
// allocates nothing.
type state struct {
	c   *Circuit
	opt Options
	n   int // node unknowns excluding ground
	m   int // voltage-source branch currents
	dim int

	aStatic []float64 // static linear stamps, valid for (deltaT, opt.Gmin)
	bStep   []float64 // per-time-point RHS (sources at t, capacitor history)
	a       []float64 // working matrix, copy-restored then destroyed by lu
	b       []float64 // working RHS, copy-restored then destroyed by lu
	perm    []int     // caller-owned pivot scratch for lu

	// The sparse path (sparse == true): the same static/working split
	// over the plan's value arrays instead of dense dim×dim storage.
	// The plan is the per-topology symbolic factorization; it survives
	// init across structure-identical circuits, and Batch pre-seeds it
	// so every lane shares one.
	sparse    bool
	pl        *plan
	aStaticSp []float64 // static stamps over the plan's A-pattern
	aSp       []float64 // working values, copy-restored per iteration
	lx, ux    []float64 // numeric factors over the plan's L/U patterns
	dg        []float64 // pivots
	wv        []float64 // dim-sized factorization/solve scratch

	x      []float64 // current solution estimate (node voltages + branch currents)
	xPrev  []float64 // previous timestep solution
	iPrev  []float64 // previous capacitor currents (trapezoidal)
	deltaT float64   // 0 for DC
	t      float64

	staticOK bool // aStatic matches the current (deltaT, opt.Gmin)
}

// init sizes the scratch for a circuit, reusing any capacity the state
// already holds, and resets the solution estimate to zero. On the
// sparse path it also resolves the symbolic plan: a plan left from a
// previous solve is kept when the new circuit has the identical
// topology (load sweeps and Monte Carlo lanes rebuild fresh but
// structure-identical circuits), so repeated solves plan once.
func (s *state) init(c *Circuit, opt Options) error {
	n := c.NodeCount() - 1
	m := len(c.VSources)
	dim := n + m
	s.c, s.opt = c, opt
	s.n, s.m, s.dim = n, m, dim
	s.sparse = wantSparse(opt.Solver, dim)
	if s.sparse {
		if s.pl == nil || s.pl.dim != dim || !s.pl.matches(c, n, m) {
			pl, err := newPlan(c, n, m)
			if err != nil {
				return err
			}
			s.pl = pl
		}
		nnz := len(s.pl.ai)
		s.aStaticSp = growFloats(s.aStaticSp, nnz)
		s.aSp = growFloats(s.aSp, nnz)
		s.lx = growFloats(s.lx, len(s.pl.li))
		s.ux = growFloats(s.ux, len(s.pl.ui))
		s.dg = growFloats(s.dg, dim)
		s.wv = growFloats(s.wv, dim)
	} else {
		s.aStatic = growFloats(s.aStatic, dim*dim)
		s.a = growFloats(s.a, dim*dim)
		if cap(s.perm) < dim {
			s.perm = make([]int, dim)
		}
		s.perm = s.perm[:dim]
	}
	s.bStep = growFloats(s.bStep, dim)
	s.b = growFloats(s.b, dim)
	s.x = growFloats(s.x, dim)
	s.xPrev = growFloats(s.xPrev, dim)
	s.iPrev = growFloats(s.iPrev, len(c.Capacitors))
	zeroFloats(s.x)
	zeroFloats(s.xPrev)
	zeroFloats(s.iPrev)
	s.deltaT, s.t = 0, 0
	s.staticOK = false
	return nil
}

// growFloats returns a slice of length n, reusing s's capacity when it
// suffices. Contents are unspecified; callers overwrite or zero them.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// setGmin updates the robustness conductance, invalidating the static
// stamps when it actually changes (gmin stepping).
func (s *state) setGmin(g float64) {
	if s.opt.Gmin != g {
		s.opt.Gmin = g
		s.staticOK = false
	}
}

// setDeltaT switches between DC (0) and transient companion stamping.
func (s *state) setDeltaT(dt float64) {
	if s.deltaT != dt {
		s.deltaT = dt
		s.staticOK = false
	}
}

// idx maps a node index to a matrix row (-1 for ground).
func (s *state) idx(node int) int { return node - 1 }

// v returns the node voltage of the current estimate.
func (s *state) v(node int) float64 {
	if node == 0 {
		return 0
	}
	return s.x[node-1]
}

// stampGInto stamps a conductance between nodes a and b into matrix m.
func (s *state) stampGInto(m []float64, a, b int, g float64) {
	ia, ib := s.idx(a), s.idx(b)
	if ia >= 0 {
		m[ia*s.dim+ia] += g
	}
	if ib >= 0 {
		m[ib*s.dim+ib] += g
	}
	if ia >= 0 && ib >= 0 {
		m[ia*s.dim+ib] -= g
		m[ib*s.dim+ia] -= g
	}
}

// stampIInto stamps a current flowing from a to b externally (injected
// into b) into RHS vector rhs.
func (s *state) stampIInto(rhs []float64, a, b int, i float64) {
	if ia := s.idx(a); ia >= 0 {
		rhs[ia] -= i
	}
	if ib := s.idx(b); ib >= 0 {
		rhs[ib] += i
	}
}

// stampStatic assembles the linear, configuration-dependent part of the
// MNA matrix: resistors, capacitor trapezoidal companion conductances,
// voltage-source incidence, and the per-FET Gmin ties. It depends only on
// (deltaT, opt.Gmin), never on the Newton estimate or the time point, so
// newton copy-restores it instead of re-stamping.
func (s *state) stampStatic() {
	zeroFloats(s.aStatic)
	c := s.c
	for _, r := range c.Resistors {
		s.stampGInto(s.aStatic, r.A, r.B, 1/r.R)
	}
	if s.deltaT > 0 {
		for _, cap := range c.Capacitors {
			// Trapezoidal companion conductance geq = 2C/dt.
			s.stampGInto(s.aStatic, cap.A, cap.B, 2*cap.C/s.deltaT)
		}
	}
	// DC: capacitors are open circuits.
	for vi, vs := range c.VSources {
		row := s.n + vi
		ip, in := s.idx(vs.P), s.idx(vs.N)
		if ip >= 0 {
			s.aStatic[ip*s.dim+row] += 1
			s.aStatic[row*s.dim+ip] += 1
		}
		if in >= 0 {
			s.aStatic[in*s.dim+row] -= 1
			s.aStatic[row*s.dim+in] -= 1
		}
	}
	for i := range c.FETs {
		f := &c.FETs[i]
		s.stampGInto(s.aStatic, f.D, 0, s.opt.Gmin)
		s.stampGInto(s.aStatic, f.S, 0, s.opt.Gmin)
	}
	s.staticOK = true
}

// stampGSp stamps a conductance between nodes a and b into the sparse
// value array m through the plan's slot map.
func (s *state) stampGSp(m []float64, a, b int, g float64) {
	ia, ib := a-1, b-1
	if ia >= 0 {
		m[s.pl.slotOf(ia, ia)] += g
	}
	if ib >= 0 {
		m[s.pl.slotOf(ib, ib)] += g
	}
	if ia >= 0 && ib >= 0 {
		m[s.pl.slotOf(ia, ib)] -= g
		m[s.pl.slotOf(ib, ia)] -= g
	}
}

// stampStaticSparse is stampStatic for the sparse path: identical
// element walk and values, but each stamp lands in its planned slot.
// The slot lookups binary-search the pattern — fine for a routine that
// runs once per (deltaT, Gmin) configuration, not per iteration.
func (s *state) stampStaticSparse() {
	zeroFloats(s.aStaticSp)
	c := s.c
	for _, r := range c.Resistors {
		s.stampGSp(s.aStaticSp, r.A, r.B, 1/r.R)
	}
	if s.deltaT > 0 {
		for _, cap := range c.Capacitors {
			s.stampGSp(s.aStaticSp, cap.A, cap.B, 2*cap.C/s.deltaT)
		}
	}
	// DC: capacitors are open circuits (their pattern slots stay zero).
	for vi, vs := range c.VSources {
		row := s.n + vi
		if ip := s.idx(vs.P); ip >= 0 {
			s.aStaticSp[s.pl.slotOf(ip, row)]++
			s.aStaticSp[s.pl.slotOf(row, ip)]++
		}
		if in := s.idx(vs.N); in >= 0 {
			s.aStaticSp[s.pl.slotOf(in, row)]--
			s.aStaticSp[s.pl.slotOf(row, in)]--
		}
	}
	for i := range c.FETs {
		f := &c.FETs[i]
		s.stampGSp(s.aStaticSp, f.D, 0, s.opt.Gmin)
		s.stampGSp(s.aStaticSp, f.S, 0, s.opt.Gmin)
	}
	s.staticOK = true
}

// stampStep assembles the per-time-point RHS: voltage-source waveform
// values, current sources, and the capacitor trapezoidal history. It
// depends on (t, xPrev, iPrev) — all fixed across the Newton iterations
// of one time point — so newton computes it once per solve.
func (s *state) stampStep() {
	zeroFloats(s.bStep)
	c := s.c
	if s.deltaT > 0 {
		for ci, cap := range c.Capacitors {
			geq := 2 * cap.C / s.deltaT
			vPrev := s.prevV(cap.A) - s.prevV(cap.B)
			ieq := geq*vPrev + s.iPrev[ci]
			s.stampIInto(s.bStep, cap.B, cap.A, ieq) // inject ieq from B to A
		}
	}
	for vi, vs := range c.VSources {
		s.bStep[s.n+vi] += vs.W.At(s.t)
	}
	for _, is := range c.ISources {
		s.stampIInto(s.bStep, is.P, is.N, is.W.At(s.t))
	}
}

func (s *state) prevV(node int) float64 {
	if node == 0 {
		return 0
	}
	return s.xPrev[node-1]
}

// stampFET linearizes the FET around the present estimate:
// I(v) ≈ I0 + gG·(vg-vg0) + gD·(vd-vd0) + gS·(vs-vs0).
// Only the Norton equivalent is stamped here; the FET's Gmin ties live in
// the static matrix.
func (s *state) stampFET(f *FET) {
	vg, vd, vs := s.v(f.G), s.v(f.D), s.v(f.S)
	id, dIg, dId, dIs := fetEval(f.P, vg, vd, vs)
	// Norton equivalent: current source + conductances.
	ieq := id - dIg*vg - dId*vd - dIs*vs
	// KCL at D: +id; at S: -id.
	if di := s.idx(f.D); di >= 0 {
		s.b[di] -= ieq
	}
	if si := s.idx(f.S); si >= 0 {
		s.b[si] += ieq
	}
	s.addA(f.D, f.G, dIg)
	s.addA(f.D, f.D, dId)
	s.addA(f.D, f.S, dIs)
	s.addA(f.S, f.G, -dIg)
	s.addA(f.S, f.D, -dId)
	s.addA(f.S, f.S, -dIs)
}

// addA adds v at (r, c) of the working matrix when both map to unknowns.
func (s *state) addA(r, c int, v float64) {
	ri, ci := s.idx(r), s.idx(c)
	if ri >= 0 && ci >= 0 {
		s.a[ri*s.dim+ci] += v
	}
}

// stampFETSparse is stampFET for the sparse path: the same Norton
// linearization, but the six matrix entries go to slots the plan
// precomputed — six indexed adds, no searching, on the hot path.
func (s *state) stampFETSparse(fi int) {
	f := &s.c.FETs[fi]
	vg, vd, vs := s.v(f.G), s.v(f.D), s.v(f.S)
	id, dIg, dId, dIs := fetEval(f.P, vg, vd, vs)
	ieq := id - dIg*vg - dId*vd - dIs*vs
	if di := s.idx(f.D); di >= 0 {
		s.b[di] -= ieq
	}
	if si := s.idx(f.S); si >= 0 {
		s.b[si] += ieq
	}
	slots := s.pl.fetSlot[fi*6 : fi*6+6]
	vals := [6]float64{dIg, dId, dIs, -dIg, -dId, -dIs}
	for k, t := range slots {
		if t >= 0 {
			s.aSp[t] += vals[k]
		}
	}
}

// fetEval computes the drain current and its exact terminal derivatives.
//
// The smooth model is I = sign · ISat · g(u) · tanh(vds'/VSat) in the
// source-swapped frame (vds' >= 0), with g the logistic gate factor at
// u = (vgs' - Vt)/SS. Writing F(vgs, vds) for the current as a function of
// the polarity-mapped terminal differences, the chain rule through the
// swap (vgs' = vgs - vds, vds' = -vds when vds < 0) gives
//
//	vds >= 0:  ∂F/∂vgs = ISat·g′/SS·tanh,   ∂F/∂vds = ISat·g·sech²/VSat
//	vds <  0:  ∂F/∂vgs = -ISat·g′/SS·tanh,  ∂F/∂vds = ISat·(g′/SS·tanh + g·sech²/VSat)
//
// (g′, tanh, sech² evaluated at the swapped arguments). Both polarities
// then map identically onto the terminals: dI/dvg = ∂F/∂vgs,
// dI/dvd = ∂F/∂vds, dI/dvs = -(∂F/∂vgs + ∂F/∂vds) — the p-device mirrors
// the argument mapping and the output sign, and the two flips cancel.
// One exp and one tanh serve the current and all three derivatives, where
// central differences cost six extra model evaluations; the parity test
// pins the two against each other to 1e-9 over a dense grid.
func fetEval(p device.FETParams, vg, vd, vs float64) (id, dIg, dId, dIs float64) {
	vgs := vg - vs
	vds := vd - vs
	if p.Polarity == device.PType {
		vgs = vs - vg
		vds = vs - vd
	}
	sign := 1.0
	if vds < 0 {
		// Symmetric device: treat the lower terminal as the source.
		vgs -= vds
		vds = -vds
		sign = -1
	}
	u := (vgs - p.Vt) / p.SS
	var g, gp float64
	switch {
	case u > 40:
		g = 1
	case u < -40:
		g = 0
	default:
		g = 1 / (1 + math.Exp(-u))
		gp = g * (1 - g)
	}
	th := math.Tanh(vds / p.VSat)
	dgs := p.ISat * gp / p.SS * th           // |∂F/∂vgs| contribution
	dds := p.ISat * g * (1 - th*th) / p.VSat // saturation-slope contribution
	f := sign * p.ISat * g * th
	var f1, f2 float64
	if sign > 0 {
		f1, f2 = dgs, dds
	} else {
		f1, f2 = -dgs, dgs+dds
	}
	id = f
	if p.Polarity == device.PType {
		id = -f
	}
	return id, f1, f2, -f1 - f2
}

// fetEvalNumeric computes the drain current and centrally-differenced
// terminal derivatives. It is the independent reference the analytic
// fetEval is validated against (see TestFETDerivativeParity); the solver
// itself uses fetEval, which shares one exp/tanh evaluation across the
// current and all three derivatives.
func fetEvalNumeric(p device.FETParams, vg, vd, vs float64) (id, dIg, dId, dIs float64) {
	id = fetCurrent(p, vg, vd, vs)
	const h = 1e-6
	dIg = (fetCurrent(p, vg+h, vd, vs) - fetCurrent(p, vg-h, vd, vs)) / (2 * h)
	dId = (fetCurrent(p, vg, vd+h, vs) - fetCurrent(p, vg, vd-h, vs)) / (2 * h)
	dIs = (fetCurrent(p, vg, vd, vs+h) - fetCurrent(p, vg, vd, vs-h)) / (2 * h)
	return id, dIg, dId, dIs
}

// fetCurrent returns the drain-to-source current of the smooth FET model.
func fetCurrent(p device.FETParams, vg, vd, vs float64) float64 {
	vgs := vg - vs
	vds := vd - vs
	if p.Polarity == device.PType {
		vgs = vs - vg
		vds = vs - vd
	}
	sign := 1.0
	if vds < 0 {
		// Symmetric device: treat the lower terminal as the source. The
		// effective gate drive is measured from the new source (the old
		// drain): vgs' = vg - vd = vgs - vds.
		vgs -= vds
		vds = -vds
		sign = -1
	}
	u := (vgs - p.Vt) / p.SS
	var g float64
	switch {
	case u > 40:
		g = 1
	case u < -40:
		g = 0
	default:
		g = 1 / (1 + math.Exp(-u))
	}
	i := sign * p.ISat * g * math.Tanh(vds/p.VSat)
	if p.Polarity == device.PType {
		i = -i
	}
	return i
}

// newton iterates the nonlinear solve at the present time point. The
// static stamps and the per-time-point RHS are assembled once; each
// iteration copy-restores them and re-applies only the FET
// linearizations, then factorizes in the preallocated working system —
// the loop allocates nothing.
func (s *state) newton() error {
	if err := s.opt.Inject.Fault("spice.newton"); err != nil {
		return &ConvergenceError{T: s.t, Cause: err}
	}
	if !s.staticOK {
		if s.sparse {
			s.stampStaticSparse()
		} else {
			s.stampStatic()
		}
	}
	s.stampStep()
	for it := 0; it < s.opt.MaxNewton; it++ {
		copy(s.b, s.bStep)
		// We assemble full equations in terms of absolute unknowns, so
		// the solve yields x_new directly.
		if s.sparse {
			copy(s.aSp, s.aStaticSp)
			for i := range s.c.FETs {
				s.stampFETSparse(i)
			}
			if bad := s.pl.factor(s.aSp, s.lx, s.ux, s.dg, s.wv); bad >= 0 {
				col := int(s.pl.colOf[bad])
				return fmt.Errorf("spice: singular matrix at %s (elimination step %d of %d)",
					s.c.unknownName(col), bad, s.dim)
			}
			s.pl.solve(s.b, s.lx, s.ux, s.dg, s.wv)
		} else {
			copy(s.a, s.aStatic)
			for i := range s.c.FETs {
				s.stampFET(&s.c.FETs[i])
			}
			if err := lu(s.a, s.b, s.perm, s.dim); err != nil {
				var se *singularError
				if errors.As(err, &se) {
					return fmt.Errorf("spice: singular matrix at %s (column %d of %d)",
						s.c.unknownName(se.col), se.col, s.dim)
				}
				return err
			}
		}
		// Damped update and convergence check on node voltages.
		conv := true
		for i := 0; i < s.dim; i++ {
			d := s.b[i] - s.x[i]
			if i < s.n {
				if math.Abs(d) > s.opt.VTol {
					conv = false
				}
				if d > s.opt.MaxStep {
					d = s.opt.MaxStep
				} else if d < -s.opt.MaxStep {
					d = -s.opt.MaxStep
				}
			}
			s.x[i] += d
		}
		if conv {
			return nil
		}
	}
	return &ConvergenceError{T: s.t}
}

// Workspace holds the solver scratch and waveform storage one goroutine
// reuses across repeated solves: characterization sweeps and Monte Carlo
// loops run thousands of near-identical transients, and reusing the
// workspace keeps them off the garbage collector entirely. The zero value
// is ready to use. A Workspace is not safe for concurrent use; give each
// worker its own.
type Workspace struct {
	st  state
	res Result
}

// OP computes the DC operating point. It first tries a direct solve, then
// falls back to gmin stepping.
func (c *Circuit) OP(opt Options) ([]float64, error) {
	var ws Workspace
	s := &ws.st
	if err := s.init(c, opt); err != nil {
		return nil, err
	}
	if err := s.newton(); err == nil {
		return s.x, nil
	}
	// Gmin stepping: start heavily damped and relax.
	for _, g := range []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, opt.Gmin} {
		s.setGmin(g)
		if err := s.newton(); err != nil {
			return nil, fmt.Errorf("gmin step %g: %w", g, err)
		}
	}
	return s.x, nil
}

// Result holds a transient waveform set.
type Result struct {
	Circuit *Circuit
	Times   []float64
	// V[node][k] is the voltage of node at Times[k] (node 0 omitted).
	V [][]float64
	// IV[src][k] is the branch current of voltage source src at Times[k];
	// positive current flows from P to N inside the source.
	IV [][]float64
}

// reset sizes the result for a run of steps+1 samples over the circuit,
// reusing the waveform storage of a previous run when it is big enough.
func (r *Result) reset(c *Circuit, steps int) {
	r.Circuit = c
	samples := steps + 1
	r.Times = growFloats(r.Times, samples)
	nNodes := c.NodeCount() - 1
	r.V = growWaves(r.V, nNodes, samples)
	r.IV = growWaves(r.IV, len(c.VSources), samples)
}

// growWaves sizes an outer×samples waveform matrix, reusing capacity.
func growWaves(w [][]float64, outer, samples int) [][]float64 {
	if cap(w) < outer {
		w = make([][]float64, outer)
	} else {
		w = w[:outer]
	}
	for i := range w {
		w[i] = growFloats(w[i], samples)
	}
	return w
}

// Transient runs a fixed-step trapezoidal transient from 0 to tstop with
// the given number of steps. The DC operating point at t=0 initializes
// state.
func (c *Circuit) Transient(tstop float64, steps int, opt Options) (*Result, error) {
	return c.TransientWith(nil, tstop, steps, opt)
}

// TransientWith is Transient reusing a caller-owned workspace: the solver
// scratch and the returned Result's waveform storage live in ws, so a
// loop of same-shaped solves stops allocating after the first. The
// returned Result aliases ws and is only valid until the next solve on
// the same workspace; pass nil for a one-shot solve.
func (c *Circuit) TransientWith(ws *Workspace, tstop float64, steps int, opt Options) (*Result, error) {
	if ws == nil {
		ws = &Workspace{}
	}
	s := &ws.st
	if err := s.init(c, opt); err != nil {
		return nil, err
	}
	if err := s.newton(); err != nil {
		// Retry via gmin ramp.
		for _, g := range []float64{1e-3, 1e-5, 1e-7, 1e-9, opt.Gmin} {
			s.setGmin(g)
			if err2 := s.newton(); err2 != nil {
				return nil, fmt.Errorf("spice: OP for transient: %w", err2)
			}
		}
		s.setGmin(opt.Gmin)
	}
	dt := tstop / float64(steps)
	res := &ws.res
	res.reset(c, steps)
	record := func(k int) {
		res.Times[k] = s.t
		for i := 0; i < s.n; i++ {
			res.V[i][k] = s.x[i]
		}
		for i := range c.VSources {
			res.IV[i][k] = s.x[s.n+i]
		}
	}
	record(0)
	copy(s.xPrev, s.x)
	// Initialize capacitor currents at 0 (consistent DC).
	zeroFloats(s.iPrev)
	s.setDeltaT(dt)
	for k := 1; k <= steps; k++ {
		s.t = float64(k) * dt
		if err := s.newton(); err != nil {
			return nil, err
		}
		// Update capacitor branch currents for the trapezoidal history:
		// i_new = geq*(v_new - v_prev) - i_prev.
		for ci, cap := range c.Capacitors {
			geq := 2 * cap.C / dt
			vNew := s.v(cap.A) - s.v(cap.B)
			vPrev := s.prevV(cap.A) - s.prevV(cap.B)
			s.iPrev[ci] = geq*(vNew-vPrev) - s.iPrev[ci]
		}
		copy(s.xPrev, s.x)
		record(k)
	}
	return res, nil
}
