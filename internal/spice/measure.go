package spice

import (
	"fmt"
	"math"
)

// Wave extracts one node's waveform from a result.
func (r *Result) Wave(node string) ([]float64, error) {
	if !r.Circuit.HasNode(node) {
		return nil, fmt.Errorf("spice: unknown node %q", node)
	}
	i := r.Circuit.Node(node)
	if i == 0 {
		z := make([]float64, len(r.Times))
		return z, nil
	}
	return r.V[i-1], nil
}

// CrossTime returns the first time after tMin at which the node crosses
// level in the given direction, linearly interpolated.
func (r *Result) CrossTime(node string, level float64, rising bool, tMin float64) (float64, error) {
	w, err := r.Wave(node)
	if err != nil {
		return 0, err
	}
	for k := 1; k < len(w); k++ {
		if r.Times[k] < tMin {
			continue
		}
		a, b := w[k-1], w[k]
		var hit bool
		if rising {
			hit = a < level && b >= level
		} else {
			hit = a > level && b <= level
		}
		if hit {
			f := (level - a) / (b - a)
			return r.Times[k-1] + f*(r.Times[k]-r.Times[k-1]), nil
		}
	}
	dir := "rising"
	if !rising {
		dir = "falling"
	}
	return 0, fmt.Errorf("spice: no %s crossing of %s through %.3f after %.3e", dir, node, level, tMin)
}

// PropDelay measures the propagation delay between the in and out nodes at
// the 50% level: the average of the out-falling (after in-rising) and
// out-rising (after in-falling) delays, the usual FO4 definition.
func (r *Result) PropDelay(in, out string, vdd float64) (float64, error) {
	mid := vdd / 2
	tInRise, err := r.CrossTime(in, mid, true, 0)
	if err != nil {
		return 0, err
	}
	tOutFall, err := r.CrossTime(out, mid, false, tInRise)
	if err != nil {
		return 0, err
	}
	tInFall, err := r.CrossTime(in, mid, false, tInRise)
	if err != nil {
		return 0, err
	}
	tOutRise, err := r.CrossTime(out, mid, true, tInFall)
	if err != nil {
		return 0, err
	}
	return ((tOutFall - tInRise) + (tOutRise - tInFall)) / 2, nil
}

// PropDelayFrom is PropDelay with explicit edge-start bounds: the output
// crossings are searched from each input edge's start (riseStart,
// fallStart — before which the testbench must be static) rather than
// from the input's 50% point, so a lightly loaded gate that overtakes a
// slow input ramp measures a negative delay instead of erroring. NLDM
// tables legitimately carry such entries at the slow-slew/light-load
// corner. Where PropDelay succeeds, both agree exactly.
func (r *Result) PropDelayFrom(in, out string, vdd, riseStart, fallStart float64) (float64, error) {
	mid := vdd / 2
	tInRise, err := r.CrossTime(in, mid, true, riseStart)
	if err != nil {
		return 0, err
	}
	tOutFall, err := r.CrossTime(out, mid, false, riseStart)
	if err != nil {
		return 0, err
	}
	tInFall, err := r.CrossTime(in, mid, false, fallStart)
	if err != nil {
		return 0, err
	}
	tOutRise, err := r.CrossTime(out, mid, true, fallStart)
	if err != nil {
		return 0, err
	}
	return ((tOutFall - tInRise) + (tOutRise - tInFall)) / 2, nil
}

// DelayPair measures the inverting propagation delay between two nodes
// that switch in the same direction (e.g. through two inverting stages).
func (r *Result) DelayPair(in, out string, vdd float64, rising bool) (float64, error) {
	mid := vdd / 2
	tIn, err := r.CrossTime(in, mid, rising, 0)
	if err != nil {
		return 0, err
	}
	tOut, err := r.CrossTime(out, mid, rising, tIn)
	if err != nil {
		return 0, err
	}
	return tOut - tIn, nil
}

// SlewTime measures the node's transition time through one edge after
// tMin: the 20%–80% crossing interval scaled to the full swing (÷0.6),
// the ramp-equivalent transition time NLDM slew axes index (a linear
// 0→vdd ramp of duration T spends 0.6·T between 20% and 80%).
func (r *Result) SlewTime(node string, vdd float64, rising bool, tMin float64) (float64, error) {
	lo, hi := 0.2*vdd, 0.8*vdd
	first, second := hi, lo
	if rising {
		first, second = lo, hi
	}
	t1, err := r.CrossTime(node, first, rising, tMin)
	if err != nil {
		return 0, err
	}
	t2, err := r.CrossTime(node, second, rising, t1)
	if err != nil {
		return 0, err
	}
	return (t2 - t1) / 0.6, nil
}

// SupplyEnergy integrates the energy delivered by voltage source vsrc over
// [t0, t1] (trapezoidal): E = ∫ V·(-I) dt with the MNA branch-current
// convention (positive branch current flows P→N inside the source, so a
// supply delivering power has negative branch current).
func (r *Result) SupplyEnergy(vsrc int, t0, t1 float64) float64 {
	if vsrc < 0 || vsrc >= len(r.IV) {
		return 0
	}
	src := r.Circuit.VSources[vsrc]
	e := 0.0
	for k := 1; k < len(r.Times); k++ {
		ta, tb := r.Times[k-1], r.Times[k]
		if tb <= t0 || ta >= t1 {
			continue
		}
		va, vb := src.W.At(ta), src.W.At(tb)
		pa := va * -r.IV[vsrc][k-1]
		pb := vb * -r.IV[vsrc][k]
		e += (pa + pb) / 2 * (tb - ta)
	}
	return e
}

// Final returns the last value of a node's waveform.
func (r *Result) Final(node string) (float64, error) {
	w, err := r.Wave(node)
	if err != nil {
		return 0, err
	}
	if len(w) == 0 {
		return 0, fmt.Errorf("spice: empty waveform")
	}
	return w[len(w)-1], nil
}

// Settles reports whether the node ends within tol of the target level.
func (r *Result) Settles(node string, target, tol float64) bool {
	v, err := r.Final(node)
	if err != nil {
		return false
	}
	return math.Abs(v-target) <= tol
}
