package spice

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteVCD dumps selected node waveforms as a Value Change Dump file with
// real-valued variables, viewable in standard waveform viewers. nodes
// selects which signals to dump (nil = all non-ground nodes). timescale
// is fixed at 1fs to preserve picosecond-scale edges.
func (r *Result) WriteVCD(w io.Writer, design string, nodes []string) error {
	if nodes == nil {
		for i := 1; i < r.Circuit.NodeCount(); i++ {
			nodes = append(nodes, r.Circuit.NodeName(i))
		}
		sort.Strings(nodes)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "$date\n  (cnfetdk)\n$end\n")
	fmt.Fprintf(&b, "$version\n  cnfetdk spice\n$end\n")
	fmt.Fprintf(&b, "$timescale 1fs $end\n")
	fmt.Fprintf(&b, "$scope module %s $end\n", design)
	ids := map[string]string{}
	waves := map[string][]float64{}
	for i, n := range nodes {
		wave, err := r.Wave(n)
		if err != nil {
			return err
		}
		id := vcdID(i)
		ids[n] = id
		waves[n] = wave
		fmt.Fprintf(&b, "$var real 64 %s %s $end\n", id, sanitizeVCD(n))
	}
	fmt.Fprintf(&b, "$upscope $end\n$enddefinitions $end\n")
	// Dump changes; emit a value only when it moved more than 1mV to keep
	// files compact.
	last := map[string]float64{}
	const tol = 1e-3
	for k, t := range r.Times {
		emitted := false
		header := fmt.Sprintf("#%d\n", int64(t*1e15))
		for _, n := range nodes {
			v := waves[n][k]
			if k == 0 || absF(v-last[n]) > tol {
				if !emitted {
					b.WriteString(header)
					emitted = true
				}
				fmt.Fprintf(&b, "r%.6g %s\n", v, ids[n])
				last[n] = v
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// vcdID yields compact printable identifiers (!, ", #, ...).
func vcdID(i int) string {
	const first, span = 33, 94 // printable ASCII
	if i < span {
		return string(rune(first + i))
	}
	return string(rune(first+i/span)) + string(rune(first+i%span))
}

func sanitizeVCD(n string) string {
	return strings.NewReplacer(" ", "_", "$", "_").Replace(n)
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
