package spice

import (
	"math"
	"testing"

	"cnfetdk/internal/device"
)

// TestFETDerivativeParity pins the analytic fetEval derivatives against
// the central-difference reference over a dense (vgs, vds, polarity)
// grid spanning deep sub-threshold, the logistic transition, saturation,
// and both signs of vds (the source-swap fold). The currents must agree
// exactly (same formula) and every terminal derivative to 1e-9.
func TestFETDerivativeParity(t *testing.T) {
	models := []device.FETParams{
		device.CMOSFET("mn", device.NType, 1),
		device.CMOSFET("mp", device.PType, 1.4),
		device.CNFET("cn", device.NType, 9, device.GateWidthNM, device.DefaultFO4()),
		device.CNFET("cp", device.PType, 9, device.GateWidthNM, device.DefaultFO4()),
	}
	const tol = 1e-9
	points := 0
	for _, p := range models {
		for _, vs := range []float64{0, 0.4} {
			for vg := -1.5; vg <= 1.5+1e-12; vg += 0.05 {
				for vd := -1.2; vd <= 1.2+1e-12; vd += 0.05 {
					id, ag, ad, as := fetEval(p, vg, vd+vs, vs)
					nid, ng, nd, ns := fetEvalNumeric(p, vg, vd+vs, vs)
					if id != nid {
						t.Fatalf("%s: current mismatch at vg=%.2f vd=%.2f vs=%.2f: %g vs %g",
							p.Name, vg, vd+vs, vs, id, nid)
					}
					for _, chk := range []struct {
						name      string
						got, want float64
					}{
						{"dI/dvg", ag, ng}, {"dI/dvd", ad, nd}, {"dI/dvs", as, ns},
					} {
						if math.Abs(chk.got-chk.want) > tol {
							t.Fatalf("%s: %s at vg=%.2f vd=%.2f vs=%.2f: analytic %.12g vs numeric %.12g (|Δ|=%.3g)",
								p.Name, chk.name, vg, vd+vs, vs, chk.got, chk.want, math.Abs(chk.got-chk.want))
						}
					}
					points++
				}
			}
		}
	}
	if points < 10000 {
		t.Fatalf("parity grid too sparse: %d points", points)
	}
}

// TestFETDerivativeSumRule checks the structural identity the Norton
// stamp relies on: dI/dvg + dI/dvd + dI/dvs = 0 (shifting all terminals
// together changes nothing).
func TestFETDerivativeSumRule(t *testing.T) {
	p := device.CMOSFET("mn", device.NType, 1)
	for vg := -1.0; vg <= 1.0; vg += 0.13 {
		for vd := -1.0; vd <= 1.0; vd += 0.17 {
			_, ag, ad, as := fetEval(p, vg, vd, 0.1)
			if s := ag + ad + as; math.Abs(s) > 1e-18 {
				t.Fatalf("terminal derivatives must sum to 0, got %g at vg=%.2f vd=%.2f", s, vg, vd)
			}
		}
	}
}

// TestLUPivotingZeroDiagonal solves a system whose first pivot is 0: only
// a row swap makes it solvable, and perm must record the swap.
func TestLUPivotingZeroDiagonal(t *testing.T) {
	a := []float64{
		0, 1,
		1, 0,
	}
	b := []float64{2, 3}
	perm := make([]int, 2)
	if err := lu(a, b, perm, 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b[0]-3) > 1e-12 || math.Abs(b[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [3 2]", b)
	}
	if perm[0] != 1 {
		t.Fatalf("perm = %v: the zero diagonal must force a pivot swap at step 0", perm)
	}
}

// TestLUNearSingularPivoting checks that partial pivoting keeps a
// badly-scaled system accurate: with a 1e-14 leading entry, eliminating
// without swapping would lose all precision.
func TestLUNearSingularPivoting(t *testing.T) {
	eps := 1e-14
	// [[eps, 1], [1, 1]] x = [1, 2]; exact: x2 = (2eps-1)/(eps-1), x1 = 2-x2.
	a := []float64{
		eps, 1,
		1, 1,
	}
	x2 := (2*eps - 1) / (eps - 1)
	x1 := 2 - x2
	b := []float64{1, 2}
	perm := make([]int, 2)
	if err := lu(a, b, perm, 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b[0]-x1) > 1e-9 || math.Abs(b[1]-x2) > 1e-9 {
		t.Fatalf("x = %v, want [%v %v]", b, x1, x2)
	}
	if perm[0] != 1 {
		t.Fatalf("perm = %v: the tiny pivot must be swapped away", perm)
	}
}

// TestLUThreeByThree solves a dense 3x3 with a known solution.
func TestLUThreeByThree(t *testing.T) {
	// A = [[2,1,1],[4,-6,0],[-2,7,2]], x = [1,2,3] -> b = A·x.
	a := []float64{
		2, 1, 1,
		4, -6, 0,
		-2, 7, 2,
	}
	b := []float64{7, -8, 18}
	perm := make([]int, 3)
	if err := lu(a, b, perm, 3); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(b[i]-want) > 1e-12 {
			t.Fatalf("x = %v, want [1 2 3]", b)
		}
	}
}

// TestLUSingular rejects exactly-singular and NaN-poisoned systems.
func TestLUSingular(t *testing.T) {
	cases := []struct {
		name string
		a    []float64
	}{
		{"zero-column", []float64{
			0, 1,
			0, 1,
		}},
		{"dependent-rows", []float64{
			1, 2,
			2, 4,
		}},
		{"nan", []float64{
			math.NaN(), 1,
			1, 1,
		}},
	}
	for _, tc := range cases {
		b := []float64{1, 1}
		perm := make([]int, 2)
		if err := lu(append([]float64(nil), tc.a...), b, perm, 2); err == nil {
			t.Fatalf("%s: singular system must fail", tc.name)
		}
	}
}

// TestTransientWithReuseMatchesOneShot runs the same transient through a
// reused workspace (after warming it on a different circuit shape) and
// through the one-shot path; the waveforms must be identical.
func TestTransientWithReuseMatchesOneShot(t *testing.T) {
	build := func() *Circuit {
		c := New()
		c.AddV("vdd", "vdd", "0", DC(device.Vdd))
		c.AddV("vin", "n0", "0", Pulse{V0: 0, V1: 1, Delay: 20e-12, Rise: 5e-12, Fall: 5e-12, W: 1, Period: 2})
		addInverter(c, "i1", "n0", "n1", nfet(t), pfet(t))
		addInverter(c, "i2", "n1", "n2", nfet(t), pfet(t))
		c.AddC("cl", "n2", "0", 1e-15)
		return c
	}
	want, err := build().Transient(400e-12, 800, opts())
	if err != nil {
		t.Fatal(err)
	}
	ws := &Workspace{}
	// Warm the workspace on a bigger, different circuit so reuse has to
	// resize and re-zero correctly.
	big := New()
	big.AddV("vdd", "vdd", "0", DC(device.Vdd))
	big.AddV("vin", "n0", "0", Pulse{V0: 0, V1: 1, Rise: 5e-12, Fall: 5e-12, W: 1, Period: 2})
	for i := 0; i < 4; i++ {
		addInverter(big, "b", nodeN(i), nodeN(i+1), nfet(t), pfet(t))
	}
	if _, err := big.TransientWith(ws, 200e-12, 500, opts()); err != nil {
		t.Fatal(err)
	}
	got, err := build().TransientWith(ws, 400e-12, 800, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Times) != len(want.Times) {
		t.Fatalf("sample counts differ: %d vs %d", len(got.Times), len(want.Times))
	}
	for i := range want.V {
		for k := range want.V[i] {
			if got.V[i][k] != want.V[i][k] {
				t.Fatalf("V[%d][%d]: reused workspace %g vs fresh %g", i, k, got.V[i][k], want.V[i][k])
			}
		}
	}
	for i := range want.IV {
		for k := range want.IV[i] {
			if got.IV[i][k] != want.IV[i][k] {
				t.Fatalf("IV[%d][%d]: reused workspace %g vs fresh %g", i, k, got.IV[i][k], want.IV[i][k])
			}
		}
	}
}

// TestTransientResultPreSized verifies Transient sizes the waveforms to
// steps+1 up front instead of growing them by appends.
func TestTransientResultPreSized(t *testing.T) {
	c := New()
	c.AddV("vs", "in", "0", DC(1))
	c.AddR("r", "in", "out", 1e3)
	c.AddC("c", "out", "0", 1e-12)
	res, err := c.Transient(1e-9, 250, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 251 || cap(res.Times) != 251 {
		t.Fatalf("Times len/cap = %d/%d, want exactly steps+1", len(res.Times), cap(res.Times))
	}
	for i := range res.V {
		if len(res.V[i]) != 251 {
			t.Fatalf("V[%d] has %d samples", i, len(res.V[i]))
		}
	}
}
