//go:build !race

package spice

import (
	"testing"

	"cnfetdk/internal/device"
)

// TestTransientSteadyStateZeroAlloc is the allocation-regression guard on
// the solver hot path: once a workspace is warm, a whole transient —
// every Newton iteration, LU factorization and waveform record inside it
// — must allocate nothing. (Skipped under -race: the race runtime adds
// bookkeeping allocations that are not the solver's.)
func TestTransientSteadyStateZeroAlloc(t *testing.T) {
	c := New()
	c.AddV("vdd", "vdd", "0", DC(device.Vdd))
	c.AddV("vin", "n0", "0", Pulse{V0: 0, V1: 1, Delay: 20e-12, Rise: 5e-12, Fall: 5e-12, W: 1, Period: 2})
	addInverter(c, "i1", "n0", "n1", nfet(t), pfet(t))
	addInverter(c, "i2", "n1", "n2", nfet(t), pfet(t))
	c.AddC("cl", "n2", "0", 1e-15)

	ws := &Workspace{}
	run := func() {
		if _, err := c.TransientWith(ws, 200e-12, 400, opts()); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the workspace: scratch and waveforms size themselves once
	if avg := testing.AllocsPerRun(10, run); avg != 0 {
		t.Fatalf("steady-state transient allocates %.1f allocs/op, want 0", avg)
	}
}

// TestTransientSparseSteadyStateZeroAlloc pins the same guarantee on the
// sparse path: the circuit is far below the automatic crossover, so the
// solver is forced sparse, and a warm workspace — plan, factor storage
// and scratch all sized by the first run — must refactorize and solve
// without a single allocation per transient.
func TestTransientSparseSteadyStateZeroAlloc(t *testing.T) {
	c := New()
	c.AddV("vdd", "vdd", "0", DC(device.Vdd))
	c.AddV("vin", "n0", "0", Pulse{V0: 0, V1: 1, Delay: 20e-12, Rise: 5e-12, Fall: 5e-12, W: 1, Period: 2})
	addInverter(c, "i1", "n0", "n1", nfet(t), pfet(t))
	addInverter(c, "i2", "n1", "n2", nfet(t), pfet(t))
	c.AddC("cl", "n2", "0", 1e-15)

	opt := opts()
	opt.Solver = SolverSparse
	ws := &Workspace{}
	run := func() {
		if _, err := c.TransientWith(ws, 200e-12, 400, opt); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: symbolic plan + numeric storage built once
	if avg := testing.AllocsPerRun(10, run); avg != 0 {
		t.Fatalf("sparse steady-state transient allocates %.1f allocs/op, want 0", avg)
	}
}

// TestOPSteadyStateAllocsBounded pins the one-shot OP path: it may
// allocate its workspace but nothing per Newton iteration, so the count
// must not scale with the iteration-heavy solve.
func TestOPSteadyStateAllocsBounded(t *testing.T) {
	c := New()
	c.AddV("vdd", "vdd", "0", DC(device.Vdd))
	c.AddV("vin", "in", "0", DC(0.5))
	addInverter(c, "inv", "in", "out", nfet(t), pfet(t))
	avg := testing.AllocsPerRun(10, func() {
		if _, err := c.OP(opts()); err != nil {
			t.Fatal(err)
		}
	})
	// One workspace: a handful of slice headers and the scratch arrays.
	if avg > 16 {
		t.Fatalf("OP allocates %.1f allocs/op; the Newton loop must not allocate per iteration", avg)
	}
}
