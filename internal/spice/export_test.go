package spice

import (
	"bytes"
	"strings"
	"testing"

	"cnfetdk/internal/device"
)

func TestExportNetlist(t *testing.T) {
	c := New()
	c.AddV("vdd", "vdd", "0", DC(1))
	c.AddV("vin", "in", "0", Pulse{V0: 0, V1: 1, Delay: 1e-10, Rise: 1e-11, Fall: 1e-11, W: 5e-10, Period: 1e-9})
	c.AddR("r1", "in", "mid", 1e3)
	c.AddC("c1", "mid", "0", 1e-15)
	c.AddI("i1", "0", "mid", PWL{T: []float64{0, 1e-9}, V: []float64{0, 1e-6}})
	c.AddFET("mp", "out", "in", "vdd", device.CMOSFET("mp", device.PType, 1.4))
	c.AddFET("mn", "out", "in", "0", device.CMOSFET("mn", device.NType, 1))

	var buf bytes.Buffer
	if err := c.Export(&buf, "inverter testbench"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"* inverter testbench",
		"R0 in mid 1000",
		"V0 vdd 0 DC 1",
		"PULSE(0 1 1e-10 1e-11 1e-11 5e-10 1e-09)",
		"PWL(0 0 1e-09 1e-06)",
		".model",
		"PMOS",
		"NMOS",
		".end",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q\n%s", want, out)
		}
	}
	// The p-device threshold must be negative in the model card.
	if !strings.Contains(out, "vto=-0.35") {
		t.Errorf("PMOS vto should be negative:\n%s", out)
	}
	// FET instances reference drain gate source bulk model.
	if !strings.Contains(out, "M0 out in vdd vdd") {
		t.Errorf("MOS instance line malformed:\n%s", out)
	}
}
