package fault

import (
	"runtime"
	"time"
)

// Goroutines returns the current goroutine count — take it before the
// operation under test for Settle's target.
func Goroutines() int { return runtime.NumGoroutine() }

// Settle polls until the goroutine count drops to at most target (plus
// slack) or the wait expires, returning the final count and whether it
// settled. It is a dependency-free goleak substitute for regression
// tests: snapshot Goroutines(), run the operation, then require the
// count to settle back.
//
// slack absorbs runtime-owned goroutines that appear lazily (netpoll,
// GC workers, http idle-connection reapers); 2 is a good default.
func Settle(target, slack int, wait time.Duration) (int, bool) {
	deadline := time.Now().Add(wait)
	for {
		n := runtime.NumGoroutine()
		if n <= target+slack {
			return n, true
		}
		if time.Now().After(deadline) {
			return n, false
		}
		time.Sleep(5 * time.Millisecond)
	}
}
