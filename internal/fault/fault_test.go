package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var inj *Injector
	if d := inj.Decide("any.point"); d.Fired() {
		t.Fatal("nil injector fired")
	}
	if err := inj.Fault("any.point"); err != nil {
		t.Fatalf("nil injector Fault: %v", err)
	}
	if err := inj.FaultCtx(context.Background(), "any.point"); err != nil {
		t.Fatalf("nil injector FaultCtx: %v", err)
	}
	if ev := inj.Events(); ev != nil {
		t.Fatalf("nil injector events: %v", ev)
	}
	inj.Close() // must not panic
}

func TestNthRuleFiresOnce(t *testing.T) {
	inj := MustNew(Plan{Rules: []Rule{{Point: "p", Nth: 3}}})
	var fired []int
	for n := 1; n <= 6; n++ {
		if inj.Decide("p").Fired() {
			fired = append(fired, n)
		}
	}
	if !reflect.DeepEqual(fired, []int{3}) {
		t.Fatalf("fired at %v, want [3]", fired)
	}
	ev := inj.Events()
	if len(ev) != 1 || ev[0].Point != "p" || ev[0].Call != 3 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestEveryAndCount(t *testing.T) {
	inj := MustNew(Plan{Rules: []Rule{{Point: "p", Every: 2, Count: 2}}})
	var fired []int
	for n := 1; n <= 10; n++ {
		if inj.Decide("p").Fired() {
			fired = append(fired, n)
		}
	}
	if !reflect.DeepEqual(fired, []int{2, 4}) {
		t.Fatalf("fired at %v, want [2 4]", fired)
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		inj := MustNew(Plan{Seed: seed, Rules: []Rule{{Point: "p", P: 0.3}}})
		var fired []int
		for n := 1; n <= 200; n++ {
			if inj.Decide("p").Fired() {
				fired = append(fired, n)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 fired %d/200 times", len(a))
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical schedules")
	}
	// Rough frequency sanity: 0.3 ± a wide margin.
	if len(a) < 30 || len(a) > 90 {
		t.Fatalf("p=0.3 fired %d/200 times, far from expectation", len(a))
	}
}

func TestPrefixRule(t *testing.T) {
	inj := MustNew(Plan{Rules: []Rule{{Point: "store.put.*", Nth: 1}}})
	if inj.Decide("store.get.read").Fired() {
		t.Fatal("prefix rule fired outside its prefix")
	}
	if !inj.Decide("store.put.rename").Fired() {
		t.Fatal("prefix rule did not fire on matching point")
	}
	// Nth=1 consumed by the first matching call across the family.
	if inj.Decide("store.put.write").Fired() {
		t.Fatal("Nth=1 prefix rule fired twice")
	}
}

func TestInjectedErrorIsTyped(t *testing.T) {
	inj := MustNew(Plan{Rules: []Rule{{Point: "p", Error: "boom"}}})
	err := inj.Fault("p")
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if err.Error() != "boom" {
		t.Fatalf("err text = %q", err.Error())
	}
}

func TestPanicAction(t *testing.T) {
	inj := MustNew(Plan{Rules: []Rule{{Point: "p", Action: ActionPanic}}})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_ = inj.Fault("p")
}

func TestHangReleasedByContext(t *testing.T) {
	inj := MustNew(Plan{Rules: []Rule{{Point: "p", Action: ActionHang}}})
	defer inj.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.FaultCtx(ctx, "p")
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("hang returned before context deadline")
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang release err = %v", err)
	}
}

func TestHangReleasedByClose(t *testing.T) {
	inj := MustNew(Plan{Rules: []Rule{{Point: "p", Action: ActionHang}}})
	done := make(chan error, 1)
	go func() { done <- inj.Fault("p") }()
	time.Sleep(5 * time.Millisecond)
	inj.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not release the hang")
	}
}

func TestDelayThenError(t *testing.T) {
	inj := MustNew(Plan{Rules: []Rule{{Point: "p", DelayMS: 15}}})
	start := time.Now()
	err := inj.Fault("p")
	if err == nil || time.Since(start) < 10*time.Millisecond {
		t.Fatalf("want delayed error, got %v after %v", err, time.Since(start))
	}
	// Pure delay: no error.
	inj2 := MustNew(Plan{Rules: []Rule{{Point: "p", Action: ActionDelay, DelayMS: 1}}})
	if err := inj2.Fault("p"); err != nil {
		t.Fatalf("pure delay returned %v", err)
	}
}

func TestPlanValidation(t *testing.T) {
	for _, bad := range []Plan{
		{Rules: []Rule{{Point: ""}}},
		{Rules: []Rule{{Point: "p", Action: "explode"}}},
		{Rules: []Rule{{Point: "p", P: 1.5}}},
		{Rules: []Rule{{Point: "p", Nth: -1}}},
	} {
		if _, err := New(bad); err == nil {
			t.Fatalf("plan %+v validated", bad)
		}
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan([]byte(`{"seed":7,"rules":[{"point":"store.put.write","action":"torn","after":128,"nth":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Rules) != 1 || p.Rules[0].Action != ActionTorn || p.Rules[0].After != 128 {
		t.Fatalf("parsed %+v", p)
	}
	if _, err := ParsePlan([]byte(`{"seed":1,"bogus":true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	catalog := []PointSpec{
		{Point: "store.put.write", Actions: []string{ActionError, ActionTorn}},
		{Point: "fabric.lease.cut", Actions: []string{ActionError}},
		{Point: "flow.stage.delay", Actions: []string{ActionError, ActionPanic, ActionHang}},
	}
	a := Schedule(9, catalog, 6)
	b := Schedule(9, catalog, 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed schedules differ:\n%+v\n%+v", a, b)
	}
	if len(a.Rules) != 6 {
		t.Fatalf("got %d rules", len(a.Rules))
	}
	for _, r := range a.Rules {
		if r.Count < 1 {
			t.Fatalf("rule %+v unbounded", r)
		}
		if _, err := New(Plan{Rules: []Rule{r}}); err != nil {
			t.Fatalf("generated invalid rule %+v: %v", r, err)
		}
		if strings.HasSuffix(r.Point, ".cut") && r.After == 0 {
			t.Fatalf("cut rule without byte budget: %+v", r)
		}
	}
	c := Schedule(10, catalog, 6)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(strings.Repeat("x", 1000)))
	}))
	defer srv.Close()

	t.Run("dispatch", func(t *testing.T) {
		inj := MustNew(Plan{Rules: []Rule{{Point: "fabric.lease.dispatch", Nth: 1}}})
		hc := &http.Client{Transport: &Transport{Inj: inj}}
		if _, err := hc.Get(srv.URL); err == nil || !errors.Is(err, ErrInjected) {
			t.Fatalf("dispatch err = %v", err)
		}
		resp, err := hc.Get(srv.URL) // second call passes
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	})

	t.Run("status", func(t *testing.T) {
		inj := MustNew(Plan{Rules: []Rule{{Point: "fabric.lease.status", Nth: 1}}})
		hc := &http.Client{Transport: &Transport{Inj: inj}}
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	})

	t.Run("cut", func(t *testing.T) {
		inj := MustNew(Plan{Rules: []Rule{{Point: "fabric.lease.cut", Nth: 1, After: 100}}})
		hc := &http.Client{Transport: &Transport{Inj: inj}}
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil || !errors.Is(err, ErrInjected) {
			t.Fatalf("read err = %v", err)
		}
		if len(body) > 100 {
			t.Fatalf("read %d bytes past the cut", len(body))
		}
	})

	t.Run("nil injector passthrough", func(t *testing.T) {
		hc := &http.Client{Transport: &Transport{}}
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if b, _ := io.ReadAll(resp.Body); len(b) != 1000 {
			t.Fatalf("read %d bytes", len(b))
		}
	})
}

// TestDisabledZeroAlloc pins the contract that disabled injection is
// free: no allocations on the nil-injector path nor on an enabled
// injector consulted at an unarmed point.
func TestDisabledZeroAlloc(t *testing.T) {
	var nilInj *Injector
	if n := testing.AllocsPerRun(100, func() {
		if nilInj.Decide("store.put.write").Fired() {
			t.Fatal("fired")
		}
	}); n != 0 {
		t.Fatalf("nil injector allocates %v per call", n)
	}
	inj := MustNew(Plan{Rules: []Rule{{Point: "other.point", Nth: 1}}})
	if n := testing.AllocsPerRun(100, func() {
		if inj.Decide("store.put.write").Fired() {
			t.Fatal("fired")
		}
	}); n != 0 {
		t.Fatalf("unarmed point allocates %v per call", n)
	}
}

func TestSettle(t *testing.T) {
	base := Goroutines()
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() { <-stop }()
	}
	if n, ok := Settle(base, 0, 50*time.Millisecond); ok {
		t.Fatalf("settled at %d with 4 goroutines leaked", n)
	}
	close(stop)
	if n, ok := Settle(base, 2, 2*time.Second); !ok {
		t.Fatalf("did not settle: %d goroutines vs base %d", n, base)
	}
}
