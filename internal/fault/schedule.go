package fault

import (
	"fmt"
	"math/rand"
	"strings"
)

// PointSpec describes one injection point to the schedule generator:
// its name and the actions it supports. Sites that understand torn
// writes or crashes list them; everything supports "error".
type PointSpec struct {
	Point   string
	Actions []string
}

// Schedule generates a reproducible fault plan from a seed: up to n
// rules drawn over the catalog, each with a bounded fire count, a
// randomized trigger (an Nth-call pin or a capped probability) and an
// action legal for its point. Bounded counts are what make chaos runs
// convergent — retries eventually outlast the schedule, so every run
// either completes identically or fails with a typed error instead of
// flapping forever.
func Schedule(seed int64, catalog []PointSpec, n int) Plan {
	rng := rand.New(rand.NewSource(seed))
	plan := Plan{Name: fmt.Sprintf("seed-%d", seed), Seed: seed}
	for i := 0; i < n && len(catalog) > 0; i++ {
		ps := catalog[rng.Intn(len(catalog))]
		actions := ps.Actions
		if len(actions) == 0 {
			actions = []string{ActionError}
		}
		r := Rule{
			Point:  ps.Point,
			Action: actions[rng.Intn(len(actions))],
			Count:  1 + rng.Intn(2),
		}
		if rng.Intn(2) == 0 {
			r.Nth = 1 + rng.Intn(6)
		} else {
			r.P = 0.05 + 0.25*rng.Float64()
		}
		switch r.Action {
		case ActionTorn:
			r.After = int64(rng.Intn(512))
		case ActionDelay, ActionError:
			if rng.Intn(3) == 0 {
				r.DelayMS = 1 + rng.Intn(10)
			}
		}
		if r.Action == ActionHang || r.Action == ActionPanic {
			// Hangs ride the stage watchdog and panics the recovery
			// path — one fire each is plenty, and keeps schedules
			// from starving the retry budget.
			r.Count = 1
		}
		plan.Rules = append(plan.Rules, r)
	}
	// Stream cuts need a byte budget even when picked as "error"-class
	// rules on cut points.
	for i := range plan.Rules {
		if plan.Rules[i].After == 0 && strings.HasSuffix(plan.Rules[i].Point, ".cut") {
			plan.Rules[i].After = int64(rng.Intn(2048))
		}
	}
	return plan
}
