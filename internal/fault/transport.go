package fault

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Transport is an http.RoundTripper that injects transport-layer
// faults around a base transport. It consults three points derived
// from Prefix (default "fabric.lease"):
//
//	<prefix>.dispatch — fail/delay/hang the request before it is sent
//	                    (connection refused, worker timeout)
//	<prefix>.status   — swallow the request and synthesize a 503
//	<prefix>.cut      — cut the response body after Rule.After bytes
//	                    (mid-NDJSON stream loss)
//
// A nil Inj makes Transport a transparent passthrough.
type Transport struct {
	// Base is the wrapped transport (nil selects
	// http.DefaultTransport).
	Base http.RoundTripper
	// Inj decides the faults; nil disables.
	Inj *Injector
	// Prefix namespaces the injection points (default "fabric.lease").
	Prefix string
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.Inj == nil {
		return base.RoundTrip(req)
	}
	prefix := t.Prefix
	if prefix == "" {
		prefix = "fabric.lease"
	}
	if err := t.Inj.FaultCtx(req.Context(), prefix+".dispatch"); err != nil {
		return nil, err
	}
	if d := t.Inj.Decide(prefix + ".status"); d.Fired() {
		if err := d.Apply(req.Context()); err != nil && d.Action != ActionError {
			return nil, err
		}
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": {"text/plain; charset=utf-8"}},
			Body:       io.NopCloser(strings.NewReader("fault: injected 503\n")),
			Request:    req,
		}, nil
	}
	resp, err := base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if d := t.Inj.Decide(prefix + ".cut"); d.Fired() {
		resp.Body = &cutBody{rc: resp.Body, remain: d.After, err: d.Err}
	}
	return resp, nil
}

// cutBody passes through remain bytes then fails every Read,
// simulating a connection dropped mid-stream.
type cutBody struct {
	rc     io.ReadCloser
	remain int64
	err    error
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("fault: stream cut: %w", b.err)
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	return n, err
}

func (b *cutBody) Close() error { return b.rc.Close() }

// CloseIdleConnections forwards to the base transport so callers'
// cleanup (http.Client.CloseIdleConnections) is not silently dropped.
func (t *Transport) CloseIdleConnections() {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if c, ok := base.(interface{ CloseIdleConnections() }); ok {
		c.CloseIdleConnections()
	}
}
