// Package fault is a seeded, rule-based fault-injection framework.
//
// Production code declares named injection points ("store.put.rename",
// "fabric.lease.stream", "flow.stage.delay", ...) by consulting an
// optional *Injector at the point of the operation the fault would
// break. An Injector compiled from a Plan decides, deterministically,
// whether each call fires a fault and what kind: a typed error, a
// panic, a hang released by context or Close, a delay, or a
// site-interpreted action such as a torn write ("torn") or a
// crash-before-publish ("crash").
//
// Determinism is the whole design: every rule keeps a per-rule call
// counter, and probabilistic rules hash (seed, rule, call#) through a
// splitmix64 finalizer, so the same Plan replayed against the same
// call sequence fires the same faults. A fault schedule is therefore a
// reproducible test input, not a flaky accident.
//
// The disabled path is free: every method is a no-op on a nil
// *Injector, so production code threads a nil pointer and pays one
// predicted branch per injection point — no allocation, no map lookup
// (pinned by TestDisabledZeroAlloc and BenchmarkDisabled).
//
// All injected errors wrap ErrInjected, so layers that must distinguish
// infrastructure faults from request-shaped failures (the sweep
// executor, the chaos harness verdicts) can match with errors.Is.
package fault

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected error wraps; match with
// errors.Is to recognize a deliberately injected fault.
var ErrInjected = errors.New("fault: injected")

// The rule actions. Error, Panic, Hang and Delay are interpreted by
// Decision.Apply; Torn and Crash are interpreted by the site (a torn
// write truncates the payload after Rule.After bytes, a crash abandons
// the operation as if the process died before publishing).
const (
	ActionError = "error"
	ActionPanic = "panic"
	ActionHang  = "hang"
	ActionDelay = "delay"
	ActionTorn  = "torn"
	ActionCrash = "crash"
)

var knownActions = map[string]bool{
	ActionError: true, ActionPanic: true, ActionHang: true,
	ActionDelay: true, ActionTorn: true, ActionCrash: true,
}

// Rule arms one injection point (or a "prefix.*" family of points)
// with a fault. Exactly how often it fires is chosen by the trigger
// fields: Nth fires on the Nth matching call only, Every fires on
// every Every-th call, P fires with seeded probability P per call, and
// a rule with no trigger fires on every call. Count caps total fires.
type Rule struct {
	// Point names the injection point. A trailing "*" matches every
	// point with the prefix (e.g. "store.put.*").
	Point string `json:"point"`

	// Nth fires on exactly the Nth matching call (1-based).
	Nth int `json:"nth,omitempty"`
	// Every fires on every Every-th matching call.
	Every int `json:"every,omitempty"`
	// P fires with probability P per call, drawn deterministically
	// from the plan seed, the rule index and the call counter.
	P float64 `json:"p,omitempty"`
	// Count caps the number of fires (0 = unlimited).
	Count int `json:"count,omitempty"`

	// Action selects the fault kind (default "error").
	Action string `json:"action,omitempty"`
	// After is the byte budget before a torn write or stream cut
	// bites (site-interpreted).
	After int64 `json:"after,omitempty"`
	// DelayMS sleeps this long before acting — "delay d then error"
	// with the default action, a pure latency fault with Action
	// "delay".
	DelayMS int `json:"delay_ms,omitempty"`
	// Error overrides the injected error text.
	Error string `json:"error,omitempty"`
}

// Plan is a serializable fault schedule: a seed plus the armed rules.
type Plan struct {
	// Name labels the schedule in logs and verdicts.
	Name string `json:"name,omitempty"`
	// Seed drives every probabilistic trigger in the plan.
	Seed int64 `json:"seed"`
	// Rules arms the injection points.
	Rules []Rule `json:"rules"`
}

// ParsePlan decodes a JSON fault plan.
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("fault: parsing plan: %w", err)
	}
	return p, nil
}

// Error is an injected fault error. It wraps ErrInjected always and,
// for hangs released by a context, the context's error too.
type Error struct {
	// Point is the injection point that fired.
	Point string
	// Cause is the context error that released an injected hang, nil
	// otherwise.
	Cause error

	msg string
}

func (e *Error) Error() string { return e.msg }

// Unwrap exposes ErrInjected (and the releasing context error for
// hangs) to errors.Is.
func (e *Error) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrInjected, e.Cause}
	}
	return []error{ErrInjected}
}

// Event records one fired fault for verdict logs and tests.
type Event struct {
	Point  string `json:"point"`
	Action string `json:"action"`
	Rule   int    `json:"rule"`
	Call   int64  `json:"call"`
}

type compiledRule struct {
	Rule
	index int
	calls atomic.Int64
	fired atomic.Int64
}

// fires reports whether call n (1-based) of this rule triggers.
func (r *compiledRule) fires(seed, n int64) bool {
	switch {
	case r.Nth > 0:
		return n == int64(r.Nth)
	case r.Every > 0:
		return n%int64(r.Every) == 0
	case r.P > 0:
		return chance(seed, r.index, n) < r.P
	default:
		return true
	}
}

// chance maps (seed, rule, call) to a uniform float in [0,1) through a
// splitmix64 finalizer, so probabilistic rules are replayable.
func chance(seed int64, rule int, n int64) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(rule)<<32 + uint64(n)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Injector decides faults for a compiled Plan. The zero value of the
// pointer — nil — is the disabled injector: every method is a no-op.
type Injector struct {
	seed     int64
	exact    map[string][]*compiledRule
	prefixes []*compiledRule
	done     chan struct{}
	closed   sync.Once

	mu     sync.Mutex
	events []Event
}

// maxEvents bounds the fired-event log.
const maxEvents = 4096

// New compiles a Plan into an Injector, validating every rule.
func New(plan Plan) (*Injector, error) {
	inj := &Injector{
		seed:  plan.Seed,
		exact: make(map[string][]*compiledRule),
		done:  make(chan struct{}),
	}
	for i, r := range plan.Rules {
		if r.Point == "" {
			return nil, fmt.Errorf("fault: rule %d: empty point", i)
		}
		if r.Action == "" {
			r.Action = ActionError
		}
		if !knownActions[r.Action] {
			return nil, fmt.Errorf("fault: rule %d: unknown action %q", i, r.Action)
		}
		if r.P < 0 || r.P > 1 {
			return nil, fmt.Errorf("fault: rule %d: probability %v outside [0,1]", i, r.P)
		}
		if r.Nth < 0 || r.Every < 0 || r.Count < 0 || r.After < 0 || r.DelayMS < 0 {
			return nil, fmt.Errorf("fault: rule %d: negative trigger field", i)
		}
		cr := &compiledRule{Rule: r, index: i}
		if strings.HasSuffix(r.Point, "*") {
			cr.Point = strings.TrimSuffix(r.Point, "*")
			inj.prefixes = append(inj.prefixes, cr)
		} else {
			inj.exact[r.Point] = append(inj.exact[r.Point], cr)
		}
	}
	return inj, nil
}

// MustNew is New for tests and hand-written schedules; it panics on an
// invalid plan.
func MustNew(plan Plan) *Injector {
	inj, err := New(plan)
	if err != nil {
		panic(err)
	}
	return inj
}

// Decision is the outcome of consulting one injection point. The zero
// Decision means "proceed normally"; Fired reports a fault. Sites that
// understand torn writes or crashes branch on Action; everything else
// calls Apply.
type Decision struct {
	// Point is the consulted injection point.
	Point string
	// Action is the fired rule's action ("" when not fired).
	Action string
	// Err is the injected error (nil when not fired). It wraps
	// ErrInjected.
	Err error
	// After is the fired rule's byte budget (torn writes, stream
	// cuts).
	After int64
	// Delay is the fired rule's pre-action sleep.
	Delay time.Duration

	done <-chan struct{}
}

// Fired reports whether the point fired a fault.
func (d Decision) Fired() bool { return d.Err != nil }

// Decide consults an injection point and returns the fired Decision,
// or the zero Decision when no rule fires. Nil injectors never fire.
func (i *Injector) Decide(point string) Decision {
	if i == nil {
		return Decision{}
	}
	if d, ok := i.decide(point, i.exact[point]); ok {
		return d
	}
	for _, r := range i.prefixes {
		if strings.HasPrefix(point, r.Point) {
			if d, ok := i.decide(point, []*compiledRule{r}); ok {
				return d
			}
		}
	}
	return Decision{}
}

func (i *Injector) decide(point string, rules []*compiledRule) (Decision, bool) {
	for _, r := range rules {
		n := r.calls.Add(1)
		if !r.fires(i.seed, n) {
			continue
		}
		if r.Count > 0 && r.fired.Add(1) > int64(r.Count) {
			continue
		}
		i.record(Event{Point: point, Action: r.Action, Rule: r.index, Call: n})
		msg := r.Error
		if msg == "" {
			msg = fmt.Sprintf("fault: injected %s at %s (call %d)", r.Action, point, n)
		}
		return Decision{
			Point:  point,
			Action: r.Action,
			Err:    &Error{Point: point, msg: msg},
			After:  r.After,
			Delay:  time.Duration(r.DelayMS) * time.Millisecond,
			done:   i.done,
		}, true
	}
	return Decision{}, false
}

func (i *Injector) record(ev Event) {
	i.mu.Lock()
	if len(i.events) < maxEvents {
		i.events = append(i.events, ev)
	}
	i.mu.Unlock()
}

// Events returns a copy of the fired-fault log (capped at maxEvents).
func (i *Injector) Events() []Event {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Event(nil), i.events...)
}

// Close releases every injected hang still blocking. Safe to call
// more than once, and a no-op on nil.
func (i *Injector) Close() {
	if i == nil {
		return
	}
	i.closed.Do(func() { close(i.done) })
}

// Apply interprets the generic actions: delay sleeps, error returns
// the injected error after the rule delay, panic panics, and hang
// blocks until ctx is done or the injector closes. Torn and crash —
// the site-interpreted actions — return the injected error so a site
// that doesn't special-case them still fails loudly instead of
// silently corrupting.
func (d Decision) Apply(ctx context.Context) error {
	if d.Err == nil {
		return nil
	}
	if d.Delay > 0 {
		t := time.NewTimer(d.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return &Error{Point: d.Point, Cause: ctx.Err(),
				msg: fmt.Sprintf("fault: injected delay at %s interrupted: %v", d.Point, ctx.Err())}
		}
	}
	switch d.Action {
	case ActionDelay:
		return nil
	case ActionPanic:
		panic(fmt.Sprintf("fault: injected panic at %s", d.Point))
	case ActionHang:
		select {
		case <-ctx.Done():
			return &Error{Point: d.Point, Cause: ctx.Err(),
				msg: fmt.Sprintf("fault: injected hang at %s released: %v", d.Point, ctx.Err())}
		case <-d.done:
			return d.Err
		}
	default:
		return d.Err
	}
}

// FaultCtx is the one-line injection point: Decide then Apply under
// ctx. It returns nil on the (overwhelmingly common) no-fault path.
func (i *Injector) FaultCtx(ctx context.Context, point string) error {
	if i == nil {
		return nil
	}
	d := i.Decide(point)
	if d.Err == nil {
		return nil
	}
	return d.Apply(ctx)
}

// Fault is FaultCtx without a context: hangs block until Close.
func (i *Injector) Fault(point string) error {
	return i.FaultCtx(context.Background(), point)
}
