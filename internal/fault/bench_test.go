package fault

import "testing"

// BenchmarkDisabledNil measures the cost of an injection point when
// fault injection is off entirely (nil injector) — the price every
// production call path pays. Expected: sub-nanosecond, 0 allocs.
func BenchmarkDisabledNil(b *testing.B) {
	var inj *Injector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if inj.Decide("store.put.write").Fired() {
			b.Fatal("fired")
		}
	}
}

// BenchmarkDisabledUnarmed measures an enabled injector consulted at a
// point no rule arms — the price paid while a schedule targets other
// points. Expected: one map lookup, 0 allocs.
func BenchmarkDisabledUnarmed(b *testing.B) {
	inj := MustNew(Plan{Rules: []Rule{{Point: "other.point", Nth: 1}}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if inj.Decide("store.put.write").Fired() {
			b.Fatal("fired")
		}
	}
}

// BenchmarkArmedNotFiring measures an armed point whose rule does not
// trigger this call (an Nth pin far in the future).
func BenchmarkArmedNotFiring(b *testing.B) {
	inj := MustNew(Plan{Rules: []Rule{{Point: "p", Nth: 1 << 60}}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if inj.Decide("p").Fired() {
			b.Fatal("fired")
		}
	}
}
