package place

import (
	"sort"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/synth"
)

// Mixed implements the paper's concluding suggestion — "a combination of
// scheme-1 and scheme-2 would lead to optimized layouts": each cell is
// assembled in whichever scheme has the smaller footprint, then everything
// is shelf-packed at natural heights. Tall high-drive cells prefer the
// side-by-side scheme 2; small cells often prefer the narrow scheme 1.
func Mixed(lib *cells.Library, nl *synth.Netlist, targetW geom.Coord) (*Placement, error) {
	var pcs []PlacedCell
	natural := 0.0
	area := 0.0
	for _, inst := range nl.Instances {
		c, err := lib.Get(inst.Cell)
		if err != nil {
			return nil, err
		}
		a1 := c.Layout.Assemble(layout.Scheme1)
		a2 := c.Layout.Assemble(layout.Scheme2)
		best := a1
		if a2.Area() < a1.Area() {
			best = a2
		}
		pc := PlacedCell{Inst: inst, Cell: c, W: best.Width, H: best.Height}
		pcs = append(pcs, pc)
		aa := geom.R(0, 0, pc.W, pc.H).AreaLambda2()
		natural += aa
		area += aa
	}
	if targetW <= 0 {
		targetW = geom.Coord(sqrtF(area) * float64(geom.QuarterLambda))
	}
	order := make([]int, len(pcs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if pcs[order[a]].H != pcs[order[b]].H {
			return pcs[order[a]].H > pcs[order[b]].H
		}
		return pcs[order[a]].W > pcs[order[b]].W
	})
	var shelfY, shelfH, x, maxW geom.Coord
	for _, i := range order {
		if x > 0 && x+pcs[i].W > targetW {
			shelfY += shelfH
			x, shelfH = 0, 0
		}
		if pcs[i].H > shelfH {
			shelfH = pcs[i].H
		}
		pcs[i].X, pcs[i].Y = x, shelfY
		x += pcs[i].W
		if x > maxW {
			maxW = x
		}
	}
	return &Placement{
		Name: nl.Name, Scheme: layout.Scheme2, Cells: pcs,
		Width: maxW, Height: shelfY + shelfH,
		NaturalArea: natural,
	}, nil
}

func sqrtF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
