// Package place implements the back half of the flow: standard-cell
// placement in the three arrangements the paper compares in case study 2
// (Fig 8) — CMOS rows, CNFET scheme-1 rows (cells normalized to a common
// height), and CNFET scheme-2 packing (un-normalized cell heights packed
// on shelves, the layout freedom the paper argues needs new P&R tools).
package place

import (
	"fmt"
	"math"
	"sort"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/synth"
)

// PlacedCell is one cell instance with its location and footprint.
type PlacedCell struct {
	Inst synth.Instance
	Cell *cells.Cell
	X, Y geom.Coord
	W, H geom.Coord
}

// Center returns the cell's center point.
func (p PlacedCell) Center() geom.Point {
	return geom.Pt(p.X+p.W/2, p.Y+p.H/2)
}

// Placement is a placed design.
type Placement struct {
	Name   string
	Scheme layout.Scheme
	Cells  []PlacedCell
	Width  geom.Coord
	Height geom.Coord
	// NaturalArea is the sum of un-normalized cell areas in λ² (the
	// numerator of the area-utilization factor).
	NaturalArea float64
}

// Area returns the placement bounding-box area in λ².
func (p *Placement) Area() float64 {
	return geom.R(0, 0, p.Width, p.Height).AreaLambda2()
}

// Utilization is the paper's area-utilization factor: natural cell area
// over placement area.
func (p *Placement) Utilization() float64 {
	a := p.Area()
	if a == 0 {
		return 0
	}
	return p.NaturalArea / a
}

// HPWL returns per-net half-perimeter wirelength in λ, using cell centers
// as pin proxies; primary I/O contribute no span.
func (p *Placement) HPWL(nl *synth.Netlist) map[string]float64 {
	type bbox struct {
		x0, y0, x1, y1 geom.Coord
		any            bool
	}
	boxes := map[string]*bbox{}
	touch := func(net string, pt geom.Point) {
		b, ok := boxes[net]
		if !ok {
			b = &bbox{}
			boxes[net] = b
		}
		if !b.any {
			b.x0, b.y0, b.x1, b.y1 = pt.X, pt.Y, pt.X, pt.Y
			b.any = true
			return
		}
		if pt.X < b.x0 {
			b.x0 = pt.X
		}
		if pt.X > b.x1 {
			b.x1 = pt.X
		}
		if pt.Y < b.y0 {
			b.y0 = pt.Y
		}
		if pt.Y > b.y1 {
			b.y1 = pt.Y
		}
	}
	for _, pc := range p.Cells {
		for _, net := range pc.Inst.Conns {
			touch(net, pc.Center())
		}
	}
	out := map[string]float64{}
	for net, b := range boxes {
		out[net] = (b.x1 - b.x0).Lambdas() + (b.y1 - b.y0).Lambdas()
	}
	return out
}

// gather resolves netlist instances against the library and computes their
// footprints for the given scheme (natural heights).
func gather(lib *cells.Library, nl *synth.Netlist, scheme layout.Scheme) ([]PlacedCell, error) {
	var out []PlacedCell
	for _, inst := range nl.Instances {
		c, err := lib.Get(inst.Cell)
		if err != nil {
			return nil, fmt.Errorf("place: instance %s: %w", inst.Name, err)
		}
		a := c.Layout.Assemble(scheme)
		out = append(out, PlacedCell{
			Inst: inst, Cell: c, W: a.Width, H: a.Height,
		})
	}
	return out, nil
}

// Rows places cells in normalized-height rows (CMOS and CNFET scheme 1,
// Fig 8b): every cell is stretched to the tallest cell's height, rows are
// filled greedily to balance width. rows <= 0 picks a near-square count.
func Rows(lib *cells.Library, nl *synth.Netlist, rows int) (*Placement, error) {
	pcs, err := gather(lib, nl, layout.Scheme1)
	if err != nil {
		return nil, err
	}
	rowH := geom.Coord(0)
	totalW := geom.Coord(0)
	natural := 0.0
	for i := range pcs {
		if pcs[i].H > rowH {
			rowH = pcs[i].H
		}
		totalW += pcs[i].W
		natural += geom.R(0, 0, pcs[i].W, pcs[i].H).AreaLambda2()
	}
	if rows <= 0 {
		rows = int(math.Round(math.Sqrt(float64(totalW) / float64(rowH))))
		if rows < 1 {
			rows = 1
		}
	}
	// Standardize heights: re-assemble at the row height.
	for i := range pcs {
		a := pcs[i].Cell.Layout.AssembleToHeight(layout.Scheme1, rowH)
		pcs[i].W, pcs[i].H = a.Width, rowH
		_ = a
	}
	// Greedy longest-first row balancing.
	order := make([]int, len(pcs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pcs[order[a]].W > pcs[order[b]].W })
	rowW := make([]geom.Coord, rows)
	rowOf := make([]int, len(pcs))
	for _, i := range order {
		best := 0
		for r := 1; r < rows; r++ {
			if rowW[r] < rowW[best] {
				best = r
			}
		}
		rowOf[i] = best
		rowW[best] += pcs[i].W
	}
	cursor := make([]geom.Coord, rows)
	maxW := geom.Coord(0)
	for i := range pcs {
		r := rowOf[i]
		pcs[i].X = cursor[r]
		pcs[i].Y = geom.Coord(r) * rowH
		cursor[r] += pcs[i].W
		if cursor[r] > maxW {
			maxW = cursor[r]
		}
	}
	return &Placement{
		Name: nl.Name, Scheme: layout.Scheme1, Cells: pcs,
		Width: maxW, Height: geom.Coord(rows) * rowH,
		NaturalArea: natural,
	}, nil
}

// Shelves places scheme-2 cells with their natural heights using the
// next-fit-decreasing-height shelf heuristic (Fig 8c): cells sorted by
// height fill shelves of the target width; each shelf is as tall as its
// tallest occupant only.
func Shelves(lib *cells.Library, nl *synth.Netlist, targetW geom.Coord) (*Placement, error) {
	pcs, err := gather(lib, nl, layout.Scheme2)
	if err != nil {
		return nil, err
	}
	natural := 0.0
	area := 0.0
	for i := range pcs {
		a := geom.R(0, 0, pcs[i].W, pcs[i].H).AreaLambda2()
		natural += a
		area += a
	}
	if targetW <= 0 {
		targetW = geom.Coord(math.Round(math.Sqrt(area))) * geom.QuarterLambda
		// targetW is in quarter-lambda Coords already; the sqrt above is
		// in λ so convert: area λ² -> width λ.
		targetW = geom.Coord(math.Round(math.Sqrt(area) * float64(geom.QuarterLambda)))
	}
	order := make([]int, len(pcs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if pcs[order[a]].H != pcs[order[b]].H {
			return pcs[order[a]].H > pcs[order[b]].H
		}
		return pcs[order[a]].W > pcs[order[b]].W
	})
	var (
		shelfY, shelfH, x geom.Coord
		maxW              geom.Coord
	)
	for _, i := range order {
		if x > 0 && x+pcs[i].W > targetW {
			shelfY += shelfH
			x, shelfH = 0, 0
		}
		if pcs[i].H > shelfH {
			shelfH = pcs[i].H
		}
		pcs[i].X, pcs[i].Y = x, shelfY
		x += pcs[i].W
		if x > maxW {
			maxW = x
		}
	}
	return &Placement{
		Name: nl.Name, Scheme: layout.Scheme2, Cells: pcs,
		Width: maxW, Height: shelfY + shelfH,
		NaturalArea: natural,
	}, nil
}
