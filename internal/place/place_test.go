package place

import (
	"testing"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/synth"
)

func libs(t *testing.T) (*cells.Library, *cells.Library) {
	t.Helper()
	cn, err := cells.NewLibrary(rules.CNFET)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := cells.NewLibrary(rules.CMOS)
	if err != nil {
		t.Fatal(err)
	}
	return cn, cm
}

func TestRowsPlacesAllCells(t *testing.T) {
	cn, _ := libs(t)
	fa := synth.FullAdder()
	p, err := Rows(cn, fa, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) != len(fa.Instances) {
		t.Fatalf("placed %d of %d cells", len(p.Cells), len(fa.Instances))
	}
	// No overlaps: pairwise rectangle check.
	for i := range p.Cells {
		for j := i + 1; j < len(p.Cells); j++ {
			a, b := p.Cells[i], p.Cells[j]
			if a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H {
				t.Fatalf("cells %s and %s overlap", a.Inst.Name, b.Inst.Name)
			}
		}
	}
	// All cells inside the bounding box.
	for _, c := range p.Cells {
		if c.X+c.W > p.Width || c.Y+c.H > p.Height {
			t.Fatalf("cell %s outside placement", c.Inst.Name)
		}
	}
}

func TestRowsNormalizedHeights(t *testing.T) {
	cn, _ := libs(t)
	fa := synth.FullAdder()
	p, err := Rows(cn, fa, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := p.Cells[0].H
	for _, c := range p.Cells {
		if c.H != h {
			t.Fatalf("scheme-1 heights not normalized: %v vs %v", c.H, h)
		}
	}
	// The paper's intuition: INV_4X and INV_9X occupy the same height
	// after standardization, wasting area — utilization < 1.
	if p.Utilization() >= 0.999 {
		t.Fatalf("scheme-1 utilization = %.3f, expected normalization waste", p.Utilization())
	}
}

func TestShelvesPacking(t *testing.T) {
	cn, _ := libs(t)
	fa := synth.FullAdder()
	p, err := Shelves(cn, fa, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) != len(fa.Instances) {
		t.Fatal("missing cells")
	}
	for i := range p.Cells {
		for j := i + 1; j < len(p.Cells); j++ {
			a, b := p.Cells[i], p.Cells[j]
			if a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H {
				t.Fatalf("cells %s and %s overlap", a.Inst.Name, b.Inst.Name)
			}
		}
	}
	// Scheme 2 keeps natural heights: better utilization than scheme 1.
	p1, err := Rows(cn, fa, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Utilization() <= p1.Utilization() {
		t.Fatalf("scheme2 utilization %.3f should beat scheme1 %.3f",
			p.Utilization(), p1.Utilization())
	}
}

func TestCaseStudy2AreaGains(t *testing.T) {
	// Fig 8 / conclusions: scheme 1 ≈ 1.4x and scheme 2 ≈ 1.6x area gain
	// over the CMOS placement of the same full adder.
	cn, cm := libs(t)
	fa := synth.FullAdder()
	pCMOS, err := Rows(cm, fa, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Rows(cn, fa, 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Shelves(cn, fa, 0)
	if err != nil {
		t.Fatal(err)
	}
	g1 := pCMOS.Area() / p1.Area()
	g2 := pCMOS.Area() / p2.Area()
	t.Logf("area gains: scheme1 %.2fx scheme2 %.2fx (paper: ~1.4x / ~1.6x)", g1, g2)
	if g1 < 1.2 || g1 > 1.7 {
		t.Fatalf("scheme-1 area gain = %.2f, want ~1.4", g1)
	}
	if g2 <= g1 {
		t.Fatalf("scheme-2 gain %.2f should exceed scheme-1 %.2f", g2, g1)
	}
	if g2 < 1.4 || g2 > 2.1 {
		t.Fatalf("scheme-2 area gain = %.2f, want ~1.6", g2)
	}
}

func TestHPWL(t *testing.T) {
	cn, _ := libs(t)
	fa := synth.FullAdder()
	p, err := Rows(cn, fa, 2)
	if err != nil {
		t.Fatal(err)
	}
	wl := p.HPWL(fa)
	if len(wl) == 0 {
		t.Fatal("no wirelengths")
	}
	// A multi-pin net must have positive length.
	if wl["n1"] <= 0 {
		t.Fatalf("HPWL(n1) = %v", wl["n1"])
	}
}

func TestRowsAutoCount(t *testing.T) {
	cn, _ := libs(t)
	fa := synth.FullAdder()
	p, err := Rows(cn, fa, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Height <= 0 || p.Width <= 0 {
		t.Fatal("degenerate placement")
	}
}

func TestUnknownCellFails(t *testing.T) {
	cn, _ := libs(t)
	nl := &synth.Netlist{
		Name:      "bad",
		Instances: []synth.Instance{{Name: "u1", Cell: "XOR9_1X", Conns: map[string]string{}}},
	}
	if _, err := Rows(cn, nl, 1); err == nil {
		t.Fatal("unknown cell should fail placement")
	}
}

func TestMixedPlacementBeatsOrMatchesPureSchemes(t *testing.T) {
	cn, _ := libs(t)
	fa := synth.FullAdder()
	p1, err := Rows(cn, fa, 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Shelves(cn, fa, 0)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := Mixed(cn, fa, 0)
	if err != nil {
		t.Fatal(err)
	}
	best := p1.Area()
	if p2.Area() < best {
		best = p2.Area()
	}
	// The per-cell best-of-both footprint packed on shelves should be at
	// least competitive with the better pure scheme (small slack for
	// packing noise).
	if pm.Area() > best*1.10 {
		t.Fatalf("mixed %.0f vs best pure %.0f", pm.Area(), best)
	}
	t.Logf("areas: scheme1 %.0f, scheme2 %.0f, mixed %.0f λ²", p1.Area(), p2.Area(), pm.Area())
	// No overlaps.
	for i := range pm.Cells {
		for j := i + 1; j < len(pm.Cells); j++ {
			a, b := pm.Cells[i], pm.Cells[j]
			if a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H {
				t.Fatalf("mixed cells overlap: %s %s", a.Inst.Name, b.Inst.Name)
			}
		}
	}
}
