// Package euler finds Euler trails through transistor-network multigraphs.
//
// This is the core of the paper's compact misaligned-CNT-immune layout
// technique (Section III): metal contacts are graph nodes, gates are edges,
// and a layout row is obtained by walking an Euler trail, inserting
// redundant metal contacts wherever the trail revisits a net. Networks
// whose multigraph has more than two odd-degree nodes decompose into
// several trails (each becoming a row segment separated by an etched cut).
package euler

import (
	"fmt"
	"sort"

	"cnfetdk/internal/network"
)

// Edge is one transistor in the multigraph.
type Edge struct {
	ID    int
	Label string // controlling input name
	Neg   bool
	Width float64 // unit-width multiple
	U, V  string  // endpoints (net names)
}

// Multigraph is an undirected multigraph over net-name nodes.
type Multigraph struct {
	Edges []Edge
	adj   map[string][]int // node -> incident edge IDs
}

// New returns an empty multigraph.
func New() *Multigraph {
	return &Multigraph{adj: map[string][]int{}}
}

// AddEdge inserts a transistor edge between nets u and v.
func (g *Multigraph) AddEdge(u, v, label string, neg bool, width float64) int {
	id := len(g.Edges)
	g.Edges = append(g.Edges, Edge{ID: id, Label: label, Neg: neg, Width: width, U: u, V: v})
	g.adj[u] = append(g.adj[u], id)
	g.adj[v] = append(g.adj[v], id)
	return id
}

// FromNetwork builds the multigraph of a flattened transistor network.
func FromNetwork(nw *network.Network) *Multigraph {
	g := New()
	for _, d := range nw.Devices {
		g.AddEdge(d.From, d.To, d.Gate, d.Neg, d.Width)
	}
	return g
}

// Degree returns the number of edge endpoints at node n.
func (g *Multigraph) Degree(n string) int { return len(g.adj[n]) }

// Nodes returns all node names, sorted.
func (g *Multigraph) Nodes() []string {
	out := make([]string, 0, len(g.adj))
	for n := range g.adj {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// OddNodes returns the odd-degree nodes, sorted.
func (g *Multigraph) OddNodes() []string {
	var out []string
	for _, n := range g.Nodes() {
		if g.Degree(n)%2 == 1 {
			out = append(out, n)
		}
	}
	return out
}

// Trail is a walk through the multigraph: Nodes[i] -Edges[i]- Nodes[i+1].
type Trail struct {
	Nodes []string
	Edges []int // edge IDs into the parent multigraph
}

// Len returns the number of edges in the trail.
func (t Trail) Len() int { return len(t.Edges) }

// connectedComponents groups nodes with at least one incident edge.
func (g *Multigraph) components() [][]string {
	seen := map[string]bool{}
	var comps [][]string
	for _, start := range g.Nodes() {
		if seen[start] || g.Degree(start) == 0 {
			continue
		}
		var comp []string
		stack := []string{start}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for _, eid := range g.adj[n] {
				e := g.Edges[eid]
				for _, m := range []string{e.U, e.V} {
					if !seen[m] {
						seen[m] = true
						stack = append(stack, m)
					}
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Trails decomposes the multigraph into a minimal set of edge-disjoint
// trails covering every edge. Components with zero or two odd-degree nodes
// produce one trail; a component with 2k odd nodes (k > 1) produces k
// trails (the theoretical minimum, achieved by pairing surplus odd nodes
// with virtual edges, walking one Euler trail, and splitting it at the
// virtual edges). preferStart biases which node begins a trail when there
// is a choice (e.g. "VDD" so supply contacts land at row ends). The walk
// is deterministic: at each node the lowest (label, id) unused edge is
// taken, which tends to keep gate order aligned between the PUN and PDN
// rows of a cell.
func (g *Multigraph) Trails(preferStart string) []Trail {
	var trails []Trail
	for _, comp := range g.components() {
		trails = append(trails, g.componentTrails(comp, preferStart)...)
	}
	return trails
}

// walkEdge is an edge of the temporary per-component walk graph. origID is
// the edge ID in the parent multigraph, or -1 for a virtual pairing edge.
type walkEdge struct {
	origID int
	label  string
	u, v   string
}

func (g *Multigraph) componentTrails(comp []string, preferStart string) []Trail {
	inComp := map[string]bool{}
	for _, n := range comp {
		inComp[n] = true
	}
	var edges []walkEdge
	for _, e := range g.Edges {
		if inComp[e.U] {
			edges = append(edges, walkEdge{origID: e.ID, label: e.Label, u: e.U, v: e.V})
		}
	}
	var odd []string
	for _, n := range comp {
		if g.Degree(n)%2 == 1 {
			odd = append(odd, n)
		}
	}
	// Choose the walk's start and (if the trail is open) make sure
	// preferStart is an endpoint when it is odd.
	start := comp[0]
	for _, n := range comp {
		if n == preferStart {
			start = n
		}
	}
	if len(odd) > 0 {
		start = odd[0]
		for i, n := range odd {
			if n == preferStart {
				odd[0], odd[i] = odd[i], odd[0]
				start = n
				break
			}
		}
		// Pair interior odd nodes with virtual edges so exactly two odd
		// nodes remain (odd[0] and odd[len-1]) and an Euler trail exists.
		for i := 1; i+1 < len(odd); i += 2 {
			edges = append(edges, walkEdge{origID: -1, label: "\xff", u: odd[i], v: odd[i+1]})
		}
	}
	nodes, ids := eulerWalk(edges, start)
	// Split the single walk at virtual edges into real trails.
	var trails []Trail
	cur := Trail{Nodes: []string{nodes[0]}}
	for i, id := range ids {
		if id < 0 {
			if cur.Len() > 0 {
				trails = append(trails, cur)
			}
			cur = Trail{Nodes: []string{nodes[i+1]}}
			continue
		}
		cur.Edges = append(cur.Edges, id)
		cur.Nodes = append(cur.Nodes, nodes[i+1])
	}
	if cur.Len() > 0 {
		trails = append(trails, cur)
	}
	return trails
}

// eulerWalk runs stack-based Hierholzer over a graph that is guaranteed to
// possess an Euler trail from start (connected, zero or two odd-degree
// nodes with start odd when two exist). It returns the full node sequence
// and the parallel edge-ID sequence (virtual edges as -1).
func eulerWalk(edges []walkEdge, start string) ([]string, []int) {
	adj := map[string][]int{}
	for i, e := range edges {
		adj[e.u] = append(adj[e.u], i)
		adj[e.v] = append(adj[e.v], i)
	}
	for n := range adj {
		ids := adj[n]
		sort.Slice(ids, func(a, b int) bool {
			ea, eb := edges[ids[a]], edges[ids[b]]
			if ea.label != eb.label {
				return ea.label < eb.label
			}
			return ids[a] < ids[b]
		})
	}
	used := make([]bool, len(edges))
	nextUnused := func(n string) int {
		for _, i := range adj[n] {
			if !used[i] {
				return i
			}
		}
		return -1
	}
	type frame struct {
		node string
		edge int // index into edges taken to reach node; -1 for start
	}
	stack := []frame{{node: start, edge: -1}}
	var revNodes []string
	var revEdges []int
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		i := nextUnused(cur.node)
		if i == -1 {
			stack = stack[:len(stack)-1]
			revNodes = append(revNodes, cur.node)
			if cur.edge >= 0 {
				revEdges = append(revEdges, cur.edge)
			}
			continue
		}
		used[i] = true
		e := edges[i]
		next := e.v
		if cur.node == e.v {
			next = e.u
		}
		stack = append(stack, frame{node: next, edge: i})
	}
	nodes := make([]string, len(revNodes))
	ids := make([]int, len(revEdges))
	for i, n := range revNodes {
		nodes[len(revNodes)-1-i] = n
	}
	for i, e := range revEdges {
		ids[len(revEdges)-1-i] = edges[e].origID
	}
	return nodes, ids
}

// Validate checks that the trails exactly cover the multigraph: every edge
// appears exactly once across all trails and consecutive steps share the
// claimed nodes.
func Validate(g *Multigraph, trails []Trail) error {
	seen := make([]bool, len(g.Edges))
	total := 0
	for ti, t := range trails {
		if len(t.Nodes) != len(t.Edges)+1 {
			return fmt.Errorf("trail %d: %d nodes vs %d edges", ti, len(t.Nodes), len(t.Edges))
		}
		for i, eid := range t.Edges {
			if eid < 0 || eid >= len(g.Edges) {
				return fmt.Errorf("trail %d: bad edge id %d", ti, eid)
			}
			if seen[eid] {
				return fmt.Errorf("trail %d: edge %d used twice", ti, eid)
			}
			seen[eid] = true
			total++
			e := g.Edges[eid]
			a, b := t.Nodes[i], t.Nodes[i+1]
			if !(a == e.U && b == e.V) && !(a == e.V && b == e.U) {
				return fmt.Errorf("trail %d step %d: edge %d does not join %s-%s", ti, i, eid, a, b)
			}
		}
	}
	if total != len(g.Edges) {
		return fmt.Errorf("trails cover %d of %d edges", total, len(g.Edges))
	}
	return nil
}

// MinTrailCount returns the theoretical minimum number of trails needed to
// cover each connected component: max(1, odd/2) summed over components.
func (g *Multigraph) MinTrailCount() int {
	n := 0
	for _, comp := range g.components() {
		odd := 0
		for _, node := range comp {
			if g.Degree(node)%2 == 1 {
				odd++
			}
		}
		if odd == 0 {
			n++
		} else {
			n += odd / 2
		}
	}
	return n
}
