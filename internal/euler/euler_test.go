package euler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
)

func gateGraph(t *testing.T, f string, typ network.DeviceType) *Multigraph {
	t.Helper()
	sp, err := network.FromExpr(logic.MustParse(f))
	if err != nil {
		t.Fatal(err)
	}
	sp.AssignWidths(1)
	top, bottom := "OUT", "GND"
	if typ == network.PFET {
		top, bottom = "VDD", "OUT"
	}
	return FromNetwork(network.Elaborate(sp, typ, top, bottom))
}

func TestInverterTrail(t *testing.T) {
	g := gateGraph(t, "A", network.PFET)
	trails := g.Trails("VDD")
	if len(trails) != 1 {
		t.Fatalf("trails = %d, want 1", len(trails))
	}
	tr := trails[0]
	if tr.Len() != 1 || tr.Nodes[0] != "VDD" || tr.Nodes[1] != "OUT" {
		t.Fatalf("trail = %+v", tr)
	}
	if err := Validate(g, trails); err != nil {
		t.Fatal(err)
	}
}

func TestNAND3PUNTrail(t *testing.T) {
	// NAND3 PUN: three parallel p-FETs VDD-OUT. Both terminals have odd
	// degree 3, so a single trail VDD..OUT exists — the paper's
	// Vdd-A-Out-B-Vdd-C-Out row (Fig 3b).
	g := gateGraph(t, "(ABC)", network.PFET)
	pun := New()
	// Dual of ABC is A+B+C: three parallel edges.
	_ = g
	for _, lbl := range []string{"A", "B", "C"} {
		pun.AddEdge("VDD", "OUT", lbl, false, 1)
	}
	trails := pun.Trails("VDD")
	if len(trails) != 1 {
		t.Fatalf("trails = %d, want 1", len(trails))
	}
	tr := trails[0]
	if tr.Len() != 3 {
		t.Fatalf("trail len = %d", tr.Len())
	}
	if tr.Nodes[0] != "VDD" {
		t.Fatalf("trail should start at VDD, got %s", tr.Nodes[0])
	}
	// Node sequence must alternate VDD/OUT.
	want := []string{"VDD", "OUT", "VDD", "OUT"}
	for i, n := range tr.Nodes {
		if n != want[i] {
			t.Fatalf("nodes = %v, want %v", tr.Nodes, want)
		}
	}
	if err := Validate(pun, trails); err != nil {
		t.Fatal(err)
	}
}

func TestNAND3PDNTrail(t *testing.T) {
	g := gateGraph(t, "ABC", network.NFET)
	trails := g.Trails("GND")
	if len(trails) != 1 {
		t.Fatalf("trails = %d, want 1", len(trails))
	}
	tr := trails[0]
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	// Endpoints must be the two odd nodes OUT and GND.
	first, last := tr.Nodes[0], tr.Nodes[len(tr.Nodes)-1]
	if !(first == "GND" && last == "OUT") && !(first == "OUT" && last == "GND") {
		t.Fatalf("endpoints = %s..%s", first, last)
	}
	if err := Validate(g, trails); err != nil {
		t.Fatal(err)
	}
}

func TestAOI31Trails(t *testing.T) {
	// Paper Fig 4: PDN of (ABC+D)' is ABC+D — Euler circuit
	// Out-A-x-B-y-C-Gnd-D-Out exists (all nodes even).
	pdn := gateGraph(t, "ABC+D", network.NFET)
	trails := pdn.Trails("OUT")
	if len(trails) != 1 {
		t.Fatalf("PDN trails = %d, want 1", len(trails))
	}
	if err := Validate(pdn, trails); err != nil {
		t.Fatal(err)
	}
	tr := trails[0]
	if tr.Nodes[0] != tr.Nodes[len(tr.Nodes)-1] {
		t.Fatal("PDN walk should be a circuit (all degrees even)")
	}

	// PUN of (ABC+D)' is (A+B+C)*D: VDD deg 3, OUT deg 1 — one open trail.
	pun := gateGraph(t, "(A+B+C)*D", network.PFET)
	ptrails := pun.Trails("VDD")
	if len(ptrails) != 1 {
		t.Fatalf("PUN trails = %d, want 1", len(ptrails))
	}
	if err := Validate(pun, ptrails); err != nil {
		t.Fatal(err)
	}
	p := ptrails[0]
	first, last := p.Nodes[0], p.Nodes[len(p.Nodes)-1]
	if !(first == "VDD" && last == "OUT") && !(first == "OUT" && last == "VDD") {
		t.Fatalf("PUN endpoints = %s..%s, want VDD..OUT", first, last)
	}
}

func TestAOI22PUNCircuitRevisitsInternal(t *testing.T) {
	// PUN of (AB+CD)' is (A+B)(C+D): VDD-{A,B}-m, m-{C,D}-OUT.
	// All degrees even (VDD 2, m 4, OUT 2): one circuit, and the internal
	// node m is visited twice — the redundant-contact case.
	pun := gateGraph(t, "(A+B)(C+D)", network.PFET)
	trails := pun.Trails("VDD")
	if len(trails) != 1 {
		t.Fatalf("trails = %d", len(trails))
	}
	if err := Validate(pun, trails); err != nil {
		t.Fatal(err)
	}
	// Count visits of the internal node.
	internal := ""
	for _, n := range trails[0].Nodes {
		if n != "VDD" && n != "OUT" {
			internal = n
		}
	}
	visits := 0
	for _, n := range trails[0].Nodes {
		if n == internal {
			visits++
		}
	}
	if visits != 2 {
		t.Fatalf("internal node visits = %d, want 2", visits)
	}
}

func TestMinTrailCount(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", "A", false, 1)
	g.AddEdge("b", "c", "B", false, 1)
	if got := g.MinTrailCount(); got != 1 {
		t.Fatalf("path MinTrailCount = %d", got)
	}
	// Star with 4 leaves: 4 odd nodes -> 2 trails.
	s := New()
	for _, leaf := range []string{"p", "q", "r", "s"} {
		s.AddEdge("hub", leaf, leaf, false, 1)
	}
	if got := s.MinTrailCount(); got != 2 {
		t.Fatalf("star MinTrailCount = %d, want 2", got)
	}
	trails := s.Trails("hub")
	if len(trails) != 2 {
		t.Fatalf("star trails = %d, want 2", len(trails))
	}
	if err := Validate(s, trails); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", "A", false, 1)
	g.AddEdge("c", "d", "B", false, 1)
	trails := g.Trails("a")
	if len(trails) != 2 {
		t.Fatalf("trails = %d, want 2", len(trails))
	}
	if err := Validate(g, trails); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Multigraph {
		g := New()
		g.AddEdge("VDD", "OUT", "B", false, 1)
		g.AddEdge("VDD", "OUT", "A", false, 1)
		g.AddEdge("VDD", "OUT", "C", false, 1)
		return g
	}
	a := build().Trails("VDD")
	b := build().Trails("VDD")
	if len(a) != len(b) {
		t.Fatal("nondeterministic trail count")
	}
	for i := range a {
		if len(a[i].Edges) != len(b[i].Edges) {
			t.Fatal("nondeterministic trail length")
		}
		for j := range a[i].Edges {
			if a[i].Edges[j] != b[i].Edges[j] {
				t.Fatal("nondeterministic edge order")
			}
		}
	}
	// Deterministic label order: A then B then C from VDD.
	g := build()
	tr := g.Trails("VDD")[0]
	labels := []string{}
	for _, eid := range tr.Edges {
		labels = append(labels, g.Edges[eid].Label)
	}
	if labels[0] != "A" {
		t.Fatalf("first edge label = %s, want A (lowest label first)", labels[0])
	}
}

// Property: on random multigraphs, Trails covers every edge exactly once
// with valid adjacency, and the number of trails equals MinTrailCount.
func TestTrailsCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	names := []string{"a", "b", "c", "d", "e", "f"}
	f := func() bool {
		g := New()
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			u := names[rng.Intn(len(names))]
			v := names[rng.Intn(len(names))]
			if u == v {
				continue // no self loops in transistor networks
			}
			g.AddEdge(u, v, string(rune('A'+i)), false, 1)
		}
		if len(g.Edges) == 0 {
			return true
		}
		trails := g.Trails("a")
		if err := Validate(g, trails); err != nil {
			return false
		}
		return len(trails) == g.MinTrailCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: SP networks from random gate expressions always admit a
// decomposition whose trail count matches the odd-degree bound, and
// terminal endpoints appear at trail ends when they are odd.
func TestSPNetworkTrailsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	vars := []string{"A", "B", "C", "D"}
	var build func(depth int) *logic.Expr
	build = func(depth int) *logic.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			return logic.Var(vars[rng.Intn(len(vars))])
		}
		k := 2 + rng.Intn(2)
		kids := make([]*logic.Expr, k)
		for i := range kids {
			kids[i] = build(depth - 1)
		}
		if rng.Intn(2) == 0 {
			return logic.And(kids...)
		}
		return logic.Or(kids...)
	}
	f := func() bool {
		sp, err := network.FromExpr(build(3))
		if err != nil {
			return false
		}
		sp.AssignWidths(1)
		nw := network.Elaborate(sp, network.NFET, "OUT", "GND")
		g := FromNetwork(nw)
		trails := g.Trails("GND")
		return Validate(g, trails) == nil && len(trails) == g.MinTrailCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
