package promtext

import (
	"errors"
	"strings"
	"testing"
)

func TestWriterFamilies(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	w.Counter("jobs_total", "Jobs so far.", 42)
	w.Gauge("queue_depth", "Waiting\nitems.", 3.5)
	w.Metric("counter", "per_worker_total", "Per worker.",
		Sample{Labels: []Label{{Name: "worker", Value: `http://a:1/"x"`}}, Value: 7},
		Sample{Labels: []Label{{Name: "worker", Value: "http://b:2"}}, Value: 0},
	)
	w.Metric("gauge", "empty_family", "Never emitted.")
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs so far.\n# TYPE jobs_total counter\njobs_total 42\n",
		`# HELP queue_depth Waiting\nitems.`,
		"queue_depth 3.5\n",
		`per_worker_total{worker="http://a:1/\"x\""} 7`,
		`per_worker_total{worker="http://b:2"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "empty_family") {
		t.Error("sampleless family was emitted")
	}
}

func TestValueFormatting(t *testing.T) {
	for v, want := range map[float64]string{
		0:       "0",
		1:       "1",
		1234567: "1.234567e+06",
		0.25:    "0.25",
	} {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

type failWriter struct{ err error }

func (f *failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestStickyError(t *testing.T) {
	boom := errors.New("boom")
	w := New(&failWriter{err: boom})
	w.Counter("a_total", "A.", 1)
	w.Gauge("b", "B.", 2)
	if !errors.Is(w.Err(), boom) {
		t.Fatalf("Err = %v, want the first write error", w.Err())
	}
}
