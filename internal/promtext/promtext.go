// Package promtext renders metrics in the Prometheus text exposition
// format (version 0.0.4) without pulling in a client library: the
// daemon and the sweep-fabric coordinator expose a handful of counters
// and gauges on GET /metrics, and a scraper (or the CI fabric job's
// grep) reads them straight off the wire.
package promtext

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ContentType is the exposition-format content type for HTTP responses.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair of a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one time-series sample of a metric: its label set (ordered
// as given) and value.
type Sample struct {
	Labels []Label
	Value  float64
}

// Writer accumulates metrics onto an io.Writer. Write errors are
// sticky and surfaced by Err — callers emitting onto an HTTP response
// typically ignore them, as net/http does.
type Writer struct {
	w   io.Writer
	err error
}

// New wraps w for metric emission.
func New(w io.Writer) *Writer { return &Writer{w: w} }

// Err reports the first write error, if any.
func (w *Writer) Err() error { return w.err }

// Counter emits a single unlabeled counter.
func (w *Writer) Counter(name, help string, value float64) {
	w.Metric("counter", name, help, Sample{Value: value})
}

// Gauge emits a single unlabeled gauge.
func (w *Writer) Gauge(name, help string, value float64) {
	w.Metric("gauge", name, help, Sample{Value: value})
}

// Metric emits one metric family: HELP and TYPE headers followed by a
// line per sample. No samples emits nothing (an absent family is valid;
// an empty one is noise).
func (w *Writer) Metric(typ, name, help string, samples ...Sample) {
	if w.err != nil || len(samples) == 0 {
		return
	}
	w.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
	for _, s := range samples {
		if len(s.Labels) == 0 {
			w.printf("%s %s\n", name, formatValue(s.Value))
			continue
		}
		parts := make([]string, len(s.Labels))
		for i, l := range s.Labels {
			// %q escapes quotes, backslashes and newlines — exactly the
			// label-value escape set of the exposition format.
			parts[i] = fmt.Sprintf("%s=%q", l.Name, l.Value)
		}
		w.printf("%s{%s} %s\n", name, strings.Join(parts, ","), formatValue(s.Value))
	}
}

func (w *Writer) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	_, w.err = fmt.Fprintf(w.w, format, args...)
}

// formatValue renders a sample value the way Prometheus parses it:
// shortest float representation, integers without an exponent.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
