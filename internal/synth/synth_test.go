package synth

import (
	"bytes"
	"strings"
	"testing"

	"cnfetdk/internal/logic"
)

func TestParseAndFormatRoundTrip(t *testing.T) {
	src := `# a comment
module top
input A B
output Y
u1 NAND2_1X A=A B=B OUT=n1
u2 INV_1X A=n1 OUT=Y
endmodule
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "top" || len(n.Instances) != 2 {
		t.Fatalf("parsed %+v", n)
	}
	var buf bytes.Buffer
	if err := n.Format(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Name != n.Name || len(n2.Instances) != len(n.Instances) {
		t.Fatal("round trip mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"input A\nendmodule",               // no module
		"module m\nu1\nendmodule",          // malformed instance
		"module m\nu1 INV_1X A\nendmodule", // bad binding
	} {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestEvaluateAndGate(t *testing.T) {
	n := &Netlist{
		Name:   "and2",
		Inputs: []string{"A", "B"},
		Instances: []Instance{
			{Name: "u1", Cell: "NAND2_1X", Conns: map[string]string{"A": "A", "B": "B", "OUT": "n1"}},
			{Name: "u2", Cell: "INV_1X", Conns: map[string]string{"A": "n1", "OUT": "Y"}},
		},
		Outputs: []string{"Y"},
	}
	if err := n.Verify(map[string]*logic.Expr{"Y": logic.MustParse("AB")}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateCyclicFails(t *testing.T) {
	n := &Netlist{
		Name:   "cycle",
		Inputs: []string{"A"},
		Instances: []Instance{
			{Name: "u1", Cell: "NAND2_1X", Conns: map[string]string{"A": "A", "B": "q", "OUT": "q"}},
		},
	}
	if _, err := n.Evaluate(map[string]bool{"A": true}); err == nil {
		t.Fatal("cyclic netlist must be rejected")
	}
}

func TestFullAdderVerifies(t *testing.T) {
	fa := FullAdder()
	if err := fa.Verify(FullAdderSpec()); err != nil {
		t.Fatal(err)
	}
	// Fig 8(a): nine 2X NAND2 gates plus the buffer inverters.
	nands, invs := 0, 0
	for _, inst := range fa.Instances {
		switch baseName(inst.Cell) {
		case "NAND2":
			nands++
			if inst.Cell != "NAND2_2X" {
				t.Errorf("%s: NAND2 gates are 2X in the case study", inst.Name)
			}
		case "INV":
			invs++
		}
	}
	if nands != 9 {
		t.Fatalf("NAND2 count = %d, want 9", nands)
	}
	if invs != 6 {
		t.Fatalf("INV count = %d, want 6", invs)
	}
}

func TestVerifySampledDegradesToExhaustive(t *testing.T) {
	// 3 inputs, 8 vectors: any samples >= 8 (or 0) must run the full scan
	// and therefore agree with Verify on a correct netlist.
	fa := FullAdder()
	for _, samples := range []int{0, 8, 100} {
		if err := fa.VerifySampled(FullAdderSpec(), samples); err != nil {
			t.Fatalf("samples=%d: %v", samples, err)
		}
	}
}

func TestVerifySampledCatchesWrongNetlist(t *testing.T) {
	// A 17-input adder with one full-adder's Sum and Carry swapped: the
	// corner vectors alone (all-ones has every stage generating a carry)
	// must expose it even at a tiny sample count.
	nl := RippleCarryAdder(8)
	for i := range nl.Instances {
		c := nl.Instances[i].Conns
		if c["OUT"] == "S3" {
			c["OUT"] = "C4"
		} else if c["OUT"] == "C4" {
			c["OUT"] = "S3"
		}
	}
	if err := nl.VerifySampled(RippleCarryAdderSpec(8), 64); err == nil {
		t.Fatal("sampled verification missed a swapped Sum/Carry")
	}
}

func TestVerifySampledRCA8(t *testing.T) {
	nl := RippleCarryAdder(8)
	if err := nl.VerifySampled(RippleCarryAdderSpec(8), 256); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeSimple(t *testing.T) {
	out := map[string]*logic.Expr{
		"Y": logic.MustParse("AB+C"),
	}
	n, err := Synthesize("aoi", out)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Instances) == 0 {
		t.Fatal("empty netlist")
	}
	// Verify was already run inside Synthesize; double-check.
	if err := n.Verify(out); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeXorShares(t *testing.T) {
	// a⊕b twice: structural sharing should not duplicate the cone.
	e := logic.MustParse("A*B' + A'*B")
	single, err := Synthesize("x1", map[string]*logic.Expr{"Y": e})
	if err != nil {
		t.Fatal(err)
	}
	double, err := Synthesize("x2", map[string]*logic.Expr{"Y": e, "Z": e})
	if err != nil {
		t.Fatal(err)
	}
	// The second output should reuse nearly the whole cone (just a buffer
	// or rename, not a full recompute).
	if len(double.Instances) > len(single.Instances)+3 {
		t.Fatalf("sharing failed: %d vs %d instances", len(double.Instances), len(single.Instances))
	}
}

func TestSynthesizeFullAdderFunctions(t *testing.T) {
	n, err := Synthesize("fa", FullAdderSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Verify(FullAdderSpec()); err != nil {
		t.Fatal(err)
	}
	// Everything must be NAND2/INV.
	for _, inst := range n.Instances {
		b := baseName(inst.Cell)
		if b != "NAND2" && b != "INV" {
			t.Fatalf("unexpected cell %s", inst.Cell)
		}
	}
}

func TestSizeByFanout(t *testing.T) {
	n := &Netlist{
		Name:   "fan",
		Inputs: []string{"A"},
		Instances: []Instance{
			{Name: "u0", Cell: "INV_1X", Conns: map[string]string{"A": "A", "OUT": "h"}},
			{Name: "u1", Cell: "INV_1X", Conns: map[string]string{"A": "h", "OUT": "y1"}},
			{Name: "u2", Cell: "INV_1X", Conns: map[string]string{"A": "h", "OUT": "y2"}},
			{Name: "u3", Cell: "INV_1X", Conns: map[string]string{"A": "h", "OUT": "y3"}},
			{Name: "u4", Cell: "INV_1X", Conns: map[string]string{"A": "h", "OUT": "y4"}},
		},
	}
	SizeByFanout(n)
	if n.Instances[0].Cell != "INV_4X" {
		t.Fatalf("driver of fanout-4 net = %s, want INV_4X", n.Instances[0].Cell)
	}
	if n.Instances[1].Cell != "INV_1X" {
		t.Fatalf("leaf cell = %s, want INV_1X", n.Instances[1].Cell)
	}
}

func TestNetsAndFanout(t *testing.T) {
	fa := FullAdder()
	nets := fa.Nets()
	if len(nets) == 0 {
		t.Fatal("no nets")
	}
	fan := fa.FanoutCount()
	if fan["n1"] != 3 { // n1 feeds g2, g3, g9
		t.Fatalf("fanout(n1) = %d, want 3", fan["n1"])
	}
}
