// Package synth provides the front of the logic-to-GDSII flow: a small
// structural netlist model, a text netlist parser, a NAND/INV technology
// mapper for combinational expressions, and logic-level verification of
// mapped netlists against their specification.
package synth

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"cnfetdk/internal/logic"
)

// Instance is one placed gate.
type Instance struct {
	Name string
	Cell string // library full name, e.g. "NAND2_2X"
	// Conns maps cell formal pins (A, B, ..., OUT) to net names.
	Conns map[string]string
}

// Netlist is a flat gate-level design.
type Netlist struct {
	Name      string
	Inputs    []string
	Outputs   []string
	Instances []Instance
}

// Nets returns all net names in deterministic order.
func (n *Netlist) Nets() []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, in := range n.Inputs {
		add(in)
	}
	for _, inst := range n.Instances {
		for _, net := range inst.Conns {
			add(net)
		}
	}
	sort.Strings(out)
	return out
}

// FanoutCount returns how many instance inputs each net drives.
func (n *Netlist) FanoutCount() map[string]int {
	out := map[string]int{}
	for _, inst := range n.Instances {
		for pin, net := range inst.Conns {
			if pin != "OUT" {
				out[net]++
			}
		}
	}
	return out
}

// Parse reads the tiny structural format:
//
//	module NAME
//	input A B Cin
//	output Sum Carry
//	u1 NAND2_2X A=A B=B OUT=n1
//	...
//	endmodule
//
// Lines starting with # are comments.
func Parse(r io.Reader) (*Netlist, error) {
	n := &Netlist{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "module":
			if len(f) != 2 {
				return nil, fmt.Errorf("synth: line %d: module needs a name", lineNo)
			}
			n.Name = f[1]
		case "endmodule":
			if n.Name == "" {
				return nil, fmt.Errorf("synth: line %d: endmodule without module", lineNo)
			}
			return n, sc.Err()
		case "input":
			n.Inputs = append(n.Inputs, f[1:]...)
		case "output":
			n.Outputs = append(n.Outputs, f[1:]...)
		default:
			if len(f) < 3 {
				return nil, fmt.Errorf("synth: line %d: malformed instance", lineNo)
			}
			inst := Instance{Name: f[0], Cell: f[1], Conns: map[string]string{}}
			for _, kv := range f[2:] {
				parts := strings.SplitN(kv, "=", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("synth: line %d: bad pin binding %q", lineNo, kv)
				}
				inst.Conns[parts[0]] = parts[1]
			}
			n.Instances = append(n.Instances, inst)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n.Name == "" {
		return nil, fmt.Errorf("synth: missing module header")
	}
	return n, nil
}

// Format renders the netlist in the Parse format.
func (n *Netlist) Format(w io.Writer) error {
	fmt.Fprintf(w, "module %s\n", n.Name)
	if len(n.Inputs) > 0 {
		fmt.Fprintf(w, "input %s\n", strings.Join(n.Inputs, " "))
	}
	if len(n.Outputs) > 0 {
		fmt.Fprintf(w, "output %s\n", strings.Join(n.Outputs, " "))
	}
	for _, inst := range n.Instances {
		pins := make([]string, 0, len(inst.Conns))
		for p := range inst.Conns {
			pins = append(pins, p)
		}
		sort.Strings(pins)
		parts := []string{inst.Name, inst.Cell}
		for _, p := range pins {
			parts = append(parts, p+"="+inst.Conns[p])
		}
		fmt.Fprintln(w, strings.Join(parts, " "))
	}
	_, err := fmt.Fprintln(w, "endmodule")
	return err
}

// CellFunctions maps library cell base names to their pull-down functions
// for logic-level evaluation; the output is the complement.
var CellFunctions = map[string]string{
	"INV":   "A",
	"NAND2": "AB",
	"NAND3": "ABC",
	"NOR2":  "A+B",
	"NOR3":  "A+B+C",
	"AOI21": "AB+C",
	"AOI22": "AB+CD",
	"AOI31": "ABC+D",
	"OAI21": "(A+B)C",
	"OAI22": "(A+B)(C+D)",
}

// baseName strips the drive suffix: "NAND2_2X" -> "NAND2".
func baseName(cell string) string {
	if i := strings.LastIndex(cell, "_"); i > 0 {
		return cell[:i]
	}
	return cell
}

// Evaluate computes all net values for one input assignment by iterating
// gate evaluation to a fixed point (the netlist must be combinational).
func (n *Netlist) Evaluate(in map[string]bool) (map[string]bool, error) {
	vals := map[string]bool{}
	for _, i := range n.Inputs {
		v, ok := in[i]
		if !ok {
			return nil, fmt.Errorf("synth: input %q not assigned", i)
		}
		vals[i] = v
	}
	exprs := map[string]*logic.Expr{}
	for base, f := range CellFunctions {
		exprs[base] = logic.MustParse(f)
	}
	for pass := 0; pass <= len(n.Instances); pass++ {
		progress := false
		done := true
		for _, inst := range n.Instances {
			out := inst.Conns["OUT"]
			if _, ok := vals[out]; ok {
				continue
			}
			e, ok := exprs[baseName(inst.Cell)]
			if !ok {
				return nil, fmt.Errorf("synth: unknown cell %q", inst.Cell)
			}
			env := map[string]bool{}
			ready := true
			for _, v := range e.Vars() {
				net, ok := inst.Conns[v]
				if !ok {
					return nil, fmt.Errorf("synth: %s: pin %s unbound", inst.Name, v)
				}
				val, ok := vals[net]
				if !ok {
					ready = false
					break
				}
				env[v] = val
			}
			if !ready {
				done = false
				continue
			}
			vals[out] = !e.Eval(env) // cells are inverting: out = f'
			progress = true
		}
		if done {
			return vals, nil
		}
		if !progress {
			return nil, fmt.Errorf("synth: netlist is cyclic or has undriven nets")
		}
	}
	return vals, nil
}

// Verify checks the netlist implements the given output functions over the
// primary inputs (exhaustively).
func (n *Netlist) Verify(spec map[string]*logic.Expr) error {
	rows := 1 << len(n.Inputs)
	for v := 0; v < rows; v++ {
		if err := n.verifyVector(spec, v); err != nil {
			return err
		}
	}
	return nil
}

// VerifySampled checks the netlist against the spec on a deterministic
// sample of input vectors: the all-zero/all-one corners, every
// single-bit-set vector, and pseudo-random vectors drawn from a fixed
// linear-congruential sequence until samples distinct vectors were
// tried. For wide circuits (the 17-input rca8, larger multipliers) this
// replaces the 2^inputs exhaustive scan that would dominate the netlist
// stage; samples >= 2^inputs degrades to the exhaustive Verify.
func (n *Netlist) VerifySampled(spec map[string]*logic.Expr, samples int) error {
	bits := len(n.Inputs)
	if bits < 63 && (samples <= 0 || 1<<uint(bits) <= samples) {
		return n.Verify(spec)
	}
	rows := uint64(1) << uint(bits)
	tried := map[uint64]bool{}
	try := func(v uint64) error {
		if tried[v] {
			return nil
		}
		tried[v] = true
		return n.verifyVector(spec, int(v))
	}
	if err := try(0); err != nil {
		return err
	}
	if err := try(rows - 1); err != nil {
		return err
	}
	for k := 0; k < bits; k++ {
		if err := try(uint64(1) << uint(k)); err != nil {
			return err
		}
	}
	// Fixed-seed LCG (Numerical Recipes constants): the sample is part
	// of the circuit's contract, so it must be reproducible everywhere.
	x := uint64(0x9E3779B97F4A7C15)
	for len(tried) < samples {
		x = x*6364136223846793005 + 1442695040888963407
		if err := try(x >> (64 - uint(bits))); err != nil {
			return err
		}
	}
	return nil
}

// verifyVector checks one input vector v against the spec.
func (n *Netlist) verifyVector(spec map[string]*logic.Expr, v int) error {
	in := map[string]bool{}
	for k, name := range n.Inputs {
		in[name] = v>>uint(k)&1 == 1
	}
	vals, err := n.Evaluate(in)
	if err != nil {
		return err
	}
	for out, e := range spec {
		got, ok := vals[out]
		if !ok {
			return fmt.Errorf("synth: output %q undriven", out)
		}
		if want := e.Eval(in); got != want {
			return fmt.Errorf("synth: output %q wrong on vector %b: got %v want %v", out, v, got, want)
		}
	}
	return nil
}
