package synth

import (
	"fmt"

	"cnfetdk/internal/logic"
)

// This file provides benchmark-circuit generators used by the flow-level
// experiments: structural ripple-carry adders built from the Fig 8a full
// adder, plus synthesized multiplexers and decoders. They extend the
// paper's single-full-adder case study to the "many logic gates of
// minimum-to-medium sizes" regime where scheme 2's packing advantage is
// supposed to shine.

// RippleCarryAdder returns an n-bit ripple-carry adder composed of n
// structural full adders (Fig 8a), inputs A0..  B0.. and C0, outputs
// S0..S{n-1} and the final carry Cn.
func RippleCarryAdder(bits int) *Netlist {
	nl := &Netlist{Name: fmt.Sprintf("rca%d", bits)}
	nl.Inputs = append(nl.Inputs, "C0")
	for i := 0; i < bits; i++ {
		nl.Inputs = append(nl.Inputs, fmt.Sprintf("A%d", i), fmt.Sprintf("B%d", i))
	}
	carry := "C0"
	fa := FullAdder()
	for i := 0; i < bits; i++ {
		sum := fmt.Sprintf("S%d", i)
		cout := fmt.Sprintf("C%d", i+1)
		for _, inst := range fa.Instances {
			clone := Instance{
				Name:  fmt.Sprintf("b%d_%s", i, inst.Name),
				Cell:  inst.Cell,
				Conns: map[string]string{},
			}
			for pin, net := range inst.Conns {
				switch net {
				case "A":
					net = fmt.Sprintf("A%d", i)
				case "B":
					net = fmt.Sprintf("B%d", i)
				case "Cin":
					net = carry
				case "Sum":
					net = sum
				case "Carry":
					net = cout
				default:
					net = fmt.Sprintf("b%d_%s", i, net)
				}
				clone.Conns[pin] = net
			}
			nl.Instances = append(nl.Instances, clone)
		}
		nl.Outputs = append(nl.Outputs, sum)
		carry = cout
	}
	nl.Outputs = append(nl.Outputs, carry)
	return nl
}

// RippleCarryAdderSpec returns the Boolean specification of the n-bit
// adder over its primary inputs, for exhaustive verification.
func RippleCarryAdderSpec(bits int) map[string]*logic.Expr {
	spec := map[string]*logic.Expr{}
	carry := logic.Var("C0")
	for i := 0; i < bits; i++ {
		a, b := logic.Var(fmt.Sprintf("A%d", i)), logic.Var(fmt.Sprintf("B%d", i))
		// sum = a ⊕ b ⊕ carry, expressed via AND/OR/NOT.
		x := xorE(a, b)
		spec[fmt.Sprintf("S%d", i)] = xorE(x, carry)
		carry = logic.Or(logic.And(a, b), logic.And(carry, x))
	}
	spec[fmt.Sprintf("C%d", bits)] = carry
	return spec
}

func xorE(a, b *logic.Expr) *logic.Expr {
	return logic.Or(logic.And(a, logic.Not(b)), logic.And(logic.Not(a), b))
}

// Mux4 synthesizes a 4:1 multiplexer (data D0..D3, selects S0 S1, output
// Y) onto the NAND2/INV library.
func Mux4() (*Netlist, error) {
	y := logic.MustParse(
		"D0*!S0*!S1 + D1*S0*!S1 + D2*!S0*S1 + D3*S0*S1")
	return Synthesize("mux4", map[string]*logic.Expr{"Y": y})
}

// Decoder2 synthesizes a 2:4 decoder with enable.
func Decoder2() (*Netlist, error) {
	out := map[string]*logic.Expr{
		"Y0": logic.MustParse("En*!A*!B"),
		"Y1": logic.MustParse("En*A*!B"),
		"Y2": logic.MustParse("En*!A*B"),
		"Y3": logic.MustParse("En*A*B"),
	}
	return Synthesize("dec2", out)
}
