package synth

import (
	"fmt"

	"cnfetdk/internal/logic"
)

// This file provides benchmark-circuit generators used by the flow-level
// experiments: structural ripple-carry adders built from the Fig 8a full
// adder, plus synthesized multiplexers and decoders. They extend the
// paper's single-full-adder case study to the "many logic gates of
// minimum-to-medium sizes" regime where scheme 2's packing advantage is
// supposed to shine.

// RippleCarryAdder returns an n-bit ripple-carry adder composed of n
// structural full adders (Fig 8a), inputs A0..  B0.. and C0, outputs
// S0..S{n-1} and the final carry Cn.
func RippleCarryAdder(bits int) *Netlist {
	nl := &Netlist{Name: fmt.Sprintf("rca%d", bits)}
	nl.Inputs = append(nl.Inputs, "C0")
	for i := 0; i < bits; i++ {
		nl.Inputs = append(nl.Inputs, fmt.Sprintf("A%d", i), fmt.Sprintf("B%d", i))
	}
	carry := "C0"
	fa := FullAdder()
	for i := 0; i < bits; i++ {
		sum := fmt.Sprintf("S%d", i)
		cout := fmt.Sprintf("C%d", i+1)
		for _, inst := range fa.Instances {
			clone := Instance{
				Name:  fmt.Sprintf("b%d_%s", i, inst.Name),
				Cell:  inst.Cell,
				Conns: map[string]string{},
			}
			for pin, net := range inst.Conns {
				switch net {
				case "A":
					net = fmt.Sprintf("A%d", i)
				case "B":
					net = fmt.Sprintf("B%d", i)
				case "Cin":
					net = carry
				case "Sum":
					net = sum
				case "Carry":
					net = cout
				default:
					net = fmt.Sprintf("b%d_%s", i, net)
				}
				clone.Conns[pin] = net
			}
			nl.Instances = append(nl.Instances, clone)
		}
		nl.Outputs = append(nl.Outputs, sum)
		carry = cout
	}
	nl.Outputs = append(nl.Outputs, carry)
	return nl
}

// RippleCarryAdderSpec returns the Boolean specification of the n-bit
// adder over its primary inputs, for exhaustive verification.
func RippleCarryAdderSpec(bits int) map[string]*logic.Expr {
	spec := map[string]*logic.Expr{}
	carry := logic.Var("C0")
	for i := 0; i < bits; i++ {
		a, b := logic.Var(fmt.Sprintf("A%d", i)), logic.Var(fmt.Sprintf("B%d", i))
		// sum = a ⊕ b ⊕ carry, expressed via AND/OR/NOT.
		x := xorE(a, b)
		spec[fmt.Sprintf("S%d", i)] = xorE(x, carry)
		carry = logic.Or(logic.And(a, b), logic.And(carry, x))
	}
	spec[fmt.Sprintf("C%d", bits)] = carry
	return spec
}

func xorE(a, b *logic.Expr) *logic.Expr {
	return logic.Or(logic.And(a, logic.Not(b)), logic.And(logic.Not(a), b))
}

// Mux4 synthesizes a 4:1 multiplexer (data D0..D3, selects S0 S1, output
// Y) onto the NAND2/INV library.
func Mux4() (*Netlist, error) {
	y := logic.MustParse(
		"D0*!S0*!S1 + D1*S0*!S1 + D2*!S0*S1 + D3*S0*S1")
	return Synthesize("mux4", map[string]*logic.Expr{"Y": y})
}

// Decoder2 synthesizes a 2:4 decoder with enable.
func Decoder2() (*Netlist, error) {
	out := map[string]*logic.Expr{
		"Y0": logic.MustParse("En*!A*!B"),
		"Y1": logic.MustParse("En*A*!B"),
		"Y2": logic.MustParse("En*!A*B"),
		"Y3": logic.MustParse("En*A*B"),
	}
	return Synthesize("dec2", out)
}

// Mux2 synthesizes a 2:1 multiplexer (data D0 D1, select S, output Y).
func Mux2() (*Netlist, error) {
	return Synthesize("mux2", map[string]*logic.Expr{"Y": Mux2Spec()["Y"]})
}

// Mux2Spec returns the 2:1 multiplexer specification.
func Mux2Spec() map[string]*logic.Expr {
	return map[string]*logic.Expr{"Y": logic.MustParse("D0*!S + D1*S")}
}

// ParityTree synthesizes the n-input XOR parity function P = I0 ⊕ ... ⊕
// I{n-1} as a balanced tree of 2-input XORs lowered onto the NAND2/INV
// library.
func ParityTree(n int) (*Netlist, error) {
	return Synthesize(fmt.Sprintf("parity%d", n), ParityTreeSpec(n))
}

// ParityTreeSpec returns the n-input parity specification.
func ParityTreeSpec(n int) map[string]*logic.Expr {
	e := logic.Var("I0")
	for i := 1; i < n; i++ {
		e = xorE(e, logic.Var(fmt.Sprintf("I%d", i)))
	}
	return map[string]*logic.Expr{"P": e}
}

// cloneFullAdder appends one structural full adder (Fig 8a) to the
// netlist with every net mapped through prefix except the five formal
// ports, which land on the given nets.
func cloneFullAdder(nl *Netlist, prefix, a, b, cin, sum, cout string) {
	fa := FullAdder()
	for _, inst := range fa.Instances {
		clone := Instance{
			Name:  prefix + "_" + inst.Name,
			Cell:  inst.Cell,
			Conns: map[string]string{},
		}
		for pin, net := range inst.Conns {
			switch net {
			case "A":
				net = a
			case "B":
				net = b
			case "Cin":
				net = cin
			case "Sum":
				net = sum
			case "Carry":
				net = cout
			default:
				net = prefix + "_" + net
			}
			clone.Conns[pin] = net
		}
		nl.Instances = append(nl.Instances, clone)
	}
}

// addHalfAdder appends a structural half adder built from the NAND2/INV
// library: sum = a ⊕ b via the classic four-NAND XOR, carry = a·b via
// the shared NAND plus an inverter.
func addHalfAdder(nl *Netlist, prefix, a, b, sum, carry string) {
	n1 := prefix + "_n1"
	n2 := prefix + "_n2"
	n3 := prefix + "_n3"
	inst := func(name, cell string, conns map[string]string) {
		nl.Instances = append(nl.Instances, Instance{Name: name, Cell: cell, Conns: conns})
	}
	inst(prefix+"_g1", "NAND2_1X", map[string]string{"A": a, "B": b, "OUT": n1})
	inst(prefix+"_g2", "NAND2_1X", map[string]string{"A": a, "B": n1, "OUT": n2})
	inst(prefix+"_g3", "NAND2_1X", map[string]string{"A": b, "B": n1, "OUT": n3})
	inst(prefix+"_g4", "NAND2_1X", map[string]string{"A": n2, "B": n3, "OUT": sum})
	inst(prefix+"_c", "INV_1X", map[string]string{"A": n1, "OUT": carry})
}

// addAnd appends out = a·b as a NAND2 followed by an inverter.
func addAnd(nl *Netlist, prefix, a, b, out string) {
	n := prefix + "_n"
	nl.Instances = append(nl.Instances,
		Instance{Name: prefix + "_g", Cell: "NAND2_1X", Conns: map[string]string{"A": a, "B": b, "OUT": n}},
		Instance{Name: prefix + "_i", Cell: "INV_1X", Conns: map[string]string{"A": n, "OUT": out}},
	)
}

// ArrayMultiplier returns an n×n ripple-carry array multiplier: AND-gate
// partial products pp[i][j] = A[i]·B[j] feeding rows of half/full adders
// (the full adders are clones of the Fig 8a mirror adder), inputs
// A0..A{n-1} and B0..B{n-1}, product outputs P0..P{2n-1}. At n = 4 this
// is the registry's `mult4` — the multiplier-class benchmark that pushes
// the MNA system well past the dense solver's comfort zone.
func ArrayMultiplier(bits int) *Netlist {
	if bits < 2 {
		panic("synth: ArrayMultiplier needs at least 2 bits")
	}
	nl := &Netlist{Name: fmt.Sprintf("mult%d", bits)}
	for i := 0; i < bits; i++ {
		nl.Inputs = append(nl.Inputs, fmt.Sprintf("A%d", i))
	}
	for j := 0; j < bits; j++ {
		nl.Inputs = append(nl.Inputs, fmt.Sprintf("B%d", j))
	}
	// Partial products.
	pp := make([][]string, bits)
	for i := 0; i < bits; i++ {
		pp[i] = make([]string, bits)
		for j := 0; j < bits; j++ {
			out := fmt.Sprintf("pp%d%d", i, j)
			if i == 0 && j == 0 {
				out = "P0"
			}
			addAnd(nl, fmt.Sprintf("and%d%d", i, j), fmt.Sprintf("A%d", i), fmt.Sprintf("B%d", j), out)
			pp[i][j] = out
		}
	}
	// cur[k] holds the running-sum bit of weight j+k after row j;
	// carry is the previous row's carry-out (weight j-1+bits).
	cur := make([]string, bits)
	for i := 0; i < bits; i++ {
		cur[i] = pp[i][0]
	}
	carryOut := ""
	for j := 1; j < bits; j++ {
		next := make([]string, bits)
		pj := fmt.Sprintf("P%d", j)
		c := fmt.Sprintf("r%dc0", j)
		addHalfAdder(nl, fmt.Sprintf("r%dha", j), cur[1], pp[0][j], pj, c)
		for k := 2; k < bits; k++ {
			s := fmt.Sprintf("r%ds%d", j, k-1)
			nc := fmt.Sprintf("r%dc%d", j, k-1)
			cloneFullAdder(nl, fmt.Sprintf("r%dfa%d", j, k), cur[k], pp[k-1][j], c, s, nc)
			next[k-1], c = s, nc
		}
		s := fmt.Sprintf("r%ds%d", j, bits-1)
		nc := fmt.Sprintf("r%dcout", j)
		if j == bits-1 {
			s = fmt.Sprintf("P%d", bits+bits-2)
			nc = fmt.Sprintf("P%d", bits+bits-1)
		}
		if carryOut == "" {
			// Row 1 has no incoming carry: the last position is a half adder.
			addHalfAdder(nl, fmt.Sprintf("r%dhl", j), pp[bits-1][j], c, s, nc)
		} else {
			cloneFullAdder(nl, fmt.Sprintf("r%dfl", j), carryOut, pp[bits-1][j], c, s, nc)
		}
		next[bits-1], carryOut = s, nc
		if j == bits-1 {
			// The last row's sums are the high product bits.
			for k := 1; k < bits-1; k++ {
				renameNet(nl, next[k], fmt.Sprintf("P%d", j+k))
			}
		}
		cur = next
	}
	for p := 0; p < 2*bits; p++ {
		nl.Outputs = append(nl.Outputs, fmt.Sprintf("P%d", p))
	}
	return nl
}

// renameNet rewrites every connection of a net.
func renameNet(nl *Netlist, old, new string) {
	if old == new {
		return
	}
	for i := range nl.Instances {
		for pin, net := range nl.Instances[i].Conns {
			if net == old {
				nl.Instances[i].Conns[pin] = new
			}
		}
	}
}

// ArrayMultiplierSpec returns the Boolean specification of the n×n
// multiplier over its primary inputs: the same half/full-adder recurrence
// the structural builder uses, folded into expressions.
func ArrayMultiplierSpec(bits int) map[string]*logic.Expr {
	spec := map[string]*logic.Expr{}
	pp := make([][]*logic.Expr, bits)
	for i := 0; i < bits; i++ {
		pp[i] = make([]*logic.Expr, bits)
		for j := 0; j < bits; j++ {
			pp[i][j] = logic.And(logic.Var(fmt.Sprintf("A%d", i)), logic.Var(fmt.Sprintf("B%d", j)))
		}
	}
	ha := func(a, b *logic.Expr) (sum, carry *logic.Expr) {
		return xorE(a, b), logic.And(a, b)
	}
	fa := func(a, b, cin *logic.Expr) (sum, carry *logic.Expr) {
		x := xorE(a, b)
		return xorE(x, cin), logic.Or(logic.And(a, b), logic.And(cin, x))
	}
	spec["P0"] = pp[0][0]
	cur := make([]*logic.Expr, bits)
	for i := 0; i < bits; i++ {
		cur[i] = pp[i][0]
	}
	var carryOut *logic.Expr
	for j := 1; j < bits; j++ {
		next := make([]*logic.Expr, bits)
		var c *logic.Expr
		spec[fmt.Sprintf("P%d", j)], c = ha(cur[1], pp[0][j])
		for k := 2; k < bits; k++ {
			next[k-1], c = fa(cur[k], pp[k-1][j], c)
		}
		if carryOut == nil {
			next[bits-1], carryOut = ha(pp[bits-1][j], c)
		} else {
			next[bits-1], carryOut = fa(carryOut, pp[bits-1][j], c)
		}
		cur = next
	}
	for k := 1; k < bits; k++ {
		spec[fmt.Sprintf("P%d", bits-1+k)] = cur[k]
	}
	spec[fmt.Sprintf("P%d", 2*bits-1)] = carryOut
	return spec
}

// AOIChain builds a structural chain of n alternating AOI21/OAI21 cells:
// stage i computes x{i+1} = !(P·x{i} + Q) (AOI21) or !((R + x{i})·S)
// (OAI21), seeded with x0 = IN. With P=1, Q=0, R=0, S=1 every stage
// degenerates to an inverter, so pulsing IN exercises the whole chain —
// the paper's "many logic gates of minimum size" regime using the complex
// cells of Table 1.
func AOIChain(n int) *Netlist {
	nl := &Netlist{
		Name:    fmt.Sprintf("aoichain%d", n),
		Inputs:  []string{"IN", "P", "Q", "R", "S"},
		Outputs: []string{fmt.Sprintf("X%d", n)},
	}
	prev := "IN"
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("X%d", i+1)
		inst := Instance{Name: fmt.Sprintf("u%d", i), Conns: map[string]string{"OUT": out}}
		if i%2 == 0 {
			inst.Cell = "AOI21_1X"
			inst.Conns["A"] = "P"
			inst.Conns["B"] = prev
			inst.Conns["C"] = "Q"
		} else {
			inst.Cell = "OAI21_1X"
			inst.Conns["A"] = "R"
			inst.Conns["B"] = prev
			inst.Conns["C"] = "S"
		}
		nl.Instances = append(nl.Instances, inst)
		prev = out
	}
	return nl
}

// AOIChainSpec folds the chain's stage functions into one expression over
// the primary inputs, for exhaustive verification.
func AOIChainSpec(n int) map[string]*logic.Expr {
	x := logic.Var("IN")
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			// AOI21: !(P·x + Q)
			x = logic.Not(logic.Or(logic.And(logic.Var("P"), x), logic.Var("Q")))
		} else {
			// OAI21: !((R + x)·S)
			x = logic.Not(logic.And(logic.Or(logic.Var("R"), x), logic.Var("S")))
		}
	}
	return map[string]*logic.Expr{fmt.Sprintf("X%d", n): x}
}
