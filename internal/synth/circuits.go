package synth

import (
	"fmt"

	"cnfetdk/internal/logic"
)

// This file provides benchmark-circuit generators used by the flow-level
// experiments: structural ripple-carry adders built from the Fig 8a full
// adder, plus synthesized multiplexers and decoders. They extend the
// paper's single-full-adder case study to the "many logic gates of
// minimum-to-medium sizes" regime where scheme 2's packing advantage is
// supposed to shine.

// RippleCarryAdder returns an n-bit ripple-carry adder composed of n
// structural full adders (Fig 8a), inputs A0..  B0.. and C0, outputs
// S0..S{n-1} and the final carry Cn.
func RippleCarryAdder(bits int) *Netlist {
	nl := &Netlist{Name: fmt.Sprintf("rca%d", bits)}
	nl.Inputs = append(nl.Inputs, "C0")
	for i := 0; i < bits; i++ {
		nl.Inputs = append(nl.Inputs, fmt.Sprintf("A%d", i), fmt.Sprintf("B%d", i))
	}
	carry := "C0"
	fa := FullAdder()
	for i := 0; i < bits; i++ {
		sum := fmt.Sprintf("S%d", i)
		cout := fmt.Sprintf("C%d", i+1)
		for _, inst := range fa.Instances {
			clone := Instance{
				Name:  fmt.Sprintf("b%d_%s", i, inst.Name),
				Cell:  inst.Cell,
				Conns: map[string]string{},
			}
			for pin, net := range inst.Conns {
				switch net {
				case "A":
					net = fmt.Sprintf("A%d", i)
				case "B":
					net = fmt.Sprintf("B%d", i)
				case "Cin":
					net = carry
				case "Sum":
					net = sum
				case "Carry":
					net = cout
				default:
					net = fmt.Sprintf("b%d_%s", i, net)
				}
				clone.Conns[pin] = net
			}
			nl.Instances = append(nl.Instances, clone)
		}
		nl.Outputs = append(nl.Outputs, sum)
		carry = cout
	}
	nl.Outputs = append(nl.Outputs, carry)
	return nl
}

// RippleCarryAdderSpec returns the Boolean specification of the n-bit
// adder over its primary inputs, for exhaustive verification.
func RippleCarryAdderSpec(bits int) map[string]*logic.Expr {
	spec := map[string]*logic.Expr{}
	carry := logic.Var("C0")
	for i := 0; i < bits; i++ {
		a, b := logic.Var(fmt.Sprintf("A%d", i)), logic.Var(fmt.Sprintf("B%d", i))
		// sum = a ⊕ b ⊕ carry, expressed via AND/OR/NOT.
		x := xorE(a, b)
		spec[fmt.Sprintf("S%d", i)] = xorE(x, carry)
		carry = logic.Or(logic.And(a, b), logic.And(carry, x))
	}
	spec[fmt.Sprintf("C%d", bits)] = carry
	return spec
}

func xorE(a, b *logic.Expr) *logic.Expr {
	return logic.Or(logic.And(a, logic.Not(b)), logic.And(logic.Not(a), b))
}

// Mux4 synthesizes a 4:1 multiplexer (data D0..D3, selects S0 S1, output
// Y) onto the NAND2/INV library.
func Mux4() (*Netlist, error) {
	y := logic.MustParse(
		"D0*!S0*!S1 + D1*S0*!S1 + D2*!S0*S1 + D3*S0*S1")
	return Synthesize("mux4", map[string]*logic.Expr{"Y": y})
}

// Decoder2 synthesizes a 2:4 decoder with enable.
func Decoder2() (*Netlist, error) {
	out := map[string]*logic.Expr{
		"Y0": logic.MustParse("En*!A*!B"),
		"Y1": logic.MustParse("En*A*!B"),
		"Y2": logic.MustParse("En*!A*B"),
		"Y3": logic.MustParse("En*A*B"),
	}
	return Synthesize("dec2", out)
}

// Mux2 synthesizes a 2:1 multiplexer (data D0 D1, select S, output Y).
func Mux2() (*Netlist, error) {
	return Synthesize("mux2", map[string]*logic.Expr{"Y": Mux2Spec()["Y"]})
}

// Mux2Spec returns the 2:1 multiplexer specification.
func Mux2Spec() map[string]*logic.Expr {
	return map[string]*logic.Expr{"Y": logic.MustParse("D0*!S + D1*S")}
}

// ParityTree synthesizes the n-input XOR parity function P = I0 ⊕ ... ⊕
// I{n-1} as a balanced tree of 2-input XORs lowered onto the NAND2/INV
// library.
func ParityTree(n int) (*Netlist, error) {
	return Synthesize(fmt.Sprintf("parity%d", n), ParityTreeSpec(n))
}

// ParityTreeSpec returns the n-input parity specification.
func ParityTreeSpec(n int) map[string]*logic.Expr {
	e := logic.Var("I0")
	for i := 1; i < n; i++ {
		e = xorE(e, logic.Var(fmt.Sprintf("I%d", i)))
	}
	return map[string]*logic.Expr{"P": e}
}

// AOIChain builds a structural chain of n alternating AOI21/OAI21 cells:
// stage i computes x{i+1} = !(P·x{i} + Q) (AOI21) or !((R + x{i})·S)
// (OAI21), seeded with x0 = IN. With P=1, Q=0, R=0, S=1 every stage
// degenerates to an inverter, so pulsing IN exercises the whole chain —
// the paper's "many logic gates of minimum size" regime using the complex
// cells of Table 1.
func AOIChain(n int) *Netlist {
	nl := &Netlist{
		Name:    fmt.Sprintf("aoichain%d", n),
		Inputs:  []string{"IN", "P", "Q", "R", "S"},
		Outputs: []string{fmt.Sprintf("X%d", n)},
	}
	prev := "IN"
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("X%d", i+1)
		inst := Instance{Name: fmt.Sprintf("u%d", i), Conns: map[string]string{"OUT": out}}
		if i%2 == 0 {
			inst.Cell = "AOI21_1X"
			inst.Conns["A"] = "P"
			inst.Conns["B"] = prev
			inst.Conns["C"] = "Q"
		} else {
			inst.Cell = "OAI21_1X"
			inst.Conns["A"] = "R"
			inst.Conns["B"] = prev
			inst.Conns["C"] = "S"
		}
		nl.Instances = append(nl.Instances, inst)
		prev = out
	}
	return nl
}

// AOIChainSpec folds the chain's stage functions into one expression over
// the primary inputs, for exhaustive verification.
func AOIChainSpec(n int) map[string]*logic.Expr {
	x := logic.Var("IN")
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			// AOI21: !(P·x + Q)
			x = logic.Not(logic.Or(logic.And(logic.Var("P"), x), logic.Var("Q")))
		} else {
			// OAI21: !((R + x)·S)
			x = logic.Not(logic.And(logic.Or(logic.Var("R"), x), logic.Var("S")))
		}
	}
	return map[string]*logic.Expr{fmt.Sprintf("X%d", n): x}
}
