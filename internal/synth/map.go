package synth

import (
	"fmt"
	"sort"

	"cnfetdk/internal/logic"
)

// Mapper lowers Boolean expressions to NAND2/INV netlists with structural
// sharing — the "conventional logic synthesis" entry into the design kit.
// Drive strengths are assigned afterwards by SizeByFanout.
type Mapper struct {
	n      *Netlist
	nextID int
	// cache maps a structural key to the net already computing it.
	cache map[string]string
	// bound marks nets already claimed as primary outputs.
	bound map[string]bool
}

// NewMapper starts a netlist with the given name and primary inputs.
func NewMapper(name string, inputs []string) *Mapper {
	return &Mapper{
		n:     &Netlist{Name: name, Inputs: append([]string(nil), inputs...)},
		cache: map[string]string{},
		bound: map[string]bool{},
	}
}

func (m *Mapper) freshNet() string {
	m.nextID++
	return fmt.Sprintf("n%d", m.nextID)
}

func (m *Mapper) emit(cell string, conns map[string]string) string {
	// Structural hashing: identical gates on identical nets are shared.
	pins := make([]string, 0, len(conns))
	for p := range conns {
		pins = append(pins, p)
	}
	sort.Strings(pins)
	key := cell
	for _, p := range pins {
		key += ";" + p + "=" + conns[p]
	}
	if out, ok := m.cache[key]; ok {
		return out
	}
	out := m.freshNet()
	conns = cloneConns(conns)
	conns["OUT"] = out
	m.nextID++
	m.n.Instances = append(m.n.Instances, Instance{
		Name:  fmt.Sprintf("u%d", m.nextID),
		Cell:  cell,
		Conns: conns,
	})
	m.cache[key] = out
	return out
}

func cloneConns(c map[string]string) map[string]string {
	out := make(map[string]string, len(c)+1)
	for k, v := range c {
		out[k] = v
	}
	return out
}

// inv emits an inverter.
func (m *Mapper) inv(a string) string {
	return m.emit("INV_1X", map[string]string{"A": a})
}

// nand emits a 2-input NAND.
func (m *Mapper) nand(a, b string) string {
	if b < a {
		a, b = b, a // canonical order for sharing
	}
	return m.emit("NAND2_1X", map[string]string{"A": a, "B": b})
}

// lower recursively maps an expression to a net.
func (m *Mapper) lower(e *logic.Expr) (string, error) {
	switch e.Op {
	case logic.OpVar:
		return e.Name, nil
	case logic.OpNot:
		in, err := m.lower(e.Kids[0])
		if err != nil {
			return "", err
		}
		return m.inv(in), nil
	case logic.OpAnd:
		// AND = INV(NAND), folded left to right.
		cur, err := m.lower(e.Kids[0])
		if err != nil {
			return "", err
		}
		for _, k := range e.Kids[1:] {
			nxt, err := m.lower(k)
			if err != nil {
				return "", err
			}
			cur = m.inv(m.nand(cur, nxt))
		}
		return cur, nil
	case logic.OpOr:
		// OR(a,b) = NAND(a', b'), folded left to right.
		cur, err := m.lower(e.Kids[0])
		if err != nil {
			return "", err
		}
		for _, k := range e.Kids[1:] {
			nxt, err := m.lower(k)
			if err != nil {
				return "", err
			}
			cur = m.nand(m.invOnce(cur), m.invOnce(nxt))
		}
		return cur, nil
	}
	return "", fmt.Errorf("synth: bad op")
}

// invOnce is inv with double-inversion cancellation.
func (m *Mapper) invOnce(net string) string {
	// If net is the output of an inverter, return its input instead.
	for _, inst := range m.n.Instances {
		if inst.Cell == "INV_1X" && inst.Conns["OUT"] == net {
			return inst.Conns["A"]
		}
	}
	return m.inv(net)
}

// AddOutput maps the expression and binds it to the named output.
func (m *Mapper) AddOutput(name string, e *logic.Expr) error {
	net, err := m.lower(e)
	if err != nil {
		return err
	}
	switch {
	case net == name:
		// Already on the right net.
	case !m.isPrimaryInput(net) && !m.bound[net]:
		// Rename the driving instance's output net in place.
		for i := range m.n.Instances {
			if m.n.Instances[i].Conns["OUT"] == net {
				m.n.Instances[i].Conns["OUT"] = name
				break
			}
		}
		m.renameLoads(net, name)
		m.rekey(net, name)
	default:
		// The cone's net is a primary input or an already-claimed
		// output: insert a fresh (uncached) double-inverter buffer.
		mid := m.freshNet()
		m.emitFresh("INV_1X", map[string]string{"A": net, "OUT": mid})
		m.emitFresh("INV_1X", map[string]string{"A": mid, "OUT": name})
	}
	m.bound[name] = true
	m.n.Outputs = append(m.n.Outputs, name)
	return nil
}

func (m *Mapper) isPrimaryInput(net string) bool {
	for _, in := range m.n.Inputs {
		if in == net {
			return true
		}
	}
	return false
}

// emitFresh places an instance without structural caching (used for output
// buffers whose nets must stay private).
func (m *Mapper) emitFresh(cell string, conns map[string]string) {
	m.nextID++
	m.n.Instances = append(m.n.Instances, Instance{
		Name:  fmt.Sprintf("u%d", m.nextID),
		Cell:  cell,
		Conns: cloneConns(conns),
	})
}

func (m *Mapper) renameLoads(old, new string) {
	for i := range m.n.Instances {
		for p, v := range m.n.Instances[i].Conns {
			if p != "OUT" && v == old {
				m.n.Instances[i].Conns[p] = new
			}
		}
	}
}

// rekey updates the structural-sharing cache after a net rename.
func (m *Mapper) rekey(old, new string) {
	for k, v := range m.cache {
		if v == old {
			m.cache[k] = new
		}
	}
}

// Netlist returns the mapped design.
func (m *Mapper) Netlist() *Netlist { return m.n }

// Synthesize maps a set of named output expressions over shared inputs
// into a NAND2/INV netlist, verifies it, and sizes drives by fanout.
func Synthesize(name string, outputs map[string]*logic.Expr) (*Netlist, error) {
	inputSet := map[string]bool{}
	for _, e := range outputs {
		for _, v := range e.Vars() {
			inputSet[v] = true
		}
	}
	inputs := make([]string, 0, len(inputSet))
	for v := range inputSet {
		inputs = append(inputs, v)
	}
	sort.Strings(inputs)
	m := NewMapper(name, inputs)
	names := make([]string, 0, len(outputs))
	for n := range outputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := m.AddOutput(n, outputs[n]); err != nil {
			return nil, err
		}
	}
	nl := m.Netlist()
	if err := nl.Verify(outputs); err != nil {
		return nil, fmt.Errorf("synth: mapped netlist fails verification: %w", err)
	}
	SizeByFanout(nl)
	return nl, nil
}

// SizeByFanout upgrades cell drive strengths based on output loading:
// fanout ≥ 4 gets 4X, ≥ 2 gets 2X (when the library has that strength).
func SizeByFanout(n *Netlist) {
	fan := n.FanoutCount()
	for i := range n.Instances {
		base := baseName(n.Instances[i].Cell)
		f := fan[n.Instances[i].Conns["OUT"]]
		switch {
		case f >= 4:
			n.Instances[i].Cell = base + "_4X"
		case f >= 2:
			n.Instances[i].Cell = base + "_2X"
		}
	}
}
