package synth

import "cnfetdk/internal/logic"

// FullAdder returns the case-study-2 netlist (Fig 8a): a full adder built
// from 2X NAND2 gates with inverter buffers at 4X/7X/9X drive on the XOR
// node and the two outputs. The paper's figure labels nine 2X NAND2 gates
// and inverter pairs at 4X-7X and 4X-9X strengths; this reconstruction
// follows the classic nine-NAND full adder with those buffers.
//
//	half sum   Z = A ⊕ B            (n1..n4)
//	sum        Sum = Z ⊕ Cin        (n5..n8)
//	carry      Carry = (A·B + Cin·Z)'' = NAND(n1, n5)
func FullAdder() *Netlist {
	inst := func(name, cell string, conns map[string]string) Instance {
		return Instance{Name: name, Cell: cell, Conns: conns}
	}
	return &Netlist{
		Name:    "fulladder",
		Inputs:  []string{"A", "B", "Cin"},
		Outputs: []string{"Sum", "Carry"},
		Instances: []Instance{
			// First half-adder stage: Z = A xor B.
			inst("g1", "NAND2_2X", map[string]string{"A": "A", "B": "B", "OUT": "n1"}),
			inst("g2", "NAND2_2X", map[string]string{"A": "A", "B": "n1", "OUT": "n2"}),
			inst("g3", "NAND2_2X", map[string]string{"A": "B", "B": "n1", "OUT": "n3"}),
			inst("g4", "NAND2_2X", map[string]string{"A": "n2", "B": "n3", "OUT": "z0"}),
			// Z buffer (the figure's 4X/7X inverter pair).
			inst("b1", "INV_4X", map[string]string{"A": "z0", "OUT": "zb"}),
			inst("b2", "INV_7X", map[string]string{"A": "zb", "OUT": "Z"}),
			// Second stage: Sum = Z xor Cin.
			inst("g5", "NAND2_2X", map[string]string{"A": "Z", "B": "Cin", "OUT": "n5"}),
			inst("g6", "NAND2_2X", map[string]string{"A": "Z", "B": "n5", "OUT": "n6"}),
			inst("g7", "NAND2_2X", map[string]string{"A": "Cin", "B": "n5", "OUT": "n7"}),
			inst("g8", "NAND2_2X", map[string]string{"A": "n6", "B": "n7", "OUT": "s0"}),
			// Sum output buffer (4X/9X).
			inst("b3", "INV_4X", map[string]string{"A": "s0", "OUT": "sb"}),
			inst("b4", "INV_9X", map[string]string{"A": "sb", "OUT": "Sum"}),
			// Carry = NAND(n1, n5); buffered at 4X/9X.
			inst("g9", "NAND2_2X", map[string]string{"A": "n1", "B": "n5", "OUT": "c0"}),
			inst("b5", "INV_4X", map[string]string{"A": "c0", "OUT": "cb"}),
			inst("b6", "INV_9X", map[string]string{"A": "cb", "OUT": "Carry"}),
		},
	}
}

// FullAdderSpec returns the functional specification of the full adder for
// verification.
func FullAdderSpec() map[string]*logic.Expr {
	return map[string]*logic.Expr{
		// Sum = A ⊕ B ⊕ Cin in SOP form.
		"Sum": logic.MustParse("A*B'*Cin' + A'*B*Cin' + A'*B'*Cin + A*B*Cin"),
		// Carry = AB + Cin(A ⊕ B) = AB + ACin + BCin.
		"Carry": logic.MustParse("A*B + A*Cin + B*Cin"),
	}
}
