package synth

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestRippleCarryAdder2Verifies(t *testing.T) {
	nl := RippleCarryAdder(2)
	if err := nl.Verify(RippleCarryAdderSpec(2)); err != nil {
		t.Fatal(err)
	}
	// 2 bits x 15 instances.
	if len(nl.Instances) != 30 {
		t.Fatalf("instances = %d, want 30", len(nl.Instances))
	}
	if len(nl.Inputs) != 5 || len(nl.Outputs) != 3 {
		t.Fatalf("ports = %d in / %d out", len(nl.Inputs), len(nl.Outputs))
	}
}

func TestRippleCarryAdder3Verifies(t *testing.T) {
	if testing.Short() {
		t.Skip("128-vector exhaustive check")
	}
	nl := RippleCarryAdder(3)
	if err := nl.Verify(RippleCarryAdderSpec(3)); err != nil {
		t.Fatal(err)
	}
}

func TestMux4Verifies(t *testing.T) {
	nl, err := Mux4()
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Instances) == 0 {
		t.Fatal("empty mux")
	}
	// Verify() already ran inside Synthesize; sanity-check one vector.
	vals, err := nl.Evaluate(map[string]bool{
		"D0": false, "D1": true, "D2": false, "D3": false,
		"S0": true, "S1": false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !vals["Y"] {
		t.Fatal("mux4 should select D1")
	}
}

func TestDecoder2Verifies(t *testing.T) {
	nl, err := Decoder2()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := nl.Evaluate(map[string]bool{"En": true, "A": true, "B": false})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Y0": false, "Y1": true, "Y2": false, "Y3": false}
	for o, v := range want {
		if vals[o] != v {
			t.Fatalf("decoder %s = %v, want %v", o, vals[o], v)
		}
	}
}

func TestArrayMultiplier2Verifies(t *testing.T) {
	nl := ArrayMultiplier(2)
	if err := nl.Verify(ArrayMultiplierSpec(2)); err != nil {
		t.Fatal(err)
	}
	if len(nl.Inputs) != 4 || len(nl.Outputs) != 4 {
		t.Fatalf("ports = %d in / %d out, want 4/4", len(nl.Inputs), len(nl.Outputs))
	}
}

func TestArrayMultiplier4Verifies(t *testing.T) {
	if testing.Short() {
		t.Skip("256-vector exhaustive check over ~170 instances")
	}
	nl := ArrayMultiplier(4)
	if err := nl.Verify(ArrayMultiplierSpec(4)); err != nil {
		t.Fatal(err)
	}
	if len(nl.Inputs) != 8 || len(nl.Outputs) != 8 {
		t.Fatalf("ports = %d in / %d out, want 8/8", len(nl.Inputs), len(nl.Outputs))
	}
	for _, out := range nl.Outputs {
		if out[0] != 'P' {
			t.Fatalf("unexpected output name %q", out)
		}
	}
}

func TestArrayMultiplierSpecMatchesArithmetic(t *testing.T) {
	// Evaluate the spec directly against integer multiplication so the
	// netlist test above is not checking the spec against itself.
	spec := ArrayMultiplierSpec(3)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			in := map[string]bool{}
			for k := 0; k < 3; k++ {
				in[fmt.Sprintf("A%d", k)] = a>>uint(k)&1 == 1
				in[fmt.Sprintf("B%d", k)] = b>>uint(k)&1 == 1
			}
			p := a * b
			for k := 0; k < 6; k++ {
				want := p>>uint(k)&1 == 1
				if got := spec[fmt.Sprintf("P%d", k)].Eval(in); got != want {
					t.Fatalf("P%d(%d*%d) = %v, want %v", k, a, b, got, want)
				}
			}
		}
	}
}

// TestArrayMultiplier8Arithmetic verifies the 8-bit multiplier netlist
// directly against integer products. The folded Boolean spec is
// exponential to evaluate at this width (which is why the mult8 registry
// entry carries no Spec), but netlist evaluation is linear in gates, so
// a deterministic sample of the 65536-product space runs in milliseconds.
func TestArrayMultiplier8Arithmetic(t *testing.T) {
	nl := ArrayMultiplier(8)
	if len(nl.Inputs) != 16 || len(nl.Outputs) != 16 {
		t.Fatalf("ports = %d in / %d out, want 16/16", len(nl.Inputs), len(nl.Outputs))
	}
	check := func(a, b int) {
		in := map[string]bool{}
		for k := 0; k < 8; k++ {
			in[fmt.Sprintf("A%d", k)] = a>>uint(k)&1 == 1
			in[fmt.Sprintf("B%d", k)] = b>>uint(k)&1 == 1
		}
		vals, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		p := a * b
		for k := 0; k < 16; k++ {
			if want := p>>uint(k)&1 == 1; vals[fmt.Sprintf("P%d", k)] != want {
				t.Fatalf("P%d(%d*%d) = %v, want %v", k, a, b, vals[fmt.Sprintf("P%d", k)], want)
			}
		}
	}
	// Corners plus an LCG sample across the space.
	for _, c := range [][2]int{{0, 0}, {255, 255}, {255, 1}, {1, 255}, {0, 255}, {170, 85}} {
		check(c[0], c[1])
	}
	state := uint32(1)
	n := 256
	if testing.Short() {
		n = 32
	}
	for i := 0; i < n; i++ {
		state = state*1664525 + 1013904223
		check(int(state>>8&0xFF), int(state>>16&0xFF))
	}
}

func TestWriteVerilog(t *testing.T) {
	nl := FullAdder()
	var buf bytes.Buffer
	if err := nl.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"module fulladder (A, B, Cin, Sum, Carry);",
		"input A, B, Cin;",
		"output Sum, Carry;",
		"NAND2_2X g1 (.A(A), .B(B), .OUT(n1));",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("verilog missing %q\n%s", want, out)
		}
	}
	// Wires declared exactly once and not duplicating ports.
	if strings.Count(out, "wire ") != 1 {
		t.Fatal("expected a single wire declaration line")
	}
	if strings.Contains(strings.SplitN(out, "wire ", 2)[1], " Sum") {
		t.Fatal("output listed as wire")
	}
}
