package synth

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteVerilog emits the mapped netlist as structural Verilog, with each
// library cell as a module instance — the conventional hand-off format out
// of logic synthesis.
func (n *Netlist) WriteVerilog(w io.Writer) error {
	var b strings.Builder
	ports := append(append([]string{}, n.Inputs...), n.Outputs...)
	fmt.Fprintf(&b, "module %s (%s);\n", n.Name, strings.Join(ports, ", "))
	if len(n.Inputs) > 0 {
		fmt.Fprintf(&b, "  input %s;\n", strings.Join(n.Inputs, ", "))
	}
	if len(n.Outputs) > 0 {
		fmt.Fprintf(&b, "  output %s;\n", strings.Join(n.Outputs, ", "))
	}
	io_ := map[string]bool{}
	for _, p := range ports {
		io_[p] = true
	}
	var wires []string
	for _, net := range n.Nets() {
		if !io_[net] {
			wires = append(wires, net)
		}
	}
	if len(wires) > 0 {
		fmt.Fprintf(&b, "  wire %s;\n", strings.Join(wires, ", "))
	}
	for _, inst := range n.Instances {
		pins := make([]string, 0, len(inst.Conns))
		for p := range inst.Conns {
			pins = append(pins, p)
		}
		sort.Strings(pins)
		conns := make([]string, len(pins))
		for i, p := range pins {
			conns[i] = fmt.Sprintf(".%s(%s)", p, inst.Conns[p])
		}
		fmt.Fprintf(&b, "  %s %s (%s);\n", inst.Cell, inst.Name, strings.Join(conns, ", "))
	}
	fmt.Fprintf(&b, "endmodule\n")
	_, err := io.WriteString(w, b.String())
	return err
}
