package flow

import (
	"fmt"
	"sort"
	"sync"

	"cnfetdk/internal/logic"
	"cnfetdk/internal/synth"
)

// Circuit is one named benchmark the design service can run: a netlist
// builder, an optional exhaustive specification, and the default stimulus
// for the timing/energy analyses.
type Circuit struct {
	Name        string
	Description string
	// Build produces the gate-level netlist.
	Build func() (*synth.Netlist, error)
	// Spec returns the Boolean specification for exhaustive logic
	// verification (nil skips verification).
	Spec func() map[string]*logic.Expr
	// SpecSamples bounds the verification to a deterministic sample of
	// that many input vectors (0 = exhaustive). Wide circuits (rca8's
	// 17 inputs) set it so the netlist stage stays sub-second.
	SpecSamples int
	// Stimulus is the default delay/energy stimulus: static input
	// levels plus one pulsed input, chosen so primary outputs toggle.
	Stimulus Stimulus
	// Rows pins the row count of rows-based placements (0 = auto);
	// case studies that reproduce a specific paper figure set it.
	Rows int
}

var (
	registryMu sync.RWMutex
	registry   = map[string]*Circuit{}
)

// RegisterCircuit adds a circuit to the registry; duplicate names panic
// (registration is a program-init concern, like database/sql drivers).
func RegisterCircuit(c Circuit) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if c.Name == "" || c.Build == nil {
		panic("flow: RegisterCircuit needs a name and a builder")
	}
	if _, dup := registry[c.Name]; dup {
		panic(fmt.Sprintf("flow: duplicate circuit %q", c.Name))
	}
	cc := c
	registry[c.Name] = &cc
}

// LookupCircuit resolves a registry name; unknown names return
// ErrUnknownCircuit.
func LookupCircuit(name string) (*Circuit, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCircuit, name)
	}
	return c, nil
}

// Circuits lists the registered circuits sorted by name.
func Circuits() []*Circuit {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]*Circuit, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// The built-in benchmark set: the paper's full-adder case study plus
// circuits spanning the regimes the flow should cover — a wide
// carry-chain datapath, control-style multiplexing and decoding, a
// deep XOR tree, and a chain of the complex AOI/OAI cells of Table 1.
func init() {
	RegisterCircuit(Circuit{
		Name:        "fulladder",
		Description: "Fig 8a mirror-style full adder (case study 2)",
		Build:       func() (*synth.Netlist, error) { return synth.FullAdder(), nil },
		Spec:        synth.FullAdderSpec,
		// A=1, B=0 propagates Cin to both Sum (inverting) and Carry
		// (non-inverting) — the paper's measurement arcs.
		Stimulus: Stimulus{Static: map[string]bool{"A": true, "B": false}, Pulse: "Cin"},
		// The paper's case-study placements use two rows.
		Rows: 2,
	})
	RegisterCircuit(Circuit{
		Name:        "rca4",
		Description: "4-bit ripple-carry adder (4 structural full adders)",
		Build:       func() (*synth.Netlist, error) { return synth.RippleCarryAdder(4), nil },
		Spec:        func() map[string]*logic.Expr { return synth.RippleCarryAdderSpec(4) },
		// A=1111, B=0000 puts every bit in propagate mode: a pulse on
		// C0 ripples through the whole carry chain to C4.
		Stimulus: Stimulus{Static: map[string]bool{
			"A0": true, "A1": true, "A2": true, "A3": true,
			"B0": false, "B1": false, "B2": false, "B3": false,
		}, Pulse: "C0"},
	})
	RegisterCircuit(Circuit{
		Name:        "rca8",
		Description: "8-bit ripple-carry adder (8 structural full adders)",
		Build:       func() (*synth.Netlist, error) { return synth.RippleCarryAdder(8), nil },
		Spec:        func() map[string]*logic.Expr { return synth.RippleCarryAdderSpec(8) },
		// 17 inputs: exhaustive verification is 131072 vectors, so the
		// spec check runs on a deterministic 4096-vector sample.
		SpecSamples: 4096,
		// A=11111111, B=0: a pulse on C0 ripples through all eight
		// carry stages to C8 — the longest chain the solver sees short
		// of the multiplier.
		Stimulus: Stimulus{Static: map[string]bool{
			"A0": true, "A1": true, "A2": true, "A3": true,
			"A4": true, "A5": true, "A6": true, "A7": true,
			"B0": false, "B1": false, "B2": false, "B3": false,
			"B4": false, "B5": false, "B6": false, "B7": false,
		}, Pulse: "C0"},
	})
	RegisterCircuit(Circuit{
		Name:        "rca16",
		Description: "16-bit ripple-carry adder (16 structural full adders)",
		Build:       func() (*synth.Netlist, error) { return synth.RippleCarryAdder(16), nil },
		Spec:        func() map[string]*logic.Expr { return synth.RippleCarryAdderSpec(16) },
		// 33 inputs: verification runs on a deterministic 2048-vector
		// sample of the 2^33 space.
		SpecSamples: 2048,
		// A=0xFFFF, B=0: a pulse on C0 ripples through all sixteen carry
		// stages to C16 — the deep-chain STA stress case.
		Stimulus: Stimulus{Static: func() map[string]bool {
			s := map[string]bool{}
			for i := 0; i < 16; i++ {
				s[fmt.Sprintf("A%d", i)] = true
				s[fmt.Sprintf("B%d", i)] = false
			}
			return s
		}(), Pulse: "C0"},
	})
	RegisterCircuit(Circuit{
		Name:        "mult4",
		Description: "4-bit ripple-carry array multiplier (AND array + HA/FA rows)",
		Build:       func() (*synth.Netlist, error) { return synth.ArrayMultiplier(4), nil },
		Spec:        func() map[string]*logic.Expr { return synth.ArrayMultiplierSpec(4) },
		// A=1111, B=B0: P = 15·B0, so toggling B0 toggles P0..P3
		// through the partial-product array and two adder rows.
		Stimulus: Stimulus{Static: map[string]bool{
			"A0": true, "A1": true, "A2": true, "A3": true,
			"B1": false, "B2": false, "B3": false,
		}, Pulse: "B0"},
	})
	RegisterCircuit(Circuit{
		Name:        "mult8",
		Description: "8-bit ripple-carry array multiplier (AND array + HA/FA rows)",
		Build:       func() (*synth.Netlist, error) { return synth.ArrayMultiplier(8), nil },
		// No Spec: the folded multiplier specification's expression tree
		// is exponential to evaluate at 8 bits. The netlist's arithmetic
		// is instead verified directly against integer products in the
		// synth package's tests.
		// A=0xFF, B=B0: P = 255·B0, so toggling B0 toggles every product
		// bit through the partial-product array and seven adder rows.
		Stimulus: Stimulus{Static: func() map[string]bool {
			s := map[string]bool{}
			for i := 0; i < 8; i++ {
				s[fmt.Sprintf("A%d", i)] = true
				if i > 0 {
					s[fmt.Sprintf("B%d", i)] = false
				}
			}
			return s
		}(), Pulse: "B0"},
	})
	RegisterCircuit(Circuit{
		Name:        "mux2",
		Description: "2:1 multiplexer synthesized onto NAND2/INV",
		Build:       synth.Mux2,
		Spec:        synth.Mux2Spec,
		// D0=0, D1=1: Y follows the select.
		Stimulus: Stimulus{Static: map[string]bool{"D0": false, "D1": true}, Pulse: "S"},
	})
	RegisterCircuit(Circuit{
		Name:        "mux4",
		Description: "4:1 multiplexer synthesized onto NAND2/INV",
		Build:       synth.Mux4,
		// D0=1, siblings 0, S1=0: toggling S0 switches Y between D0
		// and D1.
		Stimulus: Stimulus{Static: map[string]bool{
			"D0": true, "D1": false, "D2": false, "D3": false, "S1": false,
		}, Pulse: "S0"},
	})
	RegisterCircuit(Circuit{
		Name:        "dec2",
		Description: "2:4 decoder with enable",
		Build:       synth.Decoder2,
		// En=1, B=0: toggling A moves the hot output between Y0 and Y1.
		Stimulus: Stimulus{Static: map[string]bool{"En": true, "B": false}, Pulse: "A"},
	})
	RegisterCircuit(Circuit{
		Name:        "parity4",
		Description: "4-input XOR parity tree",
		Build:       func() (*synth.Netlist, error) { return synth.ParityTree(4) },
		Spec:        func() map[string]*logic.Expr { return synth.ParityTreeSpec(4) },
		// Sibling inputs low: P = I0.
		Stimulus: Stimulus{Static: map[string]bool{
			"I1": false, "I2": false, "I3": false,
		}, Pulse: "I0"},
	})
	RegisterCircuit(Circuit{
		Name:        "aoichain4",
		Description: "4-stage alternating AOI21/OAI21 chain",
		Build:       func() (*synth.Netlist, error) { return synth.AOIChain(4), nil },
		Spec:        func() map[string]*logic.Expr { return synth.AOIChainSpec(4) },
		// P=1,Q=0 / R=0,S=1 degenerate every stage to an inverter, so a
		// pulse on IN traverses all four complex cells.
		Stimulus: Stimulus{Static: map[string]bool{
			"P": true, "Q": false, "R": false, "S": true,
		}, Pulse: "IN"},
	})
}
