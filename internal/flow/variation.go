package flow

import (
	"context"
	"fmt"
	"math"
	"sort"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/device"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/spice"
	"cnfetdk/internal/synth"
)

// runVarDelay measures the design's delay distribution under the
// variation model: it builds the same transistor-level testbench as
// runDelay once, then runs samples transients of it with per-device
// variations drawn seed-deterministically per lane. All lanes share
// one plan-sharing spice.Batch (they are Clones of one prototype, so
// the symbolic solver work is paid once) and fan out across the kit's
// worker pool; lane i's draws depend only on (seed, i), so the
// resulting distribution is identical at any worker count.
func (k *Kit) runVarDelay(ctx context.Context, lib *cells.Library, nl *synth.Netlist, wire map[string]float64, stim Stimulus, vr device.Variations, samples int, seed int64) (*DelayEnsemble, error) {
	lo, err := stimulusEnv(nl, stim, false)
	if err != nil {
		return nil, err
	}
	hi, err := stimulusEnv(nl, stim, true)
	if err != nil {
		return nil, err
	}
	loV, err := nl.Evaluate(lo)
	if err != nil {
		return nil, err
	}
	hiV, err := nl.Evaluate(hi)
	if err != nil {
		return nil, err
	}

	proto, _, err := k.BuildCircuit(lib, nl, wire)
	if err != nil {
		return nil, err
	}
	period := addStimulus(proto, stim)
	opt := spice.DefaultOptions()
	batch, err := spice.NewBatch(samples, proto, opt)
	if err != nil {
		return nil, fmt.Errorf("flow: vardelay batch plan: %w", err)
	}
	lanes := make([]int, samples)
	for i := range lanes {
		lanes[i] = i
	}
	delays, err := pipeline.MapCtx(ctx, k.workers, lanes, func(i int, _ int) (float64, error) {
		ckt := proto.Clone()
		s := vr.Sampler(seed, i)
		for j := range ckt.FETs {
			d := s.Draw(ckt.FETs[j].P.Tubes)
			d.Apply(&ckt.FETs[j].P)
		}
		r, err := ckt.TransientWith(batch.Lane(i), period, delaySteps, opt)
		if err != nil {
			return 0, fmt.Errorf("flow: vardelay sample %d: %w", i, err)
		}
		d, err := measureStimDelay(r, nl, stim, loV, hiV)
		if err != nil {
			return 0, fmt.Errorf("flow: vardelay sample %d: %w", i, err)
		}
		return d, nil
	})
	if err != nil {
		return nil, err
	}

	out := &DelayEnsemble{Samples: samples}
	out.MinS, out.MaxS = delays[0], delays[0]
	sum := 0.0
	for _, d := range delays {
		sum += d
		out.MinS = math.Min(out.MinS, d)
		out.MaxS = math.Max(out.MaxS, d)
	}
	out.MeanS = sum / float64(samples)
	ss := 0.0
	for _, d := range delays {
		ss += (d - out.MeanS) * (d - out.MeanS)
	}
	out.SigmaS = math.Sqrt(ss / float64(samples))
	return out, nil
}

// delayPeriod/delaySteps are the stimulus cycle of the design-level
// delay testbench (runDelay and runVarDelay share them).
const (
	delayPeriod = 4000e-12
	delaySteps  = 8000
)

// addStimulus wires the request stimulus into a built design circuit —
// DC sources on the static inputs, a full measurement cycle on the
// pulse input — and returns the cycle period. Statics are added in
// sorted order so circuits built from the same request are identical.
func addStimulus(ckt *spice.Circuit, stim Stimulus) float64 {
	statics := make([]string, 0, len(stim.Static))
	for in := range stim.Static {
		statics = append(statics, in)
	}
	sort.Strings(statics)
	for _, in := range statics {
		level := 0.0
		if stim.Static[in] {
			level = device.Vdd
		}
		ckt.AddV("vin."+in, in, "0", spice.DC(level))
	}
	ckt.AddV("vin."+stim.Pulse, stim.Pulse, "0", spice.Pulse{
		V0: 0, V1: device.Vdd, Delay: delayPeriod / 4,
		Rise: 5e-12, Fall: 5e-12, W: delayPeriod / 2, Period: delayPeriod,
	})
	return delayPeriod
}

// measureStimDelay averages the stimulus-to-output propagation delay
// over every primary output the pulse toggles: inverting arcs via the
// standard propagation-delay pair, non-inverting arcs via both
// same-direction edges. loV/hiV are the logic evaluations with the
// pulse low/high.
func measureStimDelay(r *spice.Result, nl *synth.Netlist, stim Stimulus, loV, hiV map[string]bool) (float64, error) {
	total, count := 0.0, 0
	for _, out := range nl.Outputs {
		if loV[out] == hiV[out] {
			continue // output insensitive to the pulse
		}
		var d float64
		var err error
		if loV[out] && !hiV[out] {
			// Inverting arc: the usual propagation-delay definition.
			d, err = r.PropDelay(stim.Pulse, out, device.Vdd)
			if err != nil {
				return 0, fmt.Errorf("%s arc: %w", out, err)
			}
		} else {
			// Non-inverting arc: measure both same-direction edges.
			dr, rerr := r.DelayPair(stim.Pulse, out, device.Vdd, true)
			if rerr != nil {
				return 0, fmt.Errorf("%s rise arc: %w", out, rerr)
			}
			df, ferr := r.DelayPair(stim.Pulse, out, device.Vdd, false)
			if ferr != nil {
				return 0, fmt.Errorf("%s fall arc: %w", out, ferr)
			}
			d = (dr + df) / 2
		}
		total += d
		count++
	}
	if count == 0 {
		return 0, fmt.Errorf("%w: stimulus toggles no primary output of %s", ErrBadRequest, nl.Name)
	}
	return total / float64(count), nil
}

// composeVariationYield folds the per-cell verdicts of the immunity
// stage into the design's functional yield: every instance of a cell
// contributes its devices' count and alignment yields, with the cell's
// break probability taken from its Monte Carlo sample when one ran
// (mcTubes > 0) and from the exhaustive critical-line fraction
// otherwise. Immune cells have break probability 0 either way, so a
// design of paper layouts loses yield only to count variation.
func composeVariationYield(lib *cells.Library, nl *synth.Netlist, vr device.Variations, byCell map[string]cellYieldInput) (*VariationYield, error) {
	vy := &VariationYield{CountYield: 1, AlignYield: 1}
	weightedBreak := 0.0
	for _, inst := range nl.Instances {
		in, ok := byCell[inst.Cell]
		if !ok {
			return nil, fmt.Errorf("flow: variation yield: no verdict for cell %s", inst.Cell)
		}
		for _, tubes := range in.tubes {
			vy.Devices++
			vy.Tubes += tubes
			weightedBreak += in.breakP * float64(tubes)
			vy.CountYield *= vr.CountYield(tubes)
			vy.AlignYield *= vr.AlignYield(tubes, in.breakP)
		}
	}
	if vy.Tubes > 0 {
		vy.MeanBreakP = weightedBreak / float64(vy.Tubes)
	}
	vy.FunctionalYield = vy.CountYield * vy.AlignYield
	return vy, nil
}

// cellYieldInput is one distinct cell's contribution to the design
// yield: its per-device nominal tube counts and its break probability.
type cellYieldInput struct {
	tubes  []int
	breakP float64
}
