package flow

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"cnfetdk/internal/device"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/place"
	"cnfetdk/internal/rules"
)

// Typed sentinel errors of the design-service API. Kit.Run wraps them
// with request detail; match with errors.Is.
var (
	// ErrBadRequest marks a structurally invalid request (no circuit,
	// conflicting sources, missing stimulus for a timing analysis, ...).
	ErrBadRequest = errors.New("flow: bad request")
	// ErrUnknownCircuit marks a circuit name absent from the registry.
	ErrUnknownCircuit = errors.New("flow: unknown circuit")
	// ErrUnknownTech marks a technology name that is neither CNFET nor
	// CMOS.
	ErrUnknownTech = errors.New("flow: unknown technology")
	// ErrUnknownAnalysis marks an analysis name outside Analyses.
	ErrUnknownAnalysis = errors.New("flow: unknown analysis")
	// ErrUnknownPlacement marks a placement scheme outside
	// {"", "rows", "shelves"}.
	ErrUnknownPlacement = errors.New("flow: unknown placement scheme")
)

// Analysis names a per-technology analysis a Request can ask for.
type Analysis string

// The supported analyses.
const (
	AnalysisArea     Analysis = "area"     // placement area/utilization
	AnalysisDelay    Analysis = "delay"    // transistor-level stimulus delay
	AnalysisSTA      Analysis = "sta"      // levelized static timing analysis
	AnalysisEnergy   Analysis = "energy"   // calibrated switching energy
	AnalysisImmunity Analysis = "immunity" // per-cell misaligned-CNT certificates
	AnalysisLiberty  Analysis = "liberty"  // Liberty (.lib) characterization
	AnalysisGDS      Analysis = "gds"      // GDSII stream of the placement
)

// Analyses lists every supported analysis in canonical order.
func Analyses() []Analysis {
	return []Analysis{AnalysisArea, AnalysisDelay, AnalysisSTA, AnalysisEnergy,
		AnalysisImmunity, AnalysisLiberty, AnalysisGDS}
}

// Stimulus describes how to exercise a circuit for the delay and energy
// analyses: static DC levels on some inputs and a pulse on one input.
// Registry circuits carry a default stimulus; inline requests supply
// their own.
type Stimulus struct {
	// Static assigns DC levels to inputs (true = Vdd).
	Static map[string]bool `json:"static,omitempty"`
	// Pulse names the input driven with the measurement pulse.
	Pulse string `json:"pulse,omitempty"`
}

// Request is one serializable design-service job: a circuit (by registry
// name, inline Boolean equations, or an inline structural netlist), the
// technologies to run it in, the placement scheme, the wire-capacitance
// model, and the set of analyses to perform.
type Request struct {
	// Circuit names a registry circuit. Exactly one of Circuit, Exprs,
	// Netlist must be set.
	Circuit string `json:"circuit,omitempty"`
	// Exprs maps output names to Boolean expressions (logic.Parse
	// syntax) to synthesize onto the NAND2/INV library.
	Exprs map[string]string `json:"exprs,omitempty"`
	// Netlist is an inline structural netlist in the synth.Parse format.
	Netlist string `json:"netlist,omitempty"`
	// Name overrides the design name for inline circuits.
	Name string `json:"name,omitempty"`

	// Techs selects the technologies ("cnfet", "cmos"); empty = both.
	Techs []string `json:"techs,omitempty"`
	// Placement selects the CNFET placement scheme: "rows" (scheme 1),
	// "shelves" (scheme 2, default). CMOS always places as rows.
	Placement string `json:"placement,omitempty"`
	// WireCapPerNM overrides the interconnect capacitance model
	// (F per nm of HPWL); 0 selects the kit default.
	WireCapPerNM float64 `json:"wire_cap_per_nm,omitempty"`

	// Analyses selects what to compute; empty = ["area"].
	Analyses []Analysis `json:"analyses,omitempty"`
	// Stimulus drives the delay/energy analyses; defaults to the
	// registry circuit's stimulus, and is required for inline circuits
	// that request them.
	Stimulus *Stimulus `json:"stimulus,omitempty"`
	// MCTubes adds a Monte Carlo sample of this many tubes per network
	// to the immunity analysis (0 = critical-line certificates only).
	MCTubes int `json:"mc_tubes,omitempty"`
	// MCAngleDeg bounds the Monte Carlo misalignment angle in degrees
	// (0 selects the paper's ±15°).
	MCAngleDeg float64 `json:"mc_angle_deg,omitempty"`
	// Seed seeds the immunity Monte Carlo sample and the variation
	// ensembles.
	Seed int64 `json:"seed,omitempty"`

	// CNT process-variation model (device.Variations, field for field).
	// All-zero (the default) disables variation modeling entirely and
	// reproduces pre-variation results byte-identically. A non-zero
	// count/diameter spread adds a delay-distribution ensemble to the
	// CNFET delay analysis; any non-zero channel makes the immunity
	// analysis compose a functional yield.
	CNTCountCV      float64 `json:"cnt_count_cv,omitempty"`
	DiameterSigmaNM float64 `json:"diameter_sigma_nm,omitempty"`
	AlignmentP      float64 `json:"alignment_p,omitempty"`
	// VarSamples sizes the per-design delay ensemble (0 selects
	// DefaultVarSamples when a variation spread is active).
	VarSamples int `json:"var_samples,omitempty"`

	// StageTimeoutMS arms a per-stage watchdog for this job: any single
	// pipeline stage running longer is cancelled and fails with a typed
	// pipeline.StageTimeoutError instead of hanging the request. 0
	// inherits the kit default (which itself defaults to off).
	StageTimeoutMS int `json:"stage_timeout_ms,omitempty"`
}

// DefaultVarSamples is the delay-ensemble size used when a request
// activates variation spreads without choosing one.
const DefaultVarSamples = 16

// MaxVarSamples bounds the per-request ensemble size: each sample is a
// full transistor-level transient of the design.
const MaxVarSamples = 1024

// variations collects the request's variation model.
func (r *Request) variations() device.Variations {
	return device.Variations{
		CountCV:         r.CNTCountCV,
		DiameterSigmaNM: r.DiameterSigmaNM,
		AlignmentP:      r.AlignmentP,
	}
}

// normalize resolves defaults and validates names; it returns the
// resolved technologies and analyses.
func (r *Request) normalize() ([]rules.Tech, []Analysis, error) {
	sources := 0
	if r.Circuit != "" {
		sources++
	}
	if len(r.Exprs) > 0 {
		sources++
	}
	if r.Netlist != "" {
		sources++
	}
	if sources != 1 {
		return nil, nil, fmt.Errorf("%w: exactly one of circuit, exprs, netlist must be set", ErrBadRequest)
	}

	techs := r.Techs
	if len(techs) == 0 {
		techs = []string{"cmos", "cnfet"}
	}
	var ts []rules.Tech
	seen := map[rules.Tech]bool{}
	for _, name := range techs {
		t, err := ParseTech(name)
		if err != nil {
			return nil, nil, err
		}
		if !seen[t] {
			seen[t] = true
			ts = append(ts, t)
		}
	}

	switch r.Placement {
	case "", "shelves", "rows":
	default:
		return nil, nil, fmt.Errorf("%w: %q (want rows or shelves)", ErrUnknownPlacement, r.Placement)
	}

	analyses := r.Analyses
	if len(analyses) == 0 {
		analyses = []Analysis{AnalysisArea}
	}
	known := map[Analysis]bool{}
	for _, a := range Analyses() {
		known[a] = true
	}
	var as []Analysis
	seenA := map[Analysis]bool{}
	for _, a := range analyses {
		a = Analysis(strings.ToLower(string(a)))
		if !known[a] {
			return nil, nil, fmt.Errorf("%w: %q", ErrUnknownAnalysis, a)
		}
		if !seenA[a] {
			seenA[a] = true
			as = append(as, a)
		}
	}
	if err := r.variations().Validate(); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if r.VarSamples < 0 || r.VarSamples > MaxVarSamples {
		return nil, nil, fmt.Errorf("%w: var_samples %d outside [0, %d]", ErrBadRequest, r.VarSamples, MaxVarSamples)
	}
	if r.StageTimeoutMS < 0 {
		return nil, nil, fmt.Errorf("%w: stage_timeout_ms %d is negative", ErrBadRequest, r.StageTimeoutMS)
	}
	return ts, as, nil
}

// Validate reports whether the request is well-formed without running it:
// the circuit source is unambiguous and every tech, placement and
// analysis name is known. Registry membership of Circuit is checked too.
func (r *Request) Validate() error {
	_, _, err := r.normalize()
	if err != nil {
		return err
	}
	if r.Circuit != "" {
		if _, err := LookupCircuit(r.Circuit); err != nil {
			return err
		}
	}
	return nil
}

// identity renders the circuit-source identity shared by every stage key
// — only what determines the netlist, so requests that differ in
// placement, analyses or models still share the synthesized-netlist
// cache entry (and every stage adds exactly the inputs it consumes).
// cacheSchema salts every key, so bumping the flow's computation version
// retires persisted artifact-store entries wholesale.
func (r *Request) identity() []any {
	base := []any{cacheSchema, r.Circuit, r.Netlist, r.Name}
	if len(r.Exprs) > 0 {
		outs := make([]string, 0, len(r.Exprs))
		for o := range r.Exprs {
			outs = append(outs, o)
		}
		sort.Strings(outs)
		for _, o := range outs {
			base = append(base, o+"="+r.Exprs[o])
		}
	}
	return base
}

// stageKey builds one stage's cache key from the circuit identity plus
// the stage-specific inputs.
func (r *Request) stageKey(parts ...any) string {
	return pipeline.Key(append(r.identity(), parts...)...)
}

// stimulusKeyParts renders a stimulus for cache keying in deterministic
// order.
func stimulusKeyParts(s Stimulus) []any {
	parts := []any{"pulse=" + s.Pulse}
	ins := make([]string, 0, len(s.Static))
	for i := range s.Static {
		ins = append(ins, i)
	}
	sort.Strings(ins)
	for _, i := range ins {
		parts = append(parts, fmt.Sprintf("%s=%v", i, s.Static[i]))
	}
	return parts
}

// ParseTech resolves a technology name ("cnfet" or "cmos", any case);
// unknown names return ErrUnknownTech.
func ParseTech(name string) (rules.Tech, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "cnfet":
		return rules.CNFET, nil
	case "cmos":
		return rules.CMOS, nil
	}
	return 0, fmt.Errorf("%w: %q (want cnfet or cmos)", ErrUnknownTech, name)
}

// ImmunityResult summarizes the immunity analysis of one technology: the
// deterministic critical-line certificate over every distinct cell of the
// design, plus an optional Monte Carlo sample.
type ImmunityResult struct {
	CellsChecked    int      `json:"cells_checked"`
	CriticalLines   int      `json:"critical_lines"`
	Violations      int      `json:"violations"`
	Immune          bool     `json:"immune"`
	VulnerableCells []string `json:"vulnerable_cells,omitempty"`
	MCTubes         int      `json:"mc_tubes,omitempty"`
	MCFailRate      float64  `json:"mc_fail_rate,omitempty"`

	// Variation is the composed functional yield of the whole design
	// under the request's variation model; nil when the model is zero
	// (which keeps zero-variation results byte-identical with
	// pre-variation runs).
	Variation *VariationYield `json:"variation,omitempty"`
}

// VariationYield composes the design's functional yield under CNT
// variations: the product over every cell instance's devices of the
// per-device count yield (no stuck-open devices) and alignment yield
// (no logic-breaking mispositioned tubes). See immunity.CellYield for
// the per-cell form and device.Variations for the distribution
// semantics.
type VariationYield struct {
	// Devices and Tubes count the design's transistors and their
	// nominal conducting tubes across all instances.
	Devices int `json:"devices"`
	Tubes   int `json:"tubes"`
	// MeanBreakP is the tube-weighted mean probability that a
	// mispositioned tube breaks its cell's logic (0 for a design of
	// immune cells — the paper's layouts).
	MeanBreakP float64 `json:"mean_break_p"`
	// CountYield, AlignYield, FunctionalYield factor the design yield
	// by failure mode; FunctionalYield is their product.
	CountYield      float64 `json:"count_yield"`
	AlignYield      float64 `json:"align_yield"`
	FunctionalYield float64 `json:"functional_yield"`
}

// DelayEnsemble summarizes the per-design delay distribution measured
// by the variation ensemble stage: VarSamples transistor-level
// transients of the whole design, each with independently drawn device
// variations, through one plan-sharing solver batch.
type DelayEnsemble struct {
	Samples int     `json:"samples"`
	MeanS   float64 `json:"mean_s"`
	SigmaS  float64 `json:"sigma_s"`
	MinS    float64 `json:"min_s"`
	MaxS    float64 `json:"max_s"`
}

// STAReport summarizes one technology's static timing analysis: the
// levelized, slew-aware engine run over the placed design's extracted
// wire loads. Where the delay analysis simulates one stimulus at the
// transistor level, STA covers every path through NLDM table lookups in
// milliseconds.
type STAReport struct {
	// DelayS is the design delay: the worst primary-output arrival time.
	DelayS float64 `json:"delay_s"`
	// WorstNet names the latest primary output.
	WorstNet string `json:"worst_net"`
	// CriticalPath lists nets from a primary input to WorstNet.
	CriticalPath []string `json:"critical_path,omitempty"`
	// Levels is the design's logic depth; Instances its gate count.
	Levels    int `json:"levels"`
	Instances int `json:"instances"`
	// InstanceDelay maps each instance to the delay of the arc on its own
	// worst input path, so summing along the critical path reproduces
	// DelayS.
	InstanceDelay map[string]float64 `json:"instance_delay,omitempty"`
}

// TechResult carries one technology's requested analyses.
type TechResult struct {
	Tech string `json:"tech"`

	// Placement metrics (area analysis).
	AreaLam2    float64 `json:"area_lam2,omitempty"`
	WidthLam    float64 `json:"width_lam,omitempty"`
	HeightLam   float64 `json:"height_lam,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`

	// Timing/energy (delay, energy analyses).
	DelayS  float64 `json:"delay_s,omitempty"`
	EnergyJ float64 `json:"energy_j,omitempty"`

	// VarDelay is the delay distribution under the request's variation
	// model (delay analysis with a non-zero count/diameter spread,
	// CNFET only).
	VarDelay *DelayEnsemble `json:"var_delay,omitempty"`

	// STA is the static timing report (sta analysis).
	STA *STAReport `json:"sta,omitempty"`

	Immunity *ImmunityResult `json:"immunity,omitempty"`

	// Liberty is the characterized .lib text (liberty analysis,
	// restricted to the cells the design uses).
	Liberty string `json:"liberty,omitempty"`

	// GDS is the placement's GDSII stream (gds analysis); base64 in
	// JSON per encoding/json convention.
	GDS []byte `json:"gds,omitempty"`

	// Placement is the in-process placement object for follow-on flow
	// steps; it does not serialize.
	Placement *place.Placement `json:"-"`
}

// StageTrace is the serializable record of one executed pipeline stage.
type StageTrace struct {
	Stage  string  `json:"stage"`
	Millis float64 `json:"ms"`
	Cached bool    `json:"cached,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// Result is the JSON-stable outcome of one Kit.Run job.
type Result struct {
	Circuit   string   `json:"circuit"`
	Instances int      `json:"instances"`
	Nets      int      `json:"nets"`
	Inputs    []string `json:"inputs"`
	Outputs   []string `json:"outputs"`

	// Techs holds one entry per requested technology, keyed by the
	// lower-case technology name.
	Techs map[string]*TechResult `json:"techs"`

	// Gains reports CMOS-over-CNFET ratios for the scalar analyses when
	// both technologies ran (keys "area", "delay", "energy").
	Gains map[string]float64 `json:"gains,omitempty"`

	// Stages traces every pipeline stage the job executed.
	Stages []StageTrace `json:"stages"`
}
