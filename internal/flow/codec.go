package flow

import (
	"encoding/json"
	"fmt"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/liberty"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/place"
	"cnfetdk/internal/synth"
)

// cacheSchema salts every stage cache key with the flow's computation
// version. Bump it whenever a change alters what any stage computes
// without altering its inputs (a solver fix, a model recalibration, a
// placement heuristic change): persisted artifact-store entries keyed
// under the old salt then read as misses instead of stale results.
// Codec format changes are versioned separately, in each codec's @vN
// name suffix; on-disk container changes in store.Namespace.
// v2: the spice solver core switched the MNA assembly to a static/
// nonlinear stamping split and the FET linearization to analytic
// derivatives — converged results agree within solver tolerance but the
// low-order bits of simulated stage payloads (delays, energies,
// waveform-derived metrics) can shift, so v1 artifacts must not be
// served against v2 computations.
// v3: the solver core gained a sparse LU path with a fill-reducing
// ordering — the elimination order differs from dense partial-pivot LU,
// so converged waveforms (and everything derived from them) drift in
// the low-order FP bits on circuits above the dense/sparse crossover.
// v4: characterization grew the input-slew axis — the liberty stage's
// .lib text now carries 2-D (slew × load) templates and transition
// tables, so v3 liberty artifacts describe a different model and must
// read as misses (the nldm and sta stages are new under this salt).
const cacheSchema = "cnfetdk/flow@v4"

// The registered codecs of the flow's serializable stage results. Every
// stage Kit.Run schedules declares one of these (or a per-kit placement
// codec below), which is what lets the artifact store's disk tier serve
// a stage in a process that never computed it.
var (
	codecNetlist  = pipeline.RegisterCodec(pipeline.JSONCodec[*synth.Netlist]("flow/netlist@v1"))
	codecWireCaps = pipeline.RegisterCodec(pipeline.JSONCodec[map[string]float64]("flow/wirecaps@v1"))
	codecScalar   = pipeline.RegisterCodec(pipeline.JSONCodec[float64]("flow/scalar@v1"))
	codecImmunity = pipeline.RegisterCodec(pipeline.JSONCodec[*ImmunityResult]("flow/immunity@v1"))
	codecVarDelay = pipeline.RegisterCodec(pipeline.JSONCodec[*DelayEnsemble]("flow/vardelay@v1"))
	codecLiberty  = pipeline.RegisterCodec(pipeline.JSONCodec[string]("flow/liberty@v1"))
	codecNLDM     = pipeline.RegisterCodec(pipeline.JSONCodec[*liberty.Model]("flow/nldm@v1"))
	codecSTA      = pipeline.RegisterCodec(pipeline.JSONCodec[*STAReport]("flow/sta@v1"))
	codecGDS      = pipeline.RegisterCodec(pipeline.RawCodec("flow/gds@v1"))
)

// placedCellJSON is the serialized form of one placed cell: everything
// but the library cell pointer, which decode re-resolves by name.
type placedCellJSON struct {
	Inst synth.Instance `json:"inst"`
	X    geom.Coord     `json:"x"`
	Y    geom.Coord     `json:"y"`
	W    geom.Coord     `json:"w"`
	H    geom.Coord     `json:"h"`
}

// placementJSON is the serialized form of a placement.
type placementJSON struct {
	Name        string           `json:"name"`
	Scheme      layout.Scheme    `json:"scheme"`
	Cells       []placedCellJSON `json:"cells"`
	Width       geom.Coord       `json:"width"`
	Height      geom.Coord       `json:"height"`
	NaturalArea float64          `json:"natural_area"`
}

// placementCodec serializes *place.Placement against a specific library:
// cell pointers are stored as names and re-resolved on decode, which is
// sound because library construction is deterministic and the stage key
// already pins the technology and its design rules. A decode against a
// library missing the named cell fails, which the store treats as a miss
// and recomputes.
func placementCodec(lib *cells.Library) pipeline.Codec {
	return pipeline.NewCodec("flow/placement@v1",
		func(v any) ([]byte, error) {
			p, ok := v.(*place.Placement)
			if !ok {
				return nil, fmt.Errorf("flow: placement codec: encoding %T", v)
			}
			out := placementJSON{
				Name: p.Name, Scheme: p.Scheme,
				Width: p.Width, Height: p.Height, NaturalArea: p.NaturalArea,
				Cells: make([]placedCellJSON, len(p.Cells)),
			}
			for i, pc := range p.Cells {
				out.Cells[i] = placedCellJSON{Inst: pc.Inst, X: pc.X, Y: pc.Y, W: pc.W, H: pc.H}
			}
			return json.Marshal(out)
		},
		func(data []byte) (any, error) {
			var in placementJSON
			if err := json.Unmarshal(data, &in); err != nil {
				return nil, err
			}
			p := &place.Placement{
				Name: in.Name, Scheme: in.Scheme,
				Width: in.Width, Height: in.Height, NaturalArea: in.NaturalArea,
				Cells: make([]place.PlacedCell, len(in.Cells)),
			}
			for i, pc := range in.Cells {
				c, err := lib.Get(pc.Inst.Cell)
				if err != nil {
					return nil, fmt.Errorf("flow: placement codec: %w", err)
				}
				p.Cells[i] = place.PlacedCell{Inst: pc.Inst, Cell: c, X: pc.X, Y: pc.Y, W: pc.W, H: pc.H}
			}
			return p, nil
		})
}
