package flow

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
)

// TestZeroVariationReproducesGoldens pins the paper's case-study
// numbers and the zero-variation compatibility contract: a request with
// all variation knobs at zero (with or without an explicit ensemble
// size) computes exactly what the pre-variation flow computed — same
// stage keys, same results, byte-identical JSON.
func TestZeroVariationReproducesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("transient-heavy")
	}
	k := kit(t)
	plain := Request{Circuit: "fulladder", Analyses: []Analysis{AnalysisArea, AnalysisDelay}}
	res, err := k.Run(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	// The PR 5/6 goldens: CMOS full-adder area 22572 λ², delay gain
	// 3.57x. Area is exact (integral λ²); the gain is a deterministic
	// solver output, pinned to 4 decimal places.
	if a := res.Techs["cmos"].AreaLam2; a != 22572 {
		t.Fatalf("CMOS full-adder area = %v λ², want the 22572 golden", a)
	}
	if g := fmt.Sprintf("%.4f", res.Gains["delay"]); g != "3.5733" {
		t.Fatalf("full-adder delay gain = %s, want the 3.5733 golden", g)
	}

	// Explicit zero variation knobs (and a non-zero VarSamples, which
	// only matters when a spread is active) must not change a single
	// byte: same stage keys, same cached results, no ensemble fields.
	withVar := plain
	withVar.VarSamples = 16
	vres, err := k.Run(context.Background(), withVar)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{res, vres} {
		r.Stages = nil // execution trace differs (cached flags), outcome must not
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(vres)
	if string(a) != string(b) {
		t.Fatalf("zero-variation result bytes differ:\n%s\n%s", a, b)
	}
	if vres.Techs["cnfet"].VarDelay != nil {
		t.Fatal("zero-variation run grew a delay ensemble")
	}
}

func TestVariationDelayEnsemble(t *testing.T) {
	if testing.Short() {
		t.Skip("transient-heavy")
	}
	k := kit(t)
	req := Request{
		Circuit:         "mux2",
		Techs:           []string{"cnfet", "cmos"},
		Analyses:        []Analysis{AnalysisDelay},
		CNTCountCV:      0.2,
		DiameterSigmaNM: 0.05,
		VarSamples:      4,
		Seed:            3,
	}
	res, err := k.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	vd := res.Techs["cnfet"].VarDelay
	if vd == nil {
		t.Fatal("active spread produced no CNFET delay ensemble")
	}
	if vd.Samples != 4 || vd.MeanS <= 0 || vd.SigmaS <= 0 {
		t.Fatalf("ensemble %+v, want 4 samples with positive mean and sigma", vd)
	}
	if vd.MinS > vd.MeanS || vd.MeanS > vd.MaxS || vd.MinS <= 0 {
		t.Fatalf("ensemble %+v violates 0 < min <= mean <= max", vd)
	}
	// CNT variations are a CNFET phenomenon: the CMOS reference never
	// grows an ensemble.
	if res.Techs["cmos"].VarDelay != nil {
		t.Fatal("CMOS result grew a delay ensemble")
	}

	// Deterministic across a fresh kit (no cache inheritance).
	k2, err := NewKit()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := k2.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if *res2.Techs["cnfet"].VarDelay != *vd {
		t.Fatalf("ensemble not reproducible on a fresh kit:\n%+v\n%+v", vd, res2.Techs["cnfet"].VarDelay)
	}
}

func TestVariationImmunityYield(t *testing.T) {
	if testing.Short() {
		t.Skip("flow")
	}
	k := kit(t)
	res, err := k.Run(context.Background(), Request{
		Circuit:    "mux2",
		Techs:      []string{"cnfet"},
		Analyses:   []Analysis{AnalysisImmunity},
		CNTCountCV: 0.2,
		AlignmentP: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	im := res.Techs["cnfet"].Immunity
	if im == nil || im.Variation == nil {
		t.Fatalf("immunity = %+v, want a composed variation yield", im)
	}
	vy := im.Variation
	if vy.Devices <= 0 || vy.Tubes < vy.Devices {
		t.Fatalf("accounting %+v", vy)
	}
	// The registry cells are immune, so mispositioned tubes never break
	// logic: alignment yield is exactly 1 and the whole yield is the
	// count factor.
	if vy.MeanBreakP != 0 || vy.AlignYield != 1 {
		t.Fatalf("immune design: break_p=%g align=%g, want 0 and 1", vy.MeanBreakP, vy.AlignYield)
	}
	if vy.CountYield <= 0 || vy.CountYield >= 1 {
		t.Fatalf("count yield %g, want in (0, 1) under a 20%% CV", vy.CountYield)
	}
	if vy.FunctionalYield != vy.CountYield*vy.AlignYield {
		t.Fatalf("functional yield %g is not the factor product", vy.FunctionalYield)
	}

	// Without variation knobs the immunity result stays exactly as
	// before — no Variation field at all.
	plain, err := k.Run(context.Background(), Request{
		Circuit: "mux2", Techs: []string{"cnfet"}, Analyses: []Analysis{AnalysisImmunity},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Techs["cnfet"].Immunity.Variation != nil {
		t.Fatal("zero-variation immunity grew a Variation field")
	}
}

func TestVariationRequestValidation(t *testing.T) {
	k := kit(t)
	ctx := context.Background()
	bad := []Request{
		{Circuit: "mux2", CNTCountCV: -0.1},
		{Circuit: "mux2", DiameterSigmaNM: -1},
		{Circuit: "mux2", AlignmentP: 1.5},
		{Circuit: "mux2", VarSamples: -1},
		{Circuit: "mux2", VarSamples: MaxVarSamples + 1},
	}
	for _, req := range bad {
		if _, err := k.Run(ctx, req); err == nil {
			t.Errorf("request %+v passed validation", req)
		}
	}
}
