package flow

import (
	"errors"
	"testing"

	"cnfetdk/internal/synth"
)

func TestRegistryCircuitsBuildAndVerify(t *testing.T) {
	cs := Circuits()
	if len(cs) < 4 {
		t.Fatalf("registry holds %d circuits, want >= 4", len(cs))
	}
	for _, c := range cs {
		nl, err := c.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", c.Name, err)
		}
		if len(nl.Instances) == 0 || len(nl.Outputs) == 0 {
			t.Fatalf("%s: empty netlist", c.Name)
		}
		if c.Spec != nil {
			// Honor each circuit's sample bound: rca8's 17 inputs make
			// the exhaustive scan 131072 vectors.
			if err := nl.VerifySampled(c.Spec(), c.SpecSamples); err != nil {
				t.Fatalf("%s: spec verification: %v", c.Name, err)
			}
		}
		// The default stimulus must cover the inputs and toggle at
		// least one output — the contract the delay analysis relies on.
		lo, err := stimulusEnv(nl, c.Stimulus, false)
		if err != nil {
			t.Fatalf("%s: stimulus: %v", c.Name, err)
		}
		hi, _ := stimulusEnv(nl, c.Stimulus, true)
		loV, err := nl.Evaluate(lo)
		if err != nil {
			t.Fatalf("%s: evaluate: %v", c.Name, err)
		}
		hiV, _ := nl.Evaluate(hi)
		toggles := false
		for _, out := range nl.Outputs {
			if loV[out] != hiV[out] {
				toggles = true
			}
		}
		if !toggles {
			t.Errorf("%s: stimulus toggles no output", c.Name)
		}
	}
}

func TestLookupCircuitUnknown(t *testing.T) {
	if _, err := LookupCircuit("nonesuch"); !errors.Is(err, ErrUnknownCircuit) {
		t.Fatalf("err = %v, want ErrUnknownCircuit", err)
	}
}

func TestRegisterCircuitDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	RegisterCircuit(Circuit{Name: "fulladder", Build: func() (*synth.Netlist, error) { return nil, nil }})
}
