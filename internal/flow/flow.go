// Package flow wires the design kit together into the paper's
// logic-to-GDSII flow (Fig 5) and exposes it as a generic design service:
// a serializable Request (circuit, technologies, placement scheme,
// wire-cap model, analyses) executed by Kit.Run(ctx, Request) against a
// named-circuit registry, returning a JSON-stable Result with per-stage
// traces. The full-adder case study (Section V.B) is one registry entry;
// RunFullAdder survives as a deprecated wrapper over Run.
//
// The flow runs on the staged pipeline engine (internal/pipeline):
// library construction, placements and transistor-level simulations
// execute as stages of a dependency graph with bounded parallelism and
// cooperative context cancellation, and every stage result is memoized in
// a kit-scoped content-keyed cache, so repeated or concurrent identical
// jobs skip work already done. See DESIGN.md.
package flow

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/device"
	"cnfetdk/internal/fault"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/place"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/spice"
	"cnfetdk/internal/store"
	"cnfetdk/internal/synth"
)

// WireCapPerNM is the default interconnect capacitance per nanometre of
// estimated (HPWL) net length used when back-annotating placements:
// 0.06 fF/µm, a local-metal value at the 65nm node (routed global wires
// run ~2x higher). Because CNFET gates present far smaller input/output
// capacitances than CMOS, this shared wire load is what pulls the
// full-adder gains below the inverter-chain gains, exactly as in the
// paper's case study 2. Override per kit with WithWireCap or per request
// with Request.WireCapPerNM.
const WireCapPerNM = 0.06e-18

// Kit is the technology pair needed for CMOS-vs-CNFET comparisons, plus
// the pipeline machinery (worker pool width, memo cache, stage trace) the
// flow entry points run on. One kit serves concurrent Run jobs; its
// libraries are read-only after construction and its cache is
// singleflight-safe.
type Kit struct {
	CNFET *cells.Library
	CMOS  *cells.Library

	libs map[rules.Tech]*cells.Library
	// rulesKey digests each library's full design-rule struct once at
	// construction; stage keys embed the digest instead of re-formatting
	// the 12-field struct on every (possibly fully cached) Run.
	rulesKey     map[rules.Tech]string
	cache        *pipeline.Cache
	trace        *pipeline.Trace
	workers      int
	wireCap      float64
	faults       *fault.Injector
	stageTimeout time.Duration
}

// Options tunes kit construction and flow execution; prefer the
// functional Option form with New.
type Options struct {
	// Workers bounds every pool the kit runs (library build fan-out,
	// stage graphs); <= 0 selects one worker per CPU, 1 is the
	// sequential reference path.
	Workers int
	// Trace, when set, receives per-stage timing reports from library
	// construction and every flow graph the kit runs.
	Trace *pipeline.Trace
	// WireCapPerNM overrides the default interconnect capacitance model
	// (F per nm of HPWL); 0 selects the package default.
	WireCapPerNM float64
	// CacheEntries bounds the kit's in-memory stage cache (0 =
	// unbounded), evicted least-recently-used; set it on long-running
	// servers so client-varied requests cannot grow the cache without
	// limit.
	CacheEntries int
	// StoreDir, when non-empty, layers a persistent content-addressed
	// artifact store under the memory cache at this directory: stage
	// results survive the process, so a fresh kit (a daemon restart, a
	// new CLI invocation, a resumed sweep) warm-starts from results an
	// earlier one computed. The directory may be shared by concurrent
	// processes.
	StoreDir string
	// StoreBudget bounds the disk store's total bytes; past it the
	// oldest entries are evicted (0 = unbounded). Ignored without
	// StoreDir.
	StoreBudget int64
	// Faults arms the kit's fault-injection points (flow stages, the
	// artifact store, the SPICE solver); nil — the default — is free.
	Faults *fault.Injector
	// StageTimeout is the kit-default per-stage watchdog: a stage that
	// runs past it is cancelled and fails with a typed
	// pipeline.StageTimeoutError. 0 disables; Request.StageTimeoutMS
	// overrides per job.
	StageTimeout time.Duration
}

// Option is a functional kit-construction option.
type Option func(*Options)

// WithWorkers bounds every pool the kit runs (<= 0 selects one worker per
// CPU, 1 is the sequential reference path).
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithTrace attaches a per-stage timing sink to the kit.
func WithTrace(t *pipeline.Trace) Option { return func(o *Options) { o.Trace = t } }

// WithWireCap overrides the kit's default wire-capacitance model
// (F per nm of estimated net length).
func WithWireCap(fPerNM float64) Option { return func(o *Options) { o.WireCapPerNM = fPerNM } }

// WithCacheLimit bounds the kit's in-memory stage cache to n completed
// entries, evicted least-recently-used (n <= 0 keeps it unbounded).
func WithCacheLimit(n int) Option { return func(o *Options) { o.CacheEntries = n } }

// WithStore layers a persistent artifact store at dir under the kit's
// memory cache: serializable stage results are written through to disk
// and served back — byte-identically — to any later kit opened on the
// same directory, including in other processes.
func WithStore(dir string) Option { return func(o *Options) { o.StoreDir = dir } }

// WithStoreBudget bounds the persistent store to maxBytes, evicting the
// oldest entries past it (0 = unbounded; needs WithStore).
func WithStoreBudget(maxBytes int64) Option { return func(o *Options) { o.StoreBudget = maxBytes } }

// WithFaults arms the kit's fault-injection points with a compiled
// schedule; nil (the default) disables injection at zero cost.
func WithFaults(inj *fault.Injector) Option { return func(o *Options) { o.Faults = inj } }

// WithStageTimeout arms the kit-default per-stage watchdog (0
// disables). See Options.StageTimeout.
func WithStageTimeout(d time.Duration) Option { return func(o *Options) { o.StageTimeout = d } }

// kitTechs is the technology table one constructor serves.
var kitTechs = []rules.Tech{rules.CNFET, rules.CMOS}

// New builds the kit under ctx: both technology libraries run through one
// table-driven constructor as concurrent stages of a build graph
// (cancellable mid-build), and the kit's memo cache starts empty.
func New(ctx context.Context, opts ...Option) (*Kit, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	if o.WireCapPerNM == 0 {
		o.WireCapPerNM = WireCapPerNM
	}
	mem := pipeline.NewMemory(o.CacheEntries)
	var st pipeline.Store = mem
	if o.StoreDir != "" {
		disk, err := store.Open(o.StoreDir, store.WithBudget(o.StoreBudget), store.WithInjector(o.Faults))
		if err != nil {
			return nil, fmt.Errorf("flow: artifact store: %w", err)
		}
		st = pipeline.NewTiered(mem, disk)
	}
	k := &Kit{
		libs:         map[rules.Tech]*cells.Library{},
		rulesKey:     map[rules.Tech]string{},
		cache:        pipeline.NewCacheStore(st),
		trace:        o.Trace,
		workers:      o.Workers,
		wireCap:      o.WireCapPerNM,
		faults:       o.Faults,
		stageTimeout: o.StageTimeout,
	}
	g := pipeline.NewGraph(nil, o.Workers).Trace(o.Trace)
	for _, tech := range kitTechs {
		tech := tech
		g.AddFunc("lib/"+strings.ToLower(tech.String()), "", nil, func(map[string]any) (any, error) {
			lib, err := cells.NewLibraryCtx(ctx, tech, cells.BuildOptions{Workers: o.Workers, Trace: o.Trace})
			if err != nil {
				return nil, fmt.Errorf("flow: build %s library: %w", tech, err)
			}
			return lib, nil
		})
	}
	res, err := g.RunCtx(ctx)
	if err != nil {
		return nil, err
	}
	for _, tech := range kitTechs {
		lib := res["lib/"+strings.ToLower(tech.String())].Value.(*cells.Library)
		k.libs[tech] = lib
		k.rulesKey[tech] = pipeline.Key("rules", lib.Rules)
	}
	k.CNFET, k.CMOS = k.libs[rules.CNFET], k.libs[rules.CMOS]
	return k, nil
}

// NewKit builds both libraries through the pipeline with default options.
func NewKit() (*Kit, error) { return New(context.Background()) }

// NewKitOpts builds the kit from an Options struct.
//
// Deprecated: use New with functional options.
func NewKitOpts(opts Options) (*Kit, error) {
	return New(context.Background(), func(o *Options) { *o = opts })
}

// LibFor selects the library for a technology; unknown technologies
// return ErrUnknownTech.
func (k *Kit) LibFor(t rules.Tech) (*cells.Library, error) {
	if lib, ok := k.libs[t]; ok {
		return lib, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrUnknownTech, int(t))
}

// Lib selects the library for a technology, silently falling back to
// CNFET for unknown technologies (the historical behaviour).
//
// Deprecated: use LibFor, which rejects unknown technologies with
// ErrUnknownTech instead of masking them.
func (k *Kit) Lib(t rules.Tech) *cells.Library {
	if lib, ok := k.libs[t]; ok {
		return lib
	}
	return k.CNFET
}

// Trace returns the kit's stage-report sink (nil unless configured).
func (k *Kit) Trace() *pipeline.Trace { return k.trace }

// CacheLen reports how many stage results the kit's memo cache holds.
func (k *Kit) CacheLen() int { return k.cache.Len() }

// CacheStats snapshots the kit's artifact store: memory-tier counters
// always, disk-tier counters when the kit was built WithStore.
func (k *Kit) CacheStats() pipeline.StoreStats { return k.cache.Stats() }

// PurgeCache drops every completed stage result from every store tier
// (memory and, when configured, disk). In-flight computations finish and
// re-populate normally.
func (k *Kit) PurgeCache() error { return k.cache.Purge() }

// BuildCircuit instantiates a netlist into a spice circuit, tying primary
// inputs to the given node names (callers add sources) and loading each
// net with wireCapF (net name -> farads). The supply source index is
// returned for energy probing.
func (k *Kit) BuildCircuit(lib *cells.Library, nl *synth.Netlist, wireCapF map[string]float64) (*spice.Circuit, int, error) {
	ckt := spice.New()
	vdd := ckt.AddV("vdd", "VDD", "0", spice.DC(device.Vdd))
	for _, inst := range nl.Instances {
		c, err := lib.Get(inst.Cell)
		if err != nil {
			return nil, 0, fmt.Errorf("flow: %s: %w", inst.Name, err)
		}
		conns := map[string]string{}
		for pin, net := range inst.Conns {
			conns[pin] = net
		}
		if err := lib.Instantiate(ckt, inst.Name, c, conns); err != nil {
			return nil, 0, err
		}
	}
	for net, capF := range wireCapF {
		if capF > 0 && ckt.HasNode(net) {
			ckt.AddC("cw."+net, net, "0", capF)
		}
	}
	return ckt, vdd, nil
}

// WireCaps converts placement HPWL (λ) into lumped net capacitances with
// the package-default wire model.
func WireCaps(p *place.Placement, nl *synth.Netlist, lambdaNM float64) map[string]float64 {
	return WireCapsWith(p, nl, lambdaNM, WireCapPerNM)
}

// WireCapsWith converts placement HPWL (λ) into lumped net capacitances
// under an explicit capacitance-per-nm model.
func WireCapsWith(p *place.Placement, nl *synth.Netlist, lambdaNM, capPerNM float64) map[string]float64 {
	out := map[string]float64{}
	for net, l := range p.HPWL(nl) {
		out[net] = l * lambdaNM * capPerNM
	}
	return out
}

// FullAdderResult aggregates case study 2.
type FullAdderResult struct {
	// Transistor-level propagation delays (s): average of the Sum and
	// Carry arcs from Cin.
	DelayCNFET float64
	DelayCMOS  float64
	// Energy per input cycle (J), from the calibrated per-gate energy
	// model plus wire energy over the switching activity.
	EnergyCNFET float64
	EnergyCMOS  float64
	// Placement areas (λ²).
	AreaCMOS   float64
	AreaS1     float64
	AreaS2     float64
	UtilS1     float64
	UtilS2     float64
	Placements struct {
		CMOS, S1, S2 *place.Placement
	}
}

// DelayGain returns CMOS/CNFET delay.
func (r *FullAdderResult) DelayGain() float64 { return r.DelayCMOS / r.DelayCNFET }

// EnergyGain returns CMOS/CNFET energy.
func (r *FullAdderResult) EnergyGain() float64 { return r.EnergyCMOS / r.EnergyCNFET }

// AreaGainS1 returns CMOS/scheme-1 area.
func (r *FullAdderResult) AreaGainS1() float64 { return r.AreaCMOS / r.AreaS1 }

// AreaGainS2 returns CMOS/scheme-2 area.
func (r *FullAdderResult) AreaGainS2() float64 { return r.AreaCMOS / r.AreaS2 }

// RunFullAdder executes case study 2 end to end through the generic job
// API: one Run over the scheme-2 "fulladder" registry request (areas,
// delays, energies for both technologies) plus a scheme-1 area request,
// both memoized in the kit's cache. Callers must treat the result as
// shared and read-only.
//
// Deprecated: use Run with Request{Circuit: "fulladder"}.
func (k *Kit) RunFullAdder() (*FullAdderResult, error) {
	// The aggregate is memoized alongside the stage results so repeated
	// calls share one read-only *FullAdderResult, as they always have.
	v, _, err := k.cache.Do(pipeline.Key("fulladder", "aggregate", k.wireCap), func() (any, error) {
		ctx := context.Background()
		s2, err := k.Run(ctx, Request{
			Circuit:  "fulladder",
			Analyses: []Analysis{AnalysisArea, AnalysisDelay, AnalysisEnergy},
		})
		if err != nil {
			return nil, err
		}
		s1, err := k.Run(ctx, Request{
			Circuit:   "fulladder",
			Techs:     []string{"cnfet"},
			Placement: "rows",
			Analyses:  []Analysis{AnalysisArea},
		})
		if err != nil {
			return nil, err
		}
		cm, cn, cn1 := s2.Techs["cmos"], s2.Techs["cnfet"], s1.Techs["cnfet"]
		res := &FullAdderResult{
			DelayCNFET:  cn.DelayS,
			DelayCMOS:   cm.DelayS,
			EnergyCNFET: cn.EnergyJ,
			EnergyCMOS:  cm.EnergyJ,
			AreaCMOS:    cm.AreaLam2,
			AreaS1:      cn1.AreaLam2,
			AreaS2:      cn.AreaLam2,
			UtilS1:      cn1.Utilization,
			UtilS2:      cn.Utilization,
		}
		res.Placements.CMOS, res.Placements.S1, res.Placements.S2 = cm.Placement, cn1.Placement, cn.Placement
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*FullAdderResult), nil
}

// FullAdderGDS renders the scheme-2 full-adder placement to a GDSII byte
// stream through the generic job API, memoized alongside the other stage
// results.
//
// Deprecated: use Run with Request{Circuit: "fulladder", Analyses:
// []Analysis{AnalysisGDS}}.
func (k *Kit) FullAdderGDS() ([]byte, error) {
	res, err := k.Run(context.Background(), Request{
		Circuit:  "fulladder",
		Techs:    []string{"cnfet"},
		Analyses: []Analysis{AnalysisGDS},
	})
	if err != nil {
		return nil, err
	}
	return res.Techs["cnfet"].GDS, nil
}

// driveOf parses the strength suffix of a cell name ("NAND2_2X" -> 2).
func driveOf(cell string) float64 {
	i := strings.LastIndex(cell, "_")
	if i < 0 {
		return 1
	}
	var d float64
	if _, err := fmt.Sscanf(cell[i+1:], "%fX", &d); err == nil && d > 0 {
		return d
	}
	return 1
}

// CellAreaGain reports the case-study-1 inverter area gain at a given
// transistor width multiple (1 = 4λ): CMOS scheme-1 cell area over CNFET
// scheme-1 cell area.
func (k *Kit) CellAreaGain(widthMult float64) (float64, error) {
	name := fmt.Sprintf("INV_%gX", widthMult)
	cn, err := k.CNFET.Get(name)
	if err != nil {
		return 0, err
	}
	cm, err := k.CMOS.Get(name)
	if err != nil {
		return 0, err
	}
	// Height-only comparison per the paper's formula (common row width).
	hCN := cn.Layout.PUN.BBox.H() + cn.Layout.PDN.BBox.H() + k.CNFET.Rules.NetworkGap
	hCM := cm.Layout.PUN.BBox.H() + cm.Layout.PDN.BBox.H() + k.CMOS.Rules.NetworkGap
	return float64(hCM) / float64(hCN), nil
}
