// Package flow wires the design kit together into the paper's
// logic-to-GDSII flow (Fig 5): synthesized netlists are mapped onto the
// cell library, placed (CMOS rows, scheme-1 rows, scheme-2 shelves),
// annotated with wire parasitics, simulated at the transistor level, and
// exported as GDSII streams. The full-adder case study (Section V.B) is a
// single call.
//
// The flow runs on the staged pipeline engine (internal/pipeline): library
// construction, placements and transistor-level simulations execute as
// stages of a dependency graph with bounded parallelism, and every stage
// result is memoized in a kit-scoped content-keyed cache, so repeated runs
// (benchmarks, sweeps) skip work already done. See DESIGN.md.
package flow

import (
	"bytes"
	"fmt"
	"strings"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/device"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/place"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/spice"
	"cnfetdk/internal/synth"
)

// WireCapPerNM is the interconnect capacitance per nanometre of estimated
// (HPWL) net length used when back-annotating placements: 0.06 fF/µm, a
// local-metal value at the 65nm node (routed global wires run ~2x higher).
// Because CNFET gates present far smaller input/output capacitances than
// CMOS, this shared wire load is what pulls the full-adder gains below the
// inverter-chain gains, exactly as in the paper's case study 2.
const WireCapPerNM = 0.06e-18

// Kit is the technology pair needed for CMOS-vs-CNFET comparisons, plus
// the pipeline machinery (worker pool width, memo cache, stage trace) the
// flow entry points run on.
type Kit struct {
	CNFET *cells.Library
	CMOS  *cells.Library

	libs    map[rules.Tech]*cells.Library
	cache   *pipeline.Cache
	trace   *pipeline.Trace
	workers int
}

// Options tunes kit construction and flow execution.
type Options struct {
	// Workers bounds every pool the kit runs (library build fan-out,
	// stage graphs); <= 0 selects one worker per CPU, 1 is the
	// sequential reference path.
	Workers int
	// Trace, when set, receives per-stage timing reports from library
	// construction and every flow graph the kit runs.
	Trace *pipeline.Trace
}

// kitTechs is the technology table one constructor serves.
var kitTechs = []rules.Tech{rules.CNFET, rules.CMOS}

// NewKit builds both libraries through the pipeline with default options.
func NewKit() (*Kit, error) { return NewKitOpts(Options{}) }

// NewKitOpts builds the kit: both technologies run through one
// table-driven constructor as concurrent stages of a build graph, and the
// kit's memo cache is initialized empty.
func NewKitOpts(opts Options) (*Kit, error) {
	k := &Kit{
		libs:    map[rules.Tech]*cells.Library{},
		cache:   pipeline.NewCache(),
		trace:   opts.Trace,
		workers: opts.Workers,
	}
	g := pipeline.NewGraph(nil, opts.Workers).Trace(opts.Trace)
	for _, tech := range kitTechs {
		tech := tech
		g.AddFunc("lib/"+strings.ToLower(tech.String()), "", nil, func(map[string]any) (any, error) {
			lib, err := cells.NewLibraryOpts(tech, cells.BuildOptions{Workers: opts.Workers, Trace: opts.Trace})
			if err != nil {
				return nil, fmt.Errorf("flow: build %s library: %w", tech, err)
			}
			return lib, nil
		})
	}
	res, err := g.Run()
	if err != nil {
		return nil, err
	}
	for _, tech := range kitTechs {
		k.libs[tech] = res["lib/"+strings.ToLower(tech.String())].Value.(*cells.Library)
	}
	k.CNFET, k.CMOS = k.libs[rules.CNFET], k.libs[rules.CMOS]
	return k, nil
}

// Lib selects the library for a technology (unknown technologies fall
// back to CNFET, matching the historical behaviour).
func (k *Kit) Lib(t rules.Tech) *cells.Library {
	if lib, ok := k.libs[t]; ok {
		return lib
	}
	return k.CNFET
}

// Trace returns the kit's stage-report sink (nil unless configured).
func (k *Kit) Trace() *pipeline.Trace { return k.trace }

// CacheLen reports how many stage results the kit's memo cache holds.
func (k *Kit) CacheLen() int { return k.cache.Len() }

// BuildCircuit instantiates a netlist into a spice circuit, tying primary
// inputs to the given node names (callers add sources) and loading each
// net with wireCapF (net name -> farads). The supply source index is
// returned for energy probing.
func (k *Kit) BuildCircuit(lib *cells.Library, nl *synth.Netlist, wireCapF map[string]float64) (*spice.Circuit, int, error) {
	ckt := spice.New()
	vdd := ckt.AddV("vdd", "VDD", "0", spice.DC(device.Vdd))
	for _, inst := range nl.Instances {
		c, err := lib.Get(inst.Cell)
		if err != nil {
			return nil, 0, fmt.Errorf("flow: %s: %w", inst.Name, err)
		}
		conns := map[string]string{}
		for pin, net := range inst.Conns {
			conns[pin] = net
		}
		if err := lib.Instantiate(ckt, inst.Name, c, conns); err != nil {
			return nil, 0, err
		}
	}
	for net, capF := range wireCapF {
		if capF > 0 && ckt.HasNode(net) {
			ckt.AddC("cw."+net, net, "0", capF)
		}
	}
	return ckt, vdd, nil
}

// WireCaps converts placement HPWL (λ) into lumped net capacitances.
func WireCaps(p *place.Placement, nl *synth.Netlist, lambdaNM float64) map[string]float64 {
	out := map[string]float64{}
	for net, l := range p.HPWL(nl) {
		out[net] = l * lambdaNM * WireCapPerNM
	}
	return out
}

// FullAdderResult aggregates case study 2.
type FullAdderResult struct {
	// Transistor-level propagation delays (s): average of the Sum and
	// Carry arcs from Cin.
	DelayCNFET float64
	DelayCMOS  float64
	// Energy per input cycle (J), from the calibrated per-gate energy
	// model plus wire energy over the switching activity.
	EnergyCNFET float64
	EnergyCMOS  float64
	// Placement areas (λ²).
	AreaCMOS   float64
	AreaS1     float64
	AreaS2     float64
	UtilS1     float64
	UtilS2     float64
	Placements struct {
		CMOS, S1, S2 *place.Placement
	}
}

// DelayGain returns CMOS/CNFET delay.
func (r *FullAdderResult) DelayGain() float64 { return r.DelayCMOS / r.DelayCNFET }

// EnergyGain returns CMOS/CNFET energy.
func (r *FullAdderResult) EnergyGain() float64 { return r.EnergyCMOS / r.EnergyCNFET }

// AreaGainS1 returns CMOS/scheme-1 area.
func (r *FullAdderResult) AreaGainS1() float64 { return r.AreaCMOS / r.AreaS1 }

// AreaGainS2 returns CMOS/scheme-2 area.
func (r *FullAdderResult) AreaGainS2() float64 { return r.AreaCMOS / r.AreaS2 }

// faKey builds a cache key for one full-adder stage. The kit's cache is
// kit-scoped, so the key only needs to capture the stage identity and the
// flow inputs that could vary across kit configurations.
func (k *Kit) faKey(stage string, tech rules.Tech) string {
	return pipeline.Key("fulladder", stage, tech.String(),
		k.Lib(tech).Rules.LambdaNM, WireCapPerNM)
}

// RunFullAdder executes case study 2 end to end as a pipeline graph:
// netlist synthesis, the three placements, parasitic extraction, the two
// transistor-level simulations and the energy models run as stages with
// bounded parallelism, memoized in the kit's cache — a repeated run
// returns the cached result without re-simulating. Callers must treat the
// result as shared and read-only.
func (k *Kit) RunFullAdder() (*FullAdderResult, error) {
	g := pipeline.NewGraph(k.cache, k.workers).Trace(k.trace)

	g.AddFunc("netlist", k.faKey("netlist", rules.CNFET), nil, func(map[string]any) (any, error) {
		nl := synth.FullAdder()
		if err := nl.Verify(synth.FullAdderSpec()); err != nil {
			return nil, fmt.Errorf("flow: full adder netlist: %w", err)
		}
		return nl, nil
	})

	// Placement stages: CMOS rows, scheme-1 rows, scheme-2 shelves.
	placeStage := func(name string, tech rules.Tech, run func(*synth.Netlist) (*place.Placement, error)) {
		g.AddFunc(name, k.faKey(name, tech), []string{"netlist"}, func(d map[string]any) (any, error) {
			return run(d["netlist"].(*synth.Netlist))
		})
	}
	placeStage("place/cmos", rules.CMOS, func(nl *synth.Netlist) (*place.Placement, error) {
		return place.Rows(k.CMOS, nl, 2)
	})
	placeStage("place/s1", rules.CNFET, func(nl *synth.Netlist) (*place.Placement, error) {
		return place.Rows(k.CNFET, nl, 2)
	})
	placeStage("place/s2", rules.CNFET, func(nl *synth.Netlist) (*place.Placement, error) {
		return place.Shelves(k.CNFET, nl, 0)
	})

	// Extraction: placement HPWL -> lumped wire capacitances.
	wireStage := func(name, placeDep string, tech rules.Tech) {
		g.AddFunc(name, k.faKey(name, tech), []string{"netlist", placeDep}, func(d map[string]any) (any, error) {
			return WireCaps(d[placeDep].(*place.Placement), d["netlist"].(*synth.Netlist), k.Lib(tech).Rules.LambdaNM), nil
		})
	}
	wireStage("wire/cnfet", "place/s2", rules.CNFET)
	wireStage("wire/cmos", "place/cmos", rules.CMOS)

	// Transistor-level simulation of the Cin arcs.
	simStage := func(name, wireDep string, tech rules.Tech) {
		g.AddFunc(name, k.faKey(name, tech), []string{"netlist", wireDep}, func(d map[string]any) (any, error) {
			dly, err := k.faDelay(k.Lib(tech), d["netlist"].(*synth.Netlist), d[wireDep].(map[string]float64))
			if err != nil {
				return nil, fmt.Errorf("flow: %s delay: %w", tech, err)
			}
			return dly, nil
		})
	}
	simStage("sim/cnfet", "wire/cnfet", rules.CNFET)
	simStage("sim/cmos", "wire/cmos", rules.CMOS)

	// Calibrated switching-energy model over the placed design.
	energyStage := func(name, placeDep string, tech rules.Tech) {
		g.AddFunc(name, k.faKey(name, tech), []string{"netlist", placeDep}, func(d map[string]any) (any, error) {
			return k.faEnergy(tech, d["netlist"].(*synth.Netlist), d[placeDep].(*place.Placement)), nil
		})
	}
	energyStage("energy/cnfet", "place/s2", rules.CNFET)
	energyStage("energy/cmos", "place/cmos", rules.CMOS)

	g.AddFunc("result", k.faKey("result", rules.CNFET), []string{
		"place/cmos", "place/s1", "place/s2",
		"sim/cnfet", "sim/cmos", "energy/cnfet", "energy/cmos",
	}, func(d map[string]any) (any, error) {
		pCM := d["place/cmos"].(*place.Placement)
		p1 := d["place/s1"].(*place.Placement)
		p2 := d["place/s2"].(*place.Placement)
		res := &FullAdderResult{
			DelayCNFET:  d["sim/cnfet"].(float64),
			DelayCMOS:   d["sim/cmos"].(float64),
			EnergyCNFET: d["energy/cnfet"].(float64),
			EnergyCMOS:  d["energy/cmos"].(float64),
		}
		res.AreaCMOS, res.AreaS1, res.AreaS2 = pCM.Area(), p1.Area(), p2.Area()
		res.UtilS1, res.UtilS2 = p1.Utilization(), p2.Utilization()
		res.Placements.CMOS, res.Placements.S1, res.Placements.S2 = pCM, p1, p2
		return res, nil
	})

	results, err := g.Run()
	if err != nil {
		return nil, err
	}
	return results["result"].Value.(*FullAdderResult), nil
}

// FullAdderGDS renders the scheme-2 full-adder placement to a GDSII byte
// stream — the flow's final synth → place → extract → sim → gds stage —
// memoized in the kit's cache alongside the other stage results.
func (k *Kit) FullAdderGDS() ([]byte, error) {
	res, err := k.RunFullAdder()
	if err != nil {
		return nil, err
	}
	v, _, err := k.cache.Do(k.faKey("gds/s2", rules.CNFET), func() (any, error) {
		var buf bytes.Buffer
		if err := WritePlacementGDS(&buf, k.CNFET, res.Placements.S2, "FULLADDER_S2"); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// faDelay simulates the full adder with A=1, B=0 and a pulsed Cin, so both
// Sum (= Cin') and Carry (= Cin) switch; returns the average of the two
// arc delays.
func (k *Kit) faDelay(lib *cells.Library, nl *synth.Netlist, wire map[string]float64) (float64, error) {
	ckt, _, err := k.BuildCircuit(lib, nl, wire)
	if err != nil {
		return 0, err
	}
	period := 4000e-12
	ckt.AddV("va", "A", "0", spice.DC(device.Vdd))
	ckt.AddV("vb", "B", "0", spice.DC(0))
	ckt.AddV("vcin", "Cin", "0", spice.Pulse{
		V0: 0, V1: device.Vdd, Delay: period / 4,
		Rise: 5e-12, Fall: 5e-12, W: period / 2, Period: period,
	})
	r, err := ckt.Transient(period, 8000, spice.DefaultOptions())
	if err != nil {
		return 0, err
	}
	dSum, err := r.PropDelay("Cin", "Sum", device.Vdd)
	if err != nil {
		return 0, fmt.Errorf("sum arc: %w", err)
	}
	// Carry is non-inverting from Cin: measure both edges directly.
	dcr, err := r.DelayPair("Cin", "Carry", device.Vdd, true)
	if err != nil {
		return 0, fmt.Errorf("carry rise arc: %w", err)
	}
	dcf, err := r.DelayPair("Cin", "Carry", device.Vdd, false)
	if err != nil {
		return 0, fmt.Errorf("carry fall arc: %w", err)
	}
	return (dSum + (dcr+dcf)/2) / 2, nil
}

// faEnergy evaluates the per-cycle switching energy with the calibrated
// gate-energy model: toggling nets are found by logic simulation of the
// Cin cycle (A=1, B=0), each toggling gate output contributes its
// technology's per-cycle energy scaled by drive, plus wire energy.
func (k *Kit) faEnergy(tech rules.Tech, nl *synth.Netlist, p *place.Placement) float64 {
	lo, _ := nl.Evaluate(map[string]bool{"A": true, "B": false, "Cin": false})
	hi, _ := nl.Evaluate(map[string]bool{"A": true, "B": false, "Cin": true})
	fo4 := device.DefaultFO4()
	nOpt := fo4.OptimalN(60)
	wire := WireCaps(p, nl, rules.Default65nm(tech).LambdaNM)
	total := 0.0
	for _, inst := range nl.Instances {
		out := inst.Conns["OUT"]
		if lo[out] == hi[out] {
			continue // no switching on this arc
		}
		drive := driveOf(inst.Cell)
		var gate float64
		if tech == rules.CNFET {
			gate = fo4.EnergyFJ(nOpt) * 1e-15 * drive
		} else {
			gate = device.CMOSEnergyfJ * 1e-15 * drive
		}
		total += gate + wire[out]*device.Vdd*device.Vdd
	}
	return total
}

// driveOf parses the strength suffix of a cell name ("NAND2_2X" -> 2).
func driveOf(cell string) float64 {
	i := strings.LastIndex(cell, "_")
	if i < 0 {
		return 1
	}
	var d float64
	if _, err := fmt.Sscanf(cell[i+1:], "%fX", &d); err == nil && d > 0 {
		return d
	}
	return 1
}

// CellAreaGain reports the case-study-1 inverter area gain at a given
// transistor width multiple (1 = 4λ): CMOS scheme-1 cell area over CNFET
// scheme-1 cell area.
func (k *Kit) CellAreaGain(widthMult float64) (float64, error) {
	name := fmt.Sprintf("INV_%gX", widthMult)
	cn, err := k.CNFET.Get(name)
	if err != nil {
		return 0, err
	}
	cm, err := k.CMOS.Get(name)
	if err != nil {
		return 0, err
	}
	// Height-only comparison per the paper's formula (common row width).
	hCN := cn.Layout.PUN.BBox.H() + cn.Layout.PDN.BBox.H() + k.CNFET.Rules.NetworkGap
	hCM := cm.Layout.PUN.BBox.H() + cm.Layout.PDN.BBox.H() + k.CMOS.Rules.NetworkGap
	return float64(hCM) / float64(hCN), nil
}
