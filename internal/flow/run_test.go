package flow

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"cnfetdk/internal/gdsii"
)

func TestRunRegistryCircuitsBothTechs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-circuit flow")
	}
	k := kit(t)
	// Four registry circuits across both technologies; the cheap
	// analyses run everywhere, the transistor-level ones on the small
	// circuits.
	cases := []struct {
		circuit  string
		analyses []Analysis
	}{
		{"fulladder", []Analysis{AnalysisArea, AnalysisDelay, AnalysisEnergy, AnalysisImmunity}},
		{"mux2", []Analysis{AnalysisArea, AnalysisDelay, AnalysisEnergy, AnalysisImmunity}},
		{"aoichain4", []Analysis{AnalysisArea, AnalysisDelay, AnalysisEnergy, AnalysisImmunity}},
		{"rca4", []Analysis{AnalysisArea, AnalysisImmunity}},
		{"parity4", []Analysis{AnalysisArea, AnalysisImmunity}},
	}
	for _, tc := range cases {
		res, err := k.Run(context.Background(), Request{Circuit: tc.circuit, Analyses: tc.analyses})
		if err != nil {
			t.Fatalf("%s: %v", tc.circuit, err)
		}
		if res.Instances == 0 || len(res.Techs) != 2 {
			t.Fatalf("%s: instances=%d techs=%d, want >0 and 2", tc.circuit, res.Instances, len(res.Techs))
		}
		cm, cn := res.Techs["cmos"], res.Techs["cnfet"]
		if cm.AreaLam2 <= 0 || cn.AreaLam2 <= 0 {
			t.Fatalf("%s: areas %v/%v, want > 0", tc.circuit, cm.AreaLam2, cn.AreaLam2)
		}
		if g := res.Gains["area"]; g <= 1 {
			t.Errorf("%s: CNFET area gain %.2f, want > 1", tc.circuit, g)
		}
		if cn.Immunity == nil || !cn.Immunity.Immune || cn.Immunity.CellsChecked == 0 {
			t.Errorf("%s: CNFET immunity = %+v, want immune over >0 cells", tc.circuit, cn.Immunity)
		}
		if cm.Immunity != nil {
			t.Errorf("%s: CMOS carries an immunity result", tc.circuit)
		}
		for _, a := range tc.analyses {
			if a != AnalysisDelay {
				continue
			}
			if cn.DelayS <= 0 || cm.DelayS <= cn.DelayS {
				t.Errorf("%s: delays cnfet=%.3g cmos=%.3g, want 0 < cnfet < cmos",
					tc.circuit, cn.DelayS, cm.DelayS)
			}
			if cn.EnergyJ <= 0 || cm.EnergyJ <= cn.EnergyJ {
				t.Errorf("%s: energies cnfet=%.3g cmos=%.3g, want 0 < cnfet < cmos",
					tc.circuit, cn.EnergyJ, cm.EnergyJ)
			}
		}
		if len(res.Stages) == 0 {
			t.Errorf("%s: no stage traces", tc.circuit)
		}
	}
}

func TestRunInlineExprs(t *testing.T) {
	if testing.Short() {
		t.Skip("flow")
	}
	k := kit(t)
	res, err := k.Run(context.Background(), Request{
		Exprs:    map[string]string{"Y": "A*B + !A*C"},
		Name:     "muxlike",
		Techs:    []string{"CNFET"},
		Analyses: []Analysis{AnalysisArea, AnalysisGDS},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Techs["cnfet"]
	if tr.AreaLam2 <= 0 || len(tr.GDS) == 0 {
		t.Fatalf("area=%v gds=%d bytes, want both populated", tr.AreaLam2, len(tr.GDS))
	}
	lib, err := gdsii.Read(bytes.NewReader(tr.GDS))
	if err != nil {
		t.Fatalf("GDS stream unreadable: %v", err)
	}
	if lib.Find("MUXLIKE_S2") == nil {
		t.Fatal("missing top structure MUXLIKE_S2")
	}
}

func TestRunInlineNetlist(t *testing.T) {
	if testing.Short() {
		t.Skip("flow")
	}
	k := kit(t)
	res, err := k.Run(context.Background(), Request{
		Netlist:  "module pair\ninput A B\noutput Y\nu1 NAND2_1X A=A B=B OUT=n1\nu2 INV_1X A=n1 OUT=Y\nendmodule\n",
		Techs:    []string{"cnfet"},
		Stimulus: &Stimulus{Static: map[string]bool{"B": true}, Pulse: "A"},
		Analyses: []Analysis{AnalysisArea, AnalysisDelay},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit != "pair" || res.Techs["cnfet"].DelayS <= 0 {
		t.Fatalf("circuit=%q delay=%v, want pair with positive delay", res.Circuit, res.Techs["cnfet"].DelayS)
	}
}

func TestRunSentinelErrors(t *testing.T) {
	k := kit(t)
	ctx := context.Background()
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"unknown circuit", Request{Circuit: "nonesuch"}, ErrUnknownCircuit},
		{"unknown tech", Request{Circuit: "mux2", Techs: []string{"finfet"}}, ErrUnknownTech},
		{"unknown analysis", Request{Circuit: "mux2", Analyses: []Analysis{"power"}}, ErrUnknownAnalysis},
		{"unknown placement", Request{Circuit: "mux2", Placement: "spiral"}, ErrUnknownPlacement},
		{"no source", Request{}, ErrBadRequest},
		{"two sources", Request{Circuit: "mux2", Netlist: "module x\nendmodule"}, ErrBadRequest},
		{"delay without stimulus", Request{
			Netlist:  "module x\ninput A\noutput Y\nu1 INV_1X A=A OUT=Y\nendmodule",
			Analyses: []Analysis{AnalysisDelay},
		}, ErrBadRequest},
		{"immunity without cnfet", Request{
			Circuit: "mux2", Techs: []string{"cmos"},
			Analyses: []Analysis{AnalysisImmunity},
		}, ErrBadRequest},
	}
	for _, tc := range cases {
		if _, err := k.Run(ctx, tc.req); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestLibForUnknownTech(t *testing.T) {
	k := kit(t)
	if _, err := k.LibFor(99); !errors.Is(err, ErrUnknownTech) {
		t.Fatalf("LibFor(99) err = %v, want ErrUnknownTech", err)
	}
	// The deprecated accessor keeps the historical CNFET fallback.
	if lib := k.Lib(99); lib != k.CNFET {
		t.Fatal("deprecated Lib must keep the CNFET fallback")
	}
}

func TestRunCancelledContext(t *testing.T) {
	k := kit(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := k.CacheLen()
	_, err := k.Run(ctx, Request{Circuit: "dec2", Analyses: []Analysis{AnalysisArea}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if after := k.CacheLen(); after != before {
		t.Fatalf("cancelled run changed the cache: %d -> %d entries", before, after)
	}
	// The same request under a live context runs clean — no poisoned
	// partial entries survive the cancellation.
	res, err := k.Run(context.Background(), Request{Circuit: "dec2", Analyses: []Analysis{AnalysisArea}})
	if err != nil {
		t.Fatalf("rerun after cancellation: %v", err)
	}
	if res.Techs["cnfet"].AreaLam2 <= 0 {
		t.Fatal("rerun produced no area")
	}
}

func TestRunResultJSONStable(t *testing.T) {
	if testing.Short() {
		t.Skip("flow")
	}
	k := kit(t)
	req := Request{Circuit: "mux2", Analyses: []Analysis{AnalysisArea}}
	res, err := k.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Circuit != res.Circuit || back.Techs["cnfet"].AreaLam2 != res.Techs["cnfet"].AreaLam2 {
		t.Fatal("Result does not round-trip through JSON")
	}
	// Requests round-trip too: the wire format is the API.
	rblob, _ := json.Marshal(req)
	var rback Request
	if err := json.Unmarshal(rblob, &rback); err != nil {
		t.Fatal(err)
	}
	if rback.Circuit != "mux2" || len(rback.Analyses) != 1 {
		t.Fatal("Request does not round-trip through JSON")
	}
}

func TestRunHitsCacheOnRepeat(t *testing.T) {
	if testing.Short() {
		t.Skip("flow")
	}
	k := kit(t)
	req := Request{Circuit: "parity4", Analyses: []Analysis{AnalysisArea}}
	if _, err := k.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	res, err := k.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	cachedAny := false
	for _, st := range res.Stages {
		if st.Cached {
			cachedAny = true
		}
	}
	if !cachedAny {
		t.Fatal("repeated run hit no cached stages")
	}

	// The default placement ("") and an explicit "shelves" are the same
	// computation and must share cache entries; a placement change must
	// not invalidate the netlist stage either.
	for _, variant := range []Request{
		{Circuit: "parity4", Placement: "shelves", Analyses: []Analysis{AnalysisArea}},
		{Circuit: "parity4", Placement: "rows", Analyses: []Analysis{AnalysisArea}},
	} {
		vres, err := k.Run(context.Background(), variant)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range vres.Stages {
			if st.Stage == "netlist" && !st.Cached {
				t.Errorf("placement %q recomputed the netlist stage", variant.Placement)
			}
			if variant.Placement == "shelves" && !st.Cached {
				t.Errorf("explicit shelves recomputed stage %s despite the default-placement run", st.Stage)
			}
		}
	}
}
