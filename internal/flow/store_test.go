package flow_test

// Artifact-store integration tests: warm-starting a fresh kit (a fresh
// process, morally — nothing is shared but the store directory) from
// stage results a previous kit persisted, and the determinism contract
// across the three serving paths (cold compute, memory tier, disk tier).

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"cnfetdk/internal/flow"
	"cnfetdk/internal/sweep"
)

// canonicalJSON renders a Result with its execution trace stripped: what
// must stay byte-identical across cold, memory and disk serving paths.
func canonicalJSON(t *testing.T, res *flow.Result) string {
	t.Helper()
	c := *res
	c.Stages = nil
	blob, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// allStagesCached reports whether every stage of a result was served
// from cache, with the first miss named for diagnostics.
func allStagesCached(res *flow.Result) (bool, string) {
	for _, st := range res.Stages {
		if !st.Cached {
			return false, st.Stage
		}
	}
	return true, ""
}

// TestKitWarmStartsFromDisk is the acceptance scenario: a cold Kit.Run
// in "process" A, then the same request in a fresh kit B sharing only
// the store directory. B must serve every stage from the disk tier,
// byte-identically, and far faster than the cold run.
func TestKitWarmStartsFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow in -short mode")
	}
	ctx := context.Background()
	dir := t.TempDir()
	req := flow.Request{
		Circuit:  "fulladder",
		Analyses: []flow.Analysis{flow.AnalysisArea, flow.AnalysisDelay, flow.AnalysisEnergy},
	}

	kitA, err := flow.New(ctx, flow.WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	resA, err := kitA.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(t0)
	if st := kitA.CacheStats(); st.Disk == nil || st.Disk.Puts == 0 {
		t.Fatalf("cold run persisted nothing: %+v", st)
	}

	kitB, err := flow.New(ctx, flow.WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	t1 := time.Now()
	resB, err := kitB.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	warm := time.Since(t1)

	if ok, miss := allStagesCached(resB); !ok {
		t.Fatalf("warm-process stage %q was recomputed", miss)
	}
	st := kitB.CacheStats()
	if st.Disk == nil || st.Disk.Hits == 0 {
		t.Fatalf("warm process hit the disk tier 0 times: %+v", st)
	}
	if a, b := canonicalJSON(t, resA), canonicalJSON(t, resB); a != b {
		t.Fatalf("disk-served result differs from cold result:\n%s\n%s", a, b)
	}
	// The cache-correctness assertions above are the real contract; wall
	// time is logged for the acceptance record but only an egregious miss
	// fails, so a scheduling stall on a loaded CI runner (which can eat
	// the nominal ~100x margin) does not flake the test.
	t.Logf("cold %v, warm %v (%.0fx)", cold, warm, float64(cold)/float64(warm))
	if warm*2 > cold {
		t.Errorf("warm run %v is not even 2x below cold %v", warm, cold)
	}
}

// TestColdMemoryDiskPathsByteIdentical exercises every registered codec
// (netlist, placement, wire caps, scalars, immunity, liberty, gds) and
// asserts the canonical result is byte-identical on all three serving
// paths.
func TestColdMemoryDiskPathsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow in -short mode")
	}
	ctx := context.Background()
	dir := t.TempDir()
	req := flow.Request{
		Circuit: "mux2",
		Analyses: []flow.Analysis{flow.AnalysisArea, flow.AnalysisDelay, flow.AnalysisEnergy,
			flow.AnalysisImmunity, flow.AnalysisLiberty, flow.AnalysisGDS},
		MCTubes: 8,
		Seed:    3,
	}

	kitA, err := flow.New(ctx, flow.WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := kitA.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	memRes, err := kitA.Run(ctx, req) // same kit: memory tier
	if err != nil {
		t.Fatal(err)
	}
	if ok, miss := allStagesCached(memRes); !ok {
		t.Fatalf("memory-path stage %q was recomputed", miss)
	}

	kitB, err := flow.New(ctx, flow.WithStore(dir)) // fresh kit: disk tier
	if err != nil {
		t.Fatal(err)
	}
	diskRes, err := kitB.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if ok, miss := allStagesCached(diskRes); !ok {
		t.Fatalf("disk-path stage %q was recomputed", miss)
	}

	cold := canonicalJSON(t, coldRes)
	if mem := canonicalJSON(t, memRes); mem != cold {
		t.Fatal("memory-tier result differs from cold result")
	}
	if disk := canonicalJSON(t, diskRes); disk != cold {
		t.Fatal("disk-tier result differs from cold result")
	}
}

// TestSweepResumesFromDiskAcrossKits models a killed sweep restarted in
// a new process: the points the first process completed are served from
// the shared store, and a superset sweep reuses them too.
func TestSweepResumesFromDiskAcrossKits(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow in -short mode")
	}
	ctx := context.Background()
	dir := t.TempDir()
	specA := sweep.Spec{
		Name: "resume",
		Base: flow.Request{Techs: []string{"cnfet"}, Analyses: []flow.Analysis{flow.AnalysisArea}},
		Axes: sweep.Axes{Circuits: []string{"mux2"}, Placements: []string{"rows", "shelves"}},
	}

	kitA, err := flow.New(ctx, flow.WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	repA, err := sweep.Run(ctx, kitA, specA)
	if err != nil {
		t.Fatal(err)
	}
	if repA.Failed != 0 {
		t.Fatalf("%d points failed", repA.Failed)
	}

	// "Restart": a fresh kit on the same store replays the sweep with
	// every stage served from disk.
	kitB, err := flow.New(ctx, flow.WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	repB, err := sweep.Run(ctx, kitB, specA)
	if err != nil {
		t.Fatal(err)
	}
	if repB.Trace.CacheHitStages != repB.Trace.TotalStages {
		t.Fatalf("resumed sweep recomputed: %d/%d stages cached",
			repB.Trace.CacheHitStages, repB.Trace.TotalStages)
	}
	jA, err := repA.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	jB, err := repB.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(jA) != string(jB) {
		t.Fatal("resumed sweep report differs from the original")
	}

	// A superset sweep in yet another fresh kit reuses the completed
	// points: its mux2 points are fully cached.
	specB := specA
	specB.Axes.Circuits = []string{"mux2", "dec2"}
	kitC, err := flow.New(ctx, flow.WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	repC, err := sweep.Run(ctx, kitC, specB)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range repC.Points {
		if pr.Params["circuit"] == "mux2" && pr.CachedStages != pr.TotalStages {
			t.Fatalf("resumed point %s recomputed %d stages", pr.ID, pr.TotalStages-pr.CachedStages)
		}
	}
}

// TestStorePurgeForcesRecompute: purging the kit's store empties both
// tiers, so the next run recomputes (and re-persists) everything.
func TestStorePurgeForcesRecompute(t *testing.T) {
	ctx := context.Background()
	kit, err := flow.New(ctx, flow.WithStore(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	req := flow.Request{Circuit: "mux2", Techs: []string{"cnfet"}, Analyses: []flow.Analysis{flow.AnalysisArea}}
	if _, err := kit.Run(ctx, req); err != nil {
		t.Fatal(err)
	}
	if err := kit.PurgeCache(); err != nil {
		t.Fatal(err)
	}
	st := kit.CacheStats()
	if st.Mem.Entries != 0 || st.Disk == nil || st.Disk.Entries != 0 {
		t.Fatalf("purge left entries: %+v", st)
	}
	res, err := kit.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := allStagesCached(res); ok {
		t.Fatal("post-purge run must recompute")
	}
}

// TestStoreOpenFailureSurfaces: an unusable store path fails kit
// construction with a clear error instead of silently running uncached.
func TestStoreOpenFailureSurfaces(t *testing.T) {
	f := t.TempDir() + "/occupied"
	if err := os.WriteFile(f, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := flow.New(context.Background(), flow.WithStore(f)); err == nil {
		t.Fatal("kit over an unusable store path must fail")
	}
}
