package flow

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/device"
	"cnfetdk/internal/immunity"
	"cnfetdk/internal/liberty"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/place"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/spice"
	"cnfetdk/internal/sta"
	"cnfetdk/internal/synth"
)

// Run executes one design-service job: it resolves the request's circuit
// (registry name, inline equations, or inline structural netlist), builds
// a stage graph covering every requested (technology, analysis) pair, and
// runs it on the kit's worker pool with every stage memoized in the kit's
// cache — identical concurrent jobs share one computation. ctx cancels
// the run between stages and between parallel items inside stages;
// completed stage results stay cached, so a rerun resumes rather than
// restarts. Errors wrap the typed sentinels (ErrUnknownCircuit,
// ErrUnknownTech, ErrBadRequest, ...) for errors.Is dispatch.
func (k *Kit) Run(ctx context.Context, req Request) (*Result, error) {
	techs, analyses, err := req.normalize()
	if err != nil {
		return nil, err
	}
	build, spec, specSamples, stim, rows, err := k.resolveCircuit(req)
	if err != nil {
		return nil, err
	}
	wireCap := req.WireCapPerNM
	if wireCap == 0 {
		wireCap = k.wireCap
	}
	mcAngle := req.MCAngleDeg
	if mcAngle == 0 {
		mcAngle = 15
	}
	// Resolve the placement default once so "" and "shelves" share
	// cache entries.
	placement := req.Placement
	if placement == "" {
		placement = "shelves"
	}
	stimKey := stimulusKeyParts(stim)
	// The variation model: an all-zero model takes the exact
	// pre-variation code paths (same stages, same keys, same results).
	// A non-zero count/diameter spread adds the CNFET delay-ensemble
	// stage; any non-zero channel makes the immunity stage compose the
	// functional yield.
	vr := req.variations()
	varSamples := req.VarSamples
	if varSamples == 0 {
		varSamples = DefaultVarSamples
	}
	spreadActive := vr.CountCV > 0 || vr.DiameterSigmaNM > 0
	want := map[Analysis]bool{}
	for _, a := range analyses {
		want[a] = true
	}
	if want[AnalysisImmunity] {
		hasCNFET := false
		for _, t := range techs {
			hasCNFET = hasCNFET || t == rules.CNFET
		}
		if !hasCNFET {
			return nil, fmt.Errorf("%w: the immunity analysis requires the cnfet technology", ErrBadRequest)
		}
	}
	needPlace := want[AnalysisArea] || want[AnalysisDelay] || want[AnalysisSTA] ||
		want[AnalysisEnergy] || want[AnalysisGDS]
	needWire := want[AnalysisDelay] || want[AnalysisSTA]

	stageTimeout := k.stageTimeout
	if req.StageTimeoutMS > 0 {
		stageTimeout = time.Duration(req.StageTimeoutMS) * time.Millisecond
	}
	g := pipeline.NewGraph(k.cache, k.workers).Trace(k.trace).StageTimeout(stageTimeout)
	// add is AddFunc plus the stage's result codec — what makes the
	// result persistable in the artifact store's disk tier. Every stage
	// runs under its watchdog-bounded stage context (not the run
	// context), consults the kit's fault injector at
	// "flow.stage.<name>" first, and recovers panics into typed errors
	// (pipeline.PanicError) inside the graph runner.
	add := func(name, key string, codec pipeline.Codec, deps []string, run func(ctx context.Context, d map[string]any) (any, error)) {
		g.Add(pipeline.Stage{Name: name, Key: key, Codec: codec, Deps: deps,
			RunCtx: func(sctx context.Context, d map[string]any) (any, error) {
				if err := k.faults.FaultCtx(sctx, "flow.stage."+name); err != nil {
					return nil, err
				}
				return run(sctx, d)
			}})
	}

	add("netlist", req.stageKey("netlist"), codecNetlist, nil, func(_ context.Context, _ map[string]any) (any, error) {
		nl, err := build()
		if err != nil {
			return nil, err
		}
		if spec != nil {
			if err := nl.VerifySampled(spec, specSamples); err != nil {
				return nil, fmt.Errorf("flow: %s: %w", nl.Name, err)
			}
		}
		return nl, nil
	})

	for _, tech := range techs {
		tech := tech
		tn := strings.ToLower(tech.String())
		lib, err := k.LibFor(tech)
		if err != nil {
			return nil, err
		}

		// rk pins the library's full design-rule set (digested once at
		// kit construction) into every per-tech stage key: with
		// persistent stores, entries must survive only as long as every
		// input that shaped them.
		rk := k.rulesKey[tech]

		// The resolved scheme is a per-tech stage input: CMOS always
		// places as rows, so CNFET-only placement changes leave every
		// CMOS cache entry valid.
		scheme := placement
		if tech == rules.CMOS {
			scheme = "rows"
		}
		placeStage := "place/" + tn
		if needPlace {
			add(placeStage, req.stageKey("place", tn, rk, scheme, rows), placementCodec(lib), []string{"netlist"}, func(_ context.Context, d map[string]any) (any, error) {
				return placeScheme(lib, d["netlist"].(*synth.Netlist), scheme, rows)
			})
		}
		if needWire {
			add("wire/"+tn, req.stageKey("wire", tn, rk, scheme, rows, wireCap), codecWireCaps, []string{"netlist", placeStage}, func(_ context.Context, d map[string]any) (any, error) {
				return WireCapsWith(d[placeStage].(*place.Placement), d["netlist"].(*synth.Netlist), lib.Rules.LambdaNM, wireCap), nil
			})
		}
		if want[AnalysisDelay] {
			add("delay/"+tn, req.stageKey(append([]any{"delay", tn, rk, scheme, rows, wireCap}, stimKey...)...), codecScalar, []string{"netlist", "wire/" + tn}, func(_ context.Context, d map[string]any) (any, error) {
				dly, err := k.runDelay(lib, d["netlist"].(*synth.Netlist), d["wire/"+tn].(map[string]float64), stim)
				if err != nil {
					return nil, fmt.Errorf("flow: %s delay: %w", tech, err)
				}
				return dly, nil
			})
			if tech == rules.CNFET && spreadActive {
				// The ensemble key pins only the channels that move
				// timing (count, diameter): alignment sweeps share one
				// vardelay entry per spread point.
				add("vardelay/"+tn, req.stageKey(append([]any{"vardelay", tn, rk, scheme, rows, wireCap,
					vr.CountCV, vr.DiameterSigmaNM, varSamples, req.Seed}, stimKey...)...),
					codecVarDelay, []string{"netlist", "wire/" + tn}, func(sctx context.Context, d map[string]any) (any, error) {
						de, err := k.runVarDelay(sctx, lib, d["netlist"].(*synth.Netlist), d["wire/"+tn].(map[string]float64), stim, vr, varSamples, req.Seed)
						if err != nil {
							return nil, fmt.Errorf("flow: %s vardelay: %w", tech, err)
						}
						return de, nil
					})
			}
		}
		if want[AnalysisSTA] {
			// The NLDM stage characterizes exactly the cells the design
			// uses (the expensive transistor-level grid, heavily cached);
			// the sta stage itself is a millisecond table-lookup pass over
			// the placed design's extracted wire loads.
			add("nldm/"+tn, req.stageKey("nldm", tn, rk), codecNLDM, []string{"netlist"}, func(sctx context.Context, d map[string]any) (any, error) {
				m, err := k.runNLDM(sctx, lib, d["netlist"].(*synth.Netlist))
				if err != nil {
					return nil, fmt.Errorf("flow: %s nldm: %w", tech, err)
				}
				return m, nil
			})
			add("sta/"+tn, req.stageKey("sta", tn, rk, scheme, rows, wireCap), codecSTA, []string{"netlist", "wire/" + tn, "nldm/" + tn}, func(_ context.Context, d map[string]any) (any, error) {
				rep, err := runSTA(d["netlist"].(*synth.Netlist), d["nldm/"+tn].(*liberty.Model), d["wire/"+tn].(map[string]float64))
				if err != nil {
					return nil, fmt.Errorf("flow: %s sta: %w", tech, err)
				}
				return rep, nil
			})
		}
		if want[AnalysisEnergy] {
			add("energy/"+tn, req.stageKey(append([]any{"energy", tn, rk, scheme, rows, wireCap}, stimKey...)...), codecScalar, []string{"netlist", placeStage}, func(_ context.Context, d map[string]any) (any, error) {
				e, err := k.runEnergy(lib, tech, d["netlist"].(*synth.Netlist), d[placeStage].(*place.Placement), stim, wireCap)
				if err != nil {
					return nil, fmt.Errorf("flow: %s energy: %w", tech, err)
				}
				return e, nil
			})
		}
		if want[AnalysisImmunity] && tech == rules.CNFET {
			immKey := []any{"immunity", tn, rk, req.MCTubes, mcAngle, req.Seed}
			if !vr.Zero() {
				// Yield composition reads the count CV and alignment
				// probability; the diameter spread moves timing only.
				immKey = append(immKey, "var", vr.CountCV, vr.AlignmentP)
			}
			add("immunity/"+tn, req.stageKey(immKey...), codecImmunity, []string{"netlist"}, func(sctx context.Context, d map[string]any) (any, error) {
				return k.runImmunity(sctx, lib, d["netlist"].(*synth.Netlist), req.MCTubes, mcAngle, req.Seed, vr)
			})
		}
		if want[AnalysisLiberty] {
			add("liberty/"+tn, req.stageKey("liberty", tn, rk), codecLiberty, []string{"netlist"}, func(sctx context.Context, d map[string]any) (any, error) {
				return k.runLiberty(sctx, lib, d["netlist"].(*synth.Netlist))
			})
		}
		if want[AnalysisGDS] {
			add("gds/"+tn, req.stageKey("gds", tn, rk, scheme, rows), codecGDS, []string{"netlist", placeStage}, func(_ context.Context, d map[string]any) (any, error) {
				nl := d["netlist"].(*synth.Netlist)
				var buf bytes.Buffer
				top := gdsTopName(nl.Name, tech, scheme)
				if err := WritePlacementGDS(&buf, lib, d[placeStage].(*place.Placement), top); err != nil {
					return nil, err
				}
				return buf.Bytes(), nil
			})
		}
	}

	results, err := g.RunCtx(ctx)
	if err != nil {
		return nil, err
	}

	res := &Result{Techs: map[string]*TechResult{}}
	nl := results["netlist"].Value.(*synth.Netlist)
	res.Circuit = nl.Name
	res.Instances = len(nl.Instances)
	res.Nets = len(nl.Nets())
	res.Inputs = append([]string(nil), nl.Inputs...)
	res.Outputs = append([]string(nil), nl.Outputs...)
	for _, tech := range techs {
		tn := strings.ToLower(tech.String())
		tr := &TechResult{Tech: tn}
		if r, ok := results["place/"+tn]; ok {
			p := r.Value.(*place.Placement)
			tr.Placement = p
			if want[AnalysisArea] {
				tr.AreaLam2 = p.Area()
				tr.WidthLam = p.Width.Lambdas()
				tr.HeightLam = p.Height.Lambdas()
				tr.Utilization = p.Utilization()
			}
		}
		if r, ok := results["delay/"+tn]; ok {
			tr.DelayS = r.Value.(float64)
		}
		if r, ok := results["vardelay/"+tn]; ok {
			tr.VarDelay = r.Value.(*DelayEnsemble)
		}
		if r, ok := results["sta/"+tn]; ok {
			tr.STA = r.Value.(*STAReport)
		}
		if r, ok := results["energy/"+tn]; ok {
			tr.EnergyJ = r.Value.(float64)
		}
		if r, ok := results["immunity/"+tn]; ok {
			tr.Immunity = r.Value.(*ImmunityResult)
		}
		if r, ok := results["liberty/"+tn]; ok {
			tr.Liberty = r.Value.(string)
		}
		if r, ok := results["gds/"+tn]; ok {
			tr.GDS = r.Value.([]byte)
		}
		res.Techs[tn] = tr
	}
	if cm, cn := res.Techs["cmos"], res.Techs["cnfet"]; cm != nil && cn != nil {
		res.Gains = map[string]float64{}
		if want[AnalysisArea] && cn.AreaLam2 > 0 {
			res.Gains["area"] = cm.AreaLam2 / cn.AreaLam2
		}
		if want[AnalysisDelay] && cn.DelayS > 0 {
			res.Gains["delay"] = cm.DelayS / cn.DelayS
		}
		if want[AnalysisEnergy] && cn.EnergyJ > 0 {
			res.Gains["energy"] = cm.EnergyJ / cn.EnergyJ
		}
		if want[AnalysisSTA] && cm.STA != nil && cn.STA != nil && cn.STA.DelayS > 0 {
			res.Gains["sta"] = cm.STA.DelayS / cn.STA.DelayS
		}
		if len(res.Gains) == 0 {
			res.Gains = nil
		}
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := results[name]
		st := StageTrace{Stage: name, Millis: float64(r.Dur.Microseconds()) / 1000, Cached: r.Cached}
		if r.Err != nil {
			st.Error = r.Err.Error()
		}
		res.Stages = append(res.Stages, st)
	}
	return res, nil
}

// resolveCircuit picks the netlist builder, specification (with its
// sample bound; 0 = exhaustive), stimulus and row-count hint for a
// normalized request.
func (k *Kit) resolveCircuit(req Request) (build func() (*synth.Netlist, error), spec map[string]*logic.Expr, specSamples int, stim Stimulus, rows int, err error) {
	if req.Stimulus != nil {
		stim = *req.Stimulus
	}
	switch {
	case req.Circuit != "":
		c, lerr := LookupCircuit(req.Circuit)
		if lerr != nil {
			return nil, nil, 0, stim, 0, lerr
		}
		if c.Spec != nil {
			spec = c.Spec()
		}
		if req.Stimulus == nil {
			stim = c.Stimulus
		}
		return c.Build, spec, c.SpecSamples, stim, c.Rows, nil
	case len(req.Exprs) > 0:
		name := req.Name
		if name == "" {
			name = "design"
		}
		outputs := map[string]*logic.Expr{}
		for out, src := range req.Exprs {
			e, perr := logic.Parse(src)
			if perr != nil {
				return nil, nil, 0, stim, 0, fmt.Errorf("%w: expr %s: %v", ErrBadRequest, out, perr)
			}
			outputs[out] = e
		}
		// Synthesize exhaustively verifies the mapped netlist against
		// these same outputs, so returning them as a spec would only
		// duplicate the check; nil skips the netlist stage's re-verify.
		return func() (*synth.Netlist, error) { return synth.Synthesize(name, outputs) }, nil, 0, stim, 0, nil
	default:
		nl, perr := synth.Parse(strings.NewReader(req.Netlist))
		if perr != nil {
			return nil, nil, 0, stim, 0, fmt.Errorf("%w: netlist: %v", ErrBadRequest, perr)
		}
		if req.Name != "" {
			nl.Name = req.Name
		}
		return func() (*synth.Netlist, error) { return nl, nil }, nil, 0, stim, 0, nil
	}
}

// placeScheme places a netlist under an already-resolved scheme ("rows"
// or "shelves" — Run resolves defaults and the CMOS-always-rows rule
// before keying the stage, so key and computation cannot diverge). rows
// pins the row count of rows-based placements (0 = auto).
func placeScheme(lib *cells.Library, nl *synth.Netlist, scheme string, rows int) (*place.Placement, error) {
	if scheme == "rows" {
		return place.Rows(lib, nl, rows)
	}
	return place.Shelves(lib, nl, 0)
}

// gdsTopName renders the GDS top-structure name from the resolved
// scheme: design name plus S1/S2 for CNFET rows/shelves, CMOS for the
// reference technology.
func gdsTopName(design string, tech rules.Tech, scheme string) string {
	suffix := "S2"
	if scheme == "rows" {
		suffix = "S1"
	}
	if tech == rules.CMOS {
		suffix = "CMOS"
	}
	return strings.ToUpper(design) + "_" + suffix
}

// stimulusEnv builds the full input assignment of a stimulus with the
// pulsed input at the given level, validating coverage: the pulse must be
// a primary input and every input must be assigned exactly once.
func stimulusEnv(nl *synth.Netlist, stim Stimulus, pulseHigh bool) (map[string]bool, error) {
	if stim.Pulse == "" {
		return nil, fmt.Errorf("%w: delay/energy analysis needs a stimulus (pulse input + static levels)", ErrBadRequest)
	}
	env := map[string]bool{}
	isInput := map[string]bool{}
	for _, in := range nl.Inputs {
		isInput[in] = true
	}
	if !isInput[stim.Pulse] {
		return nil, fmt.Errorf("%w: pulse input %q is not a primary input of %s", ErrBadRequest, stim.Pulse, nl.Name)
	}
	for in, v := range stim.Static {
		if !isInput[in] {
			return nil, fmt.Errorf("%w: static input %q is not a primary input of %s", ErrBadRequest, in, nl.Name)
		}
		if in == stim.Pulse {
			return nil, fmt.Errorf("%w: input %q is both static and pulsed", ErrBadRequest, in)
		}
		env[in] = v
	}
	env[stim.Pulse] = pulseHigh
	for _, in := range nl.Inputs {
		if _, ok := env[in]; !ok {
			return nil, fmt.Errorf("%w: input %q not covered by the stimulus", ErrBadRequest, in)
		}
	}
	return env, nil
}

// runDelay measures the average stimulus-to-output propagation delay at
// the transistor level: static inputs at DC, the pulse input driven with
// a full cycle, and every toggling primary output measured — inverting
// outputs via the standard propagation-delay pair, non-inverting outputs
// via both same-direction edges.
func (k *Kit) runDelay(lib *cells.Library, nl *synth.Netlist, wire map[string]float64, stim Stimulus) (float64, error) {
	lo, err := stimulusEnv(nl, stim, false)
	if err != nil {
		return 0, err
	}
	hi, err := stimulusEnv(nl, stim, true)
	if err != nil {
		return 0, err
	}
	loV, err := nl.Evaluate(lo)
	if err != nil {
		return 0, err
	}
	hiV, err := nl.Evaluate(hi)
	if err != nil {
		return 0, err
	}

	ckt, _, err := k.BuildCircuit(lib, nl, wire)
	if err != nil {
		return 0, err
	}
	period := addStimulus(ckt, stim)
	opts := spice.DefaultOptions()
	opts.Inject = k.faults
	r, err := ckt.Transient(period, delaySteps, opts)
	if err != nil {
		return 0, err
	}
	return measureStimDelay(r, nl, stim, loV, hiV)
}

// runEnergy evaluates the per-cycle switching energy under the stimulus
// with the calibrated gate-energy model: toggling nets are found by logic
// simulation of the pulse cycle, each toggling gate output contributes
// its technology's per-cycle energy scaled by drive, plus wire energy
// over the placed design.
func (k *Kit) runEnergy(lib *cells.Library, tech rules.Tech, nl *synth.Netlist, p *place.Placement, stim Stimulus, wireCapPerNM float64) (float64, error) {
	lo, err := stimulusEnv(nl, stim, false)
	if err != nil {
		return 0, err
	}
	hi, err := stimulusEnv(nl, stim, true)
	if err != nil {
		return 0, err
	}
	loV, err := nl.Evaluate(lo)
	if err != nil {
		return 0, err
	}
	hiV, err := nl.Evaluate(hi)
	if err != nil {
		return 0, err
	}
	fo4 := device.DefaultFO4()
	nOpt := fo4.OptimalN(60)
	wire := WireCapsWith(p, nl, lib.Rules.LambdaNM, wireCapPerNM)
	total := 0.0
	for _, inst := range nl.Instances {
		out := inst.Conns["OUT"]
		if loV[out] == hiV[out] {
			continue // no switching on this arc
		}
		drive := driveOf(inst.Cell)
		var gate float64
		if tech == rules.CNFET {
			gate = fo4.EnergyFJ(nOpt) * 1e-15 * drive
		} else {
			gate = device.CMOSEnergyfJ * 1e-15 * drive
		}
		total += gate + wire[out]*device.Vdd*device.Vdd
	}
	return total, nil
}

// runImmunity certifies every distinct CNFET cell of the design with the
// deterministic critical-line enumeration, plus an optional Monte Carlo
// sample of mcTubes tubes per network at up to mcAngle degrees of
// misalignment. A non-zero variation model additionally composes the
// design's functional yield from the per-cell verdicts: the cells'
// break probabilities (MC estimate when sampled, critical-line
// fraction otherwise) fold with the count and alignment distributions
// over every device of every instance.
func (k *Kit) runImmunity(ctx context.Context, lib *cells.Library, nl *synth.Netlist, mcTubes int, mcAngle float64, seed int64, vr device.Variations) (*ImmunityResult, error) {
	var names []string
	seen := map[string]bool{}
	for _, inst := range nl.Instances {
		if !seen[inst.Cell] {
			seen[inst.Cell] = true
			names = append(names, inst.Cell)
		}
	}
	sort.Strings(names)

	type verdict struct {
		name      string
		checked   int
		bad       int
		mcChecked int
		mcBad     int
	}
	verdicts, err := pipeline.MapCtx(ctx, k.workers, names, func(i int, name string) (verdict, error) {
		c, err := lib.Get(name)
		if err != nil {
			return verdict{}, err
		}
		pun, pdn := immunity.VerifyImmunity(c.Layout)
		v := verdict{
			name:    name,
			checked: pun.TubesChecked + pdn.TubesChecked,
			bad:     pun.BadTubes + pdn.BadTubes,
		}
		if mcTubes > 0 {
			cc := immunity.NewCellChecker(c.Layout)
			// Derive the per-cell seed from the request seed and the
			// cell's index so the sample is reproducible at any worker
			// count.
			rng := rand.New(rand.NewSource(seed + int64(i)*0x9E3779B9))
			punMC, err := cc.PUN().MonteCarloCtx(ctx, mcTubes, mcAngle, rng, 1)
			if err != nil {
				return verdict{}, err
			}
			pdnMC, err := cc.PDN().MonteCarloCtx(ctx, mcTubes, mcAngle, rng, 1)
			if err != nil {
				return verdict{}, err
			}
			v.mcChecked = punMC.TubesChecked + pdnMC.TubesChecked
			v.mcBad = punMC.BadTubes + pdnMC.BadTubes
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	res := &ImmunityResult{CellsChecked: len(verdicts), Immune: true}
	mcBad := 0
	for _, v := range verdicts {
		res.CriticalLines += v.checked
		res.Violations += v.bad
		if v.bad > 0 {
			res.Immune = false
			res.VulnerableCells = append(res.VulnerableCells, v.name)
		}
		res.MCTubes += v.mcChecked
		mcBad += v.mcBad
	}
	if res.MCTubes > 0 {
		res.MCFailRate = float64(mcBad) / float64(res.MCTubes)
	}
	if !vr.Zero() {
		byCell := map[string]cellYieldInput{}
		for _, v := range verdicts {
			breakP := 0.0
			if mcTubes > 0 {
				if v.mcChecked > 0 {
					breakP = float64(v.mcBad) / float64(v.mcChecked)
				}
			} else if v.checked > 0 {
				breakP = float64(v.bad) / float64(v.checked)
			}
			c, err := lib.Get(v.name)
			if err != nil {
				return nil, err
			}
			byCell[v.name] = cellYieldInput{tubes: lib.DeviceTubes(c), breakP: breakP}
		}
		vy, err := composeVariationYield(lib, nl, vr, byCell)
		if err != nil {
			return nil, err
		}
		res.Variation = vy
	}
	return res, nil
}

// runNLDM characterizes exactly the cells the design instantiates into
// the slew-aware NLDM model the sta stage evaluates.
func (k *Kit) runNLDM(ctx context.Context, lib *cells.Library, nl *synth.Netlist) (*liberty.Model, error) {
	used := map[string]bool{}
	for _, inst := range nl.Instances {
		used[inst.Cell] = true
	}
	return liberty.CharacterizeCtx(ctx, lib, nil, func(name string) bool { return used[name] }, k.workers)
}

// runLiberty characterizes exactly the cells the design instantiates and
// renders the Liberty (.lib) text.
func (k *Kit) runLiberty(ctx context.Context, lib *cells.Library, nl *synth.Netlist) (string, error) {
	m, err := k.runNLDM(ctx, lib, nl)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// runSTA runs the levelized static timing engine over the netlist under
// the placement's extracted wire loads and snapshots the report.
func runSTA(nl *synth.Netlist, m *liberty.Model, wire map[string]float64) (*STAReport, error) {
	res, err := sta.Analyze(nl, m, wire)
	if err != nil {
		return nil, err
	}
	return &STAReport{
		DelayS:        res.WorstArrivalS,
		WorstNet:      res.WorstNet,
		CriticalPath:  res.CriticalPath,
		Levels:        res.Levels,
		Instances:     len(nl.Instances),
		InstanceDelay: res.InstanceDelay,
	}, nil
}
