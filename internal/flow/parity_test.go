package flow

import (
	"math"
	"sort"
	"testing"

	"cnfetdk/internal/device"
	"cnfetdk/internal/spice"
)

// parityBench builds the registry circuit's delay testbench — the same
// construction runDelay uses: the instantiated netlist, sorted static DC
// sources, and the pulse source from the circuit's default stimulus.
func parityBench(t *testing.T, k *Kit, c *Circuit) *spice.Circuit {
	t.Helper()
	nl, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	ckt, _, err := k.BuildCircuit(k.CNFET, nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	period := 4000e-12
	statics := make([]string, 0, len(c.Stimulus.Static))
	for in := range c.Stimulus.Static {
		statics = append(statics, in)
	}
	sort.Strings(statics)
	for _, in := range statics {
		level := 0.0
		if c.Stimulus.Static[in] {
			level = device.Vdd
		}
		ckt.AddV("vin."+in, in, "0", spice.DC(level))
	}
	ckt.AddV("vin."+c.Stimulus.Pulse, c.Stimulus.Pulse, "0", spice.Pulse{
		V0: 0, V1: device.Vdd, Delay: period / 4,
		Rise: 5e-12, Fall: 5e-12, W: period / 2, Period: period,
	})
	return ckt
}

// TestSparseDenseParityAllRegistryCircuits runs every registered
// benchmark's delay testbench through both solver paths and requires
// waveform agreement within 1e-9 V at every node and timestep. The step
// counts are scaled down per circuit (the full 8000-step dense mult4
// transient alone takes ~10s); parity is a per-step property, so a
// shorter window checks the same arithmetic.
func TestSparseDenseParityAllRegistryCircuits(t *testing.T) {
	if testing.Short() {
		t.Skip("transient-heavy")
	}
	k := kit(t)
	steps := map[string]int{"fulladder": 400, "rca4": 200, "rca8": 100, "mult4": 50}
	for _, c := range Circuits() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			n := steps[c.Name]
			if n == 0 {
				n = 100
			}
			period := 4000e-12 * float64(n) / 8000
			dOpt := spice.DefaultOptions()
			dOpt.Solver = spice.SolverDense
			sOpt := spice.DefaultOptions()
			sOpt.Solver = spice.SolverSparse
			rd, err := parityBench(t, k, c).Transient(period, n, dOpt)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			rs, err := parityBench(t, k, c).Transient(period, n, sOpt)
			if err != nil {
				t.Fatalf("sparse: %v", err)
			}
			if len(rd.V) != len(rs.V) {
				t.Fatalf("node count mismatch: %d vs %d", len(rd.V), len(rs.V))
			}
			worst := 0.0
			for i := range rd.V {
				for s := range rd.V[i] {
					if d := math.Abs(rd.V[i][s] - rs.V[i][s]); d > worst {
						worst = d
					}
				}
			}
			t.Logf("%s: %d unknowns, max |dV| = %.3e over %d steps", c.Name, len(rd.V), worst, n)
			if worst > 1e-9 {
				t.Fatalf("sparse/dense diverge on %s: max |dV| = %.3e, want <= 1e-9", c.Name, worst)
			}
		})
	}
}
