package flow

import (
	"bytes"
	"math/rand"
	"testing"

	"cnfetdk/internal/cnt"
	"cnfetdk/internal/drc"
	"cnfetdk/internal/extract"
	"cnfetdk/internal/gdsii"
	"cnfetdk/internal/immunity"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/place"
	"cnfetdk/internal/route"
	"cnfetdk/internal/spice"
	"cnfetdk/internal/synth"
)

// TestEndToEndPipeline exercises the complete design kit in one pass, the
// way a user would: Boolean spec -> technology mapping -> per-cell
// immunity + DRC + LVS -> placement -> routing -> GDSII round trip ->
// transistor-level functional check. Any regression in any stage fails
// here even if the stage's own unit tests are too narrow.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	k := kit(t)

	// 1. Synthesize a 2:1 mux from its equation and verify the mapping.
	spec := map[string]*logic.Expr{"Y": logic.MustParse("D0*!S + D1*S")}
	nl, err := synth.Synthesize("mux2", spec)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Every distinct cell: immune, DRC-clean, LVS-clean.
	seen := map[string]bool{}
	for _, inst := range nl.Instances {
		if seen[inst.Cell] {
			continue
		}
		seen[inst.Cell] = true
		c, err := k.CNFET.Get(inst.Cell)
		if err != nil {
			t.Fatal(err)
		}
		pun, pdn := immunity.VerifyImmunity(c.Layout)
		if !pun.Immune() || !pdn.Immune() {
			t.Fatalf("%s not immune", inst.Cell)
		}
		if vs := drc.CheckCell(c.Layout); len(vs) != 0 {
			t.Fatalf("%s DRC: %v", inst.Cell, vs[0])
		}
		params := cnt.DefaultParams()
		params.MisalignedFrac = 0
		for _, side := range []struct {
			g  *layout.NetGeom
			nw *network.Network
		}{{c.Layout.PUN, c.Gate.PUN}, {c.Layout.PDN, c.Gate.PDN}} {
			tubes := cnt.Generate(side.g.BBox, params, rand.New(rand.NewSource(1)))
			ex := extract.Network(side.g, side.nw, c.Gate.Inputs, tubes)
			if rep := extract.LVS(ex, side.nw, c.Gate.Inputs); !rep.Match {
				t.Fatalf("%s LVS: %v", inst.Cell, rep.Mismatch)
			}
		}
	}

	// 3. Place, route, and check congestion sanity.
	p, err := place.Shelves(k.CNFET, nl, 0)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := route.Route(p, nl, route.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if routed.TotalWirelenLambda <= 0 {
		t.Fatal("nothing routed")
	}

	// 4. GDSII round trip preserves instance count.
	var buf bytes.Buffer
	if err := WritePlacementGDS(&buf, k.CNFET, p, "MUX2"); err != nil {
		t.Fatal(err)
	}
	lib, err := gdsii.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if top := lib.Find("MUX2"); top == nil || len(top.SRefs) != len(nl.Instances) {
		t.Fatal("GDS round trip lost instances")
	}

	// 5. Transistor-level truth table of the mapped design.
	wire := WireCaps(p, nl, k.CNFET.Rules.LambdaNM)
	for v := 0; v < 8; v++ {
		in := map[string]bool{
			"D0": v&1 == 1, "D1": v&2 == 2, "S": v&4 == 4,
		}
		want := spec["Y"].Eval(in)
		got, err := k.evalAtSpiceLevel(nl, wire, in, "Y")
		if err != nil {
			t.Fatalf("vector %b: %v", v, err)
		}
		if got != want {
			t.Fatalf("vector %b: spice says %v, spec says %v", v, got, want)
		}
	}
}

// evalAtSpiceLevel computes one output of a netlist for one input vector
// by DC operating point.
func (k *Kit) evalAtSpiceLevel(nl *synth.Netlist, wire map[string]float64, in map[string]bool, out string) (bool, error) {
	ckt, _, err := k.BuildCircuit(k.CNFET, nl, wire)
	if err != nil {
		return false, err
	}
	for name, val := range in {
		level := 0.0
		if val {
			level = 1.0
		}
		ckt.AddV("v"+name, name, "0", spice.DC(level))
	}
	x, err := ckt.OP(spice.DefaultOptions())
	if err != nil {
		return false, err
	}
	return x[ckt.Node(out)-1] > 0.5, nil
}
