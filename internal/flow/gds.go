package flow

import (
	"io"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/gdsii"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/network"
	"cnfetdk/internal/place"
)

// nmPerCoord converts a layout Coord to GDS database units (1 dbu = 1nm).
func nmPerCoord(lambdaNM float64) float64 {
	return lambdaNM / float64(geom.QuarterLambda)
}

func toDBU(c geom.Coord, scale float64) int32 {
	return int32(float64(c)*scale + 0.5)
}

// exportRect writes one rect on a layer.
func exportRect(s *gdsii.Structure, layer int16, r geom.Rect, scale float64) {
	s.Rect(layer, toDBU(r.Min.X, scale), toDBU(r.Min.Y, scale),
		toDBU(r.Max.X, scale), toDBU(r.Max.Y, scale))
}

// elementLayer maps a layout element to its GDS layer.
func elementLayer(e layout.Element) int16 {
	switch e.Kind {
	case layout.ElemContact:
		return gdsii.LayerContact
	case layout.ElemGate:
		return gdsii.LayerGate
	case layout.ElemEtch:
		return gdsii.LayerEtch
	case layout.ElemVia:
		return gdsii.LayerVia1
	case layout.ElemStrap:
		return gdsii.LayerMetal1
	case layout.ElemPin:
		return gdsii.LayerPin
	}
	return gdsii.LayerBoundary
}

// ExportCell renders one assembled cell as a GDS structure: active CNT
// regions with their doping layers, then every drawn element, then pin
// labels. Returns the structure name.
func ExportCell(lib *gdsii.Library, c *cells.Cell, scheme layout.Scheme) string {
	name := c.FullName() + "_" + scheme.String()
	if lib.Find(name) != nil {
		return name
	}
	s := lib.Add(name)
	scale := nmPerCoord(c.Rules.LambdaNM)
	a := c.Layout.Assemble(scheme)

	dope := func(ng *layout.NetGeom, off geom.Point) {
		dopeLayer := gdsii.LayerNDope
		if ng.Type == network.PFET {
			dopeLayer = gdsii.LayerPDope
		}
		for _, r := range ng.Active {
			rr := r.Translate(off.X, off.Y)
			exportRect(s, gdsii.LayerCNT, rr, scale)
			exportRect(s, dopeLayer, rr, scale)
		}
	}
	dope(c.Layout.PUN, a.PUNOffset)
	dope(c.Layout.PDN, a.PDNOffset)

	for _, e := range a.Elements {
		exportRect(s, elementLayer(e), e.Rect, scale)
		if e.Kind == layout.ElemPin {
			label := e.Net
			if label == "" {
				label = e.Input
			}
			cx := (e.Rect.Min.X + e.Rect.Max.X) / 2
			cy := (e.Rect.Min.Y + e.Rect.Max.Y) / 2
			s.Label(gdsii.LayerPin, toDBU(cx, scale), toDBU(cy, scale), label)
		}
	}
	// Cell boundary.
	exportRect(s, gdsii.LayerBoundary, geom.R(0, 0, a.Width, a.Height), scale)
	return name
}

// ExportPlacement renders a placed design: one structure per distinct cell
// plus a top structure of SREFs — the final GDSII of the logic-to-GDSII
// flow (Fig 9 is the scheme-2 full adder exported this way).
func ExportPlacement(clib *cells.Library, p *place.Placement, topName string) *gdsii.Library {
	lib := gdsii.NewLibrary("CNFETDK")
	top := lib.Add(topName)
	scale := nmPerCoord(clib.Rules.LambdaNM)
	for _, pc := range p.Cells {
		ref := ExportCell(lib, pc.Cell, p.Scheme)
		top.Ref(ref, toDBU(pc.X, scale), toDBU(pc.Y, scale))
	}
	return lib
}

// WritePlacementGDS is a convenience wrapper: export and stream.
func WritePlacementGDS(w io.Writer, clib *cells.Library, p *place.Placement, topName string) error {
	return ExportPlacement(clib, p, topName).Write(w)
}
