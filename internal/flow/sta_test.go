package flow

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestSTAAllRegistryCircuits runs the sta analysis through the flow for
// every registry circuit and checks the report's internal consistency:
// positive delay, a critical path whose instance delays sum to the
// design delay, and wire loads actually flowing from the extract stage.
func TestSTAAllRegistryCircuits(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization-backed flow")
	}
	k := kit(t)
	ctx := context.Background()
	for _, c := range Circuits() {
		res, err := k.Run(ctx, Request{
			Circuit:  c.Name,
			Techs:    []string{"cnfet"},
			Analyses: []Analysis{AnalysisSTA},
		})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		s := res.Techs["cnfet"].STA
		if s == nil {
			t.Fatalf("%s: no STA report", c.Name)
		}
		if s.DelayS <= 0 || s.Levels <= 0 || s.Instances != res.Instances {
			t.Fatalf("%s: STA report %+v malformed", c.Name, s)
		}
		if len(s.CriticalPath) < 2 {
			t.Fatalf("%s: critical path %v too short", c.Name, s.CriticalPath)
		}
		// Nets on the critical path after the primary input are each
		// driven by one instance whose worst-path arc delay is recorded;
		// the sum must reproduce the design delay (satellite contract:
		// InstanceDelay is the worst-path arc, not the worst arc).
		sum := 0.0
		for _, d := range s.InstanceDelay {
			if d < -1e-12 {
				t.Fatalf("%s: implausible instance delay %v", c.Name, d)
			}
		}
		drivers := map[string]string{}
		nl, err := LookupCircuit(c.Name)
		if err != nil {
			t.Fatal(err)
		}
		netlist, err := nl.Build()
		if err != nil {
			t.Fatal(err)
		}
		for _, inst := range netlist.Instances {
			drivers[inst.Conns["OUT"]] = inst.Name
		}
		for _, net := range s.CriticalPath[1:] {
			sum += s.InstanceDelay[drivers[net]]
		}
		if math.Abs(sum-s.DelayS) > 1e-15*float64(len(s.CriticalPath)) {
			t.Fatalf("%s: critical-path instance delays sum to %v, want %v", c.Name, sum, s.DelayS)
		}
	}
}

// staSpiceRatio pins, per registry circuit, how the slew-aware NLDM
// engine tracks the transistor-level transient: STA delay (worst
// structural path, worst arc per gate, slews accumulated) over stimulus
// transient delay (one sensitized path, averaged rise/fall). The ratio
// sits near 1 on shallow designs and grows with depth — STA counts
// false paths a real input vector cannot excite, and the array
// multipliers' worst structural path runs through every adder row while
// the stimulus propagates the carry-select mode — so each circuit pins
// its own window around the characterized behaviour. A breakage in the
// engine, the NLDM grid or the wire extraction lands outside these.
var staSpiceRatio = map[string][2]float64{
	"aoichain4": {0.6, 1.5},
	"dec2":      {0.8, 2.0},
	"fulladder": {1.5, 3.8},
	"mult4":     {2.8, 7.2},
	"mult8":     {4.0, 10.0},
	"mux2":      {1.1, 2.8},
	"mux4":      {0.6, 1.6},
	"parity4":   {1.3, 3.4},
	"rca16":     {1.4, 3.7},
	"rca4":      {1.1, 3.0},
	"rca8":      {1.3, 3.3},
}

// staSpiceDefault bounds circuits registered after this table was
// pinned: catastrophically wrong tracking still fails.
var staSpiceDefault = [2]float64{0.5, 12}

// TestSTATracksSpiceAcrossRegistry compares the sta analysis against the
// transistor-level delay analysis for every registry circuit, and pins
// the speed claim: the STA stage must be dramatically cheaper than the
// transient on the bigger circuits.
func TestSTATracksSpiceAcrossRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full transients over every registry circuit")
	}
	k := kit(t)
	ctx := context.Background()
	for _, c := range Circuits() {
		res, err := k.Run(ctx, Request{
			Circuit:  c.Name,
			Techs:    []string{"cnfet"},
			Analyses: []Analysis{AnalysisDelay, AnalysisSTA},
		})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		cn := res.Techs["cnfet"]
		if cn.DelayS <= 0 || cn.STA == nil || cn.STA.DelayS <= 0 {
			t.Fatalf("%s: delay=%v sta=%+v", c.Name, cn.DelayS, cn.STA)
		}
		ratio := cn.STA.DelayS / cn.DelayS
		t.Logf("%s: sta %.1f ps vs spice %.1f ps (ratio %.2f, %d instances, %d levels)",
			c.Name, cn.STA.DelayS*1e12, cn.DelayS*1e12, ratio, cn.STA.Instances, cn.STA.Levels)
		window, ok := staSpiceRatio[c.Name]
		if !ok {
			window = staSpiceDefault
		}
		if ratio < window[0] || ratio > window[1] {
			t.Errorf("%s: STA/spice ratio %.2f outside [%g, %g]",
				c.Name, ratio, window[0], window[1])
		}
		// The speed claim on the big circuits: the sta stage must run at
		// least 50x faster than the transient delay stage.
		if c.Name == "mult4" || c.Name == "rca16" || c.Name == "mult8" {
			var staMs, delayMs float64
			for _, st := range res.Stages {
				switch st.Stage {
				case "sta/cnfet":
					staMs = st.Millis
				case "delay/cnfet":
					delayMs = st.Millis
				}
			}
			if staMs <= 0 || delayMs <= 0 {
				t.Fatalf("%s: missing stage traces (sta=%vms delay=%vms)", c.Name, staMs, delayMs)
			}
			if delayMs < 50*staMs {
				t.Errorf("%s: sta stage %.2fms vs transient %.2fms — want >= 50x", c.Name, staMs, delayMs)
			}
		}
	}
}

// TestSTAUsesExtractedWireLoads pins the satellite: the sta stage reads
// the wire stage's extracted per-net capacitances, so a fatter wire
// model must slow the STA answer.
func TestSTAUsesExtractedWireLoads(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization-backed flow")
	}
	k := kit(t)
	ctx := context.Background()
	run := func(capPerNM float64) float64 {
		res, err := k.Run(ctx, Request{
			Circuit:      "fulladder",
			Techs:        []string{"cnfet"},
			Analyses:     []Analysis{AnalysisSTA},
			WireCapPerNM: capPerNM,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Techs["cnfet"].STA.DelayS
	}
	thin, fat := run(0.01e-18), run(1e-18)
	if fat <= thin {
		t.Fatalf("wire load ignored: thin=%v fat=%v", thin, fat)
	}
}

// TestSTAStageCached pins the caching contract: a repeated sta request
// serves every stage from the memo cache.
func TestSTAStageCached(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization-backed flow")
	}
	k := kit(t)
	ctx := context.Background()
	req := Request{Circuit: "mux2", Techs: []string{"cnfet"}, Analyses: []Analysis{AnalysisSTA}}
	if _, err := k.Run(ctx, req); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	res, err := k.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stages {
		if !st.Cached {
			t.Errorf("stage %s recomputed on rerun", st.Stage)
		}
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Errorf("cached rerun took %v", d)
	}
}
