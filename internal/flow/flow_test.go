package flow

import (
	"bytes"
	"testing"

	"cnfetdk/internal/gdsii"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/place"
	"cnfetdk/internal/synth"
)

var kitCache *Kit

func kit(t *testing.T) *Kit {
	t.Helper()
	if kitCache == nil {
		k, err := NewKit()
		if err != nil {
			t.Fatal(err)
		}
		kitCache = k
	}
	return kitCache
}

func TestCaseStudy2FullAdder(t *testing.T) {
	if testing.Short() {
		t.Skip("transient-heavy")
	}
	k := kit(t)
	res, err := k.RunFullAdder()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("FA delay: CNFET %.1fps CMOS %.1fps gain %.2fx (paper ~3.5x)",
		res.DelayCNFET*1e12, res.DelayCMOS*1e12, res.DelayGain())
	t.Logf("FA energy: CNFET %.3ffJ CMOS %.3ffJ gain %.2fx (paper ~1.5x)",
		res.EnergyCNFET*1e15, res.EnergyCMOS*1e15, res.EnergyGain())
	t.Logf("FA area: CMOS %.0f λ², scheme1 %.0f λ² (%.2fx), scheme2 %.0f λ² (%.2fx)",
		res.AreaCMOS, res.AreaS1, res.AreaGainS1(), res.AreaS2, res.AreaGainS2())

	if g := res.DelayGain(); g < 2.5 || g > 5 {
		t.Fatalf("FA delay gain = %.2f, want ~3.5 (2.5..5)", g)
	}
	if g := res.EnergyGain(); g < 1.2 || g > 2.6 {
		t.Fatalf("FA energy gain = %.2f, want >1 (paper 1.5)", g)
	}
	if g := res.AreaGainS1(); g < 1.15 {
		t.Fatalf("scheme-1 area gain = %.2f, want ~1.4", g)
	}
	if res.AreaGainS2() <= res.AreaGainS1() {
		t.Fatal("scheme 2 must beat scheme 1 on area")
	}
	if res.UtilS2 <= res.UtilS1 {
		t.Fatal("scheme 2 must have better utilization")
	}
}

func TestBuildCircuitUnknownCell(t *testing.T) {
	k := kit(t)
	nl := &synth.Netlist{
		Name:      "bad",
		Instances: []synth.Instance{{Name: "u1", Cell: "FOO_1X", Conns: map[string]string{}}},
	}
	if _, _, err := k.BuildCircuit(k.CNFET, nl, nil); err == nil {
		t.Fatal("unknown cell must fail")
	}
}

func TestCellAreaGainDeclines(t *testing.T) {
	k := kit(t)
	g1, err := k.CellAreaGain(1)
	if err != nil {
		t.Fatal(err)
	}
	g9, err := k.CellAreaGain(9)
	if err != nil {
		t.Fatal(err)
	}
	if g1 < 1.35 || g1 > 1.45 {
		t.Fatalf("inverter area gain at 1X = %.3f, want ~1.4", g1)
	}
	if g9 >= g1 {
		t.Fatalf("area gain should decline with width: %.3f at 9X vs %.3f at 1X", g9, g1)
	}
}

func TestDriveOf(t *testing.T) {
	cases := map[string]float64{
		"NAND2_2X": 2, "INV_9X": 9, "INV": 1, "AOI21_1X": 1,
	}
	for in, want := range cases {
		if got := driveOf(in); got != want {
			t.Errorf("driveOf(%s) = %v, want %v", in, got, want)
		}
	}
}

func TestExportFullAdderGDS(t *testing.T) {
	k := kit(t)
	nl := synth.FullAdder()
	p, err := place.Shelves(k.CNFET, nl, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlacementGDS(&buf, k.CNFET, p, "FULLADDER_S2"); err != nil {
		t.Fatal(err)
	}
	lib, err := gdsii.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	top := lib.Find("FULLADDER_S2")
	if top == nil {
		t.Fatal("missing top structure")
	}
	if len(top.SRefs) != len(nl.Instances) {
		t.Fatalf("srefs = %d, want %d", len(top.SRefs), len(nl.Instances))
	}
	// Distinct cells present with geometry on the CNT and gate layers.
	inv := lib.Find("NAND2_2X_scheme2")
	if inv == nil {
		var have []string
		for _, s := range lib.Structures {
			have = append(have, s.Name)
		}
		t.Fatalf("missing NAND2 structure; have %v", have)
	}
	layers := map[int16]bool{}
	for _, b := range inv.Boundaries {
		layers[b.Layer] = true
	}
	for _, want := range []int16{gdsii.LayerCNT, gdsii.LayerGate, gdsii.LayerContact, gdsii.LayerPDope, gdsii.LayerNDope} {
		if !layers[want] {
			t.Errorf("NAND2 structure missing layer %d", want)
		}
	}
}

func TestExportCellDeduplicates(t *testing.T) {
	k := kit(t)
	lib := gdsii.NewLibrary("X")
	c := k.CNFET.MustGet("INV_1X")
	n1 := ExportCell(lib, c, layout.Scheme1)
	n2 := ExportCell(lib, c, layout.Scheme1)
	if n1 != n2 {
		t.Fatal("re-export should return the same structure")
	}
	if len(lib.Structures) != 1 {
		t.Fatalf("structures = %d, want 1", len(lib.Structures))
	}
}
