package drc

import (
	"testing"

	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
)

func TestGeneratedCellsAreClean(t *testing.T) {
	rs := rules.Default65nm(rules.CNFET)
	for _, f := range []string{"A", "AB", "ABC", "A+B+C", "AB+C", "AB+CD", "ABC+D", "(A+B)(C+D)"} {
		g, err := network.NewGate(f, logic.MustParse(f), 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, style := range []layout.Style{layout.StyleCompact, layout.StyleEtched} {
			c, err := layout.Generate(f, g, style, geom.Lambda(4), rs)
			if err != nil {
				t.Fatal(err)
			}
			if vs := CheckCell(c); len(vs) > 0 {
				t.Errorf("%s %v: %d DRC violations, first: %v", f, style, len(vs), vs[0])
			}
		}
	}
}

func TestCMOSCellsAreClean(t *testing.T) {
	rs := rules.Default65nm(rules.CMOS)
	g, err := network.NewGate("NAND2", logic.MustParse("AB"), 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := layout.Generate("NAND2", g, layout.StyleCompact, geom.Lambda(4), rs)
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckCell(c); len(vs) > 0 {
		t.Fatalf("CMOS NAND2: %v", vs[0])
	}
}

func TestDetectsNarrowGate(t *testing.T) {
	rs := rules.Default65nm(rules.CNFET)
	g := &layout.NetGeom{
		Type: network.NFET,
		Elements: []layout.Element{
			{Kind: layout.ElemGate, Rect: geom.R(0, 0, geom.Lambda(1), geom.Lambda(4)), Input: "A"},
		},
	}
	vs := CheckNetwork(g, rs)
	if len(vs) == 0 {
		t.Fatal("narrow gate should violate")
	}
	if vs[0].Rule != "gate.length" {
		t.Fatalf("rule = %s", vs[0].Rule)
	}
}

func TestDetectsTightSpacing(t *testing.T) {
	rs := rules.Default65nm(rules.CNFET)
	g := &layout.NetGeom{
		Type: network.NFET,
		Elements: []layout.Element{
			{Kind: layout.ElemGate, Rect: geom.R(0, 0, geom.Lambda(2), geom.Lambda(4)), Input: "A"},
			{Kind: layout.ElemGate, Rect: geom.R(geom.Lambda(3), 0, geom.Lambda(5), geom.Lambda(4)), Input: "B"},
		},
	}
	found := false
	for _, v := range CheckNetwork(g, rs) {
		if v.Rule == "gate.space" {
			found = true
		}
	}
	if !found {
		t.Fatal("1λ gate spacing should violate the 2λ rule")
	}
}

func TestDetectsContactShort(t *testing.T) {
	rs := rules.Default65nm(rules.CNFET)
	g := &layout.NetGeom{
		Type: network.NFET,
		Elements: []layout.Element{
			{Kind: layout.ElemContact, Rect: geom.R(0, 0, geom.Lambda(3), geom.Lambda(4)), Net: "VDD"},
			{Kind: layout.ElemContact, Rect: geom.R(geom.Lambda(2), 0, geom.Lambda(5), geom.Lambda(4)), Net: "OUT"},
		},
	}
	found := false
	for _, v := range CheckNetwork(g, rs) {
		if v.Rule == "contact.short" {
			found = true
		}
	}
	if !found {
		t.Fatal("overlapping different-net contacts should violate")
	}
}
