// Package drc checks generated layouts against the lambda design rules:
// minimum widths, spacings, overlap and enclosure invariants. The compact
// layouts must come out clean by construction; DRC guards the generators
// against regressions.
package drc

import (
	"fmt"

	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/rules"
)

// Violation is one design-rule failure.
type Violation struct {
	Rule string
	At   geom.Rect
	Msg  string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s at %v: %s", v.Rule, v.At, v.Msg)
}

// CheckNetwork verifies one pull network's geometry.
func CheckNetwork(g *layout.NetGeom, rs rules.Rules) []Violation {
	var out []Violation
	bad := func(rule string, at geom.Rect, format string, args ...interface{}) {
		out = append(out, Violation{Rule: rule, At: at, Msg: fmt.Sprintf(format, args...)})
	}
	var gates, contacts, etches []geom.Rect
	for _, e := range g.Elements {
		switch e.Kind {
		case layout.ElemGate:
			gates = append(gates, e.Rect)
			if e.Rect.W() != rs.GateLen {
				bad("gate.length", e.Rect, "gate length %vλ != Lg %vλ",
					e.Rect.W().Lambdas(), rs.GateLen.Lambdas())
			}
			if e.Rect.H() < rs.MinTransW {
				bad("gate.width", e.Rect, "device width %vλ below minimum %vλ",
					e.Rect.H().Lambdas(), rs.MinTransW.Lambdas())
			}
		case layout.ElemContact:
			contacts = append(contacts, e.Rect)
			if e.Rect.W() < rs.ContactW {
				bad("contact.width", e.Rect, "contact width %vλ below %vλ",
					e.Rect.W().Lambdas(), rs.ContactW.Lambdas())
			}
		case layout.ElemEtch:
			etches = append(etches, e.Rect)
			if e.Rect.W() < rs.EtchW && e.Rect.H() < rs.EtchW {
				bad("etch.width", e.Rect, "etch region below lithography minimum %vλ",
					rs.EtchW.Lambdas())
			}
		}
	}
	// Gates must not overlap contacts and must keep Lgs/Lgd spacing.
	for _, gr := range gates {
		for _, cr := range contacts {
			if gr.Overlaps(cr) {
				bad("gate.contact.overlap", gr, "gate overlaps contact %v", cr)
				continue
			}
			if dx := hGap(gr, cr); dx >= 0 && dx < int64(rs.GateContactGap) && vOverlap(gr, cr) {
				bad("gate.contact.space", gr, "gate-contact gap %.2fλ below %vλ",
					geom.Coord(dx).Lambdas(), rs.GateContactGap.Lambdas())
			}
		}
	}
	// Gate-to-gate spacing along the row.
	for i := range gates {
		for j := i + 1; j < len(gates); j++ {
			a, b := gates[i], gates[j]
			if a.Overlaps(b) {
				bad("gate.overlap", a, "gates overlap")
				continue
			}
			if dx := hGap(a, b); dx >= 0 && dx < int64(rs.GateGateGap) && vOverlap(a, b) {
				bad("gate.space", a, "gate-gate gap %.2fλ below %vλ",
					geom.Coord(dx).Lambdas(), rs.GateGateGap.Lambdas())
			}
		}
	}
	// Contacts of different nets must not touch.
	for i, a := range g.Elements {
		if a.Kind != layout.ElemContact {
			continue
		}
		for j := i + 1; j < len(g.Elements); j++ {
			b := g.Elements[j]
			if b.Kind != layout.ElemContact || a.Net == b.Net {
				continue
			}
			if a.Rect.Overlaps(b.Rect) {
				bad("contact.short", a.Rect, "contacts %s and %s overlap", a.Net, b.Net)
			}
		}
	}
	return out
}

// hGap returns the horizontal clearance between two rects (-1 if they
// overlap horizontally).
func hGap(a, b geom.Rect) int64 {
	switch {
	case a.Max.X <= b.Min.X:
		return int64(b.Min.X - a.Max.X)
	case b.Max.X <= a.Min.X:
		return int64(a.Min.X - b.Max.X)
	default:
		return -1
	}
}

// vOverlap reports whether two rects share any vertical extent.
func vOverlap(a, b geom.Rect) bool {
	return a.Min.Y < b.Max.Y && b.Min.Y < a.Max.Y
}

// CheckCell verifies both networks of a cell.
func CheckCell(c *layout.Cell) []Violation {
	out := CheckNetwork(c.PUN, c.Rules)
	out = append(out, CheckNetwork(c.PDN, c.Rules)...)
	return out
}
