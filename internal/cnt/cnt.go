// Package cnt models carbon-nanotube populations over a layout region:
// dense aligned arrays with a configurable fraction of mispositioned tubes
// (bounded-angle straight lines, as assumed by the paper's immunity
// argument) and optionally metallic tubes for extension studies.
//
// The paper assumes metallic CNTs are removed during manufacturing
// (Section II), so MetallicFrac defaults to zero; the knob exists to study
// what the layouts do when that assumption is violated.
package cnt

import (
	"math"
	"math/rand"

	"cnfetdk/internal/geom"
)

// Tube is one carbon nanotube, modelled as a straight segment.
type Tube struct {
	Line geom.Line
	// Mispositioned marks tubes drawn from the misalignment distribution
	// rather than the aligned array.
	Mispositioned bool
	// Metallic tubes conduct regardless of gate state.
	Metallic bool
}

// AngleDeg returns the tube's angle from the +X axis.
func (t Tube) AngleDeg() float64 { return t.Line.AngleDeg() }

// Params configures population synthesis.
type Params struct {
	// PitchNM is the target inter-tube pitch in nanometres (the paper's
	// optimal value is ~5nm; growth processes are coarser).
	PitchNM float64
	// LambdaNM converts the layout grid to nanometres (32.5 at 65nm).
	LambdaNM float64
	// MisalignedFrac is the fraction of tubes drawn mispositioned
	// ("a small percentage of CNTs tend to still get misaligned").
	MisalignedFrac float64
	// MaxAngleDeg bounds the misalignment angle (uniform in ±MaxAngleDeg).
	MaxAngleDeg float64
	// MetallicFrac is the fraction of metallic tubes (post-removal).
	MetallicFrac float64
}

// DefaultParams returns a population matching the paper's assumptions:
// 5nm pitch at the 65nm node, a few percent mispositioned within ±15°, no
// metallic tubes.
func DefaultParams() Params {
	return Params{
		PitchNM:        5,
		LambdaNM:       32.5,
		MisalignedFrac: 0.05,
		MaxAngleDeg:    15,
		MetallicFrac:   0,
	}
}

// pitchCoord returns the tube pitch in quarter-lambda Coord units
// (fractional pitches are handled by accumulating in float space).
func (p Params) pitchCoord() float64 {
	return p.PitchNM / p.LambdaNM * float64(geom.QuarterLambda)
}

// Generate synthesizes a tube population covering region. Aligned tubes
// run horizontally at the configured pitch; each tube is independently
// mispositioned with probability MisalignedFrac, in which case it is
// replaced by a line at a uniform angle within ±MaxAngleDeg anchored at a
// uniform point of the region. The rng makes runs reproducible.
func Generate(region geom.Rect, p Params, rng *rand.Rand) []Tube {
	if region.Empty() {
		return nil
	}
	pitch := p.pitchCoord()
	if pitch <= 0 {
		pitch = 1
	}
	var tubes []Tube
	x0 := float64(region.Min.X)
	x1 := float64(region.Max.X)
	margin := (x1 - x0) * 0.05
	for y := float64(region.Min.Y) + pitch/2; y < float64(region.Max.Y); y += pitch {
		t := Tube{}
		if rng.Float64() < p.MisalignedFrac {
			t.Mispositioned = true
			t.Line = misalignedLine(region, p, rng)
		} else {
			t.Line = geom.Ln(x0-margin, y, x1+margin, y)
		}
		if p.MetallicFrac > 0 && rng.Float64() < p.MetallicFrac {
			t.Metallic = true
		}
		tubes = append(tubes, t)
	}
	return tubes
}

// misalignedLine draws a random straight tube crossing the region at a
// bounded angle: anchor uniform in the region, angle uniform in
// ±MaxAngleDeg, length long enough to span the region.
func misalignedLine(region geom.Rect, p Params, rng *rand.Rand) geom.Line {
	ax := float64(region.Min.X) + rng.Float64()*float64(region.W())
	ay := float64(region.Min.Y) + rng.Float64()*float64(region.H())
	ang := (2*rng.Float64() - 1) * p.MaxAngleDeg * math.Pi / 180
	// Long enough to cross the whole region regardless of anchor.
	l := float64(region.W()) + float64(region.H())
	dx, dy := math.Cos(ang)*l, math.Sin(ang)*l
	return geom.Ln(ax-dx, ay-dy, ax+dx, ay+dy)
}

// Count returns the expected number of aligned tubes across a transistor
// of the given width (in Coord units): the paper's "number of CNTs per
// device" for a given pitch.
func Count(width geom.Coord, p Params) int {
	n := int(float64(width) / p.pitchCoord())
	if n < 1 {
		n = 1
	}
	return n
}
