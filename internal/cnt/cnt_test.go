package cnt

import (
	"math"
	"math/rand"
	"testing"

	"cnfetdk/internal/geom"
)

func region() geom.Rect {
	return geom.R(0, 0, geom.Lambda(24), geom.Lambda(12))
}

func TestGenerateAlignedPopulation(t *testing.T) {
	p := DefaultParams()
	p.MisalignedFrac = 0
	tubes := Generate(region(), p, rand.New(rand.NewSource(1)))
	if len(tubes) == 0 {
		t.Fatal("no tubes")
	}
	// 12λ = 390nm at 5nm pitch → 78 tubes.
	want := int(12 * 32.5 / 5)
	if len(tubes) < want-2 || len(tubes) > want+2 {
		t.Fatalf("tube count = %d, want ~%d", len(tubes), want)
	}
	for _, tb := range tubes {
		if tb.Mispositioned || tb.Metallic {
			t.Fatal("aligned population flags wrong")
		}
		if tb.AngleDeg() != 0 {
			t.Fatalf("aligned tube at angle %v", tb.AngleDeg())
		}
		// Tubes must span the region horizontally.
		if tb.Line.A.X > float64(region().Min.X) || tb.Line.B.X < float64(region().Max.X) {
			t.Fatal("aligned tube does not span region")
		}
	}
}

func TestMisalignedFraction(t *testing.T) {
	p := DefaultParams()
	p.MisalignedFrac = 0.3
	rng := rand.New(rand.NewSource(2))
	mis, total := 0, 0
	for i := 0; i < 50; i++ {
		for _, tb := range Generate(region(), p, rng) {
			total++
			if tb.Mispositioned {
				mis++
			}
		}
	}
	frac := float64(mis) / float64(total)
	if math.Abs(frac-0.3) > 0.05 {
		t.Fatalf("mispositioned fraction = %.3f, want ~0.3", frac)
	}
}

func TestMisalignedAngleBound(t *testing.T) {
	p := DefaultParams()
	p.MisalignedFrac = 1
	p.MaxAngleDeg = 10
	tubes := Generate(region(), p, rand.New(rand.NewSource(3)))
	for _, tb := range tubes {
		a := math.Abs(tb.AngleDeg())
		if a > 10.0001 {
			t.Fatalf("tube angle %v exceeds bound", a)
		}
	}
}

func TestMetallicFraction(t *testing.T) {
	p := DefaultParams()
	p.MetallicFrac = 0.5
	rng := rand.New(rand.NewSource(4))
	met, total := 0, 0
	for i := 0; i < 30; i++ {
		for _, tb := range Generate(region(), p, rng) {
			total++
			if tb.Metallic {
				met++
			}
		}
	}
	frac := float64(met) / float64(total)
	if math.Abs(frac-0.5) > 0.06 {
		t.Fatalf("metallic fraction = %.3f, want ~0.5", frac)
	}
}

func TestCount(t *testing.T) {
	p := DefaultParams() // 5nm pitch
	// A 4λ (130nm) device carries 26 tubes.
	if got := Count(geom.Lambda(4), p); got != 26 {
		t.Fatalf("Count(4λ) = %d, want 26", got)
	}
	// Never less than one tube.
	p.PitchNM = 1e6
	if got := Count(geom.Lambda(4), p); got != 1 {
		t.Fatalf("Count with huge pitch = %d, want 1", got)
	}
}

func TestEmptyRegion(t *testing.T) {
	p := DefaultParams()
	if got := Generate(geom.Rect{}, p, rand.New(rand.NewSource(5))); got != nil {
		t.Fatal("empty region should produce no tubes")
	}
}

func TestDeterminism(t *testing.T) {
	p := DefaultParams()
	p.MisalignedFrac = 0.5
	a := Generate(region(), p, rand.New(rand.NewSource(7)))
	b := Generate(region(), p, rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].Line != b[i].Line {
			t.Fatal("nondeterministic geometry")
		}
	}
}
