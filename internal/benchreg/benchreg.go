// Package benchreg parses `go test -bench` output, reduces repeated
// counts to benchstat-style medians, and gates benchmark regressions
// against a committed baseline — the engine behind the CI
// benchmark-regression job and the `make bench-check` target.
package benchreg

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is the median outcome of one benchmark across its repeated
// counts. BPerOp and AllocsPerOp are pointers so a benchmark that
// legitimately allocates nothing (0) is distinguishable from one whose
// run never reported memory stats (nil): a nil field is never gated, and
// Compare surfaces it as a warning instead of silently passing.
type Result struct {
	Runs        int      `json:"runs"`
	NsPerOp     float64  `json:"ns_per_op"`
	BPerOp      *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// File is the serialized benchmark summary (BENCH_CURRENT.json /
// BENCH_BASELINE.json).
type File struct {
	GoOS       string            `json:"goos,omitempty"`
	GoArch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// run is one parsed benchmark line. The has* flags record whether the
// line actually carried the memory columns (b.ReportAllocs / -benchmem).
type run struct {
	nsPerOp     float64
	bPerOp      float64
	hasB        bool
	allocsPerOp float64
	hasAllocs   bool
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// Parse reads `go test -bench` output: one run per benchmark line,
// repeated counts accumulating under one (GOMAXPROCS-stripped) name.
func Parse(r io.Reader) (*File, map[string][]float64, error) {
	f := &File{Benchmarks: map[string]Result{}}
	runs := map[string][]run{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.GoOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			f.GoArch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		var one run
		fields := strings.Fields(m[3])
		// Metric fields come in (value, unit) pairs after the iteration
		// count: "123456 ns/op  24 B/op  3 allocs/op  1.5 custom-unit".
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("benchreg: bad value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				one.nsPerOp = v
			case "B/op":
				one.bPerOp = v
				one.hasB = true
			case "allocs/op":
				one.allocsPerOp = v
				one.hasAllocs = true
			}
		}
		if one.nsPerOp == 0 {
			continue // a custom-metrics-only line never gates
		}
		if _, seen := runs[name]; !seen {
			order = append(order, name)
		}
		runs[name] = append(runs[name], one)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}

	raw := map[string][]float64{}
	for _, name := range order {
		rs := runs[name]
		ns := make([]float64, len(rs))
		var bs, as []float64
		for i, r := range rs {
			ns[i] = r.nsPerOp
			if r.hasB {
				bs = append(bs, r.bPerOp)
			}
			if r.hasAllocs {
				as = append(as, r.allocsPerOp)
			}
		}
		raw[name] = append([]float64(nil), ns...)
		res := Result{Runs: len(rs), NsPerOp: median(ns)}
		if len(bs) > 0 {
			m := median(bs)
			res.BPerOp = &m
		}
		if len(as) > 0 {
			m := median(as)
			res.AllocsPerOp = &m
		}
		f.Benchmarks[name] = res
	}
	return f, raw, nil
}

// median destructively computes the median of vs (0 for empty input).
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	mid := len(vs) / 2
	if len(vs)%2 == 1 {
		return vs[mid]
	}
	return (vs[mid-1] + vs[mid]) / 2
}

// allocSlop is the absolute allocs/op headroom granted on top of the
// relative gate: tiny benchmarks (2 allocs/op) must not fail CI because
// one incidental allocation appeared, while the relative bound still
// catches real regressions on allocation-heavy paths.
const allocSlop = 2

// Delta is one baseline-vs-current comparison row.
type Delta struct {
	Name            string
	BaseNsPerOp     float64
	CurNsPerOp      float64
	Ratio           float64 // cur/base - 1 (positive = slower)
	BaseAllocs      *float64
	CurAllocs       *float64
	AllocRatio      float64 // cur/base - 1 (positive = more allocations)
	NsRegressed     bool
	AllocsRegressed bool
	Regressed       bool
	Missing         bool // in the gated baseline set but absent from the current run
	// Warning flags a gated benchmark whose allocs/op could not be
	// gated because the field is missing from the baseline or the
	// current run; it is surfaced instead of passing silently.
	Warning string
}

// Compare gates the current summary against a baseline: benchmarks whose
// names match filter (the gated set) fail when their median ns/op or
// allocs/op regresses by more than maxRegress (0.30 = +30%; allocs get
// allocSlop absolute headroom on top) or when they vanished from the
// current run. A gated benchmark missing its allocs/op field in either
// file is not alloc-gated, but the row carries a Warning so the gap is
// visible. Ungated benchmarks still appear in the returned rows
// (informational), sorted by name.
func Compare(baseline, current *File, filter *regexp.Regexp, maxRegress float64) (deltas []Delta, failed bool) {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Benchmarks[name]
		gated := filter == nil || filter.MatchString(name)
		cur, ok := current.Benchmarks[name]
		d := Delta{Name: name, BaseNsPerOp: base.NsPerOp, BaseAllocs: base.AllocsPerOp}
		if !ok {
			d.Missing = true
			if gated {
				d.Regressed = true
				failed = true
			}
			deltas = append(deltas, d)
			continue
		}
		d.CurNsPerOp = cur.NsPerOp
		d.CurAllocs = cur.AllocsPerOp
		if base.NsPerOp > 0 {
			d.Ratio = cur.NsPerOp/base.NsPerOp - 1
		}
		if base.AllocsPerOp != nil && cur.AllocsPerOp != nil {
			ba, ca := *base.AllocsPerOp, *cur.AllocsPerOp
			if ba > 0 {
				d.AllocRatio = ca/ba - 1
			}
			d.AllocsRegressed = ca > ba*(1+maxRegress)+allocSlop
		} else if gated {
			switch {
			case base.AllocsPerOp == nil && cur.AllocsPerOp == nil:
				d.Warning = "allocs/op missing from baseline and current run; allocs not gated"
			case base.AllocsPerOp == nil:
				d.Warning = "allocs/op missing from baseline; allocs not gated"
			default:
				d.Warning = "allocs/op missing from current run; allocs not gated"
			}
		}
		d.NsRegressed = d.Ratio > maxRegress
		if gated && (d.NsRegressed || d.AllocsRegressed) {
			d.Regressed = true
			failed = true
		}
		deltas = append(deltas, d)
	}
	return deltas, failed
}

// fmtAllocs renders an optional allocs/op median ("?" when unreported).
func fmtAllocs(p *float64) string {
	if p == nil {
		return "?"
	}
	return fmt.Sprintf("%.0f", *p)
}

// Format renders comparison rows as an aligned table.
func Format(w io.Writer, deltas []Delta) {
	for _, d := range deltas {
		switch {
		case d.Missing:
			fmt.Fprintf(w, "%-36s %14.0f ns/op -> MISSING  FAIL\n", d.Name, d.BaseNsPerOp)
		default:
			verdict := "ok"
			if d.Regressed {
				verdict = "FAIL"
				switch {
				case d.NsRegressed && d.AllocsRegressed:
					verdict += " (ns/op, allocs/op)"
				case d.AllocsRegressed:
					verdict += " (allocs/op)"
				default:
					verdict += " (ns/op)"
				}
			}
			if d.Warning != "" {
				verdict += "  WARN: " + d.Warning
			}
			fmt.Fprintf(w, "%-36s %14.0f ns/op -> %14.0f ns/op  %+7.1f%%  %7s -> %7s allocs/op  %+7.1f%%  %s\n",
				d.Name, d.BaseNsPerOp, d.CurNsPerOp, 100*d.Ratio,
				fmtAllocs(d.BaseAllocs), fmtAllocs(d.CurAllocs), 100*d.AllocRatio, verdict)
		}
	}
}
