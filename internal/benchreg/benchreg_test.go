package benchreg

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cnfetdk
cpu: AMD EPYC 7B13
BenchmarkLibraryBuildPipelined-4   	    3021	    395000 ns/op	  120 B/op	   5 allocs/op
BenchmarkLibraryBuildPipelined-4   	    3100	    385000 ns/op	  118 B/op	   5 allocs/op
BenchmarkLibraryBuildPipelined-4   	    2950	    405000 ns/op	  122 B/op	   5 allocs/op
BenchmarkFig7FO4Sweep-4            	  100000	     10500 ns/op	         4.200 peak-delay-gain	         5.000 optimal-pitch-nm
BenchmarkFig7FO4Sweep-4            	  100000	     10200 ns/op	         4.200 peak-delay-gain	         5.000 optimal-pitch-nm
BenchmarkFig7FO4Sweep-4            	  100000	     10900 ns/op	         4.200 peak-delay-gain	         5.000 optimal-pitch-nm
PASS
ok  	cnfetdk	12.3s
`

func TestParseMedians(t *testing.T) {
	f, raw, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.GoOS != "linux" || f.GoArch != "amd64" || f.CPU != "AMD EPYC 7B13" {
		t.Fatalf("meta = %+v", f)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	lib := f.Benchmarks["LibraryBuildPipelined"]
	if lib.Runs != 3 || lib.NsPerOp != 395000 {
		t.Fatalf("library median = %+v, want 3 runs at 395000 ns/op", lib)
	}
	if lib.BPerOp == nil || *lib.BPerOp != 120 || lib.AllocsPerOp == nil || *lib.AllocsPerOp != 5 {
		t.Fatalf("library mem medians = %+v", lib)
	}
	fig7 := f.Benchmarks["Fig7FO4Sweep"]
	if fig7.NsPerOp != 10500 {
		t.Fatalf("fig7 median = %+v (custom metrics must not confuse the parser)", fig7)
	}
	if fig7.BPerOp != nil || fig7.AllocsPerOp != nil {
		t.Fatalf("fig7 never reported memory columns; medians must be nil, got %+v", fig7)
	}
	if len(raw["LibraryBuildPipelined"]) != 3 {
		t.Fatalf("raw runs = %v", raw)
	}
}

func TestMedianEvenCount(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median = %v, want 2.5", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %v", m)
	}
}

func TestCompareGates(t *testing.T) {
	base := &File{Benchmarks: map[string]Result{
		"LibraryBuildPipelined": {Runs: 5, NsPerOp: 1000},
		"FlowCachedRerun":       {Runs: 5, NsPerOp: 100},
		"Fig7FO4Sweep":          {Runs: 5, NsPerOp: 50},
		"Removed":               {Runs: 5, NsPerOp: 10},
	}}
	cur := &File{Benchmarks: map[string]Result{
		"LibraryBuildPipelined": {Runs: 5, NsPerOp: 1250}, // +25%: within the gate
		"FlowCachedRerun":       {Runs: 5, NsPerOp: 140},  // +40%: regression
		"Fig7FO4Sweep":          {Runs: 5, NsPerOp: 500},  // +900% but ungated
	}}
	filter := regexp.MustCompile(`Library|Flow|Removed`)
	deltas, failed := Compare(base, cur, filter, 0.30)
	if !failed {
		t.Fatal("a +40% gated regression must fail")
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["LibraryBuildPipelined"].Regressed {
		t.Fatal("+25% must pass a 30% gate")
	}
	if !byName["FlowCachedRerun"].Regressed {
		t.Fatal("+40% must fail a 30% gate")
	}
	if byName["Fig7FO4Sweep"].Regressed {
		t.Fatal("ungated benchmarks must not fail the gate")
	}
	if d := byName["Removed"]; !d.Missing || !d.Regressed {
		t.Fatalf("a vanished gated benchmark must fail: %+v", d)
	}

	var buf bytes.Buffer
	Format(&buf, deltas)
	out := buf.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "MISSING") {
		t.Fatalf("format output misses verdicts:\n%s", out)
	}
}

func f64(v float64) *float64 { return &v }

func TestCompareGatesAllocs(t *testing.T) {
	base := &File{Benchmarks: map[string]Result{
		"StoreDiskWarm":   {Runs: 5, NsPerOp: 1000, AllocsPerOp: f64(100)},
		"FlowCachedRerun": {Runs: 5, NsPerOp: 1000, AllocsPerOp: f64(5)},
		"NoAllocBaseline": {Runs: 5, NsPerOp: 1000},
		"ZeroAllocs":      {Runs: 5, NsPerOp: 1000, AllocsPerOp: f64(0)},
	}}
	cur := &File{Benchmarks: map[string]Result{
		// ns/op steady, allocs/op +50%: an allocation regression alone
		// must fail the gate.
		"StoreDiskWarm": {Runs: 5, NsPerOp: 1000, AllocsPerOp: f64(150)},
		// 5 -> 8 allocs is over +30% but within the absolute slop:
		// tiny counts must not flake the gate.
		"FlowCachedRerun": {Runs: 5, NsPerOp: 1000, AllocsPerOp: f64(8)},
		// No baseline allocs recorded: not alloc-gated, but loudly so.
		"NoAllocBaseline": {Runs: 5, NsPerOp: 1000, AllocsPerOp: f64(9000)},
		// A genuinely zero-alloc baseline is a value, not a gap: growth
		// beyond the absolute slop must still gate.
		"ZeroAllocs": {Runs: 5, NsPerOp: 1000, AllocsPerOp: f64(40)},
	}}
	deltas, failed := Compare(base, cur, nil, 0.30)
	if !failed {
		t.Fatal("a +50% alloc regression must fail")
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["StoreDiskWarm"]; !d.AllocsRegressed || d.NsRegressed || !d.Regressed {
		t.Fatalf("alloc regression verdict: %+v", d)
	}
	if d := byName["FlowCachedRerun"]; d.Regressed {
		t.Fatalf("small absolute alloc growth must pass via slop: %+v", d)
	}
	if d := byName["NoAllocBaseline"]; d.Regressed || d.Warning == "" {
		t.Fatalf("a missing baseline field must warn instead of gating or passing silently: %+v", d)
	}
	if d := byName["ZeroAllocs"]; !d.Regressed || d.Warning != "" {
		t.Fatalf("0 allocs/op is a real baseline and must gate: %+v", d)
	}

	var buf bytes.Buffer
	Format(&buf, deltas)
	out := buf.String()
	if !strings.Contains(out, "allocs/op") || !strings.Contains(out, "FAIL (allocs/op)") {
		t.Fatalf("format output misses the alloc verdict:\n%s", out)
	}
	if !strings.Contains(out, "WARN") {
		t.Fatalf("format output misses the missing-field warning:\n%s", out)
	}
}

func TestCompareMissingCurrentAllocsWarns(t *testing.T) {
	base := &File{Benchmarks: map[string]Result{
		"Hot": {Runs: 5, NsPerOp: 1000, AllocsPerOp: f64(10)},
	}}
	cur := &File{Benchmarks: map[string]Result{
		"Hot": {Runs: 5, NsPerOp: 1000},
	}}
	deltas, failed := Compare(base, cur, nil, 0.30)
	if failed {
		t.Fatalf("missing current allocs must not fail the gate: %+v", deltas)
	}
	if len(deltas) != 1 || !strings.Contains(deltas[0].Warning, "current run") {
		t.Fatalf("want a current-run warning, got %+v", deltas)
	}
}

func TestCompareNoRegression(t *testing.T) {
	base := &File{Benchmarks: map[string]Result{"A": {NsPerOp: 100}}}
	cur := &File{Benchmarks: map[string]Result{"A": {NsPerOp: 90}}}
	deltas, failed := Compare(base, cur, nil, 0.30)
	if failed || len(deltas) != 1 || deltas[0].Regressed {
		t.Fatalf("improvement flagged as regression: %+v (failed=%v)", deltas, failed)
	}
}
