// Package network models the series-parallel transistor networks of static
// CNFET/CMOS gates and their intended electrical behaviour.
//
// A cell is specified by its pull-down function f: the PDN lowers f with
// AND=series / OR=parallel using n-type devices (conduct when the input is
// 1), and the PUN lowers the structural dual of f using p-type devices
// (conduct when the input is 0). De Morgan guarantees the two networks
// conduct complementarily, which the immunity checker relies on.
package network

import (
	"fmt"
	"sort"

	"cnfetdk/internal/logic"
)

// DeviceType distinguishes pull-up from pull-down transistors.
type DeviceType int

// Device types.
const (
	NFET DeviceType = iota // conducts when gate input is 1
	PFET                   // conducts when gate input is 0
)

// String returns a short device-type name.
func (d DeviceType) String() string {
	if d == NFET {
		return "n"
	}
	return "p"
}

// SPKind is the node kind of a series-parallel tree.
type SPKind int

// Series-parallel tree node kinds.
const (
	SPLeaf SPKind = iota
	SPSeries
	SPParallel
)

// SPNode is a series-parallel network tree. Leaves carry the controlling
// input and the device width (in multiples of the unit transistor width).
type SPNode struct {
	Kind  SPKind
	Input string  // leaf: controlling input name
	Neg   bool    // leaf: true if the device is driven by the complemented input
	Width float64 // leaf: width multiple assigned by AssignWidths
	Kids  []*SPNode
}

// FromExpr lowers a Boolean expression to an SP tree (AND=series,
// OR=parallel). Negations are only legal directly on variables, matching
// static-gate reality where internal complement hardware does not exist.
func FromExpr(e *logic.Expr) (*SPNode, error) {
	switch e.Op {
	case logic.OpVar:
		return &SPNode{Kind: SPLeaf, Input: e.Name, Width: 1}, nil
	case logic.OpNot:
		k := e.Kids[0]
		if k.Op != logic.OpVar {
			return nil, fmt.Errorf("network: negation of non-variable %q is not series-parallel realizable", k)
		}
		return &SPNode{Kind: SPLeaf, Input: k.Name, Neg: true, Width: 1}, nil
	case logic.OpAnd, logic.OpOr:
		kids := make([]*SPNode, len(e.Kids))
		for i, kid := range e.Kids {
			n, err := FromExpr(kid)
			if err != nil {
				return nil, err
			}
			kids[i] = n
		}
		kind := SPSeries
		if e.Op == logic.OpOr {
			kind = SPParallel
		}
		return &SPNode{Kind: kind, Kids: kids}, nil
	}
	return nil, fmt.Errorf("network: bad op %d", e.Op)
}

// Depth returns the series transistor count of the worst-case path.
func (n *SPNode) Depth() int {
	switch n.Kind {
	case SPLeaf:
		return 1
	case SPSeries:
		d := 0
		for _, k := range n.Kids {
			d += k.Depth()
		}
		return d
	default: // SPParallel
		d := 0
		for _, k := range n.Kids {
			if kd := k.Depth(); kd > d {
				d = kd
			}
		}
		return d
	}
}

// Leaves returns all leaf nodes in layout order.
func (n *SPNode) Leaves() []*SPNode {
	var out []*SPNode
	var walk func(*SPNode)
	walk = func(m *SPNode) {
		if m.Kind == SPLeaf {
			out = append(out, m)
			return
		}
		for _, k := range m.Kids {
			walk(k)
		}
	}
	walk(n)
	return out
}

// AssignWidths sizes every leaf so that the worst-case conduction path of
// the whole network matches the resistance of a single device of width
// unit. Series compositions split the resistance budget proportionally to
// branch depth; each parallel branch must meet the budget alone. This is
// the sizing convention of the paper's symmetric layouts (Fig 4b): the
// NAND3 PDN chain devices come out 3x, the AOI31 PUN devices 2x.
func (n *SPNode) AssignWidths(unit float64) {
	n.assign(unit)
}

func (n *SPNode) assign(g float64) {
	switch n.Kind {
	case SPLeaf:
		n.Width = g
	case SPSeries:
		total := n.Depth()
		for _, k := range n.Kids {
			k.assign(g * float64(total) / float64(k.Depth()))
		}
	case SPParallel:
		for _, k := range n.Kids {
			k.assign(g)
		}
	}
}

// MaxWidth returns the largest leaf width in the tree.
func (n *SPNode) MaxWidth() float64 {
	w := 0.0
	for _, l := range n.Leaves() {
		if l.Width > w {
			w = l.Width
		}
	}
	return w
}

// Device is one transistor of a flattened network.
type Device struct {
	Gate  string // controlling input
	Neg   bool   // complemented input
	Type  DeviceType
	From  string  // source-side net
	To    string  // drain-side net
	Width float64 // multiples of the unit width
}

// Network is a flattened transistor network between two terminal nets.
type Network struct {
	Type     DeviceType
	Top      string // e.g. "VDD" for a PUN, "OUT" for a PDN
	Bottom   string // e.g. "OUT" for a PUN, "GND" for a PDN
	Devices  []Device
	nextNode int
}

// Elaborate flattens an SP tree into a device network connecting top to
// bottom, inventing internal net names ("x1", "x2", ...) for series
// junctions.
func Elaborate(sp *SPNode, typ DeviceType, top, bottom string) *Network {
	nw := &Network{Type: typ, Top: top, Bottom: bottom}
	nw.emit(sp, top, bottom)
	return nw
}

func (nw *Network) emit(n *SPNode, a, b string) {
	switch n.Kind {
	case SPLeaf:
		nw.Devices = append(nw.Devices, Device{
			Gate: n.Input, Neg: n.Neg, Type: nw.Type, From: a, To: b, Width: n.Width,
		})
	case SPParallel:
		for _, k := range n.Kids {
			nw.emit(k, a, b)
		}
	case SPSeries:
		prev := a
		for i, k := range n.Kids {
			next := b
			if i < len(n.Kids)-1 {
				nw.nextNode++
				next = fmt.Sprintf("x%d", nw.nextNode)
			}
			nw.emit(k, prev, next)
			prev = next
		}
	}
}

// Nets returns all net names in the network, terminals first, then internal
// nets sorted.
func (nw *Network) Nets() []string {
	seen := map[string]bool{nw.Top: true, nw.Bottom: true}
	var internal []string
	for _, d := range nw.Devices {
		for _, n := range []string{d.From, d.To} {
			if !seen[n] {
				seen[n] = true
				internal = append(internal, n)
			}
		}
	}
	sort.Strings(internal)
	return append([]string{nw.Top, nw.Bottom}, internal...)
}

// Inputs returns the distinct gate input names, sorted.
func (nw *Network) Inputs() []string {
	seen := map[string]bool{}
	for _, d := range nw.Devices {
		seen[d.Gate] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// deviceOn reports whether device d conducts under input vector v encoded
// over the given ordered inputs.
func deviceOn(d Device, inputs []string, v int) bool {
	k := -1
	for i, n := range inputs {
		if n == d.Gate {
			k = i
			break
		}
	}
	if k < 0 {
		panic(fmt.Sprintf("network: gate %q not in input list", d.Gate))
	}
	bit := v>>uint(k)&1 == 1
	if d.Neg {
		bit = !bit
	}
	if d.Type == NFET {
		return bit
	}
	return !bit
}

// Conduct returns the truth table (over the given ordered inputs) of
// electrical conduction between nets u and v through the network. This is
// the "intended conduction function" used by the immunity checker: a
// mispositioned tube is benign iff its conduction condition implies this.
func (nw *Network) Conduct(u, v string, inputs []string) *logic.Table {
	t := logic.NewTable(inputs)
	nets := nw.Nets()
	id := make(map[string]int, len(nets))
	for i, n := range nets {
		id[n] = i
	}
	ui, uok := id[u]
	vi, vok := id[v]
	if !uok || !vok {
		panic(fmt.Sprintf("network: unknown nets %q/%q", u, v))
	}
	parent := make([]int, len(nets))
	for vec := 0; vec < t.Rows(); vec++ {
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, d := range nw.Devices {
			if deviceOn(d, inputs, vec) {
				a, b := find(id[d.From]), find(id[d.To])
				if a != b {
					parent[a] = b
				}
			}
		}
		t.Set(vec, find(ui) == find(vi))
	}
	return t
}

// Gate bundles the complementary networks of one static gate.
type Gate struct {
	Name     string
	PullDown *logic.Expr // f: output is f'
	Inputs   []string
	PDN      *Network
	PUN      *Network
	PDNTree  *SPNode
	PUNTree  *SPNode
}

// NewGate builds the complementary PUN/PDN pair for pull-down function f.
// unit is the unit transistor width multiple (usually 1); widths are
// assigned per AssignWidths. The PUN and PDN trees are sized independently:
// with equal n/p drive (CNFET) both use unit; a CMOS caller scales PUN
// widths afterwards by the p/n ratio.
func NewGate(name string, f *logic.Expr, unit float64) (*Gate, error) {
	pdnTree, err := FromExpr(f)
	if err != nil {
		return nil, fmt.Errorf("gate %s PDN: %w", name, err)
	}
	punTree, err := FromExpr(f.Dual())
	if err != nil {
		return nil, fmt.Errorf("gate %s PUN: %w", name, err)
	}
	pdnTree.AssignWidths(unit)
	punTree.AssignWidths(unit)
	g := &Gate{
		Name:     name,
		PullDown: f,
		Inputs:   f.Vars(),
		PDNTree:  pdnTree,
		PUNTree:  punTree,
		PDN:      Elaborate(pdnTree, NFET, "OUT", "GND"),
		PUN:      Elaborate(punTree, PFET, "VDD", "OUT"),
	}
	return g, nil
}

// Complementary verifies the static-gate invariant: for every input vector
// exactly one of the PUN and PDN conducts between its terminals. A true
// result means the gate neither floats nor fights.
func (g *Gate) Complementary() bool {
	up := g.PUN.Conduct("VDD", "OUT", g.Inputs)
	down := g.PDN.Conduct("OUT", "GND", g.Inputs)
	if !up.And(down).IsFalse() {
		return false
	}
	return up.Or(down).IsTrue()
}

// OutputTable returns the gate's output function (f') over its inputs.
func (g *Gate) OutputTable() *logic.Table {
	return logic.TableOf(g.PullDown, g.Inputs).Not()
}
