package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cnfetdk/internal/logic"
)

func mustGate(t *testing.T, name, f string) *Gate {
	t.Helper()
	g, err := NewGate(name, logic.MustParse(f), 1)
	if err != nil {
		t.Fatalf("NewGate(%s): %v", f, err)
	}
	return g
}

func TestFromExprShapes(t *testing.T) {
	sp, err := FromExpr(logic.MustParse("AB+C"))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != SPParallel || len(sp.Kids) != 2 {
		t.Fatalf("top = %v with %d kids", sp.Kind, len(sp.Kids))
	}
	if sp.Kids[0].Kind != SPSeries {
		t.Fatal("first branch should be a series chain")
	}
	if sp.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", sp.Depth())
	}
	if got := len(sp.Leaves()); got != 3 {
		t.Fatalf("Leaves = %d, want 3", got)
	}
}

func TestFromExprNegatedLiteral(t *testing.T) {
	sp, err := FromExpr(logic.MustParse("A'B"))
	if err != nil {
		t.Fatal(err)
	}
	leaves := sp.Leaves()
	if !leaves[0].Neg || leaves[1].Neg {
		t.Fatal("negation flags wrong")
	}
	if _, err := FromExpr(logic.MustParse("(AB)'")); err == nil {
		t.Fatal("negated product must be rejected")
	}
}

func TestAssignWidthsNAND3(t *testing.T) {
	// NAND3 pull-down: ABC in series; each device must be 3x.
	sp, _ := FromExpr(logic.MustParse("ABC"))
	sp.AssignWidths(1)
	for _, l := range sp.Leaves() {
		if l.Width != 3 {
			t.Fatalf("NAND3 chain width = %v, want 3", l.Width)
		}
	}
	if sp.MaxWidth() != 3 {
		t.Fatalf("MaxWidth = %v", sp.MaxWidth())
	}
}

func TestAssignWidthsAOI31(t *testing.T) {
	// Paper Fig 4(b): pull-down ABC+D. The ABC chain is 3x wider than D;
	// the pull-up (A+B+C)*D is series depth 2, all devices 2x.
	pdn, _ := FromExpr(logic.MustParse("ABC+D"))
	pdn.AssignWidths(1)
	leaves := pdn.Leaves()
	for i := 0; i < 3; i++ {
		if leaves[i].Width != 3 {
			t.Fatalf("ABC chain width = %v, want 3", leaves[i].Width)
		}
	}
	if leaves[3].Width != 1 {
		t.Fatalf("D width = %v, want 1", leaves[3].Width)
	}
	pun, _ := FromExpr(logic.MustParse("ABC+D").Dual())
	pun.AssignWidths(1)
	for _, l := range pun.Leaves() {
		if l.Width != 2 {
			t.Fatalf("PUN width = %v, want 2", l.Width)
		}
	}
}

func TestAssignWidthsAsymmetric(t *testing.T) {
	// AOI21 pull-down AB+C: chain AB is 2x, C is 1x.
	sp, _ := FromExpr(logic.MustParse("AB+C"))
	sp.AssignWidths(1)
	l := sp.Leaves()
	if l[0].Width != 2 || l[1].Width != 2 || l[2].Width != 1 {
		t.Fatalf("widths = %v %v %v, want 2 2 1", l[0].Width, l[1].Width, l[2].Width)
	}
}

func TestElaborateSeriesNodes(t *testing.T) {
	sp, _ := FromExpr(logic.MustParse("ABC"))
	nw := Elaborate(sp, NFET, "OUT", "GND")
	if len(nw.Devices) != 3 {
		t.Fatalf("devices = %d", len(nw.Devices))
	}
	// Chain: OUT -A- x1 -B- x2 -C- GND.
	if nw.Devices[0].From != "OUT" || nw.Devices[2].To != "GND" {
		t.Fatalf("chain endpoints wrong: %+v", nw.Devices)
	}
	if nw.Devices[0].To != nw.Devices[1].From || nw.Devices[1].To != nw.Devices[2].From {
		t.Fatal("internal nodes not chained")
	}
	nets := nw.Nets()
	if len(nets) != 4 {
		t.Fatalf("nets = %v", nets)
	}
}

func TestConductNAND2(t *testing.T) {
	g := mustGate(t, "NAND2", "AB")
	inputs := g.Inputs
	down := g.PDN.Conduct("OUT", "GND", inputs)
	if !down.Equal(logic.TableOf(logic.MustParse("AB"), inputs)) {
		t.Fatal("PDN conduction != AB")
	}
	up := g.PUN.Conduct("VDD", "OUT", inputs)
	if !up.Equal(logic.TableOf(logic.MustParse("(AB)'"), inputs).Not().Not()) {
		t.Fatal("PUN conduction != (AB)'")
	}
}

func TestConductInternalNode(t *testing.T) {
	// NAND2 PDN: OUT -A- x1 -B- GND. Conduction OUT..x1 is just A.
	sp, _ := FromExpr(logic.MustParse("AB"))
	nw := Elaborate(sp, NFET, "OUT", "GND")
	mid := nw.Devices[0].To
	inputs := []string{"A", "B"}
	got := nw.Conduct("OUT", mid, inputs)
	if !got.Equal(logic.TableOf(logic.MustParse("A"), inputs)) {
		t.Fatal("OUT..x1 conduction != A")
	}
}

func TestGateComplementary(t *testing.T) {
	for _, f := range []string{"A", "AB", "A+B", "ABC", "A+B+C", "AB+C", "AB+CD", "ABC+D", "(A+B)C", "(A+B)(C+D)"} {
		g := mustGate(t, f, f)
		if !g.Complementary() {
			t.Errorf("gate %q is not complementary", f)
		}
	}
}

func TestOutputTable(t *testing.T) {
	g := mustGate(t, "NOR2", "A+B")
	out := g.OutputTable()
	want := logic.TableOf(logic.MustParse("(A+B)'"), g.Inputs)
	// (A+B)' has exactly one true row (A=B=0).
	if out.CountTrue() != 1 || !out.Equal(want.Not().Not()) {
		t.Fatal("NOR2 output table wrong")
	}
}

// Property: every random SP gate is complementary — the De Morgan dual
// construction always yields a well-formed static gate.
func TestRandomGatesComplementaryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vars := []string{"A", "B", "C", "D"}
	var build func(depth int) *logic.Expr
	build = func(depth int) *logic.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			return logic.Var(vars[rng.Intn(len(vars))])
		}
		n := 2 + rng.Intn(2)
		kids := make([]*logic.Expr, n)
		for i := range kids {
			kids[i] = build(depth - 1)
		}
		if rng.Intn(2) == 0 {
			return logic.And(kids...)
		}
		return logic.Or(kids...)
	}
	f := func() bool {
		e := build(3)
		g, err := NewGate("rand", e, 1)
		if err != nil {
			return false
		}
		return g.Complementary()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: worst-case path resistance after AssignWidths equals the unit
// device resistance (sum of 1/width along any maximal series path through
// the tree's series splits equals 1).
func TestAssignWidthsResistanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	vars := []string{"A", "B", "C", "D", "E"}
	var build func(depth int) *logic.Expr
	build = func(depth int) *logic.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			return logic.Var(vars[rng.Intn(len(vars))])
		}
		n := 2 + rng.Intn(2)
		kids := make([]*logic.Expr, n)
		for i := range kids {
			kids[i] = build(depth - 1)
		}
		if rng.Intn(2) == 0 {
			return logic.And(kids...)
		}
		return logic.Or(kids...)
	}
	// worstR computes the maximum resistance over parallel choices, i.e.
	// the worst single conduction path.
	var worstR func(n *SPNode) float64
	worstR = func(n *SPNode) float64 {
		switch n.Kind {
		case SPLeaf:
			return 1 / n.Width
		case SPSeries:
			r := 0.0
			for _, k := range n.Kids {
				r += worstR(k)
			}
			return r
		default:
			r := 0.0
			for _, k := range n.Kids {
				if kr := worstR(k); kr > r {
					r = kr
				}
			}
			return r
		}
	}
	f := func() bool {
		sp, err := FromExpr(build(3))
		if err != nil {
			return false
		}
		sp.AssignWidths(1)
		r := worstR(sp)
		return r > 0.999 && r < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
