package sta

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"cnfetdk/internal/liberty"
	"cnfetdk/internal/synth"
)

// fakeModel builds a hand-written liberty model for STA unit tests (no
// spice characterization needed). Arcs carry only the 1-D table, so the
// engine exercises its surface-less fallback path.
func fakeModel() *liberty.Model {
	mk := func(name string, inputs []string, d0 float64) *liberty.CellModel {
		cm := &liberty.CellModel{
			Name:      name,
			InputCapF: map[string]float64{},
		}
		for _, in := range inputs {
			cm.InputCapF[in] = 1e-15
			cm.Arcs = append(cm.Arcs, liberty.Arc{
				Input: in,
				Table: liberty.LUT{
					LoadsF:  []float64{1e-15, 4e-15},
					DelaysS: []float64{d0, d0 * 2},
				},
			})
		}
		return cm
	}
	return &liberty.Model{
		Cells: map[string]*liberty.CellModel{
			"INV_1X":   mk("INV_1X", []string{"A"}, 10e-12),
			"INV_2X":   mk("INV_2X", []string{"A"}, 6e-12),
			"NAND2_1X": mk("NAND2_1X", []string{"A", "B"}, 15e-12),
		},
	}
}

// invChain builds a linear chain of n inverters A -> n1 -> ... -> Y.
func invChain(n int) *synth.Netlist {
	nl := &synth.Netlist{Name: "chain", Inputs: []string{"A"}, Outputs: []string{"Y"}}
	in := "A"
	for i := 1; i <= n; i++ {
		out := "Y"
		if i < n {
			out = fmt.Sprintf("n%d", i)
		}
		nl.Instances = append(nl.Instances, synth.Instance{
			Name: fmt.Sprintf("u%d", i), Cell: "INV_1X",
			Conns: map[string]string{"A": in, "OUT": out},
		})
		in = out
	}
	return nl
}

func TestAnalyzeChain(t *testing.T) {
	nl := invChain(2)
	res, err := Analyze(nl, fakeModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// u1 drives one INV input (1fF): delay = 10ps; u2 drives nothing
	// (load 0 -> clamp to first point): 10ps. Total 20ps.
	if math.Abs(res.MaxArrival()-20e-12) > 1e-15 {
		t.Fatalf("arrival = %v, want 20ps", res.MaxArrival())
	}
	wantPath := []string{"A", "n1", "Y"}
	if !reflect.DeepEqual(res.CriticalPath, wantPath) {
		t.Fatalf("path = %v, want %v", res.CriticalPath, wantPath)
	}
	if res.WorstNet != "Y" {
		t.Fatalf("WorstNet = %q, want Y", res.WorstNet)
	}
	if res.Levels != 2 {
		t.Fatalf("levels = %d, want 2", res.Levels)
	}
}

func TestAnalyzePicksWorstArc(t *testing.T) {
	// B arrives later through an inverter; the NAND's worst path is B.
	nl := &synth.Netlist{
		Name:    "conv",
		Inputs:  []string{"A", "B"},
		Outputs: []string{"Y"},
		Instances: []synth.Instance{
			{Name: "u1", Cell: "INV_1X", Conns: map[string]string{"A": "B", "OUT": "nb"}},
			{Name: "u2", Cell: "NAND2_1X", Conns: map[string]string{"A": "A", "B": "nb", "OUT": "Y"}},
		},
	}
	res, err := Analyze(nl, fakeModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Path through nb: 10 + 15 = 25ps.
	if math.Abs(res.MaxArrival()-25e-12) > 1e-15 {
		t.Fatalf("arrival = %v, want 25ps", res.MaxArrival())
	}
	if res.CriticalPath[1] != "nb" {
		t.Fatalf("critical path should go through nb: %v", res.CriticalPath)
	}
}

// TestInstanceDelayWorstPathOnly pins the report semantics: an
// instance's delay is the arc on its own worst input path, not the worst
// arc over all pins, so critical-path instance delays sum to the design
// delay.
func TestInstanceDelayWorstPathOnly(t *testing.T) {
	m := fakeModel()
	// Pin A's arc is much slower than pin B's, but B's input arrives so
	// late that the worst path still runs through B.
	m.Cells["SKEW_1X"] = &liberty.CellModel{
		Name:      "SKEW_1X",
		InputCapF: map[string]float64{"A": 1e-15, "B": 1e-15},
		Arcs: []liberty.Arc{
			{Input: "A", Table: liberty.LUT{LoadsF: []float64{1e-15}, DelaysS: []float64{30e-12}}},
			{Input: "B", Table: liberty.LUT{LoadsF: []float64{1e-15}, DelaysS: []float64{5e-12}}},
		},
	}
	nl := &synth.Netlist{
		Name:    "skew",
		Inputs:  []string{"A", "B"},
		Outputs: []string{"Y"},
		Instances: []synth.Instance{
			{Name: "slow1", Cell: "INV_1X", Conns: map[string]string{"A": "B", "OUT": "m1"}},
			{Name: "slow2", Cell: "INV_1X", Conns: map[string]string{"A": "m1", "OUT": "m2"}},
			{Name: "slow3", Cell: "INV_1X", Conns: map[string]string{"A": "m2", "OUT": "m3"}},
			{Name: "u", Cell: "SKEW_1X", Conns: map[string]string{"A": "A", "B": "m3", "OUT": "Y"}},
		},
	}
	res, err := Analyze(nl, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Worst path: B -> m1 -> m2 -> m3 -> Y (3 INVs + 5ps B arc), not the
	// 30ps A arc.
	if res.CriticalPath[len(res.CriticalPath)-2] != "m3" {
		t.Fatalf("critical path = %v, want ... m3 Y", res.CriticalPath)
	}
	if got := res.InstanceDelay["u"]; got != 5e-12 {
		t.Fatalf("InstanceDelay[u] = %v, want the worst-path arc (5ps), not the worst arc (30ps)", got)
	}
	sum := 0.0
	for _, inst := range []string{"slow1", "slow2", "slow3", "u"} {
		sum += res.InstanceDelay[inst]
	}
	if math.Abs(sum-res.WorstArrivalS) > 1e-18 {
		t.Fatalf("critical-path instance delays sum to %v, want %v", sum, res.WorstArrivalS)
	}
}

func TestAnalyzeWireLoadRaisesDelay(t *testing.T) {
	nl := invChain(1)
	dry, err := Analyze(nl, fakeModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wet, err := Analyze(nl, fakeModel(), map[string]float64{"Y": 4e-15})
	if err != nil {
		t.Fatal(err)
	}
	if wet.MaxArrival() <= dry.MaxArrival() {
		t.Fatal("wire load must increase delay")
	}
}

// TestSlewPropagation: with a 2-D surface whose delay grows with input
// slew, downstream gates see the degraded edges the first stage produces
// — the chain must be slower than the slew-blind 1-D prediction.
func TestSlewPropagation(t *testing.T) {
	sf := &liberty.Surface{
		SlewsS:   []float64{5e-12, 40e-12},
		LoadsF:   []float64{1e-15, 4e-15},
		DelayS:   [][]float64{{10e-12, 20e-12}, {20e-12, 40e-12}},
		OutSlewS: [][]float64{{40e-12, 40e-12}, {40e-12, 40e-12}},
	}
	m := &liberty.Model{
		Cells: map[string]*liberty.CellModel{
			"INV_1X": {
				Name:      "INV_1X",
				InputCapF: map[string]float64{"A": 1e-15},
				Arcs: []liberty.Arc{{
					Input:   "A",
					Table:   liberty.LUT{LoadsF: sf.LoadsF, DelaysS: sf.DelayS[0]},
					Surface: sf,
				}},
			},
		},
	}
	nl := invChain(3)
	res, err := Analyze(nl, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// u1 sees the primary 5ps edge (10ps at 1fF pin load), u2/u3 see the
	// 40ps output edges (20ps, 20ps at their loads' first points).
	want := 50e-12
	if math.Abs(res.MaxArrival()-want) > 1e-15 {
		t.Fatalf("slew-aware arrival = %v, want %v", res.MaxArrival(), want)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	bad := &synth.Netlist{
		Name:   "bad",
		Inputs: []string{"A"},
		Instances: []synth.Instance{
			{Name: "u1", Cell: "XOR_1X", Conns: map[string]string{"A": "A", "OUT": "Y"}},
		},
	}
	if _, err := Analyze(bad, fakeModel(), nil); err == nil {
		t.Fatal("uncharacterized cell must error")
	}
	cyc := &synth.Netlist{
		Name:   "cyc",
		Inputs: []string{"A"},
		Instances: []synth.Instance{
			{Name: "u1", Cell: "NAND2_1X", Conns: map[string]string{"A": "A", "B": "q", "OUT": "q"}},
		},
	}
	if _, err := Analyze(cyc, fakeModel(), nil); err == nil {
		t.Fatal("cyclic netlist must error")
	}
	undriven := &synth.Netlist{
		Name:   "undrv",
		Inputs: []string{"A"},
		Instances: []synth.Instance{
			{Name: "u1", Cell: "NAND2_1X", Conns: map[string]string{"A": "A", "B": "ghost", "OUT": "Y"}},
		},
	}
	if _, err := Analyze(undriven, fakeModel(), nil); err == nil {
		t.Fatal("undriven net must error")
	}
	twice := &synth.Netlist{
		Name:   "twice",
		Inputs: []string{"A"},
		Instances: []synth.Instance{
			{Name: "u1", Cell: "INV_1X", Conns: map[string]string{"A": "A", "OUT": "Y"}},
			{Name: "u2", Cell: "INV_1X", Conns: map[string]string{"A": "A", "OUT": "Y"}},
		},
	}
	if _, err := Analyze(twice, fakeModel(), nil); err == nil {
		t.Fatal("multiply-driven net must error")
	}
}

// TestEngineIncrementalMatchesFull: after SetLoad/SetCell plus
// Reanalyze, every reported value must be byte-identical to an engine
// rebuilt from scratch with the same inputs.
func TestEngineIncrementalMatchesFull(t *testing.T) {
	nl := invChain(12)
	wire := map[string]float64{"n3": 1.5e-15, "n7": 0.5e-15}
	eng, err := NewEngine(nl, fakeModel(), wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetLoad("n5", 2.5e-15); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetCell("u9", "INV_2X"); err != nil {
		t.Fatal(err)
	}
	eng.Reanalyze()

	wire2 := map[string]float64{"n3": 1.5e-15, "n5": 2.5e-15, "n7": 0.5e-15}
	nl2 := invChain(12)
	nl2.Instances[8].Cell = "INV_2X" // u9
	full, err := NewEngine(nl2, fakeModel(), wire2)
	if err != nil {
		t.Fatal(err)
	}
	got, want := eng.Report(), full.Report()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental report diverges from full rebuild:\n got %+v\nwant %+v", got, want)
	}
}

// TestReanalyzeTouchesOnlyCone pins the incremental contract: a load
// change re-evaluates the changed net's driver plus its downstream cone
// — never the whole design.
func TestReanalyzeTouchesOnlyCone(t *testing.T) {
	const n = 10
	eng, err := NewEngine(invChain(n), fakeModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Touched() != n {
		t.Fatalf("initial analysis touched %d, want %d", eng.Touched(), n)
	}
	before := eng.Report()
	// n6's driver is u6; raising its load slows u6..u10: a 5-instance cone.
	if err := eng.SetLoad("n6", 2e-15); err != nil {
		t.Fatal(err)
	}
	if touched := eng.Reanalyze(); touched != 5 {
		t.Fatalf("Reanalyze touched %d instances, want the 5-instance cone", touched)
	}
	after := eng.Report()
	for i := 1; i <= 5; i++ {
		inst := fmt.Sprintf("u%d", i)
		if after.InstanceDelay[inst] != before.InstanceDelay[inst] {
			t.Fatalf("%s outside the cone was recomputed differently", inst)
		}
	}
	if after.MaxArrival() <= before.MaxArrival() {
		t.Fatal("added load must slow the design")
	}
	// A clean engine reanalyzes nothing.
	if touched := eng.Reanalyze(); touched != 0 {
		t.Fatalf("clean Reanalyze touched %d, want 0", touched)
	}
	// Setting the same load again is a no-op.
	if err := eng.SetLoad("n6", 2e-15); err != nil {
		t.Fatal(err)
	}
	if touched := eng.Reanalyze(); touched != 0 {
		t.Fatalf("no-op SetLoad touched %d, want 0", touched)
	}
}

// TestInvalidateDirtiesCone: Invalidate re-evaluates driver + readers
// and converges back to the same answer.
func TestInvalidateDirtiesCone(t *testing.T) {
	eng, err := NewEngine(invChain(8), fakeModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Delay()
	if err := eng.Invalidate("n4"); err != nil {
		t.Fatal(err)
	}
	// Driver u4 and reader u5 re-evaluate; nothing changed, so the cone
	// stops there.
	if touched := eng.Reanalyze(); touched != 2 {
		t.Fatalf("Invalidate cone touched %d, want 2", touched)
	}
	if eng.Delay() != before {
		t.Fatal("no-op invalidation must not move the answer")
	}
}

// TestAnalyzeCtxDeterministic: the level-parallel pass is byte-identical
// to the sequential pass at any worker count.
func TestAnalyzeCtxDeterministic(t *testing.T) {
	nl := invChain(20)
	wire := map[string]float64{"n10": 2e-15}
	seq, err := NewEngine(nl, fakeModel(), wire)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Report()
	for _, workers := range []int{1, 2, 4, 8} {
		par, err := NewEngine(nl, fakeModel(), wire)
		if err != nil {
			t.Fatal(err)
		}
		if err := par.AnalyzeCtx(context.Background(), workers); err != nil {
			t.Fatal(err)
		}
		if got := par.Report(); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverges from sequential:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

func TestEngineMutationErrors(t *testing.T) {
	eng, err := NewEngine(invChain(3), fakeModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetLoad("nope", 1e-15); err == nil {
		t.Fatal("unknown net must error")
	}
	if err := eng.SetCell("nope", "INV_2X"); err == nil {
		t.Fatal("unknown instance must error")
	}
	if err := eng.SetCell("u1", "GHOST_1X"); err == nil {
		t.Fatal("uncharacterized cell must error")
	}
	if err := eng.SetCell("u1", "NAND2_1X"); err == nil {
		t.Fatal("pin-count mismatch must error")
	}
	if err := eng.Invalidate("nope"); err == nil {
		t.Fatal("unknown net must error")
	}
}
