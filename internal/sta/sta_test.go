package sta

import (
	"math"
	"testing"

	"cnfetdk/internal/cells"
	"cnfetdk/internal/device"
	"cnfetdk/internal/flow"
	"cnfetdk/internal/liberty"
	"cnfetdk/internal/place"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/spice"
	"cnfetdk/internal/synth"
)

// fakeModel builds a hand-written liberty model for STA unit tests (no
// spice characterization needed).
func fakeModel() *liberty.Model {
	mk := func(name string, inputs []string, d0 float64) *liberty.CellModel {
		cm := &liberty.CellModel{
			Name:      name,
			InputCapF: map[string]float64{},
		}
		for _, in := range inputs {
			cm.InputCapF[in] = 1e-15
			cm.Arcs = append(cm.Arcs, liberty.Arc{
				Input: in,
				Table: liberty.LUT{
					LoadsF:  []float64{1e-15, 4e-15},
					DelaysS: []float64{d0, d0 * 2},
				},
			})
		}
		return cm
	}
	return &liberty.Model{
		Cells: map[string]*liberty.CellModel{
			"INV_1X":   mk("INV_1X", []string{"A"}, 10e-12),
			"NAND2_1X": mk("NAND2_1X", []string{"A", "B"}, 15e-12),
		},
	}
}

func TestAnalyzeChain(t *testing.T) {
	nl := &synth.Netlist{
		Name:    "chain",
		Inputs:  []string{"A"},
		Outputs: []string{"Y"},
		Instances: []synth.Instance{
			{Name: "u1", Cell: "INV_1X", Conns: map[string]string{"A": "A", "OUT": "n1"}},
			{Name: "u2", Cell: "INV_1X", Conns: map[string]string{"A": "n1", "OUT": "Y"}},
		},
	}
	res, err := Analyze(nl, fakeModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// u1 drives one INV input (1fF): delay = 10ps; u2 drives nothing
	// (load 0 -> clamp to first point): 10ps. Total 20ps.
	if math.Abs(res.MaxArrival()-20e-12) > 1e-15 {
		t.Fatalf("arrival = %v, want 20ps", res.MaxArrival())
	}
	wantPath := []string{"A", "n1", "Y"}
	if len(res.CriticalPath) != 3 {
		t.Fatalf("path = %v", res.CriticalPath)
	}
	for i, n := range wantPath {
		if res.CriticalPath[i] != n {
			t.Fatalf("path = %v, want %v", res.CriticalPath, wantPath)
		}
	}
}

func TestAnalyzePicksWorstArc(t *testing.T) {
	// B arrives later through an inverter; the NAND's worst path is B.
	nl := &synth.Netlist{
		Name:    "conv",
		Inputs:  []string{"A", "B"},
		Outputs: []string{"Y"},
		Instances: []synth.Instance{
			{Name: "u1", Cell: "INV_1X", Conns: map[string]string{"A": "B", "OUT": "nb"}},
			{Name: "u2", Cell: "NAND2_1X", Conns: map[string]string{"A": "A", "B": "nb", "OUT": "Y"}},
		},
	}
	res, err := Analyze(nl, fakeModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Path through nb: 10 + 15 = 25ps.
	if math.Abs(res.MaxArrival()-25e-12) > 1e-15 {
		t.Fatalf("arrival = %v, want 25ps", res.MaxArrival())
	}
	if res.CriticalPath[1] != "nb" {
		t.Fatalf("critical path should go through nb: %v", res.CriticalPath)
	}
}

func TestAnalyzeWireLoadRaisesDelay(t *testing.T) {
	nl := &synth.Netlist{
		Name:    "w",
		Inputs:  []string{"A"},
		Outputs: []string{"Y"},
		Instances: []synth.Instance{
			{Name: "u1", Cell: "INV_1X", Conns: map[string]string{"A": "A", "OUT": "Y"}},
		},
	}
	dry, err := Analyze(nl, fakeModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wet, err := Analyze(nl, fakeModel(), map[string]float64{"Y": 4e-15})
	if err != nil {
		t.Fatal(err)
	}
	if wet.MaxArrival() <= dry.MaxArrival() {
		t.Fatal("wire load must increase delay")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	nl := &synth.Netlist{
		Name:   "bad",
		Inputs: []string{"A"},
		Instances: []synth.Instance{
			{Name: "u1", Cell: "XOR_1X", Conns: map[string]string{"A": "A", "OUT": "Y"}},
		},
	}
	if _, err := Analyze(nl, fakeModel(), nil); err == nil {
		t.Fatal("uncharacterized cell must error")
	}
	cyc := &synth.Netlist{
		Name:   "cyc",
		Inputs: []string{"A"},
		Instances: []synth.Instance{
			{Name: "u1", Cell: "NAND2_1X", Conns: map[string]string{"A": "A", "B": "q", "OUT": "q"}},
		},
	}
	if _, err := Analyze(cyc, fakeModel(), nil); err == nil {
		t.Fatal("cyclic netlist must error")
	}
}

// Integration: STA on the characterized CNFET library must track the
// transistor-level full-adder delay within a factor of two (NLDM with a
// single slew point is coarse, but the orders must agree).
func TestSTATracksSpiceOnFullAdder(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization + transient")
	}
	lib, err := cells.NewLibrary(rules.CNFET)
	if err != nil {
		t.Fatal(err)
	}
	nl := synth.FullAdder()
	used := map[string]bool{}
	for _, inst := range nl.Instances {
		used[inst.Cell] = true
	}
	m, err := liberty.Characterize(lib, nil, func(n string) bool { return used[n] })
	if err != nil {
		t.Fatal(err)
	}
	k, err := flow.NewKit()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := place.Shelves(k.CNFET, nl, 0)
	if err != nil {
		t.Fatal(err)
	}
	wire := flow.WireCaps(p2, nl, lib.Rules.LambdaNM)
	res, err := Analyze(nl, m, wire)
	if err != nil {
		t.Fatal(err)
	}

	// Spice reference: Cin -> Sum arc delay with the same wire loading.
	ckt, _, err := k.BuildCircuit(k.CNFET, nl, wire)
	if err != nil {
		t.Fatal(err)
	}
	period := 4000e-12
	ckt.AddV("va", "A", "0", spice.DC(device.Vdd))
	ckt.AddV("vb", "B", "0", spice.DC(0))
	ckt.AddV("vcin", "Cin", "0", spice.Pulse{
		V0: 0, V1: device.Vdd, Delay: period / 4,
		Rise: 5e-12, Fall: 5e-12, W: period / 2, Period: period,
	})
	r, err := ckt.Transient(period, 8000, spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dSpice, err := r.PropDelay("Cin", "Sum", device.Vdd)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.MaxArrival() / dSpice
	t.Logf("STA %.1fps vs spice %.1fps (ratio %.2f), critical path %v",
		res.MaxArrival()*1e12, dSpice*1e12, ratio, res.CriticalPath)
	if ratio < 0.5 || ratio > 2.5 {
		t.Fatalf("STA/spice ratio %.2f out of range", ratio)
	}
	if len(res.CriticalPath) < 4 {
		t.Fatalf("suspiciously short critical path: %v", res.CriticalPath)
	}
}
