//go:build !race

package sta

import "testing"

// TestSteadyStateZeroAlloc pins the engine's steady-state contract: once
// built, full repropagation and incremental load-change reanalysis run
// without allocating. (Skipped under -race: the race runtime instruments
// allocations.)
func TestSteadyStateZeroAlloc(t *testing.T) {
	eng, err := NewEngine(invChain(64), fakeModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up once so lazy runtime state settles.
	eng.Analyze()
	if n := testing.AllocsPerRun(10, func() { eng.Analyze() }); n != 0 {
		t.Fatalf("Analyze allocates %v/op, want 0", n)
	}
	cap := 1e-15
	if n := testing.AllocsPerRun(10, func() {
		cap = 3e-15 - cap // alternate so every run changes the load
		if err := eng.SetLoad("n32", cap); err != nil {
			t.Fatal(err)
		}
		eng.Reanalyze()
	}); n != 0 {
		t.Fatalf("SetLoad+Reanalyze allocates %v/op, want 0", n)
	}
}
