// Package sta is the design kit's static timing engine: a levelized DAG
// over the mapped netlist evaluated against the characterized (Liberty)
// NLDM models — slew-aware table lookups at the actual output load
// (receiver input pins plus extracted wire), arrival and transition
// times propagated level by level, and the critical path traced back.
//
// The Engine is built once per netlist (net/instance interning, CSR
// adjacency, Kahn levelization) and then reanalyzed allocation-free in
// steady state; SetLoad/SetCell/Invalidate dirty only the fan-out cone
// of the change, so an N-point timing sweep costs one build plus N cone
// repropagations instead of N transistor-level transients.
package sta

import (
	"context"
	"fmt"
	"math"
	"sort"

	"cnfetdk/internal/liberty"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/synth"
)

// DefaultInputSlewS is the transition time assumed on primary inputs:
// the 5 ps edge every characterization testbench and flow stimulus
// drives (cells.DefaultSlewS).
const DefaultInputSlewS = 5e-12

// Result is a full-design timing report — a snapshot of an Engine's
// state (Engine.Report), or a one-shot analysis (Analyze).
type Result struct {
	// Arrival maps every net to its worst arrival time (s); primary
	// inputs are 0.
	Arrival map[string]float64
	// WorstNet names the latest primary output (the latest net overall
	// when the netlist declares no outputs).
	WorstNet string
	// WorstArrivalS is WorstNet's arrival time — the design delay.
	WorstArrivalS float64
	// CriticalPath lists nets from a primary input to WorstNet.
	CriticalPath []string
	// InstanceDelay records, per instance, the delay of the arc on that
	// instance's own worst input path — not the worst arc over all pins,
	// so summing the critical path's instances reproduces WorstArrivalS.
	InstanceDelay map[string]float64
	// Levels is the design's logic depth (levelization bucket count).
	Levels int
}

// MaxArrival returns the design's worst arrival time.
func (r *Result) MaxArrival() float64 { return r.WorstArrivalS }

// Analyze runs one-shot STA over a combinational netlist. wireCapF adds
// per-net wire load (may be nil). Cells missing from the model cause an
// error. Repeated analysis should build an Engine instead.
func Analyze(nl *synth.Netlist, m *liberty.Model, wireCapF map[string]float64) (*Result, error) {
	e, err := NewEngine(nl, m, wireCapF)
	if err != nil {
		return nil, err
	}
	return e.Report(), nil
}

// pinRef is one instance input in engine coordinates.
type pinRef struct {
	name string
	net  int32
	arc  *liberty.Arc
	capF float64
}

// instRec is one instance in engine coordinates: its model, output net,
// and input pins in sorted pin-name order (the deterministic tie-break
// for worst-arc selection).
type instRec struct {
	cell *liberty.CellModel
	out  int32
	pins []pinRef
}

// Engine is a reusable, incrementally updatable timing analyzer over one
// netlist. All steady-state methods (Analyze, Reanalyze, SetLoad,
// SetCell, Invalidate, Delay) are allocation-free; Report allocates the
// map-based snapshot. An Engine is not safe for concurrent mutation.
type Engine struct {
	model *liberty.Model

	nets  []string
	netID map[string]int32
	outs  []int32 // report nets: primary outputs, or every net

	insts    []instRec
	instName []string
	instID   map[string]int32
	driver   []int32 // per net: driving instance, -1 = primary input

	// CSR fan-out: fanEdges[fanStart[n]:fanStart[n+1]] lists the
	// instances reading net n (one entry per reading pin).
	fanStart []int32
	fanEdges []int32

	// Levelization: levelOrder is every instance in topological order;
	// levelStart[l]:levelStart[l+1] brackets level l's bucket. Within a
	// level, instances appear in netlist order.
	levelStart []int32
	levelOrder []int32

	inputSlewS float64

	wireF   []float64 // per net: extracted wire capacitance
	pinF    []float64 // per net: sum of receiver input-pin capacitances
	arrival []float64 // per net
	slew    []float64 // per net: transition time
	prevNet []int32   // per net: worst-path predecessor net, -1 = source

	instDelay []float64 // per instance: worst-path arc delay

	dirty   []bool
	pending bool
	touched int

	worstID int32
	worstAt float64
}

// NewEngine interns the netlist into CSR form, levelizes it, and runs
// the initial full analysis. wireCapF (may be nil) supplies per-net wire
// capacitance; nets absent from the netlist are ignored.
func NewEngine(nl *synth.Netlist, m *liberty.Model, wireCapF map[string]float64) (*Engine, error) {
	nets := nl.Nets()
	n := len(nets)
	e := &Engine{
		model:      m,
		nets:       nets,
		netID:      make(map[string]int32, n),
		inputSlewS: DefaultInputSlewS,
		driver:     make([]int32, n),
		wireF:      make([]float64, n),
		pinF:       make([]float64, n),
		arrival:    make([]float64, n),
		slew:       make([]float64, n),
		prevNet:    make([]int32, n),
	}
	for i, name := range nets {
		e.netID[name] = int32(i)
		e.driver[i] = -1
		e.prevNet[i] = -1
	}
	for net, c := range wireCapF {
		if id, ok := e.netID[net]; ok {
			e.wireF[id] = c
		}
	}

	e.insts = make([]instRec, len(nl.Instances))
	e.instName = make([]string, len(nl.Instances))
	e.instID = make(map[string]int32, len(nl.Instances))
	e.instDelay = make([]float64, len(nl.Instances))
	e.dirty = make([]bool, len(nl.Instances))
	for idx, inst := range nl.Instances {
		cm, ok := m.Cells[inst.Cell]
		if !ok {
			return nil, fmt.Errorf("sta: cell %q not characterized", inst.Cell)
		}
		outNet, ok := inst.Conns["OUT"]
		if !ok {
			return nil, fmt.Errorf("sta: instance %q has no OUT pin", inst.Name)
		}
		out := e.netID[outNet]
		if e.driver[out] >= 0 {
			return nil, fmt.Errorf("sta: net %q driven by both %q and %q",
				outNet, e.instName[e.driver[out]], inst.Name)
		}
		e.driver[out] = int32(idx)
		e.instName[idx] = inst.Name
		e.instID[inst.Name] = int32(idx)

		pins := make([]string, 0, len(inst.Conns)-1)
		for pin := range inst.Conns {
			if pin != "OUT" {
				pins = append(pins, pin)
			}
		}
		sort.Strings(pins)
		rec := &e.insts[idx]
		rec.cell = cm
		rec.out = out
		rec.pins = make([]pinRef, 0, len(pins))
		for _, pin := range pins {
			net := e.netID[inst.Conns[pin]]
			arc := cm.Arc(pin)
			if arc == nil {
				return nil, fmt.Errorf("sta: %s has no arc for pin %s", inst.Cell, pin)
			}
			capF := cm.InputCapF[pin]
			rec.pins = append(rec.pins, pinRef{name: pin, net: net, arc: arc, capF: capF})
			e.pinF[net] += capF
		}
	}

	isInput := make([]bool, n)
	for _, in := range nl.Inputs {
		id, ok := e.netID[in]
		if !ok {
			continue // declared input never connected; nothing to time
		}
		if e.driver[id] >= 0 {
			return nil, fmt.Errorf("sta: primary input %q is driven by %q",
				in, e.instName[e.driver[id]])
		}
		isInput[id] = true
	}
	for _, rec := range e.insts {
		for _, p := range rec.pins {
			if e.driver[p.net] < 0 && !isInput[p.net] {
				return nil, fmt.Errorf("sta: net %q is undriven", e.nets[p.net])
			}
		}
	}

	// CSR fan-out (readers per net, in instance order).
	e.fanStart = make([]int32, n+1)
	for _, rec := range e.insts {
		for _, p := range rec.pins {
			e.fanStart[p.net+1]++
		}
	}
	for i := 0; i < n; i++ {
		e.fanStart[i+1] += e.fanStart[i]
	}
	e.fanEdges = make([]int32, e.fanStart[n])
	fill := make([]int32, n)
	copy(fill, e.fanStart[:n])
	for idx := range e.insts {
		for _, p := range e.insts[idx].pins {
			e.fanEdges[fill[p.net]] = int32(idx)
			fill[p.net]++
		}
	}

	// Kahn levelization over instances: an instance's level is one past
	// the deepest driver of its inputs (0 when fed by primary inputs
	// only). A residue after the queue drains is a combinational cycle.
	level := make([]int32, len(e.insts))
	indeg := make([]int32, len(e.insts))
	for idx := range e.insts {
		for _, p := range e.insts[idx].pins {
			if e.driver[p.net] >= 0 {
				indeg[idx]++
			}
		}
	}
	queue := make([]int32, 0, len(e.insts))
	for idx := range e.insts {
		if indeg[idx] == 0 {
			queue = append(queue, int32(idx))
		}
	}
	processed := 0
	maxLevel := int32(-1)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		processed++
		lv := int32(0)
		rec := &e.insts[i]
		for _, p := range rec.pins {
			if d := e.driver[p.net]; d >= 0 && level[d]+1 > lv {
				lv = level[d] + 1
			}
		}
		level[i] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
		out := rec.out
		for _, r := range e.fanEdges[e.fanStart[out]:e.fanStart[out+1]] {
			indeg[r]--
			if indeg[r] == 0 {
				queue = append(queue, r)
			}
		}
	}
	if processed != len(e.insts) {
		return nil, fmt.Errorf("sta: netlist is cyclic (%d of %d instances levelize)",
			processed, len(e.insts))
	}

	// Bucket instances by level; netlist order within a bucket keeps the
	// schedule deterministic regardless of Kahn pop order.
	e.levelStart = make([]int32, maxLevel+2)
	for _, lv := range level {
		e.levelStart[lv+1]++
	}
	for l := 0; l < len(e.levelStart)-1; l++ {
		e.levelStart[l+1] += e.levelStart[l]
	}
	e.levelOrder = make([]int32, len(e.insts))
	lfill := make([]int32, maxLevel+1)
	copy(lfill, e.levelStart[:maxLevel+1])
	for idx := range e.insts {
		lv := level[idx]
		e.levelOrder[lfill[lv]] = int32(idx)
		lfill[lv]++
	}

	if len(nl.Outputs) > 0 {
		for _, o := range nl.Outputs {
			if id, ok := e.netID[o]; ok {
				e.outs = append(e.outs, id)
			}
		}
	} else {
		e.outs = make([]int32, n)
		for i := range e.outs {
			e.outs[i] = int32(i)
		}
	}

	for i := range e.slew {
		e.slew[i] = e.inputSlewS
	}
	e.worstID = -1
	e.Analyze()
	return e, nil
}

// Levels returns the design's logic depth (levelization bucket count).
func (e *Engine) Levels() int { return len(e.levelStart) - 1 }

// Instances returns the number of timed instances.
func (e *Engine) Instances() int { return len(e.insts) }

// Touched returns how many instances the last Analyze/Reanalyze
// re-evaluated — the fan-out cone size for incremental updates.
func (e *Engine) Touched() int { return e.touched }

// Delay returns the design's worst arrival time.
func (e *Engine) Delay() float64 { return e.worstAt }

// WorstNet names the latest report net (see Result.WorstNet).
func (e *Engine) WorstNet() string {
	if e.worstID < 0 {
		return ""
	}
	return e.nets[e.worstID]
}

// evalInst recomputes one instance: the output net's arrival, slew and
// worst-path predecessor, plus the instance's worst-path arc delay. Pins
// are visited in sorted-name order, so ties resolve deterministically.
func (e *Engine) evalInst(i int32) {
	rec := &e.insts[i]
	load := e.pinF[rec.out] + e.wireF[rec.out]
	bestAt := math.Inf(-1)
	bestNet := int32(-1)
	bestDelay := 0.0
	bestSlew := e.inputSlewS
	for k := range rec.pins {
		p := &rec.pins[k]
		var d, outSlew float64
		if sf := p.arc.Surface; sf != nil {
			inSlew := e.slew[p.net]
			d = sf.Delay(inSlew, load)
			outSlew = sf.OutSlew(inSlew, load)
		} else {
			d = p.arc.Table.Interp(load)
			outSlew = e.inputSlewS
		}
		if at := e.arrival[p.net] + d; at > bestAt {
			bestAt, bestNet, bestDelay, bestSlew = at, p.net, d, outSlew
		}
	}
	e.arrival[rec.out] = bestAt
	e.slew[rec.out] = bestSlew
	e.prevNet[rec.out] = bestNet
	e.instDelay[i] = bestDelay
}

func (e *Engine) updateWorst() {
	e.worstID = -1
	e.worstAt = 0
	for _, o := range e.outs {
		if at := e.arrival[o]; e.worstID < 0 || at > e.worstAt {
			e.worstID = o
			e.worstAt = at
		}
	}
}

// Analyze runs a full propagation pass over every level in topological
// order — the sequential, allocation-free steady-state path. The engine
// is left clean (no pending invalidations).
func (e *Engine) Analyze() {
	for _, i := range e.levelOrder {
		e.evalInst(i)
		e.dirty[i] = false
	}
	e.pending = false
	e.touched = len(e.insts)
	e.updateWorst()
}

// AnalyzeCtx is Analyze with level-parallel propagation: each level's
// instances fan out across the pipeline worker pool (<= 0 selects one
// worker per CPU). Instances within a level are independent — every
// evaluation writes only its own output slots — so results are identical
// to the sequential pass at any worker count.
func (e *Engine) AnalyzeCtx(ctx context.Context, workers int) error {
	for l := 0; l+1 < len(e.levelStart); l++ {
		bucket := e.levelOrder[e.levelStart[l]:e.levelStart[l+1]]
		if _, err := pipeline.MapCtx(ctx, workers, bucket, func(_ int, i int32) (struct{}, error) {
			e.evalInst(i)
			return struct{}{}, nil
		}); err != nil {
			return err
		}
	}
	for i := range e.dirty {
		e.dirty[i] = false
	}
	e.pending = false
	e.touched = len(e.insts)
	e.updateWorst()
	return nil
}

func (e *Engine) markDirty(i int32) {
	if !e.dirty[i] {
		e.dirty[i] = true
		e.pending = true
	}
}

// SetLoad replaces a net's wire capacitance and invalidates its driver
// (the only instance whose delay reads that load). The change takes
// effect at the next Reanalyze.
func (e *Engine) SetLoad(net string, wireCapF float64) error {
	id, ok := e.netID[net]
	if !ok {
		return fmt.Errorf("sta: unknown net %q", net)
	}
	if e.wireF[id] == wireCapF {
		return nil
	}
	e.wireF[id] = wireCapF
	if d := e.driver[id]; d >= 0 {
		e.markDirty(d)
	}
	return nil
}

// SetCell swaps an instance's cell (a drive-strength remap, say):
// the instance's arcs and input-pin capacitances update, and both the
// instance and the drivers of any net whose load changed are
// invalidated. The new cell must carry arcs for the same input pins.
func (e *Engine) SetCell(inst, cell string) error {
	i, ok := e.instID[inst]
	if !ok {
		return fmt.Errorf("sta: unknown instance %q", inst)
	}
	cm, ok := e.model.Cells[cell]
	if !ok {
		return fmt.Errorf("sta: cell %q not characterized", cell)
	}
	rec := &e.insts[i]
	if rec.cell == cm {
		return nil
	}
	if len(cm.InputCapF) != len(rec.pins) {
		return fmt.Errorf("sta: cell %q has %d inputs, instance %q has %d",
			cell, len(cm.InputCapF), inst, len(rec.pins))
	}
	for k := range rec.pins {
		if cm.Arc(rec.pins[k].name) == nil {
			return fmt.Errorf("sta: cell %q has no arc for pin %s", cell, rec.pins[k].name)
		}
	}
	for k := range rec.pins {
		p := &rec.pins[k]
		p.arc = cm.Arc(p.name)
		if capF := cm.InputCapF[p.name]; capF != p.capF {
			e.pinF[p.net] += capF - p.capF
			p.capF = capF
			if d := e.driver[p.net]; d >= 0 {
				e.markDirty(d)
			}
		}
	}
	rec.cell = cm
	e.markDirty(i)
	return nil
}

// Invalidate force-dirties a net's driver and readers — the hook for
// changes the engine cannot see (a characterization refresh, say).
func (e *Engine) Invalidate(net string) error {
	id, ok := e.netID[net]
	if !ok {
		return fmt.Errorf("sta: unknown net %q", net)
	}
	if d := e.driver[id]; d >= 0 {
		e.markDirty(d)
	}
	for _, r := range e.fanEdges[e.fanStart[id]:e.fanStart[id+1]] {
		e.markDirty(r)
	}
	return nil
}

// Reanalyze repropagates exactly the dirty fan-out cone: dirty instances
// are re-evaluated in topological order, and an instance whose output
// arrival or slew actually moved dirties its readers. Returns the number
// of instances touched (0 when nothing was invalidated). Because every
// evaluation is a pure function of its fan-in, the state after Reanalyze
// is byte-identical to a full rebuild.
func (e *Engine) Reanalyze() int {
	e.touched = 0
	if !e.pending {
		return 0
	}
	for _, i := range e.levelOrder {
		if !e.dirty[i] {
			continue
		}
		e.dirty[i] = false
		out := e.insts[i].out
		oldAt, oldSlew := e.arrival[out], e.slew[out]
		e.evalInst(i)
		e.touched++
		if e.arrival[out] != oldAt || e.slew[out] != oldSlew {
			for _, r := range e.fanEdges[e.fanStart[out]:e.fanStart[out+1]] {
				e.markDirty(r)
			}
		}
	}
	e.pending = false
	e.updateWorst()
	return e.touched
}

// Report snapshots the engine into a Result (this allocates; the
// analysis itself does not).
func (e *Engine) Report() *Result {
	r := &Result{
		Arrival:       make(map[string]float64, len(e.nets)),
		InstanceDelay: make(map[string]float64, len(e.insts)),
		Levels:        e.Levels(),
	}
	for id, name := range e.nets {
		r.Arrival[name] = e.arrival[id]
	}
	for i, name := range e.instName {
		r.InstanceDelay[name] = e.instDelay[i]
	}
	if e.worstID >= 0 {
		r.WorstNet = e.nets[e.worstID]
		r.WorstArrivalS = e.worstAt
		for id := e.worstID; id >= 0; id = e.prevNet[id] {
			r.CriticalPath = append(r.CriticalPath, e.nets[id])
		}
		for i, j := 0, len(r.CriticalPath)-1; i < j; i, j = i+1, j-1 {
			r.CriticalPath[i], r.CriticalPath[j] = r.CriticalPath[j], r.CriticalPath[i]
		}
	}
	return r
}
