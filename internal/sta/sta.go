// Package sta performs static timing analysis of mapped netlists against
// the characterized (Liberty) cell models: per-instance delays are looked
// up in the NLDM tables at the actual output load (receiver input pins
// plus wire), arrival times propagate in topological order, and the
// critical path is traced back — the fast companion to full transient
// simulation in the design kit's analysis flow.
package sta

import (
	"fmt"
	"sort"

	"cnfetdk/internal/liberty"
	"cnfetdk/internal/synth"
)

// Result is a full-design timing report.
type Result struct {
	// Arrival maps every net to its worst arrival time (s); primary
	// inputs are 0.
	Arrival map[string]float64
	// WorstSlackNet is the latest net overall (usually a primary output).
	WorstNet float64
	// CriticalPath lists nets from a primary input to the latest output.
	CriticalPath []string
	// InstanceDelay records each instance's computed stage delay.
	InstanceDelay map[string]float64
}

// MaxArrival returns the design's worst arrival time.
func (r *Result) MaxArrival() float64 { return r.WorstNet }

// Analyze runs STA over a combinational netlist. wireCapF adds per-net
// wire load (may be nil). Cells missing from the model cause an error.
func Analyze(nl *synth.Netlist, m *liberty.Model, wireCapF map[string]float64) (*Result, error) {
	res := &Result{
		Arrival:       map[string]float64{},
		InstanceDelay: map[string]float64{},
	}
	for _, in := range nl.Inputs {
		res.Arrival[in] = 0
	}
	// Net load = sum of receiver pin caps + wire.
	load := map[string]float64{}
	for net, c := range wireCapF {
		load[net] += c
	}
	for _, inst := range nl.Instances {
		cm, ok := m.Cells[inst.Cell]
		if !ok {
			return nil, fmt.Errorf("sta: cell %q not characterized", inst.Cell)
		}
		for pin, net := range inst.Conns {
			if pin == "OUT" {
				continue
			}
			load[net] += cm.InputCapF[pin]
		}
	}
	// Iterate to a fixed point (topological relaxation; the netlist is
	// combinational so |instances| passes suffice).
	prev := map[string]string{} // net -> predecessor net on its worst path
	for pass := 0; pass <= len(nl.Instances); pass++ {
		done := true
		progress := false
		for _, inst := range nl.Instances {
			out := inst.Conns["OUT"]
			if _, ok := res.Arrival[out]; ok {
				continue
			}
			cm := m.Cells[inst.Cell]
			worst := -1.0
			var worstIn string
			ready := true
			for pin, net := range inst.Conns {
				if pin == "OUT" {
					continue
				}
				at, ok := res.Arrival[net]
				if !ok {
					ready = false
					break
				}
				arc := cm.Arc(pin)
				if arc == nil {
					return nil, fmt.Errorf("sta: %s has no arc for pin %s", inst.Cell, pin)
				}
				d := arc.Table.Interp(load[out])
				if at+d > worst {
					worst = at + d
					worstIn = net
				}
				if d > res.InstanceDelay[inst.Name] {
					res.InstanceDelay[inst.Name] = d
				}
			}
			if !ready {
				done = false
				continue
			}
			res.Arrival[out] = worst
			prev[out] = worstIn
			progress = true
		}
		if done {
			break
		}
		if !progress {
			return nil, fmt.Errorf("sta: netlist is cyclic or has undriven nets")
		}
	}
	// Worst output and critical path.
	outs := nl.Outputs
	if len(outs) == 0 {
		for net := range res.Arrival {
			outs = append(outs, net)
		}
		sort.Strings(outs)
	}
	worstOut := ""
	for _, o := range outs {
		if at, ok := res.Arrival[o]; ok && at >= res.WorstNet {
			res.WorstNet = at
			worstOut = o
		}
	}
	for n := worstOut; n != ""; n = prev[n] {
		res.CriticalPath = append([]string{n}, res.CriticalPath...)
	}
	return res, nil
}
