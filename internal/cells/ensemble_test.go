package cells

import (
	"math"
	"testing"

	"cnfetdk/internal/device"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/spice"
)

func TestEnsembleDeterministicAcrossRebuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("transient-heavy")
	}
	l := lib(t, rules.CNFET)
	c := l.MustGet("NAND2_1X")
	v := device.Variations{CountCV: 0.2, DiameterSigmaNM: 0.05}

	run := func() ([]float64, []float64) {
		e, err := l.NewEnsemble(c, "A", l.ReferenceLoad(), v, 4, spice.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(7); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), e.DelaysS...), append([]float64(nil), e.EnergiesJ...)
	}
	d1, g1 := run()
	d2, g2 := run()
	for i := range d1 {
		if d1[i] != d2[i] || g1[i] != g2[i] {
			t.Fatalf("lane %d not reproducible: %g/%g vs %g/%g", i, d1[i], g1[i], d2[i], g2[i])
		}
	}
	// The spread is real: independent lanes differ under a 20% count CV.
	spread := false
	for i := 1; i < len(d1); i++ {
		if d1[i] != d1[0] {
			spread = true
		}
	}
	if !spread {
		t.Fatal("all lanes measured the same delay under an active variation model")
	}
}

func TestEnsembleZeroVariationMatchesNominal(t *testing.T) {
	if testing.Short() {
		t.Skip("transient-heavy")
	}
	l := lib(t, rules.CNFET)
	c := l.MustGet("INV_1X")
	nominal, err := l.Characterize(c, "A", l.ReferenceLoad())
	if err != nil {
		t.Fatal(err)
	}
	e, err := l.NewEnsemble(c, "A", l.ReferenceLoad(), device.Variations{}, 3, spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	for i, d := range e.DelaysS {
		if d != nominal.DelayS {
			t.Fatalf("zero-variation lane %d delay %g != nominal %g", i, d, nominal.DelayS)
		}
	}
	st := e.DelayStats()
	if st.Samples != 3 || st.SigmaS != 0 || st.MeanS != nominal.DelayS {
		t.Fatalf("zero-variation stats %+v, want sigma 0 around the nominal delay", st)
	}
}

func TestEnsembleStats(t *testing.T) {
	st := summarize([]float64{1, 2, 3, 4})
	if st.Samples != 4 || st.MinS != 1 || st.MaxS != 4 || st.MeanS != 2.5 {
		t.Fatalf("summarize = %+v", st)
	}
	if math.Abs(st.SigmaS-math.Sqrt(1.25)) > 1e-15 {
		t.Fatalf("sigma = %g, want sqrt(1.25)", st.SigmaS)
	}
	if z := summarize(nil); z.Samples != 0 || z.SigmaS != 0 {
		t.Fatalf("empty summarize = %+v", z)
	}
}

func TestCharacterizeEnsembleOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("transient-heavy")
	}
	l := lib(t, rules.CNFET)
	c := l.MustGet("INV_1X")
	delay, energy, err := l.CharacterizeEnsemble(c, "A", l.ReferenceLoad(),
		device.Variations{CountCV: 0.2}, 4, 3, spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if delay.Samples != 4 || delay.MeanS <= 0 || delay.SigmaS <= 0 {
		t.Fatalf("delay stats %+v, want 4 samples with positive mean and sigma", delay)
	}
	if energy.MeanS <= 0 {
		t.Fatalf("energy stats %+v, want positive mean", energy)
	}
	if delay.MinS > delay.MeanS || delay.MeanS > delay.MaxS {
		t.Fatalf("delay stats %+v violate min <= mean <= max", delay)
	}
}

func TestDeviceTubes(t *testing.T) {
	cn := lib(t, rules.CNFET)
	c := cn.MustGet("NAND2_1X")
	tubes := cn.DeviceTubes(c)
	if want := len(c.Gate.PUN.Devices) + len(c.Gate.PDN.Devices); len(tubes) != want {
		t.Fatalf("DeviceTubes returned %d entries for %d devices", len(tubes), want)
	}
	for i, n := range tubes {
		if n < 1 {
			t.Fatalf("CNFET device %d reports %d tubes, want >= 1", i, n)
		}
	}
	// The CMOS reference has no tubes — variation draws must be
	// identity there (see device.Sampler).
	cm := lib(t, rules.CMOS)
	for i, n := range cm.DeviceTubes(cm.MustGet("NAND2_1X")) {
		if n != 0 {
			t.Fatalf("CMOS device %d reports %d tubes, want 0", i, n)
		}
	}
}
