// Package cells builds the CNFET standard-cell library of the design kit
// (Section IV.A): every cell is specified by its pull-down function,
// generated as a misaligned-CNT-immune compact layout, instantiable into
// the spice engine at any drive strength, and characterized (delay,
// energy) against a reference load. A CMOS twin of the library supports
// the paper's technology comparison at the shared 65nm node.
package cells

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cnfetdk/internal/device"
	"cnfetdk/internal/drc"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/spice"
)

// Spec declares one library cell.
type Spec struct {
	Name     string
	PullDown string // pull-down function; output is its complement
	Drives   []float64
}

// DefaultSpecs returns the library contents: the cells of Table 1 plus the
// AOI31 of Fig 4, at the drive strengths the full-adder case study uses.
func DefaultSpecs() []Spec {
	return []Spec{
		{Name: "INV", PullDown: "A", Drives: []float64{1, 2, 4, 7, 9}},
		{Name: "NAND2", PullDown: "AB", Drives: []float64{1, 2, 4}},
		{Name: "NAND3", PullDown: "ABC", Drives: []float64{1, 2}},
		{Name: "NOR2", PullDown: "A+B", Drives: []float64{1, 2, 4}},
		{Name: "NOR3", PullDown: "A+B+C", Drives: []float64{1, 2}},
		{Name: "AOI21", PullDown: "AB+C", Drives: []float64{1, 2}},
		{Name: "AOI22", PullDown: "AB+CD", Drives: []float64{1, 2}},
		{Name: "AOI31", PullDown: "ABC+D", Drives: []float64{1}},
		{Name: "OAI21", PullDown: "(A+B)C", Drives: []float64{1, 2}},
		{Name: "OAI22", PullDown: "(A+B)(C+D)", Drives: []float64{1}},
	}
}

// Cell is one library entry at a specific drive strength.
type Cell struct {
	Name   string  // e.g. "NAND2"
	Drive  float64 // strength multiple (1 = 1X)
	Tech   rules.Tech
	Gate   *network.Gate
	Layout *layout.Cell
	Rules  rules.Rules
}

// FullName renders e.g. "NAND2_2X".
func (c *Cell) FullName() string {
	return fmt.Sprintf("%s_%gX", c.Name, c.Drive)
}

// Inputs returns the cell's input pin names.
func (c *Cell) Inputs() []string { return c.Gate.Inputs }

// Library is a technology-bound cell collection.
type Library struct {
	Tech  rules.Tech
	Rules rules.Rules
	FO4   device.FO4Params
	// UnitW is the unit transistor width (4λ at this node).
	UnitW geom.Coord
	cells map[string]*Cell
}

// BuildOptions tunes library construction.
type BuildOptions struct {
	// Workers is the worker-pool width for the layout/DRC fan-out;
	// <= 0 selects pipeline.DefaultWorkers (one per CPU). Workers == 1
	// is the sequential reference path.
	Workers int
	// SkipDRC disables the per-cell design-rule check stage.
	SkipDRC bool
	// Specs overrides the library contents (nil = DefaultSpecs).
	Specs []Spec
	// Trace, when set, receives per-stage timing reports.
	Trace *pipeline.Trace
}

// NewLibrary builds the library for a technology. CNFET cells use the
// paper's compact immune layouts; CMOS cells use the same Euler-row
// generator under CMOS rules. Generation fans out across one worker per
// CPU; use NewLibraryOpts to control the pool width.
func NewLibrary(tech rules.Tech) (*Library, error) {
	return NewLibraryOpts(tech, BuildOptions{})
}

// NewLibraryOpts builds the library through the staged pipeline: gate
// synthesis runs first (cheap, shared across drive strengths), then every
// (cell, drive) layout generation plus its design-rule check fans out
// across the worker pool. The resulting library is independent of the
// worker count.
func NewLibraryOpts(tech rules.Tech, opts BuildOptions) (*Library, error) {
	return NewLibraryCtx(context.Background(), tech, opts)
}

// NewLibraryCtx is NewLibraryOpts with cooperative cancellation: once ctx
// is cancelled no further (cell, drive) jobs are dispatched and the build
// returns ctx.Err().
func NewLibraryCtx(ctx context.Context, tech rules.Tech, opts BuildOptions) (*Library, error) {
	lib := &Library{
		Tech:  tech,
		Rules: rules.Default65nm(tech),
		FO4:   device.DefaultFO4(),
		UnitW: geom.Lambda(4),
		cells: map[string]*Cell{},
	}
	specs := opts.Specs
	if specs == nil {
		specs = DefaultSpecs()
	}

	// Stage 1: gate synthesis. One gate per spec, shared read-only by
	// every drive strength (layout.Generate clones the SP trees it
	// scales, so concurrent generation off one gate is safe).
	t0 := time.Now()
	gates := make([]*network.Gate, len(specs))
	for i, spec := range specs {
		g, err := network.NewGate(spec.Name, logic.MustParse(spec.PullDown), 1)
		if err != nil {
			return nil, fmt.Errorf("cells: %s: %w", spec.Name, err)
		}
		gates[i] = g
	}
	opts.Trace.Add(pipeline.StageReport{Stage: "gates", Dur: time.Since(t0), Items: len(specs)})

	// Stage 2: layout generation + DRC, one job per (spec, drive).
	type job struct {
		spec  int
		drive float64
	}
	var jobs []job
	for i, spec := range specs {
		for _, d := range spec.Drives {
			jobs = append(jobs, job{spec: i, drive: d})
		}
	}
	t0 = time.Now()
	built, err := pipeline.MapCtx(ctx, opts.Workers, jobs, func(_ int, j job) (*Cell, error) {
		spec := specs[j.spec]
		unit := geom.Coord(float64(lib.UnitW) * j.drive)
		lay, err := layout.Generate(spec.Name, gates[j.spec], layout.StyleCompact, unit, lib.Rules)
		if err != nil {
			return nil, fmt.Errorf("%s layout: %w", spec.Name, err)
		}
		c := &Cell{
			Name: spec.Name, Drive: j.drive, Tech: tech,
			Gate: gates[j.spec], Layout: lay, Rules: lib.Rules,
		}
		if !opts.SkipDRC {
			if vs := drc.CheckCell(lay); len(vs) > 0 {
				return nil, fmt.Errorf("%s drc: %d violations, first: %s", c.FullName(), len(vs), vs[0])
			}
		}
		return c, nil
	})
	if err != nil {
		return nil, fmt.Errorf("cells: %w", err)
	}
	opts.Trace.Add(pipeline.StageReport{Stage: "layout+drc", Dur: time.Since(t0), Items: len(jobs)})
	for _, c := range built {
		lib.cells[c.FullName()] = c
	}
	return lib, nil
}

// Get returns a cell by full name (e.g. "INV_4X").
func (l *Library) Get(full string) (*Cell, error) {
	c, ok := l.cells[full]
	if !ok {
		return nil, fmt.Errorf("cells: no cell %q", full)
	}
	return c, nil
}

// MustGet panics on a missing cell; for static flows.
func (l *Library) MustGet(full string) *Cell {
	c, err := l.Get(full)
	if err != nil {
		panic(err)
	}
	return c
}

// Names returns the full names of all cells, sorted.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.cells))
	for n := range l.cells {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// fetFor builds the simulator device for one transistor of the cell.
func (l *Library) fetFor(name string, typ network.DeviceType, widthMult float64) device.FETParams {
	pol := device.NType
	if typ == network.PFET {
		pol = device.PType
	}
	if l.Tech == rules.CNFET {
		return device.CNFETAtOptimalPitch(name, pol, widthMult, l.FO4)
	}
	w := widthMult
	if pol == device.PType {
		w *= l.Rules.PToNRatio
	}
	return device.CMOSFET(name, pol, w)
}

// Instantiate wires the cell into a circuit. conns maps the cell's formal
// nets (inputs, "OUT", "VDD", "GND") to circuit nodes; internal diffusion
// nets are made unique per instance *and per network* — the PUN's and
// PDN's elaborations both count internal nodes from x1, and those are
// physically distinct diffusion islands that must never short. Device
// widths are the sized network widths times the cell drive strength.
func (l *Library) Instantiate(ckt *spice.Circuit, inst string, c *Cell, conns map[string]string) error {
	mapNet := func(side string, n string) string {
		if m, ok := conns[n]; ok {
			return m
		}
		switch n {
		case "VDD", "GND":
			return n
		}
		return inst + "." + side + "." + n
	}
	for _, missing := range append([]string{"OUT"}, c.Gate.Inputs...) {
		if _, ok := conns[missing]; !ok {
			return fmt.Errorf("cells: %s instance %s: net %q unconnected", c.FullName(), inst, missing)
		}
	}
	for i, d := range c.Gate.PUN.Devices {
		p := l.fetFor(fmt.Sprintf("%s.p%d", inst, i), network.PFET, d.Width*c.Drive)
		ckt.AddFET(p.Name, mapNet("p", d.To), mapNet("p", d.Gate), mapNet("p", d.From), p)
	}
	for i, d := range c.Gate.PDN.Devices {
		p := l.fetFor(fmt.Sprintf("%s.n%d", inst, i), network.NFET, d.Width*c.Drive)
		ckt.AddFET(p.Name, mapNet("n", d.From), mapNet("n", d.Gate), mapNet("n", d.To), p)
	}
	return nil
}

// DeviceTubes returns the nominal conducting-tube count of every
// transistor of the cell, PUN devices first then PDN, in
// instantiation order — the per-device exposure the variation yield
// composition multiplies over. CMOS devices report 0 (no tubes).
func (l *Library) DeviceTubes(c *Cell) []int {
	out := make([]int, 0, len(c.Gate.PUN.Devices)+len(c.Gate.PDN.Devices))
	for _, d := range c.Gate.PUN.Devices {
		out = append(out, l.fetFor("probe", network.PFET, d.Width*c.Drive).Tubes)
	}
	for _, d := range c.Gate.PDN.Devices {
		out = append(out, l.fetFor("probe", network.NFET, d.Width*c.Drive).Tubes)
	}
	return out
}

// InputCap estimates the capacitance presented by one input pin of the
// cell: the sum of the gate capacitances of the devices it controls.
func (l *Library) InputCap(c *Cell, input string) float64 {
	total := 0.0
	for _, d := range append(append([]network.Device{}, c.Gate.PUN.Devices...), c.Gate.PDN.Devices...) {
		if d.Gate != input {
			continue
		}
		typ := network.NFET
		if d.Type == network.PFET {
			typ = network.PFET
		}
		total += l.fetFor("probe", typ, d.Width*c.Drive).CGate
	}
	return total
}

// Area returns the assembled cell area in λ² for the given scheme (CMOS
// always uses scheme 1, its conventional arrangement).
func (l *Library) Area(c *Cell, s layout.Scheme) float64 {
	if l.Tech == rules.CMOS {
		s = layout.Scheme1
	}
	return c.Layout.Assemble(s).Area()
}
