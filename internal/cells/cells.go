// Package cells builds the CNFET standard-cell library of the design kit
// (Section IV.A): every cell is specified by its pull-down function,
// generated as a misaligned-CNT-immune compact layout, instantiable into
// the spice engine at any drive strength, and characterized (delay,
// energy) against a reference load. A CMOS twin of the library supports
// the paper's technology comparison at the shared 65nm node.
package cells

import (
	"fmt"
	"sort"

	"cnfetdk/internal/device"
	"cnfetdk/internal/geom"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/network"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/spice"
)

// Spec declares one library cell.
type Spec struct {
	Name     string
	PullDown string // pull-down function; output is its complement
	Drives   []float64
}

// DefaultSpecs returns the library contents: the cells of Table 1 plus the
// AOI31 of Fig 4, at the drive strengths the full-adder case study uses.
func DefaultSpecs() []Spec {
	return []Spec{
		{Name: "INV", PullDown: "A", Drives: []float64{1, 2, 4, 7, 9}},
		{Name: "NAND2", PullDown: "AB", Drives: []float64{1, 2, 4}},
		{Name: "NAND3", PullDown: "ABC", Drives: []float64{1, 2}},
		{Name: "NOR2", PullDown: "A+B", Drives: []float64{1, 2, 4}},
		{Name: "NOR3", PullDown: "A+B+C", Drives: []float64{1, 2}},
		{Name: "AOI21", PullDown: "AB+C", Drives: []float64{1, 2}},
		{Name: "AOI22", PullDown: "AB+CD", Drives: []float64{1, 2}},
		{Name: "AOI31", PullDown: "ABC+D", Drives: []float64{1}},
		{Name: "OAI21", PullDown: "(A+B)C", Drives: []float64{1, 2}},
		{Name: "OAI22", PullDown: "(A+B)(C+D)", Drives: []float64{1}},
	}
}

// Cell is one library entry at a specific drive strength.
type Cell struct {
	Name   string  // e.g. "NAND2"
	Drive  float64 // strength multiple (1 = 1X)
	Tech   rules.Tech
	Gate   *network.Gate
	Layout *layout.Cell
	Rules  rules.Rules
}

// FullName renders e.g. "NAND2_2X".
func (c *Cell) FullName() string {
	return fmt.Sprintf("%s_%gX", c.Name, c.Drive)
}

// Inputs returns the cell's input pin names.
func (c *Cell) Inputs() []string { return c.Gate.Inputs }

// Library is a technology-bound cell collection.
type Library struct {
	Tech  rules.Tech
	Rules rules.Rules
	FO4   device.FO4Params
	// UnitW is the unit transistor width (4λ at this node).
	UnitW geom.Coord
	cells map[string]*Cell
}

// NewLibrary builds the library for a technology. CNFET cells use the
// paper's compact immune layouts; CMOS cells use the same Euler-row
// generator under CMOS rules.
func NewLibrary(tech rules.Tech) (*Library, error) {
	lib := &Library{
		Tech:  tech,
		Rules: rules.Default65nm(tech),
		FO4:   device.DefaultFO4(),
		UnitW: geom.Lambda(4),
		cells: map[string]*Cell{},
	}
	for _, spec := range DefaultSpecs() {
		g, err := network.NewGate(spec.Name, logic.MustParse(spec.PullDown), 1)
		if err != nil {
			return nil, fmt.Errorf("cells: %s: %w", spec.Name, err)
		}
		for _, d := range spec.Drives {
			unit := geom.Coord(float64(lib.UnitW) * d)
			lay, err := layout.Generate(spec.Name, g, layout.StyleCompact, unit, lib.Rules)
			if err != nil {
				return nil, fmt.Errorf("cells: %s layout: %w", spec.Name, err)
			}
			c := &Cell{
				Name: spec.Name, Drive: d, Tech: tech,
				Gate: g, Layout: lay, Rules: lib.Rules,
			}
			lib.cells[c.FullName()] = c
		}
	}
	return lib, nil
}

// Get returns a cell by full name (e.g. "INV_4X").
func (l *Library) Get(full string) (*Cell, error) {
	c, ok := l.cells[full]
	if !ok {
		return nil, fmt.Errorf("cells: no cell %q", full)
	}
	return c, nil
}

// MustGet panics on a missing cell; for static flows.
func (l *Library) MustGet(full string) *Cell {
	c, err := l.Get(full)
	if err != nil {
		panic(err)
	}
	return c
}

// Names returns the full names of all cells, sorted.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.cells))
	for n := range l.cells {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// fetFor builds the simulator device for one transistor of the cell.
func (l *Library) fetFor(name string, typ network.DeviceType, widthMult float64) device.FETParams {
	pol := device.NType
	if typ == network.PFET {
		pol = device.PType
	}
	if l.Tech == rules.CNFET {
		return device.CNFETAtOptimalPitch(name, pol, widthMult, l.FO4)
	}
	w := widthMult
	if pol == device.PType {
		w *= l.Rules.PToNRatio
	}
	return device.CMOSFET(name, pol, w)
}

// Instantiate wires the cell into a circuit. conns maps the cell's formal
// nets (inputs, "OUT", "VDD", "GND") to circuit nodes; internal diffusion
// nets are made unique per instance *and per network* — the PUN's and
// PDN's elaborations both count internal nodes from x1, and those are
// physically distinct diffusion islands that must never short. Device
// widths are the sized network widths times the cell drive strength.
func (l *Library) Instantiate(ckt *spice.Circuit, inst string, c *Cell, conns map[string]string) error {
	mapNet := func(side string, n string) string {
		if m, ok := conns[n]; ok {
			return m
		}
		switch n {
		case "VDD", "GND":
			return n
		}
		return inst + "." + side + "." + n
	}
	for _, missing := range append([]string{"OUT"}, c.Gate.Inputs...) {
		if _, ok := conns[missing]; !ok {
			return fmt.Errorf("cells: %s instance %s: net %q unconnected", c.FullName(), inst, missing)
		}
	}
	for i, d := range c.Gate.PUN.Devices {
		p := l.fetFor(fmt.Sprintf("%s.p%d", inst, i), network.PFET, d.Width*c.Drive)
		ckt.AddFET(p.Name, mapNet("p", d.To), mapNet("p", d.Gate), mapNet("p", d.From), p)
	}
	for i, d := range c.Gate.PDN.Devices {
		p := l.fetFor(fmt.Sprintf("%s.n%d", inst, i), network.NFET, d.Width*c.Drive)
		ckt.AddFET(p.Name, mapNet("n", d.From), mapNet("n", d.Gate), mapNet("n", d.To), p)
	}
	return nil
}

// InputCap estimates the capacitance presented by one input pin of the
// cell: the sum of the gate capacitances of the devices it controls.
func (l *Library) InputCap(c *Cell, input string) float64 {
	total := 0.0
	for _, d := range append(append([]network.Device{}, c.Gate.PUN.Devices...), c.Gate.PDN.Devices...) {
		if d.Gate != input {
			continue
		}
		typ := network.NFET
		if d.Type == network.PFET {
			typ = network.PFET
		}
		total += l.fetFor("probe", typ, d.Width*c.Drive).CGate
	}
	return total
}

// Area returns the assembled cell area in λ² for the given scheme (CMOS
// always uses scheme 1, its conventional arrangement).
func (l *Library) Area(c *Cell, s layout.Scheme) float64 {
	if l.Tech == rules.CMOS {
		s = layout.Scheme1
	}
	return c.Layout.Assemble(s).Area()
}
