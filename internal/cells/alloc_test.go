//go:build !race

package cells

import (
	"testing"

	"cnfetdk/internal/device"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/spice"
)

// TestEnsembleSteadyStateZeroAlloc pins the variation-ensemble hot path:
// after the first Run warms every lane's workspace, a whole re-run —
// redrawing every device, re-simulating every lane through the shared
// plan batch, and re-measuring delays/energies — must allocate nothing.
// This is what makes per-sweep-point ensembles affordable. (Skipped
// under -race: the race runtime adds its own bookkeeping allocations.)
func TestEnsembleSteadyStateZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("transient-heavy")
	}
	l := lib(t, rules.CNFET)
	c := l.MustGet("NAND2_1X")
	e, err := l.NewEnsemble(c, "A", l.ReferenceLoad(),
		device.Variations{CountCV: 0.2, DiameterSigmaNM: 0.05}, 3, spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if err := e.Run(7); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: lanes size their workspaces and waveform storage once
	if avg := testing.AllocsPerRun(5, run); avg != 0 {
		t.Fatalf("steady-state ensemble Run allocates %.1f objects/run, want 0", avg)
	}
}
