package cells

import (
	"strings"
	"testing"

	"cnfetdk/internal/device"
	"cnfetdk/internal/layout"
	"cnfetdk/internal/rules"
	"cnfetdk/internal/spice"
)

func lib(t *testing.T, tech rules.Tech) *Library {
	t.Helper()
	l, err := NewLibrary(tech)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLibraryContents(t *testing.T) {
	l := lib(t, rules.CNFET)
	names := l.Names()
	for _, want := range []string{"INV_1X", "INV_9X", "NAND2_2X", "NAND3_1X", "AOI21_1X", "AOI31_1X"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("library missing %s (have %v)", want, names)
		}
	}
	if _, err := l.Get("NAND9_1X"); err == nil {
		t.Fatal("bogus cell lookup should fail")
	}
}

func TestCellLayoutsAreCompactStyle(t *testing.T) {
	l := lib(t, rules.CNFET)
	for _, n := range l.Names() {
		c := l.MustGet(n)
		if c.Layout.Style != layout.StyleCompact {
			t.Errorf("%s: style = %v", n, c.Layout.Style)
		}
		if got := c.Layout.ViasOnGate(); got != 0 {
			t.Errorf("%s: %d vertical-gating vias in a compact layout", n, got)
		}
	}
}

func TestDriveScalesLayoutHeight(t *testing.T) {
	l := lib(t, rules.CNFET)
	h1 := l.MustGet("INV_1X").Layout.PUN.BBox.H()
	h4 := l.MustGet("INV_4X").Layout.PUN.BBox.H()
	if h4 != 4*h1 {
		t.Fatalf("INV_4X PUN height = %v, want 4x %v", h4, h1)
	}
}

func TestInstantiateInverterWorks(t *testing.T) {
	l := lib(t, rules.CNFET)
	inv := l.MustGet("INV_1X")
	ckt := spice.New()
	ckt.AddV("vdd", "VDD", "0", spice.DC(device.Vdd))
	ckt.AddV("vin", "in", "0", spice.DC(0))
	if err := l.Instantiate(ckt, "u1", inv, map[string]string{"A": "in", "OUT": "out"}); err != nil {
		t.Fatal(err)
	}
	x, err := ckt.OP(spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if v := x[ckt.Node("out")-1]; v < 0.95 {
		t.Fatalf("inverter(0) = %v, want ~1", v)
	}
}

func TestInstantiateRejectsUnconnected(t *testing.T) {
	l := lib(t, rules.CNFET)
	nand := l.MustGet("NAND2_1X")
	ckt := spice.New()
	err := l.Instantiate(ckt, "u1", nand, map[string]string{"A": "in", "OUT": "out"})
	if err == nil || !strings.Contains(err.Error(), "unconnected") {
		t.Fatalf("expected unconnected-net error, got %v", err)
	}
}

func TestNAND2TruthTableAtSpiceLevel(t *testing.T) {
	l := lib(t, rules.CNFET)
	nand := l.MustGet("NAND2_1X")
	cases := []struct {
		a, b string
		want float64
	}{
		{"0", "0", 1}, {"VDD", "0", 1}, {"0", "VDD", 1}, {"VDD", "VDD", 0},
	}
	for _, cse := range cases {
		ckt := spice.New()
		ckt.AddV("vdd", "VDD", "0", spice.DC(device.Vdd))
		if err := l.Instantiate(ckt, "u1", nand, map[string]string{
			"A": cse.a, "B": cse.b, "OUT": "out",
		}); err != nil {
			t.Fatal(err)
		}
		x, err := ckt.OP(spice.DefaultOptions())
		if err != nil {
			t.Fatalf("OP(%s,%s): %v", cse.a, cse.b, err)
		}
		v := x[ckt.Node("out")-1]
		if cse.want == 1 && v < 0.9 || cse.want == 0 && v > 0.1 {
			t.Fatalf("NAND(%s,%s) = %.3f, want %v", cse.a, cse.b, v, cse.want)
		}
	}
}

func TestSensitizingVector(t *testing.T) {
	l := lib(t, rules.CNFET)
	aoi := l.MustGet("AOI21_1X")
	env, err := sensitizingVector(aoi.Gate.PullDown, aoi.Gate.Inputs, "A")
	if err != nil {
		t.Fatal(err)
	}
	// For AB+C, toggling A matters iff B=1 and C=0.
	if !env["B"] || env["C"] {
		t.Fatalf("sensitizing vector for A = %v, want B=1 C=0", env)
	}
}

func TestCharacterizeInverter(t *testing.T) {
	l := lib(t, rules.CNFET)
	inv := l.MustGet("INV_1X")
	tm, err := l.Characterize(inv, "A", l.ReferenceLoad())
	if err != nil {
		t.Fatal(err)
	}
	// The CNFET inverter at optimal pitch: FO4-class delay in single-digit
	// picoseconds territory.
	if tm.DelayS < 1e-12 || tm.DelayS > 20e-12 {
		t.Fatalf("INV_1X delay = %.2fps, implausible", tm.DelayS*1e12)
	}
	if tm.EnergyJ <= 0 {
		t.Fatalf("energy = %v, want positive", tm.EnergyJ)
	}
}

func TestCNFETFasterAndSmallerThanCMOS(t *testing.T) {
	cn := lib(t, rules.CNFET)
	cm := lib(t, rules.CMOS)
	tCN, err := cn.Characterize(cn.MustGet("INV_1X"), "A", cn.ReferenceLoad())
	if err != nil {
		t.Fatal(err)
	}
	tCM, err := cm.Characterize(cm.MustGet("INV_1X"), "A", cm.ReferenceLoad())
	if err != nil {
		t.Fatal(err)
	}
	gain := tCM.DelayS / tCN.DelayS
	if gain < 2 {
		t.Fatalf("CNFET/CMOS inverter delay gain = %.2f, want > 2", gain)
	}
	// Area: ~1.4x gain at unit size (case study 1).
	aCN := cn.Area(cn.MustGet("INV_1X"), layout.Scheme1)
	aCM := cm.Area(cm.MustGet("INV_1X"), layout.Scheme1)
	if aCM/aCN < 1.1 {
		t.Fatalf("CMOS/CNFET inverter area ratio = %.2f, want > 1.1", aCM/aCN)
	}
}

func TestInputCapGrowsWithDrive(t *testing.T) {
	l := lib(t, rules.CNFET)
	c1 := l.InputCap(l.MustGet("INV_1X"), "A")
	c4 := l.InputCap(l.MustGet("INV_4X"), "A")
	if c4 <= c1 {
		t.Fatalf("input cap must grow with drive: %v vs %v", c1, c4)
	}
	if c1 <= 0 {
		t.Fatal("input cap must be positive")
	}
}

func TestScheme2CollapsesCellHeight(t *testing.T) {
	// Scheme 2's per-cell area is not necessarily smaller (the networks
	// sit side by side), but its height collapses to the strip height —
	// the property that lets the placer pack un-normalized cells and win
	// the ~1.6x of case study 2.
	l := lib(t, rules.CNFET)
	c := l.MustGet("INV_9X")
	s1 := c.Layout.Assemble(layout.Scheme1)
	s2 := c.Layout.Assemble(layout.Scheme2)
	if s2.Height >= s1.Height/2 {
		t.Fatalf("scheme2 height %vλ should be well under scheme1 %vλ",
			s2.Height.Lambdas(), s1.Height.Lambdas())
	}
	if l.Area(c, layout.Scheme1) != s1.Area() {
		t.Fatal("Area() disagrees with Assemble()")
	}
}

func TestDatasheetAllCells(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes the whole library")
	}
	l := lib(t, rules.CNFET)
	rows, err := l.Datasheet()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(l.Names()) {
		t.Fatalf("datasheet rows = %d, want %d", len(rows), len(l.Names()))
	}
	byName := map[string]Timing{}
	for _, r := range rows {
		if r.DelayS <= 0 || r.EnergyJ <= 0 {
			t.Fatalf("%s: non-positive characterization %+v", r.Cell, r)
		}
		byName[r.Cell] = r
	}
	// Higher drive of the same cell at the same load is faster.
	if byName["INV_4X"].DelayS >= byName["INV_1X"].DelayS {
		t.Fatalf("INV_4X (%.2fps) should beat INV_1X (%.2fps) at the same load",
			byName["INV_4X"].DelayS*1e12, byName["INV_1X"].DelayS*1e12)
	}
	// Series stacks are slower than the inverter at equal drive.
	if byName["NAND3_1X"].DelayS <= byName["INV_1X"].DelayS {
		t.Fatal("NAND3 should be slower than INV at equal drive")
	}
}

func TestCMOSLibraryInstantiation(t *testing.T) {
	l := lib(t, rules.CMOS)
	nand := l.MustGet("NAND2_1X")
	ckt := spice.New()
	ckt.AddV("vdd", "VDD", "0", spice.DC(device.Vdd))
	if err := l.Instantiate(ckt, "u1", nand, map[string]string{
		"A": "VDD", "B": "VDD", "OUT": "out",
	}); err != nil {
		t.Fatal(err)
	}
	x, err := ckt.OP(spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if v := x[ckt.Node("out")-1]; v > 0.1 {
		t.Fatalf("CMOS NAND(1,1) = %v, want 0", v)
	}
	// CMOS PUN devices must be wider than PDN (the 1.4 ratio shows in
	// input capacitance through the p-device share).
	if l.InputCap(nand, "A") <= 0 {
		t.Fatal("input cap must be positive")
	}
}

func TestCharacterizeUnsensitizableInput(t *testing.T) {
	l := lib(t, rules.CNFET)
	inv := l.MustGet("INV_1X")
	if _, err := l.Characterize(inv, "Z", 1e-15); err == nil {
		t.Fatal("characterizing a nonexistent pin must fail")
	}
}

// TestCharacterizeBatchMatchesSequential pins the batch API against the
// load-by-load reference path: under the same options the batch must be
// byte-identical (same circuits, same solver, deterministic arithmetic),
// and forcing the sparse solver onto the sweep must agree within
// far-below-engineering tolerance.
func TestCharacterizeBatchMatchesSequential(t *testing.T) {
	l := lib(t, rules.CNFET)
	c := l.MustGet("NAND2_1X")
	ref := l.ReferenceLoad()
	loads := []float64{ref * 0.5, ref, ref * 2}

	seq := make([]Timing, len(loads))
	ws := &spice.Workspace{}
	for i, load := range loads {
		tm, err := l.CharacterizeWith(ws, c, "A", load)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = tm
	}

	batch, err := l.CharacterizeBatch(c, "A", loads, spice.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(loads) {
		t.Fatalf("batch rows = %d, want %d", len(batch), len(loads))
	}
	for i := range loads {
		if batch[i].DelayS != seq[i].DelayS || batch[i].EnergyJ != seq[i].EnergyJ {
			t.Fatalf("load %d: batch (%v, %v) != sequential (%v, %v)",
				i, batch[i].DelayS, batch[i].EnergyJ, seq[i].DelayS, seq[i].EnergyJ)
		}
	}

	sOpt := spice.DefaultOptions()
	sOpt.Solver = spice.SolverSparse
	sparse, err := l.CharacterizeBatch(c, "A", loads, sOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range loads {
		if d := sparse[i].DelayS - seq[i].DelayS; d > 1e-15 || d < -1e-15 {
			t.Fatalf("load %d: sparse delay %v vs dense %v (diff %v)",
				i, sparse[i].DelayS, seq[i].DelayS, d)
		}
	}
}

// TestCharacterizeBatchEmptyLoads: a zero-length sweep is a no-op.
func TestCharacterizeBatchEmptyLoads(t *testing.T) {
	l := lib(t, rules.CNFET)
	ts, err := l.CharacterizeBatch(l.MustGet("INV_1X"), "A", nil, spice.DefaultOptions())
	if err != nil || ts != nil {
		t.Fatalf("empty sweep: got (%v, %v), want (nil, nil)", ts, err)
	}
}
