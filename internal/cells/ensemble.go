package cells

import (
	"fmt"
	"math"

	"cnfetdk/internal/device"
	"cnfetdk/internal/spice"
)

// EnsembleStats summarizes one measured distribution of a variation
// ensemble.
type EnsembleStats struct {
	Samples int     `json:"samples"`
	MeanS   float64 `json:"mean_s"`
	SigmaS  float64 `json:"sigma_s"`
	MinS    float64 `json:"min_s"`
	MaxS    float64 `json:"max_s"`
}

// Ensemble is a reusable variation Monte Carlo over one cell arc: the
// testbench is built once, each sample lane holds a Clone of it (same
// topology, own FETs), and all lanes share one plan-sharing
// spice.Batch. Run redraws the per-device variations in place and
// re-simulates every lane, reusing every piece of storage — after the
// first Run the steady state allocates nothing, which is what lets
// sweeps and the co-optimizer afford ensembles per point.
//
// An Ensemble is not safe for concurrent use; build one per goroutine
// (the prototype construction is cheap next to one transient).
type Ensemble struct {
	cell  *Cell
	input string
	v     device.Variations
	opt   spice.Options

	proto  *spice.Circuit
	vddIdx int
	lanes  []*spice.Circuit
	batch  *spice.Batch

	// DelaysS and EnergiesJ hold the per-lane measurements of the most
	// recent Run, in lane order (deterministic for a fixed seed).
	DelaysS   []float64
	EnergiesJ []float64
}

// NewEnsemble prepares a variation ensemble of the (cell, input, load)
// characterization arc with the given number of sample lanes.
func (l *Library) NewEnsemble(c *Cell, input string, loadF float64, v device.Variations, samples int, opt spice.Options) (*Ensemble, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("cells: ensemble needs samples > 0")
	}
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("cells: ensemble: %w", err)
	}
	proto, vddIdx, err := l.ArcCircuit(c, input, loadF)
	if err != nil {
		return nil, err
	}
	b, err := spice.NewBatch(samples, proto, opt)
	if err != nil {
		return nil, fmt.Errorf("cells: %s/%s ensemble plan: %w", c.FullName(), input, err)
	}
	e := &Ensemble{
		cell: c, input: input, v: v, opt: opt,
		proto: proto, vddIdx: vddIdx, batch: b,
		lanes:     make([]*spice.Circuit, samples),
		DelaysS:   make([]float64, samples),
		EnergiesJ: make([]float64, samples),
	}
	for i := range e.lanes {
		e.lanes[i] = proto.Clone()
	}
	return e, nil
}

// Run redraws every lane's device variations from the seed and
// re-simulates the arc, filling DelaysS/EnergiesJ. Lane i's draws come
// from Variations.Sampler(seed, i) applied to the FETs in instantiation
// order, so the result is a pure function of (ensemble, seed).
func (e *Ensemble) Run(seed int64) error {
	for i, ckt := range e.lanes {
		ckt.RestoreFETs(e.proto)
		s := e.v.Sampler(seed, i)
		for j := range ckt.FETs {
			d := s.Draw(ckt.FETs[j].P.Tubes)
			d.Apply(&ckt.FETs[j].P)
		}
		res, err := ckt.TransientWith(e.batch.Lane(i), ArcPeriod, ArcSteps, e.opt)
		if err != nil {
			return fmt.Errorf("cells: %s/%s ensemble lane %d: %w", e.cell.FullName(), e.input, i, err)
		}
		d, err := res.PropDelay("in", "out", device.Vdd)
		if err != nil {
			return fmt.Errorf("cells: %s/%s ensemble lane %d: %w", e.cell.FullName(), e.input, i, err)
		}
		e.DelaysS[i] = d
		e.EnergiesJ[i] = res.SupplyEnergy(e.vddIdx, 0, ArcPeriod)
	}
	return nil
}

// DelayStats summarizes the most recent Run's delay distribution.
func (e *Ensemble) DelayStats() EnsembleStats { return summarize(e.DelaysS) }

// EnergyStats summarizes the most recent Run's energy distribution
// (fields are joules despite the S-suffixed names shared with delay).
func (e *Ensemble) EnergyStats() EnsembleStats { return summarize(e.EnergiesJ) }

func summarize(xs []float64) EnsembleStats {
	st := EnsembleStats{Samples: len(xs)}
	if len(xs) == 0 {
		return st
	}
	st.MinS, st.MaxS = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		st.MinS = math.Min(st.MinS, x)
		st.MaxS = math.Max(st.MaxS, x)
	}
	st.MeanS = sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		ss += (x - st.MeanS) * (x - st.MeanS)
	}
	st.SigmaS = math.Sqrt(ss / float64(len(xs)))
	return st
}

// CharacterizeEnsemble is the one-shot convenience over NewEnsemble +
// Run: it measures the delay and energy distributions of one cell arc
// under the variation model and returns their summaries.
func (l *Library) CharacterizeEnsemble(c *Cell, input string, loadF float64, v device.Variations, samples int, seed int64, opt spice.Options) (delay, energy EnsembleStats, err error) {
	e, err := l.NewEnsemble(c, input, loadF, v, samples, opt)
	if err != nil {
		return EnsembleStats{}, EnsembleStats{}, err
	}
	if err := e.Run(seed); err != nil {
		return EnsembleStats{}, EnsembleStats{}, err
	}
	return e.DelayStats(), e.EnergyStats(), nil
}
