package cells

import (
	"fmt"

	"cnfetdk/internal/device"
	"cnfetdk/internal/logic"
	"cnfetdk/internal/pipeline"
	"cnfetdk/internal/spice"
)

// Timing is one characterization row of the library datasheet.
type Timing struct {
	Cell     string
	Input    string
	LoadF    float64 // load capacitance (F)
	SlewInS  float64 // input transition time of the stimulus edge (s)
	DelayS   float64 // propagation delay (s), average of rise/fall
	SlewOutS float64 // output transition time (s), ramp-equivalent 20–80 average
	EnergyJ  float64 // supply energy per full output cycle (J)
}

// sensitizingVector finds values for the side inputs such that toggling
// the probed input toggles the cell output, and returns the per-input
// levels plus the output value when the probed input is low.
func sensitizingVector(g *logic.Expr, inputs []string, probe string) (map[string]bool, error) {
	tab := logic.TableOf(g, inputs)
	k := -1
	for i, n := range inputs {
		if n == probe {
			k = i
		}
	}
	if k < 0 {
		return nil, fmt.Errorf("cells: input %q not found", probe)
	}
	for v := 0; v < tab.Rows(); v++ {
		if v>>uint(k)&1 == 1 {
			continue
		}
		if tab.Get(v) != tab.Get(v|1<<uint(k)) {
			env := map[string]bool{}
			for i, n := range inputs {
				env[n] = v>>uint(i)&1 == 1
			}
			return env, nil
		}
	}
	return nil, fmt.Errorf("cells: input %q cannot be sensitized", probe)
}

// Characterize measures the cell's propagation delay from the given input
// to OUT with a fixed capacitive load, and the supply energy per output
// cycle, via a transient simulation.
func (l *Library) Characterize(c *Cell, input string, loadF float64) (Timing, error) {
	return l.CharacterizeWith(nil, c, input, loadF)
}

// Characterization testbench constants: the stimulus period and the
// fixed-step count of one arc's transient. Exported so batch drivers
// outside the package (immunity's tube-variation sampler) run exactly
// the measurement CharacterizeWith runs.
const (
	ArcPeriod = 2000e-12
	ArcSteps  = 4000
)

// DefaultSlewS is the input transition time of the single-slew
// characterization testbench — the 5 ps edge ArcCircuit has always
// driven, and the reference row of the 2-D NLDM grid.
const DefaultSlewS = 5e-12

// ArcCircuit builds the characterization testbench of one (cell, input,
// load) arc: a VDD rail, a pulse source on net "in" driving the probed
// input, side inputs tied to a sensitizing vector, the cell instance
// with its output on net "out", and the load capacitor. It returns the
// circuit and the VDD source index for supply-energy probing. Sweeping
// only loadF (> 0) yields structure-identical circuits — the property
// plan-sharing batches rely on.
func (l *Library) ArcCircuit(c *Cell, input string, loadF float64) (*spice.Circuit, int, error) {
	return l.ArcCircuitSlew(c, input, loadF, DefaultSlewS)
}

// ArcCircuitSlew is ArcCircuit with the input edge's transition time as a
// parameter — the second axis of the NLDM characterization grid. Sweeping
// loadF and slewS changes only element values, never topology, so a whole
// (slew × load) grid stays one structure-identical plan-sharing family.
func (l *Library) ArcCircuitSlew(c *Cell, input string, loadF, slewS float64) (*spice.Circuit, int, error) {
	env, err := sensitizingVector(c.Gate.PullDown, c.Gate.Inputs, input)
	if err != nil {
		return nil, 0, err
	}
	ckt := spice.New()
	vddIdx := ckt.AddV("vdd", "VDD", "0", spice.DC(device.Vdd))
	ckt.AddV("vin", "in", "0", spice.Pulse{
		V0: 0, V1: device.Vdd, Delay: ArcPeriod / 4,
		Rise: slewS, Fall: slewS, W: ArcPeriod / 2, Period: ArcPeriod,
	})
	conns := map[string]string{"OUT": "out"}
	for _, n := range c.Gate.Inputs {
		if n == input {
			conns[n] = "in"
			continue
		}
		level := "0"
		if env[n] {
			level = "VDD"
		}
		conns[n] = level
	}
	if err := l.Instantiate(ckt, "x1", c, conns); err != nil {
		return nil, 0, err
	}
	if loadF > 0 {
		ckt.AddC("cload", "out", "0", loadF)
	}
	return ckt, vddIdx, nil
}

// CharacterizeWith is Characterize reusing a caller-owned spice workspace:
// a load sweep over one cell runs thousands of Newton solves on
// same-shaped systems, and threading one workspace through the sweep keeps
// the solver scratch and waveforms off the garbage collector. Pass nil for
// a one-shot measurement. The workspace is not safe for concurrent use;
// give each worker its own.
func (l *Library) CharacterizeWith(ws *spice.Workspace, c *Cell, input string, loadF float64) (Timing, error) {
	return l.characterizeArc(ws, c, input, loadF, DefaultSlewS, spice.DefaultOptions())
}

// characterizeArc runs one arc's testbench through the given workspace
// and solver options and measures the Timing row: propagation delay,
// output transition time (average of the falling edge after the input
// rise and the rising edge after the input fall), and supply energy.
func (l *Library) characterizeArc(ws *spice.Workspace, c *Cell, input string, loadF, slewS float64, opt spice.Options) (Timing, error) {
	ckt, vddIdx, err := l.ArcCircuitSlew(c, input, loadF, slewS)
	if err != nil {
		return Timing{}, err
	}
	res, err := ckt.TransientWith(ws, ArcPeriod, ArcSteps, opt)
	if err != nil {
		return Timing{}, fmt.Errorf("cells: %s transient: %w", c.FullName(), err)
	}
	// Delay and slews are searched from each input edge's start, not its
	// midpoint: at the slow-slew/light-load corner the output switches
	// while the input is still slewing (a legitimately negative delay),
	// and its 80% crossing can precede the input's 50% point. The
	// testbench is static before ArcPeriod/4, so the bounds are sound.
	d, err := res.PropDelayFrom("in", "out", device.Vdd, ArcPeriod/4, 3*ArcPeriod/4)
	if err != nil {
		return Timing{}, fmt.Errorf("cells: %s delay: %w", c.FullName(), err)
	}
	fallSlew, err := res.SlewTime("out", device.Vdd, false, ArcPeriod/4)
	if err != nil {
		return Timing{}, fmt.Errorf("cells: %s fall slew: %w", c.FullName(), err)
	}
	riseSlew, err := res.SlewTime("out", device.Vdd, true, 3*ArcPeriod/4)
	if err != nil {
		return Timing{}, fmt.Errorf("cells: %s rise slew: %w", c.FullName(), err)
	}
	e := res.SupplyEnergy(vddIdx, 0, ArcPeriod)
	return Timing{
		Cell: c.FullName(), Input: input, LoadF: loadF, SlewInS: slewS,
		DelayS: d, SlewOutS: (fallSlew + riseSlew) / 2, EnergyJ: e,
	}, nil
}

// CharacterizeBatch measures one arc across a whole load sweep as a
// plan-sharing batch: the sweep's testbenches differ only in the load
// value, so the symbolic plan is computed once from the first load's
// circuit and every lane refactorizes numerically into its own storage.
// Results are byte-identical with load-by-load CharacterizeWith calls
// (the plan depends only on topology). opt selects the solver path —
// liberty passes the defaults; benchmarks force a path to compare.
func (l *Library) CharacterizeBatch(c *Cell, input string, loads []float64, opt spice.Options) ([]Timing, error) {
	if len(loads) == 0 {
		return nil, nil
	}
	proto, _, err := l.ArcCircuit(c, input, loads[0])
	if err != nil {
		return nil, err
	}
	b, err := spice.NewBatch(len(loads), proto, opt)
	if err != nil {
		return nil, fmt.Errorf("cells: %s/%s batch plan: %w", c.FullName(), input, err)
	}
	out := make([]Timing, len(loads))
	for i, load := range loads {
		t, err := l.characterizeArc(b.Lane(i), c, input, load, DefaultSlewS, opt)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// CharacterizeNLDM measures one arc over a full (input slew × output
// load) NLDM grid as a single plan-sharing batch: every grid point's
// testbench differs only in the pulse edge rate and the load value, so
// the symbolic plan is computed once and each point refactorizes
// numerically in its own lane. Rows are indexed [slew][load]; the first
// slew row at DefaultSlewS reproduces CharacterizeBatch byte-identically.
func (l *Library) CharacterizeNLDM(c *Cell, input string, slews, loads []float64, opt spice.Options) ([][]Timing, error) {
	if len(slews) == 0 {
		slews = []float64{DefaultSlewS}
	}
	if len(loads) == 0 {
		return nil, nil
	}
	proto, _, err := l.ArcCircuitSlew(c, input, loads[0], slews[0])
	if err != nil {
		return nil, err
	}
	b, err := spice.NewBatch(len(slews)*len(loads), proto, opt)
	if err != nil {
		return nil, fmt.Errorf("cells: %s/%s nldm batch plan: %w", c.FullName(), input, err)
	}
	rows := make([][]Timing, len(slews))
	lane := 0
	for si, slew := range slews {
		rows[si] = make([]Timing, len(loads))
		for li, load := range loads {
			t, err := l.characterizeArc(b.Lane(lane), c, input, load, slew, opt)
			if err != nil {
				return nil, err
			}
			rows[si][li] = t
			lane++
		}
	}
	return rows, nil
}

// ReferenceLoad returns the library's characterization load: four times
// the input capacitance of the 1X inverter (an FO4-equivalent load).
func (l *Library) ReferenceLoad() float64 {
	inv := l.MustGet("INV_1X")
	return 4 * l.InputCap(inv, "A")
}

// Datasheet characterizes every cell at the reference load (probing input
// "A") and returns the rows sorted by cell name. The per-cell SPICE jobs
// fan out across one worker per CPU; row order is deterministic (sorted by
// cell name) regardless of worker count.
func (l *Library) Datasheet() ([]Timing, error) {
	return l.DatasheetWorkers(0)
}

// DatasheetWorkers is Datasheet with an explicit worker-pool width
// (<= 0 selects one worker per CPU; 1 is the sequential reference path).
func (l *Library) DatasheetWorkers(workers int) ([]Timing, error) {
	load := l.ReferenceLoad()
	return pipeline.Map(workers, l.Names(), func(_ int, name string) (Timing, error) {
		return l.Characterize(l.MustGet(name), "A", load)
	})
}
