// Package fabric is the distributed sweep fabric: a coordinator shards
// one sweep.Spec across a fleet of cnfetd workers and merges the shard
// results back into the one canonical sweep.Report a single process
// would have produced.
//
// Roles and protocol:
//
//   - Workers are plain cnfetd daemons. They enroll by POSTing their
//     advertised URL to the coordinator's /v1/fabric/workers (cnfetd
//     -join does this on a heartbeat loop) and execute shards over the
//     existing POST /v1/sweeps?stream=ndjson surface — the fabric adds
//     no worker-side endpoint beyond the health/metrics split every
//     daemon now has.
//
//   - The coordinator (cmd/cnfetfab, or cnfetd -coordinator) partitions
//     a spec's deterministic point-index space [0, n) into fixed-size
//     leases. Each lease is dispatched to a live worker as the same
//     spec windowed by Spec.Slice(offset, count), so shard points carry
//     their global indices. Completed points stream back over the lease
//     connection and are forwarded to the client as NDJSON.
//
//   - A lease whose worker dies (transport error, non-2xx, or
//     LeaseTimeout of stream silence) is requeued with exponential
//     backoff and bounded attempts; the failing worker is marked
//     suspect and receives no further leases until it heartbeats again.
//     A lease that exhausts its attempts fails the sweep fast — a
//     poison point must not spin the fleet forever.
//
// Merging is order-independent: every point result is keyed by its
// global index, duplicate deliveries (a retried lease re-executes its
// whole window) are dropped on arrival, and sweep.Assemble rebuilds the
// report from the complete index-ordered set. Summaries, yield curves
// and Pareto fronts are pure functions of (spec, ordered points), so
// the merged report's Canonical bytes are byte-identical to a
// single-process run of the same spec — at any worker count, and across
// mid-sweep worker deaths. Workers sharing one artifact-store directory
// (-store) turn it into the de-facto result bus: a reassigned lease
// warm-starts from the stages its first worker already persisted.
//
// # Quickstart: a two-worker fleet on one machine
//
// Start the coordinator, then two workers enrolling against it, all
// sharing one artifact store:
//
//	cnfetfab -addr :8066 &
//	cnfetd -addr :8067 -store /tmp/fleet-store -join http://127.0.0.1:8066 &
//	cnfetd -addr :8068 -store /tmp/fleet-store -join http://127.0.0.1:8066 &
//
// Wait for readiness (503 until the fleet has a live member), then run
// a sweep through the fabric and scrape the metrics:
//
//	curl -sf http://127.0.0.1:8066/readyz
//	cnfetsweep -workers http://127.0.0.1:8066 \
//	  -circuits mux2,dec2 -placements rows,shelves -seeds 1,2,3 \
//	  -analyses area,immunity -canonical -o report.json
//	curl -s http://127.0.0.1:8066/metrics | grep cnfet_fabric_
//
// report.json is byte-identical to the same cnfetsweep invocation
// without -workers (one process, no fabric). Killing one worker
// mid-sweep changes nothing but the trace: its lease is reassigned and
// the shared store lets the survivor skip the stages already computed.
package fabric

import (
	"time"

	"cnfetdk/internal/sweep"
)

// Defaults for Options zero values.
const (
	DefaultLeasePoints      = 8
	DefaultMaxAttempts      = 3
	DefaultRetryBackoff     = 250 * time.Millisecond
	DefaultMaxRetryBackoff  = 5 * time.Second
	DefaultLeaseTimeout     = 2 * time.Minute
	DefaultHeartbeatTTL     = 15 * time.Second
	DefaultStallTimeout     = 2 * time.Minute
	DefaultMaxSweepPoints   = 4096
	DefaultPoll             = 100 * time.Millisecond
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 3 * time.Second
)

// JoinRequest is the body a worker POSTs to /v1/fabric/workers — both
// to enroll and as its periodic heartbeat (the call is an idempotent
// upsert keyed by URL).
type JoinRequest struct {
	// URL is the worker's advertised base URL, e.g. "http://10.0.0.7:8065".
	URL string `json:"url"`
}

// JoinResponse acknowledges an enrollment/heartbeat.
type JoinResponse struct {
	ID string `json:"id"`
	// HeartbeatSeconds tells the worker how often to re-POST: the
	// coordinator forgets workers silent longer than its TTL.
	HeartbeatSeconds float64 `json:"heartbeat_seconds"`
}

// WorkerStatus is one row of the coordinator's worker listing.
type WorkerStatus struct {
	URL             string    `json:"url"`
	Alive           bool      `json:"alive"`
	Joined          time.Time `json:"joined"`
	LastSeenSeconds float64   `json:"last_seen_seconds"`
	Points          int64     `json:"points"`
	Leases          int64     `json:"leases"`
	Failures        int64     `json:"failures"`
	// Health is the EWMA lease success score in [0,1] (1 = every recent
	// lease succeeded); new workers start at 1.
	Health float64 `json:"health"`
	// BreakerOpenSeconds is how much longer the worker's circuit breaker
	// holds it out of lease rotation (0 = closed).
	BreakerOpenSeconds float64 `json:"breaker_open_seconds,omitempty"`
	// BreakerTrips counts how many times the breaker has opened.
	BreakerTrips int64 `json:"breaker_trips,omitempty"`
}

// LeaseEvent reports a lease state change on the fabric sweep stream.
type LeaseEvent struct {
	// State is "dispatch", "done", "retry" or "failed".
	State   string `json:"state"`
	Offset  int    `json:"offset"`
	Count   int    `json:"count"`
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt"`
	Error   string `json:"error,omitempty"`
}

// StreamLine is one NDJSON line of a fabric sweep response: a completed
// point (with the worker that produced it), a lease event, or the final
// line carrying the merged report.
type StreamLine struct {
	Point  *sweep.PointResult `json:"point,omitempty"`
	Worker string             `json:"worker,omitempty"`
	Lease  *LeaseEvent        `json:"lease,omitempty"`
	Done   bool               `json:"done,omitempty"`
	Error  string             `json:"error,omitempty"`
	Report *sweep.Report      `json:"report,omitempty"`
}
