package fabric_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cnfetdk/internal/fabric"
	"cnfetdk/internal/promtext"
)

func startCoordServer(t *testing.T, c *fabric.Coordinator) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(fabric.NewServer(c))
	t.Cleanup(srv.Close)
	return srv
}

// TestServerSweepStream drives a full fabric sweep over the HTTP
// surface, the way cnfetsweep -workers does: NDJSON lines stream out
// unbuffered and the final line carries the merged report.
func TestServerSweepStream(t *testing.T) {
	want := refCanonical(t)
	c := testCoord(fabric.Options{})
	w := newWorker(t, nil)
	if _, err := c.Join(w.URL, true); err != nil {
		t.Fatal(err)
	}
	coord := startCoordServer(t, c)

	body, err := json.Marshal(identitySpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(coord.URL+"/v1/fabric/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	if ab := resp.Header.Get("X-Accel-Buffering"); ab != "no" {
		t.Errorf("X-Accel-Buffering = %q, want \"no\" (proxies must not batch the stream)", ab)
	}

	var points, leases int
	var last fabric.StreamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	for sc.Scan() {
		var line fabric.StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if line.Point != nil {
			points++
			if line.Worker != w.URL {
				t.Errorf("point attributed to %q, want %q", line.Worker, w.URL)
			}
		}
		if line.Lease != nil {
			leases++
		}
		last = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if points != 12 {
		t.Errorf("streamed %d point lines, want 12", points)
	}
	if leases < 8 {
		t.Errorf("streamed %d lease events, want dispatch+done for 4 leases", leases)
	}
	if !last.Done || last.Error != "" || last.Report == nil {
		t.Fatalf("final line = %+v", last)
	}
	got, err := last.Report.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("report streamed over the fabric API differs from the single-process run")
	}
}

// TestServerSweepAdmission: admission failures are real HTTP errors,
// never a 200 stream that immediately fails.
func TestServerSweepAdmission(t *testing.T) {
	c := testCoord(fabric.Options{MaxSweepPoints: 4})
	coord := startCoordServer(t, c)
	for name, tc := range map[string]struct {
		body string
		code string
	}{
		"bad json":   {body: "{", code: "bad_json"},
		"over quota": {body: mustSpecJSON(t), code: "too_many_points"},
		"bad axis":   {body: `{"base":{"techs":["cnfet"]},"axes":{"circuits":["nope"]}}`, code: "bad_spec"},
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(coord.URL+"/v1/fabric/sweeps", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var body struct {
				Error struct{ Code string }
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if body.Error.Code != tc.code {
				t.Fatalf("error code = %q, want %q", body.Error.Code, tc.code)
			}
		})
	}
}

func mustSpecJSON(t *testing.T) string {
	t.Helper()
	b, err := json.Marshal(identitySpec())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServerProbesAndRegistry walks the enrollment API and the
// liveness/readiness split: a coordinator is live from the start but
// unready until its fleet has a member.
func TestServerProbesAndRegistry(t *testing.T) {
	c := testCoord(fabric.Options{})
	coord := startCoordServer(t, c)

	get := func(path string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Get(coord.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		return resp, body
	}

	if resp, _ := get("/livez"); resp.StatusCode != http.StatusOK {
		t.Fatalf("livez = %d", resp.StatusCode)
	}
	if resp, body := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("readyz with no workers = %d %v, want 503", resp.StatusCode, body)
	}

	// Enroll over the API, as cnfetd -join does.
	jr, _ := json.Marshal(fabric.JoinRequest{URL: "http://worker-a:8065"})
	resp, err := http.Post(coord.URL+"/v1/fabric/workers", "application/json", bytes.NewReader(jr))
	if err != nil {
		t.Fatal(err)
	}
	var ack fabric.JoinResponse
	json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ack.HeartbeatSeconds <= 0 {
		t.Fatalf("join = %d %+v", resp.StatusCode, ack)
	}

	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with a live worker = %d, want 200", resp.StatusCode)
	}
	if _, body := get("/v1/fabric/workers"); body["workers"] == nil {
		t.Fatal("registry listing missing")
	}

	badJoin, _ := json.Marshal(fabric.JoinRequest{URL: "worker-a:8065"})
	resp, err = http.Post(coord.URL+"/v1/fabric/workers", "application/json", bytes.NewReader(badJoin))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("schemeless join = %d, want 400", resp.StatusCode)
	}

	mresp, err := http.Get(coord.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != promtext.ContentType {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(mresp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text() + "\n")
	}
	metrics := sb.String()
	for _, want := range []string{
		"# TYPE cnfet_fabric_workers_live gauge",
		"cnfet_fabric_workers_live 1",
		"cnfet_fabric_workers_registered 1",
		"cnfet_fabric_queue_depth 0",
		`cnfet_fabric_worker_points_total{worker="http://worker-a:8065"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics lack %q:\n%s", want, metrics)
		}
	}
}

// TestJoinLoopEnrollsAndHeartbeats: the worker-side loop enrolls
// immediately, reports the transition, and keeps the worker live via
// heartbeats at the coordinator's advertised cadence.
func TestJoinLoopEnrollsAndHeartbeats(t *testing.T) {
	c := testCoord(fabric.Options{HeartbeatTTL: 90 * time.Millisecond})
	coord := startCoordServer(t, c)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	joined := make(chan bool, 16)
	go fabric.JoinLoop(ctx, nil, coord.URL, "http://worker-a:8065", func(ok bool, err error) {
		joined <- ok
	})
	select {
	case ok := <-joined:
		if !ok {
			t.Fatal("first enrollment attempt failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("JoinLoop never enrolled")
	}
	// Past several TTL windows the worker must still be live — the loop
	// heartbeats at TTL/3.
	time.Sleep(250 * time.Millisecond)
	ws := c.Workers()
	if len(ws) != 1 || !ws[0].Alive {
		t.Fatalf("registry after heartbeat window = %+v, want one live worker", ws)
	}
}

// TestJoinOnceErrors surfaces coordinator-side rejections to the caller.
func TestJoinOnceErrors(t *testing.T) {
	c := testCoord(fabric.Options{})
	coord := startCoordServer(t, c)
	if _, err := fabric.JoinOnce(context.Background(), nil, coord.URL, "not a url"); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("JoinOnce with a junk self URL: err = %v", err)
	}
	if _, err := fabric.JoinOnce(context.Background(), nil, "http://127.0.0.1:1", "http://worker:1"); err == nil {
		t.Fatal("JoinOnce against a dead coordinator succeeded")
	}
}
