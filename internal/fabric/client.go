package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"cnfetdk/internal/sweep"
)

// Client is the coordinator's sweep surface as a Go API: RunSweep
// ships a spec to POST /v1/fabric/sweeps, consumes the NDJSON progress
// stream, and returns the merged report. It satisfies the same
// contract as a local sweep.Kit — canonical report bytes are identical
// to a single-process run of the same spec — so callers that accept a
// "run this sweep" dependency (the co-optimizer, the sweep CLI) switch
// between local and distributed execution without caring which they
// got.
type Client struct {
	// URL is the coordinator base URL (e.g. "http://fab:9090"); the
	// /v1/fabric/sweeps path is appended.
	URL string
	// HTTP overrides the transport (nil selects http.DefaultClient).
	HTTP *http.Client
	// OnLine, when set, observes every stream line as it arrives —
	// point completions, lease events, and the final report line.
	OnLine func(StreamLine)
}

// RunSweep runs one sweep on the fabric under ctx (cancelling ctx
// aborts the coordinator run: the streamed request's context cancels
// every in-flight lease).
func (c *Client) RunSweep(ctx context.Context, spec sweep.Spec) (*sweep.Report, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(c.URL, "/")+"/v1/fabric/sweeps", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fabric: reaching coordinator: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("fabric: coordinator answered %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}

	var rep *sweep.Report
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("fabric: bad stream line: %w", err)
		}
		if c.OnLine != nil {
			c.OnLine(line)
		}
		if line.Done {
			if line.Error != "" {
				// A failed sweep may still carry a salvaged partial
				// report (Partial flag set) next to the error; return
				// both so callers can triage what did complete.
				return line.Report, fmt.Errorf("fabric: sweep failed: %s", line.Error)
			}
			rep = line.Report
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fabric: reading stream: %w", err)
	}
	if rep == nil {
		return nil, fmt.Errorf("fabric: stream ended without a report")
	}
	return rep, nil
}
